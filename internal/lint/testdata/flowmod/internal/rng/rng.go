// Package rng mirrors the real stream-derivation package: Derive maps
// (seed, labels) to a child seed, New/ForNode build sanctioned streams.
package rng

import "math/rand"

// Derive hashes labels into seed.
func Derive(seed int64, labels ...string) int64 {
	h := seed
	for _, l := range labels {
		for _, c := range l {
			h = h*1099511628211 + int64(c)
		}
	}
	return h
}

// New builds a stream derived from seed and labels.
func New(seed int64, labels ...string) *rand.Rand {
	return rand.New(rand.NewSource(Derive(seed, labels...)))
}

// ForNode derives a per-node stream.
func ForNode(seed int64, node int) *rand.Rand {
	return New(seed, "node", string(rune(node)))
}
