// Package digest provides the deterministic state fingerprint used by
// snapshot verification. A Hash is a streaming FNV-1a 64 accumulator
// with typed feed methods; every simulator component that participates
// in checkpoint verification implements Stater and folds its live state
// into one. The hash is not cryptographic — it only needs to make an
// accidental post-restore divergence essentially impossible to miss,
// while staying dependency-free and byte-order independent of the host.
package digest

import "math"

const (
	offset64 = 14695981039346656037
	prime64  = 1099511628211
)

// Hash is a streaming FNV-1a 64-bit accumulator. The zero value is NOT
// ready to use; start from New.
type Hash uint64

// New returns a Hash initialised with the FNV-1a offset basis.
func New() Hash { return offset64 }

// Byte folds one byte.
func (h *Hash) Byte(b byte) {
	*h = (*h ^ Hash(b)) * prime64
}

// Uint64 folds v little-endian.
func (h *Hash) Uint64(v uint64) {
	for i := 0; i < 8; i++ {
		h.Byte(byte(v >> (8 * i)))
	}
}

// Int64 folds v via its two's-complement bits.
func (h *Hash) Int64(v int64) { h.Uint64(uint64(v)) }

// Int folds v as an int64.
func (h *Hash) Int(v int) { h.Uint64(uint64(int64(v))) }

// Float64 folds the IEEE-754 bit pattern of v, so that -0 and +0 or two
// NaN payloads hash differently exactly when their bits differ.
func (h *Hash) Float64(v float64) { h.Uint64(math.Float64bits(v)) }

// Bool folds b as one byte.
func (h *Hash) Bool(b bool) {
	if b {
		h.Byte(1)
	} else {
		h.Byte(0)
	}
}

// String folds s length-prefixed, so that ("ab","c") and ("a","bc")
// hash differently.
func (h *Hash) String(s string) {
	h.Int(len(s))
	for i := 0; i < len(s); i++ {
		h.Byte(s[i])
	}
}

// Bytes folds b length-prefixed.
func (h *Hash) Bytes(b []byte) {
	h.Int(len(b))
	for _, c := range b {
		h.Byte(c)
	}
}

// Sum returns the accumulated value.
func (h Hash) Sum() uint64 { return uint64(h) }

// Stater is implemented by simulator components that can fold their
// mutable state into a fingerprint. Implementations must iterate any
// maps in sorted key order and must not mutate the component.
type Stater interface {
	DigestState(h *Hash)
}
