package geo

import (
	"slices"
	"testing"
)

func TestTilingShapes(t *testing.T) {
	rect := NewRect(100, 100)
	cases := []struct {
		tiles, cols, rows int
	}{
		{1, 1, 1},
		{4, 2, 2},
		{8, 2, 4},
		{9, 3, 3},
		{12, 3, 4},
		{16, 4, 4},
		{7, 1, 7}, // primes degenerate to a 1×n strip
	}
	for _, c := range cases {
		tl := NewTiling(rect, c.tiles)
		if tl.Tiles() != c.tiles || tl.Cols() != c.cols || tl.Rows() != c.rows {
			t.Errorf("NewTiling(%d): %dx%d (%d tiles), want %dx%d",
				c.tiles, tl.Cols(), tl.Rows(), tl.Tiles(), c.cols, c.rows)
		}
	}
}

func TestTilingBadCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTiling(rect, 0) should panic")
		}
	}()
	NewTiling(NewRect(10, 10), 0)
}

// TestTileOfEdges pins the min-inclusive binning on shared edges and
// corners: a point exactly on an interior boundary belongs to the
// higher-coordinate tile, deterministically. The tiled PDES engine
// leans on this — a node's tile (and hence its kernel and RNG stream)
// must be pure arithmetic on its position.
func TestTileOfEdges(t *testing.T) {
	tl := NewTiling(NewRect(100, 100), 4) // 2×2, shared edges at x=50 and y=50
	cases := []struct {
		p    Point
		want int
	}{
		{Point{0, 0}, 0},     // origin corner
		{Point{49.9, 0}, 0},  // just left of the vertical edge
		{Point{50, 0}, 1},    // exactly on it: higher-coordinate side
		{Point{0, 50}, 2},    // exactly on the horizontal edge
		{Point{50, 50}, 3},   // the four-corner point goes up-right
		{Point{100, 100}, 3}, // terrain max clamps into the last tile
		{Point{100, 0}, 1},   // right edge of the arena
		{Point{0, 100}, 2},   // top edge of the arena
		{Point{-5, -5}, 0},   // outside points clamp into border tiles
		{Point{105, 105}, 3},
	}
	for _, c := range cases {
		if got := tl.TileOf(c.p); got != c.want {
			t.Errorf("TileOf(%v) = %d, want %d", c.p, got, c.want)
		}
	}
}

// TestTileOfBoundsConsistent cross-checks TileOf against Bounds on a
// lattice that sweeps across every interior edge: any point strictly
// inside tile i's rectangle maps back to i, and a point on a shared
// Max edge maps to the neighbor whose Min it is.
func TestTileOfBoundsConsistent(t *testing.T) {
	tl := NewTiling(NewRect(90, 120), 12) // 3×4, uneven tile aspect
	for i := 0; i < tl.Tiles(); i++ {
		b := tl.Bounds(i)
		center := Point{(b.Min.X + b.Max.X) / 2, (b.Min.Y + b.Max.Y) / 2}
		if got := tl.TileOf(center); got != i {
			t.Errorf("TileOf(center of tile %d) = %d", i, got)
		}
		// Min corner is inclusive.
		if got := tl.TileOf(b.Min); got != i {
			t.Errorf("TileOf(Min of tile %d) = %d", i, got)
		}
		// The shared right edge belongs to the right neighbor.
		if i%tl.Cols() < tl.Cols()-1 {
			edge := Point{b.Max.X, center.Y}
			if got := tl.TileOf(edge); got != i+1 {
				t.Errorf("TileOf(right edge of tile %d) = %d, want %d", i, got, i+1)
			}
		}
		// The shared top edge belongs to the upper neighbor.
		if i/tl.Cols() < tl.Rows()-1 {
			edge := Point{center.X, b.Max.Y}
			if got := tl.TileOf(edge); got != i+tl.Cols() {
				t.Errorf("TileOf(top edge of tile %d) = %d, want %d", i, got, i+tl.Cols())
			}
		}
	}
}

// TestBoundsTileEverything checks the lattice partitions the rectangle:
// tile bounds cover it without overlap, adjacent bounds sharing exact
// float edges (the construction is index*width, so no accumulation).
func TestBoundsTileEverything(t *testing.T) {
	rect := NewRect(100, 100)
	tl := NewTiling(rect, 16)
	var area float64
	for i := 0; i < tl.Tiles(); i++ {
		b := tl.Bounds(i)
		area += (b.Max.X - b.Min.X) * (b.Max.Y - b.Min.Y)
		if i%tl.Cols() > 0 {
			left := tl.Bounds(i - 1)
			if left.Max.X != b.Min.X {
				t.Errorf("tiles %d,%d: edge mismatch %v != %v", i-1, i, left.Max.X, b.Min.X)
			}
		}
		if i/tl.Cols() > 0 {
			below := tl.Bounds(i - tl.Cols())
			if below.Max.Y != b.Min.Y {
				t.Errorf("tiles %d,%d: edge mismatch %v != %v", i-tl.Cols(), i, below.Max.Y, b.Min.Y)
			}
		}
	}
	if want := rect.Width() * rect.Height(); area != want {
		t.Errorf("tile areas sum to %v, want %v", area, want)
	}
}

// TestWithinRadiusAcrossTileBoundary pins that neighbor queries are
// oblivious to tiling: two nodes straddling a tile edge see each other
// symmetrically through the shared Grid, which is what lets the tiled
// channel keep one global neighbor structure.
func TestWithinRadiusAcrossTileBoundary(t *testing.T) {
	rect := NewRect(100, 100)
	tl := NewTiling(rect, 4)
	pts := []Point{{49, 50}, {51, 50}, {50, 49}, {50, 51}, {49.5, 49.5}}
	if a, b := tl.TileOf(pts[0]), tl.TileOf(pts[1]); a == b {
		t.Fatalf("fixture broken: points 0,1 share tile %d", a)
	}
	g := NewGrid(rect, 25, pts)
	for i := range pts {
		for j := range pts {
			if i == j {
				continue
			}
			near := g.WithinRadius(nil, pts[i], 5, i)
			if slices.Contains(near, j) != slices.Contains(g.WithinRadius(nil, pts[j], 5, j), i) {
				t.Errorf("asymmetric neighborhood between %d and %d", i, j)
			}
			if !slices.Contains(near, j) {
				t.Errorf("point %d should see point %d across the tile edge", i, j)
			}
		}
	}
}
