package parallel

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestMapOrderPreserved(t *testing.T) {
	out := Map(4, 100, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapSingleWorkerSerial(t *testing.T) {
	var order []int
	Map(1, 10, func(i int) int {
		order = append(order, i)
		return i
	})
	for i, v := range order {
		if v != i {
			t.Fatal("single worker should run in order")
		}
	}
}

func TestMapZeroN(t *testing.T) {
	if out := Map(4, 0, func(i int) int { return i }); out != nil {
		t.Fatal("n=0 should return nil")
	}
}

func TestMapDefaultWorkers(t *testing.T) {
	out := Map(0, 50, func(i int) int { return i })
	if len(out) != 50 {
		t.Fatal("default worker count failed")
	}
}

func TestMapEachIndexOnce(t *testing.T) {
	var counts [200]int32
	Map(8, 200, func(i int) struct{} {
		atomic.AddInt32(&counts[i], 1)
		return struct{}{}
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

func TestForEach(t *testing.T) {
	var sum int64
	ForEach(4, 100, func(i int) { atomic.AddInt64(&sum, int64(i)) })
	if sum != 4950 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestMapPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic was swallowed")
		}
		if s, ok := r.(string); !ok || s != "boom" {
			t.Fatalf("re-raised panic = %v, want \"boom\"", r)
		}
	}()
	Map(4, 100, func(i int) int {
		if i == 37 {
			panic("boom")
		}
		return i
	})
	t.Fatal("Map returned normally despite worker panic")
}

func TestMapPanicDoesNotAbandonWork(t *testing.T) {
	// One worker dies on its first item; the others must still drain
	// the pre-filled queue rather than deadlock or drop indices.
	var ran [64]int32
	func() {
		defer func() { _ = recover() }()
		Map(4, 64, func(i int) int {
			if i == 0 {
				panic("first item")
			}
			atomic.AddInt32(&ran[i], 1)
			return i
		})
	}()
	for i := 1; i < 64; i++ {
		if atomic.LoadInt32(&ran[i]) != 1 {
			t.Fatalf("index %d ran %d times after a worker panic", i, ran[i])
		}
	}
}

// The clamp rule is shared by Map, ForEach, and internal/sweep: 0 or
// negative means GOMAXPROCS, never more than n, never below 1.
func TestWorkersClamp(t *testing.T) {
	cases := []struct {
		name        string
		workers, n  int
		want        int
		wantAtMost  int  // when >0, bound instead of exact (GOMAXPROCS cases)
		wantAtLeast int  // paired lower bound
		exact       bool // compare against want
	}{
		{name: "more workers than items", workers: 16, n: 3, want: 3, exact: true},
		{name: "equal", workers: 4, n: 4, want: 4, exact: true},
		{name: "fewer workers than items", workers: 2, n: 100, want: 2, exact: true},
		{name: "zero items still yields one worker", workers: 8, n: 0, want: 1, exact: true},
		{name: "negative items still yields one worker", workers: 8, n: -5, want: 1, exact: true},
		{name: "zero workers means GOMAXPROCS clamped to n", workers: 0, n: 2, wantAtMost: 2, wantAtLeast: 1},
		{name: "negative workers means GOMAXPROCS clamped to n", workers: -3, n: 2, wantAtMost: 2, wantAtLeast: 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Workers(tc.workers, tc.n)
			if tc.exact {
				if got != tc.want {
					t.Fatalf("Workers(%d, %d) = %d, want %d", tc.workers, tc.n, got, tc.want)
				}
				return
			}
			if got < tc.wantAtLeast || got > tc.wantAtMost {
				t.Fatalf("Workers(%d, %d) = %d, want in [%d, %d]", tc.workers, tc.n, got, tc.wantAtLeast, tc.wantAtMost)
			}
		})
	}
}

// Edge cases through the public entry points, table-driven: empty
// inputs, worker counts past n, and panicking fns must behave the same
// for Map and ForEach.
func TestEdgeCases(t *testing.T) {
	cases := []struct {
		name       string
		workers, n int
		panicAt    int // index that panics; -1 for none
	}{
		{name: "n=0", workers: 4, n: 0, panicAt: -1},
		{name: "n negative", workers: 4, n: -7, panicAt: -1},
		{name: "workers>n", workers: 32, n: 5, panicAt: -1},
		{name: "workers negative", workers: -1, n: 9, panicAt: -1},
		{name: "panicking fn", workers: 4, n: 20, panicAt: 11},
		{name: "panicking fn serial", workers: 1, n: 20, panicAt: 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, entry := range []string{"Map", "ForEach"} {
				var ran int32
				var recovered any
				func() {
					defer func() { recovered = recover() }()
					fn := func(i int) {
						if i == tc.panicAt {
							panic("edge boom")
						}
						atomic.AddInt32(&ran, 1)
					}
					if entry == "Map" {
						Map(tc.workers, tc.n, func(i int) int { fn(i); return i })
					} else {
						ForEach(tc.workers, tc.n, fn)
					}
				}()
				if tc.panicAt >= 0 {
					if recovered == nil {
						t.Fatalf("%s: panic at index %d was swallowed", entry, tc.panicAt)
					}
				} else {
					if recovered != nil {
						t.Fatalf("%s: unexpected panic %v", entry, recovered)
					}
					want := int32(0)
					if tc.n > 0 {
						want = int32(tc.n)
					}
					if ran != want {
						t.Fatalf("%s: ran %d of %d indices", entry, ran, want)
					}
				}
			}
		})
	}
}

// ForEach must drain remaining indices after a worker panic, exactly
// like Map.
func TestForEachPanicDoesNotAbandonWork(t *testing.T) {
	var ran [64]int32
	func() {
		defer func() { _ = recover() }()
		ForEach(4, 64, func(i int) {
			if i == 0 {
				panic("first item")
			}
			atomic.AddInt32(&ran[i], 1)
		})
	}()
	for i := 1; i < 64; i++ {
		if atomic.LoadInt32(&ran[i]) != 1 {
			t.Fatalf("index %d ran %d times after a worker panic", i, ran[i])
		}
	}
}

// Property: parallel result equals serial result for any worker count.
func TestQuickParallelEqualsSerial(t *testing.T) {
	f := func(workers uint8, n uint8) bool {
		w := int(workers%16) + 1
		size := int(n)
		fn := func(i int) int { return i*31 + 7 }
		par := Map(w, size, fn)
		ser := Map(1, size, fn)
		if len(par) != len(ser) {
			return false
		}
		for i := range par {
			if par[i] != ser[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
