package lint

import (
	"go/token"
	"path/filepath"
	"testing"
)

// TestLoaderRealPackage type-checks a real module package through the
// loader and verifies type facts arrive, since every analyzer's
// precision depends on them.
func TestLoaderRealPackage(t *testing.T) {
	l := fixtureLoader(t)
	units, err := l.LoadDir(filepath.Join("..", "rng"))
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if len(units) == 0 {
		t.Fatal("no units loaded for internal/rng")
	}
	u := units[0]
	if u.Path != l.ModPath+"/internal/rng" {
		t.Errorf("unit path = %q", u.Path)
	}
	if u.Pkg == nil || len(u.Info.Uses) == 0 {
		t.Fatal("loader produced no type information")
	}
	if ds := Run(u, All()); len(ds) != 0 {
		t.Errorf("internal/rng should be lint-clean, got %v", ds)
	}
}

// TestLoaderModuleImports verifies cross-package imports inside the
// module resolve to real packages, not placeholders.
func TestLoaderModuleImports(t *testing.T) {
	l := fixtureLoader(t)
	pkg, err := l.Import(l.ModPath + "/internal/sim")
	if err != nil {
		t.Fatalf("Import: %v", err)
	}
	if pkg.Scope().Lookup("Kernel") == nil {
		t.Error("internal/sim loaded without its Kernel type")
	}
}

// TestRunOrdersDiagnostics checks findings come back sorted by file and
// position regardless of analyzer order.
func TestRunOrdersDiagnostics(t *testing.T) {
	got := analyze(t, FloatEq, "routeless/internal/fix", "fix.go", `package fix
func f(a, b float64) bool { return a == b }
func g(a, b float64) bool { return a != b }`)
	if len(got) != 2 {
		t.Fatalf("got %d diagnostics: %v", len(got), got)
	}
	if got[0].Pos.Line > got[1].Pos.Line {
		t.Errorf("diagnostics out of order: %v", got)
	}
	for _, d := range got {
		if d.Pos.Line == 0 || d.Pos.Column == 0 {
			t.Errorf("diagnostic lacks a position: %+v", d)
		}
	}
}

// TestWalkSkipsNonSource ensures the package walker ignores testdata,
// hidden, and vendor trees so fixtures never break the real run.
func TestWalkSkipsNonSource(t *testing.T) {
	dirs, err := Walk("../..")
	if err != nil {
		t.Fatalf("Walk: %v", err)
	}
	if len(dirs) == 0 {
		t.Fatal("walk found no Go directories")
	}
	for _, d := range dirs {
		base := filepath.Base(d)
		if base == "testdata" || base == ".git" || base == "vendor" {
			t.Errorf("walk descended into %s", d)
		}
	}
	found := false
	for _, d := range dirs {
		if filepath.Base(d) == "lint" {
			found = true
		}
	}
	if !found {
		t.Error("walk missed internal/lint itself")
	}
}

// TestSuppressedSameLine covers the same-line directive placement.
func TestSuppressedSameLine(t *testing.T) {
	d := Diagnostic{Pos: token.Position{Filename: "x.go", Line: 7}, Rule: "floateq"}
	dirs := []*ignoreDirective{{file: "x.go", line: 7, rule: "floateq", reason: "r"}}
	if !suppressed(d, dirs) {
		t.Error("same-line directive did not suppress")
	}
	if !dirs[0].used {
		t.Error("directive not marked used")
	}
	other := Diagnostic{Pos: token.Position{Filename: "y.go", Line: 7}, Rule: "floateq"}
	if suppressed(other, dirs) {
		t.Error("directive leaked across files")
	}
}
