package fuzz

import (
	"math"
	"math/rand"

	"routeless/internal/rng"
)

// Limits bounds the generator so a fuzz run's wall time stays
// proportional to its seed count. The zero value means the defaults.
type Limits struct {
	MaxN        int     // largest node count; default 60
	MaxDuration float64 // longest traffic time, s; default 8
	MaxFlows    int     // most CBR flows; default 6
	MaxFaults   int     // most fault specs; default 3
}

func (l Limits) withDefaults() Limits {
	if l.MaxN == 0 {
		l.MaxN = 60
	}
	if l.MaxDuration == 0 {
		l.MaxDuration = 8
	}
	if l.MaxFlows == 0 {
		l.MaxFlows = 6
	}
	if l.MaxFaults == 0 {
		l.MaxFaults = 3
	}
	return l
}

// Generate derives a scenario from the seed — a pure function: the same
// (seed, limits) always yields the same scenario, which is what makes a
// bounded fuzz sweep (-seeds A:B) reproducible end to end. All draws
// come from the seed's StreamFuzz generator child; the scenario's own
// Seed field (driving the simulation streams) is the input seed itself.
//
// The generator draws every dial unconditionally and then reconciles
// against the constraint matrix (tiles exclude fading and mobility,
// Connected requires uniform placement) by switching features off, so
// every generated scenario validates cleanly by construction — an
// invalid-scenario verdict on a generated seed means the generator and
// Validate disagree, which its test treats as a bug.
func Generate(seed int64, lim Limits) Scenario {
	lim = lim.withDefaults()
	r := rng.New(seed, rng.StreamFuzz, subGenerate)
	sc := Scenario{Seed: seed}

	sc.N = 4 + r.Intn(lim.MaxN-3)
	sc.Range = 100 + r.Float64()*150

	// Size the terrain from a target mean degree (5..12) so uniform
	// placements are usually connectable within the builder's 100-draw
	// budget while sparse outliers still occur.
	targetDeg := 5 + r.Float64()*7
	area := float64(sc.N) * math.Pi * sc.Range * sc.Range / targetDeg
	side := math.Sqrt(area)
	// Skew the aspect ratio a little; extreme strips come from the line
	// placement instead.
	aspect := 0.75 + r.Float64()*0.5
	sc.Width = side * aspect
	sc.Height = side / aspect

	switch d := r.Intn(10); {
	case d < 4:
		sc.Placement = PlaceUniform
	case d < 6:
		sc.Placement = PlaceCluster
	case d < 8:
		sc.Placement = PlaceLine
	default:
		sc.Placement = PlaceGrid
	}
	wantConnected := r.Intn(4) < 3
	wantFading := r.Intn(5) == 0
	wantTiles := 0
	if r.Intn(4) == 0 {
		wantTiles = 2 << r.Intn(2) // 2 or 4
	}
	wantMobility := r.Intn(5) == 0
	moverFrac := r.Float64()
	minSpeed := 0.5 + r.Float64()*2
	maxSpeed := minSpeed + r.Float64()*4

	sc.Protocol = protocols[r.Intn(len(protocols))]
	sc.Lambda = 0
	if r.Intn(3) == 0 {
		sc.Lambda = 0.002 + r.Float64()*0.02
	}

	nFlows := 1 + r.Intn(lim.MaxFlows)
	seen := make(map[Flow]bool, nFlows)
	for i := 0; i < nFlows; i++ {
		// Bounded rejection sampling for distinct, non-self flows; a few
		// collisions simply yield fewer flows.
		for try := 0; try < 8; try++ {
			f := Flow{Src: r.Intn(sc.N), Dst: r.Intn(sc.N)}
			if f.Src == f.Dst || seen[f] {
				continue
			}
			seen[f] = true
			sc.Flows = append(sc.Flows, f)
			break
		}
	}
	sc.Interval = 0.25 + r.Float64()*1.75
	sc.DataSize = 64
	// Duration in 0.5 s quanta keeps the shrinker's time axis discrete.
	sc.Duration = 0.5 * float64(4+r.Intn(int(lim.MaxDuration*2)-3))

	// Reconcile against the constraint matrix: tiles win over fading and
	// mobility (they exercise the rarer engine), Connected only applies
	// to uniform placement.
	sc.Connected = wantConnected && sc.Placement == PlaceUniform
	if wantTiles > 1 {
		sc.Tiles = wantTiles
	} else {
		sc.Fading = wantFading
		if wantMobility {
			movers := 1 + int(moverFrac*float64(sc.N-1))
			sc.Mobility = &Mobility{Movers: movers, MinSpeed: minSpeed, MaxSpeed: maxSpeed}
		}
	}

	nFaults := r.Intn(lim.MaxFaults + 1)
	for i := 0; i < nFaults; i++ {
		sc.Faults = append(sc.Faults, genFault(r))
	}
	return sc
}

// genFault draws one fault spec from realistic parameter ranges — the
// same shapes the churn study installs, with dials wide enough to reach
// corners the experiments never set.
func genFault(r *rand.Rand) FaultSpec {
	switch r.Intn(4) {
	case 0:
		return FaultSpec{Kind: "crash",
			OffFraction: 0.05 + r.Float64()*0.3,
			Cycle:       0.5 + r.Float64()*2,
			Sleep:       r.Intn(2) == 0}
	case 1:
		return FaultSpec{Kind: "drain",
			CapacityJ: 0.05 + r.Float64()*5,
			Period:    0.1 + r.Float64()*0.9}
	case 2:
		return FaultSpec{Kind: "degrade",
			OffsetDB: -30 + r.Float64()*20,
			Period:   0.5 + r.Float64()*4,
			Duration: 0.2 + r.Float64()*1.8}
	default:
		return FaultSpec{Kind: "jam",
			TxPowerDBm: 10 + r.Float64()*20,
			Period:     0.5 + r.Float64()*4,
			Burst:      0.1 + r.Float64()*0.9,
			SpeedMps:   1 + r.Float64()*9}
	}
}
