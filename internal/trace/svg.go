package trace

import (
	"fmt"
	"slices"
	"strings"

	"routeless/internal/geo"
	"routeless/internal/packet"
)

// SVG renders node positions and per-flow relay sets as a standalone
// SVG document — the publication-quality counterpart of Canvas. Layers
// are drawn in the order added, so add background nodes first and
// endpoints last, exactly like Canvas.
type SVG struct {
	rect   geo.Rect
	width  float64
	height float64
	body   strings.Builder
}

// NewSVG creates a renderer mapping rect onto a drawing width pixels
// wide (height follows the terrain's aspect ratio).
func NewSVG(rect geo.Rect, width float64) *SVG {
	return &SVG{
		rect:   rect,
		width:  width,
		height: width * rect.Height() / rect.Width(),
	}
}

func (s *SVG) x(p geo.Point) float64 {
	return (p.X - s.rect.Min.X) / s.rect.Width() * s.width
}

func (s *SVG) y(p geo.Point) float64 {
	return (p.Y - s.rect.Min.Y) / s.rect.Height() * s.height
}

// Dots draws a circle of the given radius and fill at every position.
func (s *SVG) Dots(ps []geo.Point, radius float64, fill string) {
	for _, p := range ps {
		fmt.Fprintf(&s.body,
			`<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s"/>`+"\n",
			s.x(p), s.y(p), radius, fill)
	}
}

// Label writes text centered at p.
func (s *SVG) Label(p geo.Point, text, fill string, size float64) {
	fmt.Fprintf(&s.body,
		`<text x="%.1f" y="%.1f" fill="%s" font-size="%.0f" text-anchor="middle" font-family="sans-serif" font-weight="bold">%s</text>`+"\n",
		s.x(p), s.y(p)+size/3, fill, size, text)
}

// Path draws a polyline through the points.
func (s *SVG) Path(ps []geo.Point, stroke string, width float64) {
	if len(ps) < 2 {
		return
	}
	var coords []string
	for _, p := range ps {
		coords = append(coords, fmt.Sprintf("%.1f,%.1f", s.x(p), s.y(p)))
	}
	fmt.Fprintf(&s.body,
		`<polyline points="%s" fill="none" stroke="%s" stroke-width="%.1f" stroke-opacity="0.6"/>`+"\n",
		strings.Join(coords, " "), stroke, width)
}

// String emits the complete SVG document.
func (s *SVG) String() string {
	return fmt.Sprintf(
		`<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+
			"\n"+`<rect width="%.0f" height="%.0f" fill="white" stroke="black"/>`+"\n%s</svg>\n",
		s.width, s.height, s.width, s.height, s.width, s.height, s.body.String())
}

// FlowSVG renders one collector's relay picture: all nodes gray, relays
// of each listed flow in its color, endpoint labels on top.
type FlowSpec struct {
	Origin packet.NodeID
	Kind   packet.Kind
	Color  string
}

// RenderSVG builds the standard flow map: positions in light gray, each
// flow's relay nodes colored, endpoints labeled.
func RenderSVG(rect geo.Rect, positions []geo.Point, c *PathCollector,
	flows []FlowSpec, labels map[packet.NodeID]string, width float64) string {
	s := NewSVG(rect, width)
	s.Dots(positions, 2, "#cccccc")
	for _, f := range flows {
		used := c.NodesUsed(f.Origin, f.Kind)
		ids := make([]int, 0, len(used))
		for id := range used {
			ids = append(ids, int(id))
		}
		slices.Sort(ids)
		pts := make([]geo.Point, 0, len(ids))
		for _, id := range ids {
			pts = append(pts, positions[id])
		}
		s.Dots(pts, 4, f.Color)
	}
	ids := make([]int, 0, len(labels))
	for id := range labels {
		ids = append(ids, int(id))
	}
	slices.Sort(ids)
	for _, id := range ids {
		s.Label(positions[id], labels[packet.NodeID(id)], "black", 18)
	}
	return s.String()
}
