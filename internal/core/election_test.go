package core

import (
	"testing"
	"testing/quick"

	"routeless/internal/packet"
	"routeless/internal/rng"
	"routeless/internal/sim"
)

// buildClique wires n electors into a fully connected cluster.
func buildClique(k *sim.Kernel, n int, policy BackoffPolicy, delay, window sim.Time, loss float64, seed int64) (*Cluster, []*Elector) {
	c := NewCluster(k, n, delay, window, loss, rng.New(seed, rng.StreamElection))
	c.ConnectAll()
	es := make([]*Elector, n)
	for i := 0; i < n; i++ {
		es[i] = NewElector(k, packet.NodeID(i), c, policy)
		c.AttachElector(es[i])
	}
	return c, es
}

func TestSingleLeaderInClique(t *testing.T) {
	k := sim.NewKernel(1)
	_, es := buildClique(k, 10, Uniform{Max: 0.01}, 1e-4, 1e-6, 0, 1)
	ctxs := map[packet.NodeID]Context{}
	cluster := es[0].medium.(*Cluster)
	cluster.TriggerAll(1, ctxs)
	k.Run()
	winners := 0
	var leader packet.NodeID = packet.None
	for _, e := range es {
		o := e.Current()
		if o.Won {
			winners++
			leader = e.ID()
		}
	}
	if winners != 1 {
		t.Fatalf("winners = %d, want exactly 1 in a clique without collisions", winners)
	}
	for _, e := range es {
		if o := e.Current(); o.Leader != leader {
			t.Fatalf("node %v believes leader is %v, want %v", e.ID(), o.Leader, leader)
		}
	}
}

func TestSmallestBackoffWins(t *testing.T) {
	// With a deterministic per-node metric (hop gradient, zero jitter
	// impossible — but distinct bands), the node with the smallest
	// h_table must win.
	k := sim.NewKernel(2)
	policy := HopGradient{Lambda: 0.001}
	_, es := buildClique(k, 5, policy, 1e-5, 1e-7, 0, 2)
	cluster := es[0].medium.(*Cluster)
	ctxs := map[packet.NodeID]Context{}
	for i := range es {
		// Node i is i+1 hops from the target, expected 1: bands are
		// disjoint, node 0 always draws the smallest delay.
		ctxs[packet.NodeID(i)] = Context{HopsToTarget: i + 1, ExpectedHops: 1}
	}
	cluster.TriggerAll(1, ctxs)
	k.Run()
	if !es[0].Current().Won {
		t.Fatalf("node 0 (closest) should win; outcomes: %v", outcomes(es))
	}
	for _, e := range es[1:] {
		if e.Current().Won {
			t.Fatalf("node %v also won", e.ID())
		}
	}
}

func outcomes(es []*Elector) []Outcome {
	out := make([]Outcome, len(es))
	for i, e := range es {
		out[i] = e.Current()
	}
	return out
}

func TestCollisionCanYieldNoLeader(t *testing.T) {
	// §2: "Multiple nodes may choose almost identical backoff delays,
	// leading to a collision." With message latency (0.1 s) far longer
	// than the whole backoff spread (1 ms), every node's timer expires
	// before any announcement lands, all announcements overlap in
	// flight, and the collision window destroys them all.
	k := sim.NewKernel(3)
	_, es := buildClique(k, 5, Uniform{Max: 1e-3}, 0.1, 1e-2, 0, 3)
	cluster := es[0].medium.(*Cluster)
	cluster.TriggerAll(1, map[packet.NodeID]Context{})
	k.Run()
	// Everyone whose timer fired thinks they won; nobody heard anyone.
	for _, e := range es {
		o := e.Current()
		if !o.Won && o.Leader != packet.None {
			t.Fatalf("node %v learned leader %v through a collided medium", e.ID(), o.Leader)
		}
	}
	if cluster.Stats().Collided == 0 {
		t.Fatal("expected collisions")
	}
}

func TestPartitionYieldsMultipleLeaders(t *testing.T) {
	// Two disjoint cliques: one leader each — the §2 "announcement out
	// of radio range" case. "Multiple local leaders may be welcomed for
	// redundancy."
	k := sim.NewKernel(4)
	c := NewCluster(k, 6, 1e-4, 1e-6, 0, rng.New(4, rng.StreamElection))
	for _, pair := range [][2]int{{0, 1}, {0, 2}, {1, 2}, {3, 4}, {3, 5}, {4, 5}} {
		c.Connect(pair[0], pair[1])
	}
	es := make([]*Elector, 6)
	for i := range es {
		es[i] = NewElector(k, packet.NodeID(i), c, Uniform{Max: 0.01})
		c.AttachElector(es[i])
	}
	c.TriggerAll(1, map[packet.NodeID]Context{})
	k.Run()
	winners := 0
	for _, e := range es {
		if e.Current().Won {
			winners++
		}
	}
	if winners != 2 {
		t.Fatalf("winners = %d, want 2 (one per partition)", winners)
	}
}

func TestArbiterAcknowledgesWinner(t *testing.T) {
	k := sim.NewKernel(5)
	c := NewCluster(k, 6, 1e-4, 1e-6, 0, rng.New(5, rng.StreamElection))
	c.ConnectAll()
	es := make([]*Elector, 5)
	for i := range es {
		es[i] = NewElector(k, packet.NodeID(i), c, Uniform{Max: 0.01})
		c.AttachElector(es[i])
	}
	arb := NewArbiter(k, 5, c, 0.1)
	c.AttachArbiter(arb)
	var elected packet.NodeID = packet.None
	arb.OnElected = func(l packet.NodeID, round uint32) { elected = l }
	arb.Trigger()
	k.Run()
	if elected == packet.None {
		t.Fatal("arbiter never acknowledged a leader")
	}
	if arb.Leader() != elected {
		t.Fatalf("Leader() = %v, want %v", arb.Leader(), elected)
	}
	if arb.Stats().Acks != 1 {
		t.Fatalf("acks = %d, want 1", arb.Stats().Acks)
	}
}

func TestArbiterRetriggersThroughLoss(t *testing.T) {
	// A very lossy medium: the first rounds may elect nobody the
	// arbiter hears; §2 requires it to re-trigger until someone wins.
	k := sim.NewKernel(6)
	c := NewCluster(k, 4, 1e-4, 1e-6, 0.7, rng.New(6, rng.StreamElection))
	c.ConnectAll()
	es := make([]*Elector, 3)
	for i := range es {
		es[i] = NewElector(k, packet.NodeID(i), c, Uniform{Max: 0.005})
		c.AttachElector(es[i])
	}
	arb := NewArbiter(k, 3, c, 0.02)
	c.AttachArbiter(arb)
	arb.Trigger()
	k.SetHorizon(60)
	k.Run()
	if arb.Leader() == packet.None {
		t.Fatalf("no leader after unbounded retries (triggers=%d)", arb.Stats().Triggers)
	}
	if arb.Stats().Triggers < 2 {
		t.Skip("loss pattern let round 1 through; nothing to assert")
	}
}

func TestArbiterGivesUpAfterMaxRetries(t *testing.T) {
	// No electors attached at all: nobody can ever announce.
	k := sim.NewKernel(7)
	c := NewCluster(k, 2, 1e-4, 1e-6, 0, rng.New(7, rng.StreamElection))
	c.ConnectAll()
	arb := NewArbiter(k, 0, c, 0.01)
	arb.MaxRetries = 3
	gaveUp := false
	arb.OnGaveUp = func(round uint32) { gaveUp = true }
	arb.Trigger()
	k.Run()
	if !gaveUp {
		t.Fatal("arbiter never gave up")
	}
	if got := arb.Stats().Triggers; got != 4 { // initial + 3 retries
		t.Fatalf("triggers = %d, want 4", got)
	}
}

func TestAckCancelsPendingBackoffs(t *testing.T) {
	// A node that misses the winner's announcement (directed topology)
	// must still cancel on the arbiter's ACK: §2's "upon the receipt of
	// which other nodes will cancel their backoff timers, even if they
	// have not received any announcement packet."
	k := sim.NewKernel(8)
	c := NewCluster(k, 4, 1e-4, 1e-9, 0, rng.New(8, rng.StreamElection))
	// Node 0: fast candidate. Node 1: slow candidate that cannot hear 0.
	// Node 2: arbiter hearing everyone, heard by everyone.
	c.ConnectOneWay(0, 2)
	c.ConnectOneWay(1, 2)
	c.ConnectOneWay(2, 0)
	c.ConnectOneWay(2, 1)
	e0 := NewElector(k, 0, c, HopGradient{Lambda: 0.001})
	e1 := NewElector(k, 1, c, HopGradient{Lambda: 0.001})
	c.AttachElector(e0)
	c.AttachElector(e1)
	arb := NewArbiter(k, 2, c, 0.5)
	c.AttachArbiter(arb)
	r := rng.New(80, rng.StreamElection)
	// Disjoint bands: node 0 in [0, λ), node 1 in [5λ, 6λ).
	e0.ObserveSync(1, Context{HopsToTarget: 1, ExpectedHops: 1, Rand: r})
	e1.ObserveSync(1, Context{HopsToTarget: 6, ExpectedHops: 1, Rand: r})
	arb.Trigger() // round bookkeeping: arbiter considers this round 1
	k.Run()
	if !e0.Current().Won {
		t.Fatal("node 0 should have won")
	}
	if e1.Current().Won {
		t.Fatal("node 1 should have been cancelled by the ACK")
	}
	if e1.Current().Leader != 0 {
		t.Fatalf("node 1 learned leader %v, want 0", e1.Current().Leader)
	}
	if e1.Stats().AckCancels != 1 {
		t.Fatalf("AckCancels = %d, want 1", e1.Stats().AckCancels)
	}
}

func TestStaleRoundIgnored(t *testing.T) {
	k := sim.NewKernel(9)
	_, es := buildClique(k, 3, Uniform{Max: 0.01}, 1e-4, 1e-6, 0, 9)
	cluster := es[0].medium.(*Cluster)
	cluster.TriggerAll(2, map[packet.NodeID]Context{})
	k.Run()
	syncsBefore := es[0].Stats().Syncs
	cluster.TriggerAll(1, map[packet.NodeID]Context{}) // stale
	cluster.TriggerAll(2, map[packet.NodeID]Context{}) // duplicate
	k.Run()
	if es[0].Stats().Syncs != syncsBefore {
		t.Fatal("stale/duplicate round restarted the elector")
	}
}

func TestAbstentionCounted(t *testing.T) {
	k := sim.NewKernel(10)
	_, es := buildClique(k, 3, HopGradient{Lambda: 0.001}, 1e-4, 1e-6, 0, 10)
	cluster := es[0].medium.(*Cluster)
	ctxs := map[packet.NodeID]Context{
		0: {HopsToTarget: -1}, // no table entry: abstains
		1: {HopsToTarget: 2, ExpectedHops: 1},
		2: {HopsToTarget: 3, ExpectedHops: 1},
	}
	cluster.TriggerAll(1, ctxs)
	k.Run()
	if es[0].Stats().Abstained != 1 {
		t.Fatalf("node 0 Abstained = %d, want 1", es[0].Stats().Abstained)
	}
	if es[0].Current().Won {
		t.Fatal("abstaining node won")
	}
	// It still learns the leader from the announcement.
	if es[0].Current().Leader == packet.None {
		t.Fatal("abstaining node did not learn the leader")
	}
	if !es[1].Current().Won {
		t.Fatal("node 1 (smallest band) should win")
	}
}

func TestOnOutcomeFiresOncePerRound(t *testing.T) {
	k := sim.NewKernel(11)
	_, es := buildClique(k, 4, Uniform{Max: 0.01}, 1e-4, 1e-6, 0, 11)
	cluster := es[0].medium.(*Cluster)
	counts := make([]int, len(es))
	for i, e := range es {
		i := i
		e.OnOutcome = func(Outcome) { counts[i]++ }
	}
	cluster.TriggerAll(1, map[packet.NodeID]Context{})
	k.Run()
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("node %d OnOutcome fired %d times, want 1", i, c)
		}
	}
}

func TestElectionDeterministicAcrossRuns(t *testing.T) {
	run := func() packet.NodeID {
		k := sim.NewKernel(12)
		_, es := buildClique(k, 8, Uniform{Max: 0.01}, 1e-4, 1e-6, 0.1, 12)
		cluster := es[0].medium.(*Cluster)
		cluster.TriggerAll(1, map[packet.NodeID]Context{})
		k.Run()
		for _, e := range es {
			if e.Current().Won {
				return e.ID()
			}
		}
		return packet.None
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic winner: %v vs %v", a, b)
	}
}

func TestManyRoundsLeaderDistribution(t *testing.T) {
	// Over many uniform-policy rounds in a clique every node should win
	// sometimes — the election does not systematically favor ids.
	k := sim.NewKernel(13)
	const n = 5
	_, es := buildClique(k, n, Uniform{Max: 0.01}, 1e-5, 1e-8, 0, 13)
	cluster := es[0].medium.(*Cluster)
	wins := map[packet.NodeID]int{}
	for round := uint32(1); round <= 200; round++ {
		cluster.TriggerAll(round, map[packet.NodeID]Context{})
		k.Run()
		for _, e := range es {
			if o := e.Current(); o.Round == round && o.Won {
				wins[e.ID()]++
			}
		}
	}
	if len(wins) < n {
		t.Fatalf("only %d/%d nodes ever won: %v", len(wins), n, wins)
	}
}

// Property: on any random connected topology with an arbiter wired to
// every elector, the election eventually resolves — at least one node
// wins and the arbiter acknowledges it.
func TestQuickElectionAlwaysResolves(t *testing.T) {
	f := func(seed int64, sz uint8, lossPct uint8) bool {
		n := int(sz%8) + 2
		loss := float64(lossPct%60) / 100.0
		k := sim.NewKernel(seed)
		c := NewCluster(k, n+1, 1e-4, 1e-6, loss, rng.New(seed, rng.StreamElection))
		c.ConnectAll()
		es := make([]*Elector, n)
		for i := 0; i < n; i++ {
			es[i] = NewElector(k, packet.NodeID(i), c, Uniform{Max: 0.01})
			c.AttachElector(es[i])
		}
		arb := NewArbiter(k, packet.NodeID(n), c, 0.05)
		c.AttachArbiter(arb)
		arb.Trigger()
		k.SetHorizon(600)
		k.Run()
		if arb.Leader() == packet.None {
			return false
		}
		// The acknowledged leader must actually believe it won its round.
		for _, e := range es {
			if e.ID() == arb.Leader() {
				return e.Current().Won
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
