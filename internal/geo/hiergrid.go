package geo

// HierGrid is a two-level spatial index: the flat fine-cell Grid,
// plus a coarse lattice of blocks (blockSpan×blockSpan fine cells each)
// carrying occupancy counts and allowing whole-cell classification
// against a query disk. It answers the same queries as Grid with the
// same results in the same order — callers cannot tell the two apart —
// but a radius query skips empty block runs without touching their
// cells and bulk-appends cells that lie entirely inside the disk
// without a distance test per point.
//
// The fine level is the existing Grid, so MoveTo, At, and Nearest are
// the proven implementations; only WithinRadius is reimplemented on
// top of the hierarchy. At million-node scale the index is what keeps
// link-cache construction O(neighborhood): a query visits the O(r²)
// cells the disk overlaps, never a function of N.
type HierGrid struct {
	fine *Grid

	// Coarse level: blockSpan×blockSpan fine cells per block, row-major
	// like the fine cells. counts[b] is the number of points currently
	// binned in block b's cells.
	bcols  int
	brows  int
	counts []int32
}

// blockSpan is the coarse aggregation factor: each block covers an
// 8×8 run of fine cells, enough that one empty-block test replaces 64
// cell probes in sparse regions while the counts array stays 1/64th
// the size of the cell table.
const blockSpan = 8

// NewHierGrid builds the two-level index over pts covering rect with
// the given fine cell size; semantics match NewGrid exactly.
func NewHierGrid(rect Rect, cell float64, pts []Point) *HierGrid {
	fine := NewGrid(rect, cell, pts)
	h := &HierGrid{
		fine:  fine,
		bcols: (fine.cols + blockSpan - 1) / blockSpan,
		brows: (fine.rows + blockSpan - 1) / blockSpan,
	}
	h.counts = make([]int32, h.bcols*h.brows)
	for c, ids := range fine.cells {
		h.counts[h.blockOfCell(c)] += int32(len(ids))
	}
	return h
}

// blockOfCell maps a fine cell index to its coarse block index.
func (h *HierGrid) blockOfCell(c int) int {
	cx, cy := c%h.fine.cols, c/h.fine.cols
	return (cy/blockSpan)*h.bcols + cx/blockSpan
}

// Len returns the number of indexed points.
func (h *HierGrid) Len() int { return h.fine.Len() }

// At returns the position of point id.
func (h *HierGrid) At(id int) Point { return h.fine.At(id) }

// Cell returns the fine cell size.
func (h *HierGrid) Cell() float64 { return h.fine.cell }

// MoveTo updates the position of point id, keeping both levels in
// sync.
func (h *HierGrid) MoveTo(id int, p Point) {
	old := int(h.fine.loc[id])
	h.fine.MoveTo(id, p)
	nc := int(h.fine.loc[id])
	if nc == old {
		return
	}
	h.counts[h.blockOfCell(old)]--
	h.counts[h.blockOfCell(nc)]++
}

// Nearest returns the id of the indexed point closest to center, or
// -1 when the grid is empty.
func (h *HierGrid) Nearest(center Point) int { return h.fine.Nearest(center) }

// WithinRadius appends to dst the ids of all points within radius of
// center (excluding the id `exclude`; pass a negative value to exclude
// nothing) and returns the extended slice. The result — including its
// order — is identical to Grid.WithinRadius over the same points: fine
// cells are visited row-major and points within a cell in insertion
// order; the hierarchy only decides how much per-cell work each visit
// costs.
func (h *HierGrid) WithinRadius(dst []int, center Point, radius float64, exclude int) []int {
	g := h.fine
	r2 := radius * radius
	minCX := int((center.X - radius - g.origin.X) / g.cell)
	maxCX := int((center.X + radius - g.origin.X) / g.cell)
	minCY := int((center.Y - radius - g.origin.Y) / g.cell)
	maxCY := int((center.Y + radius - g.origin.Y) / g.cell)
	if minCX < 0 {
		minCX = 0
	}
	if minCY < 0 {
		minCY = 0
	}
	if maxCX >= g.cols {
		maxCX = g.cols - 1
	}
	if maxCY >= g.rows {
		maxCY = g.rows - 1
	}
	for cy := minCY; cy <= maxCY; cy++ {
		row := cy * g.cols
		brow := (cy / blockSpan) * h.bcols
		for cx := minCX; cx <= maxCX; {
			// One coarse probe covers the rest of this block's columns:
			// an empty block skips them all in a single compare.
			blockEnd := (cx/blockSpan + 1) * blockSpan
			if blockEnd > maxCX+1 {
				blockEnd = maxCX + 1
			}
			if h.counts[brow+cx/blockSpan] == 0 {
				cx = blockEnd
				continue
			}
			for ; cx < blockEnd; cx++ {
				ids := g.cells[row+cx]
				if len(ids) == 0 {
					continue
				}
				if h.cellInside(cx, cy, center, r2) {
					// Every point of the cell is within the radius: append
					// without per-point distance math. The exclude test
					// still runs — exclusion is by id, not by geometry.
					for _, id := range ids {
						if int(id) != exclude {
							dst = append(dst, int(id))
						}
					}
					continue
				}
				for _, id := range ids {
					if int(id) == exclude {
						continue
					}
					if g.pts[id].Dist2(center) <= r2 {
						dst = append(dst, int(id))
					}
				}
			}
		}
	}
	return dst
}

// cellInside reports whether fine cell (cx, cy) lies entirely within
// the disk of squared radius r2 around center: its farthest corner is
// inside. Clamped boundary cells can hold points outside their nominal
// rectangle, so cells on the lattice border never classify as inside.
// The box is inflated by a slack far above coordinate ulp scale before
// the corner test, so a point that floor-binning placed a rounding
// error outside its nominal cell can never be bulk-appended when the
// per-point distance test would have rejected it — misclassifying
// toward "not inside" only costs the distance test, never correctness.
func (h *HierGrid) cellInside(cx, cy int, center Point, r2 float64) bool {
	g := h.fine
	if cx == 0 || cy == 0 || cx == g.cols-1 || cy == g.rows-1 {
		return false
	}
	slack := g.cell * 1e-9
	x0 := g.origin.X + float64(cx)*g.cell
	y0 := g.origin.Y + float64(cy)*g.cell
	dx := center.X - x0
	if o := x0 + g.cell - center.X; o > dx {
		dx = o
	}
	dy := center.Y - y0
	if o := y0 + g.cell - center.Y; o > dy {
		dy = o
	}
	dx += slack
	dy += slack
	return dx*dx+dy*dy <= r2
}
