package phy

import (
	"math/rand"
	"sort"

	"routeless/internal/geo"
	"routeless/internal/packet"
	"routeless/internal/propagation"
	"routeless/internal/sim"
)

// Channel is the shared broadcast medium. It knows every radio's
// position, computes per-receiver power through a propagation model and
// an optional fader, and schedules signal start/end events with the
// true propagation delay.
type Channel struct {
	kernel *sim.Kernel
	model  propagation.Model
	fader  propagation.Fader
	frng   *rand.Rand // fading draws
	grid   *geo.Grid
	radios []*Radio

	// cutoff is the distance beyond which a transmission cannot affect
	// a receiver even after fading; signals past it are not scheduled.
	cutoff float64

	uid   uint64
	stats ChannelStats

	scratch []int
}

// ChannelStats aggregates medium-wide counters.
type ChannelStats struct {
	Transmissions uint64 // frames put on the air
	Deliveries    uint64 // (radio, frame) pairs scheduled
}

// ChannelConfig configures the medium.
type ChannelConfig struct {
	Model propagation.Model
	Fader propagation.Fader
	// FadeMarginDB widens the interference cutoff to admit fading
	// upswings; ignored with a nil/NoFade fader.
	FadeMarginDB float64
	// Rng drives fading; may be nil when Fader is nil/NoFade.
	Rng *rand.Rand
}

// NewChannel builds a medium over the given node positions inside rect.
// Radios are created eagerly, one per position, all with params; use
// Radio(i) to retrieve them.
func NewChannel(k *sim.Kernel, rect geo.Rect, positions []geo.Point, params Params, cfg ChannelConfig) *Channel {
	model := cfg.Model
	if model == nil {
		model = propagation.NewFreeSpace()
	}
	fader := cfg.Fader
	if fader == nil {
		fader = propagation.NoFade{}
	}
	cs := params.CSThreshDBm
	if _, noFade := fader.(propagation.NoFade); !noFade {
		cs -= cfg.FadeMarginDB
	}
	cutoff := propagation.RangeFor(model, params.TxPowerDBm, cs, 1,
		rect.Width()+rect.Height()+1)
	if cutoff <= 0 {
		cutoff = rect.Width() + rect.Height()
	}
	cell := cutoff / 2
	if cell <= 0 || cell > rect.Width() {
		cell = rect.Width()/4 + 1
	}
	ch := &Channel{
		kernel: k,
		model:  model,
		fader:  fader,
		frng:   cfg.Rng,
		grid:   geo.NewGrid(rect, cell, positions),
		cutoff: cutoff,
	}
	ch.radios = make([]*Radio, len(positions))
	for i := range positions {
		ch.radios[i] = &Radio{
			id:      packet.NodeID(i),
			params:  params,
			kernel:  k,
			channel: ch,
			state:   StateIdle,
			energy:  NewEnergy(DefaultPower()),
		}
	}
	return ch
}

// Radio returns the transceiver at position index i.
func (c *Channel) Radio(i int) *Radio { return c.radios[i] }

// NumRadios returns the number of attached transceivers.
func (c *Channel) NumRadios() int { return len(c.radios) }

// Position returns node i's location.
func (c *Channel) Position(i int) geo.Point { return c.grid.At(i) }

// MoveTo relocates node i — the mobility extension. Transmissions
// already in flight are unaffected (their powers were computed at
// transmit time); subsequent transmissions use the new position.
func (c *Channel) MoveTo(i int, p geo.Point) { c.grid.MoveTo(i, p) }

// Model returns the propagation model in use.
func (c *Channel) Model() propagation.Model { return c.model }

// Cutoff returns the interference cutoff distance in meters.
func (c *Channel) Cutoff() float64 { return c.cutoff }

// Stats returns medium-wide counters.
func (c *Channel) Stats() ChannelStats { return c.stats }

// MeanPowerAt returns the deterministic (unfaded) receive power in dBm
// between two node indices — used by tests and by range queries.
func (c *Channel) MeanPowerAt(from, to int) float64 {
	d := c.grid.At(from).Dist(c.grid.At(to))
	return c.model.ReceivedPower(c.radios[from].params.TxPowerDBm, d)
}

// transmit fans a frame out to every radio within the cutoff range.
// Receivers are visited in id order so fading draws are reproducible.
func (c *Channel) transmit(src *Radio, pkt *packet.Packet, dur sim.Time) {
	c.stats.Transmissions++
	if pkt.UID == 0 {
		// Assign once per frame: ARQ retransmissions keep their UID so
		// receivers can suppress duplicates of the same frame.
		c.uid++
		pkt.UID = c.uid
	}
	srcIdx := int(src.id)
	pos := c.grid.At(srcIdx)
	c.scratch = c.grid.WithinRadius(c.scratch[:0], pos, c.cutoff, srcIdx)
	sort.Ints(c.scratch)
	now := c.kernel.Now()
	for _, idx := range c.scratch {
		rcv := c.radios[idx]
		d := pos.Dist(c.grid.At(idx))
		p := c.model.ReceivedPower(src.params.TxPowerDBm, d)
		p = c.fader.Fade(c.frng, p)
		if p < rcv.params.CSThreshDBm {
			continue // too weak to sense or corrupt: not scheduled
		}
		s := &signal{
			pkt:      pkt.Clone(),
			powerDBm: p,
			powerMW:  propagation.DBmToMilliwatt(p),
		}
		delay := sim.Time(propagation.Delay(d))
		s.end = now + delay + dur
		c.stats.Deliveries++
		c.kernel.At(now+delay, func() { rcv.signalStart(s) })
		c.kernel.At(s.end, func() { rcv.signalEnd(s) })
	}
}

// NeighborCount returns how many nodes sit within the decode range of
// node i (deterministic power model, no fading) — a topology metric
// used by experiments and tests.
func (c *Channel) NeighborCount(i int) int {
	r := c.radios[i]
	rangeM := propagation.RangeFor(c.model, r.params.TxPowerDBm, r.params.RxThreshDBm, 1, c.cutoff+1)
	ids := c.grid.WithinRadius(nil, c.grid.At(i), rangeM, i)
	return len(ids)
}

// DecodeRange returns the deterministic decode range of node i's
// transmitter against its own receive threshold.
func (c *Channel) DecodeRange(i int) float64 {
	r := c.radios[i]
	return propagation.RangeFor(c.model, r.params.TxPowerDBm, r.params.RxThreshDBm, 1, c.cutoff+1)
}

// Connected reports whether the deterministic unit-disk graph induced
// by the decode range is connected — experiments regenerate topologies
// until it is, matching the paper's implicit assumption that flooding
// reaches everyone.
func (c *Channel) Connected() bool {
	n := len(c.radios)
	if n == 0 {
		return true
	}
	rangeM := c.DecodeRange(0)
	visited := make([]bool, n)
	stack := []int{0}
	visited[0] = true
	count := 1
	var buf []int
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		buf = c.grid.WithinRadius(buf[:0], c.grid.At(v), rangeM, v)
		for _, u := range buf {
			if !visited[u] {
				visited[u] = true
				count++
				stack = append(stack, u)
			}
		}
	}
	return count == n
}
