package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// FaultRand forbids fault-plane functions from accepting a raw
// *math/rand.Rand parameter. The fault plane's determinism contract
// says every fault stream derives from the network seed through
// internal/rng labels (Injector.stream); a constructor or installer
// that takes a caller-supplied generator reopens the door to
// call-order-dependent, seed-unstable fault schedules.
var FaultRand = &Analyzer{
	Name: "faultrand",
	Doc:  "fault-plane functions must not take *math/rand.Rand; derive per-spec streams from the network seed",
	Run:  runFaultRand,
}

// inFaultPkg reports whether the unit is the fault plane proper (a
// package named fault under internal/).
func inFaultPkg(p *Pass) bool {
	return p.InInternal() &&
		(strings.HasSuffix(p.Path, "/fault") || strings.Contains(p.Path, "/fault/"))
}

func runFaultRand(p *Pass) {
	if !inFaultPkg(p) {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Type.Params == nil {
				continue
			}
			for _, field := range fd.Type.Params.List {
				if isRandPointer(p.TypeOf(field.Type)) {
					p.Reportf(field.Pos(), "%s takes a raw *rand.Rand; fault streams must derive from the network seed (Injector.stream)",
						fd.Name.Name)
				}
			}
		}
	}
}

// isRandPointer reports whether t is *math/rand.Rand (either flavor).
func isRandPointer(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Rand" && obj.Pkg() != nil && randPackages[obj.Pkg().Path()]
}
