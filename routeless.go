// Package routeless is a discrete-event wireless network simulator and
// protocol suite reproducing Chen, Branch & Szymanski, "Local Leader
// Election, Signal Strength Aware Flooding, and Routeless Routing"
// (WMAN/IPDPS 2005).
//
// The package is a façade over the internal implementation:
//
//   - the local leader election engine (the paper's §2 contribution):
//     Elector, Arbiter, and the BackoffPolicy metric family;
//   - the flooding family (§3): counter-1 flooding and SSAF;
//   - Routeless Routing (§4) with an AODV baseline and a simplified
//     Gradient Routing comparator;
//   - the substrate they run on: a deterministic DES kernel, free-space
//     /two-ray/shadowing/Rayleigh propagation, an SINR radio model, and
//     a CSMA/CA MAC with a priority queue between NET and MAC;
//   - the experiment harness regenerating every figure of the paper's
//     evaluation (see internal/experiments and cmd/wmansim).
//
// # Quickstart
//
//	nw := routeless.NewNetwork(
//		routeless.WithN(100),
//		routeless.WithSeed(42),
//		routeless.WithEnsureConnected(),
//	)
//	nw.Install(func(n *routeless.Node) routeless.Protocol {
//		return routeless.NewRouteless(routeless.RoutelessConfig{})
//	})
//	nw.Nodes[7].OnAppReceive = func(p *routeless.Packet) { /* delivered */ }
//	nw.Nodes[0].Net.Send(7, 256)
//	nw.Run(10) // simulated seconds
//
// NewNetwork also accepts a full NetworkConfig struct literal — the
// struct is itself an Option — so both call forms are supported:
//
//	nw := routeless.NewNetwork(routeless.NetworkConfig{
//		N: 100, Seed: 42, EnsureConnected: true,
//	})
//
// Deterministic fault injection (crashes, battery drain, link
// shadowing, jamming) rides along as an option:
//
//	nw := routeless.NewNetwork(
//		routeless.WithN(100), routeless.WithSeed(42),
//		routeless.WithFaults(routeless.FaultPlan{
//			routeless.Crash(0.05),
//			routeless.Jam(24.5),
//		}),
//	)
//
// See examples/ for runnable programs and DESIGN.md for the system
// inventory.
package routeless

import (
	"routeless/internal/core"
	"routeless/internal/fault"
	"routeless/internal/flood"
	"routeless/internal/geo"
	"routeless/internal/node"
	"routeless/internal/packet"
	"routeless/internal/propagation"
	"routeless/internal/routing"
	"routeless/internal/sim"
	"routeless/internal/stats"
	"routeless/internal/traffic"
)

// Simulation kernel.
type (
	// Kernel is the discrete-event scheduler every simulation runs on.
	Kernel = sim.Kernel
	// Time is simulation time in seconds.
	Time = sim.Time
	// Timer is a restartable one-shot timer bound to a Kernel.
	Timer = sim.Timer
	// Ticker repeats a callback at a fixed period.
	Ticker = sim.Ticker
)

// NewKernel returns a kernel seeded for reproducible runs.
func NewKernel(seed int64) *Kernel { return sim.NewKernel(seed) }

// Topology and packets.
type (
	// Point is a node position in meters.
	Point = geo.Point
	// Rect is the simulation terrain.
	Rect = geo.Rect
	// NodeID identifies a node.
	NodeID = packet.NodeID
	// Packet is the in-simulation packet model.
	Packet = packet.Packet
	// Kind classifies packets.
	Kind = packet.Kind
)

// Broadcast is the MAC destination addressing all nodes in range.
const Broadcast = packet.Broadcast

// Packet kinds most useful to applications and hooks.
const (
	// KindData is an application payload routed hop by hop.
	KindData = packet.KindData
	// KindFlood is a flooded application payload.
	KindFlood = packet.KindFlood
	// KindDiscovery is a Routeless path discovery packet.
	KindDiscovery = packet.KindDiscovery
	// KindReply is a Routeless path reply packet.
	KindReply = packet.KindReply
)

// NewRect returns the terrain spanning (0,0)–(w,h) meters.
func NewRect(w, h float64) Rect { return geo.NewRect(w, h) }

// Network assembly.
type (
	// Network is a fully assembled simulation.
	Network = node.Network
	// Node is one simulated wireless node.
	Node = node.Node
	// Protocol is a network-layer implementation.
	Protocol = node.Protocol
	// FailureProcess injects §4.3 duty-cycle transceiver failures.
	// Prefer the fault plane's Crash spec, which drives the same
	// process with metrics and exclusion handling built in.
	FailureProcess = node.FailureProcess
)

// NetworkConfig describes a network to build. It doubles as an Option:
// passing a whole struct literal to NewNetwork replaces the accumulated
// field options, so the original call form keeps working unchanged.
type NetworkConfig node.Config

func (c NetworkConfig) apply(s *netSetup) { s.cfg = node.Config(c) }

// Option configures NewNetwork. Options are applied in order; a
// NetworkConfig struct literal is itself an Option.
type Option interface{ apply(s *netSetup) }

// netSetup accumulates NewNetwork options before construction.
type netSetup struct {
	cfg    node.Config
	faults fault.Plan
}

// optionFunc adapts a function to the Option interface.
type optionFunc func(*netSetup)

func (f optionFunc) apply(s *netSetup) { f(s) }

// WithN sets the node count (ignored when positions are set).
func WithN(n int) Option { return optionFunc(func(s *netSetup) { s.cfg.N = n }) }

// WithSeed sets the seed driving every random stream in the network.
func WithSeed(seed int64) Option { return optionFunc(func(s *netSetup) { s.cfg.Seed = seed }) }

// WithRect sets the terrain.
func WithRect(r Rect) Option { return optionFunc(func(s *netSetup) { s.cfg.Rect = r }) }

// WithRange sets the calibrated transmission range in meters.
func WithRange(m float64) Option { return optionFunc(func(s *netSetup) { s.cfg.Range = m }) }

// WithPositions places nodes explicitly instead of uniformly at random.
func WithPositions(pts []Point) Option {
	return optionFunc(func(s *netSetup) { s.cfg.Positions = pts })
}

// WithModel sets the propagation model (default free space).
func WithModel(m PropagationModel) Option {
	return optionFunc(func(s *netSetup) { s.cfg.Model = m })
}

// WithEnsureConnected regenerates random placements until the
// unit-disk graph is connected.
func WithEnsureConnected() Option {
	return optionFunc(func(s *netSetup) { s.cfg.EnsureConnected = true })
}

// WithFaults installs the fault plan against the network after
// construction. An empty plan is inert. For access to the injector
// handle (crash processes, for instance), build the network first and
// call InstallFaults directly.
func WithFaults(plan FaultPlan) Option {
	return optionFunc(func(s *netSetup) { s.faults = plan })
}

// NewNetwork builds a network from the options. Both call forms work:
// a single NetworkConfig struct literal, or field options like WithN.
// It panics on nonsensical configuration; TryNewNetwork reports the
// same conditions as error values.
func NewNetwork(opts ...Option) *Network {
	var s netSetup
	for _, o := range opts {
		o.apply(&s)
	}
	nw := node.New(s.cfg)
	if len(s.faults) > 0 {
		fault.Install(nw, s.faults)
	}
	return nw
}

// TryNewNetwork builds a network from the options, returning an error
// instead of panicking when construction cannot succeed: non-positive
// N, no connected placement found under WithEnsureConnected, a tiled
// configuration combined with fading, or an invalid fault plan. The
// success path is bitwise identical to NewNetwork's, so generated
// scenarios (the fuzzer's) and hand-written experiments share one
// construction semantics.
func TryNewNetwork(opts ...Option) (*Network, error) {
	var s netSetup
	for _, o := range opts {
		o.apply(&s)
	}
	nw, err := node.TryNew(s.cfg)
	if err != nil {
		return nil, err
	}
	if len(s.faults) > 0 {
		if _, err := fault.TryInstall(nw, s.faults); err != nil {
			return nil, err
		}
	}
	return nw, nil
}

// NewFailureProcess builds a duty-cycle failure process for n.
var NewFailureProcess = node.NewFailureProcess

// Fault injection (the deterministic fault plane).
type (
	// FaultPlan is an ordered list of fault specs to install.
	FaultPlan = fault.Plan
	// FaultSpec is one typed fault in a plan (closed interface).
	FaultSpec = fault.Spec
	// FaultInjector is the handle InstallFaults returns.
	FaultInjector = fault.Injector
	// CrashSpec is the §4.3 duty-cycle crash/recovery fault.
	CrashSpec = fault.CrashSpec
	// DrainSpec is the battery-depletion fault.
	DrainSpec = fault.DrainSpec
	// DegradeSpec is the transient per-link shadowing fault.
	DegradeSpec = fault.DegradeSpec
	// JamSpec is the roaming interference-only jammer.
	JamSpec = fault.JamSpec
)

// Crash returns a duty-cycle crash fault with the given off fraction.
var Crash = fault.Crash

// Drain returns a battery-depletion fault with the given budget.
var Drain = fault.Drain

// Degrade returns a per-link shadowing fault with the given offset.
var Degrade = fault.Degrade

// Jam returns a roaming jammer with the given transmit power.
var Jam = fault.Jam

// InstallFaults wires a fault plan into a built network and returns
// the injector handle. WithFaults is the option-form equivalent.
var InstallFaults = fault.Install

// Local leader election (§2).
type (
	// Elector is one node's participation in local leader elections.
	Elector = core.Elector
	// Arbiter implements §2's reliability extension.
	Arbiter = core.Arbiter
	// ElectionOutcome is an elector's view of a finished round.
	ElectionOutcome = core.Outcome
	// Medium abstracts the broadcast neighborhood electors run over.
	Medium = core.Medium
	// Cluster is an abstract lossy test medium.
	Cluster = core.Cluster
	// BackoffPolicy derives election backoff delays from a metric.
	BackoffPolicy = core.BackoffPolicy
	// PolicyContext carries the metric inputs at a sync point.
	PolicyContext = core.Context
	// UniformPolicy is the classic random backoff.
	UniformPolicy = core.Uniform
	// SignalStrengthPolicy is SSAF's metric (§3).
	SignalStrengthPolicy = core.SignalStrength
	// HopGradientPolicy is Routeless Routing's metric (§4.1).
	HopGradientPolicy = core.HopGradient
	// WeightedPolicy combines metrics.
	WeightedPolicy = core.Weighted
	// GradientSignalPolicy is the hop gradient with SSAF-style
	// tie-breaking inside each band (the conclusion's combination).
	GradientSignalPolicy = core.GradientSignal
	// LocationPolicy is idealized location-based flooding (§3).
	LocationPolicy = core.LocationAware
)

// NewElector builds an elector for node id over medium using policy.
var NewElector = core.NewElector

// NewArbiter builds an arbiter for node id.
var NewArbiter = core.NewArbiter

// NewCluster builds an abstract broadcast neighborhood for elections.
var NewCluster = core.NewCluster

// Flooding (§3).
type (
	// Flooding is the flooding protocol family.
	Flooding = flood.Flooding
	// FloodConfig selects the flooding variant.
	FloodConfig = flood.Config
)

// NewFlooding builds a flooding instance from the config. The config is
// shared by every instance built from the same pointer (flood.New
// retains it); callers must not mutate it afterwards.
func NewFlooding(cfg *FloodConfig) *Flooding { return flood.New(cfg) }

// Counter1Config is the paper's dedup-flooding baseline.
var Counter1Config = flood.Counter1Config

// SSAFConfig is Signal Strength Aware Flooding.
var SSAFConfig = flood.SSAFConfig

// Routing (§4).
type (
	// Routeless is the paper's Routeless Routing protocol.
	Routeless = routing.Routeless
	// RoutelessConfig parameterizes it.
	RoutelessConfig = routing.RoutelessConfig
	// AODV is the explicit-route baseline.
	AODV = routing.AODV
	// AODVConfig parameterizes it.
	AODVConfig = routing.AODVConfig
	// Gradient is the simplified §4.4 comparator.
	Gradient = routing.Gradient
	// GradientConfig parameterizes it.
	GradientConfig = routing.GradientConfig
	// ActiveTable is Routeless Routing's only data structure.
	ActiveTable = routing.ActiveTable
)

// NewRouteless builds a Routeless Routing instance.
func NewRouteless(cfg RoutelessConfig) *Routeless { return routing.NewRouteless(cfg) }

// NewAODV builds an AODV instance.
func NewAODV(cfg AODVConfig) *AODV { return routing.NewAODV(cfg) }

// NewGradient builds a Gradient Routing instance.
func NewGradient(cfg GradientConfig) *Gradient { return routing.NewGradient(cfg) }

// Propagation models.
type (
	// PropagationModel computes deterministic path loss.
	PropagationModel = propagation.Model
	// FreeSpace is the Friis model used throughout the paper.
	FreeSpace = propagation.FreeSpace
	// TwoRay is the two-ray ground-reflection model.
	TwoRay = propagation.TwoRay
)

// NewFreeSpace returns the default free-space model at 914 MHz.
var NewFreeSpace = propagation.NewFreeSpace

// NewTwoRay returns the default two-ray model.
var NewTwoRay = propagation.NewTwoRay

// Traffic and measurement.
type (
	// CBR is a constant-bit-rate traffic source.
	CBR = traffic.CBR
	// TrafficPair is a source→destination connection.
	TrafficPair = traffic.Pair
	// Meter tracks delivery ratio, delay and hops.
	Meter = stats.Meter
	// Welford accumulates streaming statistics.
	Welford = stats.Welford
	// Table renders experiment output.
	Table = stats.Table
)

// NewCBR builds a stopped CBR flow from n toward target.
var NewCBR = traffic.NewCBR

// RandomPairs draws distinct source→destination connections.
var RandomPairs = traffic.RandomPairs

// NewTable creates a formatted results table.
var NewTable = stats.NewTable
