package experiments

import (
	"routeless/internal/core"
	"routeless/internal/flood"
	"routeless/internal/geo"
	"routeless/internal/node"
	"routeless/internal/packet"
	"routeless/internal/parallel"
	"routeless/internal/rng"
	"routeless/internal/routing"
	"routeless/internal/sim"
	"routeless/internal/stats"
	"routeless/internal/traffic"
)

// --- ABL1: SSAF with and without duplicate cancellation ---------------

// Abl1Row compares SSAF and SSAF-C at one traffic level.
type Abl1Row struct {
	Interval float64
	SSAF     Agg // forwards counted in MACPackets
	SSAFC    Agg
}

// RunAbl1 reuses the Figure 1 rig with the cancellation flag toggled.
func RunAbl1(cfg Fig1Config) []Abl1Row {
	cfg = cfg.withDefaults()
	type job struct {
		interval float64
		cancel   bool
		seed     int64
	}
	var jobs []job
	for _, iv := range cfg.Intervals {
		for _, s := range cfg.Seeds {
			jobs = append(jobs, job{iv, false, s}, job{iv, true, s})
		}
	}
	results := parallel.Map(cfg.Workers, len(jobs), func(i int) RunMetrics {
		j := jobs[i]
		return runSSAFOnce(cfg, j.interval, j.cancel, j.seed)
	})
	idx := map[float64]int{}
	rows := make([]Abl1Row, len(cfg.Intervals))
	for i, iv := range cfg.Intervals {
		rows[i].Interval = iv
		idx[iv] = i
	}
	for i, j := range jobs {
		row := &rows[idx[j.interval]]
		if j.cancel {
			row.SSAFC.Add(results[i])
		} else {
			row.SSAF.Add(results[i])
		}
	}
	return rows
}

func runSSAFOnce(cfg Fig1Config, interval float64, cancel bool, seed int64) RunMetrics {
	nw := node.New(node.Config{
		N: cfg.Nodes, Rect: geo.NewRect(cfg.Terrain, cfg.Terrain),
		Range: cfg.Range, Seed: seed, EnsureConnected: true,
	})
	minDBm, maxDBm := ssafSpan(cfg.Range)
	fcfg := flood.SSAFConfig(cfg.Lambda, minDBm, maxDBm)
	fcfg.Cancel = cancel
	nw.Install(func(n *node.Node) node.Protocol { return flood.New(fcfg) })
	var meter stats.Meter
	meterAll(nw, &meter)
	pairs := traffic.RandomPairs(rng.New(seed, rng.StreamTraffic), cfg.Nodes, cfg.Connections)
	var cbrs []*traffic.CBR
	for _, p := range pairs {
		c := traffic.NewCBR(nw.Nodes[p.Src], p.Dst, sim.Time(interval), packet.SizeData)
		c.OnSend = meter.PacketSent
		c.Start()
		cbrs = append(cbrs, c)
	}
	nw.Run(sim.Time(cfg.Duration))
	for _, c := range cbrs {
		c.Stop()
	}
	nw.Run(sim.Time(cfg.Duration) + drainTime)
	return collect(nw, &meter)
}

// Abl1Table renders the comparison.
func Abl1Table(rows []Abl1Row) *stats.Table {
	t := stats.NewTable(
		"ABL1 — SSAF vs SSAF-C (duplicate cancellation)",
		"interval_s",
		"ssaf_mac_pkts", "ssafc_mac_pkts",
		"ssaf_delivery", "ssafc_delivery",
		"ssaf_delay_s", "ssafc_delay_s",
	)
	for _, r := range rows {
		t.AddRow(r.Interval,
			r.SSAF.MACPackets.Mean(), r.SSAFC.MACPackets.Mean(),
			r.SSAF.Delivery.Mean(), r.SSAFC.Delivery.Mean(),
			r.SSAF.Delay.Mean(), r.SSAFC.Delay.Mean(),
		)
	}
	return t
}

// --- ABL2: Routeless λ sweep ------------------------------------------

// Abl2Row captures the λ tradeoff (§4.1: small λ collides, large λ
// delays).
type Abl2Row struct {
	Lambda sim.Time
	RR     Agg
}

// RunAbl2 sweeps λ on the Figure 3 rig at a fixed pair count.
func RunAbl2(cfg Fig34Config, lambdas []sim.Time, pairs int) []Abl2Row {
	cfg = cfg.withDefaults()
	if len(lambdas) == 0 {
		lambdas = []sim.Time{1e-3, 2e-3, 5e-3, 10e-3, 20e-3, 50e-3, 100e-3}
	}
	if pairs == 0 {
		pairs = 5
	}
	type job struct {
		lambda sim.Time
		seed   int64
	}
	var jobs []job
	for _, l := range lambdas {
		for _, s := range cfg.Seeds {
			jobs = append(jobs, job{l, s})
		}
	}
	results := parallel.Map(cfg.Workers, len(jobs), func(i int) RunMetrics {
		j := jobs[i]
		c := cfg
		c.Lambda = j.lambda
		return runRoutingOnce(c, ProtoRouteless, pairs, 0, j.seed).RunMetrics
	})
	idx := map[sim.Time]int{}
	rows := make([]Abl2Row, len(lambdas))
	for i, l := range lambdas {
		rows[i].Lambda = l
		idx[l] = i
	}
	for i, j := range jobs {
		rows[idx[j.lambda]].RR.Add(results[i])
	}
	return rows
}

// Abl2Table renders the λ sweep.
func Abl2Table(rows []Abl2Row) *stats.Table {
	t := stats.NewTable(
		"ABL2 — Routeless Routing λ sweep (§4.1 tradeoff)",
		"lambda_ms", "delay_s", "delivery", "mac_pkts",
	)
	for _, r := range rows {
		t.AddRow(r.Lambda.Millis(), r.RR.Delay.Mean(), r.RR.Delivery.Mean(), r.RR.MACPackets.Mean())
	}
	return t
}

// --- ABL3: election outcome probabilities ------------------------------

// Abl3Row measures leader-election outcomes on the abstract medium as
// neighborhood size grows: probability of a clean single leader, of
// collisions (no leader), and mean rounds with an arbiter.
type Abl3Row struct {
	Nodes          int
	SingleLeader   float64 // share of trials electing exactly one leader
	NoLeader       float64 // share where collisions destroyed the round
	MeanRounds     float64 // arbiter rounds until success
	MeanBroadcasts float64 // announcements + acks + syncs per success
}

// RunAbl3 measures election behavior over `trials` independent cliques
// per size.
func RunAbl3(sizes []int, trials int, lambda sim.Time, seed int64) []Abl3Row {
	if len(sizes) == 0 {
		sizes = []int{2, 5, 10, 20, 50}
	}
	if trials == 0 {
		trials = 200
	}
	rows := make([]Abl3Row, len(sizes))
	for si, n := range sizes {
		var single, none, rounds, bcasts float64
		for trial := 0; trial < trials; trial++ {
			k := sim.NewKernel(rng.Derive(seed, uint64(si), uint64(trial)))
			// Message latency comparable to λ/4 makes near-ties collide,
			// like real airtime does.
			cl := core.NewCluster(k, n+1, lambda/4, lambda/20, 0,
				rng.New(seed, rng.StreamElection, uint64(si), uint64(trial)))
			cl.ConnectAll()
			electors := make([]*core.Elector, n)
			for i := 0; i < n; i++ {
				electors[i] = core.NewElector(k, packet.NodeID(i), cl, core.Uniform{Max: lambda})
				cl.AttachElector(electors[i])
			}
			arb := core.NewArbiter(k, packet.NodeID(n), cl, lambda*4)
			arb.MaxRetries = 20
			cl.AttachArbiter(arb)
			arb.Trigger()
			k.Run()
			countEvents(k)
			winners := 0
			for _, e := range electors {
				if o := e.Current(); o.Won && o.Round == 1 {
					winners++
				}
			}
			switch {
			case winners == 1:
				single++
			case winners == 0 || arb.Leader() == packet.None:
				none++
			}
			if arb.Leader() != packet.None {
				rounds += float64(arb.Stats().Triggers)
			}
			bcasts += float64(cl.Stats().Broadcasts)
		}
		rows[si] = Abl3Row{
			Nodes:          n,
			SingleLeader:   single / float64(trials),
			NoLeader:       none / float64(trials),
			MeanRounds:     rounds / float64(trials),
			MeanBroadcasts: bcasts / float64(trials),
		}
	}
	return rows
}

// Abl3Table renders the election study.
func Abl3Table(rows []Abl3Row) *stats.Table {
	t := stats.NewTable(
		"ABL3 — local leader election outcomes vs neighborhood size (uniform metric, arbiter on)",
		"nodes", "p_single_leader_r1", "p_collision_r1", "mean_rounds", "mean_broadcasts",
	)
	for _, r := range rows {
		t.AddRow(r.Nodes, r.SingleLeader, r.NoLeader, r.MeanRounds, r.MeanBroadcasts)
	}
	return t
}

// --- ABL4: Routeless vs Gradient Routing -------------------------------

// Abl4Row compares the two gradient-followers at one pair count.
type Abl4Row struct {
	Pairs     int
	Routeless Agg
	Gradient  Agg
}

// RunAbl4 reuses the Figure 3 rig with Gradient Routing in AODV's seat.
func RunAbl4(cfg Fig34Config) []Abl4Row {
	cfg = cfg.withDefaults()
	type job struct {
		pairs int
		proto RoutingProto
		seed  int64
	}
	var jobs []job
	for _, p := range cfg.Pairs {
		for _, s := range cfg.Seeds {
			jobs = append(jobs, job{p, ProtoRouteless, s}, job{p, ProtoGradient, s})
		}
	}
	results := parallel.Map(cfg.Workers, len(jobs), func(i int) RunMetrics {
		j := jobs[i]
		return runRoutingOnce(cfg, j.proto, j.pairs, 0, j.seed).RunMetrics
	})
	idx := map[int]int{}
	rows := make([]Abl4Row, len(cfg.Pairs))
	for i, p := range cfg.Pairs {
		rows[i].Pairs = p
		idx[p] = i
	}
	for i, j := range jobs {
		row := &rows[idx[j.pairs]]
		if j.proto == ProtoGradient {
			row.Gradient.Add(results[i])
		} else {
			row.Routeless.Add(results[i])
		}
	}
	return rows
}

// Abl4Table renders the §4.4 comparison.
func Abl4Table(rows []Abl4Row) *stats.Table {
	t := stats.NewTable(
		"ABL4 — Routeless Routing vs Gradient Routing (§4.4 congestion claim)",
		"pairs",
		"rr_mac_pkts", "grad_mac_pkts",
		"rr_delivery", "grad_delivery",
		"rr_delay_s", "grad_delay_s",
	)
	for _, r := range rows {
		t.AddRow(r.Pairs,
			r.Routeless.MACPackets.Mean(), r.Gradient.MACPackets.Mean(),
			r.Routeless.Delivery.Mean(), r.Gradient.Delivery.Mean(),
			r.Routeless.Delay.Mean(), r.Gradient.Delay.Mean(),
		)
	}
	return t
}

// --- ABL5: duty-cycled sleeping under Routeless Routing ----------------

// Abl5Row quantifies §4.2's claim that "any node, even if it is on the
// route, can freely switch to a sleep or a standby mode to save
// energy": delivery and per-node energy as the sleep fraction grows.
type Abl5Row struct {
	SleepFraction float64
	RR            Agg
}

// RunAbl5 runs the Figure 3 rig with non-endpoint nodes duty-cycle
// sleeping instead of failing.
func RunAbl5(cfg Fig34Config, fractions []float64, pairs int) []Abl5Row {
	cfg = cfg.withDefaults()
	if len(fractions) == 0 {
		fractions = []float64{0, 0.1, 0.2, 0.3, 0.5}
	}
	if pairs == 0 {
		pairs = 5
	}
	type job struct {
		frac float64
		seed int64
	}
	var jobs []job
	for _, f := range fractions {
		for _, s := range cfg.Seeds {
			jobs = append(jobs, job{f, s})
		}
	}
	results := parallel.Map(cfg.Workers, len(jobs), func(i int) RunMetrics {
		j := jobs[i]
		return runSleepOnce(cfg, pairs, j.frac, j.seed)
	})
	idx := map[float64]int{}
	rows := make([]Abl5Row, len(fractions))
	for i, f := range fractions {
		rows[i].SleepFraction = f
		idx[f] = i
	}
	for i, j := range jobs {
		rows[idx[j.frac]].RR.Add(results[i])
	}
	return rows
}

func runSleepOnce(cfg Fig34Config, pairs int, frac float64, seed int64) RunMetrics {
	nw := node.New(node.Config{
		N: cfg.Nodes, Rect: geo.NewRect(cfg.Terrain, cfg.Terrain),
		Range: cfg.Range, Seed: seed, EnsureConnected: true,
	})
	nw.Install(func(n *node.Node) node.Protocol {
		return routing.NewRouteless(routing.RoutelessConfig{Lambda: cfg.Lambda})
	})
	var meter stats.Meter
	meterAll(nw, &meter)
	conns := traffic.RandomPairs(rng.New(seed, rng.StreamTraffic), cfg.Nodes, pairs)
	endpoint := map[packet.NodeID]bool{}
	var cbrs []*traffic.CBR
	for _, p := range conns {
		endpoint[p.Src], endpoint[p.Dst] = true, true
		fwd := traffic.NewCBR(nw.Nodes[p.Src], p.Dst, sim.Time(cfg.Interval), cfg.DataSize)
		rev := traffic.NewCBR(nw.Nodes[p.Dst], p.Src, sim.Time(cfg.Interval), cfg.DataSize)
		fwd.OnSend = meter.PacketSent
		rev.OnSend = meter.PacketSent
		fwd.Start()
		rev.Start()
		cbrs = append(cbrs, fwd, rev)
	}
	if frac > 0 {
		for _, n := range nw.Nodes {
			if endpoint[n.ID] {
				continue
			}
			fp := node.NewFailureProcess(n, rng.ForNode(seed, rng.StreamFailure, int(n.ID)))
			fp.OffFraction = frac
			fp.Sleep = true
			fp.Start()
		}
	}
	nw.Run(sim.Time(cfg.Duration))
	for _, c := range cbrs {
		c.Stop()
	}
	nw.Run(sim.Time(cfg.Duration) + drainTime)
	return collect(nw, &meter)
}

// Abl5Table renders the sleep study.
func Abl5Table(rows []Abl5Row) *stats.Table {
	t := stats.NewTable(
		"ABL5 — duty-cycled sleeping under Routeless Routing (§4.2 energy claim)",
		"sleep_frac", "delivery", "delay_s", "energy_J", "mac_pkts",
	)
	for _, r := range rows {
		t.AddRow(r.SleepFraction, r.RR.Delivery.Mean(), r.RR.Delay.Mean(),
			r.RR.EnergyJ.Mean(), r.RR.MACPackets.Mean())
	}
	return t
}

// --- ABL6: signal-strength tie-breaking inside Routeless's bands -------

// Abl6Row compares Routeless Routing with the paper's pure §4.1
// equation against the GradientSignal variant (signal-strength
// tie-break inside each gradient band — the metric combination the
// conclusion proposes).
type Abl6Row struct {
	Pairs     int
	Pure      Agg
	SignalTie Agg
}

// RunAbl6 runs both variants on the Figure 3 rig.
func RunAbl6(cfg Fig34Config) []Abl6Row {
	cfg = cfg.withDefaults()
	type job struct {
		pairs  int
		signal bool
		seed   int64
	}
	var jobs []job
	for _, p := range cfg.Pairs {
		for _, s := range cfg.Seeds {
			jobs = append(jobs, job{p, false, s}, job{p, true, s})
		}
	}
	results := parallel.Map(cfg.Workers, len(jobs), func(i int) RunMetrics {
		j := jobs[i]
		return runSignalTieOnce(cfg, j.pairs, j.signal, j.seed)
	})
	idx := map[int]int{}
	rows := make([]Abl6Row, len(cfg.Pairs))
	for i, p := range cfg.Pairs {
		rows[i].Pairs = p
		idx[p] = i
	}
	for i, j := range jobs {
		row := &rows[idx[j.pairs]]
		if j.signal {
			row.SignalTie.Add(results[i])
		} else {
			row.Pure.Add(results[i])
		}
	}
	return rows
}

func runSignalTieOnce(cfg Fig34Config, pairs int, signal bool, seed int64) RunMetrics {
	nw := node.New(node.Config{
		N: cfg.Nodes, Rect: geo.NewRect(cfg.Terrain, cfg.Terrain),
		Range: cfg.Range, Seed: seed, EnsureConnected: true,
	})
	rcfg := routing.RoutelessConfig{Lambda: cfg.Lambda, SignalTieBreak: signal}
	nw.Install(func(n *node.Node) node.Protocol { return routing.NewRouteless(rcfg) })
	var meter stats.Meter
	meterAll(nw, &meter)
	conns := traffic.RandomPairs(rng.New(seed, rng.StreamTraffic), cfg.Nodes, pairs)
	var cbrs []*traffic.CBR
	for _, p := range conns {
		fwd := traffic.NewCBR(nw.Nodes[p.Src], p.Dst, sim.Time(cfg.Interval), cfg.DataSize)
		rev := traffic.NewCBR(nw.Nodes[p.Dst], p.Src, sim.Time(cfg.Interval), cfg.DataSize)
		fwd.OnSend = meter.PacketSent
		rev.OnSend = meter.PacketSent
		fwd.Start()
		rev.Start()
		cbrs = append(cbrs, fwd, rev)
	}
	nw.Run(sim.Time(cfg.Duration))
	for _, c := range cbrs {
		c.Stop()
	}
	nw.Run(sim.Time(cfg.Duration) + drainTime)
	return collect(nw, &meter)
}

// Abl6Table renders the tie-break comparison.
func Abl6Table(rows []Abl6Row) *stats.Table {
	t := stats.NewTable(
		"ABL6 — Routeless backoff tie-break: pure §4.1 equation vs signal-strength (conclusion's metric combination)",
		"pairs",
		"pure_mac_pkts", "sig_mac_pkts",
		"pure_hops", "sig_hops",
		"pure_delivery", "sig_delivery",
	)
	for _, r := range rows {
		t.AddRow(r.Pairs,
			r.Pure.MACPackets.Mean(), r.SignalTie.MACPackets.Mean(),
			r.Pure.Hops.Mean(), r.SignalTie.Hops.Mean(),
			r.Pure.Delivery.Mean(), r.SignalTie.Delivery.Mean(),
		)
	}
	return t
}
