package routing

import (
	"routeless/internal/core"
	"routeless/internal/metrics"
	"routeless/internal/node"
	"routeless/internal/packet"
	"routeless/internal/sim"
)

// GradientConfig parameterizes the simplified Gradient Routing
// comparator. Zero fields take the noted defaults.
type GradientConfig struct {
	// Backoff is the forwarding jitter; default 5 ms.
	Backoff sim.Time
	// DiscoveryBackoff is the gradient-setup flood backoff; default 10 ms.
	DiscoveryBackoff sim.Time
	// DiscoveryTimeout and MaxDiscoveryRetries mirror Routeless Routing.
	DiscoveryTimeout    sim.Time
	MaxDiscoveryRetries int
	// TTL bounds packet travel; default 32.
	TTL int
	// DataSize is the payload bytes; default 512.
	DataSize int
}

func (c GradientConfig) withDefaults() GradientConfig {
	if c.Backoff == 0 {
		c.Backoff = 5e-3
	}
	if c.DiscoveryBackoff == 0 {
		c.DiscoveryBackoff = 10e-3
	}
	if c.DiscoveryTimeout == 0 {
		c.DiscoveryTimeout = 2
	}
	if c.MaxDiscoveryRetries == 0 {
		c.MaxDiscoveryRetries = 3
	}
	if c.TTL == 0 {
		c.TTL = 32
	}
	if c.DataSize == 0 {
		c.DataSize = packet.SizeData
	}
	return c
}

// GradientStats is the plain-uint64 snapshot view of one node's
// counters.
type GradientStats struct {
	DataSent          uint64
	DataDelivered     uint64
	Forwards          uint64 // gradient-qualified retransmissions
	NotCloserDrops    uint64 // copies dropped for lacking progress
	DiscoveriesSent   uint64
	DiscoveryForwards uint64
	RepliesSent       uint64
	DroppedNoRoute    uint64
	TTLDrops          uint64
	Repairs           uint64 // gradients rebuilt after a discovery retry
}

// gradientCounters is the live counter storage behind GradientStats.
type gradientCounters struct {
	dataSent          metrics.Counter
	dataDelivered     metrics.Counter
	forwards          metrics.Counter
	notCloserDrops    metrics.Counter
	discoveriesSent   metrics.Counter
	discoveryForwards metrics.Counter
	repliesSent       metrics.Counter
	droppedNoRoute    metrics.Counter
	ttlDrops          metrics.Counter
	repairs           metrics.Counter

	// repairLatency spans a discovery's first re-flood (the gradient
	// failed to form, or dissolved under churn) to the moment it yields a
	// usable gradient. Gradient has no per-packet maintenance, so
	// discovery retry is its repair mechanism; first-attempt successes
	// never open a window.
	repairLatency metrics.Histogram
}

// Gradient is the §4.4 comparison protocol (after Poor's Gradient
// Routing): "only nodes with a smaller hop count to the destination are
// allowed to forward packets", and "every node with a smaller hop count
// may retransmit the same packet" — no election, no cancellation, so a
// band of redundant copies marches toward the destination. The paper's
// criticism — "it makes the network more congested" — is exactly what
// the ABL4 ablation measures against Routeless Routing.
type Gradient struct {
	cfg GradientConfig
	n   *node.Node

	table       *ActiveTable
	seq         uint32
	floodDedup  *packet.DedupCache
	fwdDedup    *packet.DedupCache
	consumed    *packet.DedupCache
	discovering discoverySet
	discPolicy  core.BackoffPolicy

	// repairStart records when a discovery first re-flooded for a
	// target; cleared when the discovery succeeds or gives up.
	repairStart map[packet.NodeID]sim.Time

	stats gradientCounters
}

// NewGradient builds an instance; install with Network.Install.
func NewGradient(cfg GradientConfig) *Gradient {
	cfg = cfg.withDefaults()
	return &Gradient{
		cfg:         cfg,
		table:       NewActiveTable(),
		floodDedup:  packet.NewDedupCache(8192),
		fwdDedup:    packet.NewDedupCache(8192),
		consumed:    packet.NewDedupCache(8192),
		discovering: make(discoverySet),
		discPolicy:  core.Uniform{Max: cfg.DiscoveryBackoff},
		repairStart: make(map[packet.NodeID]sim.Time),
	}
}

// Start implements node.Protocol.
func (g *Gradient) Start(n *node.Node) { g.n = n }

// Stats returns the node's counters.
func (g *Gradient) Stats() GradientStats {
	s := &g.stats
	return GradientStats{
		DataSent:          s.dataSent.Value(),
		DataDelivered:     s.dataDelivered.Value(),
		Forwards:          s.forwards.Value(),
		NotCloserDrops:    s.notCloserDrops.Value(),
		DiscoveriesSent:   s.discoveriesSent.Value(),
		DiscoveryForwards: s.discoveryForwards.Value(),
		RepliesSent:       s.repliesSent.Value(),
		DroppedNoRoute:    s.droppedNoRoute.Value(),
		TTLDrops:          s.ttlDrops.Value(),
		Repairs:           s.repairs.Value(),
	}
}

// RegisterMetrics registers the protocol counters; per-node sources sum
// into network-wide gradient.* series.
func (g *Gradient) RegisterMetrics(reg *metrics.Registry) {
	reg.Observe("gradient.data_sent", &g.stats.dataSent)
	reg.Observe("gradient.data_delivered", &g.stats.dataDelivered)
	reg.Observe("gradient.forwards", &g.stats.forwards)
	reg.Observe("gradient.not_closer_drops", &g.stats.notCloserDrops)
	reg.Observe("gradient.discoveries_sent", &g.stats.discoveriesSent)
	reg.Observe("gradient.discovery_forwards", &g.stats.discoveryForwards)
	reg.Observe("gradient.replies_sent", &g.stats.repliesSent)
	reg.Observe("gradient.dropped_no_route", &g.stats.droppedNoRoute)
	reg.Observe("gradient.ttl_drops", &g.stats.ttlDrops)
	reg.Observe("gradient.repairs", &g.stats.repairs)
	reg.ObserveHistogram("gradient.repair_latency_s", &g.stats.repairLatency)
}

// endRepair closes an open repair window for target: the discovery that
// had to retry finally produced a usable gradient.
func (g *Gradient) endRepair(target packet.NodeID) {
	t0, ok := g.repairStart[target]
	if !ok {
		return
	}
	delete(g.repairStart, target)
	g.stats.repairs.Inc()
	g.stats.repairLatency.Observe(float64(g.n.Kernel.Now() - t0))
}

// Table exposes the gradient table (read-mostly; used by tests and
// experiment instrumentation).
func (g *Gradient) Table() *ActiveTable { return g.table }

// Send implements node.Protocol.
func (g *Gradient) Send(target packet.NodeID, size int) {
	if size == 0 {
		size = g.cfg.DataSize
	}
	now := g.n.Kernel.Now()
	g.stats.dataSent.Inc()
	if target == g.n.ID {
		g.stats.dataDelivered.Inc()
		g.n.Deliver(&packet.Packet{Kind: packet.KindData, Origin: g.n.ID, Target: target, Size: size, CreatedAt: now})
		return
	}
	if h := g.table.Hops(target); h >= 0 {
		g.sendData(target, size, now)
		return
	}
	d, started := g.discovering.ensure(target, g.n.Kernel, func() { g.discoveryTimeout(target) })
	if started {
		g.floodDiscovery(target)
		d.timer.Reset(g.cfg.DiscoveryTimeout)
	}
	d.queue = append(d.queue, pendingData{size: size, created: now})
}

func (g *Gradient) nextSeq() uint32 { g.seq++; return g.seq }

func (g *Gradient) sendData(target packet.NodeID, size int, created sim.Time) {
	g.n.MAC.Enqueue(&packet.Packet{
		Kind: packet.KindData, To: packet.Broadcast,
		Origin: g.n.ID, Target: target, Seq: g.nextSeq(),
		HopCount: 1, ExpectedHops: g.table.Hops(target),
		TTL: g.cfg.TTL, Size: size, CreatedAt: created,
	}, 0)
}

func (g *Gradient) floodDiscovery(target packet.NodeID) {
	pkt := &packet.Packet{
		Kind: packet.KindDiscovery, To: packet.Broadcast,
		Origin: g.n.ID, Target: target, Seq: g.nextSeq(),
		HopCount: 1, TTL: g.cfg.TTL, Size: packet.SizeControl,
		CreatedAt: g.n.Kernel.Now(),
	}
	g.floodDedup.Seen(pkt.Key())
	g.stats.discoveriesSent.Inc()
	g.n.MAC.Enqueue(pkt, 0)
}

func (g *Gradient) discoveryTimeout(target packet.NodeID) {
	// The gradient may have been learned passively from overheard
	// traffic even though the reply never reached us; if so the
	// discovery has succeeded — flush instead of re-flooding or
	// dropping the queue next to a usable gradient.
	if g.table.Hops(target) >= 0 {
		g.endRepair(target)
		for _, pd := range g.discovering.succeed(target) {
			g.sendData(target, pd.size, pd.created)
		}
		return
	}
	d, retry := g.discovering.step(target, g.cfg.MaxDiscoveryRetries)
	if d == nil {
		return
	}
	if !retry {
		g.stats.droppedNoRoute.Add(uint64(len(d.queue)))
		// The repair failed; no latency sample (give-ups are visible
		// through gradient.dropped_no_route).
		delete(g.repairStart, target)
		return
	}
	if _, open := g.repairStart[target]; !open {
		g.repairStart[target] = g.n.Kernel.Now()
	}
	g.floodDiscovery(target)
	d.timer.Reset(g.cfg.DiscoveryTimeout)
}

// OnDeliver implements node.Protocol.
func (g *Gradient) OnDeliver(pkt *packet.Packet, rssiDBm float64) {
	now := g.n.Kernel.Now()
	switch pkt.Kind {
	case packet.KindDiscovery:
		g.table.Observe(pkt.Origin, pkt.HopCount, pkt.Seq, now)
		if g.floodDedup.Seen(pkt.Key()) {
			return
		}
		if pkt.Target == g.n.ID {
			// Establish the reverse gradient with a reply that flows
			// back down the just-built gradient.
			g.stats.repliesSent.Inc()
			g.n.MAC.Enqueue(&packet.Packet{
				Kind: packet.KindReply, To: packet.Broadcast,
				Origin: g.n.ID, Target: pkt.Origin, Seq: g.nextSeq(),
				HopCount: 1, ExpectedHops: g.table.Hops(pkt.Origin),
				TTL: g.cfg.TTL, Size: packet.SizeControl, CreatedAt: now,
			}, 0)
			return
		}
		if pkt.TTL <= 1 {
			g.stats.ttlDrops.Inc()
			return
		}
		backoff, _ := g.discPolicy.Backoff(core.Context{Rand: g.n.Rng})
		fwd := pkt.Clone()
		fwd.To = packet.Broadcast
		fwd.HopCount++
		fwd.TTL--
		g.n.Kernel.Schedule(backoff, func() {
			g.stats.discoveryForwards.Inc()
			g.n.MAC.Enqueue(fwd, 0)
		})
	case packet.KindReply, packet.KindData:
		g.table.Observe(pkt.Origin, pkt.HopCount, pkt.Seq, now)
		key := pkt.Key()
		if pkt.Target == g.n.ID {
			if !g.consumed.Seen(key) {
				if pkt.Kind == packet.KindData {
					g.stats.dataDelivered.Inc()
					g.n.Deliver(pkt)
				} else {
					g.endRepair(pkt.Origin)
					for _, pd := range g.discovering.succeed(pkt.Origin) {
						g.sendData(pkt.Origin, pd.size, pd.created)
					}
				}
			}
			return
		}
		if g.fwdDedup.Seen(key) {
			return // each node retransmits a packet at most once
		}
		if pkt.TTL <= 1 {
			g.stats.ttlDrops.Inc()
			return
		}
		h := g.table.Hops(pkt.Target)
		if h < 0 || h >= pkt.ExpectedHops {
			g.stats.notCloserDrops.Inc()
			return // only strictly closer nodes forward
		}
		fwd := pkt.Clone()
		fwd.To = packet.Broadcast
		fwd.HopCount++
		fwd.TTL--
		fwd.ExpectedHops = h
		backoff := sim.Time(g.n.Rng.Float64()) * g.cfg.Backoff
		g.n.Kernel.Schedule(backoff, func() {
			g.stats.forwards.Inc()
			g.n.MAC.Enqueue(fwd, float64(backoff))
		})
	}
}

// OnSent implements node.Protocol.
func (g *Gradient) OnSent(pkt *packet.Packet) {}

// OnUnicastFailed implements node.Protocol; Gradient never unicasts.
func (g *Gradient) OnUnicastFailed(pkt *packet.Packet) {}
