package routing

import (
	"testing"

	"routeless/internal/geo"
	"routeless/internal/node"
	"routeless/internal/packet"
	"routeless/internal/sim"
)

func buildGrad(t *testing.T, cfg GradientConfig, seed int64, positions []geo.Point) (*node.Network, []*Gradient) {
	t.Helper()
	nw := node.New(node.Config{Positions: positions, Seed: seed})
	gs := make([]*Gradient, len(positions))
	i := 0
	nw.Install(func(n *node.Node) node.Protocol {
		g := NewGradient(cfg)
		gs[i] = g
		i++
		return g
	})
	return nw, gs
}

func TestGradientDelivers(t *testing.T) {
	nw, gs := buildGrad(t, GradientConfig{}, 1, line(4, 200))
	count := 0
	nw.Nodes[3].OnAppReceive = func(*packet.Packet) { count++ }
	gs[0].Send(3, 0)
	nw.Run(10)
	if count != 1 {
		t.Fatalf("delivered %d, want 1", count)
	}
}

func TestGradientOnlyCloserNodesForward(t *testing.T) {
	// A node behind the source must never forward (its hop count to the
	// destination exceeds the source's).
	positions := []geo.Point{
		{X: 0, Y: 0},   // behind (node 0)
		{X: 200, Y: 0}, // source (node 1)
		{X: 400, Y: 0}, // relay (node 2)
		{X: 600, Y: 0}, // destination (node 3)
	}
	nw, gs := buildGrad(t, GradientConfig{}, 2, positions)
	count := 0
	nw.Nodes[3].OnAppReceive = func(*packet.Packet) { count++ }
	gs[1].Send(3, 0)
	nw.Run(10)
	if count != 1 {
		t.Fatalf("delivered %d, want 1", count)
	}
	if gs[0].Stats().Forwards != 0 {
		t.Fatal("node behind the source forwarded the packet")
	}
	if gs[0].Stats().NotCloserDrops == 0 {
		t.Fatal("gradient constraint never evaluated at the rear node")
	}
	if gs[2].Stats().Forwards == 0 {
		t.Fatal("forward relay never forwarded")
	}
}

func TestGradientRedundantForwarders(t *testing.T) {
	// Several equally close candidates: gradient routing lets ALL of
	// them retransmit (the §4.4 congestion criticism), unlike Routeless
	// which elects one.
	positions := []geo.Point{
		{X: 0, Y: 0},
		{X: 200, Y: 0}, {X: 200, Y: 40}, {X: 200, Y: -40},
		{X: 400, Y: 0},
	}
	nw, gs := buildGrad(t, GradientConfig{}, 3, positions)
	count := 0
	nw.Nodes[4].OnAppReceive = func(*packet.Packet) { count++ }
	gs[0].Send(4, 0)
	nw.Run(10)
	if count != 1 {
		t.Fatalf("delivered %d, want 1", count)
	}
	var midForwards uint64
	for _, g := range gs[1:4] {
		midForwards += g.Stats().Forwards
	}
	if midForwards < 2 {
		t.Fatalf("middle forwards = %d; gradient routing should be redundant", midForwards)
	}
}

func TestGradientVsRoutelessTransmissions(t *testing.T) {
	// The §4.4 claim quantified: on the same topology and traffic,
	// Gradient Routing puts more data-plane frames on the air than
	// Routeless Routing.
	// Dense rings of candidates between source and destination: the
	// gradient band forwards through every candidate, Routeless elects
	// one per hop (plus ACKs).
	positions := []geo.Point{
		{X: 0, Y: 0},
		{X: 190, Y: 30}, {X: 190, Y: -30}, {X: 210, Y: 60}, {X: 210, Y: -60},
		{X: 390, Y: 30}, {X: 390, Y: -30}, {X: 410, Y: 60}, {X: 410, Y: -60},
		{X: 600, Y: 0},
	}
	gradFrames := func() uint64 {
		nw, gs := buildGrad(t, GradientConfig{}, 4, positions)
		for i := 0; i < 5; i++ {
			at := 1 + float64(i)
			nw.Kernel.At(sim.Time(at), func() { gs[0].Send(9, 0) })
		}
		nw.Run(20)
		return nw.MACPackets()
	}()
	rrFrames := func() uint64 {
		nw, rrs := buildRR(t, RoutelessConfig{}, 4, positions)
		for i := 0; i < 5; i++ {
			at := 1 + float64(i)
			nw.Kernel.At(sim.Time(at), func() { rrs[0].Send(9, 0) })
		}
		nw.Run(20)
		return nw.MACPackets()
	}()
	if gradFrames <= rrFrames {
		t.Fatalf("gradient frames (%d) should exceed routeless frames (%d)", gradFrames, rrFrames)
	}
}

func TestGradientNoRouteGivesUp(t *testing.T) {
	positions := []geo.Point{{X: 0, Y: 0}, {X: 2500, Y: 0}}
	cfg := GradientConfig{DiscoveryTimeout: 0.2, MaxDiscoveryRetries: 1}
	nw, gs := buildGrad(t, cfg, 5, positions)
	gs[0].Send(1, 0)
	nw.Run(5)
	if gs[0].Stats().DroppedNoRoute != 1 {
		t.Fatalf("DroppedNoRoute = %d, want 1", gs[0].Stats().DroppedNoRoute)
	}
}
