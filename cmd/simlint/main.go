// Command simlint enforces the simulator's determinism invariants with
// static analysis. It walks the requested packages, runs every rule in
// internal/lint, prints findings as file:line:col diagnostics, and
// exits nonzero when any survive.
//
// Usage:
//
//	simlint ./...          # whole module (what CI runs)
//	simlint ./internal/sim ./cmd/wmansim
//	simlint -list          # show the rule set
//	simlint -rules globalrand,floateq ./...
//
// Suppress a finding in source with:
//
//	//lint:ignore <rule> <reason>
//
// on the offending line or the line above. The reason is mandatory.
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"strings"

	"routeless/internal/lint"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list analyzers and exit")
		rules = flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
	)
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *rules != "" {
		want := map[string]bool{}
		for _, r := range strings.Split(*rules, ",") {
			want[strings.TrimSpace(r)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
				delete(want, a.Name)
			}
		}
		unknown := make([]string, 0, len(want))
		for r := range want {
			unknown = append(unknown, r)
		}
		slices.Sort(unknown)
		if len(unknown) > 0 {
			fmt.Fprintf(os.Stderr, "simlint: unknown rule(s) %s (try -list)\n", strings.Join(unknown, ", "))
			os.Exit(2)
		}
		analyzers = sel
	}

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}

	dirs, err := expandArgs(args)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		os.Exit(2)
	}

	loader, err := lint.NewLoader(moduleRoot(dirs), "")
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		os.Exit(2)
	}

	found := 0
	for _, dir := range dirs {
		units, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simlint: %s: %v\n", dir, err)
			os.Exit(2)
		}
		for _, u := range units {
			for _, d := range lint.Run(u, analyzers) {
				fmt.Println(d)
				found++
			}
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", found)
		os.Exit(1)
	}
}

// expandArgs turns package patterns into directories. A trailing /...
// recurses; plain paths name one directory.
func expandArgs(args []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(d string) {
		abs, err := filepath.Abs(d)
		if err == nil && !seen[abs] {
			seen[abs] = true
			dirs = append(dirs, abs)
		}
	}
	for _, a := range args {
		if root, ok := strings.CutSuffix(a, "/..."); ok {
			if root == "" || root == "." {
				root = "."
			}
			sub, err := lint.Walk(root)
			if err != nil {
				return nil, err
			}
			for _, d := range sub {
				add(d)
			}
			continue
		}
		fi, err := os.Stat(a)
		if err != nil {
			return nil, err
		}
		if !fi.IsDir() {
			return nil, fmt.Errorf("%s is not a directory", a)
		}
		add(a)
	}
	return dirs, nil
}

// moduleRoot finds the nearest ancestor of the first target directory
// (or the working directory) containing go.mod.
func moduleRoot(dirs []string) string {
	start, _ := os.Getwd()
	if len(dirs) > 0 {
		start = dirs[0]
	}
	for d := start; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			return start
		}
		d = parent
	}
}
