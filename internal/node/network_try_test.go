package node

import (
	"encoding/json"
	"strings"
	"testing"

	"routeless/internal/geo"
	"routeless/internal/propagation"
)

// TestTryNewRejectsImpossiblePlacement is the fails-pre-fix regression
// for the EnsureConnected panic: a density far too sparse for a
// connected unit-disk graph used to kill the process after 100 draws
// (network.go's placement loop); the fuzzer needs that classified as
// scenario-invalid. The config below (3 nodes, 30 m range, 100 km
// square) cannot connect at any luck.
func TestTryNewRejectsImpossiblePlacement(t *testing.T) {
	nw, err := TryNew(Config{
		N:               3,
		Rect:            geo.NewRect(100000, 100000),
		Range:           30,
		Seed:            1,
		EnsureConnected: true,
	})
	if err == nil {
		t.Fatal("TryNew found a connected placement in an impossible configuration")
	}
	if nw != nil {
		t.Error("TryNew returned a network alongside an error")
	}
	if !strings.Contains(err.Error(), "no connected placement") {
		t.Errorf("error %q does not describe the placement failure", err)
	}
}

// TestTryNewRejectsNonPositiveN covers the other construction error.
func TestTryNewRejectsNonPositiveN(t *testing.T) {
	if _, err := TryNew(Config{N: 0, Seed: 1}); err == nil {
		t.Error("TryNew accepted N=0 without positions")
	}
	if _, err := TryNew(Config{N: -7, Seed: 1}); err == nil {
		t.Error("TryNew accepted negative N")
	}
}

// TestTryNewRejectsTiledFading pins the constraint matrix at the
// construction boundary: fading draws are sequential, so a tiled
// network with a real fader must be an error, not a deep phy panic.
func TestTryNewRejectsTiledFading(t *testing.T) {
	_, err := TryNew(Config{
		N: 20, Seed: 1, Tiles: 4,
		Fader: propagation.Rayleigh{},
	})
	if err == nil {
		t.Fatal("TryNew accepted tiles=4 with Rayleigh fading")
	}
	if !strings.Contains(err.Error(), "NoFade") {
		t.Errorf("error %q does not explain the NoFade requirement", err)
	}
	// NoFade explicitly set is fine.
	if _, err := TryNew(Config{N: 20, Seed: 1, Tiles: 4, Fader: propagation.NoFade{}}); err != nil {
		t.Errorf("TryNew rejected tiles=4 with explicit NoFade: %v", err)
	}
}

// TestTryNewMatchesNew pins the bitwise contract: a config that
// constructs at all must produce the identical network through either
// entry point (same placement draws, same metric registry bytes).
func TestTryNewMatchesNew(t *testing.T) {
	cfg := Config{N: 25, Rect: geo.NewRect(500, 500), Seed: 7, EnsureConnected: true}
	a := New(cfg)
	b, err := TryNew(cfg)
	if err != nil {
		t.Fatalf("TryNew failed where New succeeded: %v", err)
	}
	for i := range a.Nodes {
		if a.Nodes[i].Pos != b.Nodes[i].Pos {
			t.Fatalf("node %d placed at %v vs %v", i, a.Nodes[i].Pos, b.Nodes[i].Pos)
		}
	}
	sa, _ := json.Marshal(a.Metrics.Snapshot())
	sb, _ := json.Marshal(b.Metrics.Snapshot())
	if string(sa) != string(sb) {
		t.Error("initial metric snapshots differ between New and TryNew")
	}
}

// TestNewStillPanics pins the backstop behavior for hand-written
// experiment code.
func TestNewStillPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New did not panic on N=0")
		}
	}()
	New(Config{N: 0, Seed: 1})
}
