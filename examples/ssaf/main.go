// SSAF demo: the paper's §3 comparison on one field. A 100-node sensor
// field floods CBR traffic over 20 random connections with counter-1
// flooding and with Signal Strength Aware Flooding, and prints the
// three metrics of Figure 1 side by side plus the transmission counts.
//
//	go run ./examples/ssaf
package main

import (
	"fmt"

	"routeless"
)

func run(ssaf bool) (m routeless.Meter, macPackets uint64) {
	nw := routeless.NewNetwork(routeless.NetworkConfig{
		N: 100, Rect: routeless.NewRect(1000, 1000), Seed: 7, EnsureConnected: true,
	})

	var cfg routeless.FloodConfig
	if ssaf {
		// RSSI span: decode threshold at 250 m up to the power at 25 m.
		cfg = routeless.SSAFConfig(10e-3, -55.1, -33.2)
	} else {
		cfg = routeless.Counter1Config(10e-3)
	}
	nw.Install(func(n *routeless.Node) routeless.Protocol {
		return routeless.NewFlooding(&cfg)
	})

	for _, n := range nw.Nodes {
		n := n
		n.OnAppReceive = func(p *routeless.Packet) {
			m.PacketReceived(float64(nw.Kernel.Now()-p.CreatedAt), p.HopCount)
		}
	}
	pairs := routeless.RandomPairs(nw.Kernel.Rand(), len(nw.Nodes), 20)
	var flows []*routeless.CBR
	for _, p := range pairs {
		c := routeless.NewCBR(nw.Nodes[p.Src], p.Dst, 1.0, 64)
		c.OnSend = m.PacketSent
		c.Start()
		flows = append(flows, c)
	}
	nw.Run(20)
	for _, c := range flows {
		c.Stop()
	}
	nw.Run(25) // drain
	return m, nw.MACPackets()
}

func main() {
	c1, c1Pkts := run(false)
	ss, ssPkts := run(true)

	t := routeless.NewTable("counter-1 flooding vs SSAF (100 nodes, 20 CBR connections, 20 s)",
		"metric", "counter-1", "ssaf")
	t.AddRow("delivery ratio", c1.DeliveryRatio(), ss.DeliveryRatio())
	t.AddRow("end-to-end delay (ms)", c1.Delay.Mean()*1e3, ss.Delay.Mean()*1e3)
	t.AddRow("average hops", c1.Hops.Mean(), ss.Hops.Mean())
	t.AddRow("MAC transmissions", c1Pkts, ssPkts)
	fmt.Println(t)

	fmt.Println("SSAF gives distant receivers the shortest rebroadcast backoff, so the")
	fmt.Println("flood front advances in larger strides: fewer hops and lower delay for")
	fmt.Println("the same per-node transmit-once cost (§3).")
}
