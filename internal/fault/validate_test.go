package fault_test

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"routeless/internal/fault"
	"routeless/internal/geo"
	"routeless/internal/node"
	"routeless/internal/sim"
)

// tinyNetwork is a minimal sequential field for install-path tests.
func tinyNetwork(t *testing.T) *node.Network {
	t.Helper()
	return node.New(node.Config{N: 10, Rect: geo.NewRect(400, 400), Seed: 1, EnsureConnected: true})
}

// TestValidateRejectsBadSpecs table-drives Plan.Validate over every
// spec type's nonsensical parameterizations. Each of these previously
// either panicked at install time (Drain capacity, Crash OffFraction,
// negative periods through sim.NewTicker) or silently fed NaN into the
// event heap; the fuzzer needs them rejected as values.
func TestValidateRejectsBadSpecs(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name string
		plan fault.Plan
		want string // substring of the error
	}{
		{"crash off fraction 1", fault.Plan{fault.Crash(1)}, "OffFraction"},
		{"crash off fraction above 1", fault.Plan{fault.Crash(1.5)}, "OffFraction"},
		{"crash off fraction negative", fault.Plan{fault.Crash(-0.1)}, "OffFraction"},
		{"crash off fraction NaN", fault.Plan{fault.Crash(nan)}, "OffFraction"},
		{"crash negative cycle", fault.Plan{fault.CrashSpec{OffFraction: 0.1, Cycle: -1}}, "Cycle"},
		{"drain zero capacity", fault.Plan{fault.Drain(0)}, "CapacityJ"},
		{"drain negative capacity", fault.Plan{fault.Drain(-5)}, "CapacityJ"},
		{"drain NaN capacity", fault.Plan{fault.Drain(nan)}, "CapacityJ"},
		{"drain infinite capacity", fault.Plan{fault.Drain(math.Inf(1))}, "CapacityJ"},
		{"drain negative period", fault.Plan{fault.DrainSpec{CapacityJ: 1, Period: -1}}, "Period"},
		{"drain NaN period", fault.Plan{fault.DrainSpec{CapacityJ: 1, Period: sim.Time(nan)}}, "Period"},
		{"degrade NaN offset", fault.Plan{fault.Degrade(nan)}, "OffsetDB"},
		{"degrade negative period", fault.Plan{fault.DegradeSpec{OffsetDB: -25, Period: -2}}, "Period"},
		{"degrade negative duration", fault.Plan{fault.DegradeSpec{OffsetDB: -25, Duration: -2}}, "Duration"},
		{"jam NaN power", fault.Plan{fault.Jam(nan)}, "TxPowerDBm"},
		{"jam negative period", fault.Plan{fault.JamSpec{TxPowerDBm: 24.5, Period: -1}}, "Period"},
		{"jam negative burst", fault.Plan{fault.JamSpec{TxPowerDBm: 24.5, Burst: -1}}, "Burst"},
		{"jam negative speed", fault.Plan{fault.JamSpec{TxPowerDBm: 24.5, SpeedMps: -3}}, "SpeedMps"},
		{"jam negative stop", fault.Plan{fault.JamSpec{TxPowerDBm: 24.5, Stop: -1}}, "Stop"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.plan.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %#v", tc.plan)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not name field %q", err, tc.want)
			}
		})
	}
}

// TestValidateAcceptsDefaults ensures the zero-meaning-default idiom
// still validates: every constructor-produced spec with in-range
// arguments must pass.
func TestValidateAcceptsDefaults(t *testing.T) {
	plan := fault.Plan{
		fault.Crash(0.1),
		fault.Crash(0), // inert but legal
		fault.Drain(2.5),
		fault.Degrade(-25),
		fault.Degrade(0), // zero offset means default
		fault.Jam(24.5),
		fault.Jam(0), // zero power means default
	}
	if err := plan.Validate(); err != nil {
		t.Fatalf("Validate rejected a default-form plan: %v", err)
	}
	if err := fault.Plan(nil).Validate(); err != nil {
		t.Fatalf("Validate rejected the empty plan: %v", err)
	}
}

// TestTryInstallRejectsWithoutSideEffects is the fails-pre-fix
// regression for the DrainSpec negative-period bug: before validation
// existed, DrainSpec{CapacityJ: 1, Period: -1} blew up inside
// sim.NewTicker ("ticker period must be positive") during Install —
// process death on a value problem. TryInstall must reject the plan as
// an error and leave the network byte-identical to one that never saw
// a fault plane.
func TestTryInstallRejectsWithoutSideEffects(t *testing.T) {
	nw := tinyNetwork(t)
	clean, err := json.Marshal(nw.Metrics.Snapshot())
	if err != nil {
		t.Fatal(err)
	}

	inj, err := fault.TryInstall(nw, fault.Plan{fault.DrainSpec{CapacityJ: 1, Period: -1}})
	if err == nil {
		t.Fatal("TryInstall accepted a negative drain period")
	}
	if inj != nil {
		t.Error("TryInstall returned a non-nil injector alongside an error")
	}

	after, err := json.Marshal(nw.Metrics.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(clean) != string(after) {
		t.Error("rejected plan mutated the metrics registry")
	}
	// The network must still accept a valid plan afterwards.
	if _, err := fault.TryInstall(nw, fault.Plan{fault.Crash(0.05)}); err != nil {
		t.Errorf("valid plan rejected after a failed TryInstall: %v", err)
	}
}

// TestInstallPanicsOnInvalidPlan pins the backstop: the panicking
// Install path still refuses invalid plans loudly (now before any
// process starts), preserving the fail-fast contract for hand-wired
// experiment code.
func TestInstallPanicsOnInvalidPlan(t *testing.T) {
	nw := tinyNetwork(t)
	defer func() {
		if recover() == nil {
			t.Error("Install did not panic on an invalid plan")
		}
	}()
	fault.Install(nw, fault.Plan{fault.Crash(1.0)})
}
