package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"routeless/internal/metrics"
	"routeless/internal/scenario"
	"routeless/internal/serve"
)

// testScenario is a small journaled run: enough traffic to produce
// several epoch records, fast enough for CI.
func testScenario() scenario.Scenario {
	return scenario.Scenario{
		Seed: 1, N: 30, Width: 565, Height: 565, Range: 250,
		Placement: scenario.PlaceUniform, Connected: true,
		Protocol: scenario.ProtoSSAF,
		Flows: []scenario.Flow{
			{Src: 3, Dst: 17}, {Src: 21, Dst: 4}, {Src: 9, Dst: 28},
		},
		Interval: 2, DataSize: 512, Duration: 5,
		JournalEvery: 1,
	}
}

func startServer(t *testing.T) (*httptest.Server, *serve.Server) {
	t.Helper()
	s := serve.New(2)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts, s
}

func postJSON(t *testing.T, url string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, b
}

func createRun(t *testing.T, base string, sc scenario.Scenario) string {
	t.Helper()
	body, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	code, resp := postJSON(t, base+"/runs", body)
	if code != http.StatusCreated {
		t.Fatalf("POST /runs: status %d, body %s", code, resp)
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(resp, &created); err != nil || created.ID == "" {
		t.Fatalf("bad create response %s (err %v)", resp, err)
	}
	return created.ID
}

// tailJournal blocks until the run's journal stream ends and returns
// every byte.
func tailJournal(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/runs/%s/journal", base, id))
	if err != nil {
		t.Fatalf("GET journal: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET journal: status %d", resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read journal stream: %v", err)
	}
	return b
}

// batchJournal runs the same scenario through the direct scenario API —
// the `wmansim -scenario -journal` code path — and returns the bytes.
func batchJournal(t *testing.T, sc scenario.Scenario) []byte {
	t.Helper()
	run, err := scenario.Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	run.SetJournal(metrics.NewJournal(&buf))
	if _, err := run.Finish(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStreamedJournalEqualsBatch is the serving contract: the bytes a
// client tails from a live run equal the batch CLI's journal bytes for
// the same document.
func TestStreamedJournalEqualsBatch(t *testing.T) {
	ts, _ := startServer(t)
	sc := testScenario()
	id := createRun(t, ts.URL, sc)
	streamed := tailJournal(t, ts.URL, id)
	batch := batchJournal(t, sc)
	if !bytes.Equal(streamed, batch) {
		t.Fatalf("streamed journal (%d bytes) != batch journal (%d bytes)",
			len(streamed), len(batch))
	}
}

// TestStatusLifecycle checks the status document reaches done with
// metrics and no error.
func TestStatusLifecycle(t *testing.T) {
	ts, _ := startServer(t)
	id := createRun(t, ts.URL, testScenario())
	tailJournal(t, ts.URL, id) // blocks until done
	resp, err := http.Get(ts.URL + "/runs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		ID      string          `json:"id"`
		Now     float64         `json:"now"`
		End     float64         `json:"end"`
		Done    bool            `json:"done"`
		Err     string          `json:"error"`
		Metrics json.RawMessage `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if !st.Done || st.Err != "" || st.ID != id {
		t.Fatalf("bad status: %+v", st)
	}
	if st.Now != st.End || st.End != 10 {
		t.Fatalf("status clock: now=%g end=%g", st.Now, st.End)
	}
	if len(st.Metrics) == 0 {
		t.Fatal("status missing final metrics")
	}
}

// TestSnapshotResumeSplice checkpoints a live run, resumes it as a new
// run, and splices the two journal streams: prefix (records before the
// checkpoint) + resumed suffix must equal the uninterrupted batch
// bytes.
func TestSnapshotResumeSplice(t *testing.T) {
	ts, _ := startServer(t)
	sc := testScenario()
	id := createRun(t, ts.URL, sc)

	// Checkpoint at t=5 (a chunk boundary: JournalEvery=1).
	code, doc := postJSON(t, fmt.Sprintf("%s/runs/%s/snapshot?at=5", ts.URL, id), nil)
	if code != http.StatusOK {
		t.Fatalf("snapshot: status %d, body %s", code, doc)
	}
	full := tailJournal(t, ts.URL, id)

	// The journal prefix is every record at or before t=5: the start
	// record plus epochs 1..5. Records are newline-delimited JSONL.
	lines := bytes.SplitAfter(full, []byte("\n"))
	var prefix []byte
	for _, ln := range lines {
		if len(ln) == 0 {
			continue
		}
		prefix = append(prefix, ln...)
		if bytes.Contains(ln, []byte(`"epoch t=5"`)) {
			break
		}
	}

	code, resp := postJSON(t, fmt.Sprintf("%s/runs/%s/resume", ts.URL, id), doc)
	if code != http.StatusCreated {
		t.Fatalf("resume: status %d, body %s", code, resp)
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(resp, &created); err != nil {
		t.Fatal(err)
	}
	suffix := tailJournal(t, ts.URL, created.ID)

	spliced := append(append([]byte(nil), prefix...), suffix...)
	if !bytes.Equal(spliced, full) {
		t.Fatalf("spliced journal (%d bytes) != full journal (%d bytes)",
			len(spliced), len(full))
	}
}

// TestRejectsMalformedScenario: parse and validation failures surface
// as 400s with the typed error message, never as panics.
func TestRejectsMalformedScenario(t *testing.T) {
	ts, _ := startServer(t)
	for name, body := range map[string]string{
		"garbage":       "{not json",
		"unknown-field": `{"seed":1,"n":5,"bogus":true}`,
		"invalid-doc":   `{"seed":1,"n":0,"width":100,"height":100,"range":50,"placement":"uniform","protocol":"ssaf","flows":[],"interval":1,"data_size":64,"duration":1}`,
	} {
		code, resp := postJSON(t, ts.URL+"/runs", []byte(body))
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, body %s", name, code, resp)
		}
	}
}

// TestRejectsTruncatedSnapshot: resume with a cut-off document is a
// 400, and the error names the truncation.
func TestRejectsTruncatedSnapshot(t *testing.T) {
	ts, _ := startServer(t)
	sc := testScenario()
	id := createRun(t, ts.URL, sc)
	code, doc := postJSON(t, fmt.Sprintf("%s/runs/%s/snapshot?at=2", ts.URL, id), nil)
	if code != http.StatusOK {
		t.Fatalf("snapshot: status %d", code)
	}
	tailJournal(t, ts.URL, id)
	code, resp := postJSON(t, fmt.Sprintf("%s/runs/%s/resume", ts.URL, id), doc[:len(doc)/2])
	if code != http.StatusBadRequest {
		t.Fatalf("truncated resume: status %d, body %s", code, resp)
	}
	if !bytes.Contains(resp, []byte("truncated")) {
		t.Fatalf("error does not name truncation: %s", resp)
	}
}

// TestSnapshotAfterFinish: a snapshot is a pure function of the run's
// document, so checkpointing a finished run still works — the server
// replays a twin — and the document resumes like any other.
func TestSnapshotAfterFinish(t *testing.T) {
	ts, _ := startServer(t)
	id := createRun(t, ts.URL, testScenario())
	tailJournal(t, ts.URL, id) // run is fully finished now
	code, doc := postJSON(t, fmt.Sprintf("%s/runs/%s/snapshot?at=3", ts.URL, id), nil)
	if code != http.StatusOK {
		t.Fatalf("post-finish snapshot: status %d, body %s", code, doc)
	}
	code, resp := postJSON(t, fmt.Sprintf("%s/runs/%s/resume", ts.URL, id), doc)
	if code != http.StatusCreated {
		t.Fatalf("resume: status %d, body %s", code, resp)
	}
	// A checkpoint past the run's end is unreachable by replay.
	code, resp = postJSON(t, fmt.Sprintf("%s/runs/%s/snapshot?at=99", ts.URL, id), nil)
	if code != http.StatusConflict {
		t.Fatalf("out-of-range snapshot: status %d, body %s", code, resp)
	}
}

// TestUnknownRun: every per-run route 404s on an unknown id.
func TestUnknownRun(t *testing.T) {
	ts, _ := startServer(t)
	resp, err := http.Get(ts.URL + "/runs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status: %d", resp.StatusCode)
	}
	code, _ := postJSON(t, ts.URL+"/runs/nope/snapshot", nil)
	if code != http.StatusNotFound {
		t.Fatalf("snapshot: %d", code)
	}
}
