// Routeless Routing demo: end-to-end data over a 200-node field, with a
// mid-run failure of the busiest relay. Because no route is stored
// anywhere, the next packets elect a different next hop on the spot —
// no route error, no re-discovery, no interruption (§4.2).
//
//	go run ./examples/routeless
package main

import (
	"cmp"
	"fmt"
	"slices"

	"routeless"
)

func main() {
	nw := routeless.NewNetwork(routeless.NetworkConfig{
		N: 200, Rect: routeless.NewRect(1200, 1200), Seed: 11, EnsureConnected: true,
	})

	relayLoad := map[routeless.NodeID]int{}
	protos := make([]*routeless.Routeless, 0, len(nw.Nodes))
	nw.Install(func(n *routeless.Node) routeless.Protocol {
		r := routeless.NewRouteless(routeless.RoutelessConfig{})
		id := n.ID
		r.OnRelay = func(p *routeless.Packet) {
			if p.Kind == routeless.KindData && p.Origin != id {
				relayLoad[id]++
			}
		}
		protos = append(protos, r)
		return r
	})

	// Pick endpoints on opposite sides of the field.
	src, dst := nearest(nw, 100, 600), nearest(nw, 1100, 600)
	fmt.Printf("source n%d at %v — destination n%d at %v\n\n",
		src, nw.Nodes[src].Pos, dst, nw.Nodes[dst].Pos)

	delivered := 0
	nw.Nodes[dst].OnAppReceive = func(p *routeless.Packet) {
		delivered++
		fmt.Printf("t=%5.2fs  delivered #%d after %d hops (%.1f ms)\n",
			float64(nw.Kernel.Now()), delivered, p.HopCount,
			(nw.Kernel.Now() - p.CreatedAt).Millis())
	}

	// One packet per second for 20 seconds.
	cbr := routeless.NewCBR(nw.Nodes[src], routeless.NodeID(dst), 1.0, 256)
	cbr.StartAt(0.5)

	// After 8 seconds, kill whichever relay carried the most packets.
	nw.Kernel.At(8, func() {
		victim := busiest(relayLoad)
		fmt.Printf("t= 8.00s  *** killing busiest relay n%d (%d relays so far) ***\n",
			victim, relayLoad[victim])
		nw.Nodes[victim].Fail()
	})

	nw.Run(21)
	cbr.Stop()
	nw.Run(25)

	fmt.Printf("\n%d/%d packets delivered; busiest surviving relays:\n", delivered, cbr.Sent())
	for _, id := range topRelays(relayLoad, 5) {
		state := "up"
		if !nw.Nodes[id].Up() {
			state = "FAILED"
		}
		fmt.Printf("  n%-4d %3d relays (%s)\n", id, relayLoad[id], state)
	}
	st := protos[src].Stats()
	fmt.Printf("\nsource stats: %d discoveries (no re-discovery after the failure), %d data sent\n",
		st.DiscoveriesSent, st.DataSent)
}

func nearest(nw *routeless.Network, x, y float64) int {
	best, bestD := 0, 1e18
	for i, n := range nw.Nodes {
		dx, dy := n.Pos.X-x, n.Pos.Y-y
		if d := dx*dx + dy*dy; d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

func busiest(load map[routeless.NodeID]int) routeless.NodeID {
	var best routeless.NodeID
	bestN := -1
	ids := make([]int, 0, len(load))
	for id := range load {
		ids = append(ids, int(id))
	}
	slices.Sort(ids)
	for _, id := range ids {
		if load[routeless.NodeID(id)] > bestN {
			best, bestN = routeless.NodeID(id), load[routeless.NodeID(id)]
		}
	}
	return best
}

func topRelays(load map[routeless.NodeID]int, k int) []routeless.NodeID {
	ids := make([]routeless.NodeID, 0, len(load))
	for id := range load {
		ids = append(ids, id)
	}
	slices.SortFunc(ids, func(a, b routeless.NodeID) int {
		if c := cmp.Compare(load[b], load[a]); c != 0 {
			return c // heavier relays first
		}
		return cmp.Compare(a, b)
	})
	if len(ids) > k {
		ids = ids[:k]
	}
	return ids
}
