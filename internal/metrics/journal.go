package metrics

import (
	"encoding/json"
	"io"
)

// Record is one line of the run journal: the provenance and outcome of
// one experiment run (or one whole sweep). The deterministic core —
// Experiment, Label, Seed, Config, Metrics, TableCSV — is bit-for-bit
// reproducible from the seed; the environment fields (GitRev,
// GoVersion, WallSeconds) are stamped only by the command-line tools
// and omitted from golden comparisons.
type Record struct {
	Experiment  string    `json:"experiment"`
	Label       string    `json:"label,omitempty"`
	Seed        int64     `json:"seed,omitempty"`
	Config      any       `json:"config,omitempty"`
	Metrics     *Snapshot `json:"metrics,omitempty"`
	TableCSV    string    `json:"table_csv,omitempty"`
	GitRev      string    `json:"git_rev,omitempty"`
	GoVersion   string    `json:"go_version,omitempty"`
	WallSeconds float64   `json:"wall_seconds,omitempty"`
}

// Journal appends Records as JSON Lines to a writer. Encoding uses only
// structs and slices (never maps), so the byte stream is deterministic
// for deterministic inputs.
//
// A Journal is single-writer and not safe for concurrent use. In a
// parallel sweep, records must be written after the merge, in cell
// order — writing from inside a worker closure would make record order
// depend on the goroutine schedule and break the byte-identical-at-
// any-worker-count contract. The sharedcap lint rule flags a Journal
// captured into a sweep worker closure for exactly this reason.
type Journal struct {
	w   io.Writer
	err error
}

// NewJournal wraps w. The caller owns the writer's lifecycle (the
// commands open/close the file; tests pass a bytes.Buffer).
func NewJournal(w io.Writer) *Journal { return &Journal{w: w} }

// Write appends one record as a single JSON line. The first failure
// sticks and is also visible through Err, so callers deep inside an
// experiment sweep may ignore the per-record error and check once at
// the end.
func (j *Journal) Write(rec Record) error {
	data, err := json.Marshal(rec)
	if err == nil {
		data = append(data, '\n')
		_, err = j.w.Write(data)
	}
	if err != nil && j.err == nil {
		j.err = err
	}
	return err
}

// Err returns the first error any Write encountered, if any.
func (j *Journal) Err() error { return j.err }
