// Package metrics mirrors the real observability sinks: an
// order-sensitive journal and a last-write-wins gauge.
package metrics

// Record is one journal row.
type Record struct {
	Name  string
	Value float64
}

// Journal accumulates records in write order.
type Journal struct{ records []Record }

// Write appends one record; write order is observable.
func (j *Journal) Write(r Record) { j.records = append(j.records, r) }

// Len reports the record count.
func (j *Journal) Len() int { return len(j.records) }

// Gauge is a point-in-time value; Set is last-write-wins.
type Gauge struct{ v float64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v = v }
