package node

import (
	"math/rand"

	"routeless/internal/metrics"
	"routeless/internal/sim"
)

// FailureProcess implements the paper's node-failure model (§4.3): "a
// node failure of 10% means that randomly selected 10% of the time the
// transceiver of a node is turned off and not able to transmit or
// receive any packets."
//
// The process alternates exponentially distributed up and down periods
// whose means are chosen so the long-run off fraction equals
// OffFraction: mean-up = (1−p)·Cycle, mean-down = p·Cycle.
type FailureProcess struct {
	// OffFraction p ∈ [0, 1) is the long-run fraction of time off.
	OffFraction float64
	// Cycle is the mean up+down period in seconds; default 10.
	Cycle float64
	// Sleep uses the low-power sleep state instead of a hard
	// transceiver-off — the §4.2 voluntary duty-cycling extension.
	// Packet-level behavior is identical; the energy meter differs.
	Sleep bool

	node  *Node
	rng   *rand.Rand
	timer *sim.Timer

	// down is this process's own phase. It deliberately does NOT mirror
	// node.Up(): the node's power state is shared (a battery drain or a
	// second crash process may fail the node mid-phase), and keying the
	// phase machine off shared state accrued downtime from a downSince
	// this process never set. Found by the scenario fuzzer
	// (internal/fuzz/testdata/crash_shared_state.json).
	down bool

	// counters
	failures   metrics.Counter
	recoveries metrics.Counter
	totalDown  float64
	downSince  sim.Time
}

// NewFailureProcess builds a process for n driven by r. It does not
// start until Start is called.
func NewFailureProcess(n *Node, r *rand.Rand) *FailureProcess {
	fp := &FailureProcess{Cycle: 10, node: n, rng: r}
	// Failure schedules are a control-plane process: on a tiled network
	// they run on the global kernel at epoch barriers, where flipping a
	// radio is safe (no tile worker is mid-window).
	fp.timer = sim.NewTimer(n.Ctl, fp.flip)
	return fp
}

// RegisterMetrics surfaces the process's counters as network-wide
// fault.* series. Per-node processes registered under one registry sum
// into single network series; downtime is a gauge func so the series is
// exact "up to now" at snapshot time even while the node is down.
func (fp *FailureProcess) RegisterMetrics(reg *metrics.Registry) {
	reg.Observe("fault.crashes", &fp.failures)
	reg.Observe("fault.recoveries", &fp.recoveries)
	reg.GaugeFunc("fault.downtime_s", fp.DownTime)
}

// Start arms the process. With OffFraction zero it does nothing.
func (fp *FailureProcess) Start() {
	if fp.OffFraction <= 0 {
		return
	}
	if fp.OffFraction >= 1 {
		panic("node: OffFraction must be below 1")
	}
	fp.timer.Reset(fp.upDuration())
}

// Stop halts the process, closing its down phase if one is open.
func (fp *FailureProcess) Stop() {
	fp.timer.Stop()
	if fp.down {
		fp.recover()
	}
}

// Failures returns how many times the node went down.
func (fp *FailureProcess) Failures() uint64 { return fp.failures.Value() }

// DownTime returns seconds accumulated in this process's down phases,
// up to now. Phases are disjoint in time, so the total never exceeds
// the elapsed sim time — the conservation bound CheckInvariants holds
// per process.
func (fp *FailureProcess) DownTime() float64 {
	d := fp.totalDown
	if fp.down {
		d += float64(fp.node.Kernel.Now() - fp.downSince)
	}
	return d
}

func (fp *FailureProcess) upDuration() sim.Time {
	mean := (1 - fp.OffFraction) * fp.Cycle
	return sim.Time(fp.rng.ExpFloat64() * mean)
}

func (fp *FailureProcess) downDuration() sim.Time {
	mean := fp.OffFraction * fp.Cycle
	return sim.Time(fp.rng.ExpFloat64() * mean)
}

func (fp *FailureProcess) flip() {
	if !fp.down {
		fp.down = true
		fp.failures.Inc()
		fp.downSince = fp.node.Kernel.Now()
		if fp.Sleep {
			fp.node.Sleep()
		} else {
			fp.node.Fail()
		}
		fp.timer.Reset(fp.downDuration())
	} else {
		fp.recover()
		fp.timer.Reset(fp.upDuration())
	}
}

func (fp *FailureProcess) recover() {
	fp.down = false
	fp.recoveries.Inc()
	fp.totalDown += float64(fp.node.Kernel.Now() - fp.downSince)
	fp.node.Recover()
}
