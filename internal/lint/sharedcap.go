package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// SharedCap guards the worker-pool ownership contract: a closure
// handed to parallel.Map/ForEach, sweep.Run, or pdes.Run (directly or
// through a config field such as pdes.Config.Exchange) executes inside
// a concurrent engine, so it must not capture shared mutable state.
// Two capture classes are flagged inside such closures:
//
//   - package-level mutable variables (any package's), which every
//     worker would read and write concurrently — racy, and even when
//     "benignly" racy the fold order becomes schedule-dependent, which
//     breaks the bit-identical-for-any-worker-count guarantee;
//   - variables of the known single-owner types (*sim.EventPool,
//     *phy.Pools, *propagation.RangeCache, *propagation.SharedRangeCache,
//     *node.Runtime, *metrics.Registry, *metrics.Journal) captured from
//     the enclosing scope. None of these are concurrency-safe: reusable
//     pools must come in through the sweep.Context (ctx.Runtime()) so
//     each worker owns its own copy, and registries/journals must be
//     filled after the merge, in cell order, or record order becomes
//     schedule-dependent.
//
// sync and sync/atomic values are exempt from the package-level rule:
// they exist to be shared. Test files are exempt — tests routinely
// capture counters to assert scheduling properties.
var SharedCap = &Analyzer{
	Name: "sharedcap",
	Doc:  "forbid closures passed to parallel.Map/ForEach/sweep.Run from capturing shared mutable state",
	Run:  runSharedCap,
}

// sharedCapEntryPoints maps importPath → function names whose func-lit
// arguments run concurrently on a worker pool.
var sharedCapEntryPoints = map[string]map[string]bool{
	"routeless/internal/parallel": {"Map": true, "ForEach": true},
	"routeless/internal/sweep":    {"Run": true},
	"routeless/internal/pdes":     {"Run": true},
}

// sharedCapPoolTypes are the single-owner types that must never cross
// into a worker closure from the outside; keyed by package path suffix
// then type name.
var sharedCapPoolTypes = map[string]map[string]bool{
	"routeless/internal/sim":         {"EventPool": true},
	"routeless/internal/phy":         {"Pools": true},
	"routeless/internal/propagation": {"RangeCache": true, "SharedRangeCache": true},
	"routeless/internal/node":        {"Runtime": true},
	"routeless/internal/metrics":     {"Registry": true, "Journal": true},
}

func runSharedCap(p *Pass) {
	if !p.InInternal() && !p.InCmd() {
		return
	}
	for _, f := range p.Files {
		if p.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isWorkerEntryPoint(p, call.Fun) {
				return true
			}
			// Func literals may arrive as direct arguments (sweep.Run's
			// body closure) or inside a config struct (pdes.Config.Exchange);
			// both run on worker goroutines, so walk the whole argument.
			for _, arg := range call.Args {
				ast.Inspect(arg, func(m ast.Node) bool {
					if lit, ok := m.(*ast.FuncLit); ok {
						checkWorkerClosure(p, lit)
						return false
					}
					return true
				})
			}
			return true
		})
	}
}

// isWorkerEntryPoint reports whether fun names one of the worker-pool
// entry points, unwrapping explicit generic instantiation
// (sweep.Run[T](...)).
func isWorkerEntryPoint(p *Pass, fun ast.Expr) bool {
	switch e := fun.(type) {
	case *ast.IndexExpr:
		return isWorkerEntryPoint(p, e.X)
	case *ast.IndexListExpr:
		return isWorkerEntryPoint(p, e.X)
	case *ast.SelectorExpr:
		names, ok := sharedCapEntryPoints[p.PkgNameOf(e)]
		return ok && names[e.Sel.Name]
	}
	return false
}

// checkWorkerClosure flags shared-mutable-state captures in one worker
// closure. Deduplicated per variable: one report per captured object.
func checkWorkerClosure(p *Pass, lit *ast.FuncLit) {
	if p.Info == nil {
		return
	}
	reported := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() || reported[v] {
			return true
		}
		switch {
		case isPackageLevel(v) && !isSyncValue(v.Type()):
			reported[v] = true
			p.Reportf(id.Pos(), "worker closure reads package-level var %s; shared mutable state makes the sweep schedule-dependent — derive per-worker state from the cell seed or sweep.Context instead", v.Name())
		case isPoolType(v.Type()) && v.Pos() < lit.Pos():
			// Captured from outside the literal: every worker shares one
			// instance. (One defined inside the literal is that worker's
			// own.)
			reported[v] = true
			p.Reportf(id.Pos(), "worker closure captures %s %s from the enclosing scope; this type is single-owner — take pools from sweep.Context (ctx.Runtime()) and fill registries/journals after the merge, in cell order", typeString(v.Type()), v.Name())
		}
		return true
	})
}

// isPackageLevel reports whether v is declared at package scope.
func isPackageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// isSyncValue reports whether t is (a pointer to) a type from sync or
// sync/atomic — values designed for concurrent sharing.
func isSyncValue(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	path := named.Obj().Pkg().Path()
	return path == "sync" || path == "sync/atomic"
}

// isPoolType reports whether t is (a pointer to) one of the per-worker
// pool types.
func isPoolType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	for suffix, names := range sharedCapPoolTypes {
		if strings.HasSuffix(named.Obj().Pkg().Path(), suffix) && names[named.Obj().Name()] {
			return true
		}
	}
	return false
}

// typeString renders t compactly for diagnostics (*node.Runtime, not
// *routeless/internal/node.Runtime).
func typeString(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
