// Package fuzz is the conservation-law scenario fuzzer: a seed-driven
// generator of whole simulation scenarios — topology, mobility, traffic
// mix, and a typed fault plan — run under the simulator's free test
// oracle (the metrics conservation laws plus bitwise seed determinism),
// with a shrinking reducer that minimizes any failing scenario to its
// smallest still-failing form and emits it as a replayable JSON
// fixture.
//
// The package tells two failure classes apart, and that distinction is
// the whole point: an *invalid scenario* (a plan the fault plane
// rejects, a placement that cannot connect, a tiled run asking for
// fading) is the generator's or the user's problem and is reported as a
// value; everything else that goes wrong — a conservation-law
// imbalance, a run that does not bitwise-reproduce under its own seed,
// a panic from inside the simulator — is a simulator bug. Every
// crash-instead-of-error path the fuzzer trips therefore has to be
// converted to a structured verdict first; that conversion is the
// repo's fault.Plan.Validate / node.TryNew / fault.TryInstall error
// plumbing.
//
// Determinism contract: a Scenario is a pure value; Generate(seed) is a
// pure function of the seed drawing only from rng.StreamFuzz children;
// Run derives every simulation stream from Scenario.Seed. The bounded
// fuzz driver (cmd/simfuzz -seeds) therefore produces the identical
// verdict list on every invocation.
package fuzz

import "routeless/internal/scenario"

// The scenario document itself was promoted to internal/scenario — the
// unified run-description API shared by wmansim, simserve, snapshots,
// and this fuzzer. These aliases keep the fuzzer's historical
// vocabulary (and every committed fixture) meaning exactly what it
// always meant; the generator now writes into the public document type.
type (
	Scenario  = scenario.Scenario
	Flow      = scenario.Flow
	Mobility  = scenario.Mobility
	FaultSpec = scenario.FaultSpec
)

// Protocol and placement vocabularies, re-exported.
const (
	ProtoCounter1  = scenario.ProtoCounter1
	ProtoSSAF      = scenario.ProtoSSAF
	ProtoRouteless = scenario.ProtoRouteless
	ProtoAODV      = scenario.ProtoAODV
	ProtoGradient  = scenario.ProtoGradient

	PlaceUniform = scenario.PlaceUniform
	PlaceCluster = scenario.PlaceCluster
	PlaceLine    = scenario.PlaceLine
	PlaceGrid    = scenario.PlaceGrid
)

// subGenerate is the generator's child stream label under
// rng.StreamFuzz (placement and mobility labels live with the
// scenario package, which owns those draws now).
const subGenerate = scenario.SubGenerate

var protocols = scenario.Protocols
var placements = scenario.Placements
