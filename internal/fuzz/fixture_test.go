package fuzz

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFixtureRoundTrip(t *testing.T) {
	f := Fixture{
		Scenario: big(),
		Verdict:  VerdictViolation,
		Detail:   `law "mac-queue" violated`,
		Note:     "synthetic round-trip fixture",
	}
	b, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(b, []byte("\n")) {
		t.Error("encoded fixture lacks trailing newline")
	}
	got, err := DecodeFixture(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Verdict != f.Verdict || got.Scenario.N != f.Scenario.N ||
		len(got.Scenario.Faults) != len(f.Scenario.Faults) {
		t.Fatalf("round trip lost fields:\n%+v\n%+v", f, got)
	}
	// Re-encoding the decoded fixture reproduces the bytes — fixtures
	// are canonical, so committed files never churn.
	b2, err := got.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Fatalf("fixture encoding not canonical:\n%s\n%s", b, b2)
	}
}

func TestDecodeFixtureRejectsUnknownFields(t *testing.T) {
	_, err := DecodeFixture([]byte(`{"scenario":{"seed":1},"verdict":"pass","extra":true}`))
	if err == nil || !strings.Contains(err.Error(), "bad fixture") {
		t.Fatalf("unknown field accepted: %v", err)
	}
}

func TestLoadFixtureFromDisk(t *testing.T) {
	f := Fixture{Scenario: tiny(), Verdict: VerdictPass}
	b, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "fx.json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFixture(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scenario.Seed != f.Scenario.Seed {
		t.Fatalf("loaded fixture differs: %+v", got)
	}
	if _, err := LoadFixture(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing fixture file loaded without error")
	}
}
