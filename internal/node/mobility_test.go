package node

import (
	"testing"

	"routeless/internal/geo"
	"routeless/internal/packet"
	"routeless/internal/rng"
)

func TestWaypointMovesWithinTerrain(t *testing.T) {
	nw := New(Config{N: 5, Rect: geo.NewRect(500, 500), Seed: 1})
	nw.Install(func(n *Node) Protocol { return &echoProto{} })
	w := NewWaypoint(nw, nw.Nodes[0], rng.ForNode(1, rng.StreamTopology, 0))
	start := nw.Nodes[0].Pos
	w.Start()
	nw.Run(600) // long enough to complete several legs at 1–5 m/s
	if nw.Nodes[0].Pos == start {
		t.Fatal("node never moved")
	}
	if !nw.Rect.Contains(nw.Nodes[0].Pos) {
		t.Fatalf("node left the terrain: %v", nw.Nodes[0].Pos)
	}
	if w.Legs() == 0 {
		t.Fatal("no waypoint ever reached")
	}
}

func TestWaypointSpeedBound(t *testing.T) {
	nw := New(Config{N: 2, Rect: geo.NewRect(1000, 1000), Seed: 2})
	nw.Install(func(n *Node) Protocol { return &echoProto{} })
	w := NewWaypoint(nw, nw.Nodes[0], rng.ForNode(2, rng.StreamTopology, 0))
	w.MinSpeed, w.MaxSpeed = 2, 2 // exactly 2 m/s
	w.MinPause, w.MaxPause = 0, 0
	w.Start()
	prev := nw.Nodes[0].Pos
	maxStride := 0.0
	for i := 0; i < 200; i++ {
		nw.Run(nw.Kernel.Now() + 0.25)
		p := nw.Nodes[0].Pos
		if d := prev.Dist(p); d > maxStride {
			maxStride = d
		}
		prev = p
	}
	// 2 m/s × 0.25 s tick = 0.5 m per tick, small epsilon.
	if maxStride > 0.51 {
		t.Fatalf("stride %v exceeds speed bound", maxStride)
	}
}

func TestWaypointStopFreezes(t *testing.T) {
	nw := New(Config{N: 2, Rect: geo.NewRect(500, 500), Seed: 3})
	nw.Install(func(n *Node) Protocol { return &echoProto{} })
	w := NewWaypoint(nw, nw.Nodes[0], rng.ForNode(3, rng.StreamTopology, 0))
	w.Start()
	nw.Run(10)
	w.Stop()
	frozen := nw.Nodes[0].Pos
	nw.Run(30)
	if nw.Nodes[0].Pos != frozen {
		t.Fatal("node moved after Stop")
	}
}

func TestMoveNodeSyncsChannel(t *testing.T) {
	nw := New(Config{Positions: []geo.Point{{X: 0, Y: 0}, {X: 100, Y: 0}}, Seed: 4})
	nw.Install(func(n *Node) Protocol { return &echoProto{} })
	nw.MoveNode(1, geo.Point{X: 400, Y: 300})
	if nw.Nodes[1].Pos != (geo.Point{X: 400, Y: 300}) {
		t.Fatal("node position not updated")
	}
	if nw.Channel.Position(1) != (geo.Point{X: 400, Y: 300}) {
		t.Fatal("channel position not updated")
	}
}

func TestMobilityAffectsConnectivity(t *testing.T) {
	// Two nodes in range exchange traffic; move one out of range and
	// traffic stops; move it back and traffic resumes.
	nw := New(Config{Positions: []geo.Point{{X: 0, Y: 0}, {X: 100, Y: 0}}, Seed: 5})
	nw.Install(func(n *Node) Protocol { return &echoProto{} })
	count := 0
	nw.Nodes[1].OnAppReceive = func(*packet.Packet) { count++ }
	send := func() {
		nw.Nodes[0].Net.Send(1, 64)
		nw.Run(nw.Kernel.Now() + 1)
	}
	send()
	if count != 1 {
		t.Fatalf("in range: delivered %d", count)
	}
	nw.MoveNode(1, geo.Point{X: 2000, Y: 0})
	send()
	if count != 1 {
		t.Fatal("out-of-range node still received")
	}
	nw.MoveNode(1, geo.Point{X: 150, Y: 0})
	send()
	if count != 2 {
		t.Fatal("moved-back node did not receive")
	}
}
