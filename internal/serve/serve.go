// Package serve is simulation-as-a-service: an HTTP API over the
// scenario/snapshot stack, backed by a sweep worker pool. A client
// POSTs a scenario document, tails the run's JSONL journal live, asks
// for a deterministic checkpoint mid-flight, and resumes a checkpoint
// as a new run — and every byte it sees is identical to what the batch
// CLI (`wmansim -scenario`) writes for the same document, because both
// paths run the same scenario.Run with the same journal code.
//
// Concurrency discipline: a run is owned by exactly one pool worker
// goroutine from build to finish; HTTP handlers never touch a live
// simulation. The only shared surface is the runState's byte buffer —
// journal bytes cross it under a mutex, readers block on a cond.
// Snapshots never reach into the live run either: because a snapshot
// is a pure function of (document, pause time), the snapshot handler
// replays a twin of the run to the requested time on its own pool
// worker and checkpoints that. Deterministic replay makes the twin's
// bytes identical to pausing the original, works equally for live and
// finished runs, and leaves the simulator exactly as deterministic as
// the CLI.
//
// The package deliberately uses no wall-clock APIs: run IDs come from
// a counter, progress from simulation time. Timing out an abandoned
// journal tail is the reverse proxy's job, not the simulator's.
package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"

	"routeless/internal/experiments"
	"routeless/internal/metrics"
	"routeless/internal/scenario"
	"routeless/internal/sim"
	"routeless/internal/snapshot"
	"routeless/internal/sweep"
)

// maxBodyBytes bounds request bodies (scenario JSON and snapshot
// documents are both small).
const maxBodyBytes = 32 << 20

// Server routes the run API. Construct with New, mount via Handler.
type Server struct {
	mux  *http.ServeMux
	pool *sweep.Pool

	mu     sync.Mutex
	runs   map[string]*runState
	nextID int
}

// New builds a server over its own worker pool. Close releases it.
func New(workers int) *Server {
	s := &Server{
		mux:  http.NewServeMux(),
		pool: sweep.NewPool(workers),
		runs: make(map[string]*runState),
	}
	s.mux.HandleFunc("POST /runs", s.handleCreate)
	s.mux.HandleFunc("GET /runs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /runs/{id}/journal", s.handleJournal)
	s.mux.HandleFunc("POST /runs/{id}/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("POST /runs/{id}/resume", s.handleResume)
	return s
}

// Handler returns the route table.
func (s *Server) Handler() http.Handler { return s.mux }

// Close drains the worker pool. In-flight runs complete first.
func (s *Server) Close() { s.pool.Close() }

// runState is one run's shared surface between its owning worker and
// the HTTP handlers.
type runState struct {
	id string

	mu   sync.Mutex
	cond *sync.Cond
	// journal accumulates the run's JSONL bytes; readers stream it as
	// it grows.
	journal []byte
	now     sim.Time
	end     sim.Time
	done    bool
	err     string
	metrics *experiments.RunMetrics

	// source is what the run was built from — the scenario document,
	// or the snapshot doc a resume started at. The snapshot handler
	// replays a twin from it.
	sc  scenario.Scenario
	doc *snapshot.Doc
}

func newRunState(id string) *runState {
	rs := &runState{id: id}
	rs.cond = sync.NewCond(&rs.mu)
	return rs
}

// Write implements io.Writer for the run's journal: bytes land in the
// shared buffer and wake every streaming reader.
func (rs *runState) Write(p []byte) (int, error) {
	rs.mu.Lock()
	rs.journal = append(rs.journal, p...)
	rs.cond.Broadcast()
	rs.mu.Unlock()
	return len(p), nil
}

// finish marks the run complete (err empty on success) and wakes every
// streaming reader.
func (rs *runState) finish(m *experiments.RunMetrics, errMsg string) {
	rs.mu.Lock()
	rs.done = true
	rs.err = errMsg
	rs.metrics = m
	rs.cond.Broadcast()
	rs.mu.Unlock()
}

// setNow publishes simulation progress at a chunk boundary.
func (rs *runState) setNow(t sim.Time) {
	rs.mu.Lock()
	rs.now = t
	rs.mu.Unlock()
}

// register allocates the next run ID.
func (s *Server) register() *runState {
	s.mu.Lock()
	s.nextID++
	rs := newRunState(fmt.Sprintf("r%06d", s.nextID))
	s.runs[rs.id] = rs
	s.mu.Unlock()
	return rs
}

func (s *Server) lookup(id string) *runState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runs[id]
}

// launch submits the run job: build from the run's source, journal
// into rs, advance in chunks publishing progress, finish.
func (s *Server) launch(rs *runState) {
	s.pool.Submit(func(ctx *sweep.Context) {
		defer func() {
			if p := recover(); p != nil {
				rs.finish(nil, fmt.Sprintf("panic: %v", p))
			}
		}()
		run, err := buildFrom(rs.sc, rs.doc, ctx)
		if err != nil {
			rs.finish(nil, err.Error())
			return
		}
		rs.mu.Lock()
		rs.now = run.Now()
		rs.end = run.End()
		rs.mu.Unlock()
		run.SetJournal(metrics.NewJournal(rs))

		step := sim.Time(run.Scenario().JournalEvery)
		if !(step > 0) {
			step = run.End() / 64
		}
		for run.Now() < run.End() {
			next := run.Now() + step
			if next >= run.End() {
				next = run.End()
			}
			if err := run.AdvanceTo(next); err != nil {
				rs.finish(nil, err.Error())
				return
			}
			rs.setNow(run.Now())
		}
		rm, ferr := run.Finish()
		msg := ""
		if ferr != nil {
			msg = ferr.Error()
		}
		rs.finish(&rm, msg)
	})
}

// buildFrom constructs a run on a pool worker from a run's source:
// a fresh build from the scenario document, or a replay-verified
// restore from a snapshot doc.
func buildFrom(sc scenario.Scenario, doc *snapshot.Doc, ctx *sweep.Context) (*scenario.Run, error) {
	opts := scenario.BuildOptions{Runtime: ctx.Runtime()}
	if doc != nil {
		return doc.Restore(opts)
	}
	return scenario.BuildWith(sc, opts)
}

// --- handlers ---

// statusDoc is the GET /runs/{id} response body.
type statusDoc struct {
	ID   string  `json:"id"`
	Now  float64 `json:"now"`
	End  float64 `json:"end"`
	Done bool    `json:"done"`
	Err  string  `json:"error,omitempty"`

	Metrics *experiments.RunMetrics `json:"metrics,omitempty"`
}

type createdDoc struct {
	ID string `json:"id"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// handleCreate starts a run from a scenario document.
func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sc, err := scenario.Parse(body)
	if err != nil {
		status := http.StatusBadRequest
		if !errors.Is(err, scenario.ErrParse) && !errors.Is(err, scenario.ErrInvalid) {
			status = http.StatusInternalServerError
		}
		writeError(w, status, err)
		return
	}
	rs := s.register()
	rs.sc = sc
	s.launch(rs)
	writeJSON(w, http.StatusCreated, createdDoc{ID: rs.id})
}

// handleStatus reports run progress and, once done, final metrics.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	rs := s.lookup(r.PathValue("id"))
	if rs == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such run"))
		return
	}
	rs.mu.Lock()
	doc := statusDoc{
		ID: rs.id, Now: float64(rs.now), End: float64(rs.end),
		Done: rs.done, Err: rs.err, Metrics: rs.metrics,
	}
	rs.mu.Unlock()
	writeJSON(w, http.StatusOK, doc)
}

// handleJournal streams the run's JSONL journal from the beginning,
// blocking while the run is live: a `curl` against it tails the run.
func (s *Server) handleJournal(w http.ResponseWriter, r *http.Request) {
	rs := s.lookup(r.PathValue("id"))
	if rs == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such run"))
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	flusher, _ := w.(http.Flusher)
	off := 0
	for {
		rs.mu.Lock()
		for off == len(rs.journal) && !rs.done {
			rs.cond.Wait()
		}
		chunk := rs.journal[off:]
		done := rs.done
		rs.mu.Unlock()
		if len(chunk) > 0 {
			if _, err := w.Write(chunk); err != nil {
				return // client went away; the run keeps going
			}
			off += len(chunk)
			if flusher != nil {
				flusher.Flush()
			}
		}
		if done && len(chunk) == 0 {
			return
		}
	}
}

// handleSnapshot checkpoints a run at simulation time ?at=T (omitted,
// the run's last published progress time). The handler never touches
// the live run: a twin is replayed from the run's source document to T
// on a pool worker and checkpointed there — deterministic replay makes
// the bytes identical to pausing the original, whether the run is
// still live or long finished. The response body is the binary
// snapshot document.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	rs := s.lookup(r.PathValue("id"))
	if rs == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such run"))
		return
	}
	rs.mu.Lock()
	at := rs.now
	rs.mu.Unlock()
	if q := r.URL.Query().Get("at"); q != "" {
		var v float64
		if _, err := fmt.Sscanf(q, "%g", &v); err != nil || !(v >= 0) {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad at=%q", q))
			return
		}
		at = sim.Time(v)
	}
	reply := make(chan snapReply, 1)
	s.pool.Submit(func(ctx *sweep.Context) {
		defer func() {
			if p := recover(); p != nil {
				reply <- snapReply{err: fmt.Errorf("panic: %v", p)}
			}
		}()
		run, err := buildFrom(rs.sc, rs.doc, ctx)
		if err != nil {
			reply <- snapReply{err: err}
			return
		}
		if err := run.AdvanceTo(at); err != nil {
			reply <- snapReply{err: err}
			return
		}
		var buf bytes.Buffer
		if err := snapshot.Save(&buf, run); err != nil {
			reply <- snapReply{err: err}
			return
		}
		reply <- snapReply{doc: buf.Bytes()}
	})
	rep := <-reply
	if rep.err != nil {
		writeError(w, http.StatusConflict, rep.err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(rep.doc)
}

// snapReply carries a checkpoint (or its failure) back from the pool
// worker that replayed it.
type snapReply struct {
	doc []byte
	err error
}

// handleResume starts a new run from a snapshot document body. The new
// run's journal holds only the records past the restore point — the
// client concatenates it after the original's prefix for the full
// stream.
func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	origin := s.lookup(r.PathValue("id"))
	if origin == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such run"))
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	doc, err := snapshot.Read(bytes.NewReader(body))
	if err != nil {
		status := http.StatusBadRequest
		if !errors.Is(err, snapshot.ErrTruncated) && !errors.Is(err, snapshot.ErrCorrupt) &&
			!errors.Is(err, snapshot.ErrVersion) {
			status = http.StatusInternalServerError
		}
		writeError(w, status, err)
		return
	}
	rs := s.register()
	rs.doc = doc
	s.launch(rs)
	writeJSON(w, http.StatusCreated, createdDoc{ID: rs.id})
}
