// Package clean carries shapes that LOOK violating to the syntactic
// rules but are provably fine under flow analysis — the false-positive
// pressure the sink-aware upgrade exists to remove.
package clean

import (
	"slices"

	"flowmod/internal/sim"
)

// registry has a method named Schedule that provably reaches no sink.
type registry struct{ n int }

// Schedule merely counts; the name alone must not trigger maporder.
func (r *registry) Schedule(d float64, f func()) { r.n++ }

// Tally iterates a map calling the sink-free Schedule: clean.
func Tally(m map[int]int, r *registry) {
	for range m {
		r.Schedule(0, nil)
	}
}

// SortedFlush collects, sorts, then schedules: the canonical fix.
func SortedFlush(k *sim.Kernel, m map[int]float64) {
	var ids []int
	for id := range m {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	for _, id := range ids {
		k.At(sim.Time(id), func() {})
	}
}

// sortedKeys returns keys in sorted order: callers may range freely.
func sortedKeys(m map[int]float64) []int {
	var ks []int
	for k := range m {
		ks = append(ks, k)
	}
	slices.Sort(ks)
	return ks
}

// FlushSorted ranges over a sorted helper result: clean.
func FlushSorted(k *sim.Kernel, m map[int]float64) {
	for _, id := range sortedKeys(m) {
		k.At(sim.Time(id), func() {})
	}
}
