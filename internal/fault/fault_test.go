package fault_test

import (
	"encoding/json"
	"math"
	"testing"

	"routeless/internal/fault"
	"routeless/internal/geo"
	"routeless/internal/node"
	"routeless/internal/packet"
	"routeless/internal/phy"
	"routeless/internal/rng"
	"routeless/internal/routing"
	"routeless/internal/sim"
	"routeless/internal/traffic"
)

// scenario builds a small Routeless field with bidirectional CBR
// between two fixed endpoints, lets prep wire in faults (or not), runs,
// and returns the network for inspection.
func scenario(t *testing.T, seed int64, dur sim.Time, prep func(nw *node.Network)) *node.Network {
	return scenarioAt(t, seed, dur, 0.25, prep)
}

func scenarioAt(t *testing.T, seed int64, dur, interval sim.Time, prep func(nw *node.Network)) *node.Network {
	t.Helper()
	nw := node.New(node.Config{
		N:               30,
		Rect:            geo.NewRect(600, 600),
		Seed:            seed,
		EnsureConnected: true,
	})
	nw.Install(func(n *node.Node) node.Protocol {
		return routing.NewRouteless(routing.RoutelessConfig{})
	})
	a := traffic.NewCBR(nw.Nodes[0], packet.NodeID(len(nw.Nodes)-1), interval, 64)
	b := traffic.NewCBR(nw.Nodes[len(nw.Nodes)-1], 0, interval, 64)
	a.Start()
	b.Start()
	if prep != nil {
		prep(nw)
	}
	nw.Run(dur)
	a.Stop()
	b.Stop()
	nw.Run(dur + 2)
	return nw
}

// endpoints are the CBR source and sink scenario wires up; fault specs
// exclude them so traffic keeps flowing.
func endpoints(nw *node.Network) []packet.NodeID {
	return []packet.NodeID{0, packet.NodeID(len(nw.Nodes) - 1)}
}

func snapshotJSON(t *testing.T, nw *node.Network) []byte {
	t.Helper()
	b, err := json.Marshal(nw.Metrics.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// An empty plan must be inert: installing it changes neither the event
// stream nor the metric snapshot — byte for byte. This is the guarantee
// that lets the fault plane be wired into every experiment without
// disturbing golden figures.
func TestEmptyPlanInert(t *testing.T) {
	base := scenario(t, 7, 10, nil)
	wired := scenario(t, 7, 10, func(nw *node.Network) {
		fault.Install(nw, nil)
		fault.Install(nw, fault.Plan{})
	})
	if g, w := base.Kernel.Processed(), wired.Kernel.Processed(); g != w {
		t.Fatalf("empty plan changed event count: %d vs %d", g, w)
	}
	if g, w := snapshotJSON(t, base), snapshotJSON(t, wired); string(g) != string(w) {
		t.Fatalf("empty plan changed snapshot:\nbase:  %s\nwired: %s", g, w)
	}
}

// Routing the legacy hand-wired FailureProcess loop through a one-crash
// plan must be bitwise identical in simulation behavior: the plan reuses
// the same per-node StreamFailure streams and installs in id order.
func TestCrashPlanMatchesLegacyHandWired(t *testing.T) {
	const p = 0.3
	legacy := scenario(t, 11, 10, func(nw *node.Network) {
		skip := map[packet.NodeID]bool{}
		for _, id := range endpoints(nw) {
			skip[id] = true
		}
		for _, n := range nw.Nodes {
			if skip[n.ID] {
				continue
			}
			fp := node.NewFailureProcess(n, rng.ForNode(nw.Seed, rng.StreamFailure, int(n.ID)))
			fp.OffFraction = p
			fp.Start()
		}
	})
	planned := scenario(t, 11, 10, func(nw *node.Network) {
		crash := fault.Crash(p)
		crash.Exclude = endpoints(nw)
		fault.Install(nw, fault.Plan{crash})
	})
	if g, w := legacy.Kernel.Processed(), planned.Kernel.Processed(); g != w {
		t.Fatalf("crash plan diverged from legacy loop: %d vs %d events", g, w)
	}
	now := legacy.Kernel.Now()
	for i := range legacy.Nodes {
		g := legacy.Nodes[i].Radio.Energy().Total(now)
		w := planned.Nodes[i].Radio.Energy().Total(planned.Kernel.Now())
		if math.Float64bits(g) != math.Float64bits(w) {
			t.Fatalf("node %d energy diverged: %v vs %v", i, g, w)
		}
	}
}

// Crash with Sleep routes downtime through the low-power sleep state —
// §4.2 voluntary duty cycling — and the recovery counters still roll up.
func TestCrashSleepDutyCycle(t *testing.T) {
	nw := scenario(t, 13, 12, func(nw *node.Network) {
		crash := fault.Crash(0.4)
		crash.Cycle = 2
		crash.Sleep = true
		crash.Exclude = endpoints(nw)
		fault.Install(nw, fault.Plan{crash})
	})
	snap := nw.Metrics.Snapshot()
	if snap.Count("fault.crashes") == 0 || snap.Count("fault.recoveries") == 0 {
		t.Fatalf("duty cycle never cycled: crashes=%d recoveries=%d",
			snap.Count("fault.crashes"), snap.Count("fault.recoveries"))
	}
	now := nw.Kernel.Now()
	var slept float64
	for _, n := range nw.Nodes {
		slept += n.Radio.Energy().InState(now, phy.StateSleep)
	}
	if slept <= 0 {
		t.Fatal("Sleep duty cycling accrued no sleep-state energy")
	}
	if err := nw.CheckInvariants(); err != nil {
		t.Fatalf("invariants violated under sleep churn: %v", err)
	}
}

// Aggressive churn powers radios down mid-transmission; the phy layer's
// abort accounting (PR 3's txLive fix) must keep the conservation laws
// exact. This is the regression test for that interaction.
func TestMidTXPowerDownUnderChurn(t *testing.T) {
	nw := scenarioAt(t, 17, 15, 0.01 /* saturating traffic */, func(nw *node.Network) {
		crash := fault.Crash(0.5)
		crash.Cycle = 0.5 // flip fast enough to land inside frames
		crash.Exclude = endpoints(nw)
		fault.Install(nw, fault.Plan{crash})
	})
	if err := nw.CheckInvariants(); err != nil {
		t.Fatalf("invariants violated under fast churn: %v", err)
	}
	snap := nw.Metrics.Snapshot()
	if snap.Count("phy.tx_aborted") == 0 {
		t.Fatal("fast churn never aborted a transmission mid-flight")
	}
	if snap.Count("fault.crashes") == 0 {
		t.Fatal("fast churn never crashed a node")
	}
}

// Drain kills nodes permanently once their energy budget is spent —
// even when a crash duty cycle tries to revive them.
func TestDrainKillsPermanently(t *testing.T) {
	victims := []packet.NodeID{3, 4, 5}
	nw := scenario(t, 19, 20, func(nw *node.Network) {
		drain := fault.Drain(0.2) // idle draw alone crosses this in ~6 s
		drain.Nodes = victims
		crash := fault.Crash(0.3)
		crash.Nodes = victims
		fault.Install(nw, fault.Plan{drain, crash})
	})
	snap := nw.Metrics.Snapshot()
	if got := snap.Count("fault.drained"); got != uint64(len(victims)) {
		t.Fatalf("drained %d nodes, want %d", got, len(victims))
	}
	for _, id := range victims {
		if nw.Nodes[id].Up() {
			t.Fatalf("node %d still up after battery depletion", id)
		}
	}
	if err := nw.CheckInvariants(); err != nil {
		t.Fatalf("invariants violated under drain: %v", err)
	}
}

// Degrade shadows one link at a time and restores it; the channel
// offset plumbing must attenuate the mean received power by exactly the
// configured offset while installed.
func TestDegradeShadowsLinks(t *testing.T) {
	nw := scenario(t, 23, 10, func(nw *node.Network) {
		deg := fault.Degrade(-25)
		deg.Period = 0.25
		deg.Duration = 0.5
		fault.Install(nw, fault.Plan{deg})
	})
	snap := nw.Metrics.Snapshot()
	if snap.Count("fault.degrades") == 0 {
		t.Fatal("degrade spec never shadowed a link")
	}
	// Degrades fired within Duration of the end legitimately have their
	// restore still pending; everything earlier must have restored.
	deg, res := snap.Count("fault.degrades"), snap.Count("fault.restores")
	if res == 0 || res > deg || deg-res > 2 {
		t.Fatalf("restore accounting off: degrades=%d restores=%d", deg, res)
	}
	if err := nw.CheckInvariants(); err != nil {
		t.Fatalf("invariants violated under degradation: %v", err)
	}

	// Offset plumbing, directly: installing an offset moves the mean
	// power by that many dB and invalidates the link cache.
	ch := nw.Channel
	before := ch.MeanPowerAt(0, 1)
	ch.SetLinkOffset(0, 1, -25)
	if diff := ch.MeanPowerAt(0, 1) - before; math.Abs(diff+25) > 1e-9 {
		t.Fatalf("offset moved mean power by %v dB, want -25", diff)
	}
	if got := ch.LinkOffset(0, 1); math.Abs(got+25) > 1e-12 {
		t.Fatalf("LinkOffset = %v, want -25", got)
	}
	ch.SetLinkOffset(0, 1, 0)
	after := ch.MeanPowerAt(0, 1)
	if math.Float64bits(after) != math.Float64bits(before) {
		t.Fatalf("clearing the offset did not restore the exact power: %v vs %v", after, before)
	}
}

// Jam raises the noise floor with interference-only bursts: the bursts
// must land on receivers, perturb the simulation, and leave the phy
// conservation laws intact (jam signals never decode).
func TestJamInterferes(t *testing.T) {
	clean := scenario(t, 29, 10, nil)
	jammed := scenario(t, 29, 10, func(nw *node.Network) {
		fault.Install(nw, fault.Plan{fault.Jam(24.5)})
	})
	snap := jammed.Metrics.Snapshot()
	if snap.Count("fault.jam_bursts") == 0 || snap.Count("fault.jam_hits") == 0 {
		t.Fatalf("jammer idle: bursts=%d hits=%d",
			snap.Count("fault.jam_bursts"), snap.Count("fault.jam_hits"))
	}
	if clean.Kernel.Processed() == jammed.Kernel.Processed() {
		t.Fatal("jammer did not perturb the event stream")
	}
	if err := jammed.CheckInvariants(); err != nil {
		t.Fatalf("invariants violated under jamming: %v", err)
	}
}

// The composite plan — everything at once — holds the downtime
// conservation bound the injector registers with the network.
func TestCompositePlanInvariants(t *testing.T) {
	nw := scenario(t, 31, 12, func(nw *node.Network) {
		crash := fault.Crash(0.2)
		crash.Exclude = endpoints(nw)
		deg := fault.Degrade(-25)
		deg.Period = 0.5
		fault.Install(nw, fault.Plan{crash, deg, fault.Jam(24.5)})
	})
	if err := nw.CheckInvariants(); err != nil {
		t.Fatalf("composite plan violated invariants: %v", err)
	}
	snap := nw.Metrics.Snapshot()
	for _, series := range []string{"fault.crashes", "fault.degrades", "fault.jam_bursts"} {
		if snap.Count(series) == 0 {
			t.Fatalf("composite plan: %s never fired", series)
		}
	}
}
