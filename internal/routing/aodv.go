package routing

import (
	"slices"

	"routeless/internal/metrics"
	"routeless/internal/node"
	"routeless/internal/packet"
	"routeless/internal/sim"
)

// AODVConfig parameterizes the baseline. Zero fields take the noted
// defaults.
type AODVConfig struct {
	// HelloInterval is the beacon period; default 1 s.
	HelloInterval sim.Time
	// HelloLoss is how many missed intervals declare a neighbor dead;
	// default 2.
	HelloLoss int
	// RREQBackoff is the flood rebroadcast backoff; default 10 ms.
	RREQBackoff sim.Time
	// DiscoveryTimeout is the RREP wait before re-flooding; default 2 s.
	DiscoveryTimeout sim.Time
	// MaxDiscoveryRetries bounds re-floods; default 3.
	MaxDiscoveryRetries int
	// RouteLifetime expires unused routes; default 30 s.
	RouteLifetime sim.Time
	// TTL bounds flood travel; default 32.
	TTL int
	// DataSize is the payload bytes of data packets; default 512.
	DataSize int
	// NoHello disables beaconing: link failures are then detected only
	// through link-layer ARQ feedback. The paper's packet counts
	// (Figures 3–4) scale with traffic rather than time, implying its
	// AODV ran without periodic hellos; experiments use this mode.
	NoHello bool
	// ExpandingRing enables AODV's expanding-ring search: route
	// requests start with a small TTL and widen on each retry
	// (1, 3, 7, then full TTL), trading discovery latency for far
	// fewer flood transmissions when destinations are close. Off by
	// default to match the paper's "original flooding" description.
	ExpandingRing bool
}

func (c AODVConfig) withDefaults() AODVConfig {
	if c.HelloInterval == 0 {
		c.HelloInterval = 1
	}
	if c.HelloLoss == 0 {
		c.HelloLoss = 2
	}
	if c.RREQBackoff == 0 {
		c.RREQBackoff = 10e-3
	}
	if c.DiscoveryTimeout == 0 {
		c.DiscoveryTimeout = 2
	}
	if c.MaxDiscoveryRetries == 0 {
		c.MaxDiscoveryRetries = 3
	}
	if c.RouteLifetime == 0 {
		c.RouteLifetime = 30
	}
	if c.TTL == 0 {
		c.TTL = 32
	}
	if c.DataSize == 0 {
		c.DataSize = packet.SizeData
	}
	return c
}

// AODVStats is the plain-uint64 snapshot view of one node's protocol
// counters.
type AODVStats struct {
	DataSent        uint64
	DataForwarded   uint64
	DataDelivered   uint64
	DataDropped     uint64 // no route at an intermediate hop
	RREQSent        uint64
	RREQForwarded   uint64
	RREPSent        uint64
	RREPForwarded   uint64
	RERRSent        uint64
	Hellos          uint64
	LinkBreaks      uint64 // ARQ failures + hello losses
	RoutesInvalided uint64
	Rediscoveries   uint64
	DroppedNoRoute  uint64 // source-side, discovery gave up
	Repairs         uint64 // parked packets that found a route again
}

// aodvCounters is the live counter storage behind AODVStats.
type aodvCounters struct {
	dataSent        metrics.Counter
	dataForwarded   metrics.Counter
	dataDelivered   metrics.Counter
	dataDropped     metrics.Counter
	rreqSent        metrics.Counter
	rreqForwarded   metrics.Counter
	rrepSent        metrics.Counter
	rrepForwarded   metrics.Counter
	rerrSent        metrics.Counter
	hellos          metrics.Counter
	linkBreaks      metrics.Counter
	routesInvalided metrics.Counter
	rediscoveries   metrics.Counter
	droppedNoRoute  metrics.Counter
	repairs         metrics.Counter

	// repairLatency spans a data packet's parking behind a re-discovery
	// (link break or route expiry with no alternative) to the moment a
	// valid route let it move again — AODV's route-repair recovery
	// metric. Instant salvages over an existing alternate route never
	// open a window and are not counted.
	repairLatency metrics.Histogram
}

// route is one forward-table row.
type route struct {
	nextHop packet.NodeID
	hops    int
	seq     uint32 // destination sequence number (freshness)
	expiry  sim.Time
}

// rreqInfo is the payload of route requests: the originator's sequence
// number snapshot (for reverse-route freshness).
type rreqInfo struct {
	originSeq uint32
}

// rrepInfo is the payload of route replies.
type rrepInfo struct {
	destSeq uint32
}

// rerrInfo lists destinations that became unreachable.
type rerrInfo struct {
	unreachable []packet.NodeID
}

// AODV is the reactive-routing baseline of §4.3: explicit routes
// discovered by flooding RREQs, maintained with hello beacons and
// link-layer feedback, and repaired through RERR + re-discovery. Its
// per-packet forwarding is unicast with MAC acknowledgements.
type AODV struct {
	cfg AODVConfig
	n   *node.Node

	// salvage holds in-flight data packets parked behind a route
	// re-discovery, keyed by their final target.
	salvage map[packet.NodeID][]*packet.Packet
	// repairStart records when the first packet for a target was parked;
	// cleared when the repair resolves (or the discovery gives up).
	repairStart map[packet.NodeID]sim.Time

	seqNo  uint32 // own destination sequence number
	rreqID uint32

	routes    map[packet.NodeID]*route
	rreqSeen  *packet.DedupCache
	consumed  *packet.DedupCache         // end-to-end dedup of salvaged copies
	neighbors map[packet.NodeID]sim.Time // last heard

	discovering discoverySet

	hello   *sim.Ticker
	monitor *sim.Ticker

	stats aodvCounters
}

// NewAODV builds an instance; install with Network.Install.
func NewAODV(cfg AODVConfig) *AODV {
	cfg = cfg.withDefaults()
	return &AODV{
		cfg:         cfg,
		salvage:     make(map[packet.NodeID][]*packet.Packet),
		repairStart: make(map[packet.NodeID]sim.Time),
		routes:      make(map[packet.NodeID]*route),
		rreqSeen:    packet.NewDedupCache(8192),
		consumed:    packet.NewDedupCache(8192),
		neighbors:   make(map[packet.NodeID]sim.Time),
		discovering: make(discoverySet),
	}
}

// Start implements node.Protocol.
func (a *AODV) Start(n *node.Node) {
	a.n = n
	if a.cfg.NoHello {
		return
	}
	a.hello = sim.NewTicker(n.Kernel, a.cfg.HelloInterval, a.sendHello)
	// De-phase beacons across nodes.
	a.hello.StartAfter(sim.Time(n.Rng.Float64()) * a.cfg.HelloInterval)
	a.monitor = sim.NewTicker(n.Kernel, a.cfg.HelloInterval, a.checkNeighbors)
	a.monitor.StartAfter(sim.Time(1+n.Rng.Float64()) * a.cfg.HelloInterval)
}

// Stats returns the node's counters.
func (a *AODV) Stats() AODVStats {
	s := &a.stats
	return AODVStats{
		DataSent:        s.dataSent.Value(),
		DataForwarded:   s.dataForwarded.Value(),
		DataDelivered:   s.dataDelivered.Value(),
		DataDropped:     s.dataDropped.Value(),
		RREQSent:        s.rreqSent.Value(),
		RREQForwarded:   s.rreqForwarded.Value(),
		RREPSent:        s.rrepSent.Value(),
		RREPForwarded:   s.rrepForwarded.Value(),
		RERRSent:        s.rerrSent.Value(),
		Hellos:          s.hellos.Value(),
		LinkBreaks:      s.linkBreaks.Value(),
		RoutesInvalided: s.routesInvalided.Value(),
		Rediscoveries:   s.rediscoveries.Value(),
		DroppedNoRoute:  s.droppedNoRoute.Value(),
		Repairs:         s.repairs.Value(),
	}
}

// RegisterMetrics registers the protocol counters; per-node sources sum
// into network-wide aodv.* series.
func (a *AODV) RegisterMetrics(reg *metrics.Registry) {
	reg.Observe("aodv.data_sent", &a.stats.dataSent)
	reg.Observe("aodv.data_forwarded", &a.stats.dataForwarded)
	reg.Observe("aodv.data_delivered", &a.stats.dataDelivered)
	reg.Observe("aodv.data_dropped", &a.stats.dataDropped)
	reg.Observe("aodv.rreq_sent", &a.stats.rreqSent)
	reg.Observe("aodv.rreq_forwarded", &a.stats.rreqForwarded)
	reg.Observe("aodv.rrep_sent", &a.stats.rrepSent)
	reg.Observe("aodv.rrep_forwarded", &a.stats.rrepForwarded)
	reg.Observe("aodv.rerr_sent", &a.stats.rerrSent)
	reg.Observe("aodv.hellos", &a.stats.hellos)
	reg.Observe("aodv.link_breaks", &a.stats.linkBreaks)
	reg.Observe("aodv.routes_invalided", &a.stats.routesInvalided)
	reg.Observe("aodv.rediscoveries", &a.stats.rediscoveries)
	reg.Observe("aodv.dropped_no_route", &a.stats.droppedNoRoute)
	reg.Observe("aodv.repairs", &a.stats.repairs)
	reg.ObserveHistogram("aodv.repair_latency_s", &a.stats.repairLatency)
}

// endRepair closes an open repair window for target: parked data can
// move again. No-op when no window is open.
func (a *AODV) endRepair(target packet.NodeID) {
	t0, ok := a.repairStart[target]
	if !ok {
		return
	}
	delete(a.repairStart, target)
	a.stats.repairs.Inc()
	a.stats.repairLatency.Observe(float64(a.n.Kernel.Now() - t0))
}

// RouteTo reports the current route to target (hops, ok) — test and
// instrumentation access.
func (a *AODV) RouteTo(target packet.NodeID) (int, bool) {
	r := a.validRoute(target)
	if r == nil {
		return 0, false
	}
	return r.hops, true
}

func (a *AODV) validRoute(target packet.NodeID) *route {
	r, ok := a.routes[target]
	if !ok || a.n.Kernel.Now() > r.expiry {
		return nil
	}
	return r
}

func (a *AODV) nextSeq() uint32 {
	a.seqNo++
	return a.seqNo
}

// Send implements node.Protocol.
func (a *AODV) Send(target packet.NodeID, size int) {
	if size == 0 {
		size = a.cfg.DataSize
	}
	now := a.n.Kernel.Now()
	a.stats.dataSent.Inc()
	if target == a.n.ID {
		a.stats.dataDelivered.Inc()
		a.n.Deliver(&packet.Packet{Kind: packet.KindData, Origin: a.n.ID, Target: target, Size: size, CreatedAt: now})
		return
	}
	a.routeOrDiscover(target, size, now)
}

// routeOrDiscover transmits data along a known route or parks it behind
// a (possibly new) route discovery. created is preserved so end-to-end
// delay includes discovery and recovery latency.
func (a *AODV) routeOrDiscover(target packet.NodeID, size int, created sim.Time) {
	if r := a.validRoute(target); r != nil {
		a.sendDataVia(r, target, size, created)
		return
	}
	d, started := a.discovering.ensure(target, a.n.Kernel, func() { a.discoveryTimeout(target) })
	if started {
		a.floodRREQRing(target, a.ringTTL(0))
		d.timer.Reset(a.cfg.DiscoveryTimeout)
	}
	d.queue = append(d.queue, pendingData{size: size, created: created})
}

func (a *AODV) sendDataVia(r *route, target packet.NodeID, size int, created sim.Time) {
	r.expiry = a.n.Kernel.Now() + a.cfg.RouteLifetime
	a.n.MAC.Enqueue(&packet.Packet{
		Kind: packet.KindData, To: r.nextHop,
		Origin: a.n.ID, Target: target, Seq: a.nextSeq(),
		HopCount: 1, TTL: a.cfg.TTL, Size: size, CreatedAt: created,
	}, 0)
}

func (a *AODV) floodRREQ(target packet.NodeID) {
	a.floodRREQRing(target, a.cfg.TTL)
}

// ringTTL returns the RREQ TTL for the attempt-th discovery try under
// expanding-ring search: 1, 3, 7, then the full TTL.
func (a *AODV) ringTTL(attempt int) int {
	if !a.cfg.ExpandingRing {
		return a.cfg.TTL
	}
	rings := []int{1, 3, 7}
	if attempt < len(rings) && rings[attempt] < a.cfg.TTL {
		return rings[attempt]
	}
	return a.cfg.TTL
}

func (a *AODV) floodRREQRing(target packet.NodeID, ttl int) {
	a.rreqID++
	a.stats.rreqSent.Inc()
	pkt := &packet.Packet{
		Kind: packet.KindRREQ, To: packet.Broadcast,
		Origin: a.n.ID, Target: target, Seq: a.rreqID,
		HopCount: 1, TTL: ttl, Size: packet.SizeControl,
		CreatedAt: a.n.Kernel.Now(),
		Payload:   rreqInfo{originSeq: a.nextSeq()},
	}
	a.rreqSeen.Seen(pkt.Key())
	a.n.MAC.Enqueue(pkt, 0)
}

func (a *AODV) discoveryTimeout(target packet.NodeID) {
	// A usable route may exist even though no RREP was addressed to us:
	// an overheard RREQ from the target or a forwarded RREP installs one
	// without triggering the success path. Flush through it instead of
	// re-flooding or dropping queued data next to a valid route.
	if r := a.validRoute(target); r != nil {
		for _, pd := range a.discovering.succeed(target) {
			a.sendDataVia(r, target, pd.size, pd.created)
		}
		a.flushSalvage(target)
		return
	}
	d, retry := a.discovering.step(target, a.cfg.MaxDiscoveryRetries)
	if d == nil {
		return
	}
	if !retry {
		a.stats.droppedNoRoute.Add(uint64(len(d.queue) + len(a.salvage[target])))
		delete(a.salvage, target)
		// The repair failed; the window closes without a latency sample
		// (give-ups are visible through aodv.dropped_no_route).
		delete(a.repairStart, target)
		return
	}
	a.stats.rediscoveries.Inc()
	a.floodRREQRing(target, a.ringTTL(d.retries))
	d.timer.Reset(a.cfg.DiscoveryTimeout)
}

func (a *AODV) sendHello() {
	a.stats.hellos.Inc()
	a.n.MAC.Enqueue(&packet.Packet{
		Kind: packet.KindHello, To: packet.Broadcast,
		Origin: a.n.ID, Seq: a.nextSeq(), Size: packet.SizeHello,
	}, 0)
}

// checkNeighbors expires silent neighbors and tears down routes through
// them.
func (a *AODV) checkNeighbors() {
	now := a.n.Kernel.Now()
	deadline := sim.Time(float64(a.cfg.HelloLoss)) * a.cfg.HelloInterval
	var dead []packet.NodeID
	for id, last := range a.neighbors {
		if now-last > deadline {
			dead = append(dead, id)
		}
	}
	slices.Sort(dead)
	for _, id := range dead {
		delete(a.neighbors, id)
		a.stats.linkBreaks.Inc()
		a.invalidateVia(id)
	}
}

// invalidateVia drops every route whose next hop is gone and advertises
// the loss.
func (a *AODV) invalidateVia(hop packet.NodeID) {
	var lost []packet.NodeID
	for dest, r := range a.routes {
		if r.nextHop == hop {
			delete(a.routes, dest)
			a.stats.routesInvalided.Inc()
			lost = append(lost, dest)
		}
	}
	if hop != a.n.ID {
		// The neighbor itself is unreachable as a destination too.
		if _, ok := a.routes[hop]; ok {
			delete(a.routes, hop)
			a.stats.routesInvalided.Inc()
		}
		lost = append(lost, hop)
	}
	if len(lost) == 0 {
		return
	}
	slices.Sort(lost)
	a.stats.rerrSent.Inc()
	a.n.MAC.Enqueue(&packet.Packet{
		Kind: packet.KindRERR, To: packet.Broadcast,
		Origin: a.n.ID, Seq: a.nextSeq(), Size: packet.SizeControl,
		Payload: rerrInfo{unreachable: lost},
	}, 0)
}

// OnDeliver implements node.Protocol.
func (a *AODV) OnDeliver(pkt *packet.Packet, rssiDBm float64) {
	// Any frame doubles as a hello from its transmitter.
	a.neighbors[pkt.From] = a.n.Kernel.Now()
	switch pkt.Kind {
	case packet.KindHello:
		// Liveness only, handled above.
	case packet.KindRREQ:
		a.handleRREQ(pkt)
	case packet.KindRREP:
		if pkt.To == a.n.ID {
			a.handleRREP(pkt)
		}
	case packet.KindRERR:
		a.handleRERR(pkt)
	case packet.KindData:
		if pkt.To == a.n.ID {
			a.handleData(pkt)
		}
	}
}

// installRoute adopts a route if it is fresher or shorter than what we
// have.
func (a *AODV) installRoute(dest, nextHop packet.NodeID, hops int, seq uint32) {
	now := a.n.Kernel.Now()
	r, ok := a.routes[dest]
	if ok && now <= r.expiry {
		if seq < r.seq || (seq == r.seq && hops >= r.hops) {
			return
		}
	}
	a.routes[dest] = &route{nextHop: nextHop, hops: hops, seq: seq, expiry: now + a.cfg.RouteLifetime}
}

func (a *AODV) handleRREQ(pkt *packet.Packet) {
	info, _ := pkt.Payload.(rreqInfo)
	// Reverse route to the originator through whoever relayed this copy.
	a.installRoute(pkt.Origin, pkt.From, pkt.HopCount, info.originSeq)
	if a.rreqSeen.Seen(pkt.Key()) {
		return
	}
	if pkt.Target == a.n.ID {
		// Destination answers with a unicast RREP along the reverse path.
		rev := a.validRoute(pkt.Origin)
		if rev == nil {
			return
		}
		a.stats.rrepSent.Inc()
		a.n.MAC.Enqueue(&packet.Packet{
			Kind: packet.KindRREP, To: rev.nextHop,
			Origin: a.n.ID, Target: pkt.Origin, Seq: pkt.Seq,
			HopCount: 1, TTL: a.cfg.TTL, Size: packet.SizeControl,
			Payload: rrepInfo{destSeq: a.nextSeq()},
		}, 0)
		return
	}
	if pkt.TTL <= 1 {
		return
	}
	// "In this particular implementation of AODV, the route discovery
	// procedure is based on original flooding" (§4.3): plain dedup
	// flooding with a random backoff, no prioritization.
	fwd := pkt.Clone()
	fwd.To = packet.Broadcast
	fwd.HopCount++
	fwd.TTL--
	backoff := sim.Time(a.n.Rng.Float64()) * a.cfg.RREQBackoff
	a.n.Kernel.Schedule(backoff, func() {
		a.stats.rreqForwarded.Inc()
		a.n.MAC.Enqueue(fwd, 0)
	})
}

func (a *AODV) handleRREP(pkt *packet.Packet) {
	info, _ := pkt.Payload.(rrepInfo)
	// Forward route to the replying destination.
	a.installRoute(pkt.Origin, pkt.From, pkt.HopCount, info.destSeq)
	if pkt.Target == a.n.ID {
		// Discovery complete: release queued and salvaged data.
		for _, pd := range a.discovering.succeed(pkt.Origin) {
			if r := a.validRoute(pkt.Origin); r != nil {
				a.sendDataVia(r, pkt.Origin, pd.size, pd.created)
			} else {
				a.stats.droppedNoRoute.Inc()
			}
		}
		a.flushSalvage(pkt.Origin)
		return
	}
	rev := a.validRoute(pkt.Target)
	if rev == nil {
		return // reverse route expired; originator will retry
	}
	fwd := pkt.Clone()
	fwd.To = rev.nextHop
	fwd.HopCount++
	if fwd.TTL--; fwd.TTL <= 0 {
		return
	}
	a.stats.rrepForwarded.Inc()
	a.n.MAC.Enqueue(fwd, 0)
}

func (a *AODV) handleRERR(pkt *packet.Packet) {
	info, ok := pkt.Payload.(rerrInfo)
	if !ok {
		return
	}
	var propagate []packet.NodeID
	for _, dest := range info.unreachable {
		if r, ok := a.routes[dest]; ok && r.nextHop == pkt.From {
			delete(a.routes, dest)
			a.stats.routesInvalided.Inc()
			propagate = append(propagate, dest)
		}
	}
	if len(propagate) > 0 {
		a.stats.rerrSent.Inc()
		a.n.MAC.Enqueue(&packet.Packet{
			Kind: packet.KindRERR, To: packet.Broadcast,
			Origin: a.n.ID, Seq: a.nextSeq(), Size: packet.SizeControl,
			Payload: rerrInfo{unreachable: propagate},
		}, 0)
	}
}

func (a *AODV) handleData(pkt *packet.Packet) {
	if pkt.Target == a.n.ID {
		// Salvaged copies of one logical packet can arrive over two
		// paths; deliver only the first.
		if !a.consumed.Seen(pkt.Key()) {
			a.stats.dataDelivered.Inc()
			a.n.Deliver(pkt)
		}
		return
	}
	r := a.validRoute(pkt.Target)
	if r == nil {
		// No usable route: salvage the packet behind a fresh discovery
		// rather than dropping it (and tell upstream via RERR).
		a.invalidateVia(pkt.Target)
		a.salvageData(pkt)
		return
	}
	fwd := pkt.Clone()
	fwd.To = r.nextHop
	fwd.HopCount++
	if fwd.TTL--; fwd.TTL <= 0 {
		a.stats.dataDropped.Inc()
		return
	}
	r.expiry = a.n.Kernel.Now() + a.cfg.RouteLifetime
	a.stats.dataForwarded.Inc()
	a.n.MAC.Enqueue(fwd, 0)
}

// flushSalvage forwards packets parked for target once a route exists.
func (a *AODV) flushSalvage(target packet.NodeID) {
	list := a.salvage[target]
	if len(list) == 0 {
		return
	}
	delete(a.salvage, target)
	for _, pkt := range list {
		a.salvageData(pkt)
	}
}

// OnSent implements node.Protocol.
func (a *AODV) OnSent(pkt *packet.Packet) {}

// OnUnicastFailed implements node.Protocol: the MAC exhausted its
// retries toward pkt.To — treat the link as broken immediately (faster
// than waiting for hello loss).
func (a *AODV) OnUnicastFailed(pkt *packet.Packet) {
	a.stats.linkBreaks.Inc()
	delete(a.neighbors, pkt.To)
	a.invalidateVia(pkt.To)
	// Salvage data packets — originated here or being forwarded — by
	// re-routing them through a fresh route (or discovery), keeping
	// their original headers so end-to-end delay stays honest.
	if pkt.Kind == packet.KindData && pkt.Target != a.n.ID {
		a.stats.rediscoveries.Inc()
		a.salvageData(pkt)
	}
}

// salvageData re-sends a data packet over the current route or parks it
// behind a discovery for its target.
func (a *AODV) salvageData(pkt *packet.Packet) {
	if r := a.validRoute(pkt.Target); r != nil {
		a.endRepair(pkt.Target)
		fwd := pkt.Clone()
		fwd.To = r.nextHop
		fwd.UID = 0 // a new frame, not an ARQ duplicate
		a.stats.dataForwarded.Inc()
		a.n.MAC.Enqueue(fwd, 0)
		return
	}
	list := a.salvage[pkt.Target]
	if len(list) >= 16 {
		a.stats.dataDropped.Inc() // bounded salvage buffer
		return
	}
	if _, open := a.repairStart[pkt.Target]; !open {
		a.repairStart[pkt.Target] = a.n.Kernel.Now()
	}
	a.salvage[pkt.Target] = append(list, pkt.Clone())
	d, started := a.discovering.ensure(pkt.Target, a.n.Kernel, func() { a.discoveryTimeout(pkt.Target) })
	if started {
		a.floodRREQRing(pkt.Target, a.ringTTL(0))
		d.timer.Reset(a.cfg.DiscoveryTimeout)
	}
}
