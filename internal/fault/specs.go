package fault

import (
	"fmt"
	"math"

	"routeless/internal/geo"
	"routeless/internal/node"
	"routeless/internal/packet"
	"routeless/internal/rng"
	"routeless/internal/sim"
)

// finiteNonNeg rejects NaN, ±Inf, and negative values for fields where
// zero means "use the default". Every time-like spec field (periods,
// durations, stop times) validates through here: a negative or NaN
// period would otherwise reach sim.NewTicker unchecked and either
// panic mid-install or corrupt the event heap ordering.
func finiteNonNeg(name string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return fmt.Errorf("%s must be a finite non-negative number, got %v", name, v)
	}
	return nil
}

// finite rejects NaN and ±Inf for fields where any finite sign is
// meaningful (dB offsets, dBm powers).
func finite(name string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("%s must be finite, got %v", name, v)
	}
	return nil
}

// CrashSpec drives the paper's §4.3 duty-cycle transceiver failures on
// a set of nodes, generalizing node.FailureProcess: each selected node
// alternates exponentially distributed up and down periods whose means
// give the long-run off fraction.
//
// Streams: each node's process draws from
// rng.ForNode(seed, rng.StreamFailure, id) — exactly the stream the
// legacy hand-wired path used, so routing an existing experiment
// through a one-crash plan stays bitwise identical.
type CrashSpec struct {
	// OffFraction p ∈ [0, 1) is the long-run fraction of time down.
	OffFraction float64
	// Cycle is the mean up+down period in seconds; default 10.
	Cycle float64
	// Sleep uses the low-power sleep state instead of a hard
	// transceiver-off — the §4.2 voluntary duty-cycling variant.
	Sleep bool
	// Nodes, when non-nil, limits the fault to these ids.
	Nodes []packet.NodeID
	// Exclude removes ids from the selection (e.g. traffic endpoints,
	// matching §4.3's "all nodes but those that generate and receive
	// CBR traffic").
	Exclude []packet.NodeID
}

// Crash returns a crash/recovery duty-cycle fault with the given
// long-run off fraction on every node.
func Crash(offFraction float64) CrashSpec { return CrashSpec{OffFraction: offFraction} }

// validate rejects off fractions outside [0, 1) — FailureProcess.Start
// panics on p ≥ 1, and the validated path turns that process death into
// a value — and non-finite or negative cycles.
func (s CrashSpec) validate() error {
	if math.IsNaN(s.OffFraction) || s.OffFraction < 0 || s.OffFraction >= 1 {
		return fmt.Errorf("OffFraction must be in [0, 1), got %v", s.OffFraction)
	}
	return finiteNonNeg("Cycle", s.Cycle)
}

func (s CrashSpec) install(inj *Injector, idx int) {
	for _, n := range selectNodes(inj.nw, s.Nodes, s.Exclude) {
		fr := rng.ForNode(inj.nw.Seed, rng.StreamFailure, int(n.ID))
		if t := inj.nw.RNG; t != nil {
			fr = t.ForNode(inj.nw.Seed, rng.StreamFailure, int(n.ID))
		}
		fp := node.NewFailureProcess(n, fr)
		fp.OffFraction = s.OffFraction
		if s.Cycle != 0 {
			fp.Cycle = s.Cycle
		}
		fp.Sleep = s.Sleep
		fp.RegisterMetrics(inj.nw.Metrics)
		inj.crashes = append(inj.crashes, fp)
		fp.Start()
	}
}

// DrainSpec models battery depletion: each selected node carries a
// finite energy budget in joules, and a poller driven by the phy energy
// meter permanently fails the node once cumulative consumption crosses
// it. The poll is deterministic — fixed period, no randomness — and the
// meter's lazy accrual is idempotent, so polling never changes any
// measured value. A depleted node that something else (a Crash duty
// cycle) revives is re-failed on the next tick: batteries stay dead.
type DrainSpec struct {
	// CapacityJ is the per-node energy budget in joules.
	CapacityJ float64
	// Period is the poll period in seconds; default 1.
	Period sim.Time
	// Nodes, when non-nil, limits the fault to these ids.
	Nodes []packet.NodeID
	// Exclude removes ids from the selection.
	Exclude []packet.NodeID
}

// Drain returns a battery-depletion fault with the given per-node
// energy budget.
func Drain(capacityJ float64) DrainSpec { return DrainSpec{CapacityJ: capacityJ} }

// validate rejects non-positive or non-finite capacities and negative
// or NaN poll periods as values, before install's panic backstop.
func (s DrainSpec) validate() error {
	if math.IsNaN(s.CapacityJ) || math.IsInf(s.CapacityJ, 0) || s.CapacityJ <= 0 {
		return fmt.Errorf("CapacityJ must be positive and finite, got %v", s.CapacityJ)
	}
	return finiteNonNeg("Period", float64(s.Period))
}

func (s DrainSpec) install(inj *Injector, idx int) {
	if s.CapacityJ <= 0 {
		panic("fault: Drain capacity must be positive")
	}
	period := s.Period
	if !(period > 0) { // catches negative, zero, and NaN: validate's backstop
		period = 1
	}
	nodes := selectNodes(inj.nw, s.Nodes, s.Exclude)
	dead := make([]bool, len(nodes))
	k := inj.nw.Kernel
	t := sim.NewTicker(k, period, func() {
		now := k.Now()
		for i, n := range nodes {
			if dead[i] {
				if n.Up() {
					n.Fail() // revived by a crash duty cycle: batteries stay dead
				}
				continue
			}
			if n.Radio.Energy().Total(now) >= s.CapacityJ {
				dead[i] = true
				inj.drained.Inc()
				if n.Up() {
					n.Fail()
				}
			}
		}
	})
	t.Start()
}

// DegradeSpec injects transient per-link shadowing: every Period a
// random in-range link is attenuated by OffsetDB in both directions for
// Duration, then restored — a deep fade severing one edge of the
// topology at a time. Link picks draw from the spec's derived
// StreamFault child, never from the frame fading stream, so installing
// a degrade spec does not perturb per-frame fading draws.
type DegradeSpec struct {
	// OffsetDB is the gain applied to degraded links; negative values
	// attenuate. Default −25 dB, deep enough to push an in-range link
	// below the decode threshold under the default radio calibration.
	OffsetDB float64
	// Period is the spacing between degrade events; default 1 s.
	Period sim.Time
	// Duration is how long each degradation lasts; default 1 s.
	Duration sim.Time
}

// Degrade returns a per-link shadowing fault with the given offset.
func Degrade(offsetDB float64) DegradeSpec { return DegradeSpec{OffsetDB: offsetDB} }

// validate rejects NaN/Inf offsets (any finite sign is a legal gain)
// and negative or NaN periods and durations.
func (s DegradeSpec) validate() error {
	if err := finite("OffsetDB", s.OffsetDB); err != nil {
		return err
	}
	if err := finiteNonNeg("Period", float64(s.Period)); err != nil {
		return err
	}
	return finiteNonNeg("Duration", float64(s.Duration))
}

func (s DegradeSpec) install(inj *Injector, idx int) {
	off := s.OffsetDB
	if off == 0 {
		off = -25
	}
	period := s.Period
	if !(period > 0) {
		period = 1
	}
	dur := s.Duration
	if !(dur > 0) {
		dur = 1
	}
	r := inj.stream(idx)
	ch := inj.nw.Channel
	k := inj.nw.Kernel
	var buf []int
	t := sim.NewTicker(k, period, func() {
		a := r.Intn(ch.NumRadios())
		buf = ch.NeighborIDs(buf, a)
		if len(buf) == 0 {
			return
		}
		b := buf[r.Intn(len(buf))]
		key := [2]int32{int32(min(a, b)), int32(max(a, b))}
		if inj.degraded[key] {
			return // already shadowed; never stack offsets on one link
		}
		inj.degraded[key] = true
		inj.degrades.Inc()
		ch.SetLinkOffset(a, b, off)
		ch.SetLinkOffset(b, a, off)
		k.Schedule(dur, func() {
			delete(inj.degraded, key)
			inj.restores.Inc()
			ch.SetLinkOffset(a, b, 0)
			ch.SetLinkOffset(b, a, 0)
		})
	})
	t.Start()
}

// JamSpec is a roaming interference-only transmitter: it appears at a
// uniform random position, radiates Burst-long wideband bursts every
// Period through the channel's interference hook, and random-walks
// SpeedMps × Period between bursts, clamped to the terrain. Jam signals
// raise the noise floor and hold carrier sense busy but never decode,
// and their power is the deterministic propagation mean — the jammer
// draws only from its own derived stream.
type JamSpec struct {
	// TxPowerDBm is the jammer's transmit power; default 24.5 dBm (the
	// WaveLAN default — as loud as any node).
	TxPowerDBm float64
	// Period is the burst spacing; default 250 ms.
	Period sim.Time
	// Burst is each burst's airtime; default 5 ms.
	Burst sim.Time
	// SpeedMps is the roaming speed in meters per second; default 10.
	SpeedMps float64
	// Stop silences the jammer from this sim time on; 0 means never.
	Stop sim.Time
}

// Jam returns a roaming jammer with the given transmit power.
func Jam(txPowerDBm float64) JamSpec { return JamSpec{TxPowerDBm: txPowerDBm} }

// validate rejects non-finite powers and negative or NaN timing and
// speed fields.
func (s JamSpec) validate() error {
	if err := finite("TxPowerDBm", s.TxPowerDBm); err != nil {
		return err
	}
	if err := finiteNonNeg("Period", float64(s.Period)); err != nil {
		return err
	}
	if err := finiteNonNeg("Burst", float64(s.Burst)); err != nil {
		return err
	}
	if err := finiteNonNeg("SpeedMps", s.SpeedMps); err != nil {
		return err
	}
	return finiteNonNeg("Stop", float64(s.Stop))
}

func (s JamSpec) install(inj *Injector, idx int) {
	tx := s.TxPowerDBm
	if tx == 0 {
		tx = 24.5
	}
	period := s.Period
	if !(period > 0) {
		period = 250e-3
	}
	burst := s.Burst
	if !(burst > 0) {
		burst = 5e-3
	}
	speed := s.SpeedMps
	if !(speed > 0) {
		speed = 10
	}
	r := inj.stream(idx)
	rect := inj.nw.Rect
	pos := geo.UniformPoints(r, rect, 1)[0]
	ch := inj.nw.Channel
	k := inj.nw.Kernel
	step := speed * float64(period)
	var t *sim.Ticker
	t = sim.NewTicker(k, period, func() {
		if s.Stop > 0 && k.Now() >= s.Stop {
			t.Stop()
			return
		}
		inj.jamBursts.Inc()
		inj.jamHits.Add(uint64(ch.InjectInterference(pos, tx, burst)))
		angle := 2 * math.Pi * r.Float64()
		pos = rect.Clamp(geo.Point{X: pos.X + step*math.Cos(angle), Y: pos.Y + step*math.Sin(angle)})
	})
	t.Start()
}
