package snapshot

import (
	"encoding/json"
	"math"

	"routeless/internal/digest"
	"routeless/internal/scenario"
	"routeless/internal/sim"
)

func floatBits(f float64) uint64     { return math.Float64bits(f) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// Fingerprint computes the run's full state digest — the six words a
// snapshot stores and a restore must reproduce. Every walk below is in
// a deterministic order: kernels in network order (global first, then
// tiles), nodes by id, maps sorted inside each DigestState.
func Fingerprint(run *scenario.Run) Digest {
	nw := run.Network()
	kernels := make([]*sim.Kernel, 0, 1+len(nw.TileKernels))
	kernels = append(kernels, nw.Kernel)
	kernels = append(kernels, nw.TileKernels...)

	var d Digest

	hn := digest.New()
	for _, k := range kernels {
		hn.Float64(float64(k.Now()))
	}
	d.Now = hn.Sum()

	he := digest.New()
	for _, k := range kernels {
		he.Uint64(k.Seq())
		he.Uint64(k.Processed())
		keys := k.PendingKeys()
		he.Int(len(keys))
		for _, ek := range keys {
			he.Float64(float64(ek.At))
			he.Uint64(ek.Seq)
		}
	}
	d.Events = he.Sum()

	hp := digest.New()
	for _, k := range kernels {
		p := k.Pool()
		hp.Int(p.Live())
		hp.Int(p.Peak())
	}
	d.Pools = hp.Sum()

	hr := digest.New()
	tracker := run.RNG()
	hr.Int(tracker.Len())
	tracker.Visit(func(labels []uint64, draws uint64) {
		hr.Int(len(labels))
		for _, l := range labels {
			hr.Uint64(l)
		}
		hr.Uint64(draws)
	})
	d.RNG = hr.Sum()

	hm := digest.New()
	snap, err := json.Marshal(nw.Metrics.Snapshot())
	if err != nil {
		panic(err) // a metrics snapshot that cannot encode is itself a bug
	}
	hm.Bytes(snap)
	d.Metrics = hm.Sum()

	hs := digest.New()
	nw.Channel.DigestState(&hs)
	hs.Int(len(nw.Nodes))
	for _, n := range nw.Nodes {
		n.DigestState(&hs)
		n.Radio.DigestState(&hs)
		n.MAC.DigestState(&hs)
		if s, ok := n.Net.(digest.Stater); ok {
			hs.Bool(true)
			s.DigestState(&hs)
		} else {
			hs.Bool(false)
		}
	}
	cbrs := run.Traffic()
	hs.Int(len(cbrs))
	for _, c := range cbrs {
		c.DigestState(&hs)
	}
	movers := run.Movers()
	hs.Int(len(movers))
	for _, w := range movers {
		w.DigestState(&hs)
	}
	if inj := run.Faults(); inj != nil {
		hs.Bool(true)
		inj.DigestState(&hs)
	} else {
		hs.Bool(false)
	}
	d.State = hs.Sum()

	return d
}
