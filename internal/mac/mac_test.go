package mac

import (
	"testing"

	"routeless/internal/geo"
	"routeless/internal/packet"
	"routeless/internal/phy"
	"routeless/internal/propagation"
	"routeless/internal/rng"
	"routeless/internal/sim"
)

// netRecorder is a test Handler.
type netRecorder struct {
	delivered []*packet.Packet
	rssi      []float64
	sent      []*packet.Packet
	failed    []*packet.Packet
}

func (n *netRecorder) OnDeliver(p *packet.Packet, r float64) {
	n.delivered = append(n.delivered, p)
	n.rssi = append(n.rssi, r)
}
func (n *netRecorder) OnSent(p *packet.Packet)          { n.sent = append(n.sent, p) }
func (n *netRecorder) OnUnicastFailed(p *packet.Packet) { n.failed = append(n.failed, p) }

// rig builds a kernel, channel, and one MAC+recorder per position.
func rig(t *testing.T, positions []geo.Point) (*sim.Kernel, *phy.Channel, []*MAC, []*netRecorder) {
	t.Helper()
	k := sim.NewKernel(3)
	model := propagation.NewFreeSpace()
	params := phy.DefaultParams(model, 250)
	ch := phy.NewChannel(k, geo.NewRect(3000, 3000), positions, params, phy.ChannelConfig{Model: model})
	macs := make([]*MAC, len(positions))
	recs := make([]*netRecorder, len(positions))
	cfg := DefaultConfig()
	for i := range positions {
		macs[i] = New(k, ch.Radio(i), &cfg, rng.ForNode(3, rng.StreamMAC, i))
		recs[i] = &netRecorder{}
		macs[i].SetHandler(recs[i])
	}
	return k, ch, macs, recs
}

func pts(xy ...float64) []geo.Point {
	out := make([]geo.Point, len(xy)/2)
	for i := range out {
		out[i] = geo.Point{X: xy[2*i], Y: xy[2*i+1]}
	}
	return out
}

func bcast(seq uint32) *packet.Packet {
	return &packet.Packet{
		Kind: packet.KindData, To: packet.Broadcast, Origin: 0,
		Seq: seq, Size: packet.SizeData,
	}
}

func unicast(to packet.NodeID, seq uint32) *packet.Packet {
	return &packet.Packet{
		Kind: packet.KindData, To: to, Origin: 0, Target: to,
		Seq: seq, Size: packet.SizeData,
	}
}

func TestBroadcastDelivery(t *testing.T) {
	k, _, macs, recs := rig(t, pts(0, 0, 100, 0, 200, 0))
	macs[0].Enqueue(bcast(1), 0)
	k.Run()
	if len(recs[1].delivered) != 1 || len(recs[2].delivered) != 1 {
		t.Fatalf("deliveries: n1=%d n2=%d, want 1 each",
			len(recs[1].delivered), len(recs[2].delivered))
	}
	if len(recs[0].sent) != 1 {
		t.Fatal("sender missing OnSent")
	}
	if recs[1].rssi[0] >= 0 || recs[1].rssi[0] < -100 {
		t.Fatalf("implausible rssi %v", recs[1].rssi[0])
	}
}

func TestBroadcastNoAck(t *testing.T) {
	k, _, macs, _ := rig(t, pts(0, 0, 100, 0))
	macs[0].Enqueue(bcast(1), 0)
	k.Run()
	if macs[1].Stats().TxAcks != 0 {
		t.Fatal("broadcast frames must not be acknowledged")
	}
}

func TestUnicastAcked(t *testing.T) {
	k, _, macs, recs := rig(t, pts(0, 0, 100, 0))
	macs[0].Enqueue(unicast(1, 1), 0)
	k.Run()
	if len(recs[1].delivered) != 1 {
		t.Fatal("unicast not delivered")
	}
	if len(recs[0].sent) != 1 {
		t.Fatal("sender missing OnSent after ACK")
	}
	if macs[1].Stats().TxAcks != 1 {
		t.Fatalf("TxAcks = %d, want 1", macs[1].Stats().TxAcks)
	}
	if macs[0].Stats().AcksReceived != 1 {
		t.Fatalf("AcksReceived = %d, want 1", macs[0].Stats().AcksReceived)
	}
	if len(recs[0].failed) != 0 {
		t.Fatal("spurious unicast failure")
	}
}

func TestUnicastToDeadNeighborFails(t *testing.T) {
	k, ch, macs, recs := rig(t, pts(0, 0, 100, 0))
	ch.Radio(1).TurnOff()
	macs[1].Pause()
	macs[0].Enqueue(unicast(1, 1), 0)
	k.Run()
	if len(recs[0].failed) != 1 {
		t.Fatalf("failed = %d, want 1 (retry limit exhausted)", len(recs[0].failed))
	}
	st := macs[0].Stats()
	if st.Retries != uint64(DefaultConfig().RetryLimit)+1 {
		t.Fatalf("Retries = %d, want %d", st.Retries, DefaultConfig().RetryLimit+1)
	}
	// Every retry is a MAC transmission: retry limit + 1 originals.
	if st.TxFrames != uint64(DefaultConfig().RetryLimit)+1 {
		t.Fatalf("TxFrames = %d, want %d", st.TxFrames, DefaultConfig().RetryLimit+1)
	}
}

func TestOverhearingPromiscuous(t *testing.T) {
	// Node 2 is in range of node 0's unicast to node 1: it must still
	// see the frame (Routeless Routing depends on passive listening).
	k, _, macs, recs := rig(t, pts(0, 0, 100, 0, 0, 100))
	macs[0].Enqueue(unicast(1, 1), 0)
	k.Run()
	if len(recs[2].delivered) != 1 {
		t.Fatal("bystander did not overhear the unicast")
	}
	if recs[2].delivered[0].To != 1 {
		t.Fatal("overheard frame lost its MAC destination")
	}
	// But the bystander must not ACK it.
	if macs[2].Stats().TxAcks != 0 {
		t.Fatal("bystander acknowledged a frame not addressed to it")
	}
}

func TestPriorityQueueOrdersTransmissions(t *testing.T) {
	k, _, macs, recs := rig(t, pts(0, 0, 100, 0))
	// While the first frame contends, enqueue three more with inverted
	// priorities; they must come out lowest-priority-value first.
	macs[0].Enqueue(bcast(1), 0)
	macs[0].Enqueue(bcast(2), 30)
	macs[0].Enqueue(bcast(3), 10)
	macs[0].Enqueue(bcast(4), 20)
	k.Run()
	var seqs []uint32
	for _, p := range recs[1].delivered {
		seqs = append(seqs, p.Seq)
	}
	want := []uint32{1, 3, 4, 2}
	if len(seqs) != len(want) {
		t.Fatalf("delivered %v, want %v", seqs, want)
	}
	for i := range want {
		if seqs[i] != want[i] {
			t.Fatalf("delivered order %v, want %v", seqs, want)
		}
	}
}

func TestEqualPriorityFIFO(t *testing.T) {
	k, _, macs, recs := rig(t, pts(0, 0, 100, 0))
	for s := uint32(1); s <= 5; s++ {
		macs[0].Enqueue(bcast(s), 7)
	}
	k.Run()
	for i, p := range recs[1].delivered {
		if p.Seq != uint32(i+1) {
			t.Fatalf("FIFO violated at %d: seq %d", i, p.Seq)
		}
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	k, _, macs, _ := rig(t, pts(0, 0, 100, 0))
	cfgCap := DefaultConfig().QueueCap
	for s := 0; s < cfgCap+10; s++ {
		macs[0].Enqueue(bcast(uint32(s)), 0)
	}
	k.Run()
	st := macs[0].Stats()
	if st.DroppedFull == 0 {
		t.Fatal("overflow did not drop")
	}
	// One frame is promoted out of the queue immediately, so cap+1 fit.
	if st.DroppedFull != uint64(10-1) {
		t.Fatalf("DroppedFull = %d, want 9", st.DroppedFull)
	}
}

func TestCarrierSenseDefers(t *testing.T) {
	// Two senders with a common receiver: both frames must arrive
	// (CSMA serializes them) rather than collide.
	k, _, macs, recs := rig(t, pts(0, 0, 100, 0, 200, 0))
	macs[0].Enqueue(bcast(1), 0)
	macs[2].Enqueue(&packet.Packet{
		Kind: packet.KindData, To: packet.Broadcast, Origin: 2, Seq: 2, Size: packet.SizeData,
	}, 0)
	k.Run()
	if len(recs[1].delivered) != 2 {
		t.Fatalf("receiver got %d frames, want 2 (CSMA should serialize)", len(recs[1].delivered))
	}
}

func TestManyContendersAllDeliver(t *testing.T) {
	// Five co-located senders, one receiver: random backoff should let
	// all five frames through eventually.
	k, _, macs, recs := rig(t, pts(0, 0, 50, 0, 0, 50, 50, 50, 25, 25, 100, 100))
	for i := 0; i < 5; i++ {
		macs[i].Enqueue(&packet.Packet{
			Kind: packet.KindData, To: packet.Broadcast,
			Origin: packet.NodeID(i), Seq: 1, Size: packet.SizeData,
		}, 0)
	}
	k.Run()
	from := map[packet.NodeID]bool{}
	for _, p := range recs[5].delivered {
		from[p.Origin] = true
	}
	if len(from) < 4 {
		t.Fatalf("receiver heard only %d/5 senders", len(from))
	}
}

func TestPauseResume(t *testing.T) {
	k, ch, macs, recs := rig(t, pts(0, 0, 100, 0))
	macs[0].Enqueue(bcast(1), 0)
	// Pause before the frame can win contention.
	ch.Radio(0).TurnOff()
	macs[0].Pause()
	if !macs[0].Paused() {
		t.Fatal("not paused")
	}
	k.RunUntil(1.0)
	if len(recs[1].delivered) != 0 {
		t.Fatal("paused MAC transmitted")
	}
	ch.Radio(0).TurnOn()
	macs[0].Resume()
	k.Run()
	if len(recs[1].delivered) != 1 {
		t.Fatal("frame lost across pause/resume")
	}
}

func TestResumeWithoutPauseIsNoop(t *testing.T) {
	_, _, macs, _ := rig(t, pts(0, 0, 100, 0))
	macs[0].Resume() // must not panic or corrupt state
	if macs[0].Paused() {
		t.Fatal("Resume put MAC into paused state")
	}
}

func TestAckNotDeliveredUpward(t *testing.T) {
	k, _, macs, recs := rig(t, pts(0, 0, 100, 0, 0, 100))
	macs[0].Enqueue(unicast(1, 1), 0)
	k.Run()
	for _, r := range recs {
		for _, p := range r.delivered {
			if p.Kind == packet.KindMACAck {
				t.Fatal("MAC ACK leaked to the network layer")
			}
		}
	}
	_ = macs
}

func TestStatsTxCountsIncludeAcks(t *testing.T) {
	k, _, macs, _ := rig(t, pts(0, 0, 100, 0))
	macs[0].Enqueue(unicast(1, 1), 0)
	k.Run()
	if macs[1].Stats().TxFrames != 1 {
		t.Fatalf("receiver TxFrames = %d, want 1 (the ACK)", macs[1].Stats().TxFrames)
	}
}

func TestBackToBackUnicastFlows(t *testing.T) {
	k, _, macs, recs := rig(t, pts(0, 0, 100, 0))
	for s := uint32(1); s <= 10; s++ {
		macs[0].Enqueue(unicast(1, s), 0)
	}
	k.Run()
	if len(recs[1].delivered) != 10 {
		t.Fatalf("delivered %d, want 10", len(recs[1].delivered))
	}
	if len(recs[0].sent) != 10 {
		t.Fatalf("sent %d, want 10", len(recs[0].sent))
	}
}

func TestHiddenTerminalCollides(t *testing.T) {
	// Classic hidden-terminal: with carrier-sense range deliberately
	// pulled in to equal the decode range, senders 400 m apart cannot
	// sense each other but share a receiver in the middle. Without
	// RTS/CTS many frames should collide at the receiver. (The default
	// calibration keeps CS ≈ 2.2× decode range precisely to make this
	// rare.)
	k := sim.NewKernel(3)
	model := propagation.NewFreeSpace()
	params := phy.DefaultParams(model, 250)
	params.CSThreshDBm = params.RxThreshDBm // CS range = decode range
	positions := pts(0, 0, 200, 0, 400, 0)
	ch := phy.NewChannel(k, geo.NewRect(3000, 3000), positions, params, phy.ChannelConfig{Model: model})
	macs := make([]*MAC, len(positions))
	recs := make([]*netRecorder, len(positions))
	cfg := DefaultConfig()
	for i := range positions {
		macs[i] = New(k, ch.Radio(i), &cfg, rng.ForNode(3, rng.StreamMAC, i))
		recs[i] = &netRecorder{}
		macs[i].SetHandler(recs[i])
	}
	for s := uint32(1); s <= 20; s++ {
		macs[0].Enqueue(&packet.Packet{Kind: packet.KindData, To: packet.Broadcast, Origin: 0, Seq: s, Size: packet.SizeData}, 0)
		macs[2].Enqueue(&packet.Packet{Kind: packet.KindData, To: packet.Broadcast, Origin: 2, Seq: s, Size: packet.SizeData}, 0)
	}
	k.Run()
	st := ch.Radio(1).Stats()
	if st.Collisions+st.MissedWeak == 0 {
		t.Fatal("hidden terminals never collided — carrier sense model suspect")
	}
	if len(recs[1].delivered) == 40 {
		t.Fatal("all 40 frames survived hidden-terminal interference")
	}
}

func TestQueuePanicsOnBadCap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	newPrioQueue(0)
}
