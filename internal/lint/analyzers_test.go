package lint

import (
	"go/ast"
	"go/parser"
	"strings"
	"testing"
)

// sharedLoader is built once: the source importer caches type-checked
// stdlib packages, so every fixture after the first is nearly free.
var sharedLoader *Loader

func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	if sharedLoader == nil {
		l, err := NewLoader("../..", "")
		if err != nil {
			t.Fatalf("NewLoader: %v", err)
		}
		sharedLoader = l
	}
	return sharedLoader
}

// analyze type-checks one fixture file and runs a single analyzer over
// it. filename controls the _test.go exemptions, path the package-scope
// ones.
func analyze(t *testing.T, a *Analyzer, path, filename, src string) []Diagnostic {
	t.Helper()
	l := fixtureLoader(t)
	f, err := parser.ParseFile(l.Fset, t.Name()+"/"+filename, src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	info := newInfo()
	pkg := l.typeCheck(path, []*ast.File{f}, info)
	u := &Unit{Fset: l.Fset, Files: []*ast.File{f}, Pkg: pkg, Info: info, Path: path}
	return Run(u, []*Analyzer{a})
}

type fixtureCase struct {
	name     string
	analyzer *Analyzer
	path     string // import path the fixture pretends to live at
	filename string
	src      string
	want     []string // one substring per expected diagnostic, in order
}

func runFixtures(t *testing.T, cases []fixtureCase) {
	t.Helper()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := analyze(t, tc.analyzer, tc.path, tc.filename, tc.src)
			if len(got) != len(tc.want) {
				t.Fatalf("got %d diagnostics, want %d:\n%v", len(got), len(tc.want), got)
			}
			for i, w := range tc.want {
				if !strings.Contains(got[i].Message, w) {
					t.Errorf("diagnostic %d = %q, want substring %q", i, got[i].Message, w)
				}
			}
		})
	}
}

func TestGlobalRand(t *testing.T) {
	runFixtures(t, []fixtureCase{
		{
			name: "catches global source draws and Seed", analyzer: GlobalRand,
			path: "routeless/internal/fix", filename: "fix.go",
			src: `package fix
import "math/rand"
func bad() float64 {
	rand.Seed(42)
	return rand.Float64()
}`,
			want: []string{"rand.Seed", "rand.Float64"},
		},
		{
			name: "catches function value references", analyzer: GlobalRand,
			path: "routeless/examples/demo", filename: "main.go",
			src: `package main
import "math/rand"
func main() { _ = rand.Int }`,
			want: []string{"rand.Int"},
		},
		{
			name: "catches draws in test files too", analyzer: GlobalRand,
			path: "routeless/internal/fix", filename: "fix_test.go",
			src: `package fix
import "math/rand"
func helper() int { return rand.Intn(10) }`,
			want: []string{"rand.Intn"},
		},
		{
			name: "clean: seeded constructor and methods", analyzer: GlobalRand,
			path: "routeless/internal/fix", filename: "fix.go",
			src: `package fix
import "math/rand"
func good(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}`,
		},
		{
			name: "flow: catches fixed seed laundered through a helper", analyzer: GlobalRand,
			path: "routeless/internal/fix", filename: "fix.go",
			src: `package fix
import "math/rand"
func mk(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
func bad() float64 { return mk(42).Float64() }`,
			want: []string{"supplies a fixed seed"},
		},
		{
			name: "flow: catches raw constructor over a literal seed", analyzer: GlobalRand,
			path: "routeless/internal/fix", filename: "fix.go",
			src: `package fix
import "math/rand"
func bad() float64 { return rand.New(rand.NewSource(7)).Float64() }`,
			want: []string{"constructed from a fixed seed"},
		},
		{
			name: "flow: catches package-level stream and draws from it", analyzer: GlobalRand,
			path: "routeless/internal/fix", filename: "fix.go",
			src: `package fix
import "math/rand"
var stream *rand.Rand
func bad() float64 { return stream.Float64() }`,
			want: []string{"process-shared stream", "draws from package-level stream"},
		},
		{
			name: "flow: clean, helper fed a derived seed", analyzer: GlobalRand,
			path: "routeless/internal/fix", filename: "fix.go",
			src: `package fix
import (
	"math/rand"
	"routeless/internal/rng"
)
func mk(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
func good(seed int64) float64 { return mk(rng.Derive(seed, "fix")).Float64() }`,
		},
		{
			name: "flow: suppressed with a reasoned directive", analyzer: GlobalRand,
			path: "routeless/internal/fix", filename: "fix.go",
			src: `package fix
import "math/rand"
func bad() float64 {
	//lint:ignore globalrand fixed corpus for a statistics self-test, order-independent
	return rand.New(rand.NewSource(7)).Float64()
}`,
		},
	})
}

func TestWallClock(t *testing.T) {
	const clockSrc = `package fix
import "time"
func bad() time.Time {
	time.Sleep(time.Millisecond)
	return time.Now()
}`
	runFixtures(t, []fixtureCase{
		{
			name: "catches host clock in internal", analyzer: WallClock,
			path: "routeless/internal/fix", filename: "fix.go", src: clockSrc,
			want: []string{"time.Sleep", "time.Now"},
		},
		{
			name: "catches host clock in cmd", analyzer: WallClock,
			path: "routeless/cmd/fix", filename: "main.go", src: clockSrc,
			want: []string{"time.Sleep", "time.Now"},
		},
		{
			name: "clean: examples may touch the host clock", analyzer: WallClock,
			path: "routeless/examples/demo", filename: "main.go", src: clockSrc,
		},
		{
			name: "clean: test files are exempt", analyzer: WallClock,
			path: "routeless/internal/fix", filename: "fix_test.go", src: clockSrc,
		},
		{
			name: "clean: duration arithmetic without clock reads", analyzer: WallClock,
			path: "routeless/internal/fix", filename: "fix.go",
			src: `package fix
import "time"
func good(n int) time.Duration { return time.Duration(n) * time.Second }`,
		},
	})
}

func TestMapOrder(t *testing.T) {
	runFixtures(t, []fixtureCase{
		{
			name: "catches channel send under map range", analyzer: MapOrder,
			path: "routeless/internal/fix", filename: "fix.go",
			src: `package fix
func bad(m map[int]int, sink chan int) {
	for k := range m {
		sink <- k
	}
}`,
			want: []string{"sends on a channel"},
		},
		{
			name: "catches scheduling under map range", analyzer: MapOrder,
			path: "routeless/internal/fix", filename: "fix.go",
			src: `package fix
type kernel struct{ q chan func() }
func (k kernel) Schedule(d float64, f func()) { k.q <- f }
func bad(m map[int]func(), k kernel) {
	for _, f := range m {
		k.Schedule(0, f)
	}
}`,
			want: []string{"calls Schedule"},
		},
		{
			name: "clean: resolved callee provably reaches no sink", analyzer: MapOrder,
			path: "routeless/internal/fix", filename: "fix.go",
			src: `package fix
type reg struct{ n int }
func (r *reg) Schedule(d float64, f func()) { r.n++ }
func good(m map[int]func(), r *reg) {
	for _, f := range m {
		r.Schedule(0, f)
	}
}`,
		},
		{
			name: "catches unsorted result accumulation", analyzer: MapOrder,
			path: "routeless/internal/fix", filename: "fix.go",
			src: `package fix
func bad(m map[int]int) []int {
	var out []int
	for k, v := range m {
		out = append(out, k*v)
	}
	return out
}`,
			want: []string{"appends to a slice"},
		},
		{
			name: "clean: key collection idiom", analyzer: MapOrder,
			path: "routeless/internal/fix", filename: "fix.go",
			src: `package fix
func good(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}`,
		},
		{
			name: "clean: filter then sort", analyzer: MapOrder,
			path: "routeless/internal/fix", filename: "fix.go",
			src: `package fix
import "sort"
func good(m map[int]int) []int {
	var out []int
	for k, v := range m {
		if v > 0 {
			out = append(out, k)
		}
	}
	sort.Ints(out)
	return out
}`,
		},
		{
			name: "clean: purely local accumulation", analyzer: MapOrder,
			path: "routeless/internal/fix", filename: "fix.go",
			src: `package fix
func good(m map[int][]int) int {
	total := 0
	for _, vs := range m {
		tmp := []int{}
		tmp = append(tmp, vs...)
		total += len(tmp)
	}
	return total
}`,
		},
		{
			name: "flow: catches a sink two calls away under an innocent name", analyzer: MapOrder,
			path: "routeless/internal/fix", filename: "fix.go",
			src: `package fix
import "fmt"
func emit(s string)  { report(s) }
func report(s string) { fmt.Println(s) }
func bad(m map[string]int) {
	for k := range m {
		emit(k)
	}
}`,
			want: []string{"calls emit, which reaches process output"},
		},
		{
			name: "flow: catches ranging over a map-ordered helper result", analyzer: MapOrder,
			path: "routeless/internal/fix", filename: "fix.go",
			src: `package fix
import "fmt"
func keys(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}
func bad(m map[string]int) {
	for _, k := range keys(m) {
		fmt.Println(k)
	}
}`,
			want: []string{"built in map-iteration order by fix.keys"},
		},
		{
			name: "flow: clean, helper result assigned then sorted", analyzer: MapOrder,
			path: "routeless/internal/fix", filename: "fix.go",
			src: `package fix
import (
	"fmt"
	"slices"
)
func keys(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}
func good(m map[string]int) {
	ks := keys(m)
	slices.Sort(ks)
	for _, k := range ks {
		fmt.Println(k)
	}
}`,
		},
		{
			name: "flow: suppressed cross-function leak", analyzer: MapOrder,
			path: "routeless/internal/fix", filename: "fix.go",
			src: `package fix
import "fmt"
func emit(s string) { fmt.Println(s) }
func tolerated(m map[string]int) {
	for k := range m {
		//lint:ignore maporder debug dump, order intentionally irrelevant
		emit(k)
	}
}`,
		},
	})
}

func TestGoroutine(t *testing.T) {
	const concSrc = `package fix
import "sync"
var mu sync.Mutex
func bad() {
	go func() {}()
}`
	runFixtures(t, []fixtureCase{
		{
			name: "catches sync import and go statement in internal", analyzer: Goroutine,
			path: "routeless/internal/fix", filename: "fix.go", src: concSrc,
			want: []string{`import "sync"`, "go statement"},
		},
		{
			name: "clean: internal/parallel owns concurrency", analyzer: Goroutine,
			path: "routeless/internal/parallel", filename: "parallel.go", src: concSrc,
		},
		{
			name: "clean: internal/pdes tile engine owns concurrency", analyzer: Goroutine,
			path: "routeless/internal/pdes", filename: "pdes.go", src: concSrc,
		},
		{
			name: "clean: cmd may use goroutines", analyzer: Goroutine,
			path: "routeless/cmd/fix", filename: "main.go", src: concSrc,
		},
	})
}

func TestSortPkg(t *testing.T) {
	const sortSrc = `package fix
import "sort"
func f(xs []int) { sort.Ints(xs) }`
	runFixtures(t, []fixtureCase{
		{
			name: "catches sort import in internal", analyzer: SortPkg,
			path: "routeless/internal/fix", filename: "fix.go", src: sortSrc,
			want: []string{`import "sort"`},
		},
		{
			name: "catches sort import in cmd", analyzer: SortPkg,
			path: "routeless/cmd/fix", filename: "main.go", src: sortSrc,
			want: []string{`import "sort"`},
		},
		{
			name: "clean: test files may use sort", analyzer: SortPkg,
			path: "routeless/internal/fix", filename: "fix_test.go", src: sortSrc,
		},
		{
			name: "clean: slices is the sanctioned spelling", analyzer: SortPkg,
			path: "routeless/internal/fix", filename: "fix.go",
			src: `package fix
import "slices"
func f(xs []int) { slices.Sort(xs) }`,
		},
	})
}

func TestFloatEq(t *testing.T) {
	runFixtures(t, []fixtureCase{
		{
			name: "catches computed float equality", analyzer: FloatEq,
			path: "routeless/internal/fix", filename: "fix.go",
			src: `package fix
func bad(a, b float64) bool { return a == b }`,
			want: []string{"=="},
		},
		{
			name: "catches defined float types", analyzer: FloatEq,
			path: "routeless/internal/fix", filename: "fix.go",
			src: `package fix
type seconds float64
func bad(a, b seconds) bool { return a != b }`,
			want: []string{"!="},
		},
		{
			name: "clean: constant sentinel comparison", analyzer: FloatEq,
			path: "routeless/internal/fix", filename: "fix.go",
			src: `package fix
const infinity = 1e300
func good(a float64) bool { return a == 0 || a != infinity }`,
		},
		{
			name: "clean: NaN self-test", analyzer: FloatEq,
			path: "routeless/internal/fix", filename: "fix.go",
			src: `package fix
func good(a float64) bool { return a != a }`,
		},
		{
			name: "clean: integers compare exactly", analyzer: FloatEq,
			path: "routeless/internal/fix", filename: "fix.go",
			src: `package fix
func good(a, b int) bool { return a == b }`,
		},
		{
			name: "clean: test files are exempt", analyzer: FloatEq,
			path: "routeless/internal/fix", filename: "fix_test.go",
			src: `package fix
func helper(a, b float64) bool { return a == b }`,
		},
	})
}

func TestIgnoreDirectives(t *testing.T) {
	runFixtures(t, []fixtureCase{
		{
			name: "directive on previous line suppresses", analyzer: FloatEq,
			path: "routeless/internal/fix", filename: "fix.go",
			src: `package fix
func good(a, b float64) bool {
	//lint:ignore floateq fixture demonstrating suppression
	return a == b
}`,
		},
		{
			name: "wildcard directive suppresses any rule", analyzer: FloatEq,
			path: "routeless/internal/fix", filename: "fix.go",
			src: `package fix
func good(a, b float64) bool {
	//lint:ignore * fixture demonstrating suppression
	return a == b
}`,
		},
		{
			name: "directive for another rule does not suppress", analyzer: FloatEq,
			path: "routeless/internal/fix", filename: "fix.go",
			src: `package fix
func bad(a, b float64) bool {
	//lint:ignore wallclock wrong rule
	return a == b
}`,
			want: []string{"=="},
		},
		{
			name: "directive for a nonexistent rule is reported", analyzer: FloatEq,
			path: "routeless/internal/fix", filename: "fix.go",
			src: `package fix
func good(a, b int) bool {
	//lint:ignore notarule stale suppression
	return a == b
}`,
			want: []string{`unknown rule "notarule"`},
		},
		{
			name: "reasonless directive is itself reported", analyzer: FloatEq,
			path: "routeless/internal/fix", filename: "fix.go",
			src: `package fix
func bad(a, b float64) bool {
	//lint:ignore floateq
	return a == b
}`,
			want: []string{"malformed directive", "=="},
		},
	})
}

func TestStatsMut(t *testing.T) {
	const statsSrc = `package fix
type FloodStats struct{ Forwards, Duplicates uint64 }
type proto struct{ stats FloodStats }
func bad(p *proto) {
	p.stats.Forwards++
	p.stats.Duplicates += 2
}`
	runFixtures(t, []fixtureCase{
		{
			name: "catches increment and compound assign in internal", analyzer: StatsMut,
			path: "routeless/internal/fix", filename: "fix.go", src: statsSrc,
			want: []string{"FloodStats.Forwards", "FloodStats.Duplicates"},
		},
		{
			name: "catches mutation through a pointer in cmd", analyzer: StatsMut,
			path: "routeless/cmd/fix", filename: "main.go",
			src: `package main
type RadioStats struct{ TxFrames uint64 }
func bad(s *RadioStats) { s.TxFrames-- }
func main() {}`,
			want: []string{"RadioStats.TxFrames"},
		},
		{
			name: "test files may build Stats fixtures freely", analyzer: StatsMut,
			path: "routeless/internal/fix", filename: "fix_test.go", src: statsSrc,
		},
		{
			name: "clean: plain assignment to a local view copy", analyzer: StatsMut,
			path: "routeless/internal/fix", filename: "fix.go",
			src: `package fix
type MACStats struct{ Enqueued uint64 }
func good() uint64 {
	var v MACStats
	v.Enqueued = 7
	return v.Enqueued
}`,
		},
		{
			name: "clean: non-Stats struct counters are out of scope", analyzer: StatsMut,
			path: "routeless/internal/fix", filename: "fix.go",
			src: `package fix
type tally struct{ hits uint64 }
func good(t *tally) { t.hits++ }`,
		},
	})
}

func TestSharedCap(t *testing.T) {
	runFixtures(t, []fixtureCase{
		{
			name: "catches package-level var in parallel.ForEach closure", analyzer: SharedCap,
			path: "routeless/internal/fix", filename: "fix.go",
			src: `package fix
import "routeless/internal/parallel"
var total int
func bad() {
	parallel.ForEach(4, 10, func(i int) { total += i })
}`,
			want: []string{"package-level var total"},
		},
		{
			name: "catches package-level var in parallel.Map closure, once per var", analyzer: SharedCap,
			path: "routeless/internal/fix", filename: "fix.go",
			src: `package fix
import "routeless/internal/parallel"
var hits [8]int
func bad() {
	parallel.Map(4, 8, func(i int) int {
		hits[i]++
		return hits[i]
	})
}`,
			want: []string{"package-level var hits"},
		},
		{
			name: "catches captured runtime pool in sweep.Run closure", analyzer: SharedCap,
			path: "routeless/internal/fix", filename: "fix.go",
			src: `package fix
import (
	"routeless/internal/node"
	"routeless/internal/sweep"
)
func bad() {
	shared := node.NewRuntime()
	sweep.Run(4, sweep.Cells("f", 1, []int64{1}), func(ctx *sweep.Context, i int, c sweep.Cell) int {
		_ = shared
		return i
	})
}`,
			want: []string{"captures *node.Runtime shared"},
		},
		{
			name: "catches captured event pool under explicit instantiation", analyzer: SharedCap,
			path: "routeless/internal/fix", filename: "fix.go",
			src: `package fix
import (
	"routeless/internal/sim"
	"routeless/internal/sweep"
)
func bad() {
	pool := sim.NewEventPool()
	sweep.Run[int](4, sweep.Cells("f", 1, []int64{1}), func(ctx *sweep.Context, i int, c sweep.Cell) int {
		_ = pool
		return i
	})
}`,
			want: []string{"captures *sim.EventPool pool"},
		},
		{
			name: "catches captured journal in sweep.Run closure", analyzer: SharedCap,
			path: "routeless/internal/fix", filename: "fix.go",
			src: `package fix
import (
	"io"
	"routeless/internal/metrics"
	"routeless/internal/sweep"
)
func bad(w io.Writer) {
	j := metrics.NewJournal(w)
	sweep.Run(4, sweep.Cells("f", 1, []int64{1}), func(ctx *sweep.Context, i int, c sweep.Cell) int {
		j.Write(metrics.Record{Experiment: "f"})
		return i
	})
}`,
			want: []string{"captures *metrics.Journal j"},
		},
		{
			name: "catches package-level var in pdes.Run exchange closure", analyzer: SharedCap,
			path: "routeless/internal/fix", filename: "fix.go",
			src: `package fix
import (
	"routeless/internal/pdes"
	"routeless/internal/sim"
)
var moved int
func bad(tiles []*sim.Kernel, g *sim.Kernel) {
	pdes.Run(pdes.Config{
		Tiles: tiles, Global: g, MinArm: 1e-6, CrossDelay: []sim.Time{1e-6},
		Exchange: func() int { moved++; return moved },
	}, 1)
}`,
			want: []string{"package-level var moved"},
		},
		{
			name: "clean: pdes.Run exchange over locals only", analyzer: SharedCap,
			path: "routeless/internal/fix", filename: "fix.go",
			src: `package fix
import (
	"routeless/internal/pdes"
	"routeless/internal/sim"
)
func good(tiles []*sim.Kernel, g *sim.Kernel) {
	moved := 0
	pdes.Run(pdes.Config{
		Tiles: tiles, Global: g, MinArm: 1e-6, CrossDelay: []sim.Time{1e-6},
		Exchange: func() int { moved++; return moved },
	}, 1)
}`,
		},
		{
			name: "clean: per-worker runtime from the context", analyzer: SharedCap,
			path: "routeless/internal/fix", filename: "fix.go",
			src: `package fix
import "routeless/internal/sweep"
func good() {
	sweep.Run(4, sweep.Cells("f", 1, []int64{1}), func(ctx *sweep.Context, i int, c sweep.Cell) int {
		rt := ctx.Runtime()
		_ = rt
		return i
	})
}`,
		},
		{
			name: "clean: sync and atomic values exist to be shared", analyzer: SharedCap,
			path: "routeless/internal/fix", filename: "fix.go",
			src: `package fix
import (
	"sync/atomic"
	"routeless/internal/parallel"
)
var counter atomic.Uint64
func good() {
	parallel.ForEach(4, 10, func(i int) { counter.Add(1) })
}`,
		},
		{
			name: "clean: locals and parameters are worker-scoped work", analyzer: SharedCap,
			path: "routeless/internal/fix", filename: "fix.go",
			src: `package fix
import "routeless/internal/parallel"
func good(inputs []int) []int {
	return parallel.Map(4, len(inputs), func(i int) int { return inputs[i] * 2 })
}`,
		},
		{
			name: "test files may capture freely", analyzer: SharedCap,
			path: "routeless/internal/fix", filename: "fix_test.go",
			src: `package fix
import "routeless/internal/parallel"
var total int
func helper() {
	parallel.ForEach(4, 10, func(i int) { total += i })
}`,
		},
	})
}

func TestFaultRand(t *testing.T) {
	runFixtures(t, []fixtureCase{
		{
			name: "catches raw rand parameters in the fault plane", analyzer: FaultRand,
			path: "routeless/internal/fault", filename: "fix.go",
			src: `package fault
import "math/rand"
type spec struct{}
func (s spec) install(r *rand.Rand) { _ = r }
func helper(n int, r *rand.Rand) {}`,
			want: []string{"install takes a raw *rand.Rand", "helper takes a raw *rand.Rand"},
		},
		{
			name: "clean: returning a derived stream is the sanctioned doorway", analyzer: FaultRand,
			path: "routeless/internal/fault", filename: "fix.go",
			src: `package fault
import "math/rand"
func stream(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }`,
		},
		{
			name: "other packages may plumb generators", analyzer: FaultRand,
			path: "routeless/internal/node", filename: "fix.go",
			src: `package node
import "math/rand"
func NewFailureProcess(r *rand.Rand) { _ = r }`,
		},
		{
			name: "flow: catches a draw from a fixed-seed stream laundered through a helper", analyzer: FaultRand,
			path: "routeless/internal/fault", filename: "fix.go",
			src: `package fault
import "math/rand"
func stream() *rand.Rand { return rand.New(rand.NewSource(7)) }
func jitter() float64 { return stream().Float64() }`,
			want: []string{"fixed-seed stream"},
		},
		{
			name: "flow: catches a draw from a package-level stream", analyzer: FaultRand,
			path: "routeless/internal/fault", filename: "fix.go",
			src: `package fault
import "math/rand"
var shared *rand.Rand
func jitter() float64 { return shared.Float64() }`,
			want: []string{"package-level stream"},
		},
		{
			name: "flow: clean, stream derived from the network seed", analyzer: FaultRand,
			path: "routeless/internal/fault", filename: "fix.go",
			src: `package fault
import (
	"math/rand"
	"routeless/internal/rng"
)
func stream(seed int64) *rand.Rand { return rand.New(rand.NewSource(rng.Derive(seed, "fault"))) }
func jitter(seed int64) float64 { return stream(seed).Float64() }`,
		},
		{
			name: "flow: suppressed fixed-seed draw", analyzer: FaultRand,
			path: "routeless/internal/fault", filename: "fix.go",
			src: `package fault
import "math/rand"
func stream() *rand.Rand { return rand.New(rand.NewSource(7)) }
func jitter() float64 {
	//lint:ignore faultrand self-test of the injector math, never reaches a run
	return stream().Float64()
}`,
		},
	})
}

func TestSharedState(t *testing.T) {
	runFixtures(t, []fixtureCase{
		{
			name: "catches a handler method writing package state", analyzer: SharedState,
			path: "routeless/internal/fix", filename: "fix.go",
			src: `package fix
var hits int
type listener struct{}
func (listener) OnReceive(rssi float64) { hits++ }`,
			want: []string{"writes package-level var routeless/internal/fix.hits"},
		},
		{
			name: "catches a write reached through a helper chain", analyzer: SharedState,
			path: "routeless/internal/fix", filename: "fix.go",
			src: `package fix
var count int
func bump() { count = count + 1 }
func note() { bump() }
type listener struct{}
func (listener) OnDeliver(v float64) { note() }`,
			want: []string{"writes package-level var routeless/internal/fix.count"},
		},
		{
			name: "clean: sync-guarded state is shard-visible but race-free", analyzer: SharedState,
			path: "routeless/internal/fix", filename: "fix.go",
			src: `package fix
import "sync/atomic"
var hits atomic.Uint64
type listener struct{}
func (listener) OnReceive(rssi float64) { hits = hits }`,
		},
		{
			name: "clean: writes outside handler reach", analyzer: SharedState,
			path: "routeless/internal/fix", filename: "fix.go",
			src: `package fix
var setupDone bool
func Setup() { setupDone = true }
type listener struct{}
func (listener) OnReceive(rssi float64) {}`,
		},
		{
			name: "suppressed with a reasoned directive", analyzer: SharedState,
			path: "routeless/internal/fix", filename: "fix.go",
			src: `package fix
var hits int
type listener struct{}
func (listener) OnReceive(rssi float64) {
	//lint:ignore sharedstate run-scoped counter, merged after the run
	hits++
}`,
		},
	})
}
