package lint

import (
	"go/ast"
	"go/types"
)

// randPackages are the math/rand flavors whose package-level
// convenience functions draw from a process-global, seed-unstable
// source.
var randPackages = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// randConstructors are the package-level functions that build an
// explicitly seeded generator; they are the sanctioned doorway (via
// internal/rng or Kernel.Rand).
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// GlobalRand forbids package-level math/rand functions (rand.Float64,
// rand.Intn, rand.Seed, ...) everywhere in the repository. Draws from
// the global source depend on process-wide call order — one extra
// consumer anywhere perturbs every later draw — and rand.Seed mutates
// shared state. All simulation randomness must flow through
// internal/rng stream derivation or Kernel.Rand().
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "forbid package-level math/rand functions; use internal/rng streams or Kernel.Rand()",
	Run:  runGlobalRand,
}

func runGlobalRand(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath := p.PkgNameOf(sel)
			if !randPackages[pkgPath] {
				return true
			}
			obj, ok := p.Info.Uses[sel.Sel]
			if !ok {
				return true
			}
			fn, ok := obj.(*types.Func)
			if !ok || randConstructors[fn.Name()] {
				return true // types, vars, and seeded constructors are fine
			}
			p.Reportf(sel.Pos(), "package-level %s.%s draws from the process-global source; derive a stream with internal/rng or use Kernel.Rand()",
				pathBase(pkgPath), fn.Name())
			return true
		})
	}
}
