// Token mutex: the paper's §1 motivating use case — "in the token-based
// distributed mutual exclusion algorithm, when the current token holder
// leaves the critical section, the token must be passed to a successor,
// and this successor is indeed a local leader among all other nodes
// that are competing for the token."
//
// Each release is one local leader election. The backoff metric rewards
// waiting time (longer wait → shorter delay), so the election doubles
// as an approximate fairness scheduler — a taste of how freely the §2
// operator composes with application-chosen metrics.
//
//	go run ./examples/mutex
package main

import (
	"fmt"

	"routeless"
)

// waitPolicy maps accumulated waiting time onto the backoff: a node
// that has waited W of MaxWait gets a delay near zero, a fresh
// requester a delay near Lambda.
type waitPolicy struct {
	Lambda  routeless.Time
	MaxWait float64
	waited  func(id routeless.NodeID) float64
}

func (p waitPolicy) Backoff(ctx routeless.PolicyContext) (routeless.Time, bool) {
	frac := 1 - p.waited(ctx.Self)/p.MaxWait
	if frac < 0 {
		frac = 0
	}
	return routeless.Time(frac)*p.Lambda +
		routeless.Time(ctx.Rand.Float64()*0.1)*p.Lambda, true
}

func (p waitPolicy) Name() string { return "wait-time" }

func main() {
	const (
		nodes    = 6
		rounds   = 12
		holdTime = 5e-3 // seconds in the critical section
	)
	kernel := routeless.NewKernel(7)
	cluster := routeless.NewCluster(kernel, nodes, 50e-6, 2e-6, 0.05, kernel.Rand())
	cluster.ConnectAll()

	lastHeld := make([]float64, nodes) // when each node last left the CS
	held := make([]int, nodes)
	policy := waitPolicy{
		Lambda:  2e-3,
		MaxWait: float64(nodes) * holdTime * 4,
		waited: func(id routeless.NodeID) float64 {
			return float64(kernel.Now()) - lastHeld[id]
		},
	}

	electors := make([]*routeless.Elector, nodes)
	round := uint32(0)
	var grant func(holder routeless.NodeID)

	// The token holder is the arbiter of the next election: leaving the
	// critical section is the implicit synchronization point.
	release := func(holder routeless.NodeID) {
		round++
		ctx := routeless.PolicyContext{Rand: kernel.Rand()}
		for _, e := range electors {
			if e.ID() == holder {
				continue // the departing holder does not compete
			}
			e.ObserveSync(round, ctx)
		}
	}

	grant = func(holder routeless.NodeID) {
		held[holder]++
		fmt.Printf("t=%6.2fms  token -> node %v (held %d times, waited %.1fms)\n",
			kernel.Now().Millis(), holder, held[holder],
			(float64(kernel.Now())-lastHeld[holder])*1e3)
		kernel.Schedule(holdTime, func() {
			lastHeld[holder] = float64(kernel.Now())
			if round < rounds {
				release(holder)
			}
		})
	}

	for i := 0; i < nodes; i++ {
		e := routeless.NewElector(kernel, routeless.NodeID(i), cluster, policy)
		e.OnOutcome = func(o routeless.ElectionOutcome) {
			if o.Won {
				grant(o.Leader)
			}
		}
		electors[i] = e
		cluster.AttachElector(e)
	}

	// Node 0 starts with the token.
	lastHeld[0] = 0
	grant(0)
	kernel.Run()

	fmt.Println("\ntoken grants per node (wait-time metric ≈ round-robin fairness):")
	for i, h := range held {
		fmt.Printf("  node %d: %s (%d)\n", i, bar(h), h)
	}
}

func bar(n int) string {
	s := ""
	for i := 0; i < n; i++ {
		s += "#"
	}
	return s
}
