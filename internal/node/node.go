// Package node assembles the per-node protocol stack (radio, MAC,
// network protocol, application hook) and builds whole networks from a
// topology description. It also implements the paper's §4.3 failure
// model: a duty-cycle process that turns transceivers off a configured
// fraction of the time.
package node

import (
	"math/rand"

	"routeless/internal/geo"
	"routeless/internal/mac"
	"routeless/internal/packet"
	"routeless/internal/phy"
	"routeless/internal/sim"
)

// Protocol is a network-layer implementation (flooding variant or
// routing protocol). Exactly one protocol instance runs per node.
type Protocol interface {
	// Start wires the protocol to its node; called once, before any
	// traffic, with the node fully assembled.
	Start(n *Node)
	// OnDeliver sees every frame the MAC decodes (promiscuous), with
	// its receive power.
	OnDeliver(pkt *packet.Packet, rssiDBm float64)
	// OnSent reports a frame this node transmitted (broadcast done or
	// unicast acknowledged).
	OnSent(pkt *packet.Packet)
	// OnUnicastFailed reports a unicast frame that exhausted its
	// link-layer retries.
	OnUnicastFailed(pkt *packet.Packet)
	// Send originates size bytes of application data toward target.
	Send(target packet.NodeID, size int)
}

// Node is one simulated wireless node.
type Node struct {
	ID     packet.NodeID
	Pos    geo.Point
	Kernel *sim.Kernel
	// Ctl is the control-lane kernel for processes driven from outside
	// the node's own event flow (failure schedules, mobility waypoints).
	// On a sequential network it is Kernel; on a tiled network it is
	// the global kernel, whose handlers only run at epoch barriers.
	Ctl *sim.Kernel
	// Tile is the PDES tile this node lives on (0 when sequential).
	Tile  int
	Radio *phy.Radio
	MAC   *mac.MAC
	Net   Protocol
	Rng   *rand.Rand // network-layer random stream

	// OnAppReceive, if set, is invoked when the protocol delivers an
	// application packet addressed to this node.
	OnAppReceive func(pkt *packet.Packet)

	failing bool
}

// Deliver hands an application packet up from the protocol.
func (n *Node) Deliver(pkt *packet.Packet) {
	if n.OnAppReceive != nil {
		n.OnAppReceive(pkt)
	}
}

// Up reports whether the node's transceiver is currently operational.
func (n *Node) Up() bool { return n.Radio.On() }

// Fail turns the transceiver off and pauses the MAC.
func (n *Node) Fail() {
	if n.failing {
		return
	}
	n.failing = true
	n.Radio.TurnOff()
	n.MAC.Pause()
}

// Recover turns the transceiver back on and resumes the MAC.
func (n *Node) Recover() {
	if !n.failing {
		return
	}
	n.failing = false
	n.Radio.TurnOn()
	n.MAC.Resume()
}

// Sleep puts the transceiver into its low-power state and pauses the
// MAC — the voluntary power-down §4.2 says Routeless Routing permits
// even for nodes on active routes. Behavior matches Fail; only the
// energy accounting differs.
func (n *Node) Sleep() {
	if n.failing {
		return
	}
	n.failing = true
	n.Radio.Sleep()
	n.MAC.Pause()
}

// Wake resumes from Sleep.
func (n *Node) Wake() { n.Recover() }

// macAdapter forwards MAC events to the node's protocol; it keeps the
// Protocol interface free of the mac.Handler names.
type macAdapter struct{ n *Node }

func (a macAdapter) OnDeliver(p *packet.Packet, rssi float64) {
	if a.n.Net != nil {
		a.n.Net.OnDeliver(p, rssi)
	}
}

func (a macAdapter) OnSent(p *packet.Packet) {
	if a.n.Net != nil {
		a.n.Net.OnSent(p)
	}
}

func (a macAdapter) OnUnicastFailed(p *packet.Packet) {
	if a.n.Net != nil {
		a.n.Net.OnUnicastFailed(p)
	}
}
