// Command simfuzz runs the conservation-law scenario fuzzer
// (internal/fuzz): generated simulation scenarios executed under the
// oracle — every conservation law checked after an experiment-style
// collect, plus a same-seed bitwise re-run — with failing scenarios
// shrunk to minimal reproducers and written as replayable JSON
// fixtures.
//
// Bounded CI mode (deterministic — the same range always yields the
// identical verdict list):
//
//	simfuzz -seeds 1:300
//
// Unbounded soak mode (runs seeds from the range start until the
// wall-clock budget is spent):
//
//	simfuzz -seeds 1000: -budget 600
//
// Replay a committed fixture:
//
//	simfuzz -replay internal/fuzz/testdata/drain_negative_period.json
//
// Checkpoint cross-check mode (-snapshot) additionally runs every
// scenario through the snapshot/restore oracle: run to the midpoint,
// save, restore (replay-verified), finish, and compare final metrics
// bitwise against the uninterrupted run:
//
//	simfuzz -seeds 1:50 -snapshot
//
// Other flags: -out DIR (where failing fixtures land, default
// fuzz-failures), -shrink N (reducer evaluation budget per failure;
// 0 disables shrinking), -v (print passing seeds too).
//
// Exit status: 0 all scenarios passed (invalid-scenario generated
// seeds count as skips), 1 at least one simulator bug found, 2 usage
// or I/O error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"routeless/internal/fuzz"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// parseSeeds parses "A:B" (inclusive bounded range) or "A:" (unbounded,
// soak mode only).
func parseSeeds(s string) (lo, hi int64, unbounded bool, err error) {
	a, b, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, false, fmt.Errorf("-seeds wants A:B or A:, got %q", s)
	}
	lo, err = strconv.ParseInt(a, 10, 64)
	if err != nil {
		return 0, 0, false, fmt.Errorf("-seeds start: %w", err)
	}
	if b == "" {
		return lo, 0, true, nil
	}
	hi, err = strconv.ParseInt(b, 10, 64)
	if err != nil {
		return 0, 0, false, fmt.Errorf("-seeds end: %w", err)
	}
	if hi < lo {
		return 0, 0, false, fmt.Errorf("-seeds range %d:%d is empty", lo, hi)
	}
	return lo, hi, false, nil
}

func run(args []string) int {
	fs := flag.NewFlagSet("simfuzz", flag.ContinueOnError)
	var (
		seeds   = fs.String("seeds", "1:100", "seed range A:B (inclusive), or A: with -budget")
		budget  = fs.Float64("budget", 0, "soak mode: wall-clock seconds to keep drawing seeds (requires -seeds A:)")
		replay  = fs.String("replay", "", "replay one fixture file instead of generating scenarios")
		out     = fs.String("out", "fuzz-failures", "directory for failing-scenario fixtures")
		shrink  = fs.Int("shrink", 200, "shrinker evaluation budget per failure (0 = no shrinking)")
		verbose = fs.Bool("v", false, "print every seed's verdict, not just failures")
		maxN    = fs.Int("maxn", 0, "generator cap on node count (0 = default)")
		maxDur  = fs.Float64("maxdur", 0, "generator cap on traffic seconds (0 = default)")
		snapCk  = fs.Bool("snapshot", false, "checkpoint cross-check: also run each scenario as run-to-midpoint, save, restore, finish, and demand bitwise-identical final metrics")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var runner fuzz.Runner
	exec := runner.Run
	if *snapCk {
		exec = runner.RunSnapshot
	}

	if *replay != "" {
		fx, err := fuzz.LoadFixture(*replay)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simfuzz:", err)
			return 2
		}
		res := exec(fx.Scenario)
		fmt.Printf("replay %s: verdict=%s", *replay, res.Verdict)
		if res.Detail != "" {
			fmt.Printf(" detail=%s", firstLine(res.Detail))
		}
		fmt.Println()
		if res.Failed() {
			return 1
		}
		return 0
	}

	lo, hi, unbounded, err := parseSeeds(*seeds)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simfuzz:", err)
		return 2
	}
	if unbounded && *budget <= 0 {
		fmt.Fprintln(os.Stderr, "simfuzz: unbounded -seeds A: requires -budget")
		return 2
	}

	lim := fuzz.Limits{MaxN: *maxN, MaxDuration: *maxDur}
	var deadline time.Time
	if *budget > 0 {
		//lint:ignore wallclock soak budget is a harness stop condition, outside any simulation
		deadline = time.Now().Add(time.Duration(*budget * float64(time.Second)))
	}

	var pass, skip, fail int
	for seed := lo; ; seed++ {
		if unbounded {
			//lint:ignore wallclock soak budget is a harness stop condition, outside any simulation
			if !deadline.IsZero() && time.Now().After(deadline) {
				break
			}
		} else if seed > hi {
			break
		} else if !deadline.IsZero() {
			//lint:ignore wallclock soak budget is a harness stop condition, outside any simulation
			if time.Now().After(deadline) {
				fmt.Printf("budget spent at seed %d of %d:%d\n", seed, lo, hi)
				break
			}
		}

		sc := fuzz.Generate(seed, lim)
		res := exec(sc)
		switch {
		case res.Verdict == fuzz.VerdictPass:
			pass++
			if *verbose {
				fmt.Printf("seed=%d verdict=%s\n", seed, res.Verdict)
			}
		case res.Verdict == fuzz.VerdictInvalid:
			// A generated scenario the builder refused (typically an
			// unconnectable placement): a skip, not a bug.
			skip++
			if *verbose {
				fmt.Printf("seed=%d verdict=%s detail=%s\n", seed, res.Verdict, firstLine(res.Detail))
			}
		default:
			fail++
			fmt.Printf("seed=%d verdict=%s detail=%s\n", seed, res.Verdict, firstLine(res.Detail))
			if err := saveFailure(exec, *out, seed, sc, res, *shrink); err != nil {
				fmt.Fprintln(os.Stderr, "simfuzz:", err)
				return 2
			}
		}
	}

	fmt.Printf("simfuzz: %d pass, %d skip, %d fail\n", pass, skip, fail)
	if fail > 0 {
		return 1
	}
	return 0
}

// saveFailure shrinks the failing scenario (keeping the same verdict
// class as the reduction target, under the same oracle mode that found
// it) and writes the fixture.
func saveFailure(exec func(fuzz.Scenario) fuzz.Result, dir string, seed int64, sc fuzz.Scenario, res fuzz.Result, shrinkEvals int) error {
	min := sc
	if shrinkEvals > 0 {
		var evals int
		min, evals = fuzz.Shrink(sc, func(cand fuzz.Scenario) bool {
			return exec(cand).Verdict == res.Verdict
		}, shrinkEvals)
		fmt.Printf("seed=%d shrunk N=%d→%d duration=%g→%g flows=%d→%d faults=%d→%d (%d evals)\n",
			seed, sc.N, min.N, sc.Duration, min.Duration,
			len(sc.Flows), len(min.Flows), len(sc.Faults), len(min.Faults), evals)
	}
	fx := fuzz.Fixture{
		Scenario: min,
		Verdict:  res.Verdict,
		Detail:   firstLine(res.Detail),
		Note:     fmt.Sprintf("found by simfuzz seed %d", seed),
	}
	b, err := fx.Encode()
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, fmt.Sprintf("seed_%d_%s.json", seed, res.Verdict))
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return err
	}
	fmt.Printf("seed=%d fixture written to %s\n", seed, path)
	return nil
}

// firstLine trims a multi-line detail (panic stacks) to its head.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
