package geo

import (
	"math/rand"
	"testing"
)

// BenchmarkWithinRadius measures the channel's neighbor query on a
// paper-scale field (500 nodes, 2 km², 550 m cutoff).
func BenchmarkWithinRadius(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	rect := NewRect(2000, 2000)
	pts := UniformPoints(r, rect, 500)
	g := NewGrid(rect, 275, pts)
	var buf []int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = g.WithinRadius(buf[:0], pts[i%len(pts)], 550, i%len(pts))
	}
}

// BenchmarkWithinRadiusBrute is the O(n) baseline the grid replaces.
func BenchmarkWithinRadiusBrute(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	rect := NewRect(2000, 2000)
	pts := UniformPoints(r, rect, 500)
	var buf []int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		c := pts[i%len(pts)]
		for j, p := range pts {
			if j != i%len(pts) && p.Dist(c) <= 550 {
				buf = append(buf, j)
			}
		}
	}
}

// BenchmarkNearest measures endpoint anchoring queries.
func BenchmarkNearest(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	rect := NewRect(2000, 2000)
	pts := UniformPoints(r, rect, 500)
	g := NewGrid(rect, 200, pts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Nearest(Point{X: float64(i % 2000), Y: float64((i * 7) % 2000)})
	}
}
