// Package propagation implements the large- and small-scale radio
// propagation models the paper relies on (§3 cites Rappaport: free
// space, two-ray ground, Rayleigh), plus log-normal shadowing, and the
// calibration helpers that turn "transmission range of roughly 250
// meters" (§4.3) into concrete power thresholds.
//
// Power bookkeeping convention: transmit power is given in dBm, models
// return received power in dBm. Conversions to/from milliwatts are
// provided for the SINR arithmetic in internal/phy.
package propagation

import (
	"fmt"
	"math"
	"math/rand"
)

// SpeedOfLight in meters per second; used for propagation delay and
// wavelength computation.
const SpeedOfLight = 299792458.0

// DBmToMilliwatt converts dBm to mW.
func DBmToMilliwatt(dbm float64) float64 { return math.Pow(10, dbm/10) }

// MilliwattToDBm converts mW to dBm.
func MilliwattToDBm(mw float64) float64 {
	if mw <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(mw)
}

// Model computes deterministic large-scale path loss.
type Model interface {
	// ReceivedPower returns the power (dBm) observed at distance d
	// meters from a transmitter emitting txDBm. d is clamped to the
	// model's near-field reference distance.
	ReceivedPower(txDBm, d float64) float64
	// Name identifies the model in experiment configs and reports.
	Name() string
}

// FreeSpace is the Friis free-space model used for all of the paper's
// simulations ("In all the simulations, the free space propagation
// model was used", §3):
//
//	Pr = Pt · Gt · Gr · λ² / ((4π)² · d² · L)
type FreeSpace struct {
	// FrequencyHz is the carrier frequency; 914 MHz (the classic
	// WaveLAN band used by ns-2 and SENSE) by default.
	FrequencyHz float64
	// GainTx, GainRx are antenna gains (linear); 1.0 by default.
	GainTx, GainRx float64
	// SystemLoss L ≥ 1 (linear); 1.0 by default.
	SystemLoss float64
	// RefDistance is the near-field cutoff in meters below which the
	// model is not valid; received power is evaluated at this distance
	// for anything closer. Default 1 m.
	RefDistance float64
}

// NewFreeSpace returns the default free-space model at 914 MHz with
// unity gains.
func NewFreeSpace() *FreeSpace {
	return &FreeSpace{FrequencyHz: 914e6, GainTx: 1, GainRx: 1, SystemLoss: 1, RefDistance: 1}
}

// Wavelength returns λ in meters.
func (m *FreeSpace) Wavelength() float64 { return SpeedOfLight / m.FrequencyHz }

// Name implements Model.
func (m *FreeSpace) Name() string { return "free-space" }

// RangeKey implements RangeKeyer: the full parameter set, by value.
func (m *FreeSpace) RangeKey() (any, bool) { return *m, true }

// ReceivedPower implements Model.
func (m *FreeSpace) ReceivedPower(txDBm, d float64) float64 {
	if d < m.RefDistance {
		d = m.RefDistance
	}
	lambda := m.Wavelength()
	gain := m.GainTx * m.GainRx * lambda * lambda /
		((4 * math.Pi) * (4 * math.Pi) * d * d * m.SystemLoss)
	return txDBm + 10*math.Log10(gain)
}

// TwoRay is the two-ray ground-reflection model. Below the crossover
// distance it reduces to free space; beyond it, power falls with d⁴:
//
//	Pr = Pt · Gt · Gr · ht² · hr² / (d⁴ · L)
type TwoRay struct {
	FreeSpace
	// HeightTx, HeightRx are antenna heights above ground in meters
	// (1.5 m default, matching ns-2).
	HeightTx, HeightRx float64
}

// NewTwoRay returns the default two-ray model (1.5 m antennas, 914 MHz).
func NewTwoRay() *TwoRay {
	return &TwoRay{FreeSpace: *NewFreeSpace(), HeightTx: 1.5, HeightRx: 1.5}
}

// Name implements Model.
func (m *TwoRay) Name() string { return "two-ray" }

// RangeKey implements RangeKeyer. The TwoRay value embeds FreeSpace,
// so the key differs from a FreeSpace key of equal numbers by dynamic
// type alone.
func (m *TwoRay) RangeKey() (any, bool) { return *m, true }

// Crossover returns the distance (meters) at which the two-ray ground
// term takes over from free space: d_c = 4π·ht·hr/λ.
func (m *TwoRay) Crossover() float64 {
	return 4 * math.Pi * m.HeightTx * m.HeightRx / m.Wavelength()
}

// ReceivedPower implements Model.
func (m *TwoRay) ReceivedPower(txDBm, d float64) float64 {
	if d < m.RefDistance {
		d = m.RefDistance
	}
	if d < m.Crossover() {
		return m.FreeSpace.ReceivedPower(txDBm, d)
	}
	gain := m.GainTx * m.GainRx * m.HeightTx * m.HeightTx * m.HeightRx * m.HeightRx /
		(d * d * d * d * m.SystemLoss)
	return txDBm + 10*math.Log10(gain)
}

// LogDistance is the log-distance path-loss model with configurable
// exponent, the standard generalization used for indoor/obstructed
// environments.
type LogDistance struct {
	// Base provides the reference-distance power.
	Base Model
	// RefDistance d0 (meters) where Base is evaluated.
	RefDistance float64
	// Exponent n; 2 = free space, 4 ≈ obstructed.
	Exponent float64
}

// NewLogDistance wraps base with a path-loss exponent beyond d0.
func NewLogDistance(base Model, d0, n float64) *LogDistance {
	return &LogDistance{Base: base, RefDistance: d0, Exponent: n}
}

// Name implements Model.
func (m *LogDistance) Name() string { return fmt.Sprintf("log-distance(n=%.1f)", m.Exponent) }

// logDistanceKey is LogDistance's comparable RangeKey form: the base
// model's own key plus the wrapper parameters.
type logDistanceKey struct {
	base   any
	d0, ex float64
}

// RangeKey implements RangeKeyer; capturable only when the base model
// is itself keyable.
func (m *LogDistance) RangeKey() (any, bool) {
	rk, ok := m.Base.(RangeKeyer)
	if !ok {
		return nil, false
	}
	base, ok := rk.RangeKey()
	if !ok {
		return nil, false
	}
	return logDistanceKey{base, m.RefDistance, m.Exponent}, true
}

// ReceivedPower implements Model.
func (m *LogDistance) ReceivedPower(txDBm, d float64) float64 {
	if d < m.RefDistance {
		d = m.RefDistance
	}
	p0 := m.Base.ReceivedPower(txDBm, m.RefDistance)
	return p0 - 10*m.Exponent*math.Log10(d/m.RefDistance)
}

// Fader adds a stochastic small-scale component on top of a
// deterministic model. Faders consume randomness, so they take the
// channel's random stream explicitly; the deterministic Model interface
// stays pure.
type Fader interface {
	// Fade returns the faded received power (dBm) given the
	// deterministic mean power.
	Fade(r *rand.Rand, meanDBm float64) float64
	Name() string
}

// NoFade is the identity fader.
type NoFade struct{}

// Fade implements Fader.
func (NoFade) Fade(_ *rand.Rand, meanDBm float64) float64 { return meanDBm }

// Name implements Fader.
func (NoFade) Name() string { return "none" }

// LogNormalShadow adds a zero-mean Gaussian (in dB) with the given
// standard deviation — the classic shadowing model.
type LogNormalShadow struct {
	// SigmaDB is the dB standard deviation (4–12 dB typical).
	SigmaDB float64
}

// Fade implements Fader.
func (s LogNormalShadow) Fade(r *rand.Rand, meanDBm float64) float64 {
	return meanDBm + r.NormFloat64()*s.SigmaDB
}

// Name implements Fader.
func (s LogNormalShadow) Name() string { return fmt.Sprintf("shadow(σ=%.1fdB)", s.SigmaDB) }

// Rayleigh models small-scale multipath fading: received power is the
// mean scaled by an exponentially distributed factor (unit mean). The
// paper notes (§3) that under Rayleigh "the signal strength may vary
// dramatically because of the multiple path interference" while the
// large-scale distance trend still holds — SSAF's robustness to this is
// exercised in the ablation tests.
type Rayleigh struct{}

// Fade implements Fader.
func (Rayleigh) Fade(r *rand.Rand, meanDBm float64) float64 {
	// Exponential with unit mean in the power (linear) domain.
	f := r.ExpFloat64()
	if f <= 0 {
		f = math.SmallestNonzeroFloat64
	}
	return meanDBm + 10*math.Log10(f)
}

// Name implements Fader.
func (Rayleigh) Name() string { return "rayleigh" }

// RangeFor returns the maximum distance at which the model delivers at
// least thresholdDBm for a transmitter at txDBm, found by bisection
// over [lo, hi]. It returns 0 when even lo is below threshold and hi
// when hi is still above threshold.
func RangeFor(m Model, txDBm, thresholdDBm, lo, hi float64) float64 {
	if m.ReceivedPower(txDBm, lo) < thresholdDBm {
		return 0
	}
	if m.ReceivedPower(txDBm, hi) >= thresholdDBm {
		return hi
	}
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if m.ReceivedPower(txDBm, mid) >= thresholdDBm {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// ThresholdFor returns the receive threshold (dBm) that yields the
// desired range for the model and transmit power: the inverse of
// RangeFor. This is how experiments realize "transmission range of
// roughly 250 meters".
func ThresholdFor(m Model, txDBm, rangeMeters float64) float64 {
	return m.ReceivedPower(txDBm, rangeMeters)
}

// Delay returns the propagation delay (seconds) over d meters. The
// paper's implicit-synchronization argument assumes this is negligible
// relative to backoff scales; the simulator still models it.
func Delay(d float64) float64 { return d / SpeedOfLight }
