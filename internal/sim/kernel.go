// Package sim provides a sequential discrete-event simulation kernel:
// a virtual clock, an event heap with deterministic tie-breaking, and
// cancellable timers. It is the substrate every other package in this
// repository runs on.
//
// The kernel is deliberately single-threaded: wireless protocol
// simulations are causally ordered by the event heap, and determinism
// (same seed, same schedule, same results) matters more than intra-run
// parallelism. Parallelism belongs one level up, across runs (see
// internal/parallel).
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
)

// Time is simulation time in seconds since the start of the run.
type Time float64

// Infinity is a time later than any schedulable event.
const Infinity Time = Time(math.MaxFloat64)

// Duration helpers.

// Millis returns t expressed in milliseconds.
func (t Time) Millis() float64 { return float64(t) * 1e3 }

// Micros returns t expressed in microseconds.
func (t Time) Micros() float64 { return float64(t) * 1e6 }

// Seconds returns t as a plain float64 number of seconds.
func (t Time) Seconds() float64 { return float64(t) }

// Event is a scheduled callback. Events are owned by the Kernel; user
// code holds *Event only to cancel or inspect it.
type Event struct {
	at       Time
	fn       func()
	index    int // position in the heap, -1 when not queued
	tagIndex int // position in the tagged index, -1 when untagged
	kernel   *Kernel
}

// At returns the time the event is (or was) scheduled to fire.
func (e *Event) At() Time { return e.at }

// Pending reports whether the event is still queued to fire.
func (e *Event) Pending() bool { return e != nil && e.index >= 0 }

// heapNode is one slot of the event queue. The ordering keys live
// inline in the heap array — a sift compares adjacent array slots
// instead of dereferencing two *Event pointers, which is where most of
// container/heap's cache misses came from.
type heapNode struct {
	at  Time
	seq uint64 // insertion order, breaks ties deterministically
	e   *Event
}

// before orders nodes by (time, insertion sequence). The pair is a
// total order — seq is unique — so the pop sequence is independent of
// heap shape, which is what makes the heap arity an implementation
// detail rather than a determinism concern.
func (n heapNode) before(o heapNode) bool {
	//lint:ignore floateq stored timestamps are compared verbatim for tie-breaking, never recomputed
	if n.at != o.at {
		return n.at < o.at
	}
	return n.seq < o.seq
}

// EventPool is a free list of recycled Event structs; DES workloads
// allocate millions of events and recycling them keeps GC pressure
// flat without reaching for unsafe tricks. The pool is allowed to grow
// with the peak queue depth (see recycle) so steady-state runs stop
// allocating entirely.
//
// A pool may outlive the kernel that filled it: a sweep worker hands
// one pool to each replication's kernel in turn, so after the first
// cell warms it, later cells schedule out of recycled memory. Pooled
// events carry no kernel state (recycle clears fn and kernel), but the
// pool itself is plain mutable state — it must never be shared between
// kernels that run concurrently.
type EventPool struct {
	free []*Event

	// live counts events currently checked out (allocated or reused via
	// At and not yet recycled); peak is its high-water mark since the
	// last Reset. Together they are the shrink watermark: a pool that
	// served a million-event cell and is then reused for a hundred-event
	// cell trims back to what the recent workload actually needed
	// instead of pinning the largest cell's memory for the whole sweep.
	live int
	peak int
}

// NewEventPool returns an empty pool, ready to hand to NewKernelPooled.
func NewEventPool() *EventPool { return &EventPool{} }

// FreeLen returns the current free-list length (spare events held).
func (p *EventPool) FreeLen() int { return len(p.free) }

// Live returns the number of events currently checked out. Live and
// Peak are behavioral state — they rebuild identically when the same
// schedule replays — while FreeLen is allocation history (how warm the
// pool happened to be), which NewKernelPooled's bit-for-bit equivalence
// contract explicitly keeps out of results; snapshot fingerprints hash
// the former and ignore the latter.
func (p *EventPool) Live() int { return p.live }

// Peak returns the high-water checked-out event count since the last
// Reset — the watermark Reset shrinks to.
func (p *EventPool) Peak() int { return p.peak }

// Reset shrinks the free list to the watermark of the workload since
// the previous Reset and restarts tracking. Call it between runs (no
// kernel may be live on the pool): the next run of similar size reuses
// every retained event, while a smaller run no longer pays the largest
// predecessor's footprint. Dropped slots are nil'd so the events are
// collectable, and a grossly oversized backing array is reallocated so
// the slice header itself cannot pin the old peak.
func (p *EventPool) Reset() {
	keep := p.peak
	if keep > len(p.free) {
		keep = len(p.free)
	}
	for i := keep; i < len(p.free); i++ {
		p.free[i] = nil
	}
	p.free = p.free[:keep]
	if cap(p.free) > 2*keep+64 {
		p.free = append(make([]*Event, 0, keep), p.free...)
	}
	p.live, p.peak = 0, 0
}

// Kernel is a discrete-event scheduler. The zero value is not usable;
// construct with NewKernel.
type Kernel struct {
	now       Time
	seq       uint64
	events    []heapNode // 4-ary min-heap ordered by (at, seq)
	rng       *rand.Rand
	processed uint64
	horizon   Time

	// Tagged-event index: a secondary min-heap (by time only) over the
	// subset of pending events registered via AtTagged/ScheduleTagged.
	// PDES uses it to lower-bound the next transmission-capable event
	// without scanning the main heap. Off by default: until
	// EnableTagTracking is called, tagging is a no-op and AtTagged is
	// exactly At — same seq numbers, same pop order, zero overhead.
	trackTags bool
	tagged    []*Event

	// pool recycles Event structs. Private to the kernel by default;
	// NewKernelPooled substitutes an externally owned pool so the free
	// list survives the kernel and warms the next run.
	pool *EventPool
}

// NewKernel returns a kernel whose clock starts at 0 and whose random
// stream is seeded with seed. All randomness used by simulation
// components should derive from Rand() (directly or via rng.Split) so a
// run is reproducible from its seed.
func NewKernel(seed int64) *Kernel {
	return NewKernelPooled(seed, NewEventPool())
}

// NewKernelPooled is NewKernel drawing recycled Event structs from an
// externally owned pool. Recycling never changes event semantics —
// every field is reinitialized on reuse — so a pooled kernel is
// bit-for-bit equivalent to a fresh one; only the allocation count
// differs. The caller must ensure no two concurrently running kernels
// share one pool.
func NewKernelPooled(seed int64, pool *EventPool) *Kernel {
	if pool == nil {
		pool = NewEventPool()
	}
	return &Kernel{
		rng:     rand.New(rand.NewSource(seed)),
		horizon: Infinity,
		pool:    pool,
	}
}

// Now returns the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's master random stream.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Processed returns the number of events executed so far.
func (k *Kernel) Processed() uint64 { return k.processed }

// Pending returns the number of events currently queued.
func (k *Kernel) Pending() int { return len(k.events) }

// Seq returns the scheduling sequence counter: the total number of
// events ever queued on this kernel. Together with Now, Processed, and
// the pending (at, seq) keys it pins the scheduler's externally
// observable state exactly — a restored kernel whose Seq differs would
// break ties differently on the very next same-time scheduling race.
func (k *Kernel) Seq() uint64 { return k.seq }

// EventKey is one pending event's position in the execution order.
type EventKey struct {
	At  Time
	Seq uint64
}

// PendingKeys returns the (at, seq) key of every pending event in
// ascending execution order. The heap's internal layout is shape-
// dependent, but the sorted key sequence is not, so this is the
// canonical form snapshot fingerprints hash. It allocates; not for hot
// paths.
func (k *Kernel) PendingKeys() []EventKey {
	keys := make([]EventKey, len(k.events))
	for i, hn := range k.events {
		keys[i] = EventKey{At: hn.at, Seq: hn.seq}
	}
	slices.SortFunc(keys, func(a, b EventKey) int {
		if a.At < b.At {
			return -1
		}
		if a.At > b.At {
			return 1
		}
		if a.Seq < b.Seq {
			return -1
		}
		if a.Seq > b.Seq {
			return 1
		}
		return 0
	})
	return keys
}

// Pool returns the kernel's event pool (never nil: NewKernelPooled
// substitutes a private pool when handed none).
func (k *Kernel) Pool() *EventPool { return k.pool }

// Schedule queues fn to run delay seconds after the current time and
// returns the event handle. A negative delay panics: an event in the
// past would violate causality.
func (k *Kernel) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v at t=%v", delay, k.now))
	}
	return k.At(k.now+delay, fn)
}

// At queues fn to run at absolute time t (which must not precede the
// current time) and returns the event handle.
func (k *Kernel) At(t Time, fn func()) *Event {
	if t < k.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, k.now))
	}
	if fn == nil {
		panic("sim: nil event callback")
	}
	var e *Event
	if n := len(k.pool.free); n > 0 {
		e = k.pool.free[n-1]
		k.pool.free = k.pool.free[:n-1]
	} else {
		e = &Event{}
	}
	k.pool.live++
	if k.pool.live > k.pool.peak {
		k.pool.peak = k.pool.live
	}
	e.at = t
	e.fn = fn
	e.kernel = k
	e.index = len(k.events)
	e.tagIndex = -1
	k.events = append(k.events, heapNode{at: t, seq: k.seq, e: e})
	k.seq++
	k.siftUp(len(k.events) - 1)
	return e
}

// EnableTagTracking turns on the tagged-event index. Call before any
// AtTagged/ScheduleTagged whose tag should be tracked; kernels that
// never enable it pay nothing for tagging.
func (k *Kernel) EnableTagTracking() { k.trackTags = true }

// AtTagged is At plus membership in the tagged-event index (when
// tracking is enabled). Tagging is scheduling-neutral: the event gets
// the same seq number and fires in the same order as an At event.
func (k *Kernel) AtTagged(t Time, fn func()) *Event {
	e := k.At(t, fn)
	if k.trackTags {
		k.tagPush(e)
	}
	return e
}

// ScheduleTagged is Schedule plus membership in the tagged-event index.
func (k *Kernel) ScheduleTagged(delay Time, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v at t=%v", delay, k.now))
	}
	return k.AtTagged(k.now+delay, fn)
}

// PeekTime returns the timestamp of the earliest pending event, or
// Infinity when the queue is empty.
func (k *Kernel) PeekTime() Time {
	if len(k.events) == 0 {
		return Infinity
	}
	return k.events[0].at
}

// PeekTagged returns the timestamp of the earliest pending tagged
// event, or Infinity when none is pending.
func (k *Kernel) PeekTagged() Time {
	if len(k.tagged) == 0 {
		return Infinity
	}
	return k.tagged[0].at
}

// tagPush inserts e into the tagged index (binary min-heap by time;
// ties in arbitrary order — only the minimum timestamp is ever read).
func (k *Kernel) tagPush(e *Event) {
	i := len(k.tagged)
	k.tagged = append(k.tagged, e)
	e.tagIndex = i
	for i > 0 {
		parent := (i - 1) >> 1
		p := k.tagged[parent]
		if p.at <= e.at {
			break
		}
		k.tagged[i] = p
		p.tagIndex = i
		i = parent
	}
	k.tagged[i] = e
	e.tagIndex = i
}

// tagRemove deletes e from the tagged index.
func (k *Kernel) tagRemove(e *Event) {
	i := e.tagIndex
	e.tagIndex = -1
	n := len(k.tagged) - 1
	last := k.tagged[n]
	k.tagged[n] = nil
	k.tagged = k.tagged[:n]
	if i == n {
		return
	}
	k.tagged[i] = last
	last.tagIndex = i
	// The displaced event can be out of order in either direction.
	for {
		child := i<<1 + 1
		if child >= n {
			break
		}
		if c2 := child + 1; c2 < n && k.tagged[c2].at < k.tagged[child].at {
			child = c2
		}
		if k.tagged[child].at >= last.at {
			break
		}
		k.tagged[i] = k.tagged[child]
		k.tagged[i].tagIndex = i
		i = child
	}
	k.tagged[i] = last
	last.tagIndex = i
	for i > 0 {
		parent := (i - 1) >> 1
		p := k.tagged[parent]
		if p.at <= last.at {
			break
		}
		k.tagged[i] = p
		p.tagIndex = i
		i = parent
	}
	k.tagged[i] = last
	last.tagIndex = i
}

// Cancel removes a pending event. Cancelling a nil, already-fired or
// already-cancelled event is a no-op, so callers can cancel
// unconditionally.
func (k *Kernel) Cancel(e *Event) {
	if e == nil || e.index < 0 || e.kernel != k {
		return
	}
	if e.tagIndex >= 0 {
		k.tagRemove(e)
	}
	i := e.index
	n := len(k.events) - 1
	last := k.events[n]
	k.events[n] = heapNode{}
	k.events = k.events[:n]
	e.index = -1
	if i < n {
		k.events[i] = last
		last.e.index = i
		// The displaced event can be out of order in either direction.
		k.siftDown(i)
		if last.e.index == i {
			k.siftUp(i)
		}
	}
	k.recycle(e)
}

func (k *Kernel) recycle(e *Event) {
	e.fn = nil
	e.kernel = nil
	k.pool.live--
	// Retain enough spares to cover the live queue: once the free list
	// matches the peak in-flight event count, every At() is a reuse.
	if len(k.pool.free) < len(k.events)+64 {
		k.pool.free = append(k.pool.free, e)
	}
}

// Step executes the earliest pending event. It returns false when the
// queue is empty or the next event lies beyond the horizon.
func (k *Kernel) Step() bool {
	if len(k.events) == 0 {
		return false
	}
	root := k.events[0]
	if root.at > k.horizon {
		return false
	}
	e := root.e
	n := len(k.events) - 1
	last := k.events[n]
	k.events[n] = heapNode{}
	k.events = k.events[:n]
	if n > 0 {
		k.events[0] = last
		last.e.index = 0
		k.siftDown(0)
	}
	e.index = -1
	if e.tagIndex >= 0 {
		k.tagRemove(e)
	}
	k.now = root.at
	fn := e.fn
	k.recycle(e)
	k.processed++
	fn()
	return true
}

// Run executes events until the queue drains or the horizon passes.
func (k *Kernel) Run() {
	for k.Step() {
	}
	if k.horizon < Infinity && k.now < k.horizon {
		k.now = k.horizon
	}
}

// RunUntil executes events with timestamps not exceeding t, then
// advances the clock to t. It is legal to call RunUntil repeatedly with
// increasing times.
func (k *Kernel) RunUntil(t Time) {
	if t < k.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) before now %v", t, k.now))
	}
	old := k.horizon
	k.horizon = t
	for k.Step() {
	}
	k.horizon = old
	k.now = t
}

// RunUntilBarrier executes events with timestamps strictly before t,
// then advances the clock to t. Unlike RunUntil, events at exactly t
// stay pending: t is a PDES epoch barrier, and events on the barrier
// belong to the next window (after cross-tile deliveries at t have
// been merged in).
func (k *Kernel) RunUntilBarrier(t Time) {
	if t < k.now {
		panic(fmt.Sprintf("sim: RunUntilBarrier(%v) before now %v", t, k.now))
	}
	for len(k.events) > 0 && k.events[0].at < t {
		k.Step()
	}
	k.now = t
}

// SetHorizon caps Run: events scheduled after t never execute. Use
// Infinity to remove the cap.
func (k *Kernel) SetHorizon(t Time) { k.horizon = t }

// The event queue is a 4-ary min-heap stored implicitly in k.events:
// children of node i live at 4i+1..4i+4. Compared to the binary
// container/heap it replaces, the typed heap avoids interface boxing on
// every push/pop, halves the tree depth (shorter sift paths through a
// millions-deep event stream), and lets the sift loops hold the moving
// event in a register instead of swapping element pairs through the
// slice. The comparator is the same (at, seq) total order, so pop order
// — and therefore every simulation result — is unchanged.

// siftUp moves the node at index i toward the root until its parent is
// not after it.
func (k *Kernel) siftUp(i int) {
	h := k.events
	nd := h[i]
	for i > 0 {
		parent := (i - 1) >> 2
		p := h[parent]
		if !nd.before(p) {
			break
		}
		h[i] = p
		p.e.index = i
		i = parent
	}
	h[i] = nd
	nd.e.index = i
}

// siftDown moves the node at index i toward the leaves until no child
// precedes it.
func (k *Kernel) siftDown(i int) {
	h := k.events
	n := len(h)
	nd := h[i]
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		best := first
		bn := h[first]
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if cn := h[c]; cn.before(bn) {
				best, bn = c, cn
			}
		}
		if !bn.before(nd) {
			break
		}
		h[i] = bn
		bn.e.index = i
		i = best
	}
	h[i] = nd
	nd.e.index = i
}
