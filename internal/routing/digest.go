package routing

import (
	"slices"

	"routeless/internal/digest"
	"routeless/internal/packet"
	"routeless/internal/sim"
)

// The sorted-key helpers below are the deterministic iteration surface
// for every map in this package's digests: FlowKey maps sort by
// (Origin, Kind, Seq), NodeID maps numerically.

func sortedFlowKeys[V any](m map[packet.FlowKey]V) []packet.FlowKey {
	keys := make([]packet.FlowKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.SortFunc(keys, func(a, b packet.FlowKey) int {
		if a.Origin != b.Origin {
			return int(a.Origin) - int(b.Origin)
		}
		if a.Kind != b.Kind {
			return int(a.Kind) - int(b.Kind)
		}
		if a.Seq != b.Seq {
			if a.Seq < b.Seq {
				return -1
			}
			return 1
		}
		return 0
	})
	return keys
}

func sortedNodeKeys[V any](m map[packet.NodeID]V) []packet.NodeID {
	keys := make([]packet.NodeID, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

func digestPkt(h *digest.Hash, p *packet.Packet) {
	if p == nil {
		h.Bool(false)
		return
	}
	h.Bool(true)
	h.Uint64(p.UID)
	h.Int64(int64(p.Origin))
	h.Int64(int64(p.Target))
	h.Byte(byte(p.Kind))
	h.Uint64(uint64(p.Seq))
	h.Int(p.HopCount)
	h.Int(p.ExpectedHops)
	h.Int(p.TTL)
	h.Int(p.Size)
	h.Float64(float64(p.CreatedAt))
}

// DigestState folds the active hop-count table into h in node order.
func (t *ActiveTable) DigestState(h *digest.Hash) {
	h.Int(len(t.entries))
	for _, id := range sortedNodeKeys(t.entries) {
		e := t.entries[id]
		h.Int64(int64(id))
		h.Int(e.hops)
		h.Uint64(uint64(e.seq))
		h.Float64(float64(e.updated))
	}
}

func (s discoverySet) digestState(h *digest.Hash) {
	h.Int(len(s))
	for _, id := range sortedNodeKeys(s) {
		d := s[id]
		h.Int64(int64(id))
		h.Int(d.retries)
		h.Int(len(d.queue))
		for _, pd := range d.queue {
			h.Int(pd.size)
			h.Float64(float64(pd.created))
		}
	}
}

func digestRepairStarts(h *digest.Hash, m map[packet.NodeID]sim.Time) {
	h.Int(len(m))
	for _, id := range sortedNodeKeys(m) {
		h.Int64(int64(id))
		h.Float64(float64(m[id]))
	}
}

// DigestState folds one node's Routeless Routing state into h: the
// sequence counter, the active table, both dedup caches, every relay
// election state machine (sorted by flow key), the pending discovery
// rebroadcasts, and the per-target discovery bookkeeping. Timers are
// captured by the kernel's pending-event digest.
func (r *Routeless) DigestState(h *digest.Hash) {
	h.Uint64(uint64(r.seq))
	r.table.DigestState(h)
	r.floodDedup.DigestState(h)
	r.consumed.DigestState(h)

	h.Int(len(r.relays))
	for _, k := range sortedFlowKeys(r.relays) {
		rs := r.relays[k]
		k.DigestTo(h)
		h.Byte(byte(rs.phase))
		h.Int(rs.armedHop)
		h.Int64(int64(rs.armedFrom))
		h.Int(rs.txHop)
		h.Int(rs.retries)
		h.Int(rs.reAcks)
		h.Float64(float64(rs.created))
		h.Float64(float64(rs.repairStart))
		digestPkt(h, rs.fwd)
		digestPkt(h, rs.inflight)
	}

	h.Int(len(r.discPending))
	for _, k := range sortedFlowKeys(r.discPending) {
		df := r.discPending[k]
		k.DigestTo(h)
		h.Bool(df.queued)
		h.Float64(float64(df.created))
		digestPkt(h, df.fwd)
	}

	r.discovering.digestState(h)
}

// DigestState folds one node's AODV state into h: sequence and RREQ-id
// counters, the routing table (sorted by destination), neighbor
// last-heard times, both dedup caches, the salvage queues, repair
// timestamps, and discovery bookkeeping.
func (a *AODV) DigestState(h *digest.Hash) {
	h.Uint64(uint64(a.seqNo))
	h.Uint64(uint64(a.rreqID))

	h.Int(len(a.routes))
	for _, id := range sortedNodeKeys(a.routes) {
		rt := a.routes[id]
		h.Int64(int64(id))
		h.Int64(int64(rt.nextHop))
		h.Int(rt.hops)
		h.Uint64(uint64(rt.seq))
		h.Float64(float64(rt.expiry))
	}

	h.Int(len(a.neighbors))
	for _, id := range sortedNodeKeys(a.neighbors) {
		h.Int64(int64(id))
		h.Float64(float64(a.neighbors[id]))
	}

	a.rreqSeen.DigestState(h)
	a.consumed.DigestState(h)

	h.Int(len(a.salvage))
	for _, id := range sortedNodeKeys(a.salvage) {
		h.Int64(int64(id))
		h.Int(len(a.salvage[id]))
		for _, p := range a.salvage[id] {
			digestPkt(h, p)
		}
	}
	digestRepairStarts(h, a.repairStart)

	a.discovering.digestState(h)
}

// DigestState folds one node's gradient-routing state into h: the
// sequence counter, the hop-gradient table, all three dedup caches,
// repair timestamps, and discovery bookkeeping.
func (g *Gradient) DigestState(h *digest.Hash) {
	h.Uint64(uint64(g.seq))
	g.table.DigestState(h)
	g.floodDedup.DigestState(h)
	g.fwdDedup.DigestState(h)
	g.consumed.DigestState(h)
	digestRepairStarts(h, g.repairStart)
	g.discovering.digestState(h)
}
