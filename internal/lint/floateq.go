package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between floating-point operands outside
// _test.go files. Two computed floats that "should" be equal rarely
// are; code that branches on exact equality of computed values behaves
// differently across architectures, compiler versions, and refactors —
// which breaks bit-for-bit reproducibility promises.
//
// Two shapes are exempt because they are exact by construction:
//
//   - comparison against a compile-time constant (x == 0,
//     t != sim.Infinity): sentinel values are assigned, never computed,
//     so the comparison is a tag check, not a numeric one;
//   - comparison of an expression with itself (x != x), the standard
//     NaN test.
//
// Genuinely intentional exact comparisons (event-heap tie-breaking on
// identical stored timestamps) carry //lint:ignore floateq <reason>.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "flag ==/!= between computed floating-point values outside tests",
	Run:  runFloatEq,
}

func runFloatEq(p *Pass) {
	for _, f := range p.Files {
		if p.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(p.TypeOf(be.X)) || !isFloat(p.TypeOf(be.Y)) {
				return true
			}
			if isConstExpr(p, be.X) || isConstExpr(p, be.Y) {
				return true
			}
			if sameExpr(p.Fset, be.X, be.Y) {
				return true // x != x is the NaN idiom
			}
			p.Reportf(be.OpPos, "%s between computed floating-point values is representation-dependent; compare with a tolerance or restructure around exact sentinels", be.Op)
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConstExpr(p *Pass, e ast.Expr) bool {
	if p.Info == nil {
		return false
	}
	tv, ok := p.Info.Types[e]
	return ok && tv.Value != nil
}

func sameExpr(fset *token.FileSet, a, b ast.Expr) bool {
	var ba, bb bytes.Buffer
	if printer.Fprint(&ba, fset, a) != nil || printer.Fprint(&bb, fset, b) != nil {
		return false
	}
	return ba.String() == bb.String()
}
