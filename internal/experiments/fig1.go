package experiments

import (
	"fmt"

	"routeless/internal/flood"
	"routeless/internal/geo"
	"routeless/internal/metrics"
	"routeless/internal/node"
	"routeless/internal/phy"
	"routeless/internal/propagation"
	"routeless/internal/rng"
	"routeless/internal/sim"
	"routeless/internal/stats"
	"routeless/internal/sweep"
	"routeless/internal/traffic"
)

// Fig1Config reproduces Figure 1: SSAF versus counter-1 flooding over
// the packet generation interval (§3). Paper scale: 100 nodes in
// 1000×1000 m, free space, 50 random connections.
type Fig1Config struct {
	Nodes       int       // default 100
	Terrain     float64   // square side, default 1000
	Range       float64   // default 250
	Connections int       // default 50
	Intervals   []float64 // x-axis, seconds; default 0.5..10
	Duration    float64   // traffic seconds per run; default 30
	Seeds       []int64   // replications; default {1,2,3}
	Workers     int       `json:"-"` // parallelism; default GOMAXPROCS
	Tiles       int       `json:"-"` // PDES tiles per run; default 1 (sequential)
	Lambda      sim.Time  // SSAF λ and counter-1 max backoff; default 10 ms
	DataSize    int       // flooded payload bytes; default 64

	// Journal, when non-nil, receives one Record per run — config, seed,
	// and the final metric snapshot — written after the sweep in job
	// order, so the journal bytes are deterministic for a fixed config.
	Journal *metrics.Journal `json:"-"`
}

func (c Fig1Config) withDefaults() Fig1Config {
	if c.Nodes == 0 {
		c.Nodes = 100
	}
	if c.Terrain == 0 {
		c.Terrain = 1000
	}
	if c.Range == 0 {
		c.Range = 250
	}
	if c.Connections == 0 {
		c.Connections = 50
	}
	if len(c.Intervals) == 0 {
		c.Intervals = []float64{0.5, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	}
	if c.Duration == 0 {
		c.Duration = 30
	}
	if len(c.Seeds) == 0 {
		c.Seeds = []int64{1, 2, 3}
	}
	if c.Lambda == 0 {
		c.Lambda = 10e-3
	}
	if c.DataSize == 0 {
		// Short sensor readings: keeps airtime (0.5 ms at 1 Mbps) well
		// below the backoff scale so prioritization, not transmission
		// serialization, decides relay order — and puts the saturation
		// knee in the paper's interval range.
		c.DataSize = 64
	}
	return c
}

// Fig1Row is one x-axis point of the three Figure 1 panels.
type Fig1Row struct {
	Interval float64
	Counter1 Agg
	SSAF     Agg
}

// fig1Point decodes the flattened x-axis: each interval contributes a
// counter-1 point (even) and an SSAF point (odd).
func fig1Point(cfg Fig1Config, point int) (interval float64, ssaf bool) {
	return cfg.Intervals[point/2], point%2 == 1
}

// RunFig1 sweeps the packet generation interval for both flooding
// variants across all seeds through the sweep engine.
func RunFig1(cfg Fig1Config) []Fig1Row {
	cfg = cfg.withDefaults()
	cells := sweep.Cells("fig1", len(cfg.Intervals)*2, cfg.Seeds)
	results := sweep.Run(cfg.Workers, cells, func(ctx *sweep.Context, i int, c sweep.Cell) runOut {
		interval, ssaf := fig1Point(cfg, c.Point)
		return runFloodOnce(ctx, cfg, interval, ssaf, c.Seed)
	})
	rows := make([]Fig1Row, len(cfg.Intervals))
	for i, iv := range cfg.Intervals {
		rows[i].Interval = iv
	}
	for i, c := range cells {
		row := &rows[c.Point/2]
		if _, ssaf := fig1Point(cfg, c.Point); ssaf {
			row.SSAF.Add(results[i].RunMetrics)
		} else {
			row.Counter1.Add(results[i].RunMetrics)
		}
	}
	if cfg.Journal != nil {
		for i, c := range cells {
			interval, ssaf := fig1Point(cfg, c.Point)
			variant := "counter1"
			if ssaf {
				variant = "ssaf"
			}
			// A write failure sticks on the journal; callers check Err once.
			_ = cfg.Journal.Write(metrics.Record{
				Experiment: "fig1",
				Label:      fmt.Sprintf("%s interval=%g", variant, interval),
				Seed:       c.Seed,
				Config:     cfg,
				Metrics:    results[i].snap,
			})
		}
	}
	return rows
}

// ssafSpan returns the RSSI range SSAF maps onto its delay band: the
// decode threshold (far edge) up to the power at one tenth of the
// transmission range (near).
func ssafSpan(rangeM float64) (minDBm, maxDBm float64) {
	model := propagation.NewFreeSpace()
	params := phy.DefaultParams(model, rangeM)
	minDBm = params.RxThreshDBm
	maxDBm = propagation.ThresholdFor(model, params.TxPowerDBm, rangeM/10)
	return
}

func runFloodOnce(ctx *sweep.Context, cfg Fig1Config, interval float64, ssaf bool, seed int64) runOut {
	nw := node.New(node.Config{
		N:               cfg.Nodes,
		Rect:            geo.NewRect(cfg.Terrain, cfg.Terrain),
		Range:           cfg.Range,
		Seed:            seed,
		EnsureConnected: true,
		Runtime:         ctx.Runtime(),
		Tiles:           cfg.Tiles,
	})
	var fcfg flood.Config
	if ssaf {
		minDBm, maxDBm := ssafSpan(cfg.Range)
		fcfg = flood.SSAFConfig(cfg.Lambda, minDBm, maxDBm)
	} else {
		fcfg = flood.Counter1Config(cfg.Lambda)
	}
	nw.Install(func(n *node.Node) node.Protocol { return flood.New(&fcfg) })

	var meter stats.Meter
	tap := NewAppTap(nw, &meter)
	pairs := traffic.RandomPairs(rng.New(seed, rng.StreamTraffic), cfg.Nodes, cfg.Connections)
	cbrs := make([]*traffic.CBR, len(pairs))
	for i, p := range pairs {
		cbrs[i] = traffic.NewCBR(nw.Nodes[p.Src], p.Dst, sim.Time(interval), cfg.DataSize)
		tap.Watch(cbrs[i])
		cbrs[i].Start()
	}
	nw.Run(sim.Time(cfg.Duration))
	for _, c := range cbrs {
		c.Stop()
	}
	nw.Run(sim.Time(cfg.Duration) + drainTime)
	return runOut{collect(nw, tap), snapshotIf(nw, cfg.Journal != nil)}
}

// Fig1Table renders the three panels as one table.
func Fig1Table(rows []Fig1Row) *stats.Table {
	t := stats.NewTable(
		"Figure 1 — SSAF vs counter-1 flooding (free-space field, random connections)",
		"interval_s",
		"c1_delay_s", "ssaf_delay_s",
		"c1_hops", "ssaf_hops",
		"c1_delivery", "ssaf_delivery",
	)
	for _, r := range rows {
		t.AddRow(r.Interval,
			r.Counter1.Delay.Mean(), r.SSAF.Delay.Mean(),
			r.Counter1.Hops.Mean(), r.SSAF.Hops.Mean(),
			r.Counter1.Delivery.Mean(), r.SSAF.Delivery.Mean(),
		)
	}
	return t
}
