package fault_test

import (
	"testing"

	"routeless/internal/fault"
	"routeless/internal/geo"
	"routeless/internal/node"
	"routeless/internal/rng"
	"routeless/internal/sim"
)

// Regression for a scenario-fuzzer find (simfuzz seed 78, shrunken to
// internal/fuzz/testdata/crash_double_count.json): a plan with two
// crash specs installs two duty-cycle processes per node, each
// legitimately accruing up to the elapsed sim time, but the
// fault-downtime bound multiplied by the node count — so a perfectly
// healthy two-crash run reported a conservation violation. Pre-fix this
// test failed at CheckInvariants.
func TestDowntimeBoundWithTwoCrashSpecs(t *testing.T) {
	c1 := fault.Crash(0.34)
	c1.Cycle = 1
	c2 := fault.Crash(0.35)
	c2.Cycle = 0.9
	c2.Sleep = true
	nw := scenario(t, 78, 12, func(nw *node.Network) {
		fault.Install(nw, fault.Plan{c1, c2})
	})
	if err := nw.CheckInvariants(); err != nil {
		t.Fatalf("two-crash plan violated invariants: %v", err)
	}
}

// Regression for the companion fuzzer find (simfuzz seed 76, shrunken
// to internal/fuzz/testdata/crash_shared_state.json): a crash duty
// cycle sharing nodes with a battery drain keyed its phase machine off
// shared node.Up() state. When the drain failed a node mid-up-phase,
// the crash process's next flip saw "down", took the recovery branch,
// and accrued downtime from a downSince it never set — orders of
// magnitude over the elapsed time. Pre-fix this test failed with
// downtime far above sim time × processes.
func TestDowntimeAccrualWithDrainInterference(t *testing.T) {
	crash := fault.Crash(0.08)
	crash.Cycle = 2.3
	crash.Sleep = true
	drain := fault.Drain(0.13)
	drain.Period = sim.Time(0.26)
	nw := scenario(t, 76, 12, func(nw *node.Network) {
		fault.Install(nw, fault.Plan{crash, drain})
	})
	if err := nw.CheckInvariants(); err != nil {
		t.Fatalf("crash+drain plan violated invariants: %v", err)
	}
}

// The unit-level form of the shared-state bug, with the drain replaced
// by a bare saboteur ticker that keeps failing the node from outside
// the process. The process must accrue downtime only for phases it
// owns — bounded by elapsed sim time — no matter what anyone else does
// to the node. Pre-fix, every flip on the externally-failed node took
// the recovery branch with a stale downSince and DownTime() compounded
// to many times the elapsed clock.
func TestFailureProcessOwnsItsPhases(t *testing.T) {
	nw := node.New(node.Config{
		N: 4, Rect: geo.NewRect(300, 300), Seed: 5, EnsureConnected: true,
	})
	n := nw.Nodes[3]
	fp := node.NewFailureProcess(n, rng.ForNode(5, rng.StreamFailure, 3))
	fp.OffFraction = 0.3
	fp.Cycle = 1
	fp.Start()

	saboteur := sim.NewTicker(nw.Kernel, 0.26, func() { n.Fail() })
	saboteur.Start()
	nw.Run(30)

	elapsed := float64(nw.Kernel.Now())
	if got := fp.DownTime(); got > elapsed {
		t.Fatalf("process downtime %.3f s exceeds elapsed %.3f s — counted phases it does not own",
			got, elapsed)
	}
	if fp.Failures() == 0 {
		t.Fatal("process never entered a down phase of its own")
	}
}
