package trace

import (
	"strings"
	"testing"

	"routeless/internal/geo"
	"routeless/internal/packet"
	"routeless/internal/sim"
)

func TestPathCollectorOrdering(t *testing.T) {
	c := NewPathCollector()
	pkt := &packet.Packet{Kind: packet.KindData, Origin: 1, Seq: 5}
	// Record out of order; Path must sort by time.
	p2 := pkt.Clone()
	p2.HopCount = 2
	c.Record(7, p2, 0.2)
	p1 := pkt.Clone()
	p1.HopCount = 1
	c.Record(1, p1, 0.1)
	p3 := pkt.Clone()
	p3.HopCount = 3
	c.Record(9, p3, 0.3)
	hops := c.Path(pkt.Key())
	if len(hops) != 3 {
		t.Fatalf("got %d hops", len(hops))
	}
	want := []packet.NodeID{1, 7, 9}
	for i, h := range hops {
		if h.Node != want[i] {
			t.Fatalf("path %v, want nodes %v", hops, want)
		}
	}
	if hops[2].HopCount != 3 {
		t.Fatal("hop count not preserved")
	}
}

func TestPathCollectorKeysSorted(t *testing.T) {
	c := NewPathCollector()
	for _, k := range []packet.FlowKey{
		{Origin: 2, Kind: packet.KindData, Seq: 1},
		{Origin: 1, Kind: packet.KindReply, Seq: 9},
		{Origin: 1, Kind: packet.KindData, Seq: 2},
		{Origin: 1, Kind: packet.KindData, Seq: 1},
	} {
		c.Record(0, &packet.Packet{Kind: k.Kind, Origin: k.Origin, Seq: k.Seq}, 0)
	}
	keys := c.Keys()
	if len(keys) != 4 {
		t.Fatalf("got %d keys", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		a, b := keys[i-1], keys[i]
		if a.Origin > b.Origin {
			t.Fatalf("keys not sorted: %v", keys)
		}
	}
	if keys[0] != (packet.FlowKey{Origin: 1, Kind: packet.KindData, Seq: 1}) {
		t.Fatalf("first key %v", keys[0])
	}
}

func TestRelayLoadAndNodesUsed(t *testing.T) {
	c := NewPathCollector()
	for seq := uint32(1); seq <= 3; seq++ {
		c.Record(5, &packet.Packet{Kind: packet.KindData, Origin: 1, Seq: seq}, sim.Time(seq))
		c.Record(6, &packet.Packet{Kind: packet.KindData, Origin: 1, Seq: seq}, sim.Time(seq)+0.1)
	}
	c.Record(5, &packet.Packet{Kind: packet.KindReply, Origin: 2, Seq: 1}, 9)
	if c.RelayLoad(5) != 4 {
		t.Fatalf("RelayLoad(5) = %d, want 4", c.RelayLoad(5))
	}
	used := c.NodesUsed(1, packet.KindData)
	if used[5] != 3 || used[6] != 3 || len(used) != 2 {
		t.Fatalf("NodesUsed = %v", used)
	}
}

func TestCanvasRendering(t *testing.T) {
	rect := geo.NewRect(100, 100)
	cv := NewCanvas(rect, 20)
	cv.PlotAll([]geo.Point{{X: 5, Y: 5}, {X: 95, Y: 95}}, '.')
	cv.Plot(geo.Point{X: 50, Y: 50}, 'X')
	s := cv.String()
	if !strings.Contains(s, "X") || !strings.Contains(s, ".") {
		t.Fatalf("render missing glyphs:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	// 10 content rows (20 wide, 2:1 aspect) + 2 border rows.
	if len(lines) != 12 {
		t.Fatalf("got %d lines", len(lines))
	}
	for _, l := range lines {
		if len([]rune(l)) != 22 {
			t.Fatalf("ragged line %q", l)
		}
	}
}

func TestCanvasOverwriteOrder(t *testing.T) {
	cv := NewCanvas(geo.NewRect(10, 10), 10)
	p := geo.Point{X: 5, Y: 5}
	cv.Plot(p, '.')
	cv.Plot(p, 'A') // endpoints drawn last win
	if !strings.Contains(cv.String(), "A") {
		t.Fatal("later plot did not overwrite")
	}
}

func TestCanvasIgnoresOutside(t *testing.T) {
	cv := NewCanvas(geo.NewRect(10, 10), 10)
	cv.Plot(geo.Point{X: -5, Y: 50}, 'X') // must not panic or draw
	if strings.Contains(cv.String(), "X") {
		t.Fatal("out-of-rect point drawn")
	}
}

func TestFlowSummary(t *testing.T) {
	s := FlowSummary(map[packet.NodeID]int{3: 5, 1: 9, 2: 5})
	// Ordered by count desc, then id.
	if s != "n1×9 n2×5 n3×5" {
		t.Fatalf("summary = %q", s)
	}
	if FlowSummary(nil) != "" {
		t.Fatal("empty summary should be empty string")
	}
}

func TestSVGRendering(t *testing.T) {
	rect := geo.NewRect(1000, 500)
	s := NewSVG(rect, 400)
	s.Dots([]geo.Point{{X: 10, Y: 10}, {X: 990, Y: 490}}, 2, "#ccc")
	s.Label(geo.Point{X: 500, Y: 250}, "A", "black", 14)
	s.Path([]geo.Point{{X: 0, Y: 0}, {X: 100, Y: 100}}, "red", 2)
	out := s.String()
	for _, want := range []string{"<svg", "circle", "text", "polyline", "</svg>"} {
		if !strings.Contains(out, want) {
			t.Fatalf("SVG missing %q:\n%s", want, out)
		}
	}
	// Aspect ratio preserved: 1000x500 at width 400 → height 200.
	if !strings.Contains(out, `height="200"`) {
		t.Fatal("aspect ratio not preserved")
	}
}

func TestRenderSVGFlows(t *testing.T) {
	rect := geo.NewRect(100, 100)
	positions := []geo.Point{{X: 10, Y: 10}, {X: 50, Y: 50}, {X: 90, Y: 90}}
	c := NewPathCollector()
	c.Record(1, &packet.Packet{Kind: packet.KindData, Origin: 0, Seq: 1}, 0.1)
	out := RenderSVG(rect, positions, c,
		[]FlowSpec{{Origin: 0, Kind: packet.KindData, Color: "#0072b2"}},
		map[packet.NodeID]string{0: "A", 2: "B"}, 300)
	if !strings.Contains(out, "#0072b2") {
		t.Fatal("flow color missing")
	}
	if !strings.Contains(out, ">A<") || !strings.Contains(out, ">B<") {
		t.Fatal("labels missing")
	}
}
