package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"routeless/internal/sim"
)

func testCtx(r *rand.Rand) Context {
	return Context{Rand: r}
}

func TestUniformRange(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	p := Uniform{Max: 0.01}
	for i := 0; i < 1000; i++ {
		d, ok := p.Backoff(testCtx(r))
		if !ok {
			t.Fatal("uniform policy must always participate")
		}
		if d < 0 || d >= 0.01 {
			t.Fatalf("delay %v outside [0, 0.01)", d)
		}
	}
}

func TestSignalStrengthOrdering(t *testing.T) {
	// Weak signal (far node) must stochastically beat strong signal
	// (near node): mean delay strictly increasing in RSSI.
	r := rand.New(rand.NewSource(2))
	p := SignalStrength{Lambda: 0.01, MinDBm: -55, MaxDBm: -25, JitterFrac: 0.1}
	mean := func(rssi float64) sim.Time {
		var sum sim.Time
		for i := 0; i < 2000; i++ {
			d, _ := p.Backoff(Context{RSSIdBm: rssi, Rand: r})
			sum += d
		}
		return sum / 2000
	}
	weak, mid, strong := mean(-55), mean(-40), mean(-25)
	if !(weak < mid && mid < strong) {
		t.Fatalf("delays not increasing with signal strength: %v %v %v", weak, mid, strong)
	}
}

func TestSignalStrengthClamping(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	p := SignalStrength{Lambda: 0.01, MinDBm: -55, MaxDBm: -25, JitterFrac: 0}
	// Below the decode floor: zero deterministic delay.
	if d, _ := p.Backoff(Context{RSSIdBm: -90, Rand: r}); d != 0 {
		t.Fatalf("below-floor delay %v, want 0", d)
	}
	// Above the near reference: clamped to Lambda.
	if d, _ := p.Backoff(Context{RSSIdBm: 0, Rand: r}); d != 0.01 {
		t.Fatalf("above-ceiling delay %v, want Lambda", d)
	}
}

func TestSignalStrengthDegenerateSpan(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	p := SignalStrength{Lambda: 0.01, MinDBm: -40, MaxDBm: -40, JitterFrac: 0.1}
	d, ok := p.Backoff(Context{RSSIdBm: -40, Rand: r})
	if !ok || d < 0 || d > 0.001*1.001 {
		t.Fatalf("degenerate span mishandled: d=%v ok=%v", d, ok)
	}
}

func TestHopGradientBranches(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	p := HopGradient{Lambda: 0.005}
	// h_table ≤ h_expected: delay in [0, λ).
	for i := 0; i < 500; i++ {
		d, ok := p.Backoff(Context{HopsToTarget: 3, ExpectedHops: 5, Rand: r})
		if !ok {
			t.Fatal("node with table entry must participate")
		}
		if d < 0 || d >= 0.005 {
			t.Fatalf("inside-expected delay %v outside [0, λ)", d)
		}
	}
	// h_table > h_expected: delay ≥ λ, growing with the excess — the
	// paper's "assigns a backoff delay larger than λ to nodes with a
	// larger hop count than expected".
	for i := 0; i < 500; i++ {
		d, _ := p.Backoff(Context{HopsToTarget: 7, ExpectedHops: 5, Rand: r})
		if d < 0.005*2 || d >= 0.005*3 {
			t.Fatalf("excess-2 delay %v outside [2λ, 3λ)", d)
		}
	}
}

func TestHopGradientAbstainsWithoutEntry(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	p := HopGradient{Lambda: 0.005}
	if _, ok := p.Backoff(Context{HopsToTarget: -1, ExpectedHops: 3, Rand: r}); ok {
		t.Fatal("node without active-table entry must abstain")
	}
}

// Property: smaller h_table never yields a larger delay band — "the
// smaller h_table is, the smaller the backoff delay will be".
func TestQuickHopGradientMonotone(t *testing.T) {
	p := HopGradient{Lambda: 0.005}
	f := func(seed int64, hexp uint8) bool {
		r := rand.New(rand.NewSource(seed))
		exp := int(hexp % 16)
		prevMax := sim.Time(-1)
		for h := 0; h < exp+8; h++ {
			// Band bounds for this h are deterministic given the branch.
			d, ok := p.Backoff(Context{HopsToTarget: h, ExpectedHops: exp, Rand: r})
			if !ok {
				return false
			}
			var lo sim.Time
			if h > exp {
				lo = p.Lambda * sim.Time(h-exp)
			}
			hi := lo + p.Lambda
			if d < lo || d >= hi {
				return false
			}
			if lo < prevMax {
				return false // bands must be nondecreasing
			}
			prevMax = lo
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedCombination(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	w := Weighted{
		Policies: []BackoffPolicy{
			SignalStrength{Lambda: 0.01, MinDBm: -55, MaxDBm: -25, JitterFrac: 0},
			HopGradient{Lambda: 0.005},
		},
		Weights: []float64{0.5, 0.5},
	}
	d, ok := w.Backoff(Context{RSSIdBm: -25, HopsToTarget: 2, ExpectedHops: 2, Rand: r})
	if !ok {
		t.Fatal("should participate")
	}
	// 0.5·λ_ss + 0.5·(hop draw < λ_hg) ∈ [0.005, 0.005+0.0025)
	if d < 0.005 || d >= 0.0075 {
		t.Fatalf("weighted delay %v outside expected band", d)
	}
}

func TestWeightedAbstainsIfComponentAbstains(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	w := Weighted{
		Policies: []BackoffPolicy{Uniform{Max: 0.01}, HopGradient{Lambda: 0.005}},
		Weights:  []float64{1, 1},
	}
	if _, ok := w.Backoff(Context{HopsToTarget: -1, Rand: r}); ok {
		t.Fatal("weighted policy must abstain when a component abstains")
	}
}

func TestWeightedMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	w := Weighted{Policies: []BackoffPolicy{Uniform{Max: 1}}, Weights: nil}
	w.Backoff(testCtx(rand.New(rand.NewSource(1))))
}

func TestPolicyNames(t *testing.T) {
	for _, p := range []BackoffPolicy{
		Uniform{Max: 0.01},
		SignalStrength{},
		HopGradient{},
		Weighted{Policies: []BackoffPolicy{Uniform{Max: 1}}, Weights: []float64{1}},
	} {
		if p.Name() == "" {
			t.Fatal("empty policy name")
		}
	}
}
