// Package sim is a miniature of the real kernel: just enough surface
// (Schedule/At/NewTimer, a master stream) for the flow-aware rules to
// recognize entry points and sinks by ID suffix.
package sim

import "math/rand"

// Time mirrors the real simulated-time scalar.
type Time float64

// Kernel is the mini event kernel.
type Kernel struct {
	queue []func()
	rng   *rand.Rand
}

// NewKernel seeds the master stream; this package is a sanctioned home
// for raw constructors, like the real internal/sim.
func NewKernel(seed int64) *Kernel {
	return &Kernel{rng: rand.New(rand.NewSource(seed))}
}

// Schedule enqueues f after d.
func (k *Kernel) Schedule(d Time, f func()) { k.queue = append(k.queue, f) }

// At enqueues f at absolute time t.
func (k *Kernel) At(t Time, f func()) { k.queue = append(k.queue, f) }

// Rand exposes the master stream.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Timer mirrors the real one-shot timer.
type Timer struct{ k *Kernel }

// NewTimer arms a timer; its callback is an event-handler entry point.
func NewTimer(k *Kernel, d Time, f func()) *Timer {
	k.Schedule(d, f)
	return &Timer{k: k}
}
