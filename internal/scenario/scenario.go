// Package scenario is the single, versioned description of one
// simulation run: topology, placement, mobility, fading, tiling,
// traffic flows, and a typed fault plan, as one validated JSON
// document. It is the unified entry point every consumer shares — the
// fuzzer generates into it, `wmansim -scenario` loads it, `simserve`
// accepts it over HTTP, and snapshots embed it — so the simulator's
// constraint matrix (tiled ⇒ no fading and no mobility, Connected ⇒
// uniform placement) lives in exactly one place: Validate.
//
// Determinism contract: a Scenario is a pure value, and Build derives
// every random stream of the run from Scenario.Seed. Two builds of one
// scenario advance bit-for-bit identically; that property is what makes
// the replay-verified snapshots in internal/snapshot possible at all.
package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"slices"

	"routeless/internal/fault"
	"routeless/internal/geo"
	"routeless/internal/packet"
	"routeless/internal/sim"
)

// Version is the current scenario document version. Documents carrying
// a larger version are rejected by Validate; documents with version 0
// (the field omitted — every fixture written before versioning) parse
// as version-1 documents, which they are.
const Version = 1

// Typed errors along the scenario API path. Everything Validate or
// Parse returns wraps ErrInvalid or ErrParse, so callers can
// discriminate "your document is wrong" from simulator failures without
// string matching.
var (
	// ErrInvalid marks a structurally well-formed document that violates
	// the simulator's constraint matrix.
	ErrInvalid = errors.New("scenario: invalid")
	// ErrParse marks input that is not a well-formed scenario document
	// at all (bad JSON, unknown fields, trailing garbage).
	ErrParse = errors.New("scenario: malformed document")
)

func invalidf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInvalid, fmt.Sprintf(format, args...))
}

// Protocol names a scenario's network-layer protocol.
const (
	ProtoCounter1  = "counter1"
	ProtoSSAF      = "ssaf"
	ProtoRouteless = "routeless"
	ProtoAODV      = "aodv"
	ProtoGradient  = "gradient"
)

// Placement names a scenario's topology style. Uniform placement is
// what the paper's figures use; the others reach the adversarial
// shapes a hand-picked evaluation never does — tight clusters bridged
// by single links, boundary-dense chains, near-regular lattices.
const (
	PlaceUniform = "uniform"
	PlaceCluster = "cluster"
	PlaceLine    = "line"
	PlaceGrid    = "grid"
)

// Flow is one CBR connection of the scenario's traffic mix.
type Flow struct {
	Src int `json:"src"`
	Dst int `json:"dst"`
}

// Mobility switches on random-waypoint motion for the first Movers
// nodes. Tiled scenarios must be static (tile re-binding is not
// supported), which Validate enforces.
type Mobility struct {
	Movers   int     `json:"movers"`
	MinSpeed float64 `json:"min_speed"` // m/s
	MaxSpeed float64 `json:"max_speed"` // m/s
}

// FaultSpec is the data form of one fault-plane spec: fully
// JSON-serializable, convertible to the typed fault.Plan entry. Fields
// irrelevant to a Kind are ignored by it; zero values mean the fault
// plane's defaults.
type FaultSpec struct {
	Kind string `json:"kind"` // "crash" | "drain" | "degrade" | "jam"

	OffFraction float64 `json:"off_fraction,omitempty"` // crash
	Cycle       float64 `json:"cycle,omitempty"`        // crash
	Sleep       bool    `json:"sleep,omitempty"`        // crash
	CapacityJ   float64 `json:"capacity_j,omitempty"`   // drain
	OffsetDB    float64 `json:"offset_db,omitempty"`    // degrade
	TxPowerDBm  float64 `json:"tx_power_dbm,omitempty"` // jam
	SpeedMps    float64 `json:"speed_mps,omitempty"`    // jam
	Period      float64 `json:"period,omitempty"`       // drain, degrade, jam
	Duration    float64 `json:"duration,omitempty"`     // degrade
	Burst       float64 `json:"burst,omitempty"`        // jam

	// Exclude shields the listed node ids from node-targeting faults
	// (crash, drain) — the experiment harness uses it to keep traffic
	// endpoints alive under churn.
	Exclude []int `json:"exclude,omitempty"`
}

// spec converts the data form to the typed fault-plane spec.
func (f FaultSpec) spec() (fault.Spec, error) {
	excl := make([]packet.NodeID, len(f.Exclude))
	for i, id := range f.Exclude {
		excl[i] = packet.NodeID(id)
	}
	if len(excl) == 0 {
		excl = nil
	}
	switch f.Kind {
	case "crash":
		return fault.CrashSpec{OffFraction: f.OffFraction, Cycle: f.Cycle, Sleep: f.Sleep, Exclude: excl}, nil
	case "drain":
		return fault.DrainSpec{CapacityJ: f.CapacityJ, Period: sim.Time(f.Period), Exclude: excl}, nil
	case "degrade":
		return fault.DegradeSpec{OffsetDB: f.OffsetDB, Period: sim.Time(f.Period), Duration: sim.Time(f.Duration)}, nil
	case "jam":
		return fault.JamSpec{TxPowerDBm: f.TxPowerDBm, Period: sim.Time(f.Period), Burst: sim.Time(f.Burst), SpeedMps: f.SpeedMps}, nil
	default:
		return nil, fmt.Errorf("unknown fault kind %q", f.Kind)
	}
}

// Scenario fully describes one simulation run: everything Build needs
// is a field here, so a scenario serializes to a replayable JSON
// document and two runs of one scenario are bitwise identical.
type Scenario struct {
	// Ver is the document version; 0 and 1 both mean version 1 (the
	// field predates nothing — 0 is simply the omitted form).
	Ver int `json:"version,omitempty"`

	// Seed drives every random stream of the simulation itself
	// (placement, traffic phases, MAC backoffs, fault processes).
	Seed int64 `json:"seed"`

	N         int     `json:"n"`
	Width     float64 `json:"width"`  // terrain width, m
	Height    float64 `json:"height"` // terrain height, m
	Range     float64 `json:"range"`  // calibrated tx range, m
	Placement string  `json:"placement"`
	// Connected regenerates uniform placements until the unit-disk
	// graph is connected; only valid with uniform placement (explicit
	// position styles are used as drawn — disconnection is part of the
	// adversarial space they exist to reach).
	Connected bool `json:"connected,omitempty"`
	// Fading adds Rayleigh small-scale fading. Incompatible with Tiles.
	Fading bool `json:"fading,omitempty"`
	// Tiles > 1 runs the scenario on the tiled PDES engine. Requires no
	// fading and no mobility (the constraint matrix the tiled engine
	// ships with).
	Tiles int `json:"tiles,omitempty"`

	Protocol string  `json:"protocol"`
	Lambda   float64 `json:"lambda,omitempty"` // backoff quantum, s; 0 = protocol default

	Flows    []Flow  `json:"flows"`
	Interval float64 `json:"interval"`  // CBR interval, s
	DataSize int     `json:"data_size"` // CBR payload, bytes
	Duration float64 `json:"duration"`  // traffic seconds; runs drain 5 s past it

	// JournalEvery > 0 makes a journaled run emit a metrics snapshot
	// record at every multiple of this interval — the epoch stream a
	// live journal consumer (simserve) tails, and the record boundary
	// snapshots align with.
	JournalEvery float64 `json:"journal_every,omitempty"`

	Mobility *Mobility   `json:"mobility,omitempty"`
	Faults   []FaultSpec `json:"faults,omitempty"`
}

// Rect returns the scenario terrain.
func (sc Scenario) Rect() geo.Rect { return geo.NewRect(sc.Width, sc.Height) }

// Plan converts the scenario's fault specs into a typed fault.Plan.
func (sc Scenario) Plan() (fault.Plan, error) {
	if len(sc.Faults) == 0 {
		return nil, nil
	}
	plan := make(fault.Plan, 0, len(sc.Faults))
	for i, f := range sc.Faults {
		s, err := f.spec()
		if err != nil {
			return nil, fmt.Errorf("fault %d: %w", i, err)
		}
		plan = append(plan, s)
	}
	return plan, nil
}

// Parse decodes and validates one scenario document. Decoding is
// strict: unknown fields and trailing input are rejected (wrapping
// ErrParse), and a document that decodes but violates the constraint
// matrix wraps ErrInvalid.
func Parse(data []byte) (Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return Scenario{}, fmt.Errorf("%w: %v", ErrParse, err)
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err == nil || len(trailing) > 0 {
		return Scenario{}, fmt.Errorf("%w: trailing data after document", ErrParse)
	}
	if err := sc.Validate(); err != nil {
		return Scenario{}, err
	}
	return sc, nil
}

// Protocols and Placements are the closed vocabularies Validate checks
// against, exported so generators (the fuzzer) can draw from the same
// list Validate accepts. Callers must not mutate them.
var Protocols = []string{ProtoCounter1, ProtoSSAF, ProtoRouteless, ProtoAODV, ProtoGradient}
var Placements = []string{PlaceUniform, PlaceCluster, PlaceLine, PlaceGrid}

func posFinite(name string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
		return invalidf("%s must be positive and finite, got %v", name, v)
	}
	return nil
}

// Validate checks the scenario against the simulator's constraint
// matrix and returns the first problem found, wrapping ErrInvalid. A
// scenario that validates cleanly must never crash the simulator:
// anything that still goes wrong downstream is a simulator bug by
// definition, which is exactly the discrimination the fuzzer's
// verdicts rest on.
func (sc Scenario) Validate() error {
	if sc.Ver < 0 || sc.Ver > Version {
		return invalidf("unsupported document version %d (this build speaks up to %d)", sc.Ver, Version)
	}
	if sc.N < 2 {
		return invalidf("N must be at least 2, got %d", sc.N)
	}
	if sc.N > 1_000_000 {
		return invalidf("N=%d exceeds the sanity cap", sc.N)
	}
	if err := posFinite("Width", sc.Width); err != nil {
		return err
	}
	if err := posFinite("Height", sc.Height); err != nil {
		return err
	}
	if err := posFinite("Range", sc.Range); err != nil {
		return err
	}
	if !slices.Contains(Placements, sc.Placement) {
		return invalidf("unknown placement %q", sc.Placement)
	}
	if sc.Connected && sc.Placement != PlaceUniform {
		return invalidf("Connected requires uniform placement, got %q", sc.Placement)
	}
	if !slices.Contains(Protocols, sc.Protocol) {
		return invalidf("unknown protocol %q", sc.Protocol)
	}
	if math.IsNaN(sc.Lambda) || math.IsInf(sc.Lambda, 0) || sc.Lambda < 0 {
		return invalidf("Lambda must be a finite non-negative number, got %v", sc.Lambda)
	}
	if err := posFinite("Interval", sc.Interval); err != nil {
		return err
	}
	if err := posFinite("Duration", sc.Duration); err != nil {
		return err
	}
	if sc.DataSize <= 0 {
		return invalidf("DataSize must be positive, got %d", sc.DataSize)
	}
	if math.IsNaN(sc.JournalEvery) || math.IsInf(sc.JournalEvery, 0) || sc.JournalEvery < 0 {
		return invalidf("JournalEvery must be a finite non-negative number, got %v", sc.JournalEvery)
	}
	seen := make(map[Flow]bool, len(sc.Flows))
	for i, f := range sc.Flows {
		if f.Src < 0 || f.Src >= sc.N || f.Dst < 0 || f.Dst >= sc.N {
			return invalidf("flow %d (%d→%d) references nodes outside [0,%d)", i, f.Src, f.Dst, sc.N)
		}
		if f.Src == f.Dst {
			return invalidf("flow %d is a self-loop at node %d", i, f.Src)
		}
		if seen[f] {
			return invalidf("duplicate flow %d→%d", f.Src, f.Dst)
		}
		seen[f] = true
	}
	if m := sc.Mobility; m != nil {
		if m.Movers < 1 || m.Movers > sc.N {
			return invalidf("Mobility.Movers must be in [1,%d], got %d", sc.N, m.Movers)
		}
		if math.IsNaN(m.MinSpeed) || math.IsInf(m.MinSpeed, 0) || m.MinSpeed < 0 ||
			math.IsNaN(m.MaxSpeed) || math.IsInf(m.MaxSpeed, 0) || m.MaxSpeed < m.MinSpeed {
			return invalidf("mobility speeds must satisfy 0 <= min <= max and be finite, got [%v,%v]",
				m.MinSpeed, m.MaxSpeed)
		}
	}
	if sc.Tiles < 0 {
		return invalidf("Tiles must be non-negative, got %d", sc.Tiles)
	}
	if sc.Tiles > 1 {
		// The tiled engine's constraint matrix: per-link fading draw
		// order is sequential, and mobility would re-bind tiles.
		if sc.Fading {
			return invalidf("tiled scenarios cannot use fading (tiles=%d)", sc.Tiles)
		}
		if sc.Mobility != nil {
			return invalidf("tiled scenarios cannot use mobility (tiles=%d)", sc.Tiles)
		}
	}
	for i, f := range sc.Faults {
		if len(f.Exclude) > 0 && f.Kind != "crash" && f.Kind != "drain" {
			return invalidf("fault %d: Exclude applies only to node-targeting kinds (crash, drain), not %q", i, f.Kind)
		}
		for _, id := range f.Exclude {
			if id < 0 || id >= sc.N {
				return invalidf("fault %d: excluded node %d outside [0,%d)", i, id, sc.N)
			}
		}
	}
	plan, err := sc.Plan()
	if err != nil {
		return fmt.Errorf("%w: %s", ErrInvalid, err)
	}
	if err := plan.Validate(); err != nil {
		return fmt.Errorf("%w: %s", ErrInvalid, err)
	}
	return nil
}
