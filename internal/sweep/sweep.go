// Package sweep is the deterministic multicore experiment engine.
// Every experiment flattens into a flat list of cells — one
// (figure, parameter point, replication) triple each — and Run executes
// the cells across a work-stealing worker pool, merging results back in
// fixed cell order. Because each cell derives all of its randomness
// from its own seed, and because results land at the cell's index, the
// output — and therefore every CSV table, metrics snapshot, and JSONL
// journal built from it — is byte-identical for any worker count,
// including 1.
//
// Each worker owns a reusable run context (Context): a kernel event
// free list, the phy signal/delivery pools, and a cross-model range
// cache, threaded into networks via node.Config.Runtime. Shared caches
// are therefore never touched concurrently, and steady-state
// allocations per cell drop as a worker's pools warm up instead of
// multiplying with cores. The simlint `sharedcap` rule enforces the
// ownership discipline at the boundary: cell functions must not capture
// shared mutable state — anything reusable comes in through the
// Context.
package sweep

import (
	"sync"

	"routeless/internal/node"
	"routeless/internal/parallel"
)

// Cell is one unit of sweep work: one replication of one parameter
// point of one figure. Point is an index into the experiment's
// flattened x-axis (experiments fold variant axes — protocol, SSAF
// on/off — into the point index); Rep is the replication index and
// Seed the replication's master seed.
type Cell struct {
	Figure string
	Point  int
	Rep    int
	Seed   int64
}

// Cells enumerates the canonical flat cell list for one figure:
// point-major, replication-minor, one cell per (point, seed) pair.
// Merge loops iterate the same list in the same order, which is what
// pins journal bytes and aggregate fold order regardless of how the
// cells were scheduled.
func Cells(figure string, points int, seeds []int64) []Cell {
	out := make([]Cell, 0, points*len(seeds))
	for p := 0; p < points; p++ {
		for r, s := range seeds {
			out = append(out, Cell{Figure: figure, Point: p, Rep: r, Seed: s})
		}
	}
	return out
}

// Context is one worker's reusable run context. Exactly one worker
// goroutine owns a Context for the duration of a sweep; cell functions
// receive it and must thread Runtime() into node.Config (and nowhere
// else) so every pooled object stays worker-private.
type Context struct {
	worker int
	rt     *node.Runtime
}

// Worker returns the owning worker's index in [0, workers).
func (c *Context) Worker() int { return c.worker }

// Runtime returns the worker's reusable allocation state for
// node.Config.Runtime.
func (c *Context) Runtime() *node.Runtime { return c.rt }

// queue hands out cell indices to workers. Each worker owns a
// contiguous span and claims from its front; a worker whose span is
// empty steals the back half of the richest remaining span. One mutex
// guards all spans: a claim is a few integer operations, while a cell
// is an entire simulation run — contention is unmeasurable, and the
// simplicity keeps the scheduler obviously deadlock-free.
type queue struct {
	mu    sync.Mutex
	spans []span
}

type span struct{ next, end int }

func newQueue(n, workers int) *queue {
	q := &queue{spans: make([]span, workers)}
	// Contiguous partition, remainder spread over the leading workers.
	per, rem := n/workers, n%workers
	start := 0
	for w := range q.spans {
		size := per
		if w < rem {
			size++
		}
		q.spans[w] = span{next: start, end: start + size}
		start += size
	}
	return q
}

// claim returns the next cell index for worker w, stealing when w's own
// span is exhausted. ok is false only when no cells remain anywhere.
func (q *queue) claim(w int) (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	s := &q.spans[w]
	if s.next >= s.end {
		// Steal the back half (at least one cell) of the richest span.
		best, bestRem := -1, 0
		for v := range q.spans {
			if rem := q.spans[v].end - q.spans[v].next; rem > bestRem {
				best, bestRem = v, rem
			}
		}
		if best < 0 {
			return 0, false
		}
		victim := &q.spans[best]
		mid := victim.next + (victim.end-victim.next)/2
		*s = span{next: mid, end: victim.end}
		victim.end = mid
	}
	i := s.next
	s.next++
	return i, true
}

// Run executes fn once per cell across a worker pool and returns the
// results indexed exactly like cells. workers follows the
// parallel.Workers clamp: 0 means GOMAXPROCS, never more than
// len(cells). fn must derive everything from (ctx, cell): captured
// shared mutable state is a determinism bug (and a sharedcap lint
// finding). A panic inside fn lets the surviving workers finish the
// remaining cells, then re-raises on the caller's goroutine.
func Run[T any](workers int, cells []Cell, fn func(ctx *Context, i int, c Cell) T) []T {
	n := len(cells)
	if n == 0 {
		return nil
	}
	workers = parallel.Workers(workers, n)
	out := make([]T, n)
	if workers == 1 {
		ctx := &Context{worker: 0, rt: node.NewRuntime()}
		for i, c := range cells {
			out[i] = fn(ctx, i, c)
			// Shrink pooled free lists to this cell's watermark, so one
			// big cell does not pin its footprint for the whole sweep.
			ctx.rt.Reset()
		}
		return out
	}
	q := newQueue(n, workers)
	// parallel.ForEach supplies the pool itself: one goroutine per
	// worker, first panic re-raised on this goroutine after all exit.
	parallel.ForEach(workers, workers, func(w int) {
		ctx := &Context{worker: w, rt: node.NewRuntime()}
		for {
			i, ok := q.claim(w)
			if !ok {
				return
			}
			out[i] = fn(ctx, i, cells[i])
			ctx.rt.Reset()
		}
	})
	return out
}
