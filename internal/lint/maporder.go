package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// effectCalls are method/function names whose invocation inside a map
// iteration makes iteration order observable: scheduling simulation
// events, handing packets down the stack, or writing output. The set is
// deliberately name-based — determinism rules must keep working even
// with partial type information for dependencies.
var effectCalls = map[string]bool{
	// event scheduling
	"Schedule": true, "At": true, "ScheduleAt": true,
	// packet / message movement
	"Send": true, "SendTo": true, "Enqueue": true, "Push": true,
	"Deliver": true, "Emit": true, "Broadcast": true, "Transmit": true,
	// output
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"AddRow": true,
}

// sortCalls are sort/slices package functions that impose a total order
// on their first argument.
var sortCalls = map[string]bool{
	"Ints": true, "Strings": true, "Float64s": true,
	"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	"SortFunc": true, "SortStableFunc": true,
}

// MapOrder flags `range` over a map whose body schedules events, sends
// packets, accumulates results, or writes output. Go randomizes map
// iteration order per run, so any such loop emits events in a different
// order every execution — the canonical way simulators silently lose
// determinism. Collect the keys, sort them, and iterate the sorted
// slice instead.
//
// Two shapes of that very fix are recognized and left alone:
//
//   - the single-statement key collection
//     `for k := range m { keys = append(keys, k) }`;
//   - any body whose only effect is appending to a slice that a later
//     statement in the same file passes to sort.* or slices.Sort* —
//     the filter-then-sort idiom.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flag effectful iteration over map ranges; sort keys first",
	Run:  runMapOrder,
}

func runMapOrder(p *Pass) {
	for _, f := range p.Files {
		sorts := collectSorts(p, f)
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if isKeyCollection(rs) {
				return true
			}
			eff, found := findEffect(rs)
			if !found {
				return true
			}
			if eff.appendVar != "" && sortedAfter(sorts, eff.appendVar, rs.End()) {
				return true // filter-then-sort idiom
			}
			p.Reportf(eff.pos, "map iteration order is randomized, but this body %s; collect and sort the keys first", eff.what)
			return true
		})
	}
}

// isKeyCollection recognizes `for k := range m { keys = append(keys, k) }`
// (possibly through a conversion of k), the first half of the sort-keys
// idiom.
func isKeyCollection(rs *ast.RangeStmt) bool {
	if rs.Value != nil || len(rs.Body.List) != 1 {
		return false
	}
	key, ok := rs.Key.(*ast.Ident)
	if !ok {
		return false
	}
	asg, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Rhs) != 1 || len(asg.Lhs) != 1 {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
		return false
	}
	arg := unwrapConversion(call.Args[1])
	id, ok := arg.(*ast.Ident)
	return ok && id.Name == key.Name
}

// unwrapConversion strips one level of T(x) / f(x) so conversions of
// the interesting identifier still match.
func unwrapConversion(e ast.Expr) ast.Expr {
	if call, ok := e.(*ast.CallExpr); ok && len(call.Args) == 1 {
		return call.Args[0]
	}
	return e
}

// collectSorts records, per variable name, the positions of sort.* /
// slices.Sort* calls on that variable anywhere in the file.
func collectSorts(p *Pass, f *ast.File) map[string][]token.Pos {
	out := map[string][]token.Pos{}
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !sortCalls[sel.Sel.Name] {
			return true
		}
		pkg := p.PkgNameOf(sel)
		if pkg == "" {
			if id, ok := sel.X.(*ast.Ident); ok {
				pkg = id.Name // partial type info: fall back on the qualifier text
			}
		}
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		if id, ok := unwrapConversion(call.Args[0]).(*ast.Ident); ok {
			out[id.Name] = append(out[id.Name], call.Pos())
		}
		return true
	})
	return out
}

func sortedAfter(sorts map[string][]token.Pos, name string, after token.Pos) bool {
	for _, pos := range sorts[name] {
		if pos >= after {
			return true
		}
	}
	return false
}

// effect describes one order-observable operation in a range body.
type effect struct {
	pos       token.Pos
	what      string
	appendVar string // set when the only effects are appends to this one variable
}

// findEffect scans the range body for order-observable operations. When
// every effect is an append to the same outer variable, appendVar names
// it so the caller can apply the filter-then-sort exemption.
func findEffect(rs *ast.RangeStmt) (effect, bool) {
	// Names declared inside the body: appending to those is purely
	// local and invisible outside one iteration.
	local := map[string]bool{}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						local[id.Name] = true
					}
				}
			}
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, id := range vs.Names {
							local[id.Name] = true
						}
					}
				}
			}
		}
		return true
	})

	var (
		found       effect
		have        bool
		onlyAppends = true
	)
	record := func(pos token.Pos, what string) {
		if !have {
			found, have = effect{pos: pos, what: what}, true
		}
		onlyAppends = false
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			record(n.Pos(), "sends on a channel")
		case *ast.CallExpr:
			switch fn := n.Fun.(type) {
			case *ast.SelectorExpr:
				if effectCalls[fn.Sel.Name] {
					record(n.Pos(), "calls "+fn.Sel.Name)
				}
			case *ast.Ident:
				if fn.Name == "print" || fn.Name == "println" {
					record(n.Pos(), "writes output")
				}
			}
		case *ast.AssignStmt:
			// x = append(x, ...) where x outlives the loop body.
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					continue
				}
				if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
					continue
				}
				name := ""
				if i < len(n.Lhs) {
					if id, ok := n.Lhs[i].(*ast.Ident); ok {
						if local[id.Name] {
							continue
						}
						name = id.Name
					}
				}
				if !have {
					found, have = effect{
						pos:       n.Pos(),
						what:      "appends to a slice that outlives the loop",
						appendVar: name,
					}, true
				} else if found.appendVar != name {
					onlyAppends = false
				}
			}
		}
		return true
	})
	if have && !onlyAppends {
		found.appendVar = ""
	}
	return found, have
}
