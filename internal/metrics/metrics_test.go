package metrics

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	var g Gauge
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", g.Value())
	}
	var h Histogram
	for _, x := range []float64{1, 2, 3} {
		h.Observe(x)
	}
	if h.N() != 3 || h.Mean() != 2 || h.Min() != 1 || h.Max() != 3 {
		t.Fatalf("histogram n=%d mean=%v min=%v max=%v", h.N(), h.Mean(), h.Min(), h.Max())
	}
}

func TestRegistrySummedRegistration(t *testing.T) {
	r := NewRegistry()
	// Two "nodes" register the same counter name; totals sum.
	a := r.Counter("phy.tx")
	b := r.Counter("phy.tx")
	a.Add(3)
	b.Add(4)
	var inflight uint64 = 2
	r.Func("phy.tx", func() uint64 { return inflight })
	s := r.Snapshot()
	if got := s.Count("phy.tx"); got != 9 {
		t.Fatalf("summed counter = %d, want 9", got)
	}
	// Registration order is first-appearance order.
	r.Counter("z.second")
	r.Counter("a.third")
	s = r.Snapshot()
	want := []string{"phy.tx", "z.second", "a.third"}
	for i, n := range want {
		if s.Samples[i].Name != n {
			t.Fatalf("sample[%d] = %q, want %q", i, s.Samples[i].Name, n)
		}
	}
}

func TestRegistryKindClashPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind clash")
		}
	}()
	r := NewRegistry()
	r.Counter("x")
	r.Gauge("x")
}

func TestConservationLaw(t *testing.T) {
	r := NewRegistry()
	sent := r.Counter("sent")
	delivered := r.Counter("delivered")
	dropped := r.Counter("dropped")
	var inflight uint64
	r.Func("inflight", func() uint64 { return inflight })
	r.Law("conservation", []string{"sent"}, []string{"delivered", "dropped", "inflight"})

	sent.Add(10)
	delivered.Add(6)
	dropped.Add(3)
	inflight = 1
	if err := r.Check(); err != nil {
		t.Fatalf("law should hold: %v", err)
	}

	inflight = 0 // one packet vanishes without being accounted for
	err := r.Check()
	if err == nil {
		t.Fatal("law violation not detected")
	}
	if !strings.Contains(err.Error(), `law "conservation" violated: 10 != 9`) {
		t.Fatalf("unhelpful violation message: %v", err)
	}

	r.Law("bad", []string{"nope"}, []string{"sent"})
	inflight = 1
	if err := r.Check(); err == nil || !strings.Contains(err.Error(), `unknown metric "nope"`) {
		t.Fatalf("unknown metric not reported: %v", err)
	}
}

func TestSnapshotSubAndGet(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events")
	g := r.Gauge("depth")
	c.Add(5)
	g.Set(2)
	before := r.Snapshot()
	c.Add(7)
	g.Set(9)
	after := r.Snapshot()
	d := after.Sub(before)
	if got := d.Count("events"); got != 7 {
		t.Fatalf("diff counter = %d, want 7", got)
	}
	smp, ok := d.Get("depth")
	if !ok || smp.Value != 9 {
		t.Fatalf("diff gauge = %+v ok=%v, want value 9", smp, ok)
	}
	if _, ok := d.Get("missing"); ok {
		t.Fatal("Get found a metric that does not exist")
	}
}

// buildTwin builds one of two identical registries with identical
// activity, for byte-level determinism comparison.
func buildTwin() *Registry {
	r := NewRegistry()
	for _, name := range []string{"phy.tx", "phy.rx", "mac.enqueued"} {
		c := r.Counter(name)
		c.Add(uint64(len(name)))
	}
	h := r.Histogram("delay")
	for i := 0; i < 8; i++ {
		h.Observe(float64(i) * 0.125)
	}
	g := r.Gauge("load")
	g.Set(0.625)
	return r
}

func TestSnapshotDeterministicEncoding(t *testing.T) {
	s1, s2 := buildTwin().Snapshot(), buildTwin().Snapshot()
	b1, err := json.Marshal(s1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(s2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("snapshot encodings differ:\n%s\n%s", b1, b2)
	}
}

func TestJournalWritesJSONL(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	snap := buildTwin().Snapshot()
	for i, label := range []string{"a", "b"} {
		if err := j.Write(Record{
			Experiment: "fig1", Label: label, Seed: int64(i + 1), Metrics: snap,
		}); err != nil {
			t.Fatal(err)
		}
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	for _, ln := range lines {
		var rec Record
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("line not valid JSON: %v\n%s", err, ln)
		}
		if rec.Experiment != "fig1" || rec.Metrics == nil {
			t.Fatalf("round-trip lost fields: %+v", rec)
		}
	}
}

func TestSnapshotTable(t *testing.T) {
	tab := buildTwin().Snapshot().Table("metrics")
	out := tab.String()
	for _, want := range []string{"phy.tx", "delay", "histogram", "gauge"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestInvariant(t *testing.T) {
	r := NewRegistry()
	bound := errors.New("downtime exceeds sim time")
	violated := false
	r.Invariant("downtime", func() error {
		if violated {
			return bound
		}
		return nil
	})
	if err := r.Check(); err != nil {
		t.Fatalf("holding invariant reported: %v", err)
	}
	violated = true
	err := r.Check()
	if err == nil || !strings.Contains(err.Error(), `invariant "downtime" violated: downtime exceeds sim time`) {
		t.Fatalf("invariant violation not surfaced: %v", err)
	}
}

// TestViolationsStructured covers the structured oracle output the
// scenario fuzzer journals: one Violation per failed check, in
// registration order (laws before invariants), with kind telling a
// genuine imbalance apart from a law-declaration bug.
func TestViolationsStructured(t *testing.T) {
	r := NewRegistry()
	sent := r.Counter("sent")
	delivered := r.Counter("delivered")
	r.Law("conservation", []string{"sent"}, []string{"delivered"})
	broken := false
	r.Invariant("sanity", func() error {
		if broken {
			return fmt.Errorf("sanity lost")
		}
		return nil
	})

	sent.Add(4)
	delivered.Add(4)
	if vs := r.Violations(); vs != nil {
		t.Fatalf("clean registry reported violations: %v", vs)
	}

	sent.Inc()
	broken = true
	vs := r.Violations()
	if len(vs) != 2 {
		t.Fatalf("violations = %d, want 2: %v", len(vs), vs)
	}
	if vs[0].Name != "conservation" || vs[0].Kind != "law" {
		t.Errorf("first violation = %+v, want the law imbalance", vs[0])
	}
	if !strings.Contains(vs[0].Detail, "5 != 4") {
		t.Errorf("law detail %q lacks the imbalance", vs[0].Detail)
	}
	if vs[1].Name != "sanity" || vs[1].Kind != "invariant" {
		t.Errorf("second violation = %+v, want the invariant", vs[1])
	}

	r.Law("bad", []string{"nope"}, []string{"sent"})
	vs = r.Violations()
	var config *Violation
	for i := range vs {
		if vs[i].Kind == "config" {
			config = &vs[i]
		}
	}
	if config == nil || config.Name != "bad" {
		t.Errorf("law over an unknown metric not classified as config: %v", vs)
	}
}
