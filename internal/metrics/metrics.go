// Package metrics is the simulator's unified observability layer: a
// deterministic, allocation-light registry of counters, gauges, and
// Welford-backed histograms, with snapshot/diff support and
// conservation-law assertions.
//
// Design constraints, in order:
//
//   - Determinism. Entries live in a slice in fixed registration order;
//     the name index map is only ever used for point lookups, never
//     iterated. Snapshots and their JSON encodings are bit-for-bit
//     identical across same-seed runs.
//   - Hot-path cost. A Counter is one uint64 behind an Inc/Add method;
//     instrumented layers embed Counter fields directly in their private
//     counter structs, so counting is a plain increment with no map
//     lookup, interface call, or allocation. Registration happens once
//     at network construction.
//   - Mutation discipline. Counter/Gauge values are unexported; the only
//     way to change them is through the typed methods. The simlint
//     `statsmut` rule additionally forbids raw `++`/`+=` mutation of
//     exported Stats-view fields outside this package.
//
// Conservation laws make drop/abort accounting self-checking: a law
// states that the sum of one set of counter names equals the sum of
// another at any instant (in-flight populations are registered as
// func-counters so both sides are exact integers). Check evaluates every
// law and reports violations — the instrument that keeps the failure
// paths (dropped-no-route, aborted-by-off, queue overflow) honest.
package metrics

import (
	"fmt"
	"strings"

	"routeless/internal/stats"
)

// Counter is a monotonically increasing event count. The zero value is
// ready to use. The value is unexported on purpose: mutation goes
// through Inc/Add only, so every counting site is grep-able and the
// lint rule can enforce the discipline at the boundary.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Counter32 is a 4-byte counter for dense per-entity stat blocks
// (per-radio, per-MAC, per-flooder) where a million instances exist and
// every field is paid N times. Value widens to uint64, and the registry
// sums sources in uint64, so aggregate series stay exact as long as
// each individual entity's count stays below 2^32 — per-node event
// counts in any feasible run are orders of magnitude smaller. Network-
// global series should keep the 8-byte Counter.
type Counter32 struct{ v uint32 }

// Inc adds one.
func (c *Counter32) Inc() { c.v++ }

// Add adds n.
func (c *Counter32) Add(n uint32) { c.v += n }

// Value returns the current count, widened.
func (c *Counter32) Value() uint64 { return uint64(c.v) }

// Gauge is a point-in-time float value. The zero value is ready to use.
type Gauge struct{ v float64 }

// Set replaces the gauge value.
func (g *Gauge) Set(x float64) { g.v = x }

// Add adjusts the gauge by x (may be negative).
func (g *Gauge) Add(x float64) { g.v += x }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// Histogram accumulates a sample distribution with streaming moments
// (mean/var/min/max) via stats.Welford. The zero value is ready to use.
type Histogram struct{ w stats.Welford }

// Observe folds one sample in.
func (h *Histogram) Observe(x float64) { h.w.Add(x) }

// N returns the sample count.
func (h *Histogram) N() uint64 { return h.w.N() }

// Mean returns the sample mean.
func (h *Histogram) Mean() float64 { return h.w.Mean() }

// Std returns the sample standard deviation.
func (h *Histogram) Std() float64 { return h.w.Std() }

// Min returns the smallest sample (0 when empty).
func (h *Histogram) Min() float64 { return h.w.Min() }

// Max returns the largest sample (0 when empty).
func (h *Histogram) Max() float64 { return h.w.Max() }

// Welford returns a copy of the underlying accumulator, for merging
// into cross-run aggregates.
func (h *Histogram) Welford() stats.Welford { return h.w }

// Kind discriminates registry entries.
type Kind uint8

// Entry kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

var kindNames = [...]string{"counter", "gauge", "histogram"}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// entry is one named metric. Registering the same name again appends to
// the entry's source list: per-node counters sum into one network-wide
// series, which is what the experiments report. Registration order of
// the FIRST appearance fixes the entry's position forever.
type entry struct {
	name       string
	kind       Kind
	counters   []*Counter
	counters32 []*Counter32
	cfuncs     []func() uint64
	gauges     []*Gauge
	gfuncs     []func() float64
	hists      []*Histogram
}

func (e *entry) total() uint64 {
	var t uint64
	for _, c := range e.counters {
		t += c.v
	}
	for _, c := range e.counters32 {
		t += uint64(c.v)
	}
	for _, f := range e.cfuncs {
		t += f()
	}
	return t
}

func (e *entry) gaugeValue() float64 {
	var t float64
	for _, g := range e.gauges {
		t += g.v
	}
	for _, f := range e.gfuncs {
		t += f()
	}
	return t
}

func (e *entry) welford() stats.Welford {
	var w stats.Welford
	for _, h := range e.hists {
		w.Merge(h.w)
	}
	return w
}

// law is one conservation assertion: sum(left) == sum(right), exact in
// uint64 arithmetic, at any instant.
type law struct {
	name        string
	left, right []string
}

// invariant is one named custom predicate evaluated by Check alongside
// the conservation laws — the hook for assertions that are not exact
// equalities of counter sums (e.g. the fault plane's "downtime accrued
// cannot exceed sim time × N" bound).
type invariant struct {
	name string
	fn   func() error
}

// Registry holds the metric set of one simulation. It is not safe for
// concurrent use — the simulation is single-threaded per kernel, and
// parallel experiment sweeps build one registry per network. A
// Registry captured into a sweep worker closure from the enclosing
// scope is flagged by the sharedcap lint rule: every worker would
// mutate one shared metric set concurrently.
type Registry struct {
	entries    []*entry
	index      map[string]int
	laws       []law
	invariants []invariant
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]int)}
}

// lookup finds or creates the entry for name with the given kind,
// panicking on a kind clash — registering "x" as both a counter and a
// gauge is a programming error, not a runtime condition.
func (r *Registry) lookup(name string, k Kind) *entry {
	if i, ok := r.index[name]; ok {
		e := r.entries[i]
		if e.kind != k {
			panic(fmt.Sprintf("metrics: %q registered as %v and %v", name, e.kind, k))
		}
		return e
	}
	e := &entry{name: name, kind: k}
	r.index[name] = len(r.entries)
	r.entries = append(r.entries, e)
	return e
}

// Counter allocates and registers a fresh counter under name.
func (r *Registry) Counter(name string) *Counter {
	c := &Counter{}
	r.Observe(name, c)
	return c
}

// Observe registers an existing counter under name. Multiple sources
// registered under one name are summed (per-node counters roll up into
// one network series).
func (r *Registry) Observe(name string, c *Counter) {
	e := r.lookup(name, KindCounter)
	e.counters = append(e.counters, c)
}

// Observe32 registers an existing 4-byte counter under name; it is
// summed with any other sources of the same name, widened to uint64.
func (r *Registry) Observe32(name string, c *Counter32) {
	e := r.lookup(name, KindCounter)
	e.counters32 = append(e.counters32, c)
}

// Func registers an integer-valued function under name; it is summed
// with any counters of the same name. Func counters are how in-flight
// populations (queue depths, signals on the air) enter conservation
// laws exactly, without float arithmetic.
func (r *Registry) Func(name string, fn func() uint64) {
	e := r.lookup(name, KindCounter)
	e.cfuncs = append(e.cfuncs, fn)
}

// Gauge allocates and registers a fresh gauge under name.
func (r *Registry) Gauge(name string) *Gauge {
	g := &Gauge{}
	r.ObserveGauge(name, g)
	return g
}

// ObserveGauge registers an existing gauge under name (summed).
func (r *Registry) ObserveGauge(name string, g *Gauge) {
	e := r.lookup(name, KindGauge)
	e.gauges = append(e.gauges, g)
}

// GaugeFunc registers a float-valued function under name (summed with
// gauges of the same name).
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	e := r.lookup(name, KindGauge)
	e.gfuncs = append(e.gfuncs, fn)
}

// Histogram allocates and registers a fresh histogram under name.
func (r *Registry) Histogram(name string) *Histogram {
	h := &Histogram{}
	r.ObserveHistogram(name, h)
	return h
}

// ObserveHistogram registers an existing histogram under name; multiple
// sources are Welford-merged at snapshot time.
func (r *Registry) ObserveHistogram(name string, h *Histogram) {
	e := r.lookup(name, KindHistogram)
	e.hists = append(e.hists, h)
}

// Law registers the conservation assertion sum(left) == sum(right).
// Every referenced name must be (or become) a counter-kind entry;
// unknown or non-counter names are reported by Check, not here, so laws
// may be declared before late-registering layers attach their counters.
func (r *Registry) Law(name string, left, right []string) {
	r.laws = append(r.laws, law{name: name, left: left, right: right})
}

// Invariant registers a custom predicate evaluated by Check after the
// conservation laws. fn returns nil when the invariant holds and a
// descriptive error otherwise.
func (r *Registry) Invariant(name string, fn func() error) {
	r.invariants = append(r.invariants, invariant{name: name, fn: fn})
}

// sum adds up the counter totals behind names.
func (r *Registry) sum(names []string) (uint64, error) {
	var t uint64
	for _, n := range names {
		i, ok := r.index[n]
		if !ok {
			return 0, fmt.Errorf("unknown metric %q", n)
		}
		e := r.entries[i]
		if e.kind != KindCounter {
			return 0, fmt.Errorf("metric %q is a %v, not a counter", n, e.kind)
		}
		t += e.total()
	}
	return t, nil
}

// term renders one side of a law with per-name values, for violation
// messages.
func (r *Registry) term(names []string) string {
	parts := make([]string, 0, len(names))
	for _, n := range names {
		if i, ok := r.index[n]; ok && r.entries[i].kind == KindCounter {
			parts = append(parts, fmt.Sprintf("%s=%d", n, r.entries[i].total()))
		} else {
			parts = append(parts, n+"=?")
		}
	}
	return strings.Join(parts, " + ")
}

// Violation is one failed oracle check in structured form: which law
// or invariant failed and a human-readable account of the imbalance.
// The scenario fuzzer journals violations as values (its verdict
// plumbing); Check folds them into one error for the panic paths.
type Violation struct {
	// Name is the registered law or invariant name.
	Name string `json:"name"`
	// Kind is "law" for a conservation-law imbalance, "invariant" for a
	// custom predicate, or "config" when a law references an unknown or
	// non-counter metric (a registration bug, not a runtime condition).
	Kind string `json:"kind"`
	// Detail describes the violation with the per-term values.
	Detail string `json:"detail"`
}

// String renders the violation the way Check's error message does.
func (v Violation) String() string {
	return fmt.Sprintf("%s %q %s", v.Kind, v.Name, v.Detail)
}

// Violations evaluates every registered law and invariant and returns
// the failures in registration order (laws first, then invariants), or
// nil when every check holds. Both law sides are exact uint64 sums, so
// the comparison is precise at any instant.
func (r *Registry) Violations() []Violation {
	var out []Violation
	for _, l := range r.laws {
		lhs, err := r.sum(l.left)
		if err != nil {
			out = append(out, Violation{Name: l.name, Kind: "config", Detail: err.Error()})
			continue
		}
		rhs, err := r.sum(l.right)
		if err != nil {
			out = append(out, Violation{Name: l.name, Kind: "config", Detail: err.Error()})
			continue
		}
		if lhs != rhs {
			out = append(out, Violation{Name: l.name, Kind: "law",
				Detail: fmt.Sprintf("violated: %d != %d (%s | %s)",
					lhs, rhs, r.term(l.left), r.term(l.right))})
		}
	}
	for _, iv := range r.invariants {
		if err := iv.fn(); err != nil {
			out = append(out, Violation{Name: iv.name, Kind: "invariant",
				Detail: fmt.Sprintf("violated: %v", err)})
		}
	}
	return out
}

// Check evaluates every registered law and invariant and returns an
// error describing all violations (nil when every check holds).
func (r *Registry) Check() error {
	vs := r.Violations()
	if len(vs) == 0 {
		return nil
	}
	msgs := make([]string, len(vs))
	for i, v := range vs {
		msgs[i] = v.String()
	}
	return fmt.Errorf("metrics: %s", strings.Join(msgs, "; "))
}

// NumLaws returns how many conservation laws are registered.
func (r *Registry) NumLaws() int { return len(r.laws) }

// Sample is one metric's value in a snapshot. For counters, Count holds
// the total; for gauges, Value holds the sum; for histograms, Count is
// the sample count and Value/Std/Min/Max the merged moments.
type Sample struct {
	Name  string  `json:"name"`
	Kind  string  `json:"kind"`
	Count uint64  `json:"count,omitempty"`
	Value float64 `json:"value,omitempty"`
	Std   float64 `json:"std,omitempty"`
	Min   float64 `json:"min,omitempty"`
	Max   float64 `json:"max,omitempty"`
}

// Snapshot is a point-in-time copy of every registered metric, in
// registration order. Snapshots from same-seed runs are bit-for-bit
// identical, including their JSON encoding (no maps anywhere).
type Snapshot struct {
	Samples []Sample `json:"samples"`
}

// Snapshot captures the registry's current values.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{Samples: make([]Sample, 0, len(r.entries))}
	for _, e := range r.entries {
		smp := Sample{Name: e.name, Kind: e.kind.String()}
		switch e.kind {
		case KindCounter:
			smp.Count = e.total()
		case KindGauge:
			smp.Value = e.gaugeValue()
		case KindHistogram:
			w := e.welford()
			smp.Count = w.N()
			smp.Value = w.Mean()
			smp.Std = w.Std()
			smp.Min = w.Min()
			smp.Max = w.Max()
		}
		s.Samples = append(s.Samples, smp)
	}
	return s
}

// Get returns the sample for name, if present.
func (s *Snapshot) Get(name string) (Sample, bool) {
	for _, smp := range s.Samples {
		if smp.Name == name {
			return smp, true
		}
	}
	return Sample{}, false
}

// Count returns the counter total for name (0 when absent) — the
// common lookup in tests and assertions.
func (s *Snapshot) Count(name string) uint64 {
	smp, _ := s.Get(name)
	return smp.Count
}

// Sub returns the difference snapshot s - prev: counter totals and
// histogram sample counts subtract; gauge values and histogram moments
// are taken from s (a point-in-time value has no meaningful delta).
// Entries absent from prev pass through unchanged.
func (s *Snapshot) Sub(prev *Snapshot) *Snapshot {
	out := &Snapshot{Samples: make([]Sample, len(s.Samples))}
	copy(out.Samples, s.Samples)
	for i := range out.Samples {
		p, ok := prev.Get(out.Samples[i].Name)
		if !ok || p.Kind != out.Samples[i].Kind {
			continue
		}
		if out.Samples[i].Count >= p.Count {
			out.Samples[i].Count -= p.Count
		}
	}
	return out
}

// Table renders the snapshot as an aligned stats.Table.
func (s *Snapshot) Table(title string) *stats.Table {
	t := stats.NewTable(title, "name", "kind", "count", "value", "std", "min", "max")
	for _, smp := range s.Samples {
		t.AddRow(smp.Name, smp.Kind, smp.Count, smp.Value, smp.Std, smp.Min, smp.Max)
	}
	return t
}

// Source is implemented by protocol layers that expose metrics; the
// network checks for it when a protocol is installed.
type Source interface {
	RegisterMetrics(r *Registry)
}
