package routing

import (
	"testing"

	"routeless/internal/packet"
)

// Regression tests for the discovery give-up audit: a route or gradient
// learned passively while a discovery is pending must flush the queued
// data when the timeout fires — not re-flood next to a usable route,
// and never count the data as dropped. In each scenario the target is
// unreachable (radio off) during the source's discovery flood, then
// powers up and originates its own traffic toward the source, which
// teaches the source the way back before the timeout.

func TestRRTimeoutFlushesPassivelyLearnedGradient(t *testing.T) {
	nw, rrs := buildRR(t, RoutelessConfig{DiscoveryTimeout: 1}, 5, line(3, 200))
	got := 0
	nw.Nodes[2].OnAppReceive = func(*packet.Packet) { got++ }
	nw.Nodes[2].Radio.TurnOff()
	rrs[0].Send(2, 0) // queues data behind a discovery nobody can answer
	nw.Kernel.Schedule(0.3, func() {
		nw.Nodes[2].Radio.TurnOn()
		rrs[2].Send(0, 0) // the target's own discovery flood teaches 0 the gradient
	})
	nw.Run(6)
	if got != 1 {
		t.Fatalf("queued data delivered %d times, want 1", got)
	}
	s := rrs[0].Stats()
	if s.DiscoveriesSent != 1 {
		t.Fatalf("DiscoveriesSent = %d, want 1 (timeout re-flooded next to a known gradient)", s.DiscoveriesSent)
	}
	if s.DroppedNoRoute != 0 {
		t.Fatalf("DroppedNoRoute = %d, want 0", s.DroppedNoRoute)
	}
	if err := nw.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAODVTimeoutFlushesPassivelyLearnedRoute(t *testing.T) {
	nw, as := buildAODV(t, AODVConfig{NoHello: true, DiscoveryTimeout: 1}, 7, line(2, 150))
	got := 0
	nw.Nodes[1].OnAppReceive = func(*packet.Packet) { got++ }
	nw.Nodes[1].Radio.TurnOff()
	as[0].Send(1, 0)
	nw.Kernel.Schedule(0.3, func() {
		nw.Nodes[1].Radio.TurnOn()
		as[1].Send(0, 0) // its RREQ installs a reverse route to 1 at node 0
	})
	nw.Run(6)
	if got != 1 {
		t.Fatalf("queued data delivered %d times, want 1", got)
	}
	s := as[0].Stats()
	if s.Rediscoveries != 0 {
		t.Fatalf("Rediscoveries = %d, want 0 (timeout re-flooded next to a valid route)", s.Rediscoveries)
	}
	if s.DroppedNoRoute != 0 {
		t.Fatalf("DroppedNoRoute = %d, want 0", s.DroppedNoRoute)
	}
	if err := nw.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGradientTimeoutFlushesPassivelyLearnedGradient(t *testing.T) {
	nw, gs := buildGrad(t, GradientConfig{DiscoveryTimeout: 1}, 9, line(3, 200))
	got := 0
	nw.Nodes[2].OnAppReceive = func(*packet.Packet) { got++ }
	nw.Nodes[2].Radio.TurnOff()
	gs[0].Send(2, 0)
	nw.Kernel.Schedule(0.3, func() {
		nw.Nodes[2].Radio.TurnOn()
		gs[2].Send(0, 0)
	})
	nw.Run(6)
	if got != 1 {
		t.Fatalf("queued data delivered %d times, want 1", got)
	}
	s := gs[0].Stats()
	if s.DiscoveriesSent != 1 {
		t.Fatalf("DiscoveriesSent = %d, want 1 (timeout re-flooded next to a known gradient)", s.DiscoveriesSent)
	}
	if s.DroppedNoRoute != 0 {
		t.Fatalf("DroppedNoRoute = %d, want 0", s.DroppedNoRoute)
	}
	if err := nw.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
