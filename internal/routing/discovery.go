package routing

import (
	"routeless/internal/packet"
	"routeless/internal/sim"
)

// pendingData is one data packet parked behind a route/gradient
// discovery, keeping its original creation time so end-to-end delay
// includes discovery latency.
type pendingData struct {
	size    int
	created sim.Time
}

// discovery is the per-target discovery state: the retry timer, the
// retry count, and the data queued until the route (or gradient)
// exists.
type discovery struct {
	timer   *sim.Timer
	retries int
	queue   []pendingData
}

// discoverySet is the shared per-target discovery bookkeeping used by
// all three routing protocols. The three implementations used to drift
// on exactly the life-cycle corners this type centralizes: stopping the
// timer on success (so no stale timeout can fire afterwards), removing
// the entry exactly once, and handing the queued data back to the
// caller for flushing or drop accounting.
type discoverySet map[packet.NodeID]*discovery

// ensure returns the discovery for target, creating it on first use
// with a timer bound to onTimeout. started reports whether this call
// created it — the caller then emits the first flood and arms the
// timer.
func (s discoverySet) ensure(target packet.NodeID, k *sim.Kernel, onTimeout func()) (d *discovery, started bool) {
	if d, ok := s[target]; ok {
		return d, false
	}
	d = &discovery{timer: sim.NewTimer(k, onTimeout)}
	s[target] = d
	return d, true
}

// pending reports whether a discovery for target is in progress.
func (s discoverySet) pending(target packet.NodeID) bool {
	_, ok := s[target]
	return ok
}

// succeed completes target's discovery: the timer is stopped — a stale
// timeout firing after success was one of the audited accounting bugs —
// the entry is removed, and the data queued behind the discovery is
// returned for flushing through the normal send path.
func (s discoverySet) succeed(target packet.NodeID) []pendingData {
	d, ok := s[target]
	if !ok {
		return nil
	}
	d.timer.Stop()
	delete(s, target)
	return d.queue
}

// step advances target's discovery at a timeout firing and reports
// whether another retry should run. retry == false with d != nil means
// the discovery gave up: the entry is removed (timer defensively
// stopped) and d.queue holds the never-sent data for drop accounting.
// d == nil means no discovery was pending — a stale firing with nothing
// to do.
func (s discoverySet) step(target packet.NodeID, maxRetries int) (d *discovery, retry bool) {
	d, ok := s[target]
	if !ok {
		return nil, false
	}
	d.retries++
	if d.retries > maxRetries {
		d.timer.Stop()
		delete(s, target)
		return d, false
	}
	return d, true
}
