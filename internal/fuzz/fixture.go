package fuzz

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// Fixture is a replayable failing scenario: the shrunken scenario, the
// verdict that flagged it, and a human note on what bug it pinned.
// Fixtures are committed under testdata/ next to a regression test that
// replays them, so every bug the fuzzer ever found stays fixed.
type Fixture struct {
	// Scenario is the (shrunken) reproducer.
	Scenario Scenario `json:"scenario"`
	// Verdict is the verdict the scenario produced when captured.
	Verdict string `json:"verdict"`
	// Detail is the captured failure detail (first violation, panic
	// message head, divergence site).
	Detail string `json:"detail,omitempty"`
	// Note says which bug this fixture pins, for the human reading the
	// testdata directory.
	Note string `json:"note,omitempty"`
}

// Encode renders the fixture as indented JSON with a trailing newline —
// the committed-file form.
func (f Fixture) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// DecodeFixture parses a fixture, rejecting unknown fields so a stale
// fixture schema fails loudly instead of replaying the wrong scenario.
func DecodeFixture(b []byte) (Fixture, error) {
	var f Fixture
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return Fixture{}, fmt.Errorf("fuzz: bad fixture: %w", err)
	}
	return f, nil
}

// LoadFixture reads and decodes a fixture file.
func LoadFixture(path string) (Fixture, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Fixture{}, err
	}
	return DecodeFixture(b)
}
