package rng

import "math/rand"

// cursor wraps a rand.Source64 and counts draws. Both rand.NewSource's
// stdlib source and compactSource implement Source64, and rand.Rand
// takes the same internal code paths whether it holds the raw source or
// this wrapper (forwarding is exact), so a tracked stream produces the
// identical draw sequence to its untracked twin — the counter observes,
// never perturbs.
type cursor struct {
	src rand.Source64
	n   uint64
}

func (c *cursor) Int63() int64 {
	c.n++
	return c.src.Int63()
}

func (c *cursor) Uint64() uint64 {
	c.n++
	return c.src.Uint64()
}

func (c *cursor) Seed(seed int64) { c.src.Seed(seed) }

// Tracker is an ordered registry of tracked random streams. Every
// stream created through it records its derivation labels and a live
// draw count; Visit walks them in creation order, which is itself
// deterministic because stream creation order is part of the simulator
// construction path. Snapshot verification hashes (labels, draws) per
// stream: two runs whose trackers hash equal have consumed randomness
// identically.
//
// A Tracker is not safe for concurrent use; like every other simulator
// component it belongs to exactly one run.
type Tracker struct {
	streams []*cursor
	labels  [][]uint64
}

// NewTracker returns an empty registry.
func NewTracker() *Tracker { return &Tracker{} }

func (t *Tracker) track(src rand.Source64, labels []uint64) *rand.Rand {
	c := &cursor{src: src}
	t.streams = append(t.streams, c)
	t.labels = append(t.labels, labels)
	return rand.New(c)
}

// New is the tracked twin of the package-level New: same derivation,
// same draw sequence, plus a registered cursor.
func (t *Tracker) New(seed int64, labels ...uint64) *rand.Rand {
	src := rand.NewSource(Derive(seed, labels...)).(rand.Source64)
	return t.track(src, labels)
}

// ForNode is the tracked twin of the package-level ForNode.
func (t *Tracker) ForNode(seed int64, layer uint64, nodeID int) *rand.Rand {
	src := rand.NewSource(Derive(seed, layer, uint64(nodeID)+0x1000)).(rand.Source64)
	return t.track(src, []uint64{layer, uint64(nodeID) + 0x1000})
}

// ForNodeCompact is the tracked twin of the package-level
// ForNodeCompact.
func (t *Tracker) ForNodeCompact(seed int64, layer uint64, nodeID int) *rand.Rand {
	src := &compactSource{state: uint64(Derive(seed, layer, uint64(nodeID)+0x1000))}
	return t.track(src, []uint64{layer, uint64(nodeID) + 0x1000})
}

// Len reports how many streams have been created through the tracker.
func (t *Tracker) Len() int { return len(t.streams) }

// Visit calls fn for every tracked stream in creation order with its
// derivation labels and the number of draws consumed so far.
func (t *Tracker) Visit(fn func(labels []uint64, draws uint64)) {
	for i, c := range t.streams {
		fn(t.labels[i], c.n)
	}
}
