package phy

import (
	"math"
	"testing"

	"routeless/internal/geo"
	"routeless/internal/packet"
	"routeless/internal/propagation"
	"routeless/internal/sim"
)

// recorder is a test Listener capturing all PHY indications.
type recorder struct {
	rx      []*packet.Packet
	rssi    []float64
	rxTimes []sim.Time
	busy    int
	idle    int
	txDone  int
	kernel  *sim.Kernel
}

func (r *recorder) OnReceive(p *packet.Packet, rssiDBm float64) {
	r.rx = append(r.rx, p)
	r.rssi = append(r.rssi, rssiDBm)
	if r.kernel != nil {
		r.rxTimes = append(r.rxTimes, r.kernel.Now())
	}
}
func (r *recorder) OnMediumBusy() { r.busy++ }
func (r *recorder) OnMediumIdle() { r.idle++ }
func (r *recorder) OnTxDone()     { r.txDone++ }

func testChannel(t *testing.T, positions []geo.Point, rangeM float64) (*sim.Kernel, *Channel, []*recorder) {
	t.Helper()
	k := sim.NewKernel(1)
	model := propagation.NewFreeSpace()
	params := DefaultParams(model, rangeM)
	ch := NewChannel(k, geo.NewRect(3000, 3000), positions, params, ChannelConfig{Model: model})
	recs := make([]*recorder, len(positions))
	for i := range positions {
		recs[i] = &recorder{kernel: k}
		ch.Radio(i).SetListener(recs[i])
	}
	return k, ch, recs
}

func pkt(size int) *packet.Packet {
	return &packet.Packet{Kind: packet.KindData, To: packet.Broadcast, Size: size}
}

// pts builds a point slice from interleaved x,y coordinates.
func pts(xy ...float64) []geo.Point {
	if len(xy)%2 != 0 {
		panic("pts: odd coordinate count")
	}
	out := make([]geo.Point, len(xy)/2)
	for i := range out {
		out[i] = geo.Point{X: xy[2*i], Y: xy[2*i+1]}
	}
	return out
}

func TestDeliveryInRange(t *testing.T) {
	k, ch, recs := testChannel(t, pts(0, 0, 200, 0), 250)
	ch.Radio(0).Transmit(pkt(100))
	k.Run()
	if len(recs[1].rx) != 1 {
		t.Fatalf("receiver got %d frames, want 1", len(recs[1].rx))
	}
	if recs[0].txDone != 1 {
		t.Fatal("transmitter missing OnTxDone")
	}
	// RSSI should match the model exactly (no fading).
	want := ch.MeanPowerAt(0, 1)
	if math.Abs(recs[1].rssi[0]-want) > 1e-9 {
		t.Fatalf("rssi %v, want %v", recs[1].rssi[0], want)
	}
	// Delivery time = propagation delay + airtime.
	airtime := ch.Radio(0).Params().AirTime(100)
	wantT := sim.Time(propagation.Delay(200)) + airtime
	if math.Abs(float64(recs[1].rxTimes[0]-wantT)) > 1e-12 {
		t.Fatalf("delivered at %v, want %v", recs[1].rxTimes[0], wantT)
	}
}

func TestNoDeliveryOutOfRange(t *testing.T) {
	k, ch, recs := testChannel(t, pts(0, 0, 2000, 0), 250)
	ch.Radio(0).Transmit(pkt(100))
	k.Run()
	if len(recs[1].rx) != 0 {
		t.Fatal("out-of-range receiver decoded a frame")
	}
}

func TestGrayZoneSensedNotDecoded(t *testing.T) {
	// Between decode range (250) and carrier-sense range (~550): the
	// medium goes busy but no frame is delivered.
	k, ch, recs := testChannel(t, pts(0, 0, 400, 0), 250)
	ch.Radio(0).Transmit(pkt(100))
	k.Run()
	if len(recs[1].rx) != 0 {
		t.Fatal("gray-zone receiver decoded a frame")
	}
	if recs[1].busy == 0 || recs[1].idle == 0 {
		t.Fatalf("carrier transitions busy=%d idle=%d, want both > 0", recs[1].busy, recs[1].idle)
	}
}

func TestCollisionSymmetric(t *testing.T) {
	// Two transmitters equidistant from the middle receiver start at
	// the same time: neither frame survives.
	k, ch, recs := testChannel(t, pts(0, 0, 100, 0, 200, 0), 250)
	ch.Radio(0).Transmit(pkt(100))
	ch.Radio(2).Transmit(pkt(100))
	k.Run()
	if len(recs[1].rx) != 0 {
		t.Fatalf("middle receiver decoded %d frames during collision", len(recs[1].rx))
	}
	st := ch.Radio(1).Stats()
	if st.Collisions+st.MissedWeak == 0 {
		t.Fatal("collision not counted")
	}
}

func TestCapture(t *testing.T) {
	// A much closer transmitter (>>10 dB stronger) wins over a distant
	// one that starts later.
	k, ch, recs := testChannel(t, pts(0, 0, 20, 0, 240, 0), 250)
	ch.Radio(0).Transmit(pkt(100)) // strong, locks receiver 1
	ch.Radio(2).Transmit(pkt(100)) // weak interference at 1
	k.Run()
	got := 0
	for _, p := range recs[1].rx {
		if p.From == 0 {
			got++
		}
	}
	if got != 1 {
		t.Fatalf("strong frame not captured: receiver 1 got %d frames from n0", got)
	}
}

func TestHalfDuplexTransmitterDeaf(t *testing.T) {
	k, ch, recs := testChannel(t, pts(0, 0, 100, 0), 250)
	// Both transmit simultaneously: neither hears the other.
	ch.Radio(0).Transmit(pkt(100))
	ch.Radio(1).Transmit(pkt(100))
	k.Run()
	if len(recs[0].rx)+len(recs[1].rx) != 0 {
		t.Fatal("half-duplex radios decoded frames while transmitting")
	}
}

func TestTransmitAbortsReception(t *testing.T) {
	k, ch, recs := testChannel(t, pts(0, 0, 100, 0), 250)
	ch.Radio(0).Transmit(pkt(1000))
	// Node 1 starts its own transmission mid-reception.
	k.Schedule(0.004, func() { ch.Radio(1).Transmit(pkt(100)) })
	k.Run()
	if len(recs[1].rx) != 0 {
		t.Fatal("aborted reception still delivered")
	}
	if ch.Radio(1).Stats().AbortedByTx != 1 {
		t.Fatal("AbortedByTx not counted")
	}
	// Node 1's frame ended while node 0 was still transmitting, so node
	// 0 heard nothing either (half-duplex both ways).
	if len(recs[0].rx) != 0 {
		t.Fatal("node 0 decoded a frame that overlapped its own transmission")
	}
	// Once both radios are idle again, traffic flows normally.
	ch.Radio(1).Transmit(pkt(100))
	k.Run()
	if len(recs[0].rx) != 1 {
		t.Fatal("node 0 should decode node 1's later frame after both went idle")
	}
}

func TestSequentialFramesBothDelivered(t *testing.T) {
	k, ch, recs := testChannel(t, pts(0, 0, 100, 0), 250)
	ch.Radio(0).Transmit(pkt(100))
	air := ch.Radio(0).Params().AirTime(100)
	k.Schedule(air+0.001, func() { ch.Radio(0).Transmit(pkt(100)) })
	k.Run()
	if len(recs[1].rx) != 2 {
		t.Fatalf("got %d frames, want 2", len(recs[1].rx))
	}
}

func TestTurnOffDropsFrames(t *testing.T) {
	k, ch, recs := testChannel(t, pts(0, 0, 100, 0), 250)
	ch.Radio(1).TurnOff()
	ch.Radio(0).Transmit(pkt(100))
	k.Run()
	if len(recs[1].rx) != 0 {
		t.Fatal("off radio decoded a frame")
	}
	if ch.Radio(1).Stats().DroppedOff != 1 {
		t.Fatal("DroppedOff not counted")
	}
}

func TestTurnOffMidReceptionLosesFrame(t *testing.T) {
	k, ch, recs := testChannel(t, pts(0, 0, 100, 0), 250)
	ch.Radio(0).Transmit(pkt(1000)) // 8 ms at 1 Mbps
	k.Schedule(0.004, func() { ch.Radio(1).TurnOff() })
	k.Run()
	if len(recs[1].rx) != 0 {
		t.Fatal("frame delivered despite mid-reception power-down")
	}
	if ch.Radio(1).Stats().AbortedByOff != 1 {
		t.Fatal("AbortedByOff not counted")
	}
}

func TestTurnOnMidFrameDoesNotDecode(t *testing.T) {
	k, ch, recs := testChannel(t, pts(0, 0, 100, 0), 250)
	ch.Radio(1).TurnOff()
	ch.Radio(0).Transmit(pkt(1000))
	k.Schedule(0.004, func() { ch.Radio(1).TurnOn() })
	k.Run()
	if len(recs[1].rx) != 0 {
		t.Fatal("radio decoded a frame whose start it never heard")
	}
	// But a later frame decodes fine.
	ch.Radio(0).Transmit(pkt(100))
	k.Run()
	if len(recs[1].rx) != 1 {
		t.Fatal("radio did not recover after TurnOn")
	}
}

func TestSleepBehavesLikeOffForReception(t *testing.T) {
	k, ch, recs := testChannel(t, pts(0, 0, 100, 0), 250)
	ch.Radio(1).Sleep()
	ch.Radio(0).Transmit(pkt(100))
	k.Run()
	if len(recs[1].rx) != 0 {
		t.Fatal("sleeping radio decoded a frame")
	}
	if ch.Radio(1).State() != StateSleep {
		t.Fatal("state should be sleep")
	}
}

func TestTransmitWhileOffPanics(t *testing.T) {
	_, ch, _ := testChannel(t, pts(0, 0, 100, 0), 250)
	ch.Radio(0).TurnOff()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ch.Radio(0).Transmit(pkt(100))
}

func TestCarrierBusyDuringOwnTx(t *testing.T) {
	k, ch, _ := testChannel(t, pts(0, 0, 100, 0), 250)
	ch.Radio(0).Transmit(pkt(1000))
	if !ch.Radio(0).CarrierBusy() {
		t.Fatal("transmitting radio should sense busy")
	}
	k.Run()
	if ch.Radio(0).CarrierBusy() {
		t.Fatal("idle radio senses busy")
	}
}

func TestReceiverCopiesAreIndependent(t *testing.T) {
	k, ch, recs := testChannel(t, pts(0, 0, 100, 0, 100, 100), 250)
	ch.Radio(0).Transmit(pkt(100))
	k.Run()
	if len(recs[1].rx) != 1 || len(recs[2].rx) != 1 {
		t.Fatal("expected both receivers to decode")
	}
	recs[1].rx[0].HopCount = 42
	if recs[2].rx[0].HopCount == 42 {
		t.Fatal("receivers share a packet instance")
	}
}

func TestAirTime(t *testing.T) {
	p := Params{BitRate: 1e6}
	if at := p.AirTime(125); math.Abs(float64(at)-0.001) > 1e-12 {
		t.Fatalf("AirTime(125B@1Mbps) = %v, want 1ms", at)
	}
}

func TestDefaultParamsCalibration(t *testing.T) {
	m := propagation.NewFreeSpace()
	params := DefaultParams(m, 250)
	r := propagation.RangeFor(m, params.TxPowerDBm, params.RxThreshDBm, 1, 5000)
	if math.Abs(r-250) > 1 {
		t.Fatalf("decode range %v, want ~250", r)
	}
	cs := propagation.RangeFor(m, params.TxPowerDBm, params.CSThreshDBm, 1, 5000)
	if cs < 400 || cs > 700 {
		t.Fatalf("carrier-sense range %v, want ~550", cs)
	}
}

func TestConnected(t *testing.T) {
	k := sim.NewKernel(1)
	model := propagation.NewFreeSpace()
	params := DefaultParams(model, 250)
	// A connected chain.
	chain := NewChannel(k, geo.NewRect(3000, 3000), pts(0, 0, 200, 0, 400, 0), params, ChannelConfig{Model: model})
	if !chain.Connected() {
		t.Fatal("chain should be connected")
	}
	// A split pair.
	split := NewChannel(k, geo.NewRect(3000, 3000), pts(0, 0, 200, 0, 1500, 0), params, ChannelConfig{Model: model})
	if split.Connected() {
		t.Fatal("split topology reported connected")
	}
}

func TestNeighborCount(t *testing.T) {
	k := sim.NewKernel(1)
	model := propagation.NewFreeSpace()
	params := DefaultParams(model, 250)
	ch := NewChannel(k, geo.NewRect(3000, 3000), pts(0, 0, 100, 0, 200, 0, 800, 0), params, ChannelConfig{Model: model})
	if n := ch.NeighborCount(0); n != 2 {
		t.Fatalf("NeighborCount(0) = %d, want 2", n)
	}
}

func TestEnergyAccounting(t *testing.T) {
	k, ch, _ := testChannel(t, pts(0, 0, 100, 0), 250)
	r := ch.Radio(0)
	ch.Radio(1).TurnOff()
	r.Transmit(pkt(1250)) // 10 ms airtime at 1 Mbps
	k.Run()
	k.RunUntil(1.0)
	e := r.Energy()
	p := DefaultPower()
	wantTx := p.Tx * 0.01
	if got := e.InState(k.Now(), StateTx); math.Abs(got-wantTx) > 1e-9 {
		t.Fatalf("tx energy %v, want %v", got, wantTx)
	}
	wantIdle := p.Idle * 0.99
	if got := e.InState(k.Now(), StateIdle); math.Abs(got-wantIdle) > 1e-6 {
		t.Fatalf("idle energy %v, want %v", got, wantIdle)
	}
	total := e.Total(k.Now())
	if math.Abs(total-(wantTx+wantIdle)) > 1e-6 {
		t.Fatalf("total %v, want %v", total, wantTx+wantIdle)
	}
	// Sleeping is far cheaper than idling.
	e2 := ch.Radio(1).Energy()
	if e2.Total(k.Now()) >= total {
		t.Fatal("off radio consumed at least as much as an active one")
	}
}

func TestFadingChangesRSSI(t *testing.T) {
	k := sim.NewKernel(1)
	model := propagation.NewFreeSpace()
	params := DefaultParams(model, 250)
	ch := NewChannel(k, geo.NewRect(3000, 3000), pts(0, 0, 100, 0), params, ChannelConfig{
		Model:        model,
		Fader:        propagation.LogNormalShadow{SigmaDB: 6},
		FadeMarginDB: 20,
		Rng:          sim.NewKernel(7).Rand(),
	})
	rec := &recorder{}
	ch.Radio(1).SetListener(rec)
	ch.Radio(0).SetListener(&recorder{})
	for i := 0; i < 5; i++ {
		ch.Radio(0).Transmit(pkt(100))
		k.Run()
	}
	if len(rec.rx) == 0 {
		t.Fatal("no frames decoded under shadowing at 100 m")
	}
	mean := ch.MeanPowerAt(0, 1)
	varies := false
	for _, rssi := range rec.rssi {
		if math.Abs(rssi-mean) > 0.01 {
			varies = true
		}
	}
	if !varies {
		t.Fatal("fading did not perturb RSSI")
	}
}

func TestChannelStats(t *testing.T) {
	k, ch, _ := testChannel(t, pts(0, 0, 100, 0, 200, 0), 250)
	ch.Radio(0).Transmit(pkt(100))
	k.Run()
	st := ch.Stats()
	if st.Transmissions != 1 {
		t.Fatalf("Transmissions = %d", st.Transmissions)
	}
	if st.Deliveries != 2 {
		t.Fatalf("Deliveries = %d, want 2", st.Deliveries)
	}
}

func TestStateString(t *testing.T) {
	for s := StateIdle; s <= StateOff; s++ {
		if s.String() == "" {
			t.Fatal("empty state name")
		}
	}
}

func TestCaptureThresholdBoundary(t *testing.T) {
	// Interference exactly at the capture margin: a frame 10 dB above
	// the interferer (plus noise) survives; just below, it dies. Place
	// the interferer so the wanted frame's SINR straddles CaptureDB.
	wanted := 100.0 // distance of wanted transmitter
	// Free space: +10 dB ⇔ ×10 power ⇔ √10 ≈ 3.162× distance.
	survive := wanted * 3.6 // comfortably beyond √10 → SINR > 10 dB
	corrupt := wanted * 2.8 // inside √10 → SINR < 10 dB
	for _, tc := range []struct {
		interferer float64
		delivered  bool
	}{
		{survive, true},
		{corrupt, false},
	} {
		k, ch, recs := testChannel(t, pts(0, 0, wanted, 0, wanted+tc.interferer, 0), 250)
		ch.Radio(0).Transmit(pkt(100))
		ch.Radio(2).Transmit(pkt(100))
		k.Run()
		got := false
		for _, p := range recs[1].rx {
			if p.From == 0 {
				got = true
			}
		}
		if got != tc.delivered {
			t.Fatalf("interferer at %.0f m: delivered=%v, want %v",
				tc.interferer, got, tc.delivered)
		}
	}
}

func TestEnergySleepCheaperThanIdle(t *testing.T) {
	k, ch, _ := testChannel(t, pts(0, 0, 2000, 0), 250)
	ch.Radio(1).Sleep()
	k.RunUntil(100)
	idleJ := ch.Radio(0).Energy().Total(k.Now())
	sleepJ := ch.Radio(1).Energy().Total(k.Now())
	if sleepJ >= idleJ/100 {
		t.Fatalf("sleep %vJ should be orders cheaper than idle %vJ", sleepJ, idleJ)
	}
}

func TestTurnOffMidTransmitTruncates(t *testing.T) {
	// Power-down ordering audit: a radio turned off while transmitting
	// must abort the frame on the channel — receivers that locked onto
	// it count Truncated instead of delivering — and the energy meter
	// must charge Tx draw only up to the power-down instant.
	k, ch, recs := testChannel(t, pts(0, 0, 100, 0), 250)
	ch.Radio(0).Transmit(pkt(1000)) // 8 ms at 1 Mbps
	k.Schedule(0.004, func() { ch.Radio(0).TurnOff() })
	k.Run()
	if len(recs[1].rx) != 0 {
		t.Fatal("receiver decoded a frame whose transmission was powered down mid-air")
	}
	if got := ch.Radio(0).Stats().TxAborted; got != 1 {
		t.Fatalf("TxAborted = %d, want 1", got)
	}
	if got := ch.Radio(1).Stats().Truncated; got != 1 {
		t.Fatalf("Truncated = %d, want 1", got)
	}
	if recs[0].txDone != 0 {
		t.Fatal("OnTxDone fired for an aborted transmission")
	}
	// Tx draw for exactly [0, 4 ms], zero while off.
	wantJ := 0.004 * DefaultPower().Tx
	if got := ch.Radio(0).Energy().Total(k.Now()); math.Abs(got-wantJ) > 1e-9 {
		t.Fatalf("energy %v J, want %v J", got, wantJ)
	}
	// The radio recovers, and the stale completion event of the
	// truncated transmission must not terminate the new frame early.
	ch.Radio(0).TurnOn()
	ch.Radio(0).Transmit(pkt(100))
	k.Run()
	if len(recs[1].rx) != 1 {
		t.Fatal("radio did not recover after mid-transmit TurnOff")
	}
	if recs[0].txDone != 1 {
		t.Fatalf("OnTxDone fired %d times, want 1 (the post-recovery frame only)", recs[0].txDone)
	}
}

func TestSleepMidTransmitTruncates(t *testing.T) {
	// Sleep shares powerDown with TurnOff; the in-flight frame must not
	// decode either way.
	k, ch, recs := testChannel(t, pts(0, 0, 100, 0), 250)
	ch.Radio(0).Transmit(pkt(1000))
	k.Schedule(0.004, func() { ch.Radio(0).Sleep() })
	k.Run()
	if len(recs[1].rx) != 0 {
		t.Fatal("receiver decoded a frame whose sender slept mid-transmission")
	}
	if got := ch.Radio(0).Stats().TxAborted; got != 1 {
		t.Fatalf("TxAborted = %d, want 1", got)
	}
}

func TestLinkCacheFollowsReceiverMove(t *testing.T) {
	// Invalidation contract (see Channel.MoveTo): a receiver that moves
	// after a transmitter's link cache was built must be seen at its new
	// position by the very next transmission.
	k, ch, recs := testChannel(t, pts(0, 0, 100, 0), 250)
	ch.Radio(0).Transmit(pkt(100)) // builds node 0's link cache
	k.Run()
	if len(recs[1].rx) != 1 {
		t.Fatalf("baseline delivery failed: %d frames", len(recs[1].rx))
	}
	// Out of range: the cached link to node 1 must not deliver.
	ch.MoveTo(1, geo.Point{X: 2500, Y: 0})
	ch.Radio(0).Transmit(pkt(100))
	k.Run()
	if len(recs[1].rx) != 1 {
		t.Fatal("moved-away receiver still got a frame from a stale link cache")
	}
	// Back in range, different position: delivered again, with the RSSI
	// of the new distance, not the cached one.
	ch.MoveTo(1, geo.Point{X: 200, Y: 0})
	ch.Radio(0).Transmit(pkt(100))
	k.Run()
	if len(recs[1].rx) != 2 {
		t.Fatal("moved-back receiver missing from the rebuilt link cache")
	}
	if want := ch.MeanPowerAt(0, 1); math.Abs(recs[1].rssi[1]-want) > 1e-9 {
		t.Fatalf("rssi %v, want %v (stale cached power?)", recs[1].rssi[1], want)
	}
}

func TestLinkCacheSeesMoveIntoRange(t *testing.T) {
	// The mirror case: a node absent from the cached receiver set (too
	// far when the cache was built) moves into range and must appear.
	k, ch, recs := testChannel(t, pts(0, 0, 2500, 0), 250)
	ch.Radio(0).Transmit(pkt(100))
	k.Run()
	if len(recs[1].rx) != 0 {
		t.Fatal("out-of-range receiver decoded a frame")
	}
	ch.MoveTo(1, geo.Point{X: 100, Y: 0})
	ch.Radio(0).Transmit(pkt(100))
	k.Run()
	if len(recs[1].rx) != 1 {
		t.Fatal("receiver that moved into range missing from the link cache")
	}
}

func TestLinkCacheSurvivesReceiverOffOn(t *testing.T) {
	// Power state is a radio property, not a link property: a cached
	// receiver that turns off drops frames at its own radio (DroppedOff),
	// and receives again after TurnOn without any cache rebuild.
	k, ch, recs := testChannel(t, pts(0, 0, 100, 0), 250)
	ch.Radio(0).Transmit(pkt(100))
	k.Run()
	if len(recs[1].rx) != 1 {
		t.Fatalf("baseline delivery failed: %d frames", len(recs[1].rx))
	}
	ch.Radio(1).TurnOff()
	ch.Radio(0).Transmit(pkt(100))
	k.Run()
	if len(recs[1].rx) != 1 {
		t.Fatal("off receiver decoded a frame")
	}
	if got := ch.Radio(1).Stats().DroppedOff; got != 1 {
		t.Fatalf("DroppedOff = %d, want 1 (cache must still schedule the delivery)", got)
	}
	ch.Radio(1).TurnOn()
	ch.Radio(0).Transmit(pkt(100))
	k.Run()
	if len(recs[1].rx) != 2 {
		t.Fatal("receiver did not receive after TurnOn")
	}
}
