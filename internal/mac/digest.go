package mac

import (
	"routeless/internal/digest"
	"routeless/internal/packet"
)

// digestFrame folds one queued frame reference into h by UID. A frame
// sitting in the MAC has already been assigned its UID on a previous
// transmit attempt, or carries UID zero if it has never been on the air;
// both values are deterministic per run.
func digestFrame(h *digest.Hash, p *packet.Packet) {
	if p == nil {
		h.Bool(false)
		return
	}
	h.Bool(true)
	h.Uint64(p.UID)
	h.Int64(int64(p.From))
	h.Int64(int64(p.To))
	h.Byte(byte(p.Kind))
	h.Uint64(uint64(p.Seq))
}

// DigestState folds the MAC's contention machine into h: the CSMA/CA
// state, backoff and retry counters, the frame in service, the priority
// queue contents (heap storage order — deterministic per run), the ARQ
// reference, and the duplicate-delivery FIFO. The rxSeen map mirrors
// rxSeenFIFO exactly, so only the slice is hashed.
func (m *MAC) DigestState(h *digest.Hash) {
	h.Byte(byte(m.state))
	h.Int(m.slotsLeft)
	h.Int(m.cw)
	h.Int(m.retries)
	h.Uint64(m.ackRef)
	digestFrame(h, m.pendingTx)
	if m.current != nil {
		h.Bool(true)
		digestFrame(h, m.current.pkt)
		h.Float64(m.current.priority)
		h.Uint64(m.current.seq)
	} else {
		h.Bool(false)
	}
	h.Uint64(m.queue.seq)
	h.Int(len(m.queue.items))
	for _, e := range m.queue.items {
		digestFrame(h, e.pkt)
		h.Float64(e.priority)
		h.Uint64(e.seq)
	}
	h.Int(len(m.rxSeenFIFO))
	for _, uid := range m.rxSeenFIFO {
		h.Uint64(uid)
	}
}
