package node

import (
	"fmt"

	"routeless/internal/geo"
	"routeless/internal/mac"
	"routeless/internal/metrics"
	"routeless/internal/packet"
	"routeless/internal/phy"
	"routeless/internal/propagation"
	"routeless/internal/rng"
	"routeless/internal/sim"
)

// Config describes a network to build. Zero-value fields take the
// defaults noted on each field.
type Config struct {
	// N is the node count (ignored when Positions is set).
	N int
	// Rect is the terrain; default 1000×1000 m.
	Rect geo.Rect
	// Positions places nodes explicitly; when nil, N nodes are placed
	// uniformly at random.
	Positions []geo.Point
	// Range is the calibrated transmission range in meters; default 250
	// (the paper's §4.3 value).
	Range float64
	// Model is the propagation model; default free space (§3).
	Model propagation.Model
	// Fader adds small-scale fading; default none.
	Fader propagation.Fader
	// FadeMarginDB widens the channel cutoff under fading; default 12.
	FadeMarginDB float64
	// MAC holds medium-access parameters; default mac.DefaultConfig.
	MAC *mac.Config
	// Seed drives every random stream in the network.
	Seed int64
	// EnsureConnected regenerates random placements (up to 100 draws)
	// until the unit-disk graph is connected, matching the paper's
	// implicit assumption that flooding reaches every node.
	EnsureConnected bool
	// Runtime, when non-nil, supplies externally owned reusable
	// allocation state (event free list, phy pools, range cache) — a
	// sweep worker's run context. Nil builds private state with
	// identical behavior; reuse changes allocation counts only, never
	// results.
	Runtime *Runtime
}

// Runtime is the reusable allocation state one sweep worker owns: the
// kernel event free list, the phy signal/delivery pools, and the
// cross-model range cache. A Runtime warms up on a worker's first run
// and makes every later run on that worker allocate less; it must
// never be shared between networks that run concurrently.
type Runtime struct {
	Events *sim.EventPool
	Phy    *phy.Pools
	Ranges *propagation.SharedRangeCache
}

// NewRuntime returns a fresh runtime with empty pools.
func NewRuntime() *Runtime {
	return &Runtime{
		Events: sim.NewEventPool(),
		Phy:    phy.NewPools(),
		Ranges: propagation.NewSharedRangeCache(),
	}
}

// Network is a fully assembled simulation: kernel, channel, and nodes.
// Protocols and applications are attached after construction.
type Network struct {
	Kernel  *sim.Kernel
	Channel *phy.Channel
	Nodes   []*Node
	Rect    geo.Rect
	Seed    int64

	// Metrics is the network-wide registry: channel counters, then every
	// radio and MAC in node-id order, then any protocol implementing
	// metrics.Source at Install time. Registration order is fixed, so
	// same-seed snapshots are bit-for-bit identical.
	Metrics *metrics.Registry
}

// New builds the network. It panics on nonsensical configuration —
// construction errors are programming errors in experiment setup.
func New(cfg Config) *Network {
	if cfg.Rect == (geo.Rect{}) {
		cfg.Rect = geo.NewRect(1000, 1000)
	}
	if cfg.Range == 0 {
		cfg.Range = 250
	}
	if cfg.Model == nil {
		cfg.Model = propagation.NewFreeSpace()
	}
	if cfg.FadeMarginDB == 0 {
		cfg.FadeMarginDB = 12
	}
	macCfg := mac.DefaultConfig()
	if cfg.MAC != nil {
		macCfg = *cfg.MAC
	}

	rt := cfg.Runtime
	if rt == nil {
		rt = NewRuntime()
	}
	kernel := sim.NewKernelPooled(rng.Derive(cfg.Seed, 0xC0FFEE), rt.Events)
	params := phy.DefaultParams(cfg.Model, cfg.Range)

	positions := cfg.Positions
	if positions == nil {
		if cfg.N <= 0 {
			panic("node: Config.N must be positive without explicit positions")
		}
		placer := rng.New(cfg.Seed, rng.StreamTopology)
		positions = geo.UniformPoints(placer, cfg.Rect, cfg.N)
		if cfg.EnsureConnected {
			for try := 0; try < 100; try++ {
				// The probe shares the runtime's range cache, so the
				// connectivity bisection for a parameter set is paid once
				// per worker, not once per placement attempt.
				probe := phy.NewChannel(kernel, cfg.Rect, positions, params,
					phy.ChannelConfig{Model: cfg.Model, Ranges: rt.Ranges})
				if probe.Connected() {
					break
				}
				if try == 99 {
					panic(fmt.Sprintf("node: no connected placement found for N=%d range=%.0f in %vx%v",
						cfg.N, cfg.Range, cfg.Rect.Width(), cfg.Rect.Height()))
				}
				positions = geo.UniformPoints(placer, cfg.Rect, cfg.N)
			}
		}
	}

	ch := phy.NewChannel(kernel, cfg.Rect, positions, params, phy.ChannelConfig{
		Model:        cfg.Model,
		Fader:        cfg.Fader,
		FadeMarginDB: cfg.FadeMarginDB,
		Rng:          rng.New(cfg.Seed, rng.StreamChannel),
		Pools:        rt.Phy,
		Ranges:       rt.Ranges,
	})

	nw := &Network{Kernel: kernel, Channel: ch, Rect: cfg.Rect, Seed: cfg.Seed,
		Metrics: metrics.NewRegistry()}
	ch.RegisterMetrics(nw.Metrics)
	nw.Nodes = make([]*Node, len(positions))
	for i := range positions {
		n := &Node{
			ID:     packet.NodeID(i),
			Pos:    positions[i],
			Kernel: kernel,
			Radio:  ch.Radio(i),
			Rng:    rng.ForNode(cfg.Seed, rng.StreamNet, i),
		}
		n.MAC = mac.New(kernel, n.Radio, macCfg, rng.ForNode(cfg.Seed, rng.StreamMAC, i))
		n.MAC.SetHandler(macAdapter{n})
		n.Radio.RegisterMetrics(nw.Metrics)
		n.MAC.RegisterMetrics(nw.Metrics)
		nw.Nodes[i] = n
	}
	nw.registerLaws()
	return nw
}

// registerLaws declares the packet conservation invariants every run
// must satisfy at any instant. Each law equates two exact uint64 sums;
// the in-flight populations (pending leading edges, tracked signals,
// MAC backlogs) enter as func-counters so no cutoff ambiguity exists.
func (nw *Network) registerLaws() {
	// Every scheduled (radio, frame) delivery is eventually either
	// dropped at an off radio or enters in-air tracking.
	nw.Metrics.Law("phy-delivery",
		[]string{"chan.deliveries"},
		[]string{"phy.dropped_off", "phy.signal_starts", "chan.pending_starts"})
	// Every tracked signal leaves tracking exactly once: trailing edge,
	// or flushed when its receiver powered down, or still on the air.
	nw.Metrics.Law("phy-signal",
		[]string{"phy.signal_starts"},
		[]string{"phy.signal_ends", "phy.flushed_by_off", "phy.in_air"})
	// Every frame handed to a MAC is dropped at the full queue, fully
	// withdrawn, completed, failed, lost at pause, or still backlogged.
	nw.Metrics.Law("mac-queue",
		[]string{"mac.enqueued"},
		[]string{"mac.dropped_full", "mac.dequeued", "mac.completed",
			"mac.unicast_failed", "mac.dropped_paused", "mac.backlog"})
}

// CheckInvariants evaluates every registered conservation law and
// returns the violations, if any. Experiments call it after each run;
// tests may call it at any instant.
func (nw *Network) CheckInvariants() error { return nw.Metrics.Check() }

// Install attaches one protocol instance per node using the factory and
// starts them. Call exactly once, before running the kernel. Protocols
// implementing metrics.Source are registered with the network registry
// in node-id order.
func (nw *Network) Install(factory func(n *Node) Protocol) {
	for _, n := range nw.Nodes {
		n.Net = factory(n)
		if src, ok := n.Net.(metrics.Source); ok {
			src.RegisterMetrics(nw.Metrics)
		}
	}
	// Separate loop: protocols may talk to neighbors during Start.
	for _, n := range nw.Nodes {
		n.Net.Start(n)
	}
}

// Run executes the simulation until time t.
func (nw *Network) Run(t sim.Time) { nw.Kernel.RunUntil(t) }

// MoveNode relocates a node (mobility extension), keeping the channel's
// spatial index and the node's own position in sync.
func (nw *Network) MoveNode(id packet.NodeID, p geo.Point) {
	nw.Channel.MoveTo(int(id), p)
	nw.Nodes[id].Pos = p
}

// MACPackets sums every MAC-layer transmission in the network —
// Figures 3 and 4's "Number of MAC Packets".
func (nw *Network) MACPackets() uint64 {
	var sum uint64
	for _, n := range nw.Nodes {
		sum += n.MAC.Stats().TxFrames
	}
	return sum
}

// TotalEnergy sums every radio's consumption in joules at time now.
func (nw *Network) TotalEnergy() float64 {
	var sum float64
	for _, n := range nw.Nodes {
		sum += n.Radio.Energy().Total(nw.Kernel.Now())
	}
	return sum
}
