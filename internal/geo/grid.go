package geo

import "math"

// Grid is a uniform-cell spatial index over a fixed set of points.
// Queries return the ids of points within a radius of a center. Cell
// size should be on the order of the query radius; the wireless channel
// uses the carrier-sense range.
//
// The index is static: node positions in this repository's experiments
// do not move (the paper's scenarios are static sensor fields; failures
// are modeled as transceiver off-time, not motion). A MoveTo method is
// provided for completeness and for the mobility extension.
type Grid struct {
	cell   float64
	cols   int
	rows   int
	origin Point
	cells  [][]int32 // cell -> point ids
	pts    []Point
	loc    []int32 // point id -> cell index
}

// NewGrid builds an index over pts covering rect with the given cell
// size. Points outside rect are clamped into the boundary cells.
func NewGrid(rect Rect, cell float64, pts []Point) *Grid {
	if cell <= 0 {
		panic("geo: cell size must be positive")
	}
	cols := int(math.Ceil(rect.Width()/cell)) + 1
	rows := int(math.Ceil(rect.Height()/cell)) + 1
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	g := &Grid{
		cell:   cell,
		cols:   cols,
		rows:   rows,
		origin: rect.Min,
		cells:  make([][]int32, cols*rows),
		pts:    append([]Point(nil), pts...),
		loc:    make([]int32, len(pts)),
	}
	for i, p := range pts {
		c := g.cellOf(p)
		g.cells[c] = append(g.cells[c], int32(i))
		g.loc[i] = int32(c)
	}
	return g
}

func (g *Grid) cellOf(p Point) int {
	cx := int((p.X - g.origin.X) / g.cell)
	cy := int((p.Y - g.origin.Y) / g.cell)
	if cx < 0 {
		cx = 0
	}
	if cx >= g.cols {
		cx = g.cols - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= g.rows {
		cy = g.rows - 1
	}
	return cy*g.cols + cx
}

// Len returns the number of indexed points.
func (g *Grid) Len() int { return len(g.pts) }

// At returns the position of point id.
func (g *Grid) At(id int) Point { return g.pts[id] }

// MoveTo updates the position of point id, relocating it between cells
// when necessary.
func (g *Grid) MoveTo(id int, p Point) {
	old := g.loc[id]
	g.pts[id] = p
	nc := int32(g.cellOf(p))
	if nc == old {
		return
	}
	bucket := g.cells[old]
	for i, v := range bucket {
		if v == int32(id) {
			bucket[i] = bucket[len(bucket)-1]
			g.cells[old] = bucket[:len(bucket)-1]
			break
		}
	}
	g.cells[nc] = append(g.cells[nc], int32(id))
	g.loc[id] = nc
}

// WithinRadius appends to dst the ids of all points within radius of
// center (excluding the id `exclude`; pass a negative value to exclude
// nothing) and returns the extended slice. Results are not ordered.
func (g *Grid) WithinRadius(dst []int, center Point, radius float64, exclude int) []int {
	r2 := radius * radius
	minCX := int((center.X - radius - g.origin.X) / g.cell)
	maxCX := int((center.X + radius - g.origin.X) / g.cell)
	minCY := int((center.Y - radius - g.origin.Y) / g.cell)
	maxCY := int((center.Y + radius - g.origin.Y) / g.cell)
	if minCX < 0 {
		minCX = 0
	}
	if minCY < 0 {
		minCY = 0
	}
	if maxCX >= g.cols {
		maxCX = g.cols - 1
	}
	if maxCY >= g.rows {
		maxCY = g.rows - 1
	}
	for cy := minCY; cy <= maxCY; cy++ {
		row := cy * g.cols
		for cx := minCX; cx <= maxCX; cx++ {
			for _, id := range g.cells[row+cx] {
				if int(id) == exclude {
					continue
				}
				if g.pts[id].Dist2(center) <= r2 {
					dst = append(dst, int(id))
				}
			}
		}
	}
	return dst
}

// Nearest returns the id of the indexed point closest to center, or -1
// when the grid is empty. Expanding ring search over cells.
func (g *Grid) Nearest(center Point) int {
	best, bestD2 := -1, math.MaxFloat64
	// Expand radius ring by ring until a hit is found and the ring
	// distance exceeds the best hit.
	maxRing := g.cols
	if g.rows > g.cols {
		maxRing = g.rows
	}
	ccx := int((center.X - g.origin.X) / g.cell)
	ccy := int((center.Y - g.origin.Y) / g.cell)
	for ring := 0; ring <= maxRing; ring++ {
		if best >= 0 {
			ringDist := (float64(ring) - 1) * g.cell
			if ringDist > 0 && ringDist*ringDist > bestD2 {
				break
			}
		}
		for cy := ccy - ring; cy <= ccy+ring; cy++ {
			if cy < 0 || cy >= g.rows {
				continue
			}
			for cx := ccx - ring; cx <= ccx+ring; cx++ {
				if cx < 0 || cx >= g.cols {
					continue
				}
				// Only the ring boundary; interior was scanned already.
				if ring > 0 && cx > ccx-ring && cx < ccx+ring && cy > ccy-ring && cy < ccy+ring {
					continue
				}
				for _, id := range g.cells[cy*g.cols+cx] {
					d2 := g.pts[id].Dist2(center)
					if d2 < bestD2 {
						bestD2, best = d2, int(id)
					}
				}
			}
		}
	}
	return best
}
