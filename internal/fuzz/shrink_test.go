package fuzz

import (
	"testing"

	"routeless/internal/node"
)

// big returns the oversized failing scenario the shrink tests start
// from.
func big() Scenario {
	return Scenario{
		Seed: 3, N: 40, Width: 900, Height: 900, Range: 250,
		Placement: PlaceUniform, Connected: true,
		Protocol: ProtoCounter1,
		Flows:    []Flow{{Src: 0, Dst: 1}, {Src: 2, Dst: 3}, {Src: 4, Dst: 5}},
		Interval: 0.5, DataSize: 64, Duration: 6,
		Mobility: &Mobility{Movers: 5, MinSpeed: 1, MaxSpeed: 5},
		Faults: []FaultSpec{
			{Kind: "crash", OffFraction: 0.2},
			{Kind: "jam", TxPowerDBm: 20},
		},
	}
}

// TestShrinkPinnedMinimal is the acceptance pin: a synthetic failure
// classifier (fails iff N >= 4, Duration >= 2, and at least one fault
// remains) must reduce the big scenario to exactly the minimal
// (N, duration, plan) form — every axis at its smallest still-failing
// value and every irrelevant feature stripped.
func TestShrinkPinnedMinimal(t *testing.T) {
	failing := func(sc Scenario) bool {
		return sc.N >= 4 && sc.Duration >= 2 && len(sc.Faults) >= 1
	}
	start := big()
	if !failing(start) {
		t.Fatal("starting scenario must fail the classifier")
	}
	min, evals := Shrink(start, failing, 0)
	if evals == 0 {
		t.Fatal("shrinker did no work")
	}
	if min.N != 4 {
		t.Errorf("minimal N = %d, want 4", min.N)
	}
	if min.Duration != 2 {
		t.Errorf("minimal Duration = %v, want 2", min.Duration)
	}
	if len(min.Flows) != 0 {
		t.Errorf("minimal Flows = %v, want none (flows are irrelevant to the failure)", min.Flows)
	}
	if len(min.Faults) != 1 {
		t.Errorf("minimal plan has %d faults, want 1", len(min.Faults))
	} else if min.Faults[0].Kind != "jam" {
		// Moves drop fault 0 first, so the surviving spec is the later
		// one — pinned so the reduction path stays deterministic.
		t.Errorf("surviving fault = %q, want the jam spec", min.Faults[0].Kind)
	}
	if min.Mobility != nil || min.Fading || min.Tiles > 1 || min.Connected {
		t.Errorf("irrelevant features not stripped: %+v", min)
	}
	if err := min.Validate(); err != nil {
		t.Errorf("minimal scenario invalid: %v", err)
	}
	if !failing(min) {
		t.Error("minimal scenario no longer fails the classifier")
	}
}

// TestShrinkDeterministic: same scenario, same predicate, same result.
func TestShrinkDeterministic(t *testing.T) {
	failing := func(sc Scenario) bool { return sc.N >= 6 && len(sc.Flows) >= 1 }
	a, _ := Shrink(big(), failing, 0)
	b, _ := Shrink(big(), failing, 0)
	if a.N != b.N || a.Duration != b.Duration || len(a.Flows) != len(b.Flows) || len(a.Faults) != len(b.Faults) {
		t.Fatalf("two reductions differ:\n%+v\n%+v", a, b)
	}
}

// TestShrinkRespectsEvalBudget stops at the budget and still returns a
// failing scenario.
func TestShrinkRespectsEvalBudget(t *testing.T) {
	failing := func(sc Scenario) bool { return true }
	_, evals := Shrink(big(), failing, 3)
	if evals > 3 {
		t.Fatalf("spent %d evals with budget 3", evals)
	}
}

// TestShrinkValidityPreserved: every candidate the shrinker proposes to
// the predicate is itself a valid scenario, so Runner-driven predicates
// never burn evaluations on invalid forms.
func TestShrinkValidityPreserved(t *testing.T) {
	failing := func(sc Scenario) bool {
		if err := sc.Validate(); err != nil {
			t.Fatalf("shrinker proposed an invalid scenario: %v\n%+v", err, sc)
		}
		return sc.N >= 3
	}
	min, _ := Shrink(big(), failing, 0)
	if min.N != 3 {
		t.Fatalf("minimal N = %d, want 3", min.N)
	}
}

// TestShrinkWithRunner drives the reducer through the real oracle: a
// sabotage hook plants an invariant violation whenever the network
// still has at least 4 nodes, and the Runner-backed predicate shrinks
// to the pinned minimal form.
func TestShrinkWithRunner(t *testing.T) {
	if testing.Short() {
		t.Skip("each predicate call runs two simulations")
	}
	r := Runner{Sabotage: func(run int, nw *node.Network) {
		if len(nw.Nodes) >= 4 {
			nw.Metrics.Counter("mac.enqueued").Inc()
		}
	}}
	start := Scenario{
		Seed: 11, N: 10, Width: 500, Height: 500, Range: 250,
		Placement: PlaceUniform, Connected: true,
		Protocol: ProtoCounter1,
		Flows:    []Flow{{Src: 0, Dst: 3}},
		Interval: 0.5, DataSize: 64, Duration: 1,
	}
	failing := func(sc Scenario) bool { return r.Run(sc).Verdict == VerdictViolation }
	if !failing(start) {
		t.Fatal("sabotaged start scenario must fail")
	}
	min, _ := Shrink(start, failing, 0)
	if min.N != 4 {
		t.Errorf("minimal N = %d, want 4 (the sabotage threshold)", min.N)
	}
	if min.Duration != 0.5 {
		t.Errorf("minimal Duration = %v, want 0.5", min.Duration)
	}
	if len(min.Flows) != 0 || len(min.Faults) != 0 {
		t.Errorf("irrelevant load survived: %+v", min)
	}
	if got := r.Run(min); got.Verdict != VerdictViolation {
		t.Errorf("minimal scenario verdict = %q, want invariant-violation", got.Verdict)
	}
}
