package node

import (
	"math"
	"testing"

	"routeless/internal/geo"
	"routeless/internal/packet"
	"routeless/internal/rng"
)

// echoProto is a trivial Protocol: broadcasts on Send, delivers frames
// addressed to (or broadcast at) its node.
type echoProto struct {
	n    *Node
	seq  uint32
	sent int
}

func (p *echoProto) Start(n *Node) { p.n = n }

func (p *echoProto) OnDeliver(pkt *packet.Packet, rssi float64) {
	if pkt.To == packet.Broadcast || pkt.To == p.n.ID {
		p.n.Deliver(pkt)
	}
}

func (p *echoProto) OnSent(pkt *packet.Packet)          { p.sent++ }
func (p *echoProto) OnUnicastFailed(pkt *packet.Packet) {}

func (p *echoProto) Send(target packet.NodeID, size int) {
	p.seq++
	p.n.MAC.Enqueue(&packet.Packet{
		Kind: packet.KindData, To: packet.Broadcast, Origin: p.n.ID,
		Target: target, Seq: p.seq, Size: size, CreatedAt: p.n.Kernel.Now(),
	}, 0)
}

func TestNetworkConstructionDefaults(t *testing.T) {
	nw := New(Config{N: 20, Seed: 1})
	if len(nw.Nodes) != 20 {
		t.Fatalf("nodes = %d", len(nw.Nodes))
	}
	for i, n := range nw.Nodes {
		if n.ID != packet.NodeID(i) {
			t.Fatalf("node %d has id %v", i, n.ID)
		}
		if n.MAC == nil || n.Radio == nil || n.Kernel != nw.Kernel {
			t.Fatal("node not fully wired")
		}
		if !nw.Rect.Contains(n.Pos) {
			t.Fatalf("node %d outside terrain", i)
		}
	}
}

func TestExplicitPositions(t *testing.T) {
	pos := []geo.Point{{X: 10, Y: 10}, {X: 100, Y: 10}}
	nw := New(Config{Positions: pos, Seed: 2})
	if len(nw.Nodes) != 2 {
		t.Fatalf("nodes = %d", len(nw.Nodes))
	}
	if nw.Nodes[1].Pos != pos[1] {
		t.Fatal("positions not honored")
	}
}

func TestEnsureConnected(t *testing.T) {
	// Sparse enough that some draws are disconnected, dense enough that
	// a connected one exists within a few attempts.
	nw := New(Config{N: 40, Rect: geo.NewRect(2000, 2000), Range: 500, Seed: 3, EnsureConnected: true})
	if !nw.Channel.Connected() {
		t.Fatal("EnsureConnected produced a disconnected network")
	}
}

func TestInstallAndTraffic(t *testing.T) {
	nw := New(Config{Positions: []geo.Point{{X: 0, Y: 0}, {X: 100, Y: 0}}, Seed: 4})
	nw.Install(func(n *Node) Protocol { return &echoProto{} })
	var got []*packet.Packet
	nw.Nodes[1].OnAppReceive = func(p *packet.Packet) { got = append(got, p) }
	nw.Nodes[0].Net.Send(1, packet.SizeData)
	nw.Run(1)
	if len(got) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(got))
	}
	if nw.MACPackets() != 1 {
		t.Fatalf("MACPackets = %d, want 1", nw.MACPackets())
	}
}

func TestDeterministicConstruction(t *testing.T) {
	a := New(Config{N: 30, Seed: 7})
	b := New(Config{N: 30, Seed: 7})
	for i := range a.Nodes {
		if a.Nodes[i].Pos != b.Nodes[i].Pos {
			t.Fatal("same seed produced different placement")
		}
	}
	c := New(Config{N: 30, Seed: 8})
	same := 0
	for i := range a.Nodes {
		if a.Nodes[i].Pos == c.Nodes[i].Pos {
			same++
		}
	}
	if same == len(a.Nodes) {
		t.Fatal("different seeds produced identical placement")
	}
}

func TestFailRecover(t *testing.T) {
	nw := New(Config{Positions: []geo.Point{{X: 0, Y: 0}, {X: 100, Y: 0}}, Seed: 5})
	nw.Install(func(n *Node) Protocol { return &echoProto{} })
	n := nw.Nodes[1]
	if !n.Up() {
		t.Fatal("node should start up")
	}
	n.Fail()
	if n.Up() || !n.MAC.Paused() {
		t.Fatal("Fail did not take down radio+MAC")
	}
	n.Fail() // idempotent
	n.Recover()
	if !n.Up() || n.MAC.Paused() {
		t.Fatal("Recover did not restore radio+MAC")
	}
	n.Recover() // idempotent
}

func TestFailureProcessDutyCycle(t *testing.T) {
	nw := New(Config{Positions: []geo.Point{{X: 0, Y: 0}, {X: 100, Y: 0}}, Seed: 6})
	nw.Install(func(n *Node) Protocol { return &echoProto{} })
	fp := NewFailureProcess(nw.Nodes[0], rng.ForNode(6, rng.StreamFailure, 0))
	fp.OffFraction = 0.1
	fp.Cycle = 5
	fp.Start()
	const horizon = 2000.0
	nw.Run(horizon)
	frac := fp.DownTime() / horizon
	if math.Abs(frac-0.1) > 0.03 {
		t.Fatalf("down fraction %v, want ~0.10", frac)
	}
	if fp.Failures() == 0 {
		t.Fatal("no failures recorded")
	}
}

func TestFailureProcessZeroFractionInert(t *testing.T) {
	nw := New(Config{Positions: []geo.Point{{X: 0, Y: 0}, {X: 100, Y: 0}}, Seed: 7})
	fp := NewFailureProcess(nw.Nodes[0], rng.ForNode(7, rng.StreamFailure, 0))
	fp.Start()
	nw.Run(100)
	if fp.Failures() != 0 || fp.DownTime() != 0 {
		t.Fatal("zero-fraction process caused failures")
	}
}

func TestFailureProcessStopRecovers(t *testing.T) {
	nw := New(Config{Positions: []geo.Point{{X: 0, Y: 0}, {X: 100, Y: 0}}, Seed: 8})
	nw.Install(func(n *Node) Protocol { return &echoProto{} })
	fp := NewFailureProcess(nw.Nodes[0], rng.ForNode(8, rng.StreamFailure, 0))
	fp.OffFraction = 0.9 // nearly always down
	fp.Cycle = 1
	fp.Start()
	nw.Run(50)
	fp.Stop()
	if !nw.Nodes[0].Up() {
		t.Fatal("Stop left node down")
	}
}

func TestTrafficThroughFailedNodeLost(t *testing.T) {
	nw := New(Config{Positions: []geo.Point{{X: 0, Y: 0}, {X: 100, Y: 0}}, Seed: 9})
	nw.Install(func(n *Node) Protocol { return &echoProto{} })
	delivered := 0
	nw.Nodes[1].OnAppReceive = func(*packet.Packet) { delivered++ }
	nw.Nodes[1].Fail()
	nw.Nodes[0].Net.Send(1, packet.SizeData)
	nw.Run(1)
	if delivered != 0 {
		t.Fatal("failed node received traffic")
	}
	nw.Nodes[1].Recover()
	nw.Nodes[0].Net.Send(1, packet.SizeData)
	nw.Run(2)
	if delivered != 1 {
		t.Fatalf("recovered node delivered %d, want 1", delivered)
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for N=0 without positions")
		}
	}()
	New(Config{Seed: 1})
}

func TestTotalEnergyPositive(t *testing.T) {
	nw := New(Config{Positions: []geo.Point{{X: 0, Y: 0}, {X: 100, Y: 0}}, Seed: 10})
	nw.Install(func(n *Node) Protocol { return &echoProto{} })
	nw.Nodes[0].Net.Send(1, packet.SizeData)
	nw.Run(10)
	if nw.TotalEnergy() <= 0 {
		t.Fatal("energy accounting returned nothing")
	}
}
