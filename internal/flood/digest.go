package flood

import (
	"slices"

	"routeless/internal/digest"
	"routeless/internal/packet"
)

// sortedFlowKeys returns the map's keys in (Origin, Kind, Seq) order —
// the deterministic iteration every digest over FlowKey-keyed state
// uses.
func sortedFlowKeys[V any](m map[packet.FlowKey]V) []packet.FlowKey {
	keys := make([]packet.FlowKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.SortFunc(keys, compareFlowKeys)
	return keys
}

func compareFlowKeys(a, b packet.FlowKey) int {
	if a.Origin != b.Origin {
		return int(a.Origin) - int(b.Origin)
	}
	if a.Kind != b.Kind {
		return int(a.Kind) - int(b.Kind)
	}
	if a.Seq != b.Seq {
		if a.Seq < b.Seq {
			return -1
		}
		return 1
	}
	return 0
}

// DigestState folds this node's flooding state into h: the origination
// sequence counter, the duplicate cache, and every armed rebroadcast
// (sorted by flow key; the timer itself is captured by the kernel's
// pending-event digest).
func (f *Flooding) DigestState(h *digest.Hash) {
	h.Uint64(uint64(f.seq))
	f.dedup.DigestState(h)
	h.Int(len(f.pending))
	for _, k := range sortedFlowKeys(f.pending) {
		pf := f.pending[k]
		k.DigestTo(h)
		h.Bool(pf.queued)
		if pf.fwd != nil {
			h.Bool(true)
			h.Uint64(pf.fwd.UID)
			h.Int(pf.fwd.HopCount)
		} else {
			h.Bool(false)
		}
	}
}
