package phy

import (
	"math/rand"
	"reflect"
	"testing"

	"routeless/internal/geo"
	"routeless/internal/packet"
	"routeless/internal/propagation"
	"routeless/internal/sim"
)

// The link cache is a pure optimization: a cached channel must produce
// byte-for-byte the same simulation as the recompute-every-time
// reference path (ChannelConfig.NoLinkCache). These tests run the same
// scripted scenario — traffic interleaved with MoveTo and SetTxPower —
// through both channels and require every observable to match exactly:
// channel counters, per-radio counters, and each delivered frame's
// source, UID, receive power (bitwise float64), and delivery time.

// coherenceDelivery is one decoded frame as a receiver saw it.
type coherenceDelivery struct {
	From packet.NodeID
	UID  uint64
	RSSI float64
	At   sim.Time
}

// coherenceSnapshot is everything observable about a finished run.
type coherenceSnapshot struct {
	Channel    ChannelStats
	Radios     []Stats
	Deliveries [][]coherenceDelivery
}

// runCoherenceScenario drives a deterministic script over a fresh
// channel: round-robin broadcasts, periodic node moves, and periodic
// transmit power changes, all from fixed seeds.
func runCoherenceScenario(fade bool, noCache bool) coherenceSnapshot {
	const (
		n       = 24
		terrain = 1200.0
		rangeM  = 300.0
		steps   = 160
		spacing = sim.Time(2e-3)
	)
	posRng := rand.New(rand.NewSource(77))
	positions := make([]geo.Point, n)
	for i := range positions {
		positions[i] = geo.Point{
			X: posRng.Float64() * terrain,
			Y: posRng.Float64() * terrain,
		}
	}

	k := sim.NewKernel(1)
	model := propagation.NewFreeSpace()
	params := DefaultParams(model, rangeM)
	cfg := ChannelConfig{Model: model, NoLinkCache: noCache}
	if fade {
		cfg.Fader = propagation.LogNormalShadow{SigmaDB: 6}
		cfg.FadeMarginDB = 12
		cfg.Rng = rand.New(rand.NewSource(99))
	}
	ch := NewChannel(k, geo.NewRect(terrain, terrain), positions, params, cfg)

	deliveries := make([][]coherenceDelivery, n)
	for i := 0; i < n; i++ {
		i := i
		rec := &funcListener{onReceive: func(p *packet.Packet, rssi float64) {
			deliveries[i] = append(deliveries[i], coherenceDelivery{
				From: p.From, UID: p.UID, RSSI: rssi, At: k.Now(),
			})
		}}
		ch.Radio(i).SetListener(rec)
	}

	// The script itself must not consume channel randomness, so it draws
	// from its own stream.
	scriptRng := rand.New(rand.NewSource(1234))
	for step := 0; step < steps; step++ {
		step := step
		src := step % n
		at := spacing * sim.Time(step+1)
		k.At(at, func() {
			if ch.Radio(src).State() == StateIdle {
				ch.Radio(src).Transmit(&packet.Packet{
					Kind: packet.KindData, To: packet.Broadcast,
					Origin: packet.NodeID(src), Seq: uint32(step), Size: 100,
				})
			}
		})
		if step%7 == 3 {
			mover := (step * 5) % n
			dest := geo.Point{
				X: scriptRng.Float64() * terrain,
				Y: scriptRng.Float64() * terrain,
			}
			// Nudge the move off the transmit instants so it lands between
			// frames, interleaved with in-flight traffic.
			k.At(at+spacing/2, func() { ch.MoveTo(mover, dest) })
		}
		if step%11 == 5 {
			tuned := (step * 3) % n
			delta := scriptRng.Float64()*4 - 2
			k.At(at+spacing/4, func() {
				ch.Radio(tuned).SetTxPower(params.TxPowerDBm + delta)
			})
		}
	}
	k.Run()

	snap := coherenceSnapshot{
		Channel:    ch.Stats(),
		Radios:     make([]Stats, n),
		Deliveries: deliveries,
	}
	for i := 0; i < n; i++ {
		snap.Radios[i] = ch.Radio(i).Stats()
	}
	return snap
}

// funcListener adapts a function to the Listener interface.
type funcListener struct {
	onReceive func(*packet.Packet, float64)
}

func (f *funcListener) OnReceive(p *packet.Packet, rssi float64) { f.onReceive(p, rssi) }
func (f *funcListener) OnMediumBusy()                            {}
func (f *funcListener) OnMediumIdle()                            {}
func (f *funcListener) OnTxDone()                                {}

func checkCoherence(t *testing.T, fade bool) {
	t.Helper()
	cached := runCoherenceScenario(fade, false)
	reference := runCoherenceScenario(fade, true)
	if cached.Channel != reference.Channel {
		t.Errorf("ChannelStats diverge: cached %+v, reference %+v",
			cached.Channel, reference.Channel)
	}
	for i := range cached.Radios {
		if cached.Radios[i] != reference.Radios[i] {
			t.Errorf("radio %d stats diverge: cached %+v, reference %+v",
				i, cached.Radios[i], reference.Radios[i])
		}
	}
	for i := range cached.Deliveries {
		if !reflect.DeepEqual(cached.Deliveries[i], reference.Deliveries[i]) {
			t.Errorf("radio %d deliveries diverge: cached %d frames, reference %d frames",
				i, len(cached.Deliveries[i]), len(reference.Deliveries[i]))
		}
	}
	if cached.Channel.Deliveries == 0 {
		t.Fatal("scenario scheduled no deliveries; the comparison is vacuous")
	}
}

// TestLinkCacheBitwiseEquivalent proves the cached channel equals the
// reference channel on a static-power deterministic medium with
// mobility interleaved with traffic.
func TestLinkCacheBitwiseEquivalent(t *testing.T) {
	checkCoherence(t, false)
}

// TestLinkCacheBitwiseEquivalentFading repeats the proof with a fading
// channel, where equivalence additionally requires the cached path to
// consume fading draws for exactly the same receivers in exactly the
// same (ascending id) order.
func TestLinkCacheBitwiseEquivalentFading(t *testing.T) {
	checkCoherence(t, true)
}

// TestMoveToInvalidatesStaleLinks pins the invalidation contract with a
// hand-built three-node line: after the far node moves into range, a
// transmitter with a warm cache must reach it.
func TestMoveToInvalidatesStaleLinks(t *testing.T) {
	k, ch, recs := testChannel(t, pts(0, 0, 100, 0, 2500, 0), 250)
	// Warm node 0's cache: node 2 is far outside the cutoff.
	ch.Radio(0).Transmit(pkt(100))
	k.Run()
	if len(recs[1].rx) != 1 || len(recs[2].rx) != 0 {
		t.Fatalf("warm-up: rx counts = %d, %d", len(recs[1].rx), len(recs[2].rx))
	}
	// Move node 2 next to the transmitter; the move must invalidate
	// node 0's cached link list even though node 0 itself never moved.
	ch.MoveTo(2, geo.Point{X: 150, Y: 0})
	ch.Radio(0).Transmit(pkt(100))
	k.Run()
	if len(recs[2].rx) != 1 {
		t.Fatalf("after MoveTo into range: node 2 rx = %d, want 1", len(recs[2].rx))
	}
	// And the reverse: moving out of range must stop deliveries.
	ch.MoveTo(2, geo.Point{X: 2500, Y: 0})
	ch.Radio(0).Transmit(pkt(100))
	k.Run()
	if len(recs[2].rx) != 1 {
		t.Fatalf("after MoveTo out of range: node 2 rx = %d, want 1", len(recs[2].rx))
	}
}
