package lint

import (
	"strconv"
)

// SortPkg flags imports of the pre-generics sort package in internal/
// and cmd/ non-test code. The repository's floor is go 1.22, so every
// former sort call site has a slices equivalent (slices.Sort,
// slices.SortFunc, slices.SortStableFunc) that is typed, allocation-
// free for the comparator, and uses the same pdqsort under the hood.
// One sorting vocabulary keeps the maporder analyzer's recognition
// simple and stops the two styles from drifting apart again.
var SortPkg = &Analyzer{
	Name: "sortpkg",
	Doc:  "forbid the pre-generics sort package in internal/ and cmd/; use the slices package (go 1.22 is the floor)",
	Run:  runSortPkg,
}

func runSortPkg(p *Pass) {
	if !p.InInternal() && !p.InCmd() {
		return
	}
	for _, f := range p.Files {
		if p.IsTestFile(f.Pos()) {
			continue
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "sort" {
				p.Reportf(imp.Pos(), "import %q: use the generic slices package (slices.Sort / slices.SortFunc / slices.SortStableFunc) instead", path)
			}
		}
	}
}
