package experiments

import (
	"fmt"
	"math"
	"strings"

	"routeless/internal/geo"
	"routeless/internal/node"
	"routeless/internal/packet"
	"routeless/internal/routing"
	"routeless/internal/sim"
	"routeless/internal/stats"
	"routeless/internal/sweep"
	"routeless/internal/trace"
	"routeless/internal/traffic"
)

// Fig2Config reproduces Figure 2: automatic congestion avoidance. Two
// scenarios over the same topology: (a) a single A→B flow; (b) the same
// flow plus heavy C→D cross-traffic through the middle. The figure is
// the set of nodes that actually relayed A's data packets.
type Fig2Config struct {
	Nodes         int      // default 300
	Terrain       float64  // default 1500
	Range         float64  // default 250
	Seed          int64    // topology + protocol seed
	Duration      float64  // traffic seconds, default 40
	Interval      float64  // A→B CBR interval, default 1 s
	CrossInterval float64  // C→D CBR interval, default 0.05 s (saturating)
	CrossSize     int      // C→D payload bytes, default 512 (long airtime)
	Lambda        sim.Time // Routeless λ, default 10 ms
	Workers       int      `json:"-"` // parallelism across the two scenarios; default GOMAXPROCS
}

func (c Fig2Config) withDefaults() Fig2Config {
	if c.Nodes == 0 {
		c.Nodes = 300
	}
	if c.Terrain == 0 {
		c.Terrain = 1500
	}
	if c.Range == 0 {
		c.Range = 250
	}
	if c.Duration == 0 {
		c.Duration = 40
	}
	if c.Interval == 0 {
		c.Interval = 1
	}
	if c.CrossInterval == 0 {
		// Loads the middle corridor heavily: ~25 packets/s of 512-byte
		// frames over ~6 hops builds the MAC queues that §4.2's
		// avoidance argument depends on, without starving the medium
		// completely.
		c.CrossInterval = 0.08
	}
	if c.CrossSize == 0 {
		c.CrossSize = 512
	}
	if c.Lambda == 0 {
		c.Lambda = 10e-3
	}
	return c
}

// Fig2Result holds both scenarios' relay traces over the shared
// topology.
type Fig2Result struct {
	Config     Fig2Config
	Positions  []geo.Point
	A, B, C, D packet.NodeID
	Alone      *trace.PathCollector // scenario (a)
	WithCross  *trace.PathCollector // scenario (b)

	// CenterShareAlone/WithCross: fraction of A's data relays that
	// happened within Terrain/4 of the terrain center — the congested
	// region. Avoidance means the share drops in scenario (b).
	CenterShareAlone     float64
	CenterShareWithCross float64
	// MeanCenterDistAlone/WithCross: mean distance of A's relays from
	// the center (meters); avoidance means it grows.
	MeanCenterDistAlone     float64
	MeanCenterDistWithCross float64
	// Delivered counts A→B packets that arrived in each scenario.
	DeliveredAlone     uint64
	DeliveredWithCross uint64
}

// RunFig2 runs both scenarios — two sweep cells over the same seed, so
// they execute concurrently when workers allow.
func RunFig2(cfg Fig2Config) Fig2Result {
	cfg = cfg.withDefaults()
	cells := sweep.Cells("fig2", 2, []int64{cfg.Seed})
	outs := sweep.Run(cfg.Workers, cells, func(ctx *sweep.Context, i int, c sweep.Cell) fig2Out {
		return runFig2Scenario(ctx, cfg, c.Point == 1)
	})
	alone, cross := outs[0], outs[1]
	if alone.a != cross.a || alone.b != cross.b {
		panic("experiments: fig2 scenarios diverged on endpoints")
	}
	for i := range alone.positions {
		if alone.positions[i] != cross.positions[i] {
			panic("experiments: fig2 scenarios diverged on topology")
		}
	}
	res := Fig2Result{
		Config: cfg, Positions: cross.positions,
		A: alone.a, B: alone.b, C: cross.c, D: cross.d,
		Alone: alone.paths, WithCross: cross.paths,
		DeliveredAlone: alone.delivered, DeliveredWithCross: cross.delivered,
	}
	center := geo.Point{X: cfg.Terrain / 2, Y: cfg.Terrain / 2}
	res.CenterShareAlone, res.MeanCenterDistAlone = centerUsage(alone.paths, alone.a, cross.positions, center, cfg.Terrain/4)
	res.CenterShareWithCross, res.MeanCenterDistWithCross = centerUsage(cross.paths, alone.a, cross.positions, center, cfg.Terrain/4)
	return res
}

// centerUsage computes what share of origin's data relays happened
// inside the central disk and their mean distance from the center.
func centerUsage(c *trace.PathCollector, origin packet.NodeID, pos []geo.Point, center geo.Point, radius float64) (share, meanDist float64) {
	used := c.NodesUsed(origin, packet.KindData)
	var total, inside int
	var distSum float64
	for id, n := range used {
		if id == origin {
			continue // the source itself is pinned in place
		}
		total += n
		d := pos[id].Dist(center)
		distSum += d * float64(n)
		if d <= radius {
			inside += n
		}
	}
	if total == 0 {
		return 0, 0
	}
	return float64(inside) / float64(total), distSum / float64(total)
}

// fig2Out is one scenario's outcome as it crosses the sweep boundary.
type fig2Out struct {
	paths      *trace.PathCollector
	positions  []geo.Point
	a, b, c, d packet.NodeID
	delivered  uint64
}

func runFig2Scenario(ctx *sweep.Context, cfg Fig2Config, withCross bool) fig2Out {
	nw := node.New(node.Config{
		N:               cfg.Nodes,
		Rect:            geo.NewRect(cfg.Terrain, cfg.Terrain),
		Range:           cfg.Range,
		Seed:            cfg.Seed,
		EnsureConnected: true,
		Runtime:         ctx.Runtime(),
	})
	collector := trace.NewPathCollector()
	// A generous path budget lets packets swing wide around the
	// congested middle — the behavior this figure demonstrates.
	rcfg := routing.RoutelessConfig{Lambda: cfg.Lambda, PathMargin: 5}
	nw.Install(func(n *node.Node) node.Protocol {
		r := routing.NewRouteless(rcfg)
		id := n.ID
		r.OnRelay = func(pkt *packet.Packet) { collector.Record(id, pkt, n.Kernel.Now()) }
		return r
	})

	positions := make([]geo.Point, len(nw.Nodes))
	for i, n := range nw.Nodes {
		positions[i] = n.Pos
	}
	t := cfg.Terrain
	a := nearestNode(nw, geo.Point{X: 0.08 * t, Y: 0.5 * t})
	b := nearestNode(nw, geo.Point{X: 0.92 * t, Y: 0.5 * t})
	c := nearestNode(nw, geo.Point{X: 0.5 * t, Y: 0.08 * t})
	d := nearestNode(nw, geo.Point{X: 0.5 * t, Y: 0.92 * t})

	var delivered uint64
	nw.Nodes[b].OnAppReceive = func(p *packet.Packet) {
		if p.Origin == packet.NodeID(a) {
			delivered++
		}
	}

	ab := traffic.NewCBR(nw.Nodes[a], packet.NodeID(b), sim.Time(cfg.Interval), packet.SizeData)
	ab.StartAt(sim.Time(cfg.Interval))
	cbrs := []*traffic.CBR{ab}
	if withCross {
		// Bidirectional heavy cross traffic saturates the middle.
		cd := traffic.NewCBR(nw.Nodes[c], packet.NodeID(d), sim.Time(cfg.CrossInterval), cfg.CrossSize)
		dc := traffic.NewCBR(nw.Nodes[d], packet.NodeID(c), sim.Time(cfg.CrossInterval), cfg.CrossSize)
		cd.StartAt(sim.Time(cfg.CrossInterval) / 2)
		dc.StartAt(sim.Time(cfg.CrossInterval) / 3)
		cbrs = append(cbrs, cd, dc)
	}
	nw.Run(sim.Time(cfg.Duration))
	for _, cb := range cbrs {
		cb.Stop()
	}
	nw.Run(sim.Time(cfg.Duration) + drainTime)
	countEvents(nw.Kernel)
	return fig2Out{
		paths: collector, positions: positions,
		a: packet.NodeID(a), b: packet.NodeID(b),
		c: packet.NodeID(c), d: packet.NodeID(d),
		delivered: delivered,
	}
}

func nearestNode(nw *node.Network, p geo.Point) int {
	best, bestD := -1, math.MaxFloat64
	for i, n := range nw.Nodes {
		if d := n.Pos.Dist(p); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// Fig2Render draws both scenarios as ASCII maps: '.' nodes, 'o' nodes
// relaying A→B data, 'x' nodes relaying C→D data, letters for
// endpoints.
func Fig2Render(res Fig2Result, width int) string {
	rect := geo.NewRect(res.Config.Terrain, res.Config.Terrain)
	var b strings.Builder
	draw := func(title string, c *trace.PathCollector, withCross bool) {
		cv := trace.NewCanvas(rect, width)
		cv.PlotAll(res.Positions, '.')
		if withCross {
			for id := range c.NodesUsed(res.C, packet.KindData) {
				cv.Plot(res.Positions[id], 'x')
			}
			for id := range c.NodesUsed(res.D, packet.KindData) {
				cv.Plot(res.Positions[id], 'x')
			}
		}
		for id := range c.NodesUsed(res.A, packet.KindData) {
			cv.Plot(res.Positions[id], 'o')
		}
		cv.Plot(res.Positions[res.A], 'A')
		cv.Plot(res.Positions[res.B], 'B')
		if withCross {
			cv.Plot(res.Positions[res.C], 'C')
			cv.Plot(res.Positions[res.D], 'D')
		}
		b.WriteString(title + "\n")
		b.WriteString(cv.String())
	}
	draw("(a) single flow A->B", res.Alone, false)
	b.WriteByte('\n')
	draw("(b) A->B with heavy C<->D cross-traffic", res.WithCross, true)
	fmt.Fprintf(&b, "\nA->B relays within center disk: %.0f%% alone vs %.0f%% with cross-traffic\n",
		100*res.CenterShareAlone, 100*res.CenterShareWithCross)
	fmt.Fprintf(&b, "mean relay distance from center: %.0f m alone vs %.0f m with cross-traffic\n",
		res.MeanCenterDistAlone, res.MeanCenterDistWithCross)
	return b.String()
}

// Fig2Table summarizes the avoidance metrics.
func Fig2Table(res Fig2Result) *stats.Table {
	t := stats.NewTable(
		"Figure 2 — automatic congestion avoidance (Routeless Routing)",
		"scenario", "center_share", "mean_center_dist_m", "ab_delivered",
	)
	t.AddRow("A->B alone", res.CenterShareAlone, res.MeanCenterDistAlone, res.DeliveredAlone)
	t.AddRow("A->B + C<->D", res.CenterShareWithCross, res.MeanCenterDistWithCross, res.DeliveredWithCross)
	return t
}

// Fig2SVG renders scenario (b) — the congested run — as a standalone
// SVG document: gray nodes, blue A→B relays, orange C↔D relays,
// labeled endpoints.
func Fig2SVG(res Fig2Result, width float64) string {
	rect := geo.NewRect(res.Config.Terrain, res.Config.Terrain)
	return trace.RenderSVG(rect, res.Positions, res.WithCross,
		[]trace.FlowSpec{
			{Origin: res.C, Kind: packet.KindData, Color: "#e69f00"},
			{Origin: res.D, Kind: packet.KindData, Color: "#e69f00"},
			{Origin: res.A, Kind: packet.KindData, Color: "#0072b2"},
		},
		map[packet.NodeID]string{res.A: "A", res.B: "B", res.C: "C", res.D: "D"},
		width)
}
