package experiments

import (
	"testing"
)

// Scaled-down configs keep the suite fast while preserving density and
// the qualitative shapes asserted below. Full-scale runs live behind
// cmd/wmansim and the benchmarks.

func smallFig1() Fig1Config {
	return Fig1Config{
		Nodes: 60, Terrain: 800, Connections: 15,
		Intervals: []float64{1, 5},
		Duration:  10, Seeds: []int64{1, 2},
	}
}

func smallFig34() Fig34Config {
	return Fig34Config{
		Nodes: 150, Terrain: 1100, Duration: 20,
		Pairs: []int{2, 6}, Seeds: []int64{1, 2},
		FailurePcts: []float64{0, 0.10}, Fig4Pairs: 6,
	}
}

func TestFig1Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	rows := RunFig1(smallFig1())
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Sanity: both protocols actually deliver.
		if r.Counter1.Delivery.Mean() < 0.5 || r.SSAF.Delivery.Mean() < 0.5 {
			t.Fatalf("interval %v: implausible delivery c1=%v ssaf=%v",
				r.Interval, r.Counter1.Delivery.Mean(), r.SSAF.Delivery.Mean())
		}
		if r.Counter1.Hops.Mean() <= 0 || r.SSAF.Hops.Mean() <= 0 {
			t.Fatalf("interval %v: zero hops", r.Interval)
		}
	}
	// Congestion effect: lighter traffic delivers at least as well.
	light, heavy := rows[1], rows[0]
	if light.Counter1.Delivery.Mean() < heavy.Counter1.Delivery.Mean()-0.05 {
		t.Fatalf("delivery should not degrade with lighter traffic: %v vs %v",
			light.Counter1.Delivery.Mean(), heavy.Counter1.Delivery.Mean())
	}
	// SSAF's headline: no worse hop counts at light load (paper §3).
	if ssaf, c1 := light.SSAF.Hops.Mean(), light.Counter1.Hops.Mean(); ssaf > c1*1.08 {
		t.Fatalf("SSAF hops %v should not exceed counter-1 hops %v", ssaf, c1)
	}
}

func TestFig3Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	rows := RunFig3(smallFig34())
	for _, r := range rows {
		aodv, rr := &r.AODV, &r.Routeless
		if aodv.Delivery.Mean() < 0.93 || rr.Delivery.Mean() < 0.93 {
			t.Fatalf("pairs %d: delivery aodv=%v rr=%v", r.Pairs,
				aodv.Delivery.Mean(), rr.Delivery.Mean())
		}
		// "Routeless Routing … incurring larger end-to-end delays" (§4.3).
		if rr.Delay.Mean() < aodv.Delay.Mean()*0.8 {
			t.Fatalf("pairs %d: RR delay %v unexpectedly below AODV %v",
				r.Pairs, rr.Delay.Mean(), aodv.Delay.Mean())
		}
		// "packets in Routeless Routing take on average fewer hops".
		if rr.Hops.Mean() > aodv.Hops.Mean()*1.1 {
			t.Fatalf("pairs %d: RR hops %v exceed AODV %v",
				r.Pairs, rr.Hops.Mean(), aodv.Hops.Mean())
		}
		// "Routeless Routing requires fewer packet transmissions in the
		// MAC layer" — allow parity noise at tiny scale.
		if rr.MACPackets.Mean() > aodv.MACPackets.Mean()*1.35 {
			t.Fatalf("pairs %d: RR MAC packets %v far exceed AODV %v",
				r.Pairs, rr.MACPackets.Mean(), aodv.MACPackets.Mean())
		}
	}
}

func TestFig4Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	rows := RunFig4(smallFig34())
	clean, failing := rows[0], rows[len(rows)-1]
	// Routeless stays flat under failures: MAC packets and delay grow
	// by at most a small factor (paper: "they remain constant").
	if grow := failing.Routeless.MACPackets.Mean() / clean.Routeless.MACPackets.Mean(); grow > 1.4 {
		t.Fatalf("RR MAC packets grew %.2fx under failures", grow)
	}
	// AODV pays: its packet count must grow strictly faster than RR's.
	aodvGrow := failing.AODV.MACPackets.Mean() / clean.AODV.MACPackets.Mean()
	rrGrow := failing.Routeless.MACPackets.Mean() / clean.Routeless.MACPackets.Mean()
	if aodvGrow <= rrGrow {
		t.Fatalf("AODV packet growth %.2fx should exceed RR's %.2fx", aodvGrow, rrGrow)
	}
	// Both keep delivering (AODV by spending packets, RR by rerouting).
	if failing.Routeless.Delivery.Mean() < 0.9 {
		t.Fatalf("RR delivery %v under 10%% failures", failing.Routeless.Delivery.Mean())
	}
	if failing.AODV.Delivery.Mean() < 0.9 {
		t.Fatalf("AODV delivery %v under 10%% failures", failing.AODV.Delivery.Mean())
	}
}

func TestFig2Avoidance(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	res := RunFig2(Fig2Config{Seed: 3, Nodes: 300, Terrain: 1500, Duration: 30})
	if res.DeliveredAlone == 0 {
		t.Fatal("baseline scenario delivered nothing")
	}
	if res.DeliveredWithCross == 0 {
		t.Fatal("congested scenario delivered nothing")
	}
	// The §4.2 claim: with heavy cross-traffic, A→B relays shift away
	// from the congested center.
	if res.CenterShareWithCross >= res.CenterShareAlone {
		t.Fatalf("no avoidance: center share %.2f -> %.2f",
			res.CenterShareAlone, res.CenterShareWithCross)
	}
	if res.MeanCenterDistWithCross <= res.MeanCenterDistAlone {
		t.Fatalf("no avoidance: center distance %.0f -> %.0f",
			res.MeanCenterDistAlone, res.MeanCenterDistWithCross)
	}
	// Rendering must include every marker class.
	out := Fig2Render(res, 60)
	for _, marker := range []string{"A", "B", "C", "D", "o", "x"} {
		if !containsRune(out, marker) {
			t.Fatalf("render missing %q", marker)
		}
	}
	if Fig2Table(res).NumRows() != 2 {
		t.Fatal("table should have two scenario rows")
	}
}

func containsRune(s, sub string) bool {
	return len(sub) > 0 && len(s) > 0 && indexOf(s, sub) >= 0
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestAbl1CancellationReducesTransmissions(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	cfg := smallFig1()
	cfg.Intervals = []float64{2}
	rows := RunAbl1(cfg)
	r := rows[0]
	if r.SSAFC.MACPackets.Mean() >= r.SSAF.MACPackets.Mean() {
		t.Fatalf("SSAF-C packets %v should undercut SSAF %v",
			r.SSAFC.MACPackets.Mean(), r.SSAF.MACPackets.Mean())
	}
}

func TestAbl2LambdaTradeoff(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	cfg := smallFig34()
	rows := RunAbl2(cfg, []sim2{2e-3, 100e-3}, 4)
	small, large := rows[0], rows[1]
	// §4.1: "A large λ would increase the end-to-end delay".
	if large.RR.Delay.Mean() <= small.RR.Delay.Mean() {
		t.Fatalf("λ=100ms delay %v should exceed λ=2ms delay %v",
			large.RR.Delay.Mean(), small.RR.Delay.Mean())
	}
}

// sim2 aliases sim.Time without importing it twice in tests.
type sim2 = simTime

func TestAbl3ElectionScaling(t *testing.T) {
	rows := RunAbl3(0, []int{2, 20}, 120, 10e-3, 7)
	small, big := rows[0], rows[1]
	if small.SingleLeader <= big.SingleLeader {
		t.Fatalf("single-leader probability should fall with crowd size: %v vs %v",
			small.SingleLeader, big.SingleLeader)
	}
	if big.MeanRounds < 1 {
		t.Fatalf("mean rounds %v below 1", big.MeanRounds)
	}
	if Abl3Table(rows).NumRows() != 2 {
		t.Fatal("bad table")
	}
}

func TestAbl4GradientCongestion(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	cfg := smallFig34()
	cfg.Pairs = []int{4}
	rows := RunAbl4(cfg)
	r := rows[0]
	// §4.4: Gradient Routing "makes the network more congested".
	if r.Gradient.MACPackets.Mean() <= r.Routeless.MACPackets.Mean() {
		t.Fatalf("gradient MAC packets %v should exceed routeless %v",
			r.Gradient.MACPackets.Mean(), r.Routeless.MACPackets.Mean())
	}
}

func TestTablesRender(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	cfg := smallFig1()
	cfg.Intervals = []float64{5}
	cfg.Seeds = []int64{1}
	rows := RunFig1(cfg)
	tb := Fig1Table(rows)
	if tb.NumRows() != 1 || tb.String() == "" || tb.CSV() == "" {
		t.Fatal("fig1 table broken")
	}
}

func TestAbl5SleepSavesEnergyKeepsDelivery(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	cfg := smallFig34()
	rows := RunAbl5(cfg, []float64{0, 0.3}, 4)
	awake, dozing := rows[0], rows[1]
	// §4.2: sleeping route nodes must not break delivery...
	if dozing.RR.Delivery.Mean() < 0.88 {
		t.Fatalf("delivery %v with 30%% sleepers", dozing.RR.Delivery.Mean())
	}
	// ...and must save real energy.
	if dozing.RR.EnergyJ.Mean() >= awake.RR.EnergyJ.Mean()*0.9 {
		t.Fatalf("energy %v with sleepers vs %v awake — no savings",
			dozing.RR.EnergyJ.Mean(), awake.RR.EnergyJ.Mean())
	}
}

func TestFig2SVGAndAbl6(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	res := RunFig2(Fig2Config{Seed: 3, Nodes: 120, Terrain: 1000, Duration: 15})
	svg := Fig2SVG(res, 400)
	for _, want := range []string{"<svg", "</svg>", ">A<", ">B<", ">C<", ">D<", "#0072b2"} {
		if !containsRune(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	cfg := smallFig34()
	cfg.Pairs = []int{3}
	rows := RunAbl6(cfg)
	if len(rows) != 1 || rows[0].Pure.Delivery.Mean() < 0.9 || rows[0].SignalTie.Delivery.Mean() < 0.9 {
		t.Fatalf("abl6 deliveries pure=%v sig=%v",
			rows[0].Pure.Delivery.Mean(), rows[0].SignalTie.Delivery.Mean())
	}
	if Abl6Table(rows).NumRows() != 1 {
		t.Fatal("abl6 table broken")
	}
}
