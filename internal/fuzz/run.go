package fuzz

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime/debug"

	"routeless/internal/experiments"
	"routeless/internal/fault"
	"routeless/internal/flood"
	"routeless/internal/metrics"
	"routeless/internal/node"
	"routeless/internal/packet"
	"routeless/internal/phy"
	"routeless/internal/propagation"
	"routeless/internal/routing"
	"routeless/internal/sim"
	"routeless/internal/stats"
	"routeless/internal/traffic"
)

// Verdicts, from least to most alarming. Everything except
// VerdictInvalid past validation is a simulator bug.
const (
	// VerdictPass: the run satisfied every conservation law and
	// reproduced bitwise under its own seed.
	VerdictPass = "pass"
	// VerdictInvalid: the scenario failed validation or construction
	// (e.g. no connected placement exists). Not a bug — generated
	// scenarios with this verdict are skipped, hand-written ones
	// rejected.
	VerdictInvalid = "invalid-scenario"
	// VerdictViolation: a conservation law or invariant failed after
	// the run — packets or signals were created or destroyed off the
	// books.
	VerdictViolation = "invariant-violation"
	// VerdictDivergence: the same scenario produced two different
	// metric snapshots under the same seed — the determinism contract
	// is broken.
	VerdictDivergence = "determinism-divergence"
	// VerdictPanic: the simulator crashed instead of reporting an
	// error.
	VerdictPanic = "panic"
)

// Result is one scenario's structured verdict.
type Result struct {
	Verdict string `json:"verdict"`
	// Detail explains non-pass verdicts: the validation error, the
	// first violation, the panic value with stack, or the divergence
	// site.
	Detail string `json:"detail,omitempty"`
	// Violations carries the full structured oracle output on
	// invariant-violation verdicts.
	Violations []metrics.Violation `json:"violations,omitempty"`
	// Metrics carries the run's paper-unit outcome on pass verdicts.
	Metrics *experiments.RunMetrics `json:"metrics,omitempty"`
}

// Failed reports whether the verdict indicates a simulator bug
// (anything but pass and invalid-scenario).
func (r Result) Failed() bool {
	return r.Verdict != VerdictPass && r.Verdict != VerdictInvalid
}

// Runner executes scenarios under the oracle. The zero value is ready
// to use.
type Runner struct {
	// Sabotage, when non-nil, runs after the simulation drains and
	// before the oracle collects, with the run index (0 = first run,
	// 1 = determinism re-run). It exists so tests can plant each
	// failure class — corrupt a counter for a violation, corrupt only
	// run 1 for a divergence, panic for a crash — without needing a
	// real simulator bug on hand.
	Sabotage func(run int, nw *node.Network)
}

// Run executes the scenario under the full oracle: validate, run once
// under CheckInvariants, then re-run under the same seed and compare
// metric snapshots byte for byte.
func (r *Runner) Run(sc Scenario) Result {
	if err := sc.Validate(); err != nil {
		return Result{Verdict: VerdictInvalid, Detail: err.Error()}
	}
	first := r.runOnce(sc, 0)
	if first.panicMsg != "" {
		return Result{Verdict: VerdictPanic, Detail: first.panicMsg}
	}
	if first.buildErr != nil {
		// Construction refused the validated scenario — an impossible
		// placement, typically. The scenario, not the simulator, is at
		// fault, and the structured error path is working as designed.
		return Result{Verdict: VerdictInvalid, Detail: first.buildErr.Error()}
	}
	if len(first.violations) > 0 {
		return Result{
			Verdict:    VerdictViolation,
			Detail:     first.violations[0].String(),
			Violations: first.violations,
		}
	}
	second := r.runOnce(sc, 1)
	switch {
	case second.panicMsg != "":
		return Result{Verdict: VerdictDivergence,
			Detail: "re-run panicked where first run completed: " + second.panicMsg}
	case second.buildErr != nil:
		return Result{Verdict: VerdictDivergence,
			Detail: "re-run failed construction where first run completed: " + second.buildErr.Error()}
	case len(second.violations) > 0:
		return Result{Verdict: VerdictDivergence,
			Detail: "re-run violated invariants where first run was clean: " + second.violations[0].String()}
	case !bytes.Equal(first.snap, second.snap):
		return Result{Verdict: VerdictDivergence,
			Detail: fmt.Sprintf("metric snapshots differ between same-seed runs (%d vs %d bytes)",
				len(first.snap), len(second.snap))}
	}
	m := first.metrics
	return Result{Verdict: VerdictPass, Metrics: &m}
}

// onceOut is one simulation attempt's raw outcome.
type onceOut struct {
	snap       []byte // final metric snapshot, canonical JSON
	metrics    experiments.RunMetrics
	violations []metrics.Violation
	buildErr   error
	panicMsg   string
}

// runOnce builds and runs the scenario once, converting any panic into
// a value. The build path goes through the error-returning TryNew /
// TryInstall entry points, so only genuine simulator bugs can still
// reach the recover.
func (r *Runner) runOnce(sc Scenario, runIdx int) (out onceOut) {
	defer func() {
		if p := recover(); p != nil {
			out.panicMsg = fmt.Sprintf("%v\n%s", p, debug.Stack())
		}
	}()

	cfg := node.Config{
		N:         sc.N,
		Rect:      sc.Rect(),
		Positions: positions(sc),
		Range:     sc.Range,
		Seed:      sc.Seed,
		Tiles:     sc.Tiles,
	}
	if sc.Placement == PlaceUniform {
		cfg.EnsureConnected = sc.Connected
	}
	if sc.Fading {
		cfg.Fader = propagation.Rayleigh{}
	}
	nw, err := node.TryNew(cfg)
	if err != nil {
		out.buildErr = err
		return
	}
	installProtocol(nw, sc)

	var meter stats.Meter
	tap := experiments.NewAppTap(nw, &meter)
	cbrs := make([]*traffic.CBR, len(sc.Flows))
	for i, f := range sc.Flows {
		cbrs[i] = traffic.NewCBR(nw.Nodes[f.Src], packet.NodeID(f.Dst), sim.Time(sc.Interval), sc.DataSize)
		tap.Watch(cbrs[i])
		cbrs[i].Start()
	}

	var movers []*node.Waypoint
	if m := sc.Mobility; m != nil {
		for i := 0; i < m.Movers; i++ {
			w := node.NewWaypoint(nw, nw.Nodes[i], mobilityRng(sc.Seed, i))
			w.MinSpeed, w.MaxSpeed = m.MinSpeed, m.MaxSpeed
			w.Start()
			movers = append(movers, w)
		}
	}

	plan, err := sc.Plan()
	if err != nil {
		out.buildErr = err
		return
	}
	if _, err := fault.TryInstall(nw, plan); err != nil {
		out.buildErr = err
		return
	}

	nw.Run(sim.Time(sc.Duration))
	for _, c := range cbrs {
		c.Stop()
	}
	for _, w := range movers {
		w.Stop()
	}
	// Experiments drain 5 s past traffic stop; the fuzzer matches so
	// both face the same in-flight accounting at collect time.
	nw.Run(sim.Time(sc.Duration) + 5)

	if r.Sabotage != nil {
		r.Sabotage(runIdx, nw)
	}

	rm, _ := experiments.CollectChecked(nw, tap)
	out.metrics = rm
	out.violations = nw.Metrics.Violations()
	b, merr := json.Marshal(nw.Metrics.Snapshot())
	if merr != nil {
		panic(merr) // a snapshot that cannot encode is itself a bug
	}
	out.snap = b
	return
}

// installProtocol attaches the scenario's network layer, mirroring the
// experiment harness's protocol table.
func installProtocol(nw *node.Network, sc Scenario) {
	lambda := sim.Time(sc.Lambda)
	if lambda == 0 {
		lambda = 10e-3
	}
	switch sc.Protocol {
	case ProtoCounter1:
		fcfg := flood.Counter1Config(lambda)
		nw.Install(func(n *node.Node) node.Protocol { return flood.New(&fcfg) })
	case ProtoSSAF:
		minDBm, maxDBm := ssafSpan(sc.Range)
		fcfg := flood.SSAFConfig(lambda, minDBm, maxDBm)
		nw.Install(func(n *node.Node) node.Protocol { return flood.New(&fcfg) })
	case ProtoRouteless:
		rcfg := routing.RoutelessConfig{Lambda: lambda}
		nw.Install(func(n *node.Node) node.Protocol { return routing.NewRouteless(rcfg) })
	case ProtoAODV:
		acfg := routing.AODVConfig{NoHello: true}
		nw.Install(func(n *node.Node) node.Protocol { return routing.NewAODV(acfg) })
	case ProtoGradient:
		nw.Install(func(n *node.Node) node.Protocol { return routing.NewGradient(routing.GradientConfig{}) })
	default:
		// Validate rejects unknown protocols before runOnce.
		panic("fuzz: unknown protocol " + sc.Protocol)
	}
}

// ssafSpan mirrors the experiment harness's SSAF band: decode threshold
// up to the power at one tenth of the transmission range.
func ssafSpan(rangeM float64) (minDBm, maxDBm float64) {
	model := propagation.NewFreeSpace()
	params := phy.DefaultParams(model, rangeM)
	minDBm = params.RxThreshDBm
	maxDBm = propagation.ThresholdFor(model, params.TxPowerDBm, rangeM/10)
	return
}
