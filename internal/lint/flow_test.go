package lint

import (
	"strings"
	"testing"
)

// flowProg caches the flowmod fixture program: one load serves every
// flow-level test.
var flowProg *Program

// flowmodProgram loads the self-contained fixture module under
// testdata/flowmod and builds its whole-program view.
func flowmodProgram(t *testing.T) *Program {
	t.Helper()
	if flowProg != nil {
		return flowProg
	}
	l, err := NewLoader("testdata/flowmod", "")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	dirs, err := Walk("testdata/flowmod")
	if err != nil {
		t.Fatalf("Walk: %v", err)
	}
	var units []*Unit
	for _, dir := range dirs {
		us, err := l.LoadDir(dir)
		if err != nil {
			t.Fatalf("LoadDir(%s): %v", dir, err)
		}
		units = append(units, us...)
	}
	if len(units) == 0 {
		t.Fatal("flowmod fixture loaded no units")
	}
	flowProg = BuildProgram(units)
	return flowProg
}

// TestCallGraphTopology pins the structural facts of the flowmod call
// graph that the flow-aware rules depend on: edges, entry points,
// reachability, sink summaries, and provenance summaries.
func TestCallGraphTopology(t *testing.T) {
	prog := flowmodProgram(t)

	for _, id := range []FuncID{
		"flowmod/internal/proto.mapKeys",
		"flowmod/internal/proto.FlushBad",
		"flowmod/internal/proto.write",
		"flowmod/internal/proto.relay",
		"flowmod/internal/proto.(Listener).OnReceive",
		"flowmod/internal/proto.(Beacon).emit",
		"flowmod/internal/metrics.(Journal).Write",
		"flowmod/internal/metrics.(Gauge).Set",
		"flowmod/internal/sim.(Kernel).Schedule",
		"flowmod/internal/clean.sortedKeys",
	} {
		if prog.Funcs[id] == nil {
			t.Errorf("call graph is missing node %s", id)
		}
	}

	// One resolved caller edge: relay → write.
	callers := prog.Callers("flowmod/internal/proto.write")
	if len(callers) != 1 || callers[0] != "flowmod/internal/proto.relay" {
		t.Errorf("Callers(proto.write) = %v, want [flowmod/internal/proto.relay]", callers)
	}

	// Dispatch entry points: every handler-named concrete method.
	kinds := map[FuncID]string{}
	for _, ep := range prog.EntryPoints {
		kinds[ep.Fn] = ep.Kind
	}
	for _, want := range []FuncID{
		"flowmod/internal/proto.(Listener).OnReceive",
		"flowmod/internal/proto.(Meter).OnSent",
		"flowmod/internal/proto.(Beacon).OnDeliver",
	} {
		if kinds[want] != "dispatch" {
			t.Errorf("entry point %s: kind = %q, want dispatch", want, kinds[want])
		}
	}
	// Scheduled closures (Arm, Beacon.OnDeliver) register too.
	scheduled := 0
	for fn, kind := range kinds {
		if kind == "schedule" && strings.HasPrefix(string(fn), "closure@") {
			scheduled++
		}
	}
	if scheduled < 2 {
		t.Errorf("schedule closures registered = %d, want >= 2 (Arm, Beacon.OnDeliver)", scheduled)
	}

	// Handler reachability: the gauge write and the re-armed emit are
	// inside event context; a plain flush helper is not.
	reach := prog.HandlerReachable()
	if !reach["flowmod/internal/metrics.(Gauge).Set"] {
		t.Error("(Gauge).Set should be handler-reachable via Listener.OnReceive")
	}
	if !reach["flowmod/internal/proto.(Beacon).emit"] {
		t.Error("(Beacon).emit should be handler-reachable via the rescheduled closure")
	}
	if reach["flowmod/internal/proto.FlushBad"] {
		t.Error("FlushBad is never scheduled or dispatched; it must not be handler-reachable")
	}

	// An example chain proves the reachability claim and names the entry.
	path := prog.EntryPathTo("flowmod/internal/metrics.(Gauge).Set")
	if len(path) < 2 || !strings.Contains(path[0], "OnReceive") {
		t.Errorf("EntryPathTo((Gauge).Set) = %v, want a chain starting at OnReceive", path)
	}

	// Sink summaries cross function boundaries: relay reaches the
	// journal two hops deep; sortedKeys reaches nothing.
	if r := prog.SinkReach("flowmod/internal/proto.relay"); r&sinkJournal == 0 {
		t.Errorf("SinkReach(relay) = %s, want journal", r.Describe())
	}
	if r := prog.SinkReach("flowmod/internal/clean.sortedKeys"); r != 0 {
		t.Errorf("SinkReach(sortedKeys) = %s, want none", r.Describe())
	}

	// Map-order return summaries: unsorted collector taints, sorted
	// collector does not.
	if !prog.ReturnsMapOrdered("flowmod/internal/proto.mapKeys") {
		t.Error("ReturnsMapOrdered(mapKeys) = false, want true")
	}
	if prog.ReturnsMapOrdered("flowmod/internal/clean.sortedKeys") {
		t.Error("ReturnsMapOrdered(sortedKeys) = true, want false")
	}

	// The global write index feeds the shard-safety inventory.
	writers := prog.globalWriters["flowmod/internal/proto.hits"]
	found := false
	for _, w := range writers {
		if w == "flowmod/internal/proto.(Listener).OnReceive" {
			found = true
		}
	}
	if !found {
		t.Errorf("globalWriters[proto.hits] = %v, want to include (Listener).OnReceive", writers)
	}
}

// TestIDHasSuffix pins the segment-boundary matching that keeps ID
// patterns module-path agnostic.
func TestIDHasSuffix(t *testing.T) {
	cases := []struct {
		id      FuncID
		pattern string
		want    bool
	}{
		{"routeless/internal/sim.(Kernel).At", "internal/sim.(Kernel).At", true},
		{"flowmod/internal/sim.(Kernel).At", "internal/sim.(Kernel).At", true},
		{"myinternal/sim.(Kernel).At", "internal/sim.(Kernel).At", false},
		{"internal/sim.(Kernel).At", "internal/sim.(Kernel).At", true},
		{"routeless/internal/rng.New", "internal/rng.New", true},
		{"routeless/internal/rng.NewThing", "internal/rng.New", false},
	}
	for _, c := range cases {
		if got := idHasSuffix(c.id, c.pattern); got != c.want {
			t.Errorf("idHasSuffix(%q, %q) = %v, want %v", c.id, c.pattern, got, c.want)
		}
	}
	if got := shortID("flowmod/internal/proto.(Listener).OnReceive"); got != "proto.(Listener).OnReceive" {
		t.Errorf("shortID = %q", got)
	}
}

// TestFlowmodFindings runs the full rule set over the fixture module
// and pins every finding: each one is a violation the syntactic
// predecessors could not see, and each clean shape stays clean.
func TestFlowmodFindings(t *testing.T) {
	prog := flowmodProgram(t)
	res := Analyze(prog, All())

	want := []struct {
		rule string
		sub  string
	}{
		{"globalrand", "constructed from a fixed seed"},                     // fault.stream's raw ctor
		{"faultrand", "fixed-seed stream"},                                  // fault.Jitter's laundered draw
		{"maporder", "map-iteration order by proto.mapKeys"},                // FlushBad's slice range
		{"maporder", "calls relay, which reaches"},                          // JournalBad, two hops to the journal
		{"globalrand", "supplies a fixed seed"},                             // BadJitter through mkStream
		{"sharedstate", "package-level var flowmod/internal/proto.hits"},    // OnReceive write
		{"sharedstate", "package-level var flowmod/internal/proto.pending"}, // scheduled-closure write
		{"goroutine", "go statement"},                                       // SpawnBad, outside the exempt engines
	}

	if len(res.Diags) != len(want) {
		for _, d := range res.Diags {
			t.Logf("finding: %s", d)
		}
		t.Fatalf("findings = %d, want %d", len(res.Diags), len(want))
	}
	for i, w := range want {
		d := res.Diags[i]
		if d.Rule != w.rule || !strings.Contains(d.Message, w.sub) {
			t.Errorf("finding %d = %s: %s: %s\n  want rule %s containing %q", i, d.Pos, d.Rule, d.Message, w.rule, w.sub)
		}
	}
	if res.Suppressed != 1 {
		t.Errorf("suppressed = %d, want 1 (the deliveries counter)", res.Suppressed)
	}
	if len(res.Stale) != 0 {
		t.Errorf("stale directives = %v, want none", res.Stale)
	}
}

// TestShardReportFlowmod pins the machine-readable shard-safety report
// over the fixture module.
func TestShardReportFlowmod(t *testing.T) {
	prog := flowmodProgram(t)
	rep := BuildShardReport(prog)

	if rep.Schema != "shardsafety/v1" {
		t.Errorf("schema = %q", rep.Schema)
	}
	if len(rep.EntryPoints) == 0 {
		t.Fatal("report has no entry points")
	}

	globals := map[string]ShardGlobal{}
	for _, g := range rep.Globals {
		globals[g.Var] = g
	}
	hits, ok := globals["flowmod/internal/proto.hits"]
	if !ok {
		t.Fatal("report is missing global proto.hits")
	}
	if hits.Class != "mutable" || !hits.HandlerWrites {
		t.Errorf("proto.hits: class=%q handlerWrites=%v, want mutable/true", hits.Class, hits.HandlerWrites)
	}
	if len(hits.Via) == 0 || !strings.Contains(hits.Via[0], "OnReceive") {
		t.Errorf("proto.hits via = %v, want a chain from OnReceive", hits.Via)
	}
	// A suppressed diagnostic is still inventory: the report must not
	// hide state the directive merely excused.
	deliveries, ok := globals["flowmod/internal/proto.deliveries"]
	if !ok {
		t.Fatal("report is missing global proto.deliveries (suppressed writes still inventory)")
	}
	if deliveries.Class != "mutable" || !deliveries.HandlerWrites {
		t.Errorf("proto.deliveries: class=%q handlerWrites=%v, want mutable/true", deliveries.Class, deliveries.HandlerWrites)
	}

	// The hard-gate view sees through suppressions: both hits (diagnosed)
	// and deliveries (its write excused by //lint:ignore) must surface.
	violations := rep.Violations()
	for _, want := range []string{"proto.hits", "proto.deliveries"} {
		found := false
		for _, v := range violations {
			if strings.Contains(v, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("Violations() = %v, want an entry for %s", violations, want)
		}
	}

	var kernel *ShardSingleton
	for i := range rep.Singletons {
		if rep.Singletons[i].Type == "flowmod/internal/sim.(Kernel)" {
			kernel = &rep.Singletons[i]
		}
	}
	if kernel == nil {
		t.Fatal("report is missing singleton flowmod/internal/sim.(Kernel)")
	}
	found := false
	for _, m := range kernel.Methods {
		if m == "Schedule" {
			found = true
		}
	}
	if !found {
		t.Errorf("Kernel singleton methods = %v, want to include Schedule", kernel.Methods)
	}
}

// TestModuleCorpus runs the full flow-aware rule set over the real
// module, pinning the current clean state: zero findings, zero stale
// directives, and the exact count of reasoned suppressions. A change
// that introduces a finding, orphans a directive, or adds an
// unreviewed suppression moves these numbers and fails here before CI.
func TestModuleCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type check is slow")
	}
	l := fixtureLoader(t)
	dirs, err := Walk("../..")
	if err != nil {
		t.Fatalf("Walk: %v", err)
	}
	var units []*Unit
	for _, dir := range dirs {
		us, err := l.LoadDir(dir)
		if err != nil {
			t.Fatalf("LoadDir(%s): %v", dir, err)
		}
		units = append(units, us...)
	}
	prog := BuildProgram(units)
	res := Analyze(prog, All())

	for _, d := range res.Diags {
		t.Errorf("unexpected finding: %s", d)
	}
	for _, s := range res.Stale {
		t.Errorf("stale directive: %s", s)
	}
	if res.Suppressed != 15 {
		t.Errorf("suppressed findings = %d, want 15; if a suppression was added or removed deliberately, update this pin", res.Suppressed)
	}

	rep := BuildShardReport(prog)
	if rep.Schema != "shardsafety/v1" {
		t.Errorf("schema = %q", rep.Schema)
	}
	if len(rep.EntryPoints) == 0 {
		t.Error("shard report has no entry points; entry-point detection regressed")
	}
	haveKernel := false
	for _, s := range rep.Singletons {
		if s.Type == "routeless/internal/sim.(Kernel)" {
			haveKernel = true
		}
	}
	if !haveKernel {
		t.Error("shard report is missing the sim.Kernel singleton")
	}
	for _, g := range rep.Globals {
		if g.Var == "routeless/internal/experiments.processed" && g.Class != "atomic" {
			t.Errorf("experiments.processed class = %q, want atomic", g.Class)
		}
		// The go/no-go gate for the PDES tile decomposition: no
		// package-level mutable state may be written from handler
		// context anywhere in the module.
		if g.Class == "mutable" && g.HandlerWrites {
			t.Errorf("shard blocker: %s is mutable and handler-written (via %v)", g.Var, g.Via)
		}
	}
	// Same gate through the method cmd/simlint -audit calls.
	if v := rep.Violations(); len(v) != 0 {
		t.Errorf("ShardReport.Violations() = %v, want none", v)
	}

	// The tile-state section must resolve every curated field against
	// the real module — a "stale" row means the list rotted — and must
	// cover the SoA arrays the mega-scale refactor hoisted onto the
	// channel.
	tileRows := map[string]ShardTileField{}
	for _, f := range rep.TileState {
		tileRows[f.Type+"."+f.Field] = f
		if f.Class != "per-tile" {
			t.Errorf("tile-state %s.%s class = %q, want per-tile", f.Type, f.Field, f.Class)
		}
	}
	for _, want := range []string{
		"internal/phy.(Channel).states",
		"internal/phy.(Channel).txPow",
		"internal/phy.(Channel).energies",
		"internal/phy.(Channel).links",
		"internal/phy.(Channel).linkValid",
		"internal/phy.(tileCtx).outbox",
		"internal/phy.(tileCtx).cached",
	} {
		f, ok := tileRows[want]
		if !ok {
			t.Errorf("tile-state section is missing %s", want)
			continue
		}
		if f.FieldType == "" || f.Rationale == "" || f.Pos == "" {
			t.Errorf("tile-state %s lacks fieldType/rationale/pos: %+v", want, f)
		}
	}
}

// TestTileStateSection pins the curated tile-state classifier against
// the flowmod fixture: a field that exists resolves to "per-tile" with
// its type and position, a curated name the struct no longer has
// becomes a "stale" row that Violations() turns into a gate failure,
// and entries for packages outside the run are skipped silently.
func TestTileStateSection(t *testing.T) {
	prog := flowmodProgram(t)
	old := tileStateFields
	defer func() { tileStateFields = old }()
	tileStateFields = []tileStateSpec{
		{Type: "internal/sim.(Kernel)", Fields: []string{"queue", "vanished"}, Rationale: "fixture"},
		{Type: "internal/phy.(Channel)", Fields: []string{"states"}}, // package not loaded: skipped
		{Type: "not-a-pattern", Fields: []string{"x"}},               // malformed: skipped
	}

	rep := BuildShardReport(prog)
	if len(rep.TileState) != 2 {
		t.Fatalf("tileState rows = %d, want 2 (unloaded package and malformed pattern skipped): %+v",
			len(rep.TileState), rep.TileState)
	}
	live, stale := rep.TileState[0], rep.TileState[1]
	if live.Field != "queue" || live.Class != "per-tile" {
		t.Errorf("row 0 = %+v, want queue classified per-tile", live)
	}
	if live.FieldType != "[]func()" || live.Rationale != "fixture" || live.Pos == "" {
		t.Errorf("queue row lacks resolved metadata: %+v", live)
	}
	if stale.Field != "vanished" || stale.Class != "stale" {
		t.Errorf("row 1 = %+v, want vanished classified stale", stale)
	}

	found := false
	for _, v := range rep.Violations() {
		if strings.Contains(v, "vanished") {
			found = true
		}
	}
	if !found {
		t.Errorf("Violations() = %v, want a stale-entry line for vanished", rep.Violations())
	}
}
