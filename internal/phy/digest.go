package phy

import (
	"slices"

	"routeless/internal/digest"
)

// digestSignal folds one in-air signal into h. A signal's identity is
// its frame UID (assigned deterministically from the owning tile's
// counter at transmit time) plus the receive-side parameters that decide
// decode and interference outcomes.
func digestSignal(h *digest.Hash, s *signal) {
	if s == nil {
		h.Bool(false)
		return
	}
	h.Bool(true)
	var uid uint64
	if s.pkt != nil {
		uid = s.pkt.UID
	}
	h.Uint64(uid)
	h.Float64(s.powerDBm)
	h.Float64(float64(s.end))
	h.Bool(s.tracked)
	h.Bool(s.aborted)
}

// DigestState folds this radio's receive-side machine into h: the
// carrier-sense flags, the frame being decoded, every signal currently
// on its air, and the live-transmission bookkeeping. The inAir and
// txLive slices are hashed in storage order — appends happen in event
// order, which is deterministic per run.
func (r *Radio) DigestState(h *digest.Hash) {
	h.Byte(byte(r.channel.states[r.id]))
	h.Bool(r.busy)
	h.Bool(r.rxCorrupt)
	h.Float64(float64(r.txEnd))
	digestSignal(h, r.rx)
	h.Int(len(r.inAir))
	for _, s := range r.inAir {
		digestSignal(h, s)
	}
	h.Int(len(r.txLive))
	for _, s := range r.txLive {
		digestSignal(h, s)
	}
}

// DigestState folds the channel's mutable run state into h: the
// struct-of-arrays per-node scalars (transceiver state, live transmit
// power, energy meters), the lazily built link-cache validity bits, the
// fault plane's link offsets, and each tile's scheduling counters (UID
// cursor, pending delivery count, outbox and cache-residency sizes).
// The offsets map is iterated in sorted key order; everything else is
// slice-indexed. Radios are digested separately by the per-node walk.
func (c *Channel) DigestState(h *digest.Hash) {
	h.Int(len(c.radios))
	for i := range c.radios {
		h.Byte(byte(c.states[i]))
		h.Float64(c.txPow[i])
		e := &c.energies[i]
		h.Float64(float64(e.last))
		h.Byte(byte(e.state))
		h.Float64(e.joules)
		for _, j := range e.byState {
			h.Float64(j)
		}
		h.Bool(c.linkValid[i])
	}

	h.Int(len(c.offsets))
	keys := make([]linkKey, 0, len(c.offsets))
	for k := range c.offsets {
		keys = append(keys, k)
	}
	slices.SortFunc(keys, func(a, b linkKey) int {
		if a.from != b.from {
			return int(a.from) - int(b.from)
		}
		return int(a.to) - int(b.to)
	})
	for _, k := range keys {
		h.Int64(int64(k.from))
		h.Int64(int64(k.to))
		h.Float64(c.offsets[k])
	}

	digestTile := func(t *tileCtx) {
		h.Uint64(t.uid)
		h.Uint64(t.uidBase)
		h.Int(t.pendingStarts)
		h.Int(len(t.outbox))
		for _, x := range t.outbox {
			digestSignal(h, x.sig)
		}
		h.Int(len(t.cached) - t.cachedHead)
	}
	h.Int(len(c.tiles))
	for _, t := range c.tiles {
		digestTile(t)
	}
	if c.ctl != nil && (len(c.tiles) == 0 || c.ctl != c.tiles[0]) {
		h.Bool(true)
		digestTile(c.ctl)
	} else {
		h.Bool(false)
	}
}
