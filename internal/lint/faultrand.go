package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// FaultRand enforces the fault plane's determinism contract in two
// layers. The syntactic core forbids fault-plane functions from
// accepting a raw *math/rand.Rand parameter: every fault stream derives
// from the network seed through internal/rng labels (Injector.stream),
// and a constructor or installer that takes a caller-supplied generator
// reopens the door to call-order-dependent, seed-unstable fault
// schedules.
//
// The flow-aware layer (when whole-module context is available) checks
// the streams the fault plane actually draws from: a draw whose
// receiver's provenance roots in a package-level variable or a
// fixed-seed constructor — through any chain of helpers — is flagged at
// the draw site, even though no *rand.Rand ever crossed a parameter
// list.
var FaultRand = &Analyzer{
	Name: "faultrand",
	Doc:  "fault-plane streams must derive from the network seed (Injector.stream); no raw *rand.Rand parameters, no global or fixed-seed streams",
	Run:  runFaultRand,
}

// inFaultPkg reports whether the unit is the fault plane proper (a
// package named fault under internal/).
func inFaultPkg(p *Pass) bool {
	return p.InInternal() &&
		(strings.HasSuffix(p.Path, "/fault") || strings.Contains(p.Path, "/fault/"))
}

func runFaultRand(p *Pass) {
	if !inFaultPkg(p) {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Type.Params == nil {
				continue
			}
			for _, field := range fd.Type.Params.List {
				if isRandPointer(p.TypeOf(field.Type)) {
					p.Reportf(field.Pos(), "%s takes a raw *rand.Rand; fault streams must derive from the network seed (Injector.stream)",
						fd.Name.Name)
				}
			}
			if p.Prog != nil && !p.IsTestFile(fd.Pos()) {
				if node := p.Prog.NodeFor(fd); node != nil {
					checkFaultDraws(p, node)
				}
			}
		}
	}
}

// checkFaultDraws flags draws from streams whose provenance does not
// trace to the seed, recursing into closures.
func checkFaultDraws(p *Pass, n *FuncNode) {
	prog := p.Prog
	env := prog.buildProvEnv(n)
	ast.Inspect(n.body(), func(node ast.Node) bool {
		if lit, ok := node.(*ast.FuncLit); ok {
			if child := prog.NodeFor(lit); child != nil {
				checkFaultDraws(p, child)
			}
			return false
		}
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !isRandValueType(p.TypeOf(sel.X)) {
			return true
		}
		switch sum := prog.classifyRand(n, sel.X, env); sum.kind {
		case provGlobal:
			p.Reportf(call.Pos(), "fault draw from package-level stream %s: fault schedules must be a pure function of the network seed; derive the stream from Injector.stream labels", sum.key)
		case provRaw:
			p.Reportf(call.Pos(), "fault draw from a fixed-seed stream: fault schedules must derive from the network seed via rng.Derive (Injector.stream), not a literal seed")
		}
		return true
	})
}

// isRandPointer reports whether t is *math/rand.Rand (either flavor).
func isRandPointer(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Rand" && obj.Pkg() != nil && randPackages[obj.Pkg().Path()]
}
