// Package lint is a small, stdlib-only static-analysis engine that
// enforces the simulator's determinism invariants. The paper's results
// are reproducible only because every run is bit-for-bit deterministic
// from its seed; these invariants used to live in package comments, and
// this package makes them mechanically checked.
//
// The engine mirrors the shape of golang.org/x/tools/go/analysis
// without the dependency: an Analyzer inspects one type-checked package
// unit through a Pass and reports position-accurate Diagnostics. The
// cmd/simlint driver loads every package under a module root (see
// load.go) and fails the build on findings.
//
// False positives are silenced in source with
//
//	//lint:ignore <rule> <reason>
//
// placed on the offending line or the line directly above it. The
// reason is mandatory: an unexplained suppression is itself reported.
package lint

import (
	"cmp"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"slices"
	"strings"
)

// Analyzer is one named rule. Run inspects the package unit behind the
// Pass and reports findings through it.
type Analyzer struct {
	Name string      // rule name used in output and //lint:ignore
	Doc  string      // one-line description of the invariant
	Run  func(*Pass) // inspection body; must not retain the Pass
}

// Diagnostic is one finding, positioned for editors and CI logs.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Rule, d.Message)
}

// Pass hands one type-checked package unit to an analyzer. Type
// information may be partial when the loader degraded (missing stdlib
// export data, parse errors in a dependency); analyzers must tolerate
// nil entries in Info maps.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package // may be nil when type checking failed entirely
	Info  *types.Info
	Path  string // import path of the unit, e.g. "routeless/internal/sim"

	rule  string
	diags *[]Diagnostic
}

// Reportf records a finding at pos under the running analyzer's rule
// name.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// InInternal reports whether the unit lives under an internal/ tree.
func (p *Pass) InInternal() bool {
	return strings.Contains(p.Path, "/internal/") ||
		strings.HasSuffix(p.Path, "/internal") ||
		strings.HasPrefix(p.Path, "internal/")
}

// InCmd reports whether the unit is a command under cmd/.
func (p *Pass) InCmd() bool {
	return strings.Contains(p.Path, "/cmd/") || strings.HasPrefix(p.Path, "cmd/")
}

// InExamples reports whether the unit is example code.
func (p *Pass) InExamples() bool {
	return strings.Contains(p.Path, "/examples/") || strings.HasPrefix(p.Path, "examples/")
}

// IsTestFile reports whether the file containing pos is a _test.go
// file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// PkgNameOf resolves the selector's receiver to an imported package
// path, or "" when sel.X is not a plain package qualifier (method
// calls, field accesses, unresolved identifiers).
func (p *Pass) PkgNameOf(sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok || p.Info == nil {
		return ""
	}
	if pn, ok := p.Info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// TypeOf returns the type of e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	file   string
	line   int
	rule   string // "*" matches every rule
	reason string
	used   bool
}

const ignorePrefix = "//lint:ignore"

// parseIgnores extracts suppression directives from every file of the
// unit. Malformed directives (no rule, or no reason) are reported as
// findings themselves so they cannot silently rot.
func parseIgnores(fset *token.FileSet, files []*ast.File, diags *[]Diagnostic) []*ignoreDirective {
	var out []*ignoreDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				fields := strings.Fields(rest)
				pos := fset.Position(c.Pos())
				if len(fields) < 2 {
					*diags = append(*diags, Diagnostic{
						Pos:     pos,
						Rule:    "ignore",
						Message: "malformed directive: want //lint:ignore <rule> <reason>",
					})
					continue
				}
				out = append(out, &ignoreDirective{
					file:   pos.Filename,
					line:   fset.Position(c.End()).Line,
					rule:   fields[0],
					reason: strings.Join(fields[1:], " "),
				})
			}
		}
	}
	return out
}

// suppressed reports whether d is covered by a directive on its line or
// the line above, and marks the directive used.
func suppressed(d Diagnostic, dirs []*ignoreDirective) bool {
	for _, dir := range dirs {
		if dir.file != d.Pos.Filename {
			continue
		}
		if dir.rule != d.Rule && dir.rule != "*" {
			continue
		}
		if dir.line == d.Pos.Line || dir.line == d.Pos.Line-1 {
			dir.used = true
			return true
		}
	}
	return false
}

// Unit is one loadable package unit ready for analysis.
type Unit struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	Path  string
}

// Run applies every analyzer to the unit and returns surviving
// diagnostics sorted by position. Suppressed findings are dropped;
// malformed directives and directives naming unknown rules are
// reported.
func Run(u *Unit, analyzers []*Analyzer) []Diagnostic {
	var raw []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Fset:  u.Fset,
			Files: u.Files,
			Pkg:   u.Pkg,
			Info:  u.Info,
			Path:  u.Path,
			rule:  a.Name,
			diags: &raw,
		}
		a.Run(pass)
	}

	var out []Diagnostic
	dirs := parseIgnores(u.Fset, u.Files, &out)
	// Directives are validated against the full registry, not the
	// analyzers selected for this run: a -rules subset must not turn
	// legitimate suppressions of unselected rules into findings.
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	for _, d := range raw {
		if !suppressed(d, dirs) {
			out = append(out, d)
		}
	}
	for _, dir := range dirs {
		if dir.rule != "*" && !known[dir.rule] {
			out = append(out, Diagnostic{
				Pos:     token.Position{Filename: dir.file, Line: dir.line},
				Rule:    "ignore",
				Message: fmt.Sprintf("directive suppresses unknown rule %q", dir.rule),
			})
		}
	}

	slices.SortFunc(out, func(x, y Diagnostic) int {
		a, b := x.Pos, y.Pos
		if c := cmp.Compare(a.Filename, b.Filename); c != 0 {
			return c
		}
		if c := cmp.Compare(a.Line, b.Line); c != 0 {
			return c
		}
		return cmp.Compare(a.Column, b.Column)
	})
	return out
}

// All returns the full determinism rule set in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		GlobalRand,
		WallClock,
		MapOrder,
		Goroutine,
		FloatEq,
		SortPkg,
		StatsMut,
		SharedCap,
		FaultRand,
	}
}
