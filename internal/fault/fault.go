// Package fault is the deterministic fault-injection plane: a typed
// Plan of fault processes — node crash/recovery duty cycles (Crash),
// battery depletion (Drain), per-link shadowing (Degrade), and a
// roaming jammer (Jam) — installed against a running node.Network.
//
// Determinism contract: every fault stream derives from the network
// seed through internal/rng stream labels. Crash processes reuse the
// per-node StreamFailure streams (so routing a legacy hand-wired
// FailureProcess experiment through a one-crash plan is bitwise
// identical), and every other spec draws from a per-spec child of
// StreamFault keyed by its position in the plan. A plan therefore
// perturbs neither topology, traffic, MAC, nor fading draws, and
// same-seed runs stay byte-identical at any sweep worker count.
//
// An empty plan is inert: Install registers no metrics and schedules
// no events, leaving a run's snapshot and journal bytes untouched —
// the fault plane can be wired in everywhere without disturbing
// golden figures.
//
// Interactions: a node selected by both Crash and Drain can be revived
// by the duty cycle after depletion; the drain poller re-fails it on
// its next tick, so batteries stay dead at period granularity.
package fault

import (
	"fmt"
	"math/rand"
	"slices"

	"routeless/internal/metrics"
	"routeless/internal/node"
	"routeless/internal/packet"
	"routeless/internal/rng"
)

// Spec is one typed fault in a Plan: a CrashSpec, DrainSpec,
// DegradeSpec, or JamSpec. The interface is closed — install wires the
// fault into the injector's network with the event and stream ordering
// the determinism contract requires, and validate rejects nonsensical
// parameterizations before any process is started.
type Spec interface {
	install(inj *Injector, idx int)
	validate() error
}

// Plan is an ordered list of fault specs. Order matters: a spec's
// position fixes both its derived rng stream and its event-creation
// order, both part of the determinism contract.
type Plan []Spec

// Validate checks every spec's parameters as values — NaN or negative
// periods, out-of-range fractions, non-positive capacities — and
// returns the first problem found, identified by the spec's position
// and type. A plan that validates cleanly installs without panicking;
// generated plans (the scenario fuzzer's) are rejected here instead of
// killing the process mid-install.
func (p Plan) Validate() error {
	for i, s := range p {
		if err := s.validate(); err != nil {
			return fmt.Errorf("fault: plan spec %d (%T): %w", i, s, err)
		}
	}
	return nil
}

// Injector is the handle returned by Install: it owns the fault
// processes driving one network and the fault.* metric series they
// report into.
type Injector struct {
	nw *node.Network

	// crashes holds the duty-cycle processes, for the downtime
	// conservation bound and test introspection.
	crashes []*node.FailureProcess

	// degraded tracks currently shadowed undirected links so one link is
	// never stacked with two concurrent offsets.
	degraded map[[2]int32]bool

	drained   metrics.Counter
	degrades  metrics.Counter
	restores  metrics.Counter
	jamBursts metrics.Counter
	jamHits   metrics.Counter
}

// Install wires plan into nw. All fault streams derive from nw.Seed.
// An empty plan installs nothing and registers nothing, so a run with
// the fault plane merely present stays byte-identical to one without.
// The plan is validated first; an invalid plan panics. Callers holding
// a plan of unknown provenance should use TryInstall.
func Install(nw *node.Network, plan Plan) *Injector {
	inj, err := TryInstall(nw, plan)
	if err != nil {
		panic(err.Error())
	}
	return inj
}

// TryInstall validates plan and, when it is clean, wires it into nw
// exactly as Install does. An invalid plan is reported as an error
// value with nothing installed — no metrics registered, no events
// scheduled — so the network remains usable (and byte-identical to one
// that never saw the plan).
func TryInstall(nw *node.Network, plan Plan) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	inj := &Injector{nw: nw, degraded: make(map[[2]int32]bool)}
	if len(plan) == 0 {
		return inj, nil
	}
	inj.registerMetrics(nw.Metrics)
	for i, s := range plan {
		s.install(inj, i)
	}
	return inj, nil
}

// Crashes exposes the installed duty-cycle processes (test and
// instrumentation access).
func (inj *Injector) Crashes() []*node.FailureProcess { return inj.crashes }

func (inj *Injector) registerMetrics(reg *metrics.Registry) {
	reg.Observe("fault.drained", &inj.drained)
	reg.Observe("fault.degrades", &inj.degrades)
	reg.Observe("fault.restores", &inj.restores)
	reg.Observe("fault.jam_bursts", &inj.jamBursts)
	reg.Observe("fault.jam_hits", &inj.jamHits)
	reg.GaugeFunc("fault.down_nodes", func() float64 {
		down := 0
		for _, n := range inj.nw.Nodes {
			if !n.Up() {
				down++
			}
		}
		return float64(down)
	})
	reg.Invariant("fault-downtime", inj.checkDowntime)
}

// checkDowntime is the conservation bound behind CheckInvariants: each
// crash process's down phases are disjoint in time, so its accrued
// downtime can never exceed the elapsed sim time, and the plan total is
// bounded by sim time × number of crash processes. (The bound used to
// multiply by the node count, which both overshot single-spec plans
// with exclusions and undershot multi-crash plans — the scenario fuzzer
// caught the latter.) A small relative tolerance absorbs float
// summation error across thousands of accrual terms.
func (inj *Injector) checkDowntime() error {
	var total float64
	for _, fp := range inj.crashes {
		total += fp.DownTime()
	}
	limit := float64(inj.nw.Kernel.Now()) * float64(len(inj.crashes))
	if total > limit*(1+1e-9)+1e-9 {
		return fmt.Errorf("crash downtime %.6f s exceeds sim time × %d crash processes = %.6f s",
			total, len(inj.crashes), limit)
	}
	return nil
}

// stream derives the per-spec random stream: child idx of the fault
// label under the network seed. Spec installers must draw exclusively
// from here (the faultrand lint rule forbids raw *rand.Rand plumbing
// in this package).
func (inj *Injector) stream(idx int) *rand.Rand {
	if t := inj.nw.RNG; t != nil {
		return t.New(inj.nw.Seed, rng.StreamFault, uint64(idx))
	}
	return rng.New(inj.nw.Seed, rng.StreamFault, uint64(idx))
}

// selectNodes resolves a spec's node selection in ascending id order —
// installation order is part of the determinism contract. A nil ids
// slice selects every node; exclude always wins.
func selectNodes(nw *node.Network, ids, exclude []packet.NodeID) []*node.Node {
	skip := make(map[packet.NodeID]bool, len(exclude))
	for _, id := range exclude {
		skip[id] = true
	}
	if ids == nil {
		out := make([]*node.Node, 0, len(nw.Nodes))
		for _, n := range nw.Nodes {
			if !skip[n.ID] {
				out = append(out, n)
			}
		}
		return out
	}
	sorted := slices.Clone(ids)
	slices.Sort(sorted)
	sorted = slices.Compact(sorted)
	out := make([]*node.Node, 0, len(sorted))
	for _, id := range sorted {
		if !skip[id] && int(id) >= 0 && int(id) < len(nw.Nodes) {
			out = append(out, nw.Nodes[id])
		}
	}
	return out
}
