package phy

import (
	"math/rand"
	"slices"

	"routeless/internal/geo"
	"routeless/internal/metrics"
	"routeless/internal/packet"
	"routeless/internal/propagation"
	"routeless/internal/sim"
)

// link is one precomputed edge of the broadcast topology: a receiver
// within the interference cutoff of a transmitter, with the geometry
// and deterministic propagation math a transmission needs, computed
// once instead of per frame.
type link struct {
	idx     int32    // receiver node id
	dist    float64  // transmitter→receiver distance, meters
	meanDBm float64  // deterministic (unfaded) receive power
	meanMW  float64  // meanDBm in milliwatts, for the no-fading fast path
	delay   sim.Time // propagation delay over dist
}

// Channel is the shared broadcast medium. It knows every radio's
// position, computes per-receiver power through a propagation model and
// an optional fader, and schedules signal start/end events with the
// true propagation delay.
//
// The hot path — transmit — runs off a per-node link cache: the
// id-sorted receivers within the cutoff, with distance, mean power, and
// propagation delay precomputed. Caches build lazily on a node's first
// transmission and are invalidated per node by MoveTo and SetTxPower,
// so static topologies (the paper's scenarios) pay the grid query,
// sort, and log/pow propagation math exactly once per transmitter.
type Channel struct {
	model  propagation.Model
	fader  propagation.Fader
	noFade bool       // fader is propagation.NoFade: skip draws and reuse meanMW
	frng   *rand.Rand // fading draws
	grid   *geo.HierGrid

	// radios is the contiguous radio arena, and states/txPow/energies
	// are the struct-of-arrays hot per-node scalars hoisted out of the
	// Radio struct: transceiver phase (up/down, rx/tx), live transmit
	// power, and the energy meter, all indexed by node id. The four
	// slices come from one Pools.radioArena call, so a sweep worker's
	// consecutive runs reuse the same backing memory.
	radios   []Radio
	states   []State
	txPow    []float64
	energies []Energy

	// params is the single shared radio configuration every Radio points
	// at, and power the single shared draw profile every Energy points
	// at; noiseMW/csThreshMW/captureRatio are the linear-domain images of
	// the dB thresholds, converted once here so the per-signal hot paths
	// (carrier sensing, SINR) compare milliwatts without per-node cached
	// copies. All frozen after NewChannel.
	params       Params
	power        Power
	noiseMW      float64 // params.NoiseFloorDBm in mW
	csThreshMW   float64 // params.CSThreshDBm in mW
	captureRatio float64 // params.CaptureDB as a linear power ratio

	// cutoff is the distance beyond which a transmission cannot affect
	// a receiver even after fading; signals past it are not scheduled.
	cutoff float64

	// tiles holds the per-tile scheduling state. A sequential channel
	// has exactly one tile whose kernel is the simulation kernel — the
	// pre-tiling code path, unchanged. A tiled channel (ChannelConfig
	// .Tiles) has one tileCtx per arena tile; transmissions run on the
	// source node's tile and same-tile deliveries schedule directly,
	// while boundary-crossing deliveries queue in the source tile's
	// outbox for the barrier exchange (ExchangeCross).
	tiles []*tileCtx
	// ctl serves the single-threaded control lane: interference
	// injection, mobility, link offsets. Sequential channels alias it
	// to tiles[0]; tiled channels give it the barrier-synchronized
	// control kernel.
	ctl *tileCtx
	// tileOf maps node id → tile index (all zero when sequential).
	tileOf []int32

	// links[i] caches node i's outgoing edges; linkValid[i] marks the
	// entry current. noCache forces a rebuild on every transmission —
	// the recompute-every-time reference the coherence tests compare
	// against. Entry i is only ever written by node i's own tile (or
	// by the control lane at a barrier), so the shared slices are safe
	// under tiled execution.
	links     [][]link
	linkValid []bool
	noCache   bool
	// linkCap, when positive, bounds how many nodes per tile may hold a
	// valid link cache at once: each tile evicts its least-recently
	// built entry FIFO-style past the cap. Rebuilds are bit-identical,
	// so eviction changes memory and time, never results.
	linkCap int

	// offsets holds the fault plane's per-link shadowing: extra gain in
	// dB applied on top of the propagation model for specific directed
	// links. Nil (the common case) means the power math runs exactly the
	// pre-offset expressions, preserving float bit-identity. Mutated
	// only from the control lane (all tiles parked at a barrier).
	offsets map[linkKey]float64

	// ranges memoizes the RangeFor bisection per radio parameter set
	// (experiments call DecodeRange/NeighborCount per node on topologies
	// where all radios share one parameter set). When ChannelConfig
	// supplies a cache it is shared across every channel the owning
	// sweep worker builds; otherwise the channel owns a private one.
	ranges *propagation.SharedRangeCache
}

// tileCtx is the per-tile slice of the channel's mutable scheduling
// state: the tile's kernel, its object pools, its share of the medium
// counters (the registry sums same-name counters, so per-tile counters
// roll up to the same network series), its UID namespace, and the
// outbox of boundary-crossing deliveries awaiting the next barrier.
// Sequential channels have exactly one, making every field access
// identical to the pre-tiling single-struct layout.
type tileCtx struct {
	kernel *sim.Kernel
	pools  *Pools

	// uid counts frames born on this tile; uidBase disambiguates the
	// namespace across tiles (UIDs are only ever compared for equality
	// and zero). Sequential channels use base 0, preserving historical
	// values.
	uid     uint64
	uidBase uint64

	stats chanCounters

	// pendingStarts counts deliveries scheduled whose leading edge has
	// not yet reached the receiver — this tile's term of the
	// phy-delivery conservation law.
	pendingStarts int

	scratch []int
	outbox  []xdeliv

	// cached is the FIFO of nodes whose link cache this tile built,
	// consulted only when the channel bounds cache residency
	// (Channel.linkCap > 0). cachedHead indexes the oldest live entry;
	// the slice compacts when the dead prefix dominates.
	cached     []int32
	cachedHead int
}

// xdeliv is one boundary-crossing delivery parked in a source tile's
// outbox between transmission and the next epoch barrier.
type xdeliv struct {
	rcv   *Radio
	sig   *signal
	start sim.Time
}

// linkKey identifies one directed link for the offset table.
type linkKey struct{ from, to int32 }

// ChannelStats is the plain-uint64 snapshot view of medium-wide counters.
type ChannelStats struct {
	Transmissions uint64 // frames put on the air
	Deliveries    uint64 // (radio, frame) pairs scheduled
}

// chanCounters is the live counter storage behind ChannelStats.
type chanCounters struct {
	transmissions metrics.Counter
	deliveries    metrics.Counter
}

// ChannelConfig configures the medium.
type ChannelConfig struct {
	Model propagation.Model
	Fader propagation.Fader
	// FadeMarginDB widens the interference cutoff to admit fading
	// upswings; ignored with a nil/NoFade fader.
	FadeMarginDB float64
	// Rng drives fading; may be nil when Fader is nil/NoFade.
	Rng *rand.Rand
	// NoLinkCache disables the per-node link cache: every transmission
	// re-queries the spatial grid and recomputes propagation math. This
	// is the slow reference path; it exists so tests can prove the
	// cached channel is bit-for-bit equivalent to it.
	NoLinkCache bool
	// LinkCacheCap, when positive, bounds the number of per-node link
	// caches each tile keeps live at once (FIFO eviction). At mega
	// scale an unbounded cache costs kilobytes per transmitter that
	// ever spoke; a cap keeps link-cache memory O(active transmitters
	// per tile). Zero means unbounded (the historical behavior).
	// Eviction only forces bit-identical rebuilds — results never
	// change.
	LinkCacheCap int
	// Pools, when non-nil, supplies externally owned signal/delivery
	// free lists (a sweep worker's reusable run context). Nil means the
	// channel allocates private pools — identical behavior, colder
	// memory.
	Pools *Pools
	// Ranges, when non-nil, supplies an externally owned cross-model
	// range cache; nil means a private one.
	Ranges *propagation.SharedRangeCache
	// Tiles, when it holds more than one entry, partitions the medium
	// for tiled PDES: one kernel (and optional pools) per arena tile,
	// with TileOf mapping every node id to its tile. The kernel passed
	// to NewChannel then becomes the control-lane kernel (interference
	// injection, link offsets), which only runs while all tile workers
	// are parked at an epoch barrier. Empty or single-entry means the
	// classic sequential medium. Tiling requires NoFade: the fading
	// stream is a single sequential draw order that cannot be
	// partitioned without changing results.
	Tiles []TileSpec
	// TileOf maps node id → index into Tiles; required iff tiled.
	TileOf []int32
}

// TileSpec names one tile's scheduling resources for a tiled channel.
type TileSpec struct {
	Kernel *sim.Kernel
	// Pools, when nil, gives the tile private pools.
	Pools *Pools
}

// CutoffFor returns the interference cutoff a channel over rect with
// the given radio parameters will use: the distance beyond which a
// transmission cannot affect a receiver, against the carrier-sense
// threshold widened by fadeMarginDB (pass 0 without fading). Exposed so
// the network layer can size PDES tilings from the same number the
// channel computes.
func CutoffFor(model propagation.Model, params Params, fadeMarginDB float64, rect geo.Rect) float64 {
	cutoff := propagation.RangeFor(model, params.TxPowerDBm, params.CSThreshDBm-fadeMarginDB, 1,
		rect.Width()+rect.Height()+1)
	if cutoff <= 0 {
		cutoff = rect.Width() + rect.Height()
	}
	return cutoff
}

// NewChannel builds a medium over the given node positions inside rect.
// Radios are created eagerly, one per position, all with params; use
// Radio(i) to retrieve them.
func NewChannel(k *sim.Kernel, rect geo.Rect, positions []geo.Point, params Params, cfg ChannelConfig) *Channel {
	model := cfg.Model
	if model == nil {
		model = propagation.NewFreeSpace()
	}
	fader := cfg.Fader
	if fader == nil {
		fader = propagation.NoFade{}
	}
	_, noFade := fader.(propagation.NoFade)
	margin := cfg.FadeMarginDB
	if noFade {
		margin = 0
	}
	cutoff := CutoffFor(model, params, margin, rect)
	cell := cutoff / 2
	if cell <= 0 || cell > rect.Width() {
		cell = rect.Width()/4 + 1
	}
	pools := cfg.Pools
	if pools == nil {
		pools = NewPools()
	}
	ranges := cfg.Ranges
	if ranges == nil {
		ranges = propagation.NewSharedRangeCache()
	}
	ch := &Channel{
		model:     model,
		fader:     fader,
		noFade:    noFade,
		frng:      cfg.Rng,
		grid:      geo.NewHierGrid(rect, cell, positions),
		cutoff:    cutoff,
		links:     make([][]link, len(positions)),
		linkValid: make([]bool, len(positions)),
		noCache:   cfg.NoLinkCache,
		linkCap:   cfg.LinkCacheCap,
		ranges:    ranges,
	}
	if len(cfg.Tiles) > 1 {
		if !noFade {
			panic("phy: tiled channel requires NoFade (the fading stream is sequential)")
		}
		if len(cfg.TileOf) != len(positions) {
			panic("phy: tiled channel needs TileOf for every node")
		}
		ch.tiles = make([]*tileCtx, len(cfg.Tiles))
		for i, ts := range cfg.Tiles {
			p := ts.Pools
			if p == nil {
				p = NewPools()
			}
			ch.tiles[i] = &tileCtx{
				kernel:  ts.Kernel,
				pools:   p,
				uidBase: uint64(i+1) << 48,
			}
		}
		ch.ctl = &tileCtx{
			kernel:  k,
			pools:   NewPools(),
			uidBase: uint64(len(cfg.Tiles)+1) << 48,
		}
		ch.tileOf = cfg.TileOf
	} else {
		t := &tileCtx{kernel: k, pools: pools}
		ch.tiles = []*tileCtx{t}
		ch.ctl = t
		ch.tileOf = make([]int32, len(positions))
	}
	ch.params = params
	ch.power = DefaultPower()
	ch.noiseMW = propagation.DBmToMilliwatt(params.NoiseFloorDBm)
	ch.csThreshMW = propagation.DBmToMilliwatt(params.CSThreshDBm)
	ch.captureRatio = propagation.DBmToMilliwatt(params.CaptureDB)
	ch.radios, ch.states, ch.txPow, ch.energies = pools.radioArena(len(positions))
	for i := range positions {
		r := &ch.radios[i]
		r.id = packet.NodeID(i)
		r.params = &ch.params
		r.kernel = ch.tiles[ch.tileOf[i]].kernel
		r.channel = ch
		ch.states[i] = StateIdle
		ch.txPow[i] = params.TxPowerDBm
		ch.energies[i] = Energy{power: &ch.power, state: StateIdle}
	}
	return ch
}

// Tiled reports whether the medium is partitioned into more than one
// tile.
func (c *Channel) Tiled() bool { return len(c.tiles) > 1 }

// Radio returns the transceiver at position index i.
func (c *Channel) Radio(i int) *Radio { return &c.radios[i] }

// NumRadios returns the number of attached transceivers.
func (c *Channel) NumRadios() int { return len(c.radios) }

// Position returns node i's location.
func (c *Channel) Position(i int) geo.Point { return c.grid.At(i) }

// MoveTo relocates node i — the mobility extension. Transmissions
// already in flight are unaffected (their powers were computed at
// transmit time); subsequent transmissions use the new position.
//
// Cache invalidation contract: moving node i invalidates (a) i's own
// link cache and (b) the cache of every node within the cutoff of i's
// old or new position — exactly the transmitters whose receiver set or
// link math could mention i. Valid caches always describe current
// positions because any node that moved had its own cache invalidated
// by its own MoveTo.
func (c *Channel) MoveTo(i int, p geo.Point) {
	if c.Tiled() {
		// Tile assignment and boundary tagging are fixed at
		// construction; a move could cross a tile border or create a
		// new boundary transmitter mid-run, both unsound.
		panic("phy: MoveTo is not supported on a tiled channel")
	}
	if c.noCache {
		c.grid.MoveTo(i, p)
		return
	}
	t := c.ctl
	t.scratch = c.grid.WithinRadius(t.scratch[:0], c.grid.At(i), c.cutoff, i)
	for _, id := range t.scratch {
		c.linkValid[id] = false
	}
	c.grid.MoveTo(i, p)
	t.scratch = c.grid.WithinRadius(t.scratch[:0], p, c.cutoff, i)
	for _, id := range t.scratch {
		c.linkValid[id] = false
	}
	c.linkValid[i] = false
}

// invalidateLinks drops node i's cached outgoing links; called by the
// radio when its transmit power changes (receiver set is distance-based
// and unaffected, but every cached mean power becomes stale).
func (c *Channel) invalidateLinks(i int) { c.linkValid[i] = false }

// Model returns the propagation model in use.
func (c *Channel) Model() propagation.Model { return c.model }

// Cutoff returns the interference cutoff distance in meters.
func (c *Channel) Cutoff() float64 { return c.cutoff }

// Stats returns medium-wide counters, summed across tiles (and the
// control lane, whose jammer bursts count as deliveries).
func (c *Channel) Stats() ChannelStats {
	var tx, dl uint64
	for _, t := range c.tiles {
		tx += t.stats.transmissions.Value()
		dl += t.stats.deliveries.Value()
	}
	if c.ctl != c.tiles[0] {
		tx += c.ctl.stats.transmissions.Value()
		dl += c.ctl.stats.deliveries.Value()
	}
	return ChannelStats{Transmissions: tx, Deliveries: dl}
}

// RegisterMetrics registers the medium-wide counters and the pending
// leading-edge count with the registry. Per-tile counters register
// under the shared series names; the registry sums same-name sources,
// so tiled and sequential runs expose identical series.
func (c *Channel) RegisterMetrics(reg *metrics.Registry) {
	for _, t := range c.tiles {
		reg.Observe("chan.transmissions", &t.stats.transmissions)
		reg.Observe("chan.deliveries", &t.stats.deliveries)
	}
	if c.ctl != c.tiles[0] {
		reg.Observe("chan.transmissions", &c.ctl.stats.transmissions)
		reg.Observe("chan.deliveries", &c.ctl.stats.deliveries)
	}
	reg.Func("chan.pending_starts", func() uint64 {
		var n int
		for _, t := range c.tiles {
			n += t.pendingStarts
		}
		if c.ctl != c.tiles[0] {
			n += c.ctl.pendingStarts
		}
		return uint64(n)
	})
}

// RegisterRadioMetrics registers the network-wide phy.* series as
// aggregate func-counters summing over every radio, in the exact order
// Radio.RegisterMetrics registers them per radio. The registry sums
// same-name sources at snapshot time, so N per-radio Observe
// registrations and one aggregate Func per series expose bit-identical
// snapshots — but the aggregate costs O(1) registry entries instead of
// O(N), which is what makes a million-radio registry affordable.
func (c *Channel) RegisterRadioMetrics(reg *metrics.Registry) {
	sum := func(pick func(*radioCounters) *metrics.Counter32) func() uint64 {
		return func() uint64 {
			var s uint64
			for i := range c.radios {
				s += pick(&c.radios[i].stats).Value()
			}
			return s
		}
	}
	reg.Func("phy.tx_frames", sum(func(s *radioCounters) *metrics.Counter32 { return &s.txFrames }))
	reg.Func("phy.rx_frames", sum(func(s *radioCounters) *metrics.Counter32 { return &s.rxFrames }))
	reg.Func("phy.collisions", sum(func(s *radioCounters) *metrics.Counter32 { return &s.collisions }))
	reg.Func("phy.missed_weak", sum(func(s *radioCounters) *metrics.Counter32 { return &s.missedWeak }))
	reg.Func("phy.dropped_off", sum(func(s *radioCounters) *metrics.Counter32 { return &s.droppedOff }))
	reg.Func("phy.aborted_by_tx", sum(func(s *radioCounters) *metrics.Counter32 { return &s.abortedByTx }))
	reg.Func("phy.aborted_by_off", sum(func(s *radioCounters) *metrics.Counter32 { return &s.abortedByOff }))
	reg.Func("phy.tx_aborted", sum(func(s *radioCounters) *metrics.Counter32 { return &s.txAborted }))
	reg.Func("phy.truncated", sum(func(s *radioCounters) *metrics.Counter32 { return &s.truncated }))
	reg.Func("phy.signal_starts", sum(func(s *radioCounters) *metrics.Counter32 { return &s.signalStarts }))
	reg.Func("phy.signal_ends", sum(func(s *radioCounters) *metrics.Counter32 { return &s.signalEnds }))
	reg.Func("phy.flushed_by_off", sum(func(s *radioCounters) *metrics.Counter32 { return &s.flushedByOff }))
	reg.Func("phy.in_air", func() uint64 {
		var n uint64
		for i := range c.radios {
			n += uint64(len(c.radios[i].inAir))
		}
		return n
	})
}

// MeanPowerAt returns the deterministic (unfaded) receive power in dBm
// between two node indices — used by tests and by range queries.
func (c *Channel) MeanPowerAt(from, to int) float64 {
	d := c.grid.At(from).Dist(c.grid.At(to))
	return c.linkGain(from, to, c.model.ReceivedPower(c.txPow[from], d))
}

// SetLinkOffset applies an extra deterministic gain of db decibels to
// the directed link from→to (negative values attenuate) — the fault
// plane's per-link shadowing hook. A zero offset removes the entry.
// The transmitter's link cache is invalidated; frames already in flight
// keep the powers they were computed with, matching MoveTo semantics.
func (c *Channel) SetLinkOffset(from, to int, db float64) {
	if db == 0 {
		delete(c.offsets, linkKey{int32(from), int32(to)})
	} else {
		if c.offsets == nil {
			c.offsets = make(map[linkKey]float64)
		}
		c.offsets[linkKey{int32(from), int32(to)}] = db
	}
	c.linkValid[from] = false
}

// LinkOffset returns the current extra gain on from→to (0 when none).
func (c *Channel) LinkOffset(from, to int) float64 {
	return c.offsets[linkKey{int32(from), int32(to)}]
}

// linkGain folds any fault-plane offset into the deterministic receive
// power p. The nil-map fast path returns p untouched — not even p+0 is
// computed — so runs without link faults stay float-bit-identical to
// the pre-offset code.
func (c *Channel) linkGain(from, to int, p float64) float64 {
	if c.offsets == nil {
		return p
	}
	if o, ok := c.offsets[linkKey{int32(from), int32(to)}]; ok {
		return p + o
	}
	return p
}

// buildLinks computes node src's outgoing edges: receivers within the
// cutoff in ascending id order (so fading draws stay reproducible),
// with the same distance and power expressions transmit used before the
// cache existed — the cache must be bit-for-bit equivalent, not merely
// approximately right.
func (c *Channel) buildLinks(t *tileCtx, src int) []link {
	pos := c.grid.At(src)
	t.scratch = c.grid.WithinRadius(t.scratch[:0], pos, c.cutoff, src)
	slices.Sort(t.scratch)
	ls := c.links[src][:0]
	tx := c.txPow[src]
	for _, idx := range t.scratch {
		d := pos.Dist(c.grid.At(idx))
		p := c.linkGain(src, idx, c.model.ReceivedPower(tx, d))
		ls = append(ls, link{
			idx:     int32(idx),
			dist:    d,
			meanDBm: p,
			meanMW:  propagation.DBmToMilliwatt(p),
			delay:   sim.Time(propagation.Delay(d)),
		})
	}
	c.links[src] = ls
	c.linkValid[src] = true
	if c.linkCap > 0 && !c.noCache {
		c.boundCache(t, src)
	}
	return ls
}

// boundCache records src in tile t's cache-residency FIFO and evicts
// the oldest entries past the channel's cap. An evicted node's next
// transmission rebuilds its links bit-identically, so the bound trades
// rebuild time for O(linkCap) cache memory per tile. Entries can be
// stale (invalidated by MoveTo/SetTxPower, or re-cached later in the
// FIFO); evicting a stale entry is a cheap no-op.
func (c *Channel) boundCache(t *tileCtx, src int) {
	t.cached = append(t.cached, int32(src))
	for len(t.cached)-t.cachedHead > c.linkCap {
		old := t.cached[t.cachedHead]
		t.cachedHead++
		if int(old) != src && c.linkValid[old] {
			c.linkValid[old] = false
			c.links[old] = nil
		}
	}
	// Compact once the dead prefix dominates, keeping the FIFO's
	// footprint proportional to the cap rather than to traffic history.
	if t.cachedHead > len(t.cached)/2 && t.cachedHead > 32 {
		n := copy(t.cached, t.cached[t.cachedHead:])
		t.cached = t.cached[:n]
		t.cachedHead = 0
	}
}

// transmit fans a frame out to every radio within the cutoff range.
// Receivers are visited in id order so fading draws are reproducible.
// On a tiled channel it runs on the source node's tile: same-tile
// receivers schedule directly on the tile kernel, while
// boundary-crossing deliveries are parked in the tile outbox for the
// next epoch barrier (their leading edge is at least the cross-tile
// lookahead away, so the deferral never reorders the receiver).
func (c *Channel) transmit(src *Radio, pkt *packet.Packet, dur sim.Time) {
	srcIdx := int(src.id)
	t := c.tiles[c.tileOf[srcIdx]]
	t.stats.transmissions.Inc()
	if pkt.UID == 0 {
		// Assign once per frame: ARQ retransmissions keep their UID so
		// receivers can suppress duplicates of the same frame.
		t.uid++
		pkt.UID = t.uidBase | t.uid
	}
	ls := c.links[srcIdx]
	if c.noCache || !c.linkValid[srcIdx] {
		ls = c.buildLinks(t, srcIdx)
	}
	now := t.kernel.Now()
	for i := range ls {
		l := &ls[i]
		rcv := &c.radios[l.idx]
		var pDBm, pMW float64
		if c.noFade {
			pDBm, pMW = l.meanDBm, l.meanMW
		} else {
			pDBm = c.fader.Fade(c.frng, l.meanDBm)
			pMW = propagation.DBmToMilliwatt(pDBm)
		}
		if pDBm < rcv.params.CSThreshDBm {
			continue // too weak to sense or corrupt: not scheduled
		}
		rt := c.tiles[c.tileOf[l.idx]]
		t.stats.deliveries.Inc()
		if rt == t {
			s := t.pools.newSignal(pkt.Clone(), pDBm, pMW)
			s.end = now + l.delay + dur
			src.txLive = append(src.txLive, s)
			c.scheduleDelivery(t, rcv, s, now+l.delay)
			continue
		}
		// Cross-tile: plain allocation — the receiver tile's pools are
		// not ours to touch mid-window, and the signal is released into
		// them after delivery.
		s := &signal{pkt: pkt.Clone(), powerDBm: pDBm, powerMW: pMW}
		s.end = now + l.delay + dur
		src.txLive = append(src.txLive, s)
		t.outbox = append(t.outbox, xdeliv{rcv: rcv, sig: s, start: now + l.delay})
	}
}

// ExchangeCross drains every tile's outbox of boundary-crossing
// deliveries onto the receiving tiles' kernels, in (source tile,
// transmit order) — a deterministic order independent of how the
// tile workers interleaved. Must be called at an epoch barrier, with
// every tile worker parked. Returns the number of deliveries moved.
func (c *Channel) ExchangeCross() int {
	n := 0
	for _, t := range c.tiles {
		for i := range t.outbox {
			x := &t.outbox[i]
			rt := c.tiles[c.tileOf[x.rcv.id]]
			if x.start < rt.kernel.Now() {
				panic("phy: cross-tile delivery in the receiver's past (lookahead violated)")
			}
			c.scheduleDelivery(rt, x.rcv, x.sig, x.start)
			x.rcv, x.sig = nil, nil
			n++
		}
		t.outbox = t.outbox[:0]
	}
	return n
}

// delivery carries one frame to one receiver. It is a pooled object
// scheduled twice on the kernel with a single pre-bound callback: the
// first firing is the frame's leading edge (signalStart) and reschedules
// itself for the trailing edge (signalEnd) — replacing the two closures
// the channel used to allocate per delivery.
type delivery struct {
	tile    *tileCtx
	rcv     *Radio
	sig     *signal
	started bool
	fn      func() // d.fire bound once at allocation, reused across recycles
}

// scheduleDelivery arms a pooled delivery for s at the receiver,
// starting (leading edge) at start, on the receiver's tile t.
func (c *Channel) scheduleDelivery(t *tileCtx, rcv *Radio, s *signal, start sim.Time) {
	d := t.pools.newDelivery(t)
	d.rcv, d.sig, d.started = rcv, s, false
	t.pendingStarts++
	t.kernel.At(start, d.fn)
}

// fire is the delivery's only callback. First firing: leading edge —
// queue the trailing edge, then hand the signal to the receiver. Second
// firing: trailing edge — finish reception and recycle.
func (d *delivery) fire() {
	if !d.started {
		d.started = true
		d.tile.pendingStarts--
		d.tile.kernel.At(d.sig.end, d.fn)
		d.rcv.signalStart(d.sig)
		return
	}
	t := d.tile
	d.rcv.signalEnd(d.sig)
	t.pools.releaseSignal(d.sig)
	t.pools.releaseDelivery(d)
}

// InjectInterference radiates an interference-only burst of duration
// dur from an arbitrary position — the fault plane's roaming jammer.
// The burst fans out through the normal delivery path so carrier
// sensing, SINR corruption, and the phy conservation laws all account
// for it, but its signals are born aborted: they raise the noise floor
// and hold the medium busy without ever decoding. Power is the
// deterministic mean (no fading draw), so a jammer never perturbs the
// frame fading stream; reach is bounded by the channel's interference
// cutoff. Returns how many radios the burst was scheduled at.
func (c *Channel) InjectInterference(pos geo.Point, txDBm float64, dur sim.Time) int {
	// Runs on the control lane: single-threaded, and on a tiled channel
	// only at an epoch barrier (every tile clock equals the control
	// clock), so scheduling straight onto the receivers' tiles is
	// causal.
	ct := c.ctl
	ct.scratch = c.grid.WithinRadius(ct.scratch[:0], pos, c.cutoff, -1)
	slices.Sort(ct.scratch)
	ct.uid++
	pkt := &packet.Packet{
		Kind:   packet.KindJam,
		From:   packet.None,
		To:     packet.Broadcast,
		Origin: packet.None,
		Target: packet.None,
		UID:    ct.uidBase | ct.uid,
	}
	now := ct.kernel.Now()
	hits := 0
	for _, idx := range ct.scratch {
		rcv := &c.radios[idx]
		d := pos.Dist(c.grid.At(idx))
		pDBm := c.model.ReceivedPower(txDBm, d)
		if pDBm < rcv.params.CSThreshDBm {
			continue
		}
		rt := c.tiles[c.tileOf[idx]]
		delay := sim.Time(propagation.Delay(d))
		s := rt.pools.newSignal(pkt.Clone(), pDBm, propagation.DBmToMilliwatt(pDBm))
		s.aborted = true
		s.end = now + delay + dur
		ct.stats.deliveries.Inc()
		c.scheduleDelivery(rt, rcv, s, now+delay)
		hits++
	}
	return hits
}

// InterferenceNeighbors appends the ids within the interference cutoff
// of node i to dst (unsorted) — every node a transmission from i could
// possibly touch, even after fading. Tiled construction uses it to find
// boundary transmitters and the minimum cross-tile propagation delay.
func (c *Channel) InterferenceNeighbors(dst []int, i int) []int {
	return c.grid.WithinRadius(dst[:0], c.grid.At(i), c.cutoff, i)
}

// NeighborIDs appends the ids within node i's deterministic decode
// range to dst, sorted ascending — the neighbor view fault injection
// uses to pick links worth degrading. Offsets installed through
// SetLinkOffset do not shrink this view: it describes the underlying
// topology, not the currently faulted one.
func (c *Channel) NeighborIDs(dst []int, i int) []int {
	ids := c.grid.WithinRadius(dst[:0], c.grid.At(i), c.DecodeRange(i), i)
	slices.Sort(ids)
	return ids
}

// NeighborCount returns how many nodes sit within the decode range of
// node i (deterministic power model, no fading) — a topology metric
// used by experiments and tests.
func (c *Channel) NeighborCount(i int) int {
	rangeM := c.DecodeRange(i)
	ids := c.grid.WithinRadius(nil, c.grid.At(i), rangeM, i)
	return len(ids)
}

// DecodeRange returns the deterministic decode range of node i's
// transmitter against its own receive threshold. The underlying
// bisection is memoized per parameter set — experiments call this for
// every node of fields where all radios share one configuration.
func (c *Channel) DecodeRange(i int) float64 {
	r := &c.radios[i]
	return c.ranges.RangeFor(c.model, c.txPow[i], r.params.RxThreshDBm, 1, c.cutoff+1)
}

// Connected reports whether the deterministic unit-disk graph induced
// by the decode range is connected — experiments regenerate topologies
// until it is, matching the paper's implicit assumption that flooding
// reaches everyone.
func (c *Channel) Connected() bool {
	n := len(c.radios)
	if n == 0 {
		return true
	}
	rangeM := c.DecodeRange(0)
	visited := make([]bool, n)
	stack := []int{0}
	visited[0] = true
	count := 1
	var buf []int
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		buf = c.grid.WithinRadius(buf[:0], c.grid.At(v), rangeM, v)
		for _, u := range buf {
			if !visited[u] {
				visited[u] = true
				count++
				stack = append(stack, u)
			}
		}
	}
	return count == n
}
