// Package sim provides a sequential discrete-event simulation kernel:
// a virtual clock, an event heap with deterministic tie-breaking, and
// cancellable timers. It is the substrate every other package in this
// repository runs on.
//
// The kernel is deliberately single-threaded: wireless protocol
// simulations are causally ordered by the event heap, and determinism
// (same seed, same schedule, same results) matters more than intra-run
// parallelism. Parallelism belongs one level up, across runs (see
// internal/parallel).
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
)

// Time is simulation time in seconds since the start of the run.
type Time float64

// Infinity is a time later than any schedulable event.
const Infinity Time = Time(math.MaxFloat64)

// Duration helpers.

// Millis returns t expressed in milliseconds.
func (t Time) Millis() float64 { return float64(t) * 1e3 }

// Micros returns t expressed in microseconds.
func (t Time) Micros() float64 { return float64(t) * 1e6 }

// Seconds returns t as a plain float64 number of seconds.
func (t Time) Seconds() float64 { return float64(t) }

// Event is a scheduled callback. Events are owned by the Kernel; user
// code holds *Event only to cancel or inspect it.
type Event struct {
	at     Time
	seq    uint64 // insertion order, breaks ties deterministically
	fn     func()
	index  int // position in the heap, -1 when not queued
	kernel *Kernel
}

// At returns the time the event is (or was) scheduled to fire.
func (e *Event) At() Time { return e.at }

// Pending reports whether the event is still queued to fire.
func (e *Event) Pending() bool { return e != nil && e.index >= 0 }

// Kernel is a discrete-event scheduler. The zero value is not usable;
// construct with NewKernel.
type Kernel struct {
	now       Time
	seq       uint64
	events    eventHeap
	rng       *rand.Rand
	processed uint64
	horizon   Time

	// free is a small pool of recycled Event structs; DES workloads
	// allocate millions of events and recycling them keeps GC pressure
	// flat without reaching for unsafe tricks.
	free []*Event
}

// NewKernel returns a kernel whose clock starts at 0 and whose random
// stream is seeded with seed. All randomness used by simulation
// components should derive from Rand() (directly or via rng.Split) so a
// run is reproducible from its seed.
func NewKernel(seed int64) *Kernel {
	return &Kernel{
		rng:     rand.New(rand.NewSource(seed)),
		horizon: Infinity,
	}
}

// Now returns the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's master random stream.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Processed returns the number of events executed so far.
func (k *Kernel) Processed() uint64 { return k.processed }

// Pending returns the number of events currently queued.
func (k *Kernel) Pending() int { return len(k.events) }

// Schedule queues fn to run delay seconds after the current time and
// returns the event handle. A negative delay panics: an event in the
// past would violate causality.
func (k *Kernel) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v at t=%v", delay, k.now))
	}
	return k.At(k.now+delay, fn)
}

// At queues fn to run at absolute time t (which must not precede the
// current time) and returns the event handle.
func (k *Kernel) At(t Time, fn func()) *Event {
	if t < k.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, k.now))
	}
	if fn == nil {
		panic("sim: nil event callback")
	}
	var e *Event
	if n := len(k.free); n > 0 {
		e = k.free[n-1]
		k.free = k.free[:n-1]
		*e = Event{}
	} else {
		e = &Event{}
	}
	e.at = t
	e.seq = k.seq
	e.fn = fn
	e.kernel = k
	k.seq++
	heap.Push(&k.events, e)
	return e
}

// Cancel removes a pending event. Cancelling a nil, already-fired or
// already-cancelled event is a no-op, so callers can cancel
// unconditionally.
func (k *Kernel) Cancel(e *Event) {
	if e == nil || e.index < 0 || e.kernel != k {
		return
	}
	heap.Remove(&k.events, e.index)
	k.recycle(e)
}

func (k *Kernel) recycle(e *Event) {
	e.fn = nil
	e.kernel = nil
	if len(k.free) < 1024 {
		k.free = append(k.free, e)
	}
}

// Step executes the earliest pending event. It returns false when the
// queue is empty or the next event lies beyond the horizon.
func (k *Kernel) Step() bool {
	if len(k.events) == 0 {
		return false
	}
	e := k.events[0]
	if e.at > k.horizon {
		return false
	}
	heap.Pop(&k.events)
	k.now = e.at
	fn := e.fn
	k.recycle(e)
	k.processed++
	fn()
	return true
}

// Run executes events until the queue drains or the horizon passes.
func (k *Kernel) Run() {
	for k.Step() {
	}
	if k.horizon < Infinity && k.now < k.horizon {
		k.now = k.horizon
	}
}

// RunUntil executes events with timestamps not exceeding t, then
// advances the clock to t. It is legal to call RunUntil repeatedly with
// increasing times.
func (k *Kernel) RunUntil(t Time) {
	if t < k.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) before now %v", t, k.now))
	}
	old := k.horizon
	k.horizon = t
	for k.Step() {
	}
	k.horizon = old
	k.now = t
}

// SetHorizon caps Run: events scheduled after t never execute. Use
// Infinity to remove the cap.
func (k *Kernel) SetHorizon(t Time) { k.horizon = t }

// eventHeap is a binary min-heap ordered by (time, insertion sequence).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	//lint:ignore floateq stored timestamps are compared verbatim for tie-breaking, never recomputed
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}
