// Package fuzz is the conservation-law scenario fuzzer: a seed-driven
// generator of whole simulation scenarios — topology, mobility, traffic
// mix, and a typed fault plan — run under the simulator's free test
// oracle (the metrics conservation laws plus bitwise seed determinism),
// with a shrinking reducer that minimizes any failing scenario to its
// smallest still-failing form and emits it as a replayable JSON
// fixture.
//
// The package tells two failure classes apart, and that distinction is
// the whole point: an *invalid scenario* (a plan the fault plane
// rejects, a placement that cannot connect, a tiled run asking for
// fading) is the generator's or the user's problem and is reported as a
// value; everything else that goes wrong — a conservation-law
// imbalance, a run that does not bitwise-reproduce under its own seed,
// a panic from inside the simulator — is a simulator bug. Every
// crash-instead-of-error path the fuzzer trips therefore has to be
// converted to a structured verdict first; that conversion is the
// repo's fault.Plan.Validate / node.TryNew / fault.TryInstall error
// plumbing.
//
// Determinism contract: a Scenario is a pure value; Generate(seed) is a
// pure function of the seed drawing only from rng.StreamFuzz children;
// Run derives every simulation stream from Scenario.Seed. The bounded
// fuzz driver (cmd/simfuzz -seeds) therefore produces the identical
// verdict list on every invocation.
package fuzz

import (
	"fmt"
	"math"
	"slices"

	"routeless/internal/fault"
	"routeless/internal/geo"
	"routeless/internal/sim"
)

// Protocol names a scenario's network-layer protocol.
const (
	ProtoCounter1  = "counter1"
	ProtoSSAF      = "ssaf"
	ProtoRouteless = "routeless"
	ProtoAODV      = "aodv"
	ProtoGradient  = "gradient"
)

// Placement names a scenario's topology style. Uniform placement is
// what the paper's figures use; the others reach the adversarial
// shapes a hand-picked evaluation never does — tight clusters bridged
// by single links, boundary-dense chains, near-regular lattices.
const (
	PlaceUniform = "uniform"
	PlaceCluster = "cluster"
	PlaceLine    = "line"
	PlaceGrid    = "grid"
)

// Flow is one CBR connection of the scenario's traffic mix.
type Flow struct {
	Src int `json:"src"`
	Dst int `json:"dst"`
}

// Mobility switches on random-waypoint motion for the first Movers
// nodes. Tiled scenarios must be static (tile re-binding is not
// supported), which Validate enforces.
type Mobility struct {
	Movers   int     `json:"movers"`
	MinSpeed float64 `json:"min_speed"` // m/s
	MaxSpeed float64 `json:"max_speed"` // m/s
}

// FaultSpec is the data form of one fault-plane spec: fully
// JSON-serializable, convertible to the typed fault.Plan entry. Fields
// irrelevant to a Kind are ignored by it; zero values mean the fault
// plane's defaults.
type FaultSpec struct {
	Kind string `json:"kind"` // "crash" | "drain" | "degrade" | "jam"

	OffFraction float64 `json:"off_fraction,omitempty"` // crash
	Cycle       float64 `json:"cycle,omitempty"`        // crash
	Sleep       bool    `json:"sleep,omitempty"`        // crash
	CapacityJ   float64 `json:"capacity_j,omitempty"`   // drain
	OffsetDB    float64 `json:"offset_db,omitempty"`    // degrade
	TxPowerDBm  float64 `json:"tx_power_dbm,omitempty"` // jam
	SpeedMps    float64 `json:"speed_mps,omitempty"`    // jam
	Period      float64 `json:"period,omitempty"`       // drain, degrade, jam
	Duration    float64 `json:"duration,omitempty"`     // degrade
	Burst       float64 `json:"burst,omitempty"`        // jam
}

// spec converts the data form to the typed fault-plane spec.
func (f FaultSpec) spec() (fault.Spec, error) {
	switch f.Kind {
	case "crash":
		return fault.CrashSpec{OffFraction: f.OffFraction, Cycle: f.Cycle, Sleep: f.Sleep}, nil
	case "drain":
		return fault.DrainSpec{CapacityJ: f.CapacityJ, Period: sim.Time(f.Period)}, nil
	case "degrade":
		return fault.DegradeSpec{OffsetDB: f.OffsetDB, Period: sim.Time(f.Period), Duration: sim.Time(f.Duration)}, nil
	case "jam":
		return fault.JamSpec{TxPowerDBm: f.TxPowerDBm, Period: sim.Time(f.Period), Burst: sim.Time(f.Burst), SpeedMps: f.SpeedMps}, nil
	default:
		return nil, fmt.Errorf("unknown fault kind %q", f.Kind)
	}
}

// Scenario fully describes one simulation run: everything Run needs is
// a field here, so a scenario serializes to a replayable JSON fixture
// and two runs of one scenario are bitwise identical.
type Scenario struct {
	// Seed drives every random stream of the simulation itself
	// (placement, traffic phases, MAC backoffs, fault processes).
	Seed int64 `json:"seed"`

	N         int     `json:"n"`
	Width     float64 `json:"width"`  // terrain width, m
	Height    float64 `json:"height"` // terrain height, m
	Range     float64 `json:"range"`  // calibrated tx range, m
	Placement string  `json:"placement"`
	// Connected regenerates uniform placements until the unit-disk
	// graph is connected; only valid with uniform placement (explicit
	// position styles are used as drawn — disconnection is part of the
	// adversarial space they exist to reach).
	Connected bool `json:"connected,omitempty"`
	// Fading adds Rayleigh small-scale fading. Incompatible with Tiles.
	Fading bool `json:"fading,omitempty"`
	// Tiles > 1 runs the scenario on the tiled PDES engine. Requires no
	// fading and no mobility (the constraint matrix the tiled engine
	// ships with).
	Tiles int `json:"tiles,omitempty"`

	Protocol string  `json:"protocol"`
	Lambda   float64 `json:"lambda,omitempty"` // backoff quantum, s; 0 = protocol default

	Flows    []Flow  `json:"flows"`
	Interval float64 `json:"interval"`  // CBR interval, s
	DataSize int     `json:"data_size"` // CBR payload, bytes
	Duration float64 `json:"duration"`  // traffic seconds; runs drain 5 s past it

	Mobility *Mobility   `json:"mobility,omitempty"`
	Faults   []FaultSpec `json:"faults,omitempty"`
}

// Rect returns the scenario terrain.
func (sc Scenario) Rect() geo.Rect { return geo.NewRect(sc.Width, sc.Height) }

// Plan converts the scenario's fault specs into a typed fault.Plan.
func (sc Scenario) Plan() (fault.Plan, error) {
	if len(sc.Faults) == 0 {
		return nil, nil
	}
	plan := make(fault.Plan, 0, len(sc.Faults))
	for i, f := range sc.Faults {
		s, err := f.spec()
		if err != nil {
			return nil, fmt.Errorf("fault %d: %w", i, err)
		}
		plan = append(plan, s)
	}
	return plan, nil
}

// protocols and placements are the closed vocabularies Validate checks
// against.
var protocols = []string{ProtoCounter1, ProtoSSAF, ProtoRouteless, ProtoAODV, ProtoGradient}
var placements = []string{PlaceUniform, PlaceCluster, PlaceLine, PlaceGrid}

func posFinite(name string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
		return fmt.Errorf("%s must be positive and finite, got %v", name, v)
	}
	return nil
}

// Validate checks the scenario against the simulator's constraint
// matrix and returns the first problem found. A scenario that
// validates cleanly must never crash the simulator: anything that
// still goes wrong downstream is a simulator bug by definition, which
// is exactly the discrimination the fuzzer's verdicts rest on.
func (sc Scenario) Validate() error {
	if sc.N < 2 {
		return fmt.Errorf("fuzz: N must be at least 2, got %d", sc.N)
	}
	if sc.N > 1_000_000 {
		return fmt.Errorf("fuzz: N=%d exceeds the sanity cap", sc.N)
	}
	if err := posFinite("fuzz: Width", sc.Width); err != nil {
		return err
	}
	if err := posFinite("fuzz: Height", sc.Height); err != nil {
		return err
	}
	if err := posFinite("fuzz: Range", sc.Range); err != nil {
		return err
	}
	if !slices.Contains(placements, sc.Placement) {
		return fmt.Errorf("fuzz: unknown placement %q", sc.Placement)
	}
	if sc.Connected && sc.Placement != PlaceUniform {
		return fmt.Errorf("fuzz: Connected requires uniform placement, got %q", sc.Placement)
	}
	if !slices.Contains(protocols, sc.Protocol) {
		return fmt.Errorf("fuzz: unknown protocol %q", sc.Protocol)
	}
	if math.IsNaN(sc.Lambda) || math.IsInf(sc.Lambda, 0) || sc.Lambda < 0 {
		return fmt.Errorf("fuzz: Lambda must be a finite non-negative number, got %v", sc.Lambda)
	}
	if err := posFinite("fuzz: Interval", sc.Interval); err != nil {
		return err
	}
	if err := posFinite("fuzz: Duration", sc.Duration); err != nil {
		return err
	}
	if sc.DataSize <= 0 {
		return fmt.Errorf("fuzz: DataSize must be positive, got %d", sc.DataSize)
	}
	seen := make(map[Flow]bool, len(sc.Flows))
	for i, f := range sc.Flows {
		if f.Src < 0 || f.Src >= sc.N || f.Dst < 0 || f.Dst >= sc.N {
			return fmt.Errorf("fuzz: flow %d (%d→%d) references nodes outside [0,%d)", i, f.Src, f.Dst, sc.N)
		}
		if f.Src == f.Dst {
			return fmt.Errorf("fuzz: flow %d is a self-loop at node %d", i, f.Src)
		}
		if seen[f] {
			return fmt.Errorf("fuzz: duplicate flow %d→%d", f.Src, f.Dst)
		}
		seen[f] = true
	}
	if m := sc.Mobility; m != nil {
		if m.Movers < 1 || m.Movers > sc.N {
			return fmt.Errorf("fuzz: Mobility.Movers must be in [1,%d], got %d", sc.N, m.Movers)
		}
		if math.IsNaN(m.MinSpeed) || math.IsInf(m.MinSpeed, 0) || m.MinSpeed < 0 ||
			math.IsNaN(m.MaxSpeed) || math.IsInf(m.MaxSpeed, 0) || m.MaxSpeed < m.MinSpeed {
			return fmt.Errorf("fuzz: mobility speeds must satisfy 0 <= min <= max and be finite, got [%v,%v]",
				m.MinSpeed, m.MaxSpeed)
		}
	}
	if sc.Tiles < 0 {
		return fmt.Errorf("fuzz: Tiles must be non-negative, got %d", sc.Tiles)
	}
	if sc.Tiles > 1 {
		// The tiled engine's constraint matrix: per-link fading draw
		// order is sequential, and mobility would re-bind tiles.
		if sc.Fading {
			return fmt.Errorf("fuzz: tiled scenarios cannot use fading (tiles=%d)", sc.Tiles)
		}
		if sc.Mobility != nil {
			return fmt.Errorf("fuzz: tiled scenarios cannot use mobility (tiles=%d)", sc.Tiles)
		}
	}
	plan, err := sc.Plan()
	if err != nil {
		return fmt.Errorf("fuzz: %w", err)
	}
	if err := plan.Validate(); err != nil {
		return err
	}
	return nil
}
