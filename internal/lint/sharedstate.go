package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"slices"
	"strings"
)

// The sharedstate analyzer is the go/no-go input for the ROADMAP's
// intra-run spatial decomposition (PDES): before the arena can be
// sharded into geo tiles, every piece of mutable state that event
// handlers can touch must be either shard-local or explicitly
// synchronized. This file does two things on top of the call graph:
//
//  1. the analyzer flags every write to a non-synchronized
//     package-level variable from code reachable from an event-handler
//     entry point (timer callbacks, scheduled events, delivery
//     handlers) — such a write is invisible cross-shard coupling;
//  2. BuildShardReport emits the full machine-readable inventory
//     (schema shardsafety/v1): entry points, every package-level
//     variable with its shard-safety class, and the shared singleton
//     types whose methods run inside handlers.
var SharedState = &Analyzer{
	Name: "sharedstate",
	Doc:  "no event-handler-reachable writes to package-level state; cross-shard mutation blocks the PDES tile decomposition",
	Run:  runSharedState,
}

// sharedSingletonTypes are the process-wide objects (one instance
// spanning all nodes) whose methods constitute cross-node state when
// they run inside event handlers. The PDES refactor must shard, merge,
// or lock each of these.
var sharedSingletonTypes = []string{
	"internal/sim.(Kernel)",
	"internal/sim.(EventPool)",
	"internal/phy.(Channel)",
	"internal/phy.(Pools)",
	"internal/propagation.(RangeCache)",
	"internal/propagation.(SharedRangeCache)",
	"internal/node.(Runtime)",
	"internal/metrics.(Registry)",
	"internal/metrics.(Journal)",
}

// tileStateFields curates the struct fields on shared simulator objects
// that the million-node SoA refactor made per-tile (or per-node-slot,
// which is the same thing once tileOf assigns every slot to exactly one
// tile): mutable state that event handlers write without locks, yet
// that never crosses a tile boundary inside a PDES window. The report
// classifies them explicitly so the shard-safety gate documents WHY the
// unguarded writes are sound instead of staying silent about them.
// Every entry is existence-checked against the type-checker in
// BuildShardReport; a field that no longer exists surfaces as a
// "stale" row and a Violations() line, so this list cannot rot.
var tileStateFields = []tileStateSpec{
	{
		Type: "internal/phy.(Channel)",
		Fields: []string{
			"radios", "states", "txPow", "energies",
			"links", "linkValid",
		},
		Rationale: "indexed by node id; tileOf assigns each slot to exactly one tile, and only the owning tile (or the control lane at a barrier) writes a slot",
	},
	{
		Type: "internal/phy.(tileCtx)",
		Fields: []string{
			"uid", "stats", "pendingStarts", "scratch", "outbox",
			"cached", "cachedHead",
		},
		Rationale: "one tileCtx per tile; only the owning tile's worker touches it inside a window, and cross-tile reads (outbox drain, counter roll-up) happen at barriers",
	},
}

// tileStateSpec is one curated entry: a sharedSingletonTypes-style type
// pattern plus the fields on it that are tile-confined.
type tileStateSpec struct {
	Type      string
	Fields    []string
	Rationale string
}

// globalInfo is the inventory record of one package-level variable.
type globalInfo struct {
	key  string // pkgpath.name
	name string
	typ  types.Type
	pos  token.Pos
	unit *Unit
}

// handlerReach memoizes the handler-reachable closure.
func (p *Program) handlerReach() map[FuncID]bool {
	if p.handlerReachMemo == nil {
		p.handlerReachMemo = p.HandlerReachable()
	}
	return p.handlerReachMemo
}

// globalInventory indexes every package-level variable declared in the
// program's units, keyed like globalRef.Key. First declaration wins
// (the in-package test unit re-checks primary files).
func (p *Program) globalInventory() map[string]*globalInfo {
	if p.globalInvMemo != nil {
		return p.globalInvMemo
	}
	p.globalInvMemo = map[string]*globalInfo{}
	for _, u := range p.Units {
		if u.Info == nil {
			continue
		}
		for _, f := range u.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						obj := u.Info.Defs[name]
						if obj == nil {
							continue
						}
						key := globalVarKey(obj)
						if key == "" {
							continue
						}
						if _, dup := p.globalInvMemo[key]; dup {
							continue
						}
						p.globalInvMemo[key] = &globalInfo{
							key:  key,
							name: name.Name,
							typ:  obj.Type(),
							pos:  name.Pos(),
							unit: u,
						}
					}
				}
			}
		}
	}
	return p.globalInvMemo
}

// isSyncGuarded reports whether t carries its own synchronization: a
// sync or sync/atomic type. Writes through these are shard-visible but
// race-free, so they classify as "atomic" rather than "mutable".
func isSyncGuarded(t types.Type) bool {
	switch tt := t.(type) {
	case *types.Pointer:
		return isSyncGuarded(tt.Elem())
	case *types.Named:
		if pkg := tt.Obj().Pkg(); pkg != nil {
			path := pkg.Path()
			return path == "sync" || path == "sync/atomic"
		}
	}
	return false
}

func runSharedState(p *Pass) {
	if p.Prog == nil || !(p.InInternal() || p.InCmd()) {
		return
	}
	prog := p.Prog
	reach := prog.handlerReach()
	inv := prog.globalInventory()
	for _, fid := range prog.IDs {
		n := prog.Funcs[fid]
		if n.Unit != p.unit || !reach[fid] || p.IsTestFile(n.Pos) {
			continue
		}
		for _, g := range n.Globals {
			if !g.Write {
				continue
			}
			if info, ok := inv[g.Key]; ok && isSyncGuarded(info.typ) {
				continue
			}
			via := ""
			if path := prog.EntryPathTo(fid); len(path) > 0 {
				via = " (reached via " + strings.Join(path, " -> ") + ")"
			}
			p.Reportf(g.Pos, "event-handler code writes package-level var %s%s: cross-shard mutable state blocks the PDES tile decomposition; move it into per-run or per-node state, or guard it with a sync/atomic type",
				g.Key, via)
		}
	}
}

// ShardReport is the machine-readable shard-safety inventory emitted by
// cmd/simlint -json. Schema shardsafety/v1.
type ShardReport struct {
	Schema      string           `json:"schema"`
	EntryPoints []ShardEntry     `json:"entryPoints"`
	Globals     []ShardGlobal    `json:"globals"`
	Singletons  []ShardSingleton `json:"singletons"`
	TileState   []ShardTileField `json:"tileState,omitempty"`
}

// Violations returns one line per global that is classified mutable
// AND written from event-handler context — the combination that makes
// a tile decomposition unsound. Unlike the sharedstate diagnostics,
// this reads the raw inventory, so //lint:ignore suppressions cannot
// hide a hazard from callers that treat the report as a hard gate
// (cmd/simlint -audit).
func (r *ShardReport) Violations() []string {
	var out []string
	for _, g := range r.Globals {
		if g.Class == "mutable" && g.HandlerWrites {
			out = append(out, fmt.Sprintf("%s: %s (%s) is mutable and handler-written", g.Pos, g.Var, g.Type))
		}
	}
	for _, f := range r.TileState {
		if f.Class == "stale" {
			out = append(out, fmt.Sprintf("tileStateFields entry %s.%s no longer matches the code; update the curated list", f.Type, f.Field))
		}
	}
	return out
}

// ShardEntry is one event-handler root of the call graph.
type ShardEntry struct {
	Func string `json:"func"`
	Kind string `json:"kind"` // schedule | timer | dispatch
	Pos  string `json:"pos"`
}

// ShardGlobal classifies one package-level variable.
//
// Class is "readonly" (no function body writes it — initialized at
// declaration or never), "atomic" (a sync / sync/atomic type: shared
// but race-free), or "mutable" (written by at least one function; a
// sharding hazard when handler-reachable).
type ShardGlobal struct {
	Var           string   `json:"var"`
	Type          string   `json:"type"`
	Pos           string   `json:"pos"`
	Class         string   `json:"class"`
	Writers       []string `json:"writers,omitempty"`
	HandlerWrites bool     `json:"handlerWrites"`
	HandlerReads  bool     `json:"handlerReads"`
	Via           []string `json:"via,omitempty"` // example entry chain to an accessor
}

// ShardSingleton is one shared simulator object whose methods run
// inside event handlers.
type ShardSingleton struct {
	Type    string   `json:"type"`
	Methods []string `json:"methods"`
}

// ShardTileField classifies one struct field of a shared simulator
// object as tile-confined mutable state. Class is "per-tile" (the field
// exists and the curated rationale applies) or "stale" (the curated
// entry names a field the type no longer has — a hard Violations()
// failure so the list tracks the code).
type ShardTileField struct {
	Type      string `json:"type"`
	Field     string `json:"field"`
	FieldType string `json:"fieldType,omitempty"`
	Class     string `json:"class"`
	Rationale string `json:"rationale,omitempty"`
	Pos       string `json:"pos,omitempty"`
}

// BuildShardReport computes the full inventory over prog.
func BuildShardReport(prog *Program) *ShardReport {
	rep := &ShardReport{Schema: "shardsafety/v1"}
	for _, ep := range prog.EntryPoints {
		rep.EntryPoints = append(rep.EntryPoints, ShardEntry{
			Func: string(ep.Fn),
			Kind: ep.Kind,
			Pos:  prog.Fset.Position(ep.Pos).String(),
		})
	}

	reach := prog.handlerReach()
	inv := prog.globalInventory()

	// Handler-side accessors per global: who reads, who writes.
	readers := map[string][]FuncID{}
	writersIn := map[string][]FuncID{}
	for _, fid := range prog.IDs {
		if !reach[fid] {
			continue
		}
		n := prog.Funcs[fid]
		for _, g := range n.Globals {
			if g.Write {
				writersIn[g.Key] = append(writersIn[g.Key], fid)
			} else {
				readers[g.Key] = append(readers[g.Key], fid)
			}
		}
	}

	keys := make([]string, 0, len(inv))
	for k := range inv {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	for _, key := range keys {
		info := inv[key]
		writers := slices.Clone(prog.globalWriters[key])
		slices.Sort(writers)
		writers = slices.Compact(writers)
		class := "readonly"
		switch {
		case isSyncGuarded(info.typ):
			class = "atomic"
		case len(writers) > 0:
			class = "mutable"
		}
		g := ShardGlobal{
			Var:           key,
			Type:          typeString(info.typ),
			Pos:           prog.Fset.Position(info.pos).String(),
			Class:         class,
			HandlerWrites: len(writersIn[key]) > 0,
			HandlerReads:  len(readers[key]) > 0,
		}
		for _, w := range writers {
			g.Writers = append(g.Writers, shortID(w))
		}
		// One example chain from an entry point to an accessor, writer
		// preferred: makes every inventory row self-explanatory.
		accessors := writersIn[key]
		if len(accessors) == 0 {
			accessors = readers[key]
		}
		if len(accessors) > 0 {
			g.Via = prog.EntryPathTo(accessors[0])
		}
		rep.Globals = append(rep.Globals, g)
	}

	// Shared singleton types touched from handler context.
	methods := map[string][]string{}
	for _, fid := range prog.IDs {
		if !reach[fid] {
			continue
		}
		s := string(fid)
		close := strings.LastIndex(s, ").")
		if close < 0 {
			continue
		}
		typ, meth := s[:close+1], s[close+2:]
		for _, pat := range sharedSingletonTypes {
			if idHasSuffix(FuncID(typ), pat) {
				methods[typ] = append(methods[typ], meth)
				break
			}
		}
	}
	types_ := make([]string, 0, len(methods))
	for t := range methods {
		types_ = append(types_, t)
	}
	slices.Sort(types_)
	for _, t := range types_ {
		ms := methods[t]
		slices.Sort(ms)
		rep.Singletons = append(rep.Singletons, ShardSingleton{Type: t, Methods: slices.Compact(ms)})
	}

	rep.TileState = buildTileState(prog)
	return rep
}

// lookupStruct resolves a sharedSingletonTypes-style pattern like
// "internal/phy.(Channel)" to the struct type it names, searching the
// program's units. Returns nil when the package is not part of this run
// (a partial invocation must not fail entries it cannot see).
func (p *Program) lookupStruct(pattern string) *types.Struct {
	open := strings.LastIndex(pattern, ".(")
	if open < 0 || !strings.HasSuffix(pattern, ")") {
		return nil
	}
	pkgSuffix := pattern[:open]
	typeName := pattern[open+2 : len(pattern)-1]
	for _, u := range p.Units {
		if u.Pkg == nil || !idHasSuffix(FuncID(u.Pkg.Path()), pkgSuffix) {
			continue
		}
		obj := u.Pkg.Scope().Lookup(typeName)
		if obj == nil {
			continue
		}
		st, _ := obj.Type().Underlying().(*types.Struct)
		return st
	}
	return nil
}

// buildTileState materializes the curated tileStateFields list against
// the type-checked program: each entry whose field exists is emitted as
// "per-tile" with its resolved field type and position; a field the
// struct no longer has is emitted as "stale" (which Violations turns
// into a gate failure). Types whose package is outside this run are
// skipped entirely.
func buildTileState(prog *Program) []ShardTileField {
	var out []ShardTileField
	for _, spec := range tileStateFields {
		st := prog.lookupStruct(spec.Type)
		if st == nil {
			continue
		}
		for _, name := range spec.Fields {
			row := ShardTileField{Type: spec.Type, Field: name, Class: "stale"}
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				if f.Name() != name {
					continue
				}
				row.Class = "per-tile"
				row.FieldType = typeString(f.Type())
				row.Rationale = spec.Rationale
				row.Pos = prog.Fset.Position(f.Pos()).String()
				break
			}
			out = append(out, row)
		}
	}
	return out
}
