package flood

import (
	"testing"

	"routeless/internal/core"
	"routeless/internal/geo"
	"routeless/internal/node"
	"routeless/internal/packet"
	"routeless/internal/sim"
)

// build constructs a network with the given positions running one
// flooding config on every node.
func build(t *testing.T, cfg Config, seed int64, positions ...geo.Point) (*node.Network, []*Flooding) {
	t.Helper()
	nw := node.New(node.Config{Positions: positions, Seed: seed})
	floods := make([]*Flooding, len(positions))
	i := 0
	nw.Install(func(n *node.Node) node.Protocol {
		f := New(&cfg)
		floods[i] = f
		i++
		return f
	})
	return nw, floods
}

func chain(n int, spacing float64) []geo.Point {
	out := make([]geo.Point, n)
	for i := range out {
		out[i] = geo.Point{X: float64(i) * spacing, Y: 0}
	}
	return out
}

func TestCounter1DeliversAlongChain(t *testing.T) {
	nw, floods := build(t, Counter1Config(5e-3), 1, chain(5, 200)...)
	var got []*packet.Packet
	nw.Nodes[4].OnAppReceive = func(p *packet.Packet) { got = append(got, p.Clone()) }
	floods[0].Send(4, packet.SizeData)
	nw.Run(2)
	if len(got) != 1 {
		t.Fatalf("destination delivered %d, want 1", len(got))
	}
	if got[0].HopCount != 4 {
		t.Fatalf("hop count %d, want 4 on a 5-node chain", got[0].HopCount)
	}
	if got[0].Origin != 0 || got[0].Target != 4 {
		t.Fatal("endpoint fields corrupted in flight")
	}
}

func TestCounter1EachNodeForwardsOnce(t *testing.T) {
	nw, floods := build(t, Counter1Config(5e-3), 2, chain(5, 200)...)
	floods[0].Send(4, packet.SizeData)
	nw.Run(2)
	for i, f := range floods[1:] {
		if f.Stats().Forwards != 1 {
			t.Fatalf("node %d forwarded %d times, want 1", i+1, f.Stats().Forwards)
		}
	}
	if floods[0].Stats().Forwards != 0 {
		t.Fatal("source re-forwarded its own packet")
	}
	// Interior nodes hear duplicates from both sides.
	if floods[1].Stats().Duplicates == 0 {
		t.Fatal("interior node saw no duplicates — dedup untested")
	}
}

func TestFloodReachesEveryNodeInField(t *testing.T) {
	nw := node.New(node.Config{N: 60, Rect: geo.NewRect(1000, 1000), Seed: 3, EnsureConnected: true})
	floods := map[packet.NodeID]*Flooding{}
	fcfg := Counter1Config(5e-3)
	nw.Install(func(n *node.Node) node.Protocol {
		f := New(&fcfg)
		floods[n.ID] = f
		return f
	})
	floods[0].Send(packet.None, packet.SizeData) // pure dissemination
	nw.Run(5)
	missed := 0
	for id, f := range floods {
		if id == 0 {
			continue
		}
		st := f.Stats()
		if st.Forwards == 0 && st.Duplicates == 0 {
			missed++
		}
	}
	// Collisions can starve a couple of leaf nodes, but a connected
	// 60-node field must be almost fully covered.
	if missed > 3 {
		t.Fatalf("%d/59 nodes never saw the flood", missed)
	}
}

func TestSSAFFarNodeForwardsFirst(t *testing.T) {
	// Source at 0; near relay at 100 m; far relay at 240 m. SSAF must
	// have the far (weak-signal) relay rebroadcast before the near one.
	cfg := SSAFConfig(10e-3, -55.1, -33.2) // span: RSSI at 250 m .. 25 m
	positions := []geo.Point{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 240, Y: 0}}
	nw, floods := build(t, cfg, 4, positions...)
	var order []packet.NodeID
	for i, f := range floods {
		id := packet.NodeID(i)
		f.OnForward = func(*packet.Packet) { order = append(order, id) }
	}
	floods[0].Send(packet.None, packet.SizeData)
	nw.Run(2)
	if len(order) < 2 {
		t.Fatalf("expected both relays to forward, got %v", order)
	}
	if order[0] != 2 {
		t.Fatalf("forward order %v, want far relay (n2) first", order)
	}
}

func TestSSAFBeatsCounter1HopsOnCross(t *testing.T) {
	// A source with relays at mixed distances and a destination two
	// hops away: SSAF should find the 2-hop route while counter-1 will
	// sometimes route through the near relay chain (3 hops). Compare on
	// many seeds: SSAF's mean delivered hop count must not exceed
	// counter-1's.
	positions := []geo.Point{
		{X: 0, Y: 0},     // source
		{X: 80, Y: 20},   // near relay
		{X: 160, Y: -20}, // mid relay
		{X: 240, Y: 0},   // far relay
		{X: 480, Y: 0},   // destination (reached only via far relay)
	}
	run := func(cfg Config, seed int64) (hops int, ok bool) {
		nw, floods := build(t, cfg, seed, positions...)
		var got *packet.Packet
		nw.Nodes[4].OnAppReceive = func(p *packet.Packet) {
			if got == nil {
				got = p.Clone()
			}
		}
		floods[0].Send(4, packet.SizeData)
		nw.Run(2)
		if got == nil {
			return 0, false
		}
		return got.HopCount, true
	}
	ssafCfg := SSAFConfig(10e-3, -55.1, -33.2)
	c1Cfg := Counter1Config(10e-3)
	var ssafSum, c1Sum, n int
	for seed := int64(0); seed < 20; seed++ {
		hs, okS := run(ssafCfg, seed)
		hc, okC := run(c1Cfg, seed)
		if okS && okC {
			ssafSum += hs
			c1Sum += hc
			n++
		}
	}
	if n < 15 {
		t.Fatalf("too few successful runs: %d", n)
	}
	if ssafSum > c1Sum {
		t.Fatalf("SSAF mean hops (%d/%d) worse than counter-1 (%d/%d)", ssafSum, n, c1Sum, n)
	}
}

func TestCancelVariantSuppressesForwards(t *testing.T) {
	// A dense clique: with cancellation, overheard duplicates kill
	// pending rebroadcasts, so total forwards shrink.
	positions := []geo.Point{
		{X: 0, Y: 0}, {X: 50, Y: 0}, {X: 0, Y: 50}, {X: 50, Y: 50}, {X: 25, Y: 25}, {X: 100, Y: 25},
	}
	total := func(cancel bool) uint64 {
		cfg := SSAFConfig(50e-3, -55.1, -33.2)
		cfg.Cancel = cancel
		nw, floods := build(t, cfg, 5, positions...)
		floods[0].Send(packet.None, packet.SizeData)
		nw.Run(2)
		var sum uint64
		for _, f := range floods {
			sum += f.Stats().Forwards
		}
		return sum
	}
	plain, cancelled := total(false), total(true)
	if cancelled >= plain {
		t.Fatalf("cancellation did not reduce forwards: %d vs %d", cancelled, plain)
	}
	// And the cancel counter must actually fire.
	cfg := SSAFConfig(50e-3, -55.1, -33.2)
	cfg.Cancel = true
	nw, floods := build(t, cfg, 5, positions...)
	floods[0].Send(packet.None, packet.SizeData)
	nw.Run(2)
	var cancels uint64
	for _, f := range floods {
		cancels += f.Stats().Cancelled
	}
	if cancels == 0 {
		t.Fatal("Cancelled counter never incremented")
	}
}

func TestBlindFloodingTTLBounded(t *testing.T) {
	cfg := Config{Blind: true, TTL: 4}
	nw, floods := build(t, cfg, 6, chain(3, 150)...)
	floods[0].Send(packet.None, packet.SizeData)
	nw.Run(5)
	var forwards uint64
	for _, f := range floods {
		forwards += f.Stats().Forwards
	}
	if forwards == 0 {
		t.Fatal("blind flooding never forwarded")
	}
	var ttlDrops uint64
	for _, f := range floods {
		ttlDrops += f.Stats().TTLDrops
	}
	if ttlDrops == 0 {
		t.Fatal("TTL never exhausted — unbounded blind flood?")
	}
}

func TestBlindForwardsMoreThanCounter1(t *testing.T) {
	positions := chain(4, 150)
	count := func(cfg Config) uint64 {
		nw, floods := build(t, cfg, 7, positions...)
		floods[0].Send(packet.None, packet.SizeData)
		nw.Run(5)
		var sum uint64
		for _, f := range floods {
			sum += f.Stats().Forwards
		}
		return sum
	}
	blind := count(Config{Blind: true, TTL: 6})
	c1 := count(Counter1Config(5e-3))
	if blind <= c1 {
		t.Fatalf("blind (%d) should out-transmit counter-1 (%d)", blind, c1)
	}
}

func TestTTLDropsAtHorizon(t *testing.T) {
	cfg := Counter1Config(5e-3)
	cfg.TTL = 2 // source + one relay hop only
	nw, floods := build(t, cfg, 8, chain(4, 200)...)
	delivered := false
	nw.Nodes[3].OnAppReceive = func(*packet.Packet) { delivered = true }
	floods[0].Send(3, packet.SizeData)
	nw.Run(2)
	if delivered {
		t.Fatal("packet crossed 3 hops with TTL 2")
	}
	if floods[1].Stats().Forwards != 1 {
		t.Fatalf("first relay forwards = %d, want 1", floods[1].Stats().Forwards)
	}
	if floods[2].Stats().TTLDrops == 0 {
		t.Fatal("second relay should have dropped on TTL")
	}
}

func TestDuplicateOriginSequencesIndependent(t *testing.T) {
	// Two sources with the same sequence numbers must not collide in
	// the dedup space (keys include the origin).
	nw, floods := build(t, Counter1Config(5e-3), 9, chain(3, 150)...)
	seen := map[packet.NodeID]int{}
	nw.Nodes[1].OnAppReceive = func(p *packet.Packet) { seen[p.Origin]++ }
	floods[0].Send(1, packet.SizeData)
	floods[2].Send(1, packet.SizeData)
	nw.Run(2)
	if seen[0] != 1 || seen[2] != 1 {
		t.Fatalf("deliveries by origin = %v, want one each", seen)
	}
}

func TestSendToNoneNeverDelivers(t *testing.T) {
	nw, floods := build(t, Counter1Config(5e-3), 10, chain(3, 150)...)
	for _, n := range nw.Nodes {
		n.OnAppReceive = func(*packet.Packet) { t.Fatal("dissemination packet delivered as app data") }
	}
	floods[0].Send(packet.None, packet.SizeData)
	nw.Run(2)
}

func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for missing policy")
		}
	}()
	New(&Config{})
}

func TestBackoffPriorityReachesMAC(t *testing.T) {
	// The forwarded packet's MAC priority equals its elected backoff;
	// verify indirectly: a forward is enqueued and transmitted.
	nw, floods := build(t, SSAFConfig(5e-3, -55.1, -33.2), 11, chain(3, 200)...)
	floods[0].Send(2, packet.SizeData)
	nw.Run(2)
	if nw.Nodes[1].MAC.Stats().TxFrames < 1 {
		t.Fatal("relay never transmitted")
	}
	_ = sim.Time(0)
}

func TestLocationBasedFlooding(t *testing.T) {
	// The idealized scheme SSAF approximates: with true positions the
	// far relay must deterministically fire first.
	positions := []geo.Point{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 240, Y: 0}}
	nw := node.New(node.Config{Positions: positions, Seed: 31})
	locator := func(id packet.NodeID) geo.Point { return positions[id] }
	cfg := LocationConfig(10e-3, 250, locator)
	floods := make([]*Flooding, 0, 3)
	var order []packet.NodeID
	nw.Install(func(n *node.Node) node.Protocol {
		f := New(&cfg)
		id := n.ID
		f.OnForward = func(*packet.Packet) { order = append(order, id) }
		floods = append(floods, f)
		return f
	})
	floods[0].Send(packet.None, 64)
	nw.Run(2)
	if len(order) < 2 || order[0] != 2 {
		t.Fatalf("forward order %v, want far relay first", order)
	}
}

func TestLocationPolicyAbstainsWithoutLocator(t *testing.T) {
	// LocationAware without a Locator yields DistanceToSender == -1:
	// nobody forwards.
	cfg := Config{Policy: core.LocationAware{Lambda: 10e-3, Range: 250, JitterFrac: 0.1}}
	nw, floods := build(t, cfg, 32, chain(3, 150)...)
	floods[0].Send(packet.None, 64)
	nw.Run(2)
	for i, f := range floods {
		if f.Stats().Forwards != 0 {
			t.Fatalf("node %d forwarded without position information", i)
		}
	}
}
