// Package routing implements the paper's §4 protocols: Routeless
// Routing (the contribution — next-hop election by hop-count gradient,
// no stored routes) and an AODV baseline (explicit routes, hello-based
// link maintenance, route error recovery), plus a simplified Gradient
// Routing for the §4.4 comparison.
package routing

import (
	"routeless/internal/packet"
	"routeless/internal/sim"
)

// tableEntry is one row of the active node table: "(1) the identity of
// a target node … and (2) the number of hops from this target node to
// the node owning the table" (§4.1).
type tableEntry struct {
	hops    int
	seq     uint32   // sequence number of the freshest packet observed
	updated sim.Time // last time the stored hop count was set or confirmed
}

// ActiveTable is Routeless Routing's only data structure. Entries are
// refreshed passively from the actual-hop-count field of every
// overheard packet ("data packets and path reply packets always carry
// the most up-to-date information about the distance", §4.2).
//
// Update semantics guard the gradient in both directions:
//   - shorter observations win immediately (within or across sequence
//     numbers) — the first, shortest copy of a flood;
//   - longer observations from newer sequence numbers are accepted only
//     after the stored shorter distance has gone unconfirmed for
//     InflateAfter seconds. Without this damping, every copy that took
//     a redundant longer path would overwrite a still-valid shorter
//     entry (it carries a newer sequence number), the election's
//     lowest-delay band would widen each round, and the gradient would
//     dissolve. With it, entries still grow when the short path truly
//     dies (node failures), just on the damping timescale.
type ActiveTable struct {
	entries map[packet.NodeID]*tableEntry

	// InflateAfter is the damping window in seconds; default 5.
	InflateAfter float64
}

// NewActiveTable returns an empty table with the default damping.
func NewActiveTable() *ActiveTable {
	return &ActiveTable{
		entries:      make(map[packet.NodeID]*tableEntry),
		InflateAfter: 5,
	}
}

// Observe folds in one overheard packet from origin with the given
// actual hop count and origin sequence number at time now.
func (t *ActiveTable) Observe(origin packet.NodeID, hops int, seq uint32, now sim.Time) {
	if hops <= 0 {
		return
	}
	e, ok := t.entries[origin]
	if !ok {
		t.entries[origin] = &tableEntry{hops: hops, seq: seq, updated: now}
		return
	}
	if seq < e.seq {
		return // stale packet, no information
	}
	switch {
	case hops <= e.hops:
		// Shorter or confirming: accept and refresh.
		e.hops, e.seq, e.updated = hops, seq, now
	case seq > e.seq && float64(now-e.updated) > t.InflateAfter:
		// Longer, but the shorter distance has not been confirmed in a
		// while: the short path is likely gone.
		e.hops, e.seq, e.updated = hops, seq, now
	case seq > e.seq:
		// Longer and the short distance is still fresh: keep the hops,
		// advance the sequence horizon.
		e.seq = seq
	}
}

// Hops returns the table distance to target, or -1 when unknown — the
// h_table input of the backoff equation.
func (t *ActiveTable) Hops(target packet.NodeID) int {
	if e, ok := t.entries[target]; ok {
		return e.hops
	}
	return -1
}

// Age returns seconds since the entry for target was refreshed, or -1
// when there is no entry.
func (t *ActiveTable) Age(target packet.NodeID, now sim.Time) float64 {
	if e, ok := t.entries[target]; ok {
		return float64(now - e.updated)
	}
	return -1
}

// Len returns the number of known targets.
func (t *ActiveTable) Len() int { return len(t.entries) }

// Forget removes the entry for target (used by tests and by the
// staleness sweep).
func (t *ActiveTable) Forget(target packet.NodeID) { delete(t.entries, target) }

// Sweep drops entries older than maxAge. Routeless Routing does not
// need this for correctness — stale gradients self-correct — but it
// bounds memory in long simulations.
func (t *ActiveTable) Sweep(now sim.Time, maxAge float64) int {
	removed := 0
	for id, e := range t.entries {
		if float64(now-e.updated) > maxAge {
			delete(t.entries, id)
			removed++
		}
	}
	return removed
}
