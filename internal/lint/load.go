package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"slices"
	"strings"
)

// Loader parses and type-checks packages of one module without any
// dependency on go/packages. Imports within the module are resolved by
// recursively type-checking the corresponding directory; standard
// library imports are type-checked from $GOROOT source via the source
// importer, so the loader works offline and without compiled export
// data.
//
// Type checking is best-effort: a dependency that fails to load
// resolves to an empty placeholder package and analysis continues with
// partial type information. Determinism rules are syntax-heavy, so
// partial info degrades recall, never correctness of what is reported.
type Loader struct {
	Fset    *token.FileSet
	ModRoot string // absolute path of the module root directory
	ModPath string // module path from go.mod, e.g. "routeless"

	stdlib types.Importer
	cache  map[string]*types.Package // import path → non-test package
}

// NewLoader builds a loader for the module rooted at modRoot. modPath
// may be empty, in which case it is read from go.mod.
func NewLoader(modRoot, modPath string) (*Loader, error) {
	abs, err := filepath.Abs(modRoot)
	if err != nil {
		return nil, err
	}
	if modPath == "" {
		modPath, err = readModulePath(filepath.Join(abs, "go.mod"))
		if err != nil {
			return nil, err
		}
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		ModRoot: abs,
		ModPath: modPath,
		stdlib:  importer.ForCompiler(fset, "source", nil),
		cache:   map[string]*types.Package{},
	}, nil
}

func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Import implements types.Importer: module-internal paths load from the
// module tree, everything else from the standard library. Failures
// yield an empty placeholder so the caller's type check can proceed.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if dir, ok := l.moduleDir(path); ok {
		pkg := l.checkDir(path, dir)
		l.cache[path] = pkg
		return pkg, nil
	}
	pkg, err := l.stdlib.Import(path)
	if err != nil || pkg == nil {
		pkg = placeholder(path)
	}
	l.cache[path] = pkg
	return pkg, nil
}

// moduleDir maps a module-internal import path to its directory.
func (l *Loader) moduleDir(path string) (string, bool) {
	if path == l.ModPath {
		return l.ModRoot, true
	}
	if rest, ok := strings.CutPrefix(path, l.ModPath+"/"); ok {
		return filepath.Join(l.ModRoot, filepath.FromSlash(rest)), true
	}
	return "", false
}

func placeholder(path string) *types.Package {
	pkg := types.NewPackage(path, pathBase(path))
	pkg.MarkComplete()
	return pkg
}

func pathBase(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// checkDir type-checks the non-test files of dir as the package at
// import path. Errors degrade to a placeholder.
func (l *Loader) checkDir(path, dir string) *types.Package {
	files, err := l.parseDir(dir, func(name string) bool {
		return !strings.HasSuffix(name, "_test.go")
	})
	if err != nil || len(files) == 0 {
		return placeholder(path)
	}
	pkg := l.typeCheck(path, files, nil)
	if pkg == nil {
		return placeholder(path)
	}
	return pkg
}

// parseDir parses every .go file in dir accepted by keep, sorted by
// name for deterministic diagnostics.
func (l *Loader) parseDir(dir string, keep func(name string) bool) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if keep != nil && !keep(name) {
			continue
		}
		names = append(names, name)
	}
	slices.Sort(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			continue // a syntactically broken file is gofmt/go build's problem
		}
		files = append(files, f)
	}
	return files, nil
}

// typeCheck runs go/types over files with l as the importer, tolerating
// errors. The returned package is non-nil even when errors occurred;
// info, when non-nil, receives use/def/type facts.
func (l *Loader) typeCheck(path string, files []*ast.File, info *types.Info) *types.Package {
	conf := types.Config{
		Importer: l,
		Error:    func(error) {}, // best-effort: keep going, keep partial info
	}
	if info == nil {
		info = newInfo()
	}
	pkg, _ := conf.Check(path, l.Fset, files, info)
	return pkg
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// LoadDir loads every package unit in one directory: the primary
// package together with its in-package _test.go files, and, when
// present, the external _test package. Directories with no Go files
// yield no units.
func (l *Loader) LoadDir(dir string) ([]*Unit, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.ModRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("lint: %s is outside module root %s", dir, l.ModRoot)
	}
	path := l.ModPath
	if rel != "." {
		path = l.ModPath + "/" + filepath.ToSlash(rel)
	}

	all, err := l.parseDir(abs, nil)
	if err != nil {
		return nil, err
	}
	if len(all) == 0 {
		return nil, nil
	}

	// Split by package clause: primary (+ in-package tests) vs the
	// external foo_test package.
	var primary, xtest []*ast.File
	for _, f := range all {
		if strings.HasSuffix(f.Name.Name, "_test") {
			xtest = append(xtest, f)
		} else {
			primary = append(primary, f)
		}
	}

	var units []*Unit
	if len(primary) > 0 {
		info := newInfo()
		pkg := l.typeCheck(path, primary, info)
		units = append(units, &Unit{Fset: l.Fset, Files: primary, Pkg: pkg, Info: info, Path: path})
	}
	if len(xtest) > 0 {
		info := newInfo()
		pkg := l.typeCheck(path+"_test", xtest, info)
		units = append(units, &Unit{Fset: l.Fset, Files: xtest, Pkg: pkg, Info: info, Path: path})
	}
	return units, nil
}

// Walk returns every directory under root (inclusive) that contains Go
// files, skipping hidden directories, testdata, and vendor trees.
func Walk(root string) ([]string, error) {
	var dirs []string
	err := filepath.Walk(root, func(p string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if fi.IsDir() {
			name := fi.Name()
			if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(p, ".go") {
			dir := filepath.Dir(p)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	slices.Sort(dirs)
	return dirs, nil
}
