// Package snapshot is deterministic checkpoint/restore for scenario
// runs: Save captures a paused run as a small self-contained binary
// document, Load reconstructs a run in the identical state, and the
// contract between them is bitwise — "run 2T" and "run T, snapshot,
// restore, run T" produce identical journals and metric snapshots.
//
// The design is replay-verified rather than heap-serialized. A running
// simulation's state is dominated by closures: the event heap holds
// scheduled functions, timers capture protocol structs, the MAC's
// contention machine is woven through its kernel events. None of that
// can be written to disk directly. What CAN be written is the thing the
// whole simulator is already contractually bound to: the scenario
// document plus the seed determine every bit of state at every time.
// Save therefore records the document, the pause time T, and a set of
// state digests; Load rebuilds the run from the document, silently
// replays [0, T), and then verifies every digest before handing the run
// back. Replay cost is bounded by T — acceptable for the checkpoint
// sizes this repo's experiments use — and verification turns "restore
// looked plausible" into "restore is provably the same state": any
// drift between the saving and loading binary (or a nondeterminism bug)
// is caught at Load time with the diverging component named, instead of
// surfacing later as a silently wrong figure.
//
// Format (little-endian): an 8-byte magic "RLSNAP1\n", a uint32
// version, a uint32 scenario-JSON length and the JSON bytes, the pause
// time as float64 bits, the six digest words (see Digest), and a
// CRC-32 (IEEE) of everything before it.
package snapshot

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"routeless/internal/scenario"
	"routeless/internal/sim"
)

// Magic opens every snapshot document.
const Magic = "RLSNAP1\n"

// Version is the current snapshot format version.
const Version = 1

// maxScenarioLen bounds the embedded document so a corrupt length field
// cannot drive a huge allocation before the CRC check runs.
const maxScenarioLen = 16 << 20

// Typed error classes along the restore path. Handlers and tests match
// with errors.Is.
var (
	// ErrTruncated marks a document that ends before the format says it
	// should.
	ErrTruncated = errors.New("snapshot: truncated document")
	// ErrCorrupt marks a document whose framing or checksum is wrong.
	ErrCorrupt = errors.New("snapshot: corrupt document")
	// ErrVersion marks a document written by an incompatible format
	// version.
	ErrVersion = errors.New("snapshot: unsupported version")
	// ErrStateMismatch marks a restore whose replayed state does not
	// reproduce the saved digests — the saving and loading simulators
	// disagree, bit for bit, about what the scenario's state at T is.
	ErrStateMismatch = errors.New("snapshot: restored state diverges from checkpoint")
)

// Digest is the snapshot's state fingerprint: six independent 64-bit
// words, each covering one component of simulator state, so a restore
// mismatch names what diverged rather than reporting one opaque bit.
type Digest struct {
	// Now covers every kernel clock (global and per-tile).
	Now uint64
	// Events covers every kernel's event heap: sequence counter,
	// processed count, and the sorted (time, seq) key of each pending
	// event.
	Events uint64
	// Pools covers the event pools' live and peak watermarks. Free-list
	// length is deliberately excluded: it records allocation history
	// (how many events a warm sweep arena had pre-allocated), which the
	// pooling contract already exempts from bitwise equivalence.
	Pools uint64
	// RNG covers every random stream's label path and draw count.
	RNG uint64
	// Metrics covers the canonical JSON of the full metrics snapshot.
	Metrics uint64
	// State covers the per-node simulation state proper: channel,
	// radios, MACs, protocols, traffic sources, movers, and the fault
	// plane's phase machines.
	State uint64
}

// Doc is a decoded snapshot document.
type Doc struct {
	// Scenario is the embedded run description.
	Scenario scenario.Scenario
	// T is the simulation time the run was paused at.
	T sim.Time
	// Digest fingerprints the saved state at T.
	Digest Digest
}

// Save writes a snapshot of run, which must be paused (not finished).
// The run is not modified; it can keep advancing afterwards.
func Save(w io.Writer, run *scenario.Run) error {
	if run == nil {
		return fmt.Errorf("snapshot: nil run")
	}
	if run.Finished() {
		return fmt.Errorf("snapshot: run already finished; a folded run cannot be resumed")
	}
	sc := run.Scenario()
	scJSON, err := json.Marshal(&sc)
	if err != nil {
		return fmt.Errorf("snapshot: encoding scenario: %w", err)
	}
	if len(scJSON) > maxScenarioLen {
		return fmt.Errorf("snapshot: scenario document too large (%d bytes)", len(scJSON))
	}
	d := Fingerprint(run)

	buf := make([]byte, 0, len(Magic)+4+4+len(scJSON)+8+6*8+4)
	buf = append(buf, Magic...)
	buf = binary.LittleEndian.AppendUint32(buf, Version)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(scJSON)))
	buf = append(buf, scJSON...)
	buf = binary.LittleEndian.AppendUint64(buf, floatBits(float64(run.Now())))
	for _, word := range []uint64{d.Now, d.Events, d.Pools, d.RNG, d.Metrics, d.State} {
		buf = binary.LittleEndian.AppendUint64(buf, word)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))

	_, err = w.Write(buf)
	return err
}

// Read decodes and validates a snapshot document without building
// anything: framing, version, checksum, and scenario validity.
func Read(r io.Reader) (*Doc, error) {
	head := make([]byte, len(Magic)+4+4)
	if err := readFull(r, head); err != nil {
		return nil, err
	}
	if string(head[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	crc := crc32.NewIEEE()
	crc.Write(head)
	ver := binary.LittleEndian.Uint32(head[len(Magic):])
	if ver != Version {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrVersion, ver, Version)
	}
	scLen := binary.LittleEndian.Uint32(head[len(Magic)+4:])
	if scLen > maxScenarioLen {
		return nil, fmt.Errorf("%w: scenario length %d exceeds limit", ErrCorrupt, scLen)
	}
	body := make([]byte, int(scLen)+8+6*8)
	if err := readFull(r, body); err != nil {
		return nil, err
	}
	crc.Write(body)
	var trailer [4]byte
	if err := readFull(r, trailer[:]); err != nil {
		return nil, err
	}
	if got, want := binary.LittleEndian.Uint32(trailer[:]), crc.Sum32(); got != want {
		return nil, fmt.Errorf("%w: checksum %#x, computed %#x", ErrCorrupt, got, want)
	}

	doc := &Doc{}
	sc, err := scenario.Parse(body[:scLen])
	if err != nil {
		return nil, fmt.Errorf("%w: embedded scenario: %w", ErrCorrupt, err)
	}
	doc.Scenario = sc
	rest := body[scLen:]
	doc.T = sim.Time(floatFromBits(binary.LittleEndian.Uint64(rest)))
	words := rest[8:]
	for i, p := range []*uint64{
		&doc.Digest.Now, &doc.Digest.Events, &doc.Digest.Pools,
		&doc.Digest.RNG, &doc.Digest.Metrics, &doc.Digest.State,
	} {
		*p = binary.LittleEndian.Uint64(words[i*8:])
	}
	if !(float64(doc.T) >= 0) {
		return nil, fmt.Errorf("%w: negative or NaN pause time %v", ErrCorrupt, doc.T)
	}
	return doc, nil
}

// Load restores a run from a snapshot: decode, rebuild from the
// embedded scenario, replay deterministically to the pause time, and
// verify every state digest. The returned run is paused at Doc.T,
// journal-less, ready for SetJournal and AdvanceTo.
func Load(r io.Reader) (*scenario.Run, error) {
	return LoadWith(r, scenario.BuildOptions{})
}

// LoadWith is Load with explicit build options (a sweep worker's
// reusable runtime, typically).
func LoadWith(r io.Reader, opts scenario.BuildOptions) (*scenario.Run, error) {
	doc, err := Read(r)
	if err != nil {
		return nil, err
	}
	return doc.Restore(opts)
}

// Restore builds the document's run and replays it to the pause time,
// verifying the state digests. Callers that already hold a decoded Doc
// (a server that validated on upload) restore without re-reading.
func (doc *Doc) Restore(opts scenario.BuildOptions) (*scenario.Run, error) {
	run, err := scenario.BuildWith(doc.Scenario, opts)
	if err != nil {
		return nil, err
	}
	if doc.T > run.End() {
		return nil, fmt.Errorf("%w: pause time %v beyond run end %v", ErrCorrupt, doc.T, run.End())
	}
	// Replay is silent: no journal is attached, so the rebuilt run
	// emits nothing for [0, T) — those records belong to the original
	// run's prefix.
	if err := run.AdvanceTo(doc.T); err != nil {
		return nil, fmt.Errorf("snapshot: replaying to t=%v: %w", doc.T, err)
	}
	got := Fingerprint(run)
	if got != doc.Digest {
		return nil, fmt.Errorf("%w at t=%v: %s", ErrStateMismatch, doc.T, diffDigest(doc.Digest, got))
	}
	return run, nil
}

// diffDigest names every diverging component — the error message is the
// debugging entry point for a failed restore.
func diffDigest(want, got Digest) string {
	var bad []byte
	add := func(name string, w, g uint64) {
		if w != g {
			if len(bad) > 0 {
				bad = append(bad, ", "...)
			}
			bad = fmt.Appendf(bad, "%s (saved %#x, replayed %#x)", name, w, g)
		}
	}
	add("clock", want.Now, got.Now)
	add("event heap", want.Events, got.Events)
	add("event pools", want.Pools, got.Pools)
	add("rng streams", want.RNG, got.RNG)
	add("metrics", want.Metrics, got.Metrics)
	add("node state", want.State, got.State)
	return string(bad)
}

// readFull reads exactly len(buf) bytes, mapping short reads to
// ErrTruncated.
func readFull(r io.Reader, buf []byte) error {
	if _, err := io.ReadFull(r, buf); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return fmt.Errorf("%w: %v", ErrTruncated, err)
		}
		return err
	}
	return nil
}
