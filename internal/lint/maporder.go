package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// effectCalls are method/function names whose invocation inside a map
// iteration makes iteration order observable: scheduling simulation
// events, handing packets down the stack, or writing output. The set is
// the fallback for calls the flow layer cannot resolve to a body
// (interface dispatch, partial type information) — resolved calls are
// judged by actual sink reachability instead.
var effectCalls = map[string]bool{
	// event scheduling
	"Schedule": true, "At": true, "ScheduleAt": true,
	// packet / message movement
	"Send": true, "SendTo": true, "Enqueue": true, "Push": true,
	"Deliver": true, "Emit": true, "Broadcast": true, "Transmit": true,
	// output
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"AddRow": true,
}

// sortCalls are sort/slices package functions that impose a total order
// on their first argument.
var sortCalls = map[string]bool{
	"Ints": true, "Strings": true, "Float64s": true,
	"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	"SortFunc": true, "SortStableFunc": true,
}

// MapOrder flags `range` over a map whose body reaches an
// order-observable sink. Go randomizes map iteration order per run, so
// any such loop emits events in a different order every execution — the
// canonical way simulators silently lose determinism. Collect the keys,
// sort them, and iterate the sorted slice instead.
//
// The rule is sink-aware where the call graph can resolve the callee:
// a call inside the body is an effect only if the callee (transitively)
// reaches the event schedule, the run journal, a metrics series, packet
// transmission, or process output. A resolved helper that provably
// reaches no sink is not flagged, no matter what it is named; an
// unresolvable call falls back to the name heuristics above.
//
// The flow layer also closes the cross-function leak: ranging over a
// slice returned (directly or through an assignment) by a function that
// built it in map-iteration order without sorting is flagged the same
// way — that is exactly how nondeterministic order escapes the function
// the syntactic rule was staring at.
//
// Two shapes of the canonical fix are recognized and left alone:
//
//   - the single-statement key collection
//     `for k := range m { keys = append(keys, k) }`;
//   - any body whose only effect is appending to a slice that a later
//     statement in the same file passes to sort.* or slices.Sort* —
//     the filter-then-sort idiom.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flag sink-reaching iteration over map ranges (and map-ordered slices); sort keys first",
	Run:  runMapOrder,
}

func runMapOrder(p *Pass) {
	for _, f := range p.Files {
		sorts := collectSorts(p, f)
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok {
				return true
			}
			var encl *FuncNode
			if p.Prog != nil {
				encl = p.Prog.NodeFor(fd)
			}
			checkMapRanges(p, fd.Body, encl, sorts)
			return false
		})
	}
}

// checkMapRanges inspects one function body, descending into nested
// literals with their own flow nodes so callee resolution stays
// accurate.
func checkMapRanges(p *Pass, body *ast.BlockStmt, encl *FuncNode, sorts map[string][]token.Pos) {
	if body == nil {
		return
	}
	mapOrdered := mapOrderedLocals(p, body, encl)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			child := encl
			if p.Prog != nil {
				if c := p.Prog.NodeFor(n); c != nil {
					child = c
				}
			}
			checkMapRanges(p, n.Body, child, sorts)
			return false
		case *ast.RangeStmt:
			checkOneRange(p, n, encl, sorts, mapOrdered)
		}
		return true
	})
}

// checkOneRange applies the rule to a single range statement.
func checkOneRange(p *Pass, rs *ast.RangeStmt, encl *FuncNode, sorts map[string][]token.Pos, mapOrdered map[string]string) {
	t := p.TypeOf(rs.X)
	if t == nil {
		return
	}
	src := "" // non-empty: a map-ordered slice, naming its producer
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		if _, isSlice := t.Underlying().(*types.Slice); !isSlice || p.Prog == nil || encl == nil {
			return
		}
		src = mapOrderedSource(p, rs.X, encl, mapOrdered)
		if src == "" {
			return
		}
	}
	if isKeyCollection(rs) {
		return
	}
	eff, found := findEffect(p, rs, encl)
	if !found {
		return
	}
	if eff.appendVar != "" && sortedAfter(sorts, eff.appendVar, rs.End()) {
		return // filter-then-sort idiom
	}
	if src != "" {
		p.Reportf(eff.pos, "this slice was built in map-iteration order by %s and never sorted, but this body %s; sort it (or sort inside %s) first", src, eff.what, src)
		return
	}
	p.Reportf(eff.pos, "map iteration order is randomized, but this body %s; collect and sort the keys first", eff.what)
}

// mapOrderedLocals finds local slices bound from a call to a function
// that returns in map-iteration order (`keys := f()`), minus any the
// body later sorts.
func mapOrderedLocals(p *Pass, body *ast.BlockStmt, encl *FuncNode) map[string]string {
	if p.Prog == nil || encl == nil {
		return nil
	}
	out := map[string]string{}
	inspectShallow(body, func(node ast.Node) {
		asg, ok := node.(*ast.AssignStmt)
		if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
			return
		}
		id, ok := asg.Lhs[0].(*ast.Ident)
		if !ok {
			return
		}
		if name := mapOrderedCallName(p, asg.Rhs[0], encl); name != "" {
			out[id.Name] = name
		}
	})
	if len(out) == 0 {
		return out
	}
	for name := range collectSortsUnit(unitOf(p, encl), body) {
		delete(out, name)
	}
	return out
}

// mapOrderedSource names the producer when e ranges over a map-ordered
// slice: either a direct call result or a local bound from one.
func mapOrderedSource(p *Pass, e ast.Expr, encl *FuncNode, mapOrdered map[string]string) string {
	e = ast.Unparen(e)
	if name := mapOrderedCallName(p, e, encl); name != "" {
		return name
	}
	if id, ok := e.(*ast.Ident); ok {
		return mapOrdered[id.Name]
	}
	return ""
}

// mapOrderedCallName resolves e as a call to a map-order-returning
// function and returns its display name, or "".
func mapOrderedCallName(p *Pass, e ast.Expr, encl *FuncNode) string {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return ""
	}
	callee, _ := p.Prog.resolveCallee(encl, unitOf(p, encl), call.Fun)
	if callee == "" {
		return ""
	}
	if _, ok := p.Prog.Funcs[callee]; ok && p.Prog.ReturnsMapOrdered(callee) {
		return shortID(callee)
	}
	return ""
}

func unitOf(p *Pass, encl *FuncNode) *Unit {
	if encl != nil {
		return encl.Unit
	}
	return p.unit
}

// isKeyCollection recognizes `for k := range m { keys = append(keys, k) }`
// (possibly through a conversion of k), the first half of the sort-keys
// idiom.
func isKeyCollection(rs *ast.RangeStmt) bool {
	if rs.Value != nil || len(rs.Body.List) != 1 {
		return false
	}
	key, ok := rs.Key.(*ast.Ident)
	if !ok {
		return false
	}
	asg, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Rhs) != 1 || len(asg.Lhs) != 1 {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
		return false
	}
	arg := unwrapConversion(call.Args[1])
	id, ok := arg.(*ast.Ident)
	return ok && id.Name == key.Name
}

// unwrapConversion strips one level of T(x) / f(x) so conversions of
// the interesting identifier still match.
func unwrapConversion(e ast.Expr) ast.Expr {
	if call, ok := e.(*ast.CallExpr); ok && len(call.Args) == 1 {
		return call.Args[0]
	}
	return e
}

// collectSorts records, per variable name, the positions of sort.* /
// slices.Sort* calls on that variable anywhere in the file.
func collectSorts(p *Pass, f *ast.File) map[string][]token.Pos {
	out := map[string][]token.Pos{}
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !sortCalls[sel.Sel.Name] {
			return true
		}
		pkg := p.PkgNameOf(sel)
		if pkg == "" {
			if id, ok := sel.X.(*ast.Ident); ok {
				pkg = id.Name // partial type info: fall back on the qualifier text
			}
		}
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		if id, ok := unwrapConversion(call.Args[0]).(*ast.Ident); ok {
			out[id.Name] = append(out[id.Name], call.Pos())
		}
		return true
	})
	return out
}

func sortedAfter(sorts map[string][]token.Pos, name string, after token.Pos) bool {
	for _, pos := range sorts[name] {
		if pos >= after {
			return true
		}
	}
	return false
}

// effect describes one order-observable operation in a range body.
type effect struct {
	pos       token.Pos
	what      string
	appendVar string // set when the only effects are appends to this one variable
}

// callEffect judges one call inside a range body. Resolved callees with
// bodies are judged by transitive sink reachability — a helper that
// provably reaches no sink is not an effect regardless of its name;
// resolved bodiless callees by the base sink table; everything else by
// the name heuristics.
func callEffect(p *Pass, encl *FuncNode, call *ast.CallExpr) (string, bool) {
	if p.Prog != nil && encl != nil {
		callee, name := p.Prog.resolveCallee(encl, unitOf(p, encl), call.Fun)
		if callee != "" {
			if _, hasBody := p.Prog.Funcs[callee]; hasBody {
				reach := baseSinkOf(callee) | p.Prog.SinkReach(callee)
				if reach == 0 {
					return "", false
				}
				return fmt.Sprintf("calls %s, which reaches %s", name, reach.Describe()), true
			}
			if reach := baseSinkOf(callee); reach != 0 {
				return fmt.Sprintf("calls %s, which reaches %s", name, reach.Describe()), true
			}
		}
	}
	switch fn := call.Fun.(type) {
	case *ast.SelectorExpr:
		if effectCalls[fn.Sel.Name] {
			return "calls " + fn.Sel.Name, true
		}
	case *ast.Ident:
		if fn.Name == "print" || fn.Name == "println" {
			return "writes output", true
		}
	}
	return "", false
}

// findEffect scans the range body for order-observable operations. When
// every effect is an append to the same outer variable, appendVar names
// it so the caller can apply the filter-then-sort exemption.
func findEffect(p *Pass, rs *ast.RangeStmt, encl *FuncNode) (effect, bool) {
	// Names declared inside the body: appending to those is purely
	// local and invisible outside one iteration.
	local := map[string]bool{}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						local[id.Name] = true
					}
				}
			}
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, id := range vs.Names {
							local[id.Name] = true
						}
					}
				}
			}
		}
		return true
	})

	var (
		found       effect
		have        bool
		onlyAppends = true
	)
	record := func(pos token.Pos, what string) {
		if !have {
			found, have = effect{pos: pos, what: what}, true
		}
		onlyAppends = false
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			record(n.Pos(), "sends on a channel")
		case *ast.CallExpr:
			if what, ok := callEffect(p, encl, n); ok {
				record(n.Pos(), what)
			}
		case *ast.AssignStmt:
			// x = append(x, ...) where x outlives the loop body.
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					continue
				}
				if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
					continue
				}
				name := ""
				if i < len(n.Lhs) {
					if id, ok := n.Lhs[i].(*ast.Ident); ok {
						if local[id.Name] {
							continue
						}
						name = id.Name
					}
				}
				if !have {
					found, have = effect{
						pos:       n.Pos(),
						what:      "appends to a slice that outlives the loop",
						appendVar: name,
					}, true
				} else if found.appendVar != name {
					onlyAppends = false
				}
			}
		}
		return true
	})
	if have && !onlyAppends {
		found.appendVar = ""
	}
	return found, have
}
