package node

import "routeless/internal/digest"

// DigestState folds the node's own mutable state into h: position,
// tile assignment, and the shared power-failure latch. The radio, MAC,
// and protocol attached to the node are digested separately by the
// snapshot walk (each owns its own DigestState).
func (n *Node) DigestState(h *digest.Hash) {
	h.Int64(int64(n.ID))
	h.Float64(n.Pos.X)
	h.Float64(n.Pos.Y)
	h.Int(n.Tile)
	h.Bool(n.failing)
}

// DigestState folds the duty-cycle phase machine into h: the process's
// own up/down phase (deliberately distinct from the node's shared power
// state), accrued downtime, and the open phase's start time.
func (fp *FailureProcess) DigestState(h *digest.Hash) {
	h.Bool(fp.down)
	h.Float64(fp.totalDown)
	h.Float64(float64(fp.downSince))
}

// DigestState folds the random-waypoint leg state into h: destination,
// speed, leg count, and the moving/stopped flags. The tick timer itself
// is captured by the kernel's pending-event digest.
func (w *Waypoint) DigestState(h *digest.Hash) {
	h.Float64(w.dest.X)
	h.Float64(w.dest.Y)
	h.Float64(w.speed)
	h.Uint64(w.legs)
	h.Bool(w.moving)
	h.Bool(w.stopped)
}
