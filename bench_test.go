// Benchmarks regenerating every figure of the paper's evaluation plus
// the DESIGN.md ablations, at a reduced scale chosen so a full
// `go test -bench=.` finishes in minutes. Full paper scale is available
// through cmd/wmansim (see EXPERIMENTS.md for recorded results).
//
// Each benchmark iteration runs the complete experiment sweep; custom
// metrics expose the headline numbers (delivery ratio, delay, MAC
// packets) so regressions in protocol behavior — not just speed — show
// up in benchmark diffs.
package routeless_test

import (
	"testing"

	"routeless/internal/experiments"
	"routeless/internal/sim"
)

func benchFig1Config() experiments.Fig1Config {
	return experiments.Fig1Config{
		Nodes: 60, Terrain: 800, Connections: 15,
		Intervals: []float64{1, 5, 10},
		Duration:  10, Seeds: []int64{1},
	}
}

func benchFig34Config() experiments.Fig34Config {
	return experiments.Fig34Config{
		Nodes: 150, Terrain: 1100, Duration: 20,
		Pairs: []int{2, 6}, Seeds: []int64{1},
		FailurePcts: []float64{0, 0.10}, Fig4Pairs: 6,
	}
}

// BenchmarkFig1 regenerates Figure 1: SSAF vs counter-1 flooding across
// packet generation intervals (delay, hops, delivery panels).
func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RunFig1(benchFig1Config())
		last := rows[len(rows)-1]
		b.ReportMetric(last.SSAF.Delivery.Mean(), "ssaf-delivery")
		b.ReportMetric(last.Counter1.Delivery.Mean(), "c1-delivery")
		b.ReportMetric(last.SSAF.Hops.Mean(), "ssaf-hops")
		b.ReportMetric(last.Counter1.Hops.Mean(), "c1-hops")
	}
}

// BenchmarkFig2 regenerates Figure 2: Routeless Routing's automatic
// congestion avoidance (relay displacement away from the hot center).
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig2(experiments.Fig2Config{
			Seed: 3, Nodes: 300, Terrain: 1500, Duration: 30,
		})
		b.ReportMetric(res.CenterShareAlone, "center-share-alone")
		b.ReportMetric(res.CenterShareWithCross, "center-share-congested")
	}
}

// BenchmarkFig3 regenerates Figure 3: Routeless Routing vs AODV without
// failures (delay, delivery, MAC packets, hops vs pair count).
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RunFig3(benchFig34Config())
		last := rows[len(rows)-1]
		b.ReportMetric(last.Routeless.MACPackets.Mean(), "rr-mac-pkts")
		b.ReportMetric(last.AODV.MACPackets.Mean(), "aodv-mac-pkts")
		b.ReportMetric(last.Routeless.Delay.Mean()*1e3, "rr-delay-ms")
		b.ReportMetric(last.AODV.Delay.Mean()*1e3, "aodv-delay-ms")
	}
}

// BenchmarkFig4 regenerates Figure 4: the same comparison under §4.3
// duty-cycle node failures (Routeless stays flat; AODV pays).
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RunFig4(benchFig34Config())
		clean, failing := rows[0], rows[len(rows)-1]
		b.ReportMetric(failing.AODV.MACPackets.Mean()/clean.AODV.MACPackets.Mean(), "aodv-pkt-growth")
		b.ReportMetric(failing.Routeless.MACPackets.Mean()/clean.Routeless.MACPackets.Mean(), "rr-pkt-growth")
		b.ReportMetric(failing.Routeless.Delivery.Mean(), "rr-delivery@10%")
	}
}

// BenchmarkAblationSSAFCancel regenerates ABL1: SSAF with vs without
// duplicate cancellation.
func BenchmarkAblationSSAFCancel(b *testing.B) {
	cfg := benchFig1Config()
	cfg.Intervals = []float64{2}
	for i := 0; i < b.N; i++ {
		rows := experiments.RunAbl1(cfg)
		b.ReportMetric(rows[0].SSAF.MACPackets.Mean(), "ssaf-mac-pkts")
		b.ReportMetric(rows[0].SSAFC.MACPackets.Mean(), "ssafc-mac-pkts")
	}
}

// BenchmarkAblationLambda regenerates ABL2: the §4.1 λ tradeoff.
func BenchmarkAblationLambda(b *testing.B) {
	cfg := benchFig34Config()
	lambdas := []sim.Time{5e-3, 50e-3}
	for i := 0; i < b.N; i++ {
		rows := experiments.RunAbl2(cfg, lambdas, 4)
		b.ReportMetric(rows[0].RR.Delay.Mean()*1e3, "delay-ms@5ms")
		b.ReportMetric(rows[len(rows)-1].RR.Delay.Mean()*1e3, "delay-ms@50ms")
	}
}

// BenchmarkElection regenerates ABL3: local leader election outcome
// probabilities on the abstract medium.
func BenchmarkElection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RunAbl3(0, []int{2, 10, 50}, 100, 10e-3, 7)
		b.ReportMetric(rows[0].SingleLeader, "p-single@2")
		b.ReportMetric(rows[len(rows)-1].SingleLeader, "p-single@50")
	}
}

// BenchmarkAblationGradient regenerates ABL4: Routeless vs Gradient
// Routing transmissions (§4.4 congestion claim).
func BenchmarkAblationGradient(b *testing.B) {
	cfg := benchFig34Config()
	cfg.Pairs = []int{4}
	for i := 0; i < b.N; i++ {
		rows := experiments.RunAbl4(cfg)
		b.ReportMetric(rows[0].Routeless.MACPackets.Mean(), "rr-mac-pkts")
		b.ReportMetric(rows[0].Gradient.MACPackets.Mean(), "grad-mac-pkts")
	}
}

// BenchmarkAblationSleep regenerates ABL5: duty-cycled sleeping under
// Routeless Routing (§4.2 energy claim).
func BenchmarkAblationSleep(b *testing.B) {
	cfg := benchFig34Config()
	for i := 0; i < b.N; i++ {
		rows := experiments.RunAbl5(cfg, []float64{0, 0.3}, 4)
		b.ReportMetric(rows[0].RR.EnergyJ.Mean(), "energy-J-awake")
		b.ReportMetric(rows[1].RR.EnergyJ.Mean(), "energy-J-30%sleep")
		b.ReportMetric(rows[1].RR.Delivery.Mean(), "delivery-30%sleep")
	}
}
