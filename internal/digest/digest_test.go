package digest

import "testing"

// TestDeterministic: the same write sequence always sums identically.
func TestDeterministic(t *testing.T) {
	feed := func() uint64 {
		h := New()
		h.Uint64(42)
		h.Int64(-7)
		h.Float64(3.5)
		h.Bool(true)
		h.String("leader")
		h.Bytes([]byte{1, 2, 3})
		return h.Sum()
	}
	if a, b := feed(), feed(); a != b {
		t.Fatalf("same sequence hashed differently: %#x vs %#x", a, b)
	}
}

// TestOrderSensitive: FNV-1a is a stream hash — permuting the write
// order must change the sum, or the state digests could not detect
// reordered queues.
func TestOrderSensitive(t *testing.T) {
	a := New()
	a.Uint64(1)
	a.Uint64(2)
	b := New()
	b.Uint64(2)
	b.Uint64(1)
	if a.Sum() == b.Sum() {
		t.Fatal("write order did not affect the sum")
	}
}

// TestFramingDistinct: values that share bytes under naive
// concatenation must still hash apart, because String and Bytes are
// length-prefixed.
func TestFramingDistinct(t *testing.T) {
	a := New()
	a.String("ab")
	a.String("c")
	b := New()
	b.String("a")
	b.String("bc")
	if a.Sum() == b.Sum() {
		t.Fatal("length framing failed: split point did not affect the sum")
	}
}

// TestBoolDistinct: true/false and present/absent markers differ.
func TestBoolDistinct(t *testing.T) {
	a := New()
	a.Bool(true)
	b := New()
	b.Bool(false)
	if a.Sum() == b.Sum() {
		t.Fatal("Bool(true) == Bool(false)")
	}
}

// TestFloatBitwise: Float64 hashes the IEEE bits, so -0.0 and +0.0
// are distinct states (they are distinct words in a snapshot).
func TestFloatBitwise(t *testing.T) {
	a := New()
	a.Float64(0.0)
	b := New()
	b.Float64(negZero())
	if a.Sum() == b.Sum() {
		t.Fatal("+0.0 and -0.0 hashed the same")
	}
}

func negZero() float64 {
	z := 0.0
	return -z
}
