// Congestion demo: a miniature of the paper's Figure 2. An A→B flow
// crosses the middle of the field; heavy C↔D traffic then floods that
// middle, and Routeless Routing's elections — in which congested nodes
// lose because their frames sit in full MAC queues — steer the A→B
// packets around the hot region with no explicit congestion signaling.
//
//	go run ./examples/congestion
package main

import (
	"fmt"

	"routeless/internal/experiments"
)

func main() {
	res := experiments.RunFig2(experiments.Fig2Config{
		Nodes: 300, Terrain: 1500, Seed: 3, Duration: 30,
	})
	fmt.Println(experiments.Fig2Table(res))
	fmt.Println(experiments.Fig2Render(res, 72))
}
