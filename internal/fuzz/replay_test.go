package fuzz

import (
	"path/filepath"
	"testing"
)

// TestReplayCommittedFixtures replays every fixture the fuzzer ever
// minimized into testdata/. Each file is a simulator bug that was
// fixed in the commit that added it — at capture time the scenario
// produced the verdict recorded in the fixture (an invariant
// violation), and post-fix it must pass the full oracle. A regression
// reopens as a plain test failure naming the fixture.
//
//   - crash_shared_state.json: FailureProcess keyed its phase machine
//     off shared node.Up() state; a battery drain failing the node
//     mid-phase made the process accrue downtime from a downSince it
//     never set (downtime 1324 s in a 6.5 s run).
//   - crash_double_count.json: two crash specs in one plan legitimately
//     accrue up to sim-time each per node, but the fault-downtime bound
//     multiplied by the node count instead of the crash-process count.
func TestReplayCommittedFixtures(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 2 {
		t.Fatalf("expected at least the two committed bug fixtures, found %v", paths)
	}
	var r Runner
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			fx, err := LoadFixture(path)
			if err != nil {
				t.Fatal(err)
			}
			// Fixtures capture failing verdicts by construction.
			if fx.Verdict == VerdictPass || fx.Verdict == VerdictInvalid {
				t.Fatalf("fixture records non-failing verdict %q", fx.Verdict)
			}
			res := r.Run(fx.Scenario)
			if res.Verdict != VerdictPass {
				t.Fatalf("fixed bug regressed: verdict=%s detail=%s\nfixture note: %s",
					res.Verdict, res.Detail, fx.Note)
			}
		})
	}
}
