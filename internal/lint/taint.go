package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// This file is the forward taint/provenance layer on top of the call
// graph: a pragmatic AST-level dataflow (assignments, calls, returns,
// closures — no SSA) that gives the determinism rules interprocedural
// reach. Three analyses share the machinery:
//
//   - sink reachability: can calling this function lead to an
//     order-observable effect (event scheduling, a journal record, a
//     metrics series, packet movement, output)? Used by the sink-aware
//     maporder rule.
//   - rand provenance: is a *rand.Rand value rooted in a seed-derived
//     constructor (rng.New/ForNode, Kernel.Rand, rand.New over an
//     rng.Derive'd seed), a function parameter, a package-level
//     variable, or a raw fixed seed? Used by the flow-aware globalrand
//     and faultrand rules.
//   - map-ordered returns: does this function return a slice
//     accumulated from a map iteration without sorting? Used by
//     maporder's cross-function leak check.
//
// All summaries are memoized on the Program and computed on demand.
// Recursion cycles resolve to the neutral value (no sinks / trusted
// provenance), an under-approximation that can miss findings inside
// mutually recursive helpers but never invents one.

// ---------------------------------------------------------------------
// Sink reachability
// ---------------------------------------------------------------------

// sinkSet is a bit set of order-observable effect classes.
type sinkSet uint8

const (
	sinkSchedule sinkSet = 1 << iota // kernel event scheduling / timers
	sinkJournal                      // metrics.Journal records
	sinkMetrics                      // metrics counter/gauge/histogram writes
	sinkPacket                       // packet movement (MAC enqueue, channel sends)
	sinkOutput                       // process output (fmt, io.Writer)
)

// Describe names the most causality-relevant sink in the set for
// diagnostics.
func (s sinkSet) Describe() string {
	switch {
	case s&sinkSchedule != 0:
		return "the event schedule"
	case s&sinkJournal != 0:
		return "the run journal"
	case s&sinkMetrics != 0:
		return "a metrics series"
	case s&sinkPacket != 0:
		return "packet transmission"
	case s&sinkOutput != 0:
		return "process output"
	}
	return "no sink"
}

// baseSinks maps resolved callee-ID suffixes to the sink they are.
var baseSinks = []struct {
	suffix string
	kind   sinkSet
}{
	{"internal/sim.(Kernel).Schedule", sinkSchedule},
	{"internal/sim.(Kernel).At", sinkSchedule},
	{"internal/sim.NewTimer", sinkSchedule},
	{"internal/sim.(Timer).Reset", sinkSchedule},
	{"internal/sim.(Timer).ResetAt", sinkSchedule},
	{"internal/metrics.(Journal).Write", sinkJournal},
	// Counter.Inc/Add are deliberately absent: uint64 addition is
	// commutative, so the final count is identical under any iteration
	// order. Gauge and Histogram are float-valued — Set is
	// last-write-wins and Add/Observe accumulate in IEEE-754 order, so
	// their results are order-observable.
	{"internal/metrics.(Gauge).Set", sinkMetrics},
	{"internal/metrics.(Gauge).Add", sinkMetrics},
	{"internal/metrics.(Histogram).Observe", sinkMetrics},
	{"internal/mac.(MAC).Enqueue", sinkPacket},
	{"io.(Writer).Write", sinkOutput},
	{"io.(StringWriter).WriteString", sinkOutput},
}

// outputPkgs are packages whose Print*/Write* functions and methods
// count as process output.
var outputPkgs = map[string]bool{
	"fmt": true, "os": true, "io": true, "bufio": true,
	"bytes": true, "strings": true, "log": true,
}

// baseSinkOf classifies a resolved callee ID that may have no body in
// the program (stdlib, interface methods).
func baseSinkOf(id FuncID) sinkSet {
	for _, b := range baseSinks {
		if idHasSuffix(id, b.suffix) {
			return b.kind
		}
	}
	s := string(id)
	name := s[strings.LastIndex(s, ".")+1:]
	if strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") ||
		strings.HasPrefix(name, "Write") {
		// Package path is everything before the first "." or ".(".
		pkg := s
		if i := strings.Index(pkg, ".("); i >= 0 {
			pkg = pkg[:i]
		} else if i := strings.LastIndex(pkg, "."); i >= 0 {
			pkg = pkg[:i]
		}
		if i := strings.LastIndex(pkg, "/"); i >= 0 {
			pkg = pkg[i+1:]
		}
		if outputPkgs[pkg] {
			return sinkOutput
		}
	}
	return 0
}

// SinkReach returns the set of sinks transitively reachable from id.
func (p *Program) SinkReach(id FuncID) sinkSet {
	if s, ok := p.sinkMemo[id]; ok {
		return s
	}
	if p.sinkActive[id] {
		return 0 // cycle: resolved by the frame that opened it
	}
	n := p.Funcs[id]
	if n == nil {
		return baseSinkOf(id)
	}
	p.sinkActive[id] = true
	var s sinkSet
	if n.sendsOnChannel {
		s |= sinkPacket
	}
	for _, c := range n.Calls {
		if c.Callee == "" {
			continue
		}
		s |= baseSinkOf(c.Callee)
		s |= p.SinkReach(c.Callee)
	}
	for _, f := range n.passed {
		s |= p.SinkReach(f)
	}
	delete(p.sinkActive, id)
	p.sinkMemo[id] = s
	return s
}

// ---------------------------------------------------------------------
// Rand / seed provenance
// ---------------------------------------------------------------------

type provKind uint8

const (
	provTrusted provKind = iota // unknown origin (fields, foreign calls): checked at its own definition site, trusted here
	provDerived                 // rooted in rng.Derive / rng.New / rng.ForNode / Kernel.Rand
	provParam                   // flows unchanged from a function parameter; resolved at call sites
	provGlobal                  // rooted in a package-level variable: a process-shared stream
	provRaw                     // rooted in a fixed (literal or underived) seed
)

// provSummary is the provenance verdict for one expression, or for a
// function's returned stream as a function of its arguments.
type provSummary struct {
	kind  provKind
	index int    // parameter index when kind == provParam
	key   string // global variable key when kind == provGlobal
}

var trusted = provSummary{kind: provTrusted}

// sanctionedRandCtors are the call targets that construct a
// seed-derived stream by definition.
var sanctionedRandCtors = []string{
	"internal/rng.New",
	"internal/rng.ForNode",
	"internal/sim.(Kernel).Rand",
}

// rawRandCtors are the math/rand constructors whose output is only as
// derived as the seed fed to them.
var rawRandCtors = []string{
	"math/rand.New",
	"math/rand.NewSource",
	"math/rand/v2.New",
	"math/rand/v2.NewPCG",
	"math/rand/v2.NewChaCha8",
}

func matchesAny(id FuncID, patterns []string) bool {
	for _, pat := range patterns {
		if idHasSuffix(id, pat) {
			return true
		}
	}
	return false
}

// isRandValueType reports whether t is *rand.Rand or a rand Source.
func isRandValueType(t types.Type) bool {
	if t == nil {
		return false
	}
	if isRandPointer(t) {
		return true
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	o := named.Obj()
	return o.Pkg() != nil && randPackages[o.Pkg().Path()] &&
		strings.HasPrefix(o.Name(), "Source")
}

// provEnv caches classified local bindings for one function body.
type provEnv map[types.Object]provSummary

// buildProvEnv classifies local variables of rand type (and integer
// locals feeding seed positions) from the body's assignments, in source
// order. Flow-insensitive: a variable rebound with a different
// provenance degrades to trusted.
func (p *Program) buildProvEnv(n *FuncNode) provEnv {
	env := provEnv{}
	u := n.Unit
	if u.Info == nil {
		return env
	}
	body := n.body()
	if body == nil {
		return env
	}
	bind := func(id *ast.Ident, rhs ast.Expr) {
		obj := u.Info.Defs[id]
		if obj == nil {
			obj = u.Info.Uses[id]
		}
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return
		}
		var sum provSummary
		switch {
		case isRandValueType(v.Type()):
			sum = p.classifyRand(n, rhs, env)
		case isIntegerType(v.Type()):
			sum = p.classifySeed(n, rhs, env)
		default:
			return
		}
		if old, ok := env[obj]; ok && old != sum {
			sum = trusted
		}
		env[obj] = sum
	}
	inspectShallow(body, func(node ast.Node) {
		switch st := node.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) != len(st.Rhs) {
				return
			}
			for i, lhs := range st.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					bind(id, st.Rhs[i])
				}
			}
		case *ast.DeclStmt:
			gd, ok := st.Decl.(*ast.GenDecl)
			if !ok {
				return
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != len(vs.Names) {
					continue
				}
				for i, name := range vs.Names {
					bind(name, vs.Values[i])
				}
			}
		}
	})
	return env
}

// body returns the statement block of the node's function.
func (n *FuncNode) body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	if n.Lit != nil {
		return n.Lit.Body
	}
	return nil
}

// inspectShallow walks body without descending into nested function
// literals (each literal is its own FuncNode).
func inspectShallow(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(node ast.Node) bool {
		if _, ok := node.(*ast.FuncLit); ok {
			return false
		}
		if node != nil {
			fn(node)
		}
		return true
	})
}

func isIntegerType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// typeOf is Info.TypeOf tolerating degraded (nil) type information.
func typeOf(u *Unit, e ast.Expr) types.Type {
	if u.Info == nil {
		return nil
	}
	return u.Info.TypeOf(e)
}

// paramIndex returns obj's position in n's parameter list, or -1.
func paramIndex(n *FuncNode, obj types.Object) int {
	var params *ast.FieldList
	if n.Decl != nil {
		params = n.Decl.Type.Params
	} else if n.Lit != nil {
		params = n.Lit.Type.Params
	}
	if params == nil {
		return -1
	}
	i := 0
	for _, field := range params.List {
		if len(field.Names) == 0 {
			i++
			continue
		}
		for _, name := range field.Names {
			if def := n.Unit.Info.Defs[name]; def != nil && def == obj {
				return i
			}
			i++
		}
	}
	return -1
}

// argAt returns the call argument at index i, or nil.
func argAt(call *ast.CallExpr, i int) ast.Expr {
	if i < 0 || i >= len(call.Args) {
		return nil
	}
	return call.Args[i]
}

// isConversion reports whether call is a type conversion T(x).
func isConversion(u *Unit, call *ast.CallExpr) bool {
	if u.Info == nil || len(call.Args) != 1 {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		_, ok := u.Info.Uses[fun].(*types.TypeName)
		return ok
	case *ast.SelectorExpr:
		_, ok := u.Info.Uses[fun.Sel].(*types.TypeName)
		return ok
	}
	return false
}

// classifyRand determines the provenance of a rand-valued expression
// inside n's body.
func (p *Program) classifyRand(n *FuncNode, e ast.Expr, env provEnv) provSummary {
	u := n.Unit
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		if isConversion(u, e) {
			return p.classifyRand(n, e.Args[0], env)
		}
		callee, _ := p.resolveCallee(n, u, e.Fun)
		if callee == "" {
			return trusted
		}
		if matchesAny(callee, sanctionedRandCtors) {
			return provSummary{kind: provDerived}
		}
		if matchesAny(callee, rawRandCtors) {
			return p.classifyCtorSeed(n, e, env)
		}
		if _, ok := p.Funcs[callee]; ok {
			sum := p.RandSummary(callee)
			if sum.kind == provParam {
				if arg := argAt(e, sum.index); arg != nil {
					// The helper forwards whatever stream/seed its
					// caller provides: classify the actual argument.
					if isRandValueType(typeOf(u, arg)) {
						return p.classifyRand(n, arg, env)
					}
					return p.classifySeed(n, arg, env)
				}
				return trusted
			}
			return sum
		}
		return trusted
	case *ast.Ident:
		if u.Info == nil {
			return trusted
		}
		obj := u.Info.Uses[e]
		if obj == nil {
			return trusted
		}
		if i := paramIndex(n, obj); i >= 0 {
			return provSummary{kind: provParam, index: i}
		}
		if key := globalVarKey(obj); key != "" {
			return provSummary{kind: provGlobal, key: key}
		}
		if sum, ok := env[obj]; ok {
			return sum
		}
		return trusted
	case *ast.SelectorExpr:
		if u.Info != nil {
			if key := globalVarKey(u.Info.Uses[e.Sel]); key != "" {
				return provSummary{kind: provGlobal, key: key}
			}
		}
		return trusted // struct fields: sanctioned at their own store sites
	}
	return trusted
}

// classifyCtorSeed resolves the provenance of a raw math/rand
// constructor call from its seed argument: rand.New(rand.NewSource(s))
// and rand.NewSource(s) both classify as s does.
func (p *Program) classifyCtorSeed(n *FuncNode, call *ast.CallExpr, env provEnv) provSummary {
	if len(call.Args) == 0 {
		return trusted
	}
	arg := ast.Unparen(call.Args[0])
	if inner, ok := arg.(*ast.CallExpr); ok {
		if callee, _ := p.resolveCallee(n, n.Unit, inner.Fun); callee != "" && matchesAny(callee, rawRandCtors) {
			return p.classifyCtorSeed(n, inner, env)
		}
	}
	if isRandValueType(typeOf(n.Unit, arg)) {
		return p.classifyRand(n, arg, env)
	}
	return p.classifySeed(n, arg, env)
}

// classifySeed determines the provenance of an integer seed expression.
func (p *Program) classifySeed(n *FuncNode, e ast.Expr, env provEnv) provSummary {
	u := n.Unit
	switch e := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		return provSummary{kind: provRaw}
	case *ast.UnaryExpr:
		return p.classifySeed(n, e.X, env)
	case *ast.BinaryExpr:
		// Seed arithmetic keeps the best provenance of its operands:
		// mixing a derived seed with a constant stays derived.
		return bestProv(p.classifySeed(n, e.X, env), p.classifySeed(n, e.Y, env))
	case *ast.CallExpr:
		if isConversion(u, e) {
			return p.classifySeed(n, e.Args[0], env)
		}
		callee, _ := p.resolveCallee(n, u, e.Fun)
		if callee == "" {
			return trusted
		}
		if idHasSuffix(callee, "internal/rng.Derive") {
			return provSummary{kind: provDerived}
		}
		if _, ok := p.Funcs[callee]; ok {
			sum := p.SeedSummary(callee)
			if sum.kind == provParam {
				if arg := argAt(e, sum.index); arg != nil {
					return p.classifySeed(n, arg, env)
				}
				return trusted
			}
			return sum
		}
		return trusted
	case *ast.Ident:
		if u.Info == nil {
			return trusted
		}
		obj := u.Info.Uses[e]
		if obj == nil {
			return trusted
		}
		if _, isConst := obj.(*types.Const); isConst {
			return provSummary{kind: provRaw}
		}
		if i := paramIndex(n, obj); i >= 0 {
			return provSummary{kind: provParam, index: i}
		}
		if key := globalVarKey(obj); key != "" {
			return provSummary{kind: provGlobal, key: key}
		}
		if sum, ok := env[obj]; ok {
			return sum
		}
		return trusted
	}
	return trusted
}

// provRank orders provenance from most to least sanctioned.
func provRank(k provKind) int {
	switch k {
	case provDerived:
		return 0
	case provParam:
		return 1
	case provTrusted:
		return 2
	case provGlobal:
		return 3
	case provRaw:
		return 4
	}
	return 2
}

func bestProv(a, b provSummary) provSummary {
	if provRank(a.kind) <= provRank(b.kind) {
		return a
	}
	return b
}

// RandSummary computes the provenance of the *rand.Rand values a
// function returns, joined across return sites. Functions with no rand
// results, mixed provenance, or recursion resolve to trusted.
func (p *Program) RandSummary(id FuncID) provSummary {
	if sum, ok := p.randMemo[id]; ok {
		return sum
	}
	if p.randActive[id] {
		return trusted
	}
	n := p.Funcs[id]
	if n == nil {
		return trusted
	}
	p.randActive[id] = true
	sum := p.returnSummary(n, func(e ast.Expr) (provSummary, bool) {
		if t := n.Unit.Info.TypeOf(e); isRandValueType(t) {
			return p.classifyRand(n, e, p.buildProvEnv(n)), true
		}
		return trusted, false
	})
	delete(p.randActive, id)
	p.randMemo[id] = sum
	return sum
}

// SeedSummary is RandSummary for integer-returning seed helpers.
func (p *Program) SeedSummary(id FuncID) provSummary {
	if sum, ok := p.seedMemo[id]; ok {
		return sum
	}
	if p.seedActive[id] {
		return trusted
	}
	n := p.Funcs[id]
	if n == nil {
		return trusted
	}
	p.seedActive[id] = true
	sum := p.returnSummary(n, func(e ast.Expr) (provSummary, bool) {
		if t := n.Unit.Info.TypeOf(e); t != nil && isIntegerType(t) {
			return p.classifySeed(n, e, p.buildProvEnv(n)), true
		}
		return trusted, false
	})
	delete(p.seedActive, id)
	p.seedMemo[id] = sum
	return sum
}

// returnSummary joins classify over every matching returned expression.
func (p *Program) returnSummary(n *FuncNode, classify func(ast.Expr) (provSummary, bool)) provSummary {
	body := n.body()
	if body == nil || n.Unit.Info == nil {
		return trusted
	}
	var (
		joined provSummary
		seen   bool
	)
	inspectShallow(body, func(node ast.Node) {
		ret, ok := node.(*ast.ReturnStmt)
		if !ok {
			return
		}
		for _, res := range ret.Results {
			sum, ok := classify(res)
			if !ok {
				continue
			}
			if !seen {
				joined, seen = sum, true
			} else if joined != sum {
				joined = trusted
			}
		}
	})
	if !seen {
		return trusted
	}
	return joined
}

// ---------------------------------------------------------------------
// Map-ordered returns
// ---------------------------------------------------------------------

// ReturnsMapOrdered reports whether id returns a slice whose element
// order was inherited from a map iteration with no sort in between —
// the shape that leaks nondeterministic order across a function
// boundary.
func (p *Program) ReturnsMapOrdered(id FuncID) bool {
	switch p.mapRetMemo[id] {
	case 1:
		return true
	case 2:
		return false
	}
	if p.mapRetBusy[id] {
		return false
	}
	n := p.Funcs[id]
	if n == nil {
		return false
	}
	p.mapRetBusy[id] = true
	res := p.computeMapRet(n)
	delete(p.mapRetBusy, id)
	if res {
		p.mapRetMemo[id] = 1
	} else {
		p.mapRetMemo[id] = 2
	}
	return res
}

func (p *Program) computeMapRet(n *FuncNode) bool {
	body := n.body()
	u := n.Unit
	if body == nil || u.Info == nil {
		return false
	}
	// Variables accumulated under a map range (including the plain
	// key-collection idiom: the keys themselves are map-ordered).
	accum := map[string]bool{}
	inspectShallow(body, func(node ast.Node) {
		rs, ok := node.(*ast.RangeStmt)
		if !ok {
			return
		}
		t := u.Info.TypeOf(rs.X)
		if t == nil {
			return
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return
		}
		for _, v := range appendTargets(rs) {
			accum[v] = true
		}
	})
	if len(accum) == 0 {
		// No direct accumulation: a returned call to another
		// map-ordered function still propagates the order.
		return p.returnsMapOrderedCall(n)
	}
	// A sort anywhere in the function launders the order.
	sorts := collectSortsUnit(u, body)
	for v := range sorts {
		delete(accum, v)
	}
	if len(accum) == 0 {
		return p.returnsMapOrderedCall(n)
	}
	returned := false
	inspectShallow(body, func(node ast.Node) {
		ret, ok := node.(*ast.ReturnStmt)
		if !ok {
			return
		}
		for _, res := range ret.Results {
			if ident, ok := ast.Unparen(res).(*ast.Ident); ok && accum[ident.Name] {
				returned = true
			}
		}
	})
	return returned || p.returnsMapOrderedCall(n)
}

// returnsMapOrderedCall reports whether n returns the result of another
// function that itself returns a map-ordered slice.
func (p *Program) returnsMapOrderedCall(n *FuncNode) bool {
	body := n.body()
	found := false
	inspectShallow(body, func(node ast.Node) {
		ret, ok := node.(*ast.ReturnStmt)
		if !ok {
			return
		}
		for _, res := range ret.Results {
			call, ok := ast.Unparen(res).(*ast.CallExpr)
			if !ok {
				continue
			}
			if callee, _ := p.resolveCallee(n, n.Unit, call.Fun); callee != "" {
				if _, ok := p.Funcs[callee]; ok && p.ReturnsMapOrdered(callee) {
					found = true
				}
			}
		}
	})
	return found
}

// collectSortsUnit records which variable names are passed to sort.* /
// slices.Sort* anywhere under node.
func collectSortsUnit(u *Unit, node ast.Node) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(node, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !sortCalls[sel.Sel.Name] {
			return true
		}
		pkg := ""
		if id, ok := sel.X.(*ast.Ident); ok {
			pkg = id.Name
			if u.Info != nil {
				if pn, ok := u.Info.Uses[id].(*types.PkgName); ok {
					pkg = pn.Imported().Path()
				}
			}
		}
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		if id, ok := unwrapConversion(call.Args[0]).(*ast.Ident); ok {
			out[id.Name] = true
		}
		return true
	})
	return out
}

// appendTargets lists the outer variables appended to inside a map
// range body (conversions of the key included).
func appendTargets(rs *ast.RangeStmt) []string {
	var out []string
	ast.Inspect(rs.Body, func(node ast.Node) bool {
		asg, ok := node.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range asg.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				continue
			}
			if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
				continue
			}
			if i < len(asg.Lhs) {
				if id, ok := asg.Lhs[i].(*ast.Ident); ok {
					out = append(out, id.Name)
				}
			}
		}
		return true
	})
	return out
}
