// Quickstart: the paper's §2 local leader election, run directly on the
// abstract broadcast neighborhood.
//
// Ten nodes observe a common implicit synchronization point, each draws
// a metric-derived backoff delay, the first to fire announces itself,
// and everyone else cancels. An arbiter acknowledges the winner and
// would re-trigger the round if a collision had destroyed it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"routeless"
)

func main() {
	const nodes = 10
	kernel := routeless.NewKernel(2026)

	// The abstract medium: a clique with 100 µs latency, a 5 µs
	// collision window, and 10% random loss per link.
	cluster := routeless.NewCluster(kernel, nodes+1, 100e-6, 5e-6, 0.10, kernel.Rand())
	cluster.ConnectAll()

	// Metric: hop-gradient priority, as Routeless Routing uses it. Node
	// i pretends to be i+1 hops from a target with 3 hops expected, so
	// nodes 0–2 compete in the lowest delay band.
	policy := routeless.HopGradientPolicy{Lambda: 2e-3}

	electors := make([]*routeless.Elector, nodes)
	for i := range electors {
		e := routeless.NewElector(kernel, routeless.NodeID(i), cluster, policy)
		e.OnOutcome = func(o routeless.ElectionOutcome) {
			if o.Won {
				fmt.Printf("t=%6.2fms  node %v: I am the leader of round %d\n",
					kernel.Now().Millis(), o.Leader, o.Round)
			} else {
				fmt.Printf("t=%6.2fms  node %v: accepted leader %v\n",
					kernel.Now().Millis(), e.ID(), o.Leader)
			}
		}
		electors[i] = e
		cluster.AttachElector(e)
	}

	// The arbiter (§2's reliability extension) triggers the round and
	// acknowledges the winner; on silence it re-triggers.
	arbiter := routeless.NewArbiter(kernel, routeless.NodeID(nodes), cluster, 10e-3)
	arbiter.OnElected = func(leader routeless.NodeID, round uint32) {
		fmt.Printf("t=%6.2fms  arbiter: acknowledged %v (round %d)\n",
			kernel.Now().Millis(), leader, round)
	}
	cluster.AttachArbiter(arbiter)

	// Feed each elector its metric context when the sync point fires.
	ctxs := map[routeless.NodeID]routeless.PolicyContext{}
	for i := 0; i < nodes; i++ {
		ctxs[routeless.NodeID(i)] = routeless.PolicyContext{
			HopsToTarget: i + 1,
			ExpectedHops: 3,
		}
	}
	cluster.TriggerAll(1, ctxs)
	arbiter.Trigger() // also counts as round bookkeeping for the ACK

	kernel.Run()

	st := cluster.Stats()
	fmt.Printf("\nmedium: %d broadcasts, %d delivered, %d lost, %d collided\n",
		st.Broadcasts, st.Delivered, st.Lost, st.Collided)
	fmt.Printf("arbiter view: leader = %v after %d trigger(s)\n",
		arbiter.Leader(), arbiter.Stats().Triggers)
}
