package sim

// Timer is a restartable, cancellable one-shot timer bound to a kernel.
// It is the building block for protocol timeouts: backoff timers,
// arbiter retransmission timers, hello intervals.
//
// Unlike scheduling raw events, a Timer guarantees that at most one
// firing is pending at a time: Reset implicitly cancels the previous
// schedule.
type Timer struct {
	kernel *Kernel
	fn     func()
	fireFn func() // t.fire bound once; rebinding per Reset would allocate
	ev     *Event
	fires  uint64
	tagged bool
}

// NewTimer returns a stopped timer that runs fn on expiry.
func NewTimer(k *Kernel, fn func()) *Timer {
	t := &Timer{}
	InitTimer(t, k, fn)
	return t
}

// InitTimer initializes a stopped timer in place — the value-embedding
// alternative to NewTimer for owners that hold the Timer inline (one
// fewer heap object per node at mega scale). The timer captures its own
// address, so the owner must not be copied afterwards.
func InitTimer(t *Timer, k *Kernel, fn func()) {
	if fn == nil {
		panic("sim: nil timer callback")
	}
	*t = Timer{kernel: k, fn: fn}
	t.fireFn = t.fire
}

// MarkTagged makes every subsequent schedule of this timer a tagged
// event (see Kernel.AtTagged). PDES tags timers whose expiry can start
// a radio transmission; on kernels without tag tracking the mark is
// inert.
func (t *Timer) MarkTagged() { t.tagged = true }

// Reset (re)schedules the timer to fire after delay, cancelling any
// pending expiry.
func (t *Timer) Reset(delay Time) {
	t.Stop()
	if t.tagged {
		t.ev = t.kernel.ScheduleTagged(delay, t.fireFn)
	} else {
		t.ev = t.kernel.Schedule(delay, t.fireFn)
	}
}

// ResetAt (re)schedules the timer to fire at absolute time at.
func (t *Timer) ResetAt(at Time) {
	t.Stop()
	if t.tagged {
		t.ev = t.kernel.AtTagged(at, t.fireFn)
	} else {
		t.ev = t.kernel.At(at, t.fireFn)
	}
}

func (t *Timer) fire() {
	t.ev = nil
	t.fires++
	t.fn()
}

// Stop cancels a pending expiry; it is a no-op on a stopped timer.
func (t *Timer) Stop() {
	if t.ev != nil {
		t.kernel.Cancel(t.ev)
		t.ev = nil
	}
}

// Pending reports whether the timer is scheduled to fire.
func (t *Timer) Pending() bool { return t.ev.Pending() }

// Deadline returns the time of the pending expiry; it is only
// meaningful when Pending is true.
func (t *Timer) Deadline() Time {
	if t.ev == nil {
		return Infinity
	}
	return t.ev.At()
}

// Fires returns how many times the timer has expired (not counting
// stopped or reset schedules). Useful in tests and retry counters.
func (t *Timer) Fires() uint64 { return t.fires }

// Ticker repeatedly invokes a callback at a fixed period until stopped.
// Protocol beacons (AODV hello messages, CBR sources) are tickers.
type Ticker struct {
	timer  *Timer
	period Time
	fn     func()
}

// NewTicker returns a stopped ticker with the given period.
func NewTicker(k *Kernel, period Time, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{period: period, fn: fn}
	t.timer = NewTimer(k, t.tick)
	return t
}

func (t *Ticker) tick() {
	t.timer.Reset(t.period)
	t.fn()
}

// Start schedules the first tick after one period.
func (t *Ticker) Start() { t.timer.Reset(t.period) }

// StartAfter schedules the first tick after the given delay; subsequent
// ticks follow at the ticker's period. Use it to de-phase periodic
// processes across nodes.
func (t *Ticker) StartAfter(delay Time) { t.timer.Reset(delay) }

// Stop cancels future ticks.
func (t *Ticker) Stop() { t.timer.Stop() }

// Pending reports whether a tick is scheduled.
func (t *Ticker) Pending() bool { return t.timer.Pending() }

// SetPeriod changes the period used for ticks scheduled after the call.
func (t *Ticker) SetPeriod(p Time) {
	if p <= 0 {
		panic("sim: ticker period must be positive")
	}
	t.period = p
}
