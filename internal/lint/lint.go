// Package lint is a small, stdlib-only static-analysis engine that
// enforces the simulator's determinism invariants. The paper's results
// are reproducible only because every run is bit-for-bit deterministic
// from its seed; these invariants used to live in package comments, and
// this package makes them mechanically checked.
//
// The engine mirrors the shape of golang.org/x/tools/go/analysis
// without the dependency: an Analyzer inspects one type-checked package
// unit through a Pass and reports position-accurate Diagnostics. The
// cmd/simlint driver loads every package under a module root (see
// load.go) and fails the build on findings.
//
// False positives are silenced in source with
//
//	//lint:ignore <rule> <reason>
//
// placed on the offending line or the line directly above it. The
// reason is mandatory: an unexplained suppression is itself reported.
package lint

import (
	"cmp"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"slices"
	"strings"
)

// Analyzer is one named rule. Run inspects the package unit behind the
// Pass and reports findings through it.
type Analyzer struct {
	Name string      // rule name used in output and //lint:ignore
	Doc  string      // one-line description of the invariant
	Run  func(*Pass) // inspection body; must not retain the Pass
}

// Diagnostic is one finding, positioned for editors and CI logs.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Rule, d.Message)
}

// Pass hands one type-checked package unit to an analyzer. Type
// information may be partial when the loader degraded (missing stdlib
// export data, parse errors in a dependency); analyzers must tolerate
// nil entries in Info maps.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package // may be nil when type checking failed entirely
	Info  *types.Info
	Path  string // import path of the unit, e.g. "routeless/internal/sim"

	// Prog is the whole-module view backing the flow-aware rules:
	// call graph, taint summaries, entry points. May be nil (a bare
	// Run on one unit), in which case flow-aware rules degrade to
	// their syntactic core and the sharedstate analyzer is silent.
	Prog *Program

	unit  *Unit
	rule  string
	diags *[]Diagnostic
}

// Reportf records a finding at pos under the running analyzer's rule
// name.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// InInternal reports whether the unit lives under an internal/ tree.
func (p *Pass) InInternal() bool {
	return strings.Contains(p.Path, "/internal/") ||
		strings.HasSuffix(p.Path, "/internal") ||
		strings.HasPrefix(p.Path, "internal/")
}

// InCmd reports whether the unit is a command under cmd/.
func (p *Pass) InCmd() bool {
	return strings.Contains(p.Path, "/cmd/") || strings.HasPrefix(p.Path, "cmd/")
}

// InExamples reports whether the unit is example code.
func (p *Pass) InExamples() bool {
	return strings.Contains(p.Path, "/examples/") || strings.HasPrefix(p.Path, "examples/")
}

// IsTestFile reports whether the file containing pos is a _test.go
// file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// PkgNameOf resolves the selector's receiver to an imported package
// path, or "" when sel.X is not a plain package qualifier (method
// calls, field accesses, unresolved identifiers).
func (p *Pass) PkgNameOf(sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok || p.Info == nil {
		return ""
	}
	if pn, ok := p.Info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// TypeOf returns the type of e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	file   string
	line   int
	rule   string // "*" matches every rule
	reason string
	used   bool
}

const ignorePrefix = "//lint:ignore"

// parseIgnores extracts suppression directives from every file of the
// unit. Malformed directives (no rule, or no reason) are reported as
// findings themselves so they cannot silently rot.
func parseIgnores(fset *token.FileSet, files []*ast.File, diags *[]Diagnostic) []*ignoreDirective {
	var out []*ignoreDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				fields := strings.Fields(rest)
				pos := fset.Position(c.Pos())
				if len(fields) < 2 {
					*diags = append(*diags, Diagnostic{
						Pos:     pos,
						Rule:    "ignore",
						Message: "malformed directive: want //lint:ignore <rule> <reason>",
					})
					continue
				}
				out = append(out, &ignoreDirective{
					file:   pos.Filename,
					line:   fset.Position(c.End()).Line,
					rule:   fields[0],
					reason: strings.Join(fields[1:], " "),
				})
			}
		}
	}
	return out
}

// suppressed reports whether d is covered by a directive on its line or
// the line above, and marks the directive used.
func suppressed(d Diagnostic, dirs []*ignoreDirective) bool {
	for _, dir := range dirs {
		if dir.file != d.Pos.Filename {
			continue
		}
		if dir.rule != d.Rule && dir.rule != "*" {
			continue
		}
		if dir.line == d.Pos.Line || dir.line == d.Pos.Line-1 {
			dir.used = true
			return true
		}
	}
	return false
}

// Unit is one loadable package unit ready for analysis.
type Unit struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	Path  string
}

// runRaw applies every analyzer to one unit of prog, appending raw
// (unsuppressed) findings to raw.
func runRaw(prog *Program, u *Unit, analyzers []*Analyzer, raw *[]Diagnostic) {
	for _, a := range analyzers {
		pass := &Pass{
			Fset:  u.Fset,
			Files: u.Files,
			Pkg:   u.Pkg,
			Info:  u.Info,
			Path:  u.Path,
			Prog:  prog,
			unit:  u,
			rule:  a.Name,
			diags: raw,
		}
		a.Run(pass)
	}
}

// filterUnit applies u's //lint:ignore directives to raw findings,
// appending survivors (plus directive hygiene findings) to out, and
// returns the parsed directives with their used marks for auditing
// along with the number of findings they silenced.
func filterUnit(u *Unit, raw []Diagnostic, out *[]Diagnostic) ([]*ignoreDirective, int) {
	dirs := parseIgnores(u.Fset, u.Files, out)
	// Directives are validated against the full registry, not the
	// analyzers selected for this run: a -rules subset must not turn
	// legitimate suppressions of unselected rules into findings.
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	silenced := 0
	for _, d := range raw {
		if suppressed(d, dirs) {
			silenced++
		} else {
			*out = append(*out, d)
		}
	}
	for _, dir := range dirs {
		if dir.rule != "*" && !known[dir.rule] {
			dir.used = true // already reported as unknown; not also stale
			*out = append(*out, Diagnostic{
				Pos:     token.Position{Filename: dir.file, Line: dir.line},
				Rule:    "ignore",
				Message: fmt.Sprintf("directive suppresses unknown rule %q", dir.rule),
			})
		}
	}
	return dirs, silenced
}

func sortDiagnostics(out []Diagnostic) {
	slices.SortFunc(out, func(x, y Diagnostic) int {
		a, b := x.Pos, y.Pos
		if c := cmp.Compare(a.Filename, b.Filename); c != 0 {
			return c
		}
		if c := cmp.Compare(a.Line, b.Line); c != 0 {
			return c
		}
		return cmp.Compare(a.Column, b.Column)
	})
}

// RunUnit applies every analyzer to one unit with prog supplying the
// flow-aware context, returning surviving diagnostics sorted by
// position.
func RunUnit(prog *Program, u *Unit, analyzers []*Analyzer) []Diagnostic {
	var raw []Diagnostic
	runRaw(prog, u, analyzers, &raw)
	var out []Diagnostic
	_, _ = filterUnit(u, raw, &out)
	sortDiagnostics(out)
	return out
}

// Run applies every analyzer to the unit in isolation: the flow-aware
// context is built from this one unit, so intraprocedural and
// intra-package interprocedural facts are available, cross-package ones
// are not.
func Run(u *Unit, analyzers []*Analyzer) []Diagnostic {
	return RunUnit(BuildProgram([]*Unit{u}), u, analyzers)
}

// StaleDirective is a //lint:ignore comment that suppressed nothing in
// a full-rule-set run: the finding it once silenced is gone and the
// directive is rotting in place.
type StaleDirective struct {
	Pos    token.Position
	Rule   string
	Reason string
}

func (s StaleDirective) String() string {
	return fmt.Sprintf("%s: audit: //lint:ignore %s suppresses nothing (stale; delete it)", s.Pos, s.Rule)
}

// Result is the outcome of a whole-program analysis.
type Result struct {
	Diags      []Diagnostic     // surviving findings, sorted by position
	Stale      []StaleDirective // directives that suppressed nothing
	Suppressed int              // findings silenced by directives
}

// Analyze runs analyzers over every unit of prog with full flow-aware
// context and directive auditing. Stale detection is only meaningful
// when analyzers is the full rule set: a subset run would report
// directives for unselected rules as stale.
func Analyze(prog *Program, analyzers []*Analyzer) *Result {
	res := &Result{}
	for _, u := range prog.Units {
		var raw []Diagnostic
		runRaw(prog, u, analyzers, &raw)
		dirs, silenced := filterUnit(u, raw, &res.Diags)
		res.Suppressed += silenced
		for _, dir := range dirs {
			if !dir.used {
				res.Stale = append(res.Stale, StaleDirective{
					Pos:    token.Position{Filename: dir.file, Line: dir.line},
					Rule:   dir.rule,
					Reason: dir.reason,
				})
			}
		}
	}
	sortDiagnostics(res.Diags)
	slices.SortFunc(res.Stale, func(a, b StaleDirective) int {
		if c := cmp.Compare(a.Pos.Filename, b.Pos.Filename); c != 0 {
			return c
		}
		return cmp.Compare(a.Pos.Line, b.Pos.Line)
	})
	return res
}

// All returns the full determinism rule set in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		GlobalRand,
		WallClock,
		MapOrder,
		Goroutine,
		FloatEq,
		SortPkg,
		StatsMut,
		SharedCap,
		FaultRand,
		SharedState,
	}
}
