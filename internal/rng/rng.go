// Package rng provides deterministic random-stream derivation for
// simulations. A single master seed is split into independent child
// streams (per node, per protocol layer, per experiment replication)
// with SplitMix64, so that adding a consumer of randomness in one part
// of the system does not perturb the draws seen by another — a property
// plain sequential use of one rand.Rand does not have.
package rng

import "math/rand"

// splitmix64 advances the state and returns the next output. It is the
// standard SplitMix64 generator (Steele, Lea, Flood; JDK 8), used here
// only for seed derivation, not as the simulation RNG itself.
func splitmix64(state uint64) (uint64, uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return state, z ^ (z >> 31)
}

// Derive deterministically combines a parent seed with an arbitrary set
// of stream labels and returns a child seed. Derive(s, a, b) differs
// from Derive(s, b, a) and from Derive(s, a) — labels are positional.
func Derive(seed int64, labels ...uint64) int64 {
	state := uint64(seed) ^ 0x6a09e667f3bcc908 // golden offset keeps seed 0 usable
	var out uint64
	state, out = splitmix64(state)
	for _, l := range labels {
		state ^= l * 0x9e3779b97f4a7c15
		state, out = splitmix64(state)
	}
	return int64(out)
}

// New returns a rand.Rand seeded from the parent seed and labels via
// Derive.
func New(seed int64, labels ...uint64) *rand.Rand {
	return rand.New(rand.NewSource(Derive(seed, labels...)))
}

// compactSource is an 8-byte SplitMix64-backed rand.Source64. The
// stdlib rngSource behind rand.NewSource carries a ~4.9 KB lag table —
// two of those per node (network layer + MAC) dominate per-node memory
// at mega scale. SplitMix64 passes BigCrush and its full 2^64 period is
// orders of magnitude beyond any simulation's draw count; the draws
// differ from the stdlib source, so compact streams are opt-in
// (node.Config.CompactRNG) and never used where golden journals pin the
// stdlib sequence.
type compactSource struct{ state uint64 }

func (s *compactSource) Uint64() uint64 {
	var out uint64
	s.state, out = splitmix64(s.state)
	return out
}

func (s *compactSource) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *compactSource) Seed(seed int64) { s.state = uint64(seed) }

// NewCompact returns a rand.Rand over a compactSource seeded from the
// parent seed and labels via Derive — the O(bytes) alternative to New
// for runs with very many per-node streams.
func NewCompact(seed int64, labels ...uint64) *rand.Rand {
	return rand.New(&compactSource{state: uint64(Derive(seed, labels...))})
}

// ForNodeCompact is ForNode over a compact source: same derivation
// labels, 8-byte state instead of the stdlib lag table.
func ForNodeCompact(seed int64, layer uint64, nodeID int) *rand.Rand {
	return NewCompact(seed, layer, uint64(nodeID)+0x1000)
}

// Stream labels used across the repository, kept in one place so
// different subsystems never collide.
const (
	StreamTopology uint64 = 1 + iota // node placement
	StreamTraffic                    // flow endpoints, start jitter, payloads
	StreamMAC                        // MAC backoff slots
	StreamNet                        // network-layer backoff draws
	StreamFailure                    // duty-cycle failure process
	StreamChannel                    // fading draws
	StreamElection                   // election metric jitter
	StreamFault                      // fault-plane spec streams (jammer walk, link picks)
	StreamFuzz                       // scenario-fuzzer draws (generator, placements, mobility)
)

// ForNode derives a per-node, per-layer stream: same master seed and
// node id always yield the same stream regardless of how many nodes the
// simulation has or in which order they were built.
func ForNode(seed int64, layer uint64, nodeID int) *rand.Rand {
	return New(seed, layer, uint64(nodeID)+0x1000)
}
