package fault

import (
	"slices"

	"routeless/internal/digest"
)

// DigestState folds the injector's mutable state into h: every crash
// process's phase machine (install order — fixed by the plan) and the
// set of currently shadowed links in sorted order. Tickers and the
// scheduled restore events are captured by the kernel's pending-event
// digest; the fault counters roll up through the metrics digest.
func (inj *Injector) DigestState(h *digest.Hash) {
	h.Int(len(inj.crashes))
	for _, fp := range inj.crashes {
		fp.DigestState(h)
	}
	h.Int(len(inj.degraded))
	keys := make([][2]int32, 0, len(inj.degraded))
	for k := range inj.degraded {
		keys = append(keys, k)
	}
	slices.SortFunc(keys, func(a, b [2]int32) int {
		if a[0] != b[0] {
			return int(a[0]) - int(b[0])
		}
		return int(a[1]) - int(b[1])
	})
	for _, k := range keys {
		h.Int64(int64(k[0]))
		h.Int64(int64(k[1]))
	}
}
