package parallel

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestMapOrderPreserved(t *testing.T) {
	out := Map(4, 100, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapSingleWorkerSerial(t *testing.T) {
	var order []int
	Map(1, 10, func(i int) int {
		order = append(order, i)
		return i
	})
	for i, v := range order {
		if v != i {
			t.Fatal("single worker should run in order")
		}
	}
}

func TestMapZeroN(t *testing.T) {
	if out := Map(4, 0, func(i int) int { return i }); out != nil {
		t.Fatal("n=0 should return nil")
	}
}

func TestMapDefaultWorkers(t *testing.T) {
	out := Map(0, 50, func(i int) int { return i })
	if len(out) != 50 {
		t.Fatal("default worker count failed")
	}
}

func TestMapEachIndexOnce(t *testing.T) {
	var counts [200]int32
	Map(8, 200, func(i int) struct{} {
		atomic.AddInt32(&counts[i], 1)
		return struct{}{}
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

func TestForEach(t *testing.T) {
	var sum int64
	ForEach(4, 100, func(i int) { atomic.AddInt64(&sum, int64(i)) })
	if sum != 4950 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestMapPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic was swallowed")
		}
		if s, ok := r.(string); !ok || s != "boom" {
			t.Fatalf("re-raised panic = %v, want \"boom\"", r)
		}
	}()
	Map(4, 100, func(i int) int {
		if i == 37 {
			panic("boom")
		}
		return i
	})
	t.Fatal("Map returned normally despite worker panic")
}

func TestMapPanicDoesNotAbandonWork(t *testing.T) {
	// One worker dies on its first item; the others must still drain
	// the pre-filled queue rather than deadlock or drop indices.
	var ran [64]int32
	func() {
		defer func() { _ = recover() }()
		Map(4, 64, func(i int) int {
			if i == 0 {
				panic("first item")
			}
			atomic.AddInt32(&ran[i], 1)
			return i
		})
	}()
	for i := 1; i < 64; i++ {
		if atomic.LoadInt32(&ran[i]) != 1 {
			t.Fatalf("index %d ran %d times after a worker panic", i, ran[i])
		}
	}
}

// Property: parallel result equals serial result for any worker count.
func TestQuickParallelEqualsSerial(t *testing.T) {
	f := func(workers uint8, n uint8) bool {
		w := int(workers%16) + 1
		size := int(n)
		fn := func(i int) int { return i*31 + 7 }
		par := Map(w, size, fn)
		ser := Map(1, size, fn)
		if len(par) != len(ser) {
			return false
		}
		for i := range par {
			if par[i] != ser[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
