package node

import (
	"math/rand"

	"routeless/internal/geo"
	"routeless/internal/sim"
)

// Waypoint implements the random-waypoint mobility model, the standard
// MANET mobility generator: pick a uniform destination in the terrain,
// walk there at a uniform-random speed, pause, repeat. The paper's own
// evaluation is static (failures model dynamics instead), but Routeless
// Routing's route-free design targets "wireless networks with dynamic
// topological changes" — this extension lets that claim be tested.
type Waypoint struct {
	// MinSpeed and MaxSpeed bound the leg speed in m/s; defaults 1, 5.
	MinSpeed, MaxSpeed float64
	// MinPause and MaxPause bound the dwell at each waypoint in
	// seconds; defaults 0, 2.
	MinPause, MaxPause float64
	// Tick is the position-update quantum in seconds; default 0.25.
	Tick float64

	nw    *Network
	node  *Node
	rng   *rand.Rand
	rect  geo.Rect
	timer *sim.Timer

	dest    geo.Point
	speed   float64
	legs    uint64
	moving  bool
	stopped bool
}

// NewWaypoint builds a stopped mobility process for n over its
// network's terrain.
func NewWaypoint(nw *Network, n *Node, r *rand.Rand) *Waypoint {
	w := &Waypoint{
		MinSpeed: 1, MaxSpeed: 5,
		MinPause: 0, MaxPause: 2,
		Tick: 0.25,
		nw:   nw, node: n, rng: r, rect: nw.Rect,
	}
	// Mobility is control-plane like failures; note tiled networks
	// reject MoveNode outright, so waypoints only run sequentially.
	w.timer = sim.NewTimer(n.Ctl, w.step)
	return w
}

// Start begins the first pause-then-move cycle.
func (w *Waypoint) Start() {
	w.stopped = false
	w.pause()
}

// Stop freezes the node at its current position.
func (w *Waypoint) Stop() {
	w.stopped = true
	w.timer.Stop()
}

// Legs returns how many waypoints have been reached.
func (w *Waypoint) Legs() uint64 { return w.legs }

func (w *Waypoint) uniform(lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return lo + w.rng.Float64()*(hi-lo)
}

func (w *Waypoint) pause() {
	w.moving = false
	w.timer.Reset(sim.Time(w.uniform(w.MinPause, w.MaxPause)))
}

func (w *Waypoint) pickLeg() {
	w.dest = geo.Point{
		X: w.rect.Min.X + w.rng.Float64()*w.rect.Width(),
		Y: w.rect.Min.Y + w.rng.Float64()*w.rect.Height(),
	}
	w.speed = w.uniform(w.MinSpeed, w.MaxSpeed)
	w.moving = true
	w.timer.Reset(sim.Time(w.Tick))
}

func (w *Waypoint) step() {
	if w.stopped {
		return
	}
	if !w.moving {
		w.pickLeg()
		return
	}
	pos := w.node.Pos
	remaining := pos.Dist(w.dest)
	stride := w.speed * w.Tick
	if stride >= remaining {
		w.nw.MoveNode(w.node.ID, w.dest)
		w.legs++
		w.pause()
		return
	}
	frac := stride / remaining
	w.nw.MoveNode(w.node.ID, geo.Point{
		X: pos.X + (w.dest.X-pos.X)*frac,
		Y: pos.Y + (w.dest.Y-pos.Y)*frac,
	})
	w.timer.Reset(sim.Time(w.Tick))
}
