package geo

import "math"

// Tiling partitions a rectangle into a fixed cols×rows lattice of
// equal tiles. It is the arena decomposition for tiled PDES: every
// node is assigned to exactly one tile, each tile runs on its own
// event kernel, and signals that cross a tile border are exchanged at
// epoch barriers.
//
// Assignment uses the same min-inclusive binning as Grid.cellOf: a
// point exactly on a shared edge belongs to the tile on the
// higher-coordinate side, and points on (or clamped to) the terrain
// maximum fall into the last tile. The rule is pure arithmetic on the
// position, so a point's tile is deterministic and independent of
// insertion order.
type Tiling struct {
	rect  Rect
	cols  int
	rows  int
	tileW float64
	tileH float64
}

// NewTiling splits rect into `tiles` tiles arranged as near-square as
// the count allows: cols is the largest divisor of tiles not exceeding
// √tiles (so 4 → 2×2, 16 → 4×4, 8 → 2×4, primes degenerate to 1×n).
func NewTiling(rect Rect, tiles int) Tiling {
	if tiles < 1 {
		panic("geo: tiling needs at least one tile")
	}
	cols := 1
	for d := int(math.Sqrt(float64(tiles))); d >= 1; d-- {
		if tiles%d == 0 {
			cols = d
			break
		}
	}
	rows := tiles / cols
	return Tiling{
		rect:  rect,
		cols:  cols,
		rows:  rows,
		tileW: rect.Width() / float64(cols),
		tileH: rect.Height() / float64(rows),
	}
}

// NewTilingXY splits rect into an explicit cols×rows lattice.
func NewTilingXY(rect Rect, cols, rows int) Tiling {
	if cols < 1 || rows < 1 {
		panic("geo: tiling needs at least one column and row")
	}
	return Tiling{
		rect:  rect,
		cols:  cols,
		rows:  rows,
		tileW: rect.Width() / float64(cols),
		tileH: rect.Height() / float64(rows),
	}
}

// AutoTiling chooses a tile lattice for rect from the physical
// interaction range: each tile side is at least minSide (callers pass
// twice the channel's interference cutoff, so a tile's interior
// dwarfs its boundary band and the conservative PDES window stays
// wide), and the lattice is as fine as that allows. A rect smaller
// than minSide in a dimension degenerates to one tile along it; the
// 1M-node Figure-1-density arena (100 km side, 550 m cutoff) yields
// 90×90 tiles.
func AutoTiling(rect Rect, minSide float64) Tiling {
	if minSide <= 0 {
		panic("geo: auto tiling needs a positive minimum tile side")
	}
	cols := int(rect.Width() / minSide)
	rows := int(rect.Height() / minSide)
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	return NewTilingXY(rect, cols, rows)
}

// Tiles returns the total tile count.
func (t Tiling) Tiles() int { return t.cols * t.rows }

// Cols returns the number of tile columns.
func (t Tiling) Cols() int { return t.cols }

// Rows returns the number of tile rows.
func (t Tiling) Rows() int { return t.rows }

// TileOf returns the tile index of p (row-major). Points outside the
// rectangle are clamped into the border tiles, mirroring Grid.cellOf.
func (t Tiling) TileOf(p Point) int {
	cx := int((p.X - t.rect.Min.X) / t.tileW)
	cy := int((p.Y - t.rect.Min.Y) / t.tileH)
	if cx < 0 {
		cx = 0
	}
	if cx >= t.cols {
		cx = t.cols - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= t.rows {
		cy = t.rows - 1
	}
	return cy*t.cols + cx
}

// Bounds returns tile i's rectangle. Interior edges are shared: a
// tile's Max.X equals its right neighbor's Min.X, and TileOf assigns
// points on that edge to the neighbor (Min is inclusive, Max
// exclusive, like Rect.Contains).
func (t Tiling) Bounds(i int) Rect {
	cx, cy := i%t.cols, i/t.cols
	return Rect{
		Min: Point{X: t.rect.Min.X + float64(cx)*t.tileW, Y: t.rect.Min.Y + float64(cy)*t.tileH},
		Max: Point{X: t.rect.Min.X + float64(cx+1)*t.tileW, Y: t.rect.Min.Y + float64(cy+1)*t.tileH},
	}
}
