package sweep

import (
	"testing"

	"routeless/internal/flood"
	"routeless/internal/geo"
	"routeless/internal/node"
	"routeless/internal/sim"
	"routeless/internal/traffic"
)

// raceCell builds a tiny network through the worker's Runtime, floods a
// few packets, and folds the outcome into a comparable fingerprint. It
// is deliberately hostile to the engine: every cell exercises the
// pooled event free list, phy pools, and shared range cache that a
// buggy engine would share across workers.
func raceCell(ctx *Context, i int, c Cell) uint64 {
	nw := node.New(node.Config{
		N:               10,
		Rect:            geo.NewRect(400, 400),
		Range:           250,
		Seed:            c.Seed + int64(c.Point)*1000,
		EnsureConnected: true,
		Runtime:         ctx.Runtime(),
	})
	fcfg := flood.Counter1Config(10e-3)
	nw.Install(func(n *node.Node) node.Protocol {
		return flood.New(&fcfg)
	})
	cbr := traffic.NewCBR(nw.Nodes[0], nw.Nodes[len(nw.Nodes)-1].ID, sim.Time(0.25), 32)
	cbr.Start()
	nw.Run(1.0)
	cbr.Stop()
	nw.Run(2.0)
	if err := nw.CheckInvariants(); err != nil {
		panic(err)
	}
	return nw.MACPackets()*1_000_003 + nw.Kernel.Processed()
}

// TestRaceHammer runs many hostile cells under -race at high worker
// counts and checks the merged results are identical to a serial run.
// Under the race detector this catches any accidental sharing of pooled
// state between workers; without -race it still verifies determinism.
func TestRaceHammer(t *testing.T) {
	if testing.Short() {
		t.Skip("race hammer is slow under -race")
	}
	cells := Cells("hammer", 4, []int64{1, 2, 3, 4})
	serial := Run(1, cells, raceCell)
	for _, workers := range []int{2, 8} {
		got := Run(workers, cells, raceCell)
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: cell %d fingerprint %d != serial %d",
					workers, i, got[i], serial[i])
			}
		}
	}
}

// TestRaceHammerSharedQueue hammers the queue itself: cheap cells, many
// workers, forced stealing. Under -race this exercises claim()'s mutex
// discipline; the assertion is exactly-once execution.
func TestRaceHammerSharedQueue(t *testing.T) {
	const n = 2000
	cells := Cells("q", n, []int64{0})
	counts := make([]int32, n)
	Run(16, cells, func(ctx *Context, i int, c Cell) struct{} {
		counts[i]++ // safe: each index is visited exactly once
		return struct{}{}
	})
	for i, ct := range counts {
		if ct != 1 {
			t.Fatalf("cell %d ran %d times", i, ct)
		}
	}
}
