package node

import (
	"fmt"

	"routeless/internal/geo"
	"routeless/internal/mac"
	"routeless/internal/metrics"
	"routeless/internal/packet"
	"routeless/internal/pdes"
	"routeless/internal/phy"
	"routeless/internal/propagation"
	"routeless/internal/rng"
	"routeless/internal/sim"
)

// Config describes a network to build. Zero-value fields take the
// defaults noted on each field.
type Config struct {
	// N is the node count (ignored when Positions is set).
	N int
	// Rect is the terrain; default 1000×1000 m.
	Rect geo.Rect
	// Positions places nodes explicitly; when nil, N nodes are placed
	// uniformly at random.
	Positions []geo.Point
	// Range is the calibrated transmission range in meters; default 250
	// (the paper's §4.3 value).
	Range float64
	// Model is the propagation model; default free space (§3).
	Model propagation.Model
	// Fader adds small-scale fading; default none.
	Fader propagation.Fader
	// FadeMarginDB widens the channel cutoff under fading; default 12.
	FadeMarginDB float64
	// MAC holds medium-access parameters; default mac.DefaultConfig.
	MAC *mac.Config
	// Seed drives every random stream in the network.
	Seed int64
	// EnsureConnected regenerates random placements (up to 100 draws)
	// until the unit-disk graph is connected, matching the paper's
	// implicit assumption that flooding reaches every node.
	EnsureConnected bool
	// Runtime, when non-nil, supplies externally owned reusable
	// allocation state (event free list, phy pools, range cache) — a
	// sweep worker's run context. Nil builds private state with
	// identical behavior; reuse changes allocation counts only, never
	// results.
	Runtime *Runtime
	// Tiles, when above 1, partitions the arena into that many geo
	// tiles, each with its own kernel advanced by a parallel PDES
	// worker between epoch barriers (see internal/pdes). Results are
	// identical to the sequential network; requires no fading and no
	// mobility. 0 or 1 builds the classic sequential network. The
	// sentinel AutoTiles sizes the tiling from the arena instead: tile
	// sides at least twice the channel's interference cutoff (the
	// minimum sound lookahead geometry), as many tiles as fit.
	Tiles int
	// TileWorkers bounds the PDES worker pool on a tiled run; 0 means
	// GOMAXPROCS. Results are identical for any value.
	TileWorkers int
	// LinkCacheCap, when positive, bounds how many per-node link caches
	// each tile keeps live at once (FIFO eviction, bit-identical
	// rebuilds). Zero keeps every cache — fine up to ~100k nodes;
	// mega-scale runs set a cap to keep link memory O(active).
	LinkCacheCap int
	// CompactRNG switches the per-node network and MAC random streams
	// to 8-byte SplitMix64 sources instead of the stdlib's ~4.9 KB lag
	// tables — the difference between ~10 KB and ~200 B of RNG state
	// per node. The draw sequences differ from the stdlib source, so
	// this is opt-in: results stay deterministic and seed-stable, but
	// are not comparable to a non-compact run of the same seed.
	CompactRNG bool
	// RNG, when non-nil, routes every random-stream creation through
	// the tracker so draw counts become observable state (snapshot
	// fingerprints hash them). Tracked streams produce the identical
	// draw sequences — the tracker observes, never perturbs — so this
	// too changes no results.
	RNG *rng.Tracker
}

// AutoTiles is the Config.Tiles sentinel that sizes the PDES tiling
// automatically from the arena and the channel's interference cutoff.
const AutoTiles = -1

// Runtime is the reusable allocation state one sweep worker owns: the
// kernel event free list, the phy signal/delivery pools, and the
// cross-model range cache. A Runtime warms up on a worker's first run
// and makes every later run on that worker allocate less; it must
// never be shared between networks that run concurrently.
type Runtime struct {
	Events *sim.EventPool
	Phy    *phy.Pools
	Ranges *propagation.SharedRangeCache

	// Per-tile allocation state for tiled networks, grown on demand.
	// Tile kernels run concurrently, so each tile owns its pools; the
	// global kernel keeps using Events (it only runs at barriers, while
	// every tile worker is parked).
	tileEvents []*sim.EventPool
	tilePhy    []*phy.Pools
}

// NewRuntime returns a fresh runtime with empty pools.
func NewRuntime() *Runtime {
	return &Runtime{
		Events: sim.NewEventPool(),
		Phy:    phy.NewPools(),
		Ranges: propagation.NewSharedRangeCache(),
	}
}

// Reset shrinks the runtime's event free lists to the watermark of the
// run(s) since the previous Reset (see sim.EventPool.Reset). The sweep
// engine calls it between cells so a worker that just served the
// sweep's largest cell does not pin that cell's memory for every
// smaller cell that follows. Must not be called while any network
// built on this runtime is still running.
func (rt *Runtime) Reset() {
	rt.Events.Reset()
	for _, p := range rt.tileEvents {
		p.Reset()
	}
}

// tilePools returns per-tile event pools and phy pools for n tiles,
// growing the runtime's slots on first use so consecutive tiled runs on
// one sweep worker reuse warm memory.
func (rt *Runtime) tilePools(n int) ([]*sim.EventPool, []*phy.Pools) {
	for len(rt.tileEvents) < n {
		rt.tileEvents = append(rt.tileEvents, sim.NewEventPool())
		rt.tilePhy = append(rt.tilePhy, phy.NewPools())
	}
	return rt.tileEvents[:n], rt.tilePhy[:n]
}

// Network is a fully assembled simulation: kernel, channel, and nodes.
// Protocols and applications are attached after construction.
type Network struct {
	// Kernel is the simulation kernel on a sequential network, and the
	// global control-lane kernel on a tiled one (fault schedules and
	// other cross-cutting processes live there; its handlers run at
	// epoch barriers with every tile clock equal to the global clock).
	Kernel  *sim.Kernel
	Channel *phy.Channel
	Nodes   []*Node
	Rect    geo.Rect
	Seed    int64

	// RNG is the draw tracker every stream was created through, when
	// the network was built with Config.RNG (nil otherwise). The fault
	// plane and mobility route their stream creation through it too, so
	// a tracked network's entire randomness consumption is observable.
	RNG *rng.Tracker

	// TileKernels holds one kernel per PDES tile; nil when sequential.
	TileKernels []*sim.Kernel
	// tileWorkers bounds the PDES pool (0 = GOMAXPROCS).
	tileWorkers int

	// minArm and crossDelay parameterize the conservative PDES window
	// (see internal/pdes): the MAC's minimum arming interval and, per
	// tile, the minimum propagation delay of any boundary-crossing link.
	minArm     sim.Time
	crossDelay []sim.Time

	// Metrics is the network-wide registry: channel counters, then every
	// radio and MAC in node-id order, then any protocol implementing
	// metrics.Source at Install time. Registration order is fixed, so
	// same-seed snapshots are bit-for-bit identical.
	Metrics *metrics.Registry
}

// New builds the network. It panics on nonsensical configuration —
// construction errors are programming errors in experiment setup.
// Callers holding a configuration of unknown provenance (the scenario
// fuzzer's generated topologies) use TryNew, which reports the same
// conditions as error values instead.
func New(cfg Config) *Network {
	nw, err := TryNew(cfg)
	if err != nil {
		panic(err.Error())
	}
	return nw
}

// TryNew builds the network, returning an error instead of panicking
// when the configuration cannot produce one: non-positive N without
// explicit positions, no connected placement within the attempt budget,
// or a tiled network combined with fading (the per-link fading stream
// is sequential). The random draws on the success path are identical to
// New's, so a configuration that constructs at all constructs
// bitwise-identically through either entry point.
func TryNew(cfg Config) (*Network, error) {
	if cfg.Rect == (geo.Rect{}) {
		cfg.Rect = geo.NewRect(1000, 1000)
	}
	if cfg.Range == 0 {
		cfg.Range = 250
	}
	if cfg.Model == nil {
		cfg.Model = propagation.NewFreeSpace()
	}
	if cfg.FadeMarginDB == 0 {
		cfg.FadeMarginDB = 12
	}
	macCfg := mac.DefaultConfig()
	if cfg.MAC != nil {
		macCfg = *cfg.MAC
	}

	// Stream constructors, optionally routed through the draw tracker.
	// Either path yields the identical draw sequences.
	newStream := rng.New
	forNode := rng.ForNode
	if cfg.CompactRNG {
		forNode = rng.ForNodeCompact
	}
	if cfg.RNG != nil {
		newStream = cfg.RNG.New
		forNode = cfg.RNG.ForNode
		if cfg.CompactRNG {
			forNode = cfg.RNG.ForNodeCompact
		}
	}

	rt := cfg.Runtime
	if rt == nil {
		rt = NewRuntime()
	}
	params := phy.DefaultParams(cfg.Model, cfg.Range)
	tiles := cfg.Tiles
	var tiling geo.Tiling
	haveTiling := false
	if tiles == AutoTiles {
		// Tile sides of at least twice the interference cutoff keep the
		// conservative-window geometry sound (a frame can only reach
		// adjacent tiles) while admitting as many tiles as the arena
		// supports; paper-scale arenas degenerate to one tile and run
		// sequentially.
		tiling = geo.AutoTiling(cfg.Rect, 2*phy.CutoffFor(cfg.Model, params, 0, cfg.Rect))
		tiles = tiling.Tiles()
		haveTiling = true
	}
	if tiles < 1 {
		tiles = 1
	}
	if tiles > 1 && cfg.Fader != nil {
		if _, noFade := cfg.Fader.(propagation.NoFade); !noFade {
			return nil, fmt.Errorf("node: tiled network requires NoFade (the fading stream is sequential), got fader %q with %d tiles",
				cfg.Fader.Name(), tiles)
		}
	}
	kernel := sim.NewKernelPooled(rng.Derive(cfg.Seed, 0xC0FFEE), rt.Events)

	positions := cfg.Positions
	if positions == nil {
		if cfg.N <= 0 {
			return nil, fmt.Errorf("node: Config.N must be positive without explicit positions, got %d", cfg.N)
		}
		placer := newStream(cfg.Seed, rng.StreamTopology)
		positions = geo.UniformPoints(placer, cfg.Rect, cfg.N)
		if cfg.EnsureConnected {
			for try := 0; try < 100; try++ {
				// The probe shares the runtime's range cache, so the
				// connectivity bisection for a parameter set is paid once
				// per worker, not once per placement attempt.
				probe := phy.NewChannel(kernel, cfg.Rect, positions, params,
					phy.ChannelConfig{Model: cfg.Model, Ranges: rt.Ranges})
				if probe.Connected() {
					break
				}
				if try == 99 {
					return nil, fmt.Errorf("node: no connected placement found for N=%d range=%.0f in %vx%v",
						cfg.N, cfg.Range, cfg.Rect.Width(), cfg.Rect.Height())
				}
				positions = geo.UniformPoints(placer, cfg.Rect, cfg.N)
			}
		}
	}

	chCfg := phy.ChannelConfig{
		Model:        cfg.Model,
		Fader:        cfg.Fader,
		FadeMarginDB: cfg.FadeMarginDB,
		Rng:          newStream(cfg.Seed, rng.StreamChannel),
		Pools:        rt.Phy,
		Ranges:       rt.Ranges,
		LinkCacheCap: cfg.LinkCacheCap,
	}
	var tileKernels []*sim.Kernel
	var tileOf []int32
	if tiles > 1 {
		// Tile assignment is pure arithmetic on the final positions, so
		// the same seed yields the same node→tile map at any tile count.
		if !haveTiling {
			tiling = geo.NewTiling(cfg.Rect, tiles)
		}
		tileOf = make([]int32, len(positions))
		for i, p := range positions {
			tileOf[i] = int32(tiling.TileOf(p))
		}
		evPools, phyPools := rt.tilePools(tiles)
		tileKernels = make([]*sim.Kernel, tiles)
		specs := make([]phy.TileSpec, tiles)
		for t := 0; t < tiles; t++ {
			k := sim.NewKernelPooled(rng.Derive(cfg.Seed, 0xC0FFEE, uint64(t+1)), evPools[t])
			k.EnableTagTracking()
			tileKernels[t] = k
			specs[t] = phy.TileSpec{Kernel: k, Pools: phyPools[t]}
		}
		chCfg.Tiles = specs
		chCfg.TileOf = tileOf
	}
	ch := phy.NewChannel(kernel, cfg.Rect, positions, params, chCfg)

	nw := &Network{Kernel: kernel, Channel: ch, Rect: cfg.Rect, Seed: cfg.Seed,
		RNG:         cfg.RNG,
		TileKernels: tileKernels, tileWorkers: cfg.TileWorkers,
		Metrics: metrics.NewRegistry()}
	ch.RegisterMetrics(nw.Metrics)
	nw.Nodes = make([]*Node, len(positions))
	// One contiguous Node arena instead of N heap objects; Nodes keeps
	// its []*Node shape (protocols hold *Node), the pointers just all
	// land in one allocation.
	arena := make([]Node, len(positions))
	macArena := make([]mac.MAC, len(positions))
	macs := make([]*mac.MAC, len(positions))
	for i := range positions {
		nk := kernel
		tile := 0
		if tiles > 1 {
			tile = int(tileOf[i])
			nk = tileKernels[tile]
		}
		n := &arena[i]
		*n = Node{
			ID:     packet.NodeID(i),
			Pos:    positions[i],
			Kernel: nk,
			Ctl:    kernel,
			Tile:   tile,
			Radio:  ch.Radio(i),
			Rng:    forNode(cfg.Seed, rng.StreamNet, i),
		}
		n.MAC = &macArena[i]
		mac.Init(n.MAC, nk, n.Radio, &macCfg, forNode(cfg.Seed, rng.StreamMAC, i))
		n.MAC.SetHandler(macAdapter{n})
		macs[i] = n.MAC
		nw.Nodes[i] = n
	}
	// Aggregate phy.*/mac.* registration: one summing func-counter per
	// series instead of 25 registry entries per node. Series names and
	// first-registration order match the historical per-node loop, and
	// the registry sums same-name sources either way, so snapshots are
	// bit-identical.
	ch.RegisterRadioMetrics(nw.Metrics)
	mac.RegisterAggregate(nw.Metrics, macs)
	if tiles > 1 {
		// Conservative-window parameters: every transmission is armed at
		// least MinArm ahead (MAC timer discipline), and a signal leaving
		// tile t takes at least crossDelay[t] to reach another tile. Only
		// boundary transmitters — nodes with an in-cutoff neighbor on
		// another tile — tag their TX-risk timers; interior nodes cannot
		// affect other tiles inside a window.
		nw.minArm = macCfg.MinArm()
		nw.crossDelay = make([]sim.Time, tiles)
		for t := range nw.crossDelay {
			nw.crossDelay[t] = sim.Infinity
		}
		var buf []int
		for i := range positions {
			ti := int(tileOf[i])
			buf = ch.InterferenceNeighbors(buf, i)
			boundary := false
			for _, j := range buf {
				if int(tileOf[j]) == ti {
					continue
				}
				boundary = true
				d := sim.Time(propagation.Delay(positions[i].Dist(positions[j])))
				if d < nw.crossDelay[ti] {
					nw.crossDelay[ti] = d
				}
			}
			if boundary {
				nw.Nodes[i].MAC.TagTransmits()
			}
		}
	}
	nw.registerLaws()
	return nw, nil
}

// NumTiles returns how many PDES tiles the network runs on (1 when
// sequential).
func (nw *Network) NumTiles() int {
	if nw.TileKernels == nil {
		return 1
	}
	return len(nw.TileKernels)
}

// Processed sums the events executed across every kernel in the
// network.
func (nw *Network) Processed() uint64 {
	n := nw.Kernel.Processed()
	for _, k := range nw.TileKernels {
		n += k.Processed()
	}
	return n
}

// registerLaws declares the packet conservation invariants every run
// must satisfy at any instant. Each law equates two exact uint64 sums;
// the in-flight populations (pending leading edges, tracked signals,
// MAC backlogs) enter as func-counters so no cutoff ambiguity exists.
func (nw *Network) registerLaws() {
	// Every scheduled (radio, frame) delivery is eventually either
	// dropped at an off radio or enters in-air tracking.
	nw.Metrics.Law("phy-delivery",
		[]string{"chan.deliveries"},
		[]string{"phy.dropped_off", "phy.signal_starts", "chan.pending_starts"})
	// Every tracked signal leaves tracking exactly once: trailing edge,
	// or flushed when its receiver powered down, or still on the air.
	nw.Metrics.Law("phy-signal",
		[]string{"phy.signal_starts"},
		[]string{"phy.signal_ends", "phy.flushed_by_off", "phy.in_air"})
	// Every frame handed to a MAC is dropped at the full queue, fully
	// withdrawn, completed, failed, lost at pause, or still backlogged.
	nw.Metrics.Law("mac-queue",
		[]string{"mac.enqueued"},
		[]string{"mac.dropped_full", "mac.dequeued", "mac.completed",
			"mac.unicast_failed", "mac.dropped_paused", "mac.backlog"})
}

// CheckInvariants evaluates every registered conservation law and
// returns the violations, if any. Experiments call it after each run;
// tests may call it at any instant.
func (nw *Network) CheckInvariants() error { return nw.Metrics.Check() }

// Install attaches one protocol instance per node using the factory and
// starts them. Call exactly once, before running the kernel. Protocols
// implementing metrics.Source are registered with the network registry
// in node-id order.
func (nw *Network) Install(factory func(n *Node) Protocol) {
	for _, n := range nw.Nodes {
		n.Net = factory(n)
		if src, ok := n.Net.(metrics.Source); ok {
			src.RegisterMetrics(nw.Metrics)
		}
	}
	// Separate loop: protocols may talk to neighbors during Start.
	for _, n := range nw.Nodes {
		n.Net.Start(n)
	}
}

// InstallAggregated installs like Install but skips the per-node
// metrics.Source registration; register (if non-nil) then registers one
// aggregate source for the whole population — e.g. a closure over
// flood.RegisterAggregate. The registry sums same-name sources at
// snapshot time, so an aggregate that mirrors the per-node series names
// and order yields bit-identical snapshots while keeping the registry
// O(series) instead of O(N) — the difference between 6 and 6,000,000
// entries at mega scale.
func (nw *Network) InstallAggregated(factory func(n *Node) Protocol, register func(reg *metrics.Registry)) {
	for _, n := range nw.Nodes {
		n.Net = factory(n)
	}
	if register != nil {
		register(nw.Metrics)
	}
	for _, n := range nw.Nodes {
		n.Net.Start(n)
	}
}

// Run executes the simulation until time t: sequentially on the single
// kernel, or — when the network was built with Config.Tiles > 1 — as a
// conservative tiled PDES run whose results are identical to the
// sequential one.
func (nw *Network) Run(t sim.Time) {
	if nw.TileKernels == nil {
		nw.Kernel.RunUntil(t)
		return
	}
	pdes.Run(pdes.Config{
		Tiles:      nw.TileKernels,
		Global:     nw.Kernel,
		MinArm:     nw.minArm,
		CrossDelay: nw.crossDelay,
		Exchange:   nw.Channel.ExchangeCross,
		Workers:    nw.tileWorkers,
	}, t)
}

// MoveNode relocates a node (mobility extension), keeping the channel's
// spatial index and the node's own position in sync.
func (nw *Network) MoveNode(id packet.NodeID, p geo.Point) {
	nw.Channel.MoveTo(int(id), p)
	nw.Nodes[id].Pos = p
}

// MACPackets sums every MAC-layer transmission in the network —
// Figures 3 and 4's "Number of MAC Packets".
func (nw *Network) MACPackets() uint64 {
	var sum uint64
	for _, n := range nw.Nodes {
		sum += n.MAC.Stats().TxFrames
	}
	return sum
}

// TotalEnergy sums every radio's consumption in joules at time now.
func (nw *Network) TotalEnergy() float64 {
	var sum float64
	for _, n := range nw.Nodes {
		sum += n.Radio.Energy().Total(nw.Kernel.Now())
	}
	return sum
}
