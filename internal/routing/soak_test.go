package routing

import (
	"testing"

	"routeless/internal/geo"
	"routeless/internal/node"
	"routeless/internal/packet"
	"routeless/internal/rng"
	"routeless/internal/stats"
	"routeless/internal/traffic"
)

// TestSoakRoutelessUnderChurn runs a long simulation with continuous
// traffic and failure churn, then checks that per-node protocol state
// stayed bounded (the GC sweeps actually work) and delivery stayed
// healthy. This is the leak check for the relay/discovery state
// machines.
func TestSoakRoutelessUnderChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	nw := node.New(node.Config{
		N: 150, Rect: geo.NewRect(1100, 1100), Seed: 77, EnsureConnected: true,
	})
	rrs := make([]*Routeless, 0, 150)
	nw.Install(func(n *node.Node) node.Protocol {
		r := NewRouteless(RoutelessConfig{})
		rrs = append(rrs, r)
		return r
	})
	var meter stats.Meter
	for _, n := range nw.Nodes {
		n := n
		n.OnAppReceive = func(p *packet.Packet) {
			meter.PacketReceived(float64(nw.Kernel.Now()-p.CreatedAt), p.HopCount)
		}
	}
	pairs := traffic.RandomPairs(rng.New(77, rng.StreamTraffic), 150, 8)
	endpoint := map[packet.NodeID]bool{}
	var cbrs []*traffic.CBR
	for _, p := range pairs {
		endpoint[p.Src], endpoint[p.Dst] = true, true
		a := traffic.NewCBR(nw.Nodes[p.Src], p.Dst, 0.5, 64)
		b := traffic.NewCBR(nw.Nodes[p.Dst], p.Src, 0.5, 64)
		a.OnSend = meter.PacketSent
		b.OnSend = meter.PacketSent
		a.Start()
		b.Start()
		cbrs = append(cbrs, a, b)
	}
	for _, n := range nw.Nodes {
		if endpoint[n.ID] {
			continue
		}
		fp := node.NewFailureProcess(n, rng.ForNode(77, rng.StreamFailure, int(n.ID)))
		fp.OffFraction = 0.05
		fp.Start()
	}
	nw.Run(120)
	for _, c := range cbrs {
		c.Stop()
	}
	nw.Run(130)

	if meter.Sent < 3500 {
		t.Fatalf("only %d packets generated — soak rig broken", meter.Sent)
	}
	if r := meter.DeliveryRatio(); r < 0.95 {
		t.Fatalf("delivery %v over 120 s with churn", r)
	}
	// State bound: after two minutes and ~4k packets, per-node relay
	// state must be a handful of recent entries, not thousands.
	for i, r := range rrs {
		if len(r.relays) > 200 {
			t.Fatalf("node %d holds %d relay states — GC leak", i, len(r.relays))
		}
		if len(r.discPending) > 200 {
			t.Fatalf("node %d holds %d discovery states — GC leak", i, len(r.discPending))
		}
	}
}
