package routing

import (
	"testing"

	"routeless/internal/geo"
	"routeless/internal/node"
	"routeless/internal/packet"
	"routeless/internal/sim"
)

// buildRR constructs a network running Routeless Routing on every node.
func buildRR(t *testing.T, cfg RoutelessConfig, seed int64, positions []geo.Point) (*node.Network, []*Routeless) {
	t.Helper()
	nw := node.New(node.Config{Positions: positions, Seed: seed})
	rrs := make([]*Routeless, len(positions))
	i := 0
	nw.Install(func(n *node.Node) node.Protocol {
		r := NewRouteless(cfg)
		rrs[i] = r
		i++
		return r
	})
	return nw, rrs
}

func line(n int, spacing float64) []geo.Point {
	out := make([]geo.Point, n)
	for i := range out {
		out[i] = geo.Point{X: float64(i) * spacing, Y: 0}
	}
	return out
}

func TestRRDirectNeighborDelivery(t *testing.T) {
	nw, rrs := buildRR(t, RoutelessConfig{}, 1, line(2, 150))
	var got []*packet.Packet
	nw.Nodes[1].OnAppReceive = func(p *packet.Packet) { got = append(got, p.Clone()) }
	rrs[0].Send(1, 0)
	nw.Run(5)
	if len(got) != 1 {
		t.Fatalf("delivered %d, want 1", len(got))
	}
	if got[0].HopCount != 1 {
		t.Fatalf("hop count %d, want 1", got[0].HopCount)
	}
	st := rrs[0].Stats()
	if st.DiscoveriesSent != 1 || st.DataSent != 1 {
		t.Fatalf("source stats %+v", st)
	}
	if rrs[1].Stats().RepliesSent != 1 {
		t.Fatal("destination never replied to discovery")
	}
}

func TestRRMultiHopDelivery(t *testing.T) {
	nw, rrs := buildRR(t, RoutelessConfig{}, 2, line(5, 200))
	var got []*packet.Packet
	nw.Nodes[4].OnAppReceive = func(p *packet.Packet) { got = append(got, p.Clone()) }
	rrs[0].Send(4, 0)
	nw.Run(10)
	if len(got) != 1 {
		t.Fatalf("delivered %d, want 1", len(got))
	}
	if got[0].HopCount != 4 {
		t.Fatalf("hop count %d, want 4 on a 5-node line", got[0].HopCount)
	}
	// End-to-end delay includes discovery; must still be well under a
	// second on an idle 4-hop line.
	delay := float64(nw.Kernel.Now()) // upper bound sanity only
	_ = delay
}

func TestRRGradientEstablishedByDiscovery(t *testing.T) {
	nw, rrs := buildRR(t, RoutelessConfig{}, 3, line(4, 200))
	rrs[0].Send(3, 0)
	nw.Run(10)
	// Every node should know its distance to the source (origin 0).
	for i, r := range rrs {
		if i == 0 {
			continue
		}
		if h := r.Table().Hops(0); h != i {
			t.Fatalf("node %d table hops to source = %d, want %d", i, h, i)
		}
	}
	// And the source learned the destination's distance from the reply.
	if h := rrs[0].Table().Hops(3); h != 3 {
		t.Fatalf("source hops to dest = %d, want 3", h)
	}
}

func TestRRSecondPacketSkipsDiscovery(t *testing.T) {
	nw, rrs := buildRR(t, RoutelessConfig{}, 4, line(3, 200))
	count := 0
	nw.Nodes[2].OnAppReceive = func(*packet.Packet) { count++ }
	rrs[0].Send(2, 0)
	nw.Run(5)
	first := rrs[0].Stats().DiscoveriesSent
	rrs[0].Send(2, 0)
	nw.Run(10)
	if count != 2 {
		t.Fatalf("delivered %d, want 2", count)
	}
	if rrs[0].Stats().DiscoveriesSent != first {
		t.Fatal("second packet triggered another discovery")
	}
}

func TestRRBidirectionalTraffic(t *testing.T) {
	nw, rrs := buildRR(t, RoutelessConfig{}, 5, line(4, 200))
	got := map[packet.NodeID]int{}
	nw.Nodes[0].OnAppReceive = func(p *packet.Packet) { got[0]++ }
	nw.Nodes[3].OnAppReceive = func(p *packet.Packet) { got[3]++ }
	rrs[0].Send(3, 0)
	rrs[3].Send(0, 0)
	nw.Run(10)
	if got[3] != 1 || got[0] != 1 {
		t.Fatalf("deliveries %v, want one each way", got)
	}
}

func TestRRIntermediateFailureReroutes(t *testing.T) {
	// Diamond: source 0, two possible relays 1 (upper) and 2 (lower),
	// destination 3. Kill whichever relay carried the first packet; the
	// next packet must still arrive via the other relay, with no
	// discovery re-flood — the §4.2 "seamless transition" claim.
	positions := []geo.Point{
		{X: 0, Y: 0}, {X: 200, Y: 100}, {X: 200, Y: -100}, {X: 400, Y: 0},
	}
	nw, rrs := buildRR(t, RoutelessConfig{}, 6, positions)
	count := 0
	nw.Nodes[3].OnAppReceive = func(*packet.Packet) { count++ }
	rrs[0].Send(3, 0)
	nw.Run(5)
	if count != 1 {
		t.Fatalf("first packet not delivered (%d)", count)
	}
	discoveriesAfterFirst := rrs[0].Stats().DiscoveriesSent
	// Kill the relay that actually forwarded data.
	var relay int
	if rrs[1].Stats().Relays > 0 {
		relay = 1
	} else if rrs[2].Stats().Relays > 0 {
		relay = 2
	} else {
		t.Fatal("no relay recorded for first packet")
	}
	nw.Nodes[relay].Fail()
	rrs[0].Send(3, 0)
	nw.Run(15)
	if count != 2 {
		t.Fatalf("second packet lost after relay failure (delivered=%d)", count)
	}
	if rrs[0].Stats().DiscoveriesSent != discoveriesAfterFirst {
		t.Fatal("failure triggered a re-discovery; Routeless should reroute in place")
	}
	other := 3 - relay // the surviving relay (1↔2)
	if rrs[other].Stats().Relays == 0 {
		t.Fatal("surviving relay never carried the rerouted packet")
	}
}

func TestRRCancellationSuppressesRedundantRelays(t *testing.T) {
	// Several co-located candidate relays: exactly one should usually
	// win each hop; the rest cancel on overhear or ACK.
	positions := []geo.Point{
		{X: 0, Y: 0},
		{X: 200, Y: 0}, {X: 200, Y: 30}, {X: 200, Y: -30},
		{X: 400, Y: 0},
	}
	nw, rrs := buildRR(t, RoutelessConfig{}, 7, positions)
	count := 0
	nw.Nodes[4].OnAppReceive = func(*packet.Packet) { count++ }
	rrs[0].Send(4, 0)
	nw.Run(10)
	if count != 1 {
		t.Fatalf("delivered %d, want 1", count)
	}
	var relays, cancels uint64
	for _, r := range rrs[1:4] {
		st := r.Stats()
		relays += st.Relays
		cancels += st.CancelledByOverhear + st.CancelledByAck
	}
	if relays == 0 {
		t.Fatal("no middle relay carried the packet")
	}
	if cancels == 0 {
		t.Fatal("no cancellations among co-located candidates")
	}
	if relays > 2 {
		t.Fatalf("%d middle relays transmitted the same data packet", relays)
	}
}

func TestRRArbiterRetransmitsThroughGap(t *testing.T) {
	// The destination's reply must survive an unlucky first
	// transmission. Simulate by failing the sole relay during the
	// discovery phase and recovering it before the retransmission.
	nw, rrs := buildRR(t, RoutelessConfig{}, 8, line(3, 200))
	count := 0
	nw.Nodes[2].OnAppReceive = func(*packet.Packet) { count++ }
	rrs[0].Send(2, 0)
	// Fail the middle relay just before the reply flows back and keep
	// it down past the relay timeout: the reply originator must
	// retransmit into the gap before recovery completes the path.
	nw.Kernel.Schedule(0.012, func() { nw.Nodes[1].Fail() })
	nw.Kernel.Schedule(0.5, func() { nw.Nodes[1].Recover() })
	nw.Run(20)
	if count != 1 {
		t.Fatalf("delivered %d, want 1 (arbiter retransmission should recover)", count)
	}
	if rrs[2].Stats().Retransmissions+rrs[0].Stats().Retransmissions == 0 {
		t.Fatal("no retransmissions recorded despite the outage window")
	}
}

func TestRRNoRouteGivesUp(t *testing.T) {
	// Destination unreachable (out of range): discovery retries then
	// drops the queued data.
	positions := []geo.Point{{X: 0, Y: 0}, {X: 200, Y: 0}, {X: 2500, Y: 0}}
	cfg := RoutelessConfig{DiscoveryTimeout: 0.2, MaxDiscoveryRetries: 2}
	nw, rrs := buildRR(t, cfg, 9, positions)
	rrs[0].Send(2, 0)
	nw.Run(10)
	st := rrs[0].Stats()
	if st.DroppedNoRoute != 1 {
		t.Fatalf("DroppedNoRoute = %d, want 1", st.DroppedNoRoute)
	}
	if st.DiscoveriesSent != 3 { // initial + 2 retries
		t.Fatalf("DiscoveriesSent = %d, want 3", st.DiscoveriesSent)
	}
}

func TestRRSendToSelf(t *testing.T) {
	nw, rrs := buildRR(t, RoutelessConfig{}, 10, line(2, 150))
	count := 0
	nw.Nodes[0].OnAppReceive = func(*packet.Packet) { count++ }
	rrs[0].Send(0, 0)
	nw.Run(1)
	if count != 1 {
		t.Fatalf("self-delivery count %d, want 1", count)
	}
	if nw.MACPackets() != 0 {
		t.Fatal("self-send put frames on the air")
	}
}

func TestRRDataStreamOverChain(t *testing.T) {
	nw, rrs := buildRR(t, RoutelessConfig{}, 11, line(4, 200))
	count := 0
	nw.Nodes[3].OnAppReceive = func(*packet.Packet) { count++ }
	for i := 0; i < 10; i++ {
		at := sim.Time(1 + float64(i)*0.5)
		nw.Kernel.At(at, func() { rrs[0].Send(3, 0) })
	}
	nw.Run(20)
	if count < 9 {
		t.Fatalf("delivered %d/10", count)
	}
}

func TestRRStateGC(t *testing.T) {
	nw, rrs := buildRR(t, RoutelessConfig{}, 12, line(3, 200))
	rrs[0].Send(2, 0)
	nw.Run(60) // several GC sweeps
	for i, r := range rrs {
		if len(r.relays) != 0 {
			t.Fatalf("node %d still holds %d relay states after GC", i, len(r.relays))
		}
	}
}

func TestRRTTLBoundsRelaying(t *testing.T) {
	cfg := RoutelessConfig{TTL: 2}
	nw, rrs := buildRR(t, cfg, 13, line(4, 200))
	count := 0
	nw.Nodes[3].OnAppReceive = func(*packet.Packet) { count++ }
	rrs[0].Send(3, 0)
	nw.Run(10)
	if count != 0 {
		t.Fatal("packet crossed 3 hops with TTL 2")
	}
}

func TestRRQueuedDataFlushedByReply(t *testing.T) {
	// Several packets sent while discovery is still in flight must all
	// be queued and delivered once the path reply lands — with their
	// original creation times (delay accounting includes the wait).
	nw, rrs := buildRR(t, RoutelessConfig{}, 14, line(3, 200))
	var delays []sim.Time
	nw.Nodes[2].OnAppReceive = func(p *packet.Packet) {
		delays = append(delays, nw.Kernel.Now()-p.CreatedAt)
	}
	for i := 0; i < 3; i++ {
		rrs[0].Send(2, 64) // all before any reply can arrive
	}
	nw.Run(10)
	if len(delays) != 3 {
		t.Fatalf("delivered %d, want 3", len(delays))
	}
	if rrs[0].Stats().DiscoveriesSent != 1 {
		t.Fatalf("discoveries = %d, want 1 (others queued)", rrs[0].Stats().DiscoveriesSent)
	}
	for _, d := range delays {
		if d <= 0 {
			t.Fatalf("non-positive end-to-end delay %v", d)
		}
	}
}

func TestRRConcurrentFlowsShareGradients(t *testing.T) {
	// Two sources sending to the same destination: the second flow
	// should find the gradient already in place (passive learning) and
	// skip its own discovery.
	nw, rrs := buildRR(t, RoutelessConfig{}, 15, line(4, 200))
	count := 0
	nw.Nodes[3].OnAppReceive = func(*packet.Packet) { count++ }
	rrs[0].Send(3, 64)
	nw.Run(5)
	// Node 1 overheard the whole exchange: it knows the distance to 3.
	rrs[1].Send(3, 64)
	nw.Run(10)
	if count != 2 {
		t.Fatalf("delivered %d, want 2", count)
	}
	if rrs[1].Stats().DiscoveriesSent != 0 {
		t.Fatal("second source re-discovered despite passive gradient")
	}
}
