// Package mac implements a simplified CSMA/CA medium-access layer over
// internal/phy: carrier sensing with DIFS and slotted random backoff,
// fire-and-forget broadcast frames, and stop-and-wait unicast with
// link-layer acknowledgements and bounded retransmission (the mechanism
// AODV relies on for link-failure detection).
//
// The outgoing queue between the network layer and the MAC is a
// priority queue keyed by the network layer's backoff delay; the paper
// depends on this queue for SSAF's delay improvement under load (§3).
package mac

import (
	"math/rand"

	"routeless/internal/metrics"
	"routeless/internal/packet"
	"routeless/internal/phy"
	"routeless/internal/sim"
)

// Config holds MAC timing and retry parameters. Defaults mirror
// 802.11-class numbers at 1 Mbps.
type Config struct {
	SlotTime   sim.Time // backoff slot length
	DIFS       sim.Time // idle time required before contending
	SIFS       sim.Time // gap before a link-layer ACK
	MinCW      int      // initial contention window (slots)
	MaxCW      int      // contention window cap after retries
	RetryLimit int      // unicast retransmissions before giving up
	AckTimeout sim.Time // wait for a link-layer ACK
	QueueCap   int      // outgoing queue capacity (frames)
}

// MinArm returns the minimum delay between any MAC event and the
// earliest radio transmission it can cause. Every Transmit happens
// inside an event armed at least this far in advance: the access timer
// is always reset with SlotTime, DIFS, or AckTimeout, and link-layer
// ACKs are scheduled SIFS ahead. PDES uses this as structural
// lookahead — a tile whose earliest pending event is at E cannot put a
// new, not-yet-scheduled signal on the air before E+MinArm.
func (c Config) MinArm() sim.Time {
	min := c.SlotTime
	for _, d := range []sim.Time{c.DIFS, c.SIFS, c.AckTimeout} {
		if d < min {
			min = d
		}
	}
	return min
}

// DefaultConfig returns 802.11-flavored parameters.
func DefaultConfig() Config {
	return Config{
		SlotTime:   20e-6,
		DIFS:       50e-6,
		SIFS:       10e-6,
		MinCW:      32,
		MaxCW:      1024,
		RetryLimit: 5,
		AckTimeout: 2e-3,
		QueueCap:   64,
	}
}

// Handler is the network layer's upward interface. Every decoded frame
// is delivered (promiscuous mode): Routeless Routing learns distances
// "by passively listening to all packets" (§4.1), so protocols filter
// on pkt.To themselves.
type Handler interface {
	// OnDeliver reports a decoded frame with its receive power.
	OnDeliver(pkt *packet.Packet, rssiDBm float64)
	// OnSent reports that a frame handed to Enqueue left the air
	// (broadcast) or was acknowledged (unicast).
	OnSent(pkt *packet.Packet)
	// OnUnicastFailed reports that a unicast frame exhausted its
	// retries — the link-break signal.
	OnUnicastFailed(pkt *packet.Packet)
}

// Stats is the plain-uint64 snapshot view of MAC counters. TxFrames
// counts every transmission attempt including retries and ACKs: it is
// the paper's "Number of MAC Packets" metric (Figures 3 and 4).
type Stats struct {
	Enqueued      uint64
	DroppedFull   uint64
	TxFrames      uint64
	TxAcks        uint64
	Retries       uint64
	UnicastFailed uint64
	Delivered     uint64
	AcksReceived  uint64
	DroppedPaused uint64
	Dequeued      uint64
	DupRx         uint64
	Completed     uint64 // frames that finished successfully (sent/acked)
}

// macCounters is the live counter storage behind Stats.
type macCounters struct {
	enqueued      metrics.Counter32
	droppedFull   metrics.Counter32
	txFrames      metrics.Counter32
	txAcks        metrics.Counter32
	retries       metrics.Counter32
	unicastFailed metrics.Counter32
	delivered     metrics.Counter32
	acksReceived  metrics.Counter32
	droppedPaused metrics.Counter32
	dequeued      metrics.Counter32
	dupRx         metrics.Counter32
	completed     metrics.Counter32
}

type macState uint8

const (
	stIdle    macState = iota // nothing to send
	stWait                    // head frame waiting for medium idle
	stDIFS                    // sensing idle for DIFS
	stBackoff                 // counting down backoff slots
	stTx                      // frame on the air
	stAck                     // unicast sent, awaiting ACK
	stPaused                  // radio off/asleep
)

// MAC is one node's medium-access instance.
type MAC struct {
	// cfg is shared by every MAC in a network (the builder passes one
	// pointer): an inline copy is 64 bytes of identical timing numbers
	// per node, real weight at mega scale. Never written after New.
	cfg     *Config
	kernel  *sim.Kernel
	radio   *phy.Radio
	rng     *rand.Rand
	handler Handler

	// queue and access are embedded by value (not pointers): two fewer
	// heap objects per node. Both capture m's address via methods, so a
	// MAC must never be copied after New.
	queue   prioQueue
	current *entry
	state   macState

	slotsLeft int
	cw        int
	retries   int
	access    sim.Timer // drives DIFS, backoff slots, and ACK timeout
	pendingTx *packet.Packet

	// ackRef is the UID of the unicast frame awaiting acknowledgement.
	ackRef uint64

	// rxSeen remembers recently delivered unicast frame UIDs so that
	// ARQ retransmissions (our ACK was lost) are re-acknowledged but
	// not delivered upward twice.
	rxSeen     map[uint64]struct{}
	rxSeenFIFO []uint64

	// tagTx marks every event that can lead to a transmission as a
	// tagged kernel event (see TagTransmits).
	tagTx bool

	stats macCounters
}

// New wires a MAC onto a radio. It installs itself as the radio's
// listener. cfg is retained (not copied) so a network can share one
// Config across all its MACs; callers must not mutate it afterwards.
func New(k *sim.Kernel, radio *phy.Radio, cfg *Config, rng *rand.Rand) *MAC {
	m := &MAC{}
	Init(m, k, radio, cfg, rng)
	return m
}

// Init initializes m in place — the arena alternative to New for
// mega-scale populations that lay their MACs out in one contiguous
// slice. The MAC captures its own address (queue, access timer, radio
// listener), so it must never be copied after Init.
func Init(m *MAC, k *sim.Kernel, radio *phy.Radio, cfg *Config, rng *rand.Rand) {
	*m = MAC{
		cfg:    cfg,
		kernel: k,
		radio:  radio,
		rng:    rng,
		cw:     cfg.MinCW,
	}
	m.queue.init(cfg.QueueCap)
	sim.InitTimer(&m.access, k, m.onAccessTimer)
	radio.SetListener(m)
}

// SetHandler installs the network layer.
func (m *MAC) SetHandler(h Handler) { m.handler = h }

// TagTransmits marks the two event paths that call Radio.Transmit —
// the access timer and the SIFS ACK closure — as tagged kernel events,
// so a PDES coordinator can bound this node's next possible
// transmission with Kernel.PeekTagged. Tagging is scheduling-neutral;
// on kernels without tag tracking enabled it is a no-op.
func (m *MAC) TagTransmits() {
	m.tagTx = true
	m.access.MarkTagged()
}

// Stats returns a snapshot of the MAC counters.
func (m *MAC) Stats() Stats {
	return Stats{
		Enqueued:      m.stats.enqueued.Value(),
		DroppedFull:   m.stats.droppedFull.Value(),
		TxFrames:      m.stats.txFrames.Value(),
		TxAcks:        m.stats.txAcks.Value(),
		Retries:       m.stats.retries.Value(),
		UnicastFailed: m.stats.unicastFailed.Value(),
		Delivered:     m.stats.delivered.Value(),
		AcksReceived:  m.stats.acksReceived.Value(),
		DroppedPaused: m.stats.droppedPaused.Value(),
		Dequeued:      m.stats.dequeued.Value(),
		DupRx:         m.stats.dupRx.Value(),
		Completed:     m.stats.completed.Value(),
	}
}

// RegisterAggregate registers the network-wide mac.* series as
// aggregate func-counters summing over every MAC in macs, in the exact
// order RegisterMetrics registers them per MAC. The registry sums
// same-name sources at snapshot time, so the aggregate exposes
// bit-identical snapshots to N per-MAC registrations while costing
// O(1) registry entries instead of O(N).
func RegisterAggregate(reg *metrics.Registry, macs []*MAC) {
	sum := func(pick func(*macCounters) *metrics.Counter32) func() uint64 {
		return func() uint64 {
			var s uint64
			for _, m := range macs {
				s += pick(&m.stats).Value()
			}
			return s
		}
	}
	reg.Func("mac.enqueued", sum(func(s *macCounters) *metrics.Counter32 { return &s.enqueued }))
	reg.Func("mac.dropped_full", sum(func(s *macCounters) *metrics.Counter32 { return &s.droppedFull }))
	reg.Func("mac.tx_frames", sum(func(s *macCounters) *metrics.Counter32 { return &s.txFrames }))
	reg.Func("mac.tx_acks", sum(func(s *macCounters) *metrics.Counter32 { return &s.txAcks }))
	reg.Func("mac.retries", sum(func(s *macCounters) *metrics.Counter32 { return &s.retries }))
	reg.Func("mac.unicast_failed", sum(func(s *macCounters) *metrics.Counter32 { return &s.unicastFailed }))
	reg.Func("mac.delivered", sum(func(s *macCounters) *metrics.Counter32 { return &s.delivered }))
	reg.Func("mac.acks_received", sum(func(s *macCounters) *metrics.Counter32 { return &s.acksReceived }))
	reg.Func("mac.dropped_paused", sum(func(s *macCounters) *metrics.Counter32 { return &s.droppedPaused }))
	reg.Func("mac.dequeued", sum(func(s *macCounters) *metrics.Counter32 { return &s.dequeued }))
	reg.Func("mac.dup_rx", sum(func(s *macCounters) *metrics.Counter32 { return &s.dupRx }))
	reg.Func("mac.completed", sum(func(s *macCounters) *metrics.Counter32 { return &s.completed }))
	reg.Func("mac.backlog", func() uint64 {
		var n uint64
		for _, m := range macs {
			n += uint64(m.queue.len())
			if m.current != nil {
				n++
			}
		}
		return n
	})
}

// RegisterMetrics registers the MAC counters plus the live backlog (the
// in-flight term of the mac-queue conservation law: frames waiting in
// the priority queue plus the one under contention).
func (m *MAC) RegisterMetrics(reg *metrics.Registry) {
	reg.Observe32("mac.enqueued", &m.stats.enqueued)
	reg.Observe32("mac.dropped_full", &m.stats.droppedFull)
	reg.Observe32("mac.tx_frames", &m.stats.txFrames)
	reg.Observe32("mac.tx_acks", &m.stats.txAcks)
	reg.Observe32("mac.retries", &m.stats.retries)
	reg.Observe32("mac.unicast_failed", &m.stats.unicastFailed)
	reg.Observe32("mac.delivered", &m.stats.delivered)
	reg.Observe32("mac.acks_received", &m.stats.acksReceived)
	reg.Observe32("mac.dropped_paused", &m.stats.droppedPaused)
	reg.Observe32("mac.dequeued", &m.stats.dequeued)
	reg.Observe32("mac.dup_rx", &m.stats.dupRx)
	reg.Observe32("mac.completed", &m.stats.completed)
	reg.Func("mac.backlog", func() uint64 {
		n := uint64(m.queue.len())
		if m.current != nil {
			n++
		}
		return n
	})
}

// QueueLen returns the number of frames waiting behind the current one.
func (m *MAC) QueueLen() int { return m.queue.len() }

// ID returns the node id of the underlying radio.
func (m *MAC) ID() packet.NodeID { return m.radio.ID() }

// Enqueue hands a frame to the MAC with a queue priority (lower is
// served first — network layers pass their backoff delay). It reports
// false when the queue is full and the frame was dropped.
func (m *MAC) Enqueue(pkt *packet.Packet, priority float64) bool {
	m.stats.enqueued.Inc()
	if !m.queue.push(pkt, priority) {
		m.stats.droppedFull.Inc()
		return false
	}
	if m.state == stIdle {
		m.nextFrame()
	}
	return true
}

// Dequeue withdraws a frame that has not yet reached the air: either
// still in the priority queue, or the head frame while it is
// contending. It reports whether the frame was withdrawn; false means
// the frame is on the air (or already gone) and cannot be recalled.
//
// Network layers use this to complete a cancelled relay election: the
// paper's backoff cancellation must also cover packets waiting in the
// NET→MAC queue, otherwise a lost election still transmits.
func (m *MAC) Dequeue(pkt *packet.Packet) bool {
	if m.current != nil && m.current.pkt == pkt {
		switch m.state {
		case stWait, stDIFS, stBackoff:
			m.access.Stop()
			m.current = nil
			m.state = stIdle
			m.stats.dequeued.Inc()
			m.nextFrame()
			return true
		}
		return false
	}
	if m.queue.remove(pkt) {
		m.stats.dequeued.Inc()
		return true
	}
	return false
}

// Pause halts the MAC while its radio is off or asleep. Queued frames
// are kept; the frame in flight (if any) is abandoned without
// link-failure indication — exactly the silent-death behavior the
// paper's failure experiments need.
func (m *MAC) Pause() {
	m.access.Stop()
	if m.current != nil {
		// Back in the queue; it will recontend after Resume.
		if !m.queue.push(m.current.pkt, m.current.priority) {
			m.stats.droppedPaused.Inc()
		}
		m.current = nil
	}
	m.pendingTx = nil
	m.state = stPaused
}

// Resume restarts medium access after Pause.
func (m *MAC) Resume() {
	if m.state != stPaused {
		return
	}
	m.state = stIdle
	m.retries = 0
	m.cw = m.cfg.MinCW
	m.nextFrame()
}

// Paused reports whether the MAC is halted.
func (m *MAC) Paused() bool { return m.state == stPaused }

// nextFrame promotes the head of the queue to the contention slot.
func (m *MAC) nextFrame() {
	if m.state != stIdle {
		return
	}
	m.current = m.queue.pop()
	if m.current == nil {
		return
	}
	m.retries = 0
	m.cw = m.cfg.MinCW
	m.beginContention()
}

// beginContention starts (or restarts) the DIFS + backoff dance for the
// current frame.
func (m *MAC) beginContention() {
	m.slotsLeft = m.rng.Intn(m.cw)
	m.resumeContention()
}

// resumeContention waits for an idle medium, then DIFS, then counts
// down the remaining backoff slots.
func (m *MAC) resumeContention() {
	if m.radio.CarrierBusy() {
		m.state = stWait
		m.access.Stop()
		return
	}
	m.state = stDIFS
	m.access.Reset(m.cfg.DIFS)
}

func (m *MAC) onAccessTimer() {
	switch m.state {
	case stDIFS:
		if m.radio.CarrierBusy() {
			m.state = stWait
			return
		}
		if m.slotsLeft == 0 {
			m.transmitCurrent()
			return
		}
		m.state = stBackoff
		m.access.Reset(m.cfg.SlotTime)
	case stBackoff:
		if m.radio.CarrierBusy() {
			m.state = stWait
			return
		}
		m.slotsLeft--
		if m.slotsLeft <= 0 {
			m.transmitCurrent()
			return
		}
		m.access.Reset(m.cfg.SlotTime)
	case stAck:
		m.ackTimeout()
	}
}

func (m *MAC) transmitCurrent() {
	if !m.radio.On() {
		m.Pause()
		return
	}
	m.state = stTx
	m.stats.txFrames.Inc()
	m.pendingTx = m.current.pkt
	m.radio.Transmit(m.current.pkt)
}

// OnTxDone implements phy.Listener.
func (m *MAC) OnTxDone() {
	if m.pendingTx == nil {
		return // an ACK we fired off, or a stale completion after Pause
	}
	pkt := m.pendingTx
	m.pendingTx = nil
	if pkt.To == packet.Broadcast {
		m.finishCurrent(pkt, true)
		return
	}
	// Unicast: hold the frame and await the link-layer ACK.
	m.state = stAck
	m.ackRef = pkt.UID
	m.access.Reset(m.cfg.AckTimeout)
}

func (m *MAC) ackTimeout() {
	m.stats.retries.Inc()
	m.retries++
	if m.retries > m.cfg.RetryLimit {
		pkt := m.current.pkt
		m.current = nil
		m.state = stIdle
		m.stats.unicastFailed.Inc()
		if m.handler != nil {
			m.handler.OnUnicastFailed(pkt)
		}
		m.nextFrame()
		return
	}
	if m.cw*2 <= m.cfg.MaxCW {
		m.cw *= 2
	}
	m.beginContention()
}

func (m *MAC) finishCurrent(pkt *packet.Packet, ok bool) {
	m.current = nil
	m.state = stIdle
	m.stats.completed.Inc()
	if ok && m.handler != nil {
		m.handler.OnSent(pkt)
	}
	m.nextFrame()
}

// OnReceive implements phy.Listener.
func (m *MAC) OnReceive(pkt *packet.Packet, rssiDBm float64) {
	if pkt.Kind == packet.KindMACAck {
		if m.state == stAck && pkt.To == m.radio.ID() {
			if ref, okRef := pkt.Payload.(uint64); okRef && ref == m.ackRef {
				m.stats.acksReceived.Inc()
				m.access.Stop()
				m.finishCurrent(m.current.pkt, true)
			}
		}
		return // ACKs are MAC-internal; never delivered upward
	}
	if pkt.To == m.radio.ID() {
		m.scheduleAck(pkt)
		if m.seenUID(pkt.UID) {
			m.stats.dupRx.Inc()
			return // ARQ retransmission: acked again, delivered once
		}
	}
	m.stats.delivered.Inc()
	if m.handler != nil {
		m.handler.OnDeliver(pkt, rssiDBm)
	}
}

// seenUID records a delivered unicast frame id, bounding memory with a
// FIFO window. The map is lazily allocated: only unicast receivers ever
// reach this path, so a broadcast-only node (any flooding run) carries
// no dedup map at all.
func (m *MAC) seenUID(uid uint64) bool {
	if _, ok := m.rxSeen[uid]; ok {
		return true
	}
	if m.rxSeen == nil {
		m.rxSeen = make(map[uint64]struct{})
	}
	const window = 256
	if len(m.rxSeenFIFO) >= window {
		old := m.rxSeenFIFO[0]
		m.rxSeenFIFO = m.rxSeenFIFO[1:]
		delete(m.rxSeen, old)
	}
	m.rxSeen[uid] = struct{}{}
	m.rxSeenFIFO = append(m.rxSeenFIFO, uid)
	return false
}

// scheduleAck fires a link-layer ACK after SIFS, bypassing the queue —
// ACKs pre-empt contention in CSMA/CA.
func (m *MAC) scheduleAck(orig *packet.Packet) {
	ack := &packet.Packet{
		Kind:    packet.KindMACAck,
		To:      orig.From,
		Origin:  orig.Origin,
		Target:  orig.Target,
		Seq:     orig.Seq,
		Size:    packet.SizeAck,
		Payload: orig.UID,
	}
	fire := func() {
		if !m.radio.On() || m.radio.State() == phy.StateTx {
			return // can't ack right now; sender will retry
		}
		m.stats.txAcks.Inc()
		m.stats.txFrames.Inc()
		m.radio.Transmit(ack)
	}
	if m.tagTx {
		m.kernel.ScheduleTagged(m.cfg.SIFS, fire)
	} else {
		m.kernel.Schedule(m.cfg.SIFS, fire)
	}
}

// OnMediumBusy implements phy.Listener.
func (m *MAC) OnMediumBusy() {
	switch m.state {
	case stDIFS, stBackoff:
		m.access.Stop()
		m.state = stWait
	}
}

// OnMediumIdle implements phy.Listener.
func (m *MAC) OnMediumIdle() {
	if m.state == stWait {
		m.resumeContention()
	}
}
