package traffic

import (
	"math/rand"
	"testing"

	"routeless/internal/geo"
	"routeless/internal/node"
	"routeless/internal/packet"
)

func TestRandomPairsProperties(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	pairs := RandomPairs(r, 100, 50)
	if len(pairs) != 50 {
		t.Fatalf("got %d pairs", len(pairs))
	}
	seen := map[Pair]bool{}
	for _, p := range pairs {
		if p.Src == p.Dst {
			t.Fatalf("self pair %v", p)
		}
		if p.Src < 0 || int(p.Src) >= 100 || p.Dst < 0 || int(p.Dst) >= 100 {
			t.Fatalf("pair out of range %v", p)
		}
		if seen[p] {
			t.Fatalf("duplicate pair %v", p)
		}
		seen[p] = true
	}
}

func TestRandomPairsDeterministic(t *testing.T) {
	a := RandomPairs(rand.New(rand.NewSource(2)), 50, 20)
	b := RandomPairs(rand.New(rand.NewSource(2)), 50, 20)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("pair selection not deterministic")
		}
	}
}

func TestRandomPairsExhaustive(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pairs := RandomPairs(r, 3, 6) // all ordered pairs of 3 nodes
	if len(pairs) != 6 {
		t.Fatalf("got %d pairs", len(pairs))
	}
}

func TestRandomPairsPanics(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for _, f := range []func(){
		func() { RandomPairs(r, 1, 1) },
		func() { RandomPairs(r, 3, 7) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

// sink protocol records sends without touching the radio.
type sinkProto struct {
	n     *node.Node
	sends []packet.NodeID
}

func (s *sinkProto) Start(n *node.Node)                  { s.n = n }
func (s *sinkProto) OnDeliver(*packet.Packet, float64)   {}
func (s *sinkProto) OnSent(*packet.Packet)               {}
func (s *sinkProto) OnUnicastFailed(*packet.Packet)      {}
func (s *sinkProto) Send(target packet.NodeID, size int) { s.sends = append(s.sends, target) }

func TestCBRGeneratesAtInterval(t *testing.T) {
	nw := node.New(node.Config{Positions: []geo.Point{{X: 0, Y: 0}, {X: 100, Y: 0}}, Seed: 5})
	sinks := make([]*sinkProto, 0, 2)
	nw.Install(func(n *node.Node) node.Protocol {
		s := &sinkProto{}
		sinks = append(sinks, s)
		return s
	})
	c := NewCBR(nw.Nodes[0], 1, 0.5, 100)
	sent := 0
	c.OnSend = func() { sent++ }
	c.StartAt(0.25)
	nw.Run(10)
	// Generations at 0.25, 0.75, 1.25, ... 9.75 → 20 packets.
	if c.Sent() != 20 || sent != 20 {
		t.Fatalf("sent %d (hook %d), want 20", c.Sent(), sent)
	}
	if len(sinks[0].sends) != 20 {
		t.Fatalf("protocol saw %d sends", len(sinks[0].sends))
	}
	for _, target := range sinks[0].sends {
		if target != 1 {
			t.Fatalf("send to %v, want 1", target)
		}
	}
	c.Stop()
	nw.Kernel.SetHorizon(1e18)
	nw.Run(20)
	if c.Sent() != 20 {
		t.Fatal("CBR kept generating after Stop")
	}
}

func TestCBRSilentWhileNodeDown(t *testing.T) {
	nw := node.New(node.Config{Positions: []geo.Point{{X: 0, Y: 0}, {X: 100, Y: 0}}, Seed: 6})
	nw.Install(func(n *node.Node) node.Protocol { return &sinkProto{} })
	c := NewCBR(nw.Nodes[0], 1, 0.5, 100)
	c.StartAt(0.25)
	nw.Kernel.At(2, func() { nw.Nodes[0].Fail() })
	nw.Kernel.At(4, func() { nw.Nodes[0].Recover() })
	nw.Run(6)
	// Without the outage we'd have 12 generations; the 2-second outage
	// suppresses 4 of them.
	if c.Sent() != 8 {
		t.Fatalf("sent %d, want 8 (outage suppression)", c.Sent())
	}
}

func TestCBRRandomStartWithinInterval(t *testing.T) {
	nw := node.New(node.Config{Positions: []geo.Point{{X: 0, Y: 0}, {X: 100, Y: 0}}, Seed: 7})
	nw.Install(func(n *node.Node) node.Protocol { return &sinkProto{} })
	c := NewCBR(nw.Nodes[0], 1, 2.0, 100)
	c.Start()
	nw.Run(1.99)
	if c.Sent() != 1 {
		t.Fatalf("sent %d, want exactly 1 within the first interval", c.Sent())
	}
}

func TestCBRBadIntervalPanics(t *testing.T) {
	nw := node.New(node.Config{Positions: []geo.Point{{X: 0, Y: 0}, {X: 100, Y: 0}}, Seed: 8})
	nw.Install(func(n *node.Node) node.Protocol { return &sinkProto{} })
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCBR(nw.Nodes[0], 1, 0, 100)
}
