package pdes

import (
	"slices"
	"strings"
	"testing"

	"routeless/internal/sim"
)

// newTiles builds n tile kernels with tag tracking on (as the network
// constructor does) plus a control-lane kernel.
func newTiles(n int) ([]*sim.Kernel, *sim.Kernel) {
	tiles := make([]*sim.Kernel, n)
	for i := range tiles {
		tiles[i] = sim.NewKernel(int64(i + 1))
		tiles[i].EnableTagTracking()
	}
	return tiles, sim.NewKernel(99)
}

func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic, want one containing %q", want)
		}
		if msg := toString(r); !strings.Contains(msg, want) {
			t.Fatalf("panic %q, want it to contain %q", msg, want)
		}
	}()
	fn()
}

func toString(r any) string {
	switch v := r.(type) {
	case string:
		return v
	case error:
		return v.Error()
	default:
		return ""
	}
}

func TestRunIncompleteConfigPanics(t *testing.T) {
	tiles, global := newTiles(2)
	ok := Config{
		Tiles:      tiles,
		Global:     global,
		MinArm:     0.5,
		CrossDelay: []sim.Time{sim.Infinity, sim.Infinity},
		Exchange:   func() int { return 0 },
	}
	cases := []struct {
		name   string
		mutate func(Config) Config
	}{
		{"no tiles", func(c Config) Config { c.Tiles = nil; return c }},
		{"nil global", func(c Config) Config { c.Global = nil; return c }},
		{"crossdelay mismatch", func(c Config) Config { c.CrossDelay = c.CrossDelay[:1]; return c }},
		{"nil exchange", func(c Config) Config { c.Exchange = nil; return c }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mustPanic(t, "pdes: incomplete config", func() { Run(tc.mutate(ok), 1.0) })
		})
	}
}

func TestRunBeforeNowPanics(t *testing.T) {
	tiles, global := newTiles(1)
	global.RunUntil(5.0)
	cfg := Config{
		Tiles:      tiles,
		Global:     global,
		MinArm:     0.5,
		CrossDelay: []sim.Time{sim.Infinity},
		Exchange:   func() int { return 0 },
	}
	mustPanic(t, "before now", func() { Run(cfg, 1.0) })
}

func TestRunDrainsAllKernelsToHorizon(t *testing.T) {
	tiles, global := newTiles(2)
	// Per-tile recording slices: each is written only by its own tile's
	// worker, read only after Run joins them.
	fired := make([][]sim.Time, 2)
	for i, k := range tiles {
		i := i
		k.Schedule(sim.Time(i)+1.0, func() { fired[i] = append(fired[i], sim.Time(i)+1.0) })
		k.Schedule(sim.Time(i)+4.0, func() { fired[i] = append(fired[i], sim.Time(i)+4.0) })
	}
	var globalFired []sim.Time
	global.Schedule(2.5, func() { globalFired = append(globalFired, 2.5) })

	Run(Config{
		Tiles:      tiles,
		Global:     global,
		MinArm:     0.5,
		CrossDelay: []sim.Time{sim.Infinity, sim.Infinity},
		Exchange:   func() int { return 0 },
	}, 10.0)

	for i := range fired {
		if len(fired[i]) != 2 {
			t.Errorf("tile %d ran %d events, want 2", i, len(fired[i]))
		}
		if now := tiles[i].Now(); now != 10.0 {
			t.Errorf("tile %d clock = %v, want horizon 10.0", i, now)
		}
	}
	if len(globalFired) != 1 {
		t.Errorf("global ran %d events, want 1", len(globalFired))
	}
	if now := global.Now(); now != 10.0 {
		t.Errorf("global clock = %v, want horizon 10.0", now)
	}
}

func TestExchangeDeliversAcrossTiles(t *testing.T) {
	tiles, global := newTiles(2)
	const delay = 1.0

	// Tile 0 "transmits" at t=1 via a tagged event that queues a
	// boundary crossing; Exchange moves it onto tile 1's kernel at
	// t=1+delay, exactly the shape the network's outboxes use.
	type crossing struct {
		to int
		at sim.Time
	}
	var outbox []crossing
	tiles[0].ScheduleTagged(1.0, func() {
		outbox = append(outbox, crossing{to: 1, at: tiles[0].Now() + delay})
	})
	var delivered []sim.Time
	exchange := func() int {
		n := len(outbox)
		for _, c := range outbox {
			c := c
			tiles[c.to].Schedule(c.at, func() { delivered = append(delivered, c.at) })
		}
		outbox = outbox[:0]
		return n
	}

	Run(Config{
		Tiles:      tiles,
		Global:     global,
		MinArm:     0.5,
		CrossDelay: []sim.Time{delay, delay},
		Exchange:   exchange,
	}, 10.0)

	if len(delivered) != 1 || delivered[0] != 1.0+delay {
		t.Fatalf("delivered = %v, want [%v]", delivered, 1.0+delay)
	}
}

// TestWorkersKnobIsResultInvariant runs the same many-tile workload
// (most tiles idle — the active-worklist path) under several pool
// sizes, including a pool far smaller than the tile count, and demands
// identical firing orders and final clocks.
func TestWorkersKnobIsResultInvariant(t *testing.T) {
	const tilesN = 16
	run := func(workers int) ([][]int, []sim.Time) {
		tiles, global := newTiles(tilesN)
		// Per-tile firing records: written only by the owning tile's
		// worker, read after Run joins the pool. Only tiles 3 and 11 are
		// ever active; the rest must still end at the horizon via lazy
		// clock sync.
		order := make([][]int, tilesN)
		for _, i := range []int{3, 11} {
			i := i
			for step := 0; step < 4; step++ {
				step := step
				tiles[i].Schedule(sim.Time(step)+0.25, func() {
					order[i] = append(order[i], step)
				})
			}
		}
		global.Schedule(1.5, func() {
			// Control-lane contract: every tile clock equals the global
			// clock whenever a global handler runs.
			for i, k := range tiles {
				if k.Now() != global.Now() {
					t.Errorf("workers=%d: tile %d clock %v at global handler time %v",
						workers, i, k.Now(), global.Now())
				}
			}
		})
		cd := make([]sim.Time, tilesN)
		for i := range cd {
			cd[i] = 0.5
		}
		Run(Config{
			Tiles:      tiles,
			Global:     global,
			MinArm:     0.25,
			CrossDelay: cd,
			Exchange:   func() int { return 0 },
			Workers:    workers,
		}, 10.0)
		clocks := make([]sim.Time, tilesN)
		for i, k := range tiles {
			clocks[i] = k.Now()
		}
		return order, clocks
	}

	wantOrder, wantClocks := run(1)
	for _, c := range wantClocks {
		if c != 10.0 {
			t.Fatalf("clocks after run = %v, want all at horizon", wantClocks)
		}
	}
	if len(wantOrder[3]) != 4 || len(wantOrder[11]) != 4 {
		t.Fatalf("active tiles fired %d/%d events, want 4/4", len(wantOrder[3]), len(wantOrder[11]))
	}
	for _, w := range []int{2, 3, 16, 64} {
		order, clocks := run(w)
		for i := range order {
			if !slices.Equal(order[i], wantOrder[i]) {
				t.Errorf("workers=%d: tile %d fired %v, want %v", w, i, order[i], wantOrder[i])
			}
		}
		if !slices.Equal(clocks, wantClocks) {
			t.Errorf("workers=%d: clocks %v, want %v", w, clocks, wantClocks)
		}
	}
}

func TestWorkerPanicPropagates(t *testing.T) {
	tiles, global := newTiles(2)
	tiles[0].Schedule(1.0, func() { panic("boom") })
	cfg := Config{
		Tiles:      tiles,
		Global:     global,
		MinArm:     0.5,
		CrossDelay: []sim.Time{sim.Infinity, sim.Infinity},
		Exchange:   func() int { return 0 },
	}
	mustPanic(t, "pdes: tile worker panic", func() { Run(cfg, 10.0) })
}
