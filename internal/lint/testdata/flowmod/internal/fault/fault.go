// Package fault mirrors the fault plane: the flow-aware faultrand rule
// must catch streams laundered through helpers even though no
// *rand.Rand ever crosses a parameter list.
package fault

import "math/rand"

// stream launders a fixed-seed generator through a helper; the
// syntactic parameter ban cannot see it.
func stream() *rand.Rand { return rand.New(rand.NewSource(7)) }

// Jitter draws from the laundered stream.
func Jitter() float64 { return stream().Float64() }
