package traffic

import "routeless/internal/digest"

// DigestState folds the flow's generation state into h. The ticker's
// armed deadline is captured by the kernel's pending-event digest;
// what is ours is the target and how many packets this flow has
// generated so far.
func (c *CBR) DigestState(h *digest.Hash) {
	h.Int64(int64(c.target))
	h.Float64(float64(c.Interval))
	h.Uint64(c.sent)
}
