// Package experiments reproduces every figure of the paper's
// evaluation plus the ablations listed in DESIGN.md. Each figure has a
// Config (defaults reproduce the paper's scale; tests and benches scale
// down), a Run function that sweeps the figure's x-axis across seeds in
// parallel, and a Table formatter that prints the series the paper
// plots.
package experiments

import (
	"routeless/internal/metrics"
	"routeless/internal/node"
	"routeless/internal/packet"
	"routeless/internal/sim"
	"routeless/internal/stats"
	"routeless/internal/traffic"
)

// RunMetrics is one simulation run's outcome in the paper's units.
type RunMetrics struct {
	Delay      float64 // mean end-to-end delay, seconds
	Hops       float64 // mean hop count of delivered packets
	Delivery   float64 // delivered / sent
	MACPackets float64 // total MAC-layer transmissions
	EnergyJ    float64 // total radio energy, joules
}

// Agg aggregates RunMetrics across seeds.
type Agg struct {
	Delay, Hops, Delivery, MACPackets, EnergyJ stats.Welford
}

// Add folds one run into the aggregate.
func (a *Agg) Add(m RunMetrics) {
	a.Delay.Add(m.Delay)
	a.Hops.Add(m.Hops)
	a.Delivery.Add(m.Delivery)
	a.MACPackets.Add(m.MACPackets)
	a.EnergyJ.Add(m.EnergyJ)
}

// appSample is one application delivery as buffered by the tap: its
// receive time plus the delay/hops the meter scores.
type appSample struct {
	at    sim.Time
	delay float64
	hops  int
}

// AppTap meters application traffic across all nodes without touching
// the shared Meter from inside event handlers. Deliveries append to a
// per-tile buffer (handlers on one tile only write that tile's buffer,
// so the tap is safe under tiled PDES); fold replays them into the
// Meter after the run in global time order — on a sequential network
// that is exactly the append order, so the Welford fold sequence, and
// hence every journaled app.* value, is unchanged from the inline
// metering it replaces. Sends are counted from each watched CBR's own
// counter instead of a shared-callback increment.
//
// The type is exported for the scenario fuzzer (internal/fuzz), which
// meters generated workloads through the exact tap the figures use so
// both face the same oracle.
type AppTap struct {
	m      *stats.Meter
	bufs   [][]appSample
	cbrs   []*traffic.CBR
	folded bool
}

// NewAppTap attaches the tap to every node and exposes the (folded)
// meter on the network registry as the app.* series. Snapshots are
// taken after collect, which folds first, so journaled values see the
// complete run.
func NewAppTap(nw *node.Network, m *stats.Meter) *AppTap {
	t := &AppTap{m: m, bufs: make([][]appSample, nw.NumTiles())}
	for _, n := range nw.Nodes {
		n := n
		n.OnAppReceive = func(p *packet.Packet) {
			now := n.Kernel.Now()
			t.bufs[n.Tile] = append(t.bufs[n.Tile], appSample{
				at:    now,
				delay: float64(now - p.CreatedAt),
				hops:  p.HopCount,
			})
		}
	}
	nw.Metrics.Func("app.sent", func() uint64 { return m.Sent })
	nw.Metrics.Func("app.received", func() uint64 { return m.Received })
	nw.Metrics.GaugeFunc("app.delay_mean_s", func() float64 { return m.Delay.Mean() })
	nw.Metrics.GaugeFunc("app.hops_mean", func() float64 { return m.Hops.Mean() })
	return t
}

// Watch registers a CBR flow whose generation count the fold adds to
// the meter's Sent.
func (t *AppTap) Watch(c *traffic.CBR) { t.cbrs = append(t.cbrs, c) }

// fold replays the buffered deliveries into the meter in (time, tile)
// order and folds the watched send counters. Idempotent.
func (t *AppTap) fold() {
	if t.folded {
		return
	}
	t.folded = true
	for _, c := range t.cbrs {
		t.m.Sent += c.Sent()
	}
	if len(t.bufs) == 1 {
		for _, s := range t.bufs[0] {
			t.m.PacketReceived(s.delay, s.hops)
		}
		return
	}
	// k-way merge; strict < keeps the lowest tile on equal timestamps.
	idx := make([]int, len(t.bufs))
	for {
		best := -1
		var bestAt sim.Time
		for ti, b := range t.bufs {
			if idx[ti] >= len(b) {
				continue
			}
			if best < 0 || b[idx[ti]].at < bestAt {
				best, bestAt = ti, b[idx[ti]].at
			}
		}
		if best < 0 {
			return
		}
		s := t.bufs[best][idx[best]]
		idx[best]++
		t.m.PacketReceived(s.delay, s.hops)
	}
}

// CollectChecked is the shared run-under-oracle helper: it folds the
// tap, counts the network's events into the package throughput
// accumulator, evaluates every conservation law and invariant, and
// returns the run's paper-unit metrics together with any oracle
// violation as an error value. Every experiment run funnels through
// here via collect (which panics — a violation there is a simulator
// bug, not a measurement); the scenario fuzzer calls it directly and
// classifies the error as a verdict instead.
func CollectChecked(nw *node.Network, t *AppTap) (RunMetrics, error) {
	t.fold()
	countNetworkEvents(nw)
	err := nw.CheckInvariants()
	m := t.m
	return RunMetrics{
		Delay:      m.Delay.Mean(),
		Hops:       m.Hops.Mean(),
		Delivery:   m.DeliveryRatio(),
		MACPackets: float64(nw.MACPackets()),
		EnergyJ:    nw.TotalEnergy(),
	}, err
}

// collect converts a finished network + tap into RunMetrics, panicking
// on any conservation-law violation.
func collect(nw *node.Network, t *AppTap) RunMetrics {
	rm, err := CollectChecked(nw, t)
	if err != nil {
		panic(err)
	}
	return rm
}

// runOut is one run's result as it crosses the parallel.Map boundary:
// the paper-unit metrics, plus the final registry snapshot when the
// sweep is journaling (nil otherwise — snapshots are not free).
type runOut struct {
	RunMetrics
	snap *metrics.Snapshot
}

// snapshotIf captures the network's final metric snapshot when want is
// set.
func snapshotIf(nw *node.Network, want bool) *metrics.Snapshot {
	if !want {
		return nil
	}
	return nw.Metrics.Snapshot()
}

// drainTime is how long runs continue after traffic stops so in-flight
// packets can land.
const drainTime sim.Time = 5

// simTime re-exports sim.Time for test ergonomics.
type simTime = sim.Time
