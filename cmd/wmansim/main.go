// Command wmansim reproduces the paper's evaluation. Each experiment
// prints the series the corresponding figure plots, as an aligned table
// or CSV.
//
// Usage:
//
//	wmansim -exp fig1            # Figure 1 (SSAF vs counter-1 flooding)
//	wmansim -exp fig2            # Figure 2 (congestion avoidance, + map)
//	wmansim -exp fig3            # Figure 3 (Routeless vs AODV)
//	wmansim -exp fig4            # Figure 4 (… under node failures)
//	wmansim -exp abl1|abl2|abl3|abl4
//	wmansim -exp churn           # fault-plane churn study (-churn shorthand)
//	wmansim -exp mega            # million-node arena ladder (SSAF at Figure-1 density)
//	wmansim -mega                # shorthand: the single N=1,000,000 mega run
//	wmansim -exp all             # every figure except mega (it is a scale proof, not a figure)
//
// Scale selection:
//
//	-scale full    paper scale (500 nodes / 2000 m for routing; slow)
//	-scale small   reduced scale with the same density (default)
//
// Other flags: -seeds N (replications), -duration S, -workers N,
// -tiles N (intra-run PDES tiling for fig1/fig3/fig4/churn; fig2 and
// the ablation reruns stay sequential), -csv (machine-readable
// output), -width (fig2 map width), -journal F (append a JSONL run
// journal: per-run metric snapshots for the journaled figures plus one
// summary record per experiment with the table CSV, git revision, and
// wall time). Tiled runs are bitwise identical to sequential ones, so
// -tiles changes wall time, never output bytes.
//
// Unified scenario documents (the same format simserve accepts):
//
//	wmansim -scenario run.json -journal run.jsonl     # run one document
//	wmansim -scenario run.json -snapshot-at 5 -snapshot-out run.snap
//	wmansim -restore run.snap -journal tail.jsonl     # resume a checkpoint
//
// A -scenario run's journal bytes equal what simserve streams for the
// same document, and a -restore run appends exactly the records past
// the checkpoint — concatenating prefix and suffix reproduces the
// uninterrupted journal byte for byte.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"routeless/internal/experiments"
	"routeless/internal/metrics"
	"routeless/internal/scenario"
	"routeless/internal/sim"
	"routeless/internal/snapshot"
	"routeless/internal/stats"
)

// gitRev stamps journal records with the checkout's short commit hash;
// it returns "" outside a git checkout (the field is then omitted).
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func main() {
	os.Exit(run())
}

// runScenario is the unified-document entry point: build a run from a
// scenario JSON file (or restore one from a snapshot document), journal
// it through the same code path simserve streams, and either checkpoint
// mid-flight or finish and print the paper-unit metrics as JSON. The
// journal bytes a finished -scenario run appends are identical to what
// simserve streams for the same document.
func runScenario(scenarioPath, restorePath string, snapAt float64, snapOut string, journal *metrics.Journal) int {
	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "wmansim:", err)
		return 2
	}
	var run *scenario.Run
	switch {
	case restorePath != "":
		f, err := os.Open(restorePath)
		if err != nil {
			return fail(err)
		}
		run, err = snapshot.Load(f)
		f.Close()
		if err != nil {
			return fail(err)
		}
	default:
		data, err := os.ReadFile(scenarioPath)
		if err != nil {
			return fail(err)
		}
		sc, err := scenario.Parse(data)
		if err != nil {
			return fail(err)
		}
		run, err = scenario.Build(sc)
		if err != nil {
			return fail(err)
		}
	}
	run.SetJournal(journal)

	if snapAt > 0 || snapOut != "" {
		if snapOut == "" || !(snapAt > 0) {
			return fail(fmt.Errorf("-snapshot-at and -snapshot-out must be used together"))
		}
		if err := run.AdvanceTo(sim.Time(snapAt)); err != nil {
			return fail(err)
		}
		f, err := os.Create(snapOut)
		if err != nil {
			return fail(err)
		}
		if err := snapshot.Save(f, run); err != nil {
			f.Close()
			return fail(err)
		}
		if err := f.Close(); err != nil {
			return fail(err)
		}
		fmt.Printf("snapshot at t=%g written to %s\n", snapAt, snapOut)
		return 0
	}

	rm, ferr := run.Finish()
	out, err := json.Marshal(rm)
	if err != nil {
		return fail(err)
	}
	fmt.Println(string(out))
	if ferr != nil {
		fmt.Fprintln(os.Stderr, "wmansim: oracle:", ferr)
		return 1
	}
	return 0
}

func run() int {
	var (
		exp      = flag.String("exp", "all", "experiment: fig1|fig2|fig3|fig4|abl1|abl2|abl3|abl4|abl5|abl6|churn|mega|all")
		churn    = flag.Bool("churn", false, "shorthand for -exp churn")
		mega     = flag.Bool("mega", false, "shorthand for -exp mega at N=1,000,000 only")
		scale    = flag.String("scale", "small", "full (paper scale) or small (same density, faster)")
		seeds    = flag.Int("seeds", 3, "independent replications per point")
		duration = flag.Float64("duration", 0, "traffic seconds per run (0 = scale default)")
		workers  = flag.Int("workers", 0, "parallel runs (0 = GOMAXPROCS)")
		tiles    = flag.Int("tiles", 1, "PDES tiles per run for fig1/fig3/fig4/churn (1 = sequential kernel)")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		width    = flag.Int("width", 76, "figure 2 map width in characters")
		journalF = flag.String("journal", "", "append a JSONL run journal to this file")

		scenarioF = flag.String("scenario", "", "run a single scenario document (JSON file) instead of an experiment")
		restoreF  = flag.String("restore", "", "resume a run from this snapshot document instead of building -scenario")
		snapAt    = flag.Float64("snapshot-at", 0, "with -scenario/-restore: pause at this sim time, write -snapshot-out, and exit")
		snapOut   = flag.String("snapshot-out", "", "snapshot output file for -snapshot-at")
	)
	flag.Parse()
	if *churn {
		*exp = "churn"
	}
	if *mega {
		*exp = "mega"
	}
	if *tiles < 1 {
		fmt.Fprintf(os.Stderr, "wmansim: -tiles must be >= 1 (got %d)\n", *tiles)
		return 2
	}

	var journal *metrics.Journal
	if *journalF != "" {
		f, err := os.OpenFile(*journalF, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wmansim:", err)
			return 2
		}
		defer f.Close()
		journal = metrics.NewJournal(f)
	}

	if *scenarioF != "" || *restoreF != "" {
		return runScenario(*scenarioF, *restoreF, *snapAt, *snapOut, journal)
	}

	seedList := make([]int64, *seeds)
	for i := range seedList {
		seedList[i] = int64(i + 1)
	}

	full := *scale == "full"
	if !full && *scale != "small" {
		fmt.Fprintf(os.Stderr, "unknown -scale %q\n", *scale)
		return 2
	}

	// fig2's path collector shares state across the whole run, so it
	// stays on the sequential kernel regardless of -tiles.
	fig1 := experiments.Fig1Config{Seeds: seedList, Workers: *workers, Tiles: *tiles, Duration: *duration, Journal: journal}
	fig34 := experiments.Fig34Config{Seeds: seedList, Workers: *workers, Tiles: *tiles, Duration: *duration, Journal: journal}
	fig2 := experiments.Fig2Config{Seed: seedList[0], Workers: *workers}
	churnCfg := experiments.ChurnConfig{Seeds: seedList, Workers: *workers, Tiles: *tiles, Duration: *duration, Journal: journal}
	// Mega runs auto-size their PDES tiling from the arena (the point of
	// the study); an explicit -tiles above 1 overrides that, -tiles 1
	// keeps the default. Replications default to one — each x-axis point
	// is a whole arena, not a noisy sample.
	megaCfg := experiments.MegaConfig{Seeds: seedList[:1], Workers: *workers, Duration: *duration, Journal: journal}
	if *tiles > 1 {
		megaCfg.Tiles = *tiles
	}
	if *mega {
		megaCfg.Ns = []int{1_000_000}
	} else if full {
		megaCfg.Ns = []int{10_000, 100_000, 1_000_000}
	} else {
		megaCfg.Ns = []int{1_000, 10_000, 100_000}
	}
	if !full {
		// Same node density as the paper, quarter the area.
		fig1.Nodes, fig1.Terrain = 60, 800
		fig1.Connections = 20
		fig34.Nodes, fig34.Terrain = 200, 1265
		if fig34.Duration == 0 {
			fig34.Duration = 30
		}
		if fig1.Duration == 0 {
			fig1.Duration = 20
		}
		fig2.Nodes, fig2.Terrain = 300, 1500
		fig2.Duration = 30
		churnCfg.Nodes, churnCfg.Terrain = 150, 1100
		if churnCfg.Duration == 0 {
			churnCfg.Duration = 20
		}
	}

	show := func(t *stats.Table) {
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t)
		}
	}

	rev := ""
	if journal != nil {
		rev = gitRev()
	}

	runExp := func(name string) bool {
		//lint:ignore wallclock wall-time of a whole experiment, measured outside the event loop
		start := time.Now()
		var tbl *stats.Table
		switch name {
		case "fig1":
			tbl = experiments.Fig1Table(experiments.RunFig1(fig1))
		case "fig2":
			res := experiments.RunFig2(fig2)
			tbl = experiments.Fig2Table(res)
			show(tbl)
			if !*csv {
				fmt.Println(experiments.Fig2Render(res, *width))
			}
		case "fig3":
			tbl = experiments.Fig3Table(experiments.RunFig3(fig34))
		case "fig4":
			tbl = experiments.Fig4Table(experiments.RunFig4(fig34))
		case "abl1":
			tbl = experiments.Abl1Table(experiments.RunAbl1(fig1))
		case "abl2":
			tbl = experiments.Abl2Table(experiments.RunAbl2(fig34, nil, 5))
		case "abl3":
			tbl = experiments.Abl3Table(experiments.RunAbl3(*workers, nil, 0, 10e-3, seedList[0]))
		case "abl4":
			tbl = experiments.Abl4Table(experiments.RunAbl4(fig34))
		case "abl5":
			tbl = experiments.Abl5Table(experiments.RunAbl5(fig34, nil, 5))
		case "abl6":
			tbl = experiments.Abl6Table(experiments.RunAbl6(fig34))
		case "churn":
			tbl = experiments.ChurnTable(experiments.RunChurn(churnCfg))
		case "mega":
			tbl = experiments.MegaTable(experiments.RunMega(megaCfg))
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			return false
		}
		if name != "fig2" { // fig2 already printed (it adds the map render)
			show(tbl)
		}
		if journal != nil {
			// The summary record carries the environment stamps; the
			// deterministic per-run records were written by the Run funcs.
			_ = journal.Write(metrics.Record{
				Experiment: name,
				Label:      "summary",
				TableCSV:   tbl.CSV(),
				GitRev:     rev,
				GoVersion:  runtime.Version(),
				//lint:ignore wallclock environment stamp on the journal, excluded from golden comparisons
				WallSeconds: time.Since(start).Seconds(),
			})
		}
		if !*csv {
			//lint:ignore wallclock reports elapsed wall time after the run's kernel has drained
			fmt.Printf("[%s done in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
		}
		return true
	}

	if *exp == "all" {
		for _, name := range []string{"fig1", "fig2", "fig3", "fig4", "abl1", "abl2", "abl3", "abl4", "abl5", "abl6", "churn"} {
			if !runExp(name) {
				return 2
			}
		}
	} else if !runExp(*exp) {
		return 2
	}
	if journal != nil {
		if err := journal.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "wmansim: journal:", err)
			return 1
		}
	}
	return 0
}
