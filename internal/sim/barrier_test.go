package sim

import "testing"

// These tests pin the kernel surface the tiled PDES engine stands on:
// PeekTime/PeekTagged lookahead probes, tagged-event tracking, and the
// exclusive barrier advance.

func TestPeekTime(t *testing.T) {
	k := NewKernel(1)
	if k.PeekTime() != Infinity {
		t.Fatalf("empty kernel PeekTime = %v, want Infinity", k.PeekTime())
	}
	k.Schedule(2.0, func() {})
	e := k.Schedule(1.0, func() {})
	if k.PeekTime() != 1.0 {
		t.Fatalf("PeekTime = %v, want 1.0", k.PeekTime())
	}
	k.Cancel(e)
	if k.PeekTime() != 2.0 {
		t.Fatalf("PeekTime after cancel = %v, want 2.0", k.PeekTime())
	}
}

func TestPeekTaggedTracksOnlyTaggedEvents(t *testing.T) {
	k := NewKernel(1)
	k.EnableTagTracking()
	if k.PeekTagged() != Infinity {
		t.Fatalf("no tagged events: PeekTagged = %v, want Infinity", k.PeekTagged())
	}
	k.Schedule(0.5, func() {}) // untagged: invisible to PeekTagged
	e2 := k.ScheduleTagged(2.0, func() {})
	k.ScheduleTagged(3.0, func() {})
	if k.PeekTagged() != 2.0 {
		t.Fatalf("PeekTagged = %v, want 2.0", k.PeekTagged())
	}
	// Cancelling the earliest tagged event must advance the probe.
	k.Cancel(e2)
	if k.PeekTagged() != 3.0 {
		t.Fatalf("PeekTagged after cancel = %v, want 3.0", k.PeekTagged())
	}
	// Running past a tagged event removes it from the tag heap too.
	k.RunUntil(3.5)
	if k.PeekTagged() != Infinity {
		t.Fatalf("PeekTagged after run = %v, want Infinity", k.PeekTagged())
	}
}

func TestAtTaggedReschedule(t *testing.T) {
	k := NewKernel(1)
	k.EnableTagTracking()
	e := k.ScheduleTagged(5.0, func() {})
	k.ScheduleTagged(7.0, func() {})
	// A reschedule is cancel + AtTagged — the shape Timer.Reset uses —
	// and must move the event in the tag heap, not just the main heap.
	k.Cancel(e)
	e = k.AtTagged(9.0, func() {})
	if k.PeekTagged() != 7.0 {
		t.Fatalf("PeekTagged after reschedule = %v, want 7.0", k.PeekTagged())
	}
	if e.At() != 9.0 {
		t.Fatalf("event time = %v, want 9.0", e.At())
	}
}

func TestTagTrackingOffIsFree(t *testing.T) {
	// Without EnableTagTracking, ScheduleTagged/AtTagged degrade to the
	// plain calls and PeekTagged stays Infinity — the sequential path
	// pays nothing.
	k := NewKernel(1)
	k.ScheduleTagged(1.0, func() {})
	if k.PeekTagged() != Infinity {
		t.Fatalf("PeekTagged with tracking off = %v, want Infinity", k.PeekTagged())
	}
}

func TestRunUntilBarrierIsExclusive(t *testing.T) {
	k := NewKernel(1)
	var got []float64
	k.Schedule(1.0, func() { got = append(got, 1.0) })
	k.Schedule(2.0, func() { got = append(got, 2.0) })
	k.Schedule(3.0, func() { got = append(got, 3.0) })

	// Events strictly before the barrier run; one exactly at it waits.
	k.RunUntilBarrier(2.0)
	if len(got) != 1 || got[0] != 1.0 {
		t.Fatalf("after barrier 2.0: ran %v, want [1]", got)
	}
	if k.Now() != 2.0 {
		t.Fatalf("clock = %v, want barrier time 2.0", k.Now())
	}

	// The held event runs in the next window.
	k.RunUntilBarrier(2.5)
	if len(got) != 2 || got[1] != 2.0 {
		t.Fatalf("after barrier 2.5: ran %v, want [1 2]", got)
	}

	// RunUntil is inclusive by contrast: the 3.0 event runs at horizon 3.0.
	k.RunUntil(3.0)
	if len(got) != 3 {
		t.Fatalf("after RunUntil(3.0): ran %v, want all three", got)
	}
}

func TestRunUntilBarrierPastPanics(t *testing.T) {
	k := NewKernel(1)
	k.RunUntilBarrier(1.0)
	defer func() {
		if recover() == nil {
			t.Fatal("RunUntilBarrier into the past should panic")
		}
	}()
	k.RunUntilBarrier(0.5)
}
