// Command simserve exposes the simulator as a streaming HTTP service
// over the unified scenario API (internal/serve): POST a scenario
// document, tail its JSONL journal live, checkpoint it mid-flight, and
// resume checkpoints as new runs. Runs execute on a sweep worker pool;
// every journal byte equals what `wmansim -scenario -journal` writes
// for the same document.
//
// Usage:
//
//	simserve -addr :8080 -workers 4
//
// API:
//
//	POST /runs                   scenario JSON  → {"id":"r000001"}
//	GET  /runs/{id}              progress/status JSON
//	GET  /runs/{id}/journal      JSONL stream, live until the run ends
//	POST /runs/{id}/snapshot?at=T  binary snapshot document
//	POST /runs/{id}/resume       snapshot document body → new run id
//
// Example session:
//
//	curl -s -X POST --data-binary @run.json localhost:8080/runs
//	curl -sN localhost:8080/runs/r000001/journal
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"routeless/internal/serve"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "simulation worker pool size (0 = GOMAXPROCS)")
	)
	flag.Parse()

	srv := serve.New(*workers)
	defer srv.Close()
	fmt.Fprintf(os.Stderr, "simserve: listening on %s\n", *addr)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, "simserve:", err)
		return 1
	}
	return 0
}
