package sweep

import (
	"sync"

	"routeless/internal/node"
	"routeless/internal/parallel"
)

// Pool is the persistent form of the sweep engine: long-lived workers,
// each owning a reusable Context, executing jobs submitted over time
// rather than a pre-flattened cell list. It exists for serving
// workloads (cmd/simserve) where runs arrive one at a time but the
// worker-private pooling discipline — and the sharedcap ownership rule
// that comes with it — should hold exactly as it does in a batch sweep.
//
// Determinism note: the pool schedules, it never simulates. A job owns
// its run from build to finish on one worker goroutine, so which worker
// executes it (and in what order jobs drain) can change timing but
// never bytes.
type Pool struct {
	jobs chan func(*Context)
	wg   sync.WaitGroup
}

// NewPool starts a pool of the given size; workers <= 0 sizes it from
// GOMAXPROCS.
func NewPool(workers int) *Pool {
	workers = parallel.Workers(workers, 1<<30)
	p := &Pool{jobs: make(chan func(*Context))}
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go func(w int) {
			defer p.wg.Done()
			ctx := &Context{worker: w, rt: node.NewRuntime()}
			for job := range p.jobs {
				job(ctx)
				// Shrink pooled free lists to this job's watermark, as
				// the batch engine does between cells.
				ctx.rt.Reset()
			}
		}(w)
	}
	return p
}

// Submit hands a job to the next free worker, blocking while all are
// busy. The job must thread ctx.Runtime() into node.Config (via
// scenario.BuildOptions) and nowhere else, and must not retain the
// Context past its return.
func (p *Pool) Submit(job func(*Context)) { p.jobs <- job }

// Close stops accepting jobs and waits for in-flight ones to finish.
func (p *Pool) Close() {
	close(p.jobs)
	p.wg.Wait()
}
