package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"routeless/internal/metrics"
)

// tinyChurn is the CI-scale churn study: one nonzero intensity, one
// seed, a field small enough to run in seconds but dense enough that
// the composite fault plan (crash + degrade + jam) actually fires.
func tinyChurn() ChurnConfig {
	return ChurnConfig{
		Nodes:       30,
		Terrain:     565,
		Duration:    5,
		Pairs:       3,
		Seeds:       []int64{1},
		Intensities: []float64{0.15},
	}
}

func runTinyChurnJournal(t *testing.T, workers int) []byte {
	t.Helper()
	var buf bytes.Buffer
	cfg := tinyChurn()
	cfg.Workers = workers
	cfg.Journal = metrics.NewJournal(&buf)
	RunChurn(cfg)
	if err := cfg.Journal.Err(); err != nil {
		t.Fatalf("journal write failed: %v", err)
	}
	return buf.Bytes()
}

// TestChurnJournalWorkerCountInvariant extends the determinism promise
// to runs with the fault plane active: every fault stream derives from
// the run seed, so journal bytes cannot depend on sweep scheduling.
func TestChurnJournalWorkerCountInvariant(t *testing.T) {
	j1 := runTinyChurnJournal(t, 1)
	j8 := runTinyChurnJournal(t, 8)
	if !bytes.Equal(j1, j8) {
		t.Fatalf("worker count changed churn journal bytes:\nworkers=1: %s\nworkers=8: %s", j1, j8)
	}
}

func TestChurnJournalMatchesGolden(t *testing.T) {
	got := runTinyChurnJournal(t, 0)
	golden := filepath.Join("testdata", "churn_tiny.journal.jsonl")
	if *updateGolden {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update-golden): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("churn journal drifted from golden (rerun with -update-golden if intentional)")
	}
}
