package packet

import (
	"testing"
	"testing/quick"
)

func TestNodeIDString(t *testing.T) {
	if Broadcast.String() != "*" {
		t.Fatalf("Broadcast = %q", Broadcast.String())
	}
	if None.String() != "-" {
		t.Fatalf("None = %q", None.String())
	}
	if NodeID(7).String() != "n7" {
		t.Fatalf("NodeID(7) = %q", NodeID(7).String())
	}
}

func TestKindString(t *testing.T) {
	seen := map[string]bool{}
	for k := Kind(0); int(k) < NumKinds(); k++ {
		s := k.String()
		if s == "" {
			t.Fatalf("kind %d has empty name", k)
		}
		if seen[s] {
			t.Fatalf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
	if Kind(200).String() != "KIND(200)" {
		t.Fatal("out-of-range kind should degrade gracefully")
	}
}

func TestCloneIndependence(t *testing.T) {
	p := &Packet{Kind: KindData, Origin: 1, Target: 2, Seq: 7, HopCount: 3}
	q := p.Clone()
	q.HopCount = 99
	q.Seq = 100
	if p.HopCount != 3 || p.Seq != 7 {
		t.Fatal("Clone shares header state with original")
	}
}

func TestKeyIdentity(t *testing.T) {
	a := &Packet{Kind: KindData, Origin: 1, Seq: 7, HopCount: 2}
	b := &Packet{Kind: KindData, Origin: 1, Seq: 7, HopCount: 5, From: 9}
	if a.Key() != b.Key() {
		t.Fatal("same logical packet should have equal keys")
	}
	c := &Packet{Kind: KindReply, Origin: 1, Seq: 7}
	if a.Key() == c.Key() {
		t.Fatal("different kinds must not collide")
	}
}

func TestDedupBasic(t *testing.T) {
	c := NewDedupCache(10)
	k := FlowKey{1, KindData, 1}
	if c.Seen(k) {
		t.Fatal("first observation should be new")
	}
	if !c.Seen(k) {
		t.Fatal("second observation should be a duplicate")
	}
	if !c.Contains(k) {
		t.Fatal("Contains should report recorded key")
	}
	if c.Contains(FlowKey{2, KindData, 1}) {
		t.Fatal("Contains reported unrecorded key")
	}
}

func TestDedupEvictionFIFO(t *testing.T) {
	c := NewDedupCache(3)
	keys := []FlowKey{{1, KindData, 1}, {1, KindData, 2}, {1, KindData, 3}, {1, KindData, 4}}
	for _, k := range keys {
		c.Seen(k)
	}
	if c.Contains(keys[0]) {
		t.Fatal("oldest key should be evicted")
	}
	for _, k := range keys[1:] {
		if !c.Contains(k) {
			t.Fatalf("key %v should survive", k)
		}
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
}

func TestDedupDuplicateDoesNotEvict(t *testing.T) {
	c := NewDedupCache(2)
	a, b := FlowKey{1, KindData, 1}, FlowKey{1, KindData, 2}
	c.Seen(a)
	c.Seen(b)
	for i := 0; i < 10; i++ {
		c.Seen(a) // duplicates must not push b out
	}
	if !c.Contains(b) {
		t.Fatal("duplicate observations evicted a live key")
	}
}

func TestDedupZeroCapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDedupCache(0)
}

// Property: a DedupCache never reports new for a key seen within the
// last cap-1 distinct insertions.
func TestQuickDedupWindow(t *testing.T) {
	f := func(seqs []uint8) bool {
		const cap = 8
		c := NewDedupCache(cap)
		var window []FlowKey
		for _, s := range seqs {
			k := FlowKey{1, KindData, uint32(s)}
			inWindow := false
			for _, w := range window {
				if w == k {
					inWindow = true
					break
				}
			}
			dup := c.Seen(k)
			if inWindow && !dup {
				return false // forgot a key still inside the window
			}
			if !inWindow {
				window = append(window, k)
				if len(window) > cap {
					window = window[1:]
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPacketString(t *testing.T) {
	p := &Packet{Kind: KindReply, From: 3, To: Broadcast, Origin: 1, Target: 2, Seq: 9, HopCount: 4, ExpectedHops: 2}
	s := p.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}
