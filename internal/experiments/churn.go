package experiments

import (
	"fmt"

	"routeless/internal/fault"
	"routeless/internal/geo"
	"routeless/internal/metrics"
	"routeless/internal/node"
	"routeless/internal/packet"
	"routeless/internal/rng"
	"routeless/internal/routing"
	"routeless/internal/sim"
	"routeless/internal/stats"
	"routeless/internal/sweep"
	"routeless/internal/traffic"
)

// ChurnConfig is the fault-plane churn study: fixed bidirectional CBR
// pairs while a composite fault plan — duty-cycle crashes, per-link
// shadowing, and a roaming jammer, all scaled by one intensity knob —
// batters the network, comparing how Routeless Routing, AODV, and
// Gradient repair. It extends Figure 4's crash-only sweep to the full
// fault taxonomy and reads the recovery histograms as outputs.
type ChurnConfig struct {
	Nodes    int      // default 200
	Terrain  float64  // default 1265 (keeps Figure-4 density at 200 nodes)
	Range    float64  // default 250
	Interval float64  // CBR interval per direction, default 1 s
	Duration float64  // traffic seconds, default 30
	Seeds    []int64  // default {1,2,3}
	Workers  int      `json:"-"` // default GOMAXPROCS
	Tiles    int      `json:"-"` // PDES tiles per run; default 1 (sequential)
	Lambda   sim.Time // Routeless λ, default 10 ms
	DataSize int      // CBR payload bytes; default 64
	Pairs    int      // communicating pairs; default 5

	// Intensities is the x-axis: the crash OffFraction, with the link
	// degradation and jamming rates scaling linearly alongside it.
	// Intensity 0 runs with no fault plan at all (the clean baseline).
	Intensities []float64 // default {0, 0.05, 0.1, 0.2}

	// Journal, when non-nil, receives one Record per run in cell order.
	Journal *metrics.Journal `json:"-"`
}

func (c ChurnConfig) withDefaults() ChurnConfig {
	if c.Nodes == 0 {
		c.Nodes = 200
	}
	if c.Terrain == 0 {
		c.Terrain = 1265
	}
	if c.Range == 0 {
		c.Range = 250
	}
	if c.Interval == 0 {
		c.Interval = 1
	}
	if c.Duration == 0 {
		c.Duration = 30
	}
	if len(c.Seeds) == 0 {
		c.Seeds = []int64{1, 2, 3}
	}
	if c.Lambda == 0 {
		c.Lambda = 10e-3
	}
	if c.DataSize == 0 {
		c.DataSize = 64
	}
	if c.Pairs == 0 {
		c.Pairs = 5
	}
	if len(c.Intensities) == 0 {
		c.Intensities = []float64{0, 0.05, 0.1, 0.2}
	}
	return c
}

// numChurnProtos is the protocol count inside each intensity point.
const numChurnProtos = 3

// churnProto fixes the protocol order inside each intensity point.
func churnProto(i int) RoutingProto {
	switch i {
	case 0:
		return ProtoRouteless
	case 1:
		return ProtoAODV
	default:
		return ProtoGradient
	}
}

// repairSeries maps a protocol to its repair-latency histogram name.
func repairSeries(proto RoutingProto) string {
	switch proto {
	case ProtoRouteless:
		return "rr.repair_latency_s"
	case ProtoAODV:
		return "aodv.repair_latency_s"
	default:
		return "gradient.repair_latency_s"
	}
}

// churnPlan scales the three network-level fault shapes with one
// intensity knob: crash duty cycles at the intensity itself (Figure 4's
// axis), plus one link shadowed and one jam burst per 0.05/intensity
// seconds. Intensity 0 returns nil — no plan, bitwise identical to a
// run without the fault plane.
func churnPlan(intensity float64, exclude []packet.NodeID) fault.Plan {
	if intensity <= 0 {
		return nil
	}
	crash := fault.Crash(intensity)
	crash.Exclude = exclude
	deg := fault.Degrade(-25)
	deg.Period = sim.Time(0.05 / intensity)
	jam := fault.Jam(24.5)
	jam.Period = sim.Time(0.05 / intensity)
	return fault.Plan{crash, deg, jam}
}

// runChurnOnce mirrors runRoutingOnce with the composite fault plan in
// place of the hand-picked crash loop. The snapshot is always captured:
// the repair-latency histograms are the study's output, journaled or
// not.
func runChurnOnce(ctx *sweep.Context, cfg ChurnConfig, proto RoutingProto, intensity float64, seed int64) runOut {
	nw := node.New(node.Config{
		N:               cfg.Nodes,
		Rect:            geo.NewRect(cfg.Terrain, cfg.Terrain),
		Range:           cfg.Range,
		Seed:            seed,
		EnsureConnected: true,
		Runtime:         ctx.Runtime(),
		Tiles:           cfg.Tiles,
	})
	switch proto {
	case ProtoRouteless:
		rcfg := routing.RoutelessConfig{Lambda: cfg.Lambda}
		nw.Install(func(n *node.Node) node.Protocol { return routing.NewRouteless(rcfg) })
	case ProtoAODV:
		acfg := routing.AODVConfig{NoHello: true}
		nw.Install(func(n *node.Node) node.Protocol { return routing.NewAODV(acfg) })
	case ProtoGradient:
		nw.Install(func(n *node.Node) node.Protocol { return routing.NewGradient(routing.GradientConfig{}) })
	default:
		panic("experiments: unknown protocol " + string(proto))
	}

	var meter stats.Meter
	tap := NewAppTap(nw, &meter)

	conns := traffic.RandomPairs(rng.New(seed, rng.StreamTraffic), cfg.Nodes, cfg.Pairs)
	endpoint := make(map[packet.NodeID]bool, 2*cfg.Pairs)
	var cbrs []*traffic.CBR
	for _, p := range conns {
		endpoint[p.Src] = true
		endpoint[p.Dst] = true
		fwd := traffic.NewCBR(nw.Nodes[p.Src], p.Dst, sim.Time(cfg.Interval), cfg.DataSize)
		rev := traffic.NewCBR(nw.Nodes[p.Dst], p.Src, sim.Time(cfg.Interval), cfg.DataSize)
		tap.Watch(fwd)
		tap.Watch(rev)
		fwd.Start()
		rev.Start()
		cbrs = append(cbrs, fwd, rev)
	}

	var excl []packet.NodeID
	for _, n := range nw.Nodes {
		if endpoint[n.ID] {
			excl = append(excl, n.ID)
		}
	}
	fault.Install(nw, churnPlan(intensity, excl))

	nw.Run(sim.Time(cfg.Duration))
	for _, c := range cbrs {
		c.Stop()
	}
	nw.Run(sim.Time(cfg.Duration) + drainTime)
	return runOut{collect(nw, tap), snapshotIf(nw, true)}
}

// ChurnRow is one intensity point of the churn study.
type ChurnRow struct {
	Intensity float64

	RR, AODV, Gradient Agg

	// Per-protocol mean repair latency (seconds) and repair counts,
	// aggregated across seeds from the recovery histograms.
	RRRepairS, AODVRepairS, GradientRepairS stats.Welford
	RRRepairs, AODVRepairs, GradientRepairs stats.Welford
}

// RunChurn sweeps fault intensity × protocol across seeds.
func RunChurn(cfg ChurnConfig) []ChurnRow {
	cfg = cfg.withDefaults()
	cells := sweep.Cells("churn", len(cfg.Intensities)*numChurnProtos, cfg.Seeds)
	results := sweep.Run(cfg.Workers, cells, func(ctx *sweep.Context, i int, c sweep.Cell) runOut {
		ii, pi := c.Point/numChurnProtos, c.Point%numChurnProtos
		return runChurnOnce(ctx, cfg, churnProto(pi), cfg.Intensities[ii], c.Seed)
	})
	rows := make([]ChurnRow, len(cfg.Intensities))
	for i, x := range cfg.Intensities {
		rows[i].Intensity = x
	}
	for i, c := range cells {
		ii, pi := c.Point/numChurnProtos, c.Point%numChurnProtos
		row := &rows[ii]
		proto := churnProto(pi)
		rep, _ := results[i].snap.Get(repairSeries(proto))
		switch proto {
		case ProtoRouteless:
			row.RR.Add(results[i].RunMetrics)
			row.RRRepairS.Add(rep.Value)
			row.RRRepairs.Add(float64(rep.Count))
		case ProtoAODV:
			row.AODV.Add(results[i].RunMetrics)
			row.AODVRepairS.Add(rep.Value)
			row.AODVRepairs.Add(float64(rep.Count))
		case ProtoGradient:
			row.Gradient.Add(results[i].RunMetrics)
			row.GradientRepairS.Add(rep.Value)
			row.GradientRepairs.Add(float64(rep.Count))
		}
	}
	if cfg.Journal != nil {
		for i, c := range cells {
			ii, pi := c.Point/numChurnProtos, c.Point%numChurnProtos
			// A write failure sticks on the journal; callers check Err once.
			_ = cfg.Journal.Write(metrics.Record{
				Experiment: "churn",
				Label:      fmt.Sprintf("%s intensity=%g", churnProto(pi), cfg.Intensities[ii]),
				Seed:       c.Seed,
				Config:     cfg,
				Metrics:    results[i].snap,
			})
		}
	}
	return rows
}

// ChurnTable renders the churn study: delivery, repair latency, and
// delay per protocol against fault intensity.
func ChurnTable(rows []ChurnRow) *stats.Table {
	t := stats.NewTable(
		"Churn — RR vs AODV vs Gradient under composite faults (crash + link shadowing + jammer)",
		"intensity",
		"rr_delivery", "aodv_delivery", "grad_delivery",
		"rr_repair_s", "aodv_repair_s", "grad_repair_s",
		"rr_repairs", "aodv_repairs", "grad_repairs",
		"rr_delay_s", "aodv_delay_s", "grad_delay_s",
	)
	for _, r := range rows {
		t.AddRow(r.Intensity,
			r.RR.Delivery.Mean(), r.AODV.Delivery.Mean(), r.Gradient.Delivery.Mean(),
			r.RRRepairS.Mean(), r.AODVRepairS.Mean(), r.GradientRepairS.Mean(),
			r.RRRepairs.Mean(), r.AODVRepairs.Mean(), r.GradientRepairs.Mean(),
			r.RR.Delay.Mean(), r.AODV.Delay.Mean(), r.Gradient.Delay.Mean(),
		)
	}
	return t
}
