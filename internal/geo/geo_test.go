package geo

import (
	"math"
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

func TestDist(t *testing.T) {
	a, b := Point{0, 0}, Point{3, 4}
	if d := a.Dist(b); d != 5 {
		t.Fatalf("Dist = %v, want 5", d)
	}
	if d2 := a.Dist2(b); d2 != 25 {
		t.Fatalf("Dist2 = %v, want 25", d2)
	}
	if a.Dist(a) != 0 {
		t.Fatal("Dist to self should be 0")
	}
}

func TestDistSymmetry(t *testing.T) {
	f := func(x1, y1, x2, y2 float64) bool {
		if math.IsNaN(x1) || math.IsNaN(y1) || math.IsNaN(x2) || math.IsNaN(y2) {
			return true
		}
		a, b := Point{x1, y1}, Point{x2, y2}
		return a.Dist(b) == b.Dist(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRect(t *testing.T) {
	r := NewRect(100, 50)
	if r.Width() != 100 || r.Height() != 50 {
		t.Fatalf("dims %v x %v", r.Width(), r.Height())
	}
	if !r.Contains(Point{0, 0}) {
		t.Fatal("min corner should be contained")
	}
	if r.Contains(Point{100, 50}) {
		t.Fatal("max corner should be excluded")
	}
	if r.Contains(Point{-1, 10}) {
		t.Fatal("outside point contained")
	}
	c := r.Clamp(Point{200, -5})
	if !r.Contains(c) {
		t.Fatalf("clamped point %v not contained", c)
	}
}

func TestUniformPointsInside(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	rect := NewRect(1000, 1000)
	pts := UniformPoints(r, rect, 500)
	if len(pts) != 500 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if !rect.Contains(p) {
			t.Fatalf("point %v outside rect", p)
		}
	}
}

func TestUniformPointsDeterministic(t *testing.T) {
	rect := NewRect(100, 100)
	a := UniformPoints(rand.New(rand.NewSource(5)), rect, 50)
	b := UniformPoints(rand.New(rand.NewSource(5)), rect, 50)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("placement not deterministic")
		}
	}
}

func TestGridPoints(t *testing.T) {
	rect := NewRect(100, 100)
	pts := GridPoints(nil, rect, 25, 0)
	if len(pts) != 25 {
		t.Fatalf("got %d points, want 25", len(pts))
	}
	for _, p := range pts {
		if !rect.Contains(p) {
			t.Fatalf("point %v outside rect", p)
		}
	}
	// 5x5 lattice: first point at (10,10)
	if pts[0].Dist(Point{10, 10}) > 1e-9 {
		t.Fatalf("first lattice point %v, want (10,10)", pts[0])
	}
	withJitter := GridPoints(rand.New(rand.NewSource(2)), rect, 25, 3)
	same := 0
	for i := range withJitter {
		if withJitter[i] == pts[i] {
			same++
		}
	}
	if same == len(pts) {
		t.Fatal("jitter had no effect")
	}
}

// bruteWithin is the reference implementation for WithinRadius.
func bruteWithin(pts []Point, center Point, radius float64, exclude int) []int {
	var out []int
	for i, p := range pts {
		if i == exclude {
			continue
		}
		if p.Dist(center) <= radius {
			out = append(out, i)
		}
	}
	return out
}

func TestGridWithinRadiusMatchesBrute(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	rect := NewRect(1000, 1000)
	pts := UniformPoints(r, rect, 300)
	g := NewGrid(rect, 250, pts)
	for trial := 0; trial < 50; trial++ {
		center := Point{r.Float64() * 1000, r.Float64() * 1000}
		radius := 50 + r.Float64()*400
		got := g.WithinRadius(nil, center, radius, -1)
		want := bruteWithin(pts, center, radius, -1)
		slices.Sort(got)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d ids, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: got %v, want %v", trial, got, want)
			}
		}
	}
}

func TestGridExclude(t *testing.T) {
	rect := NewRect(100, 100)
	pts := []Point{{50, 50}, {51, 50}, {90, 90}}
	g := NewGrid(rect, 25, pts)
	got := g.WithinRadius(nil, pts[0], 10, 0)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("got %v, want [1]", got)
	}
}

func TestGridQueryOutsideBounds(t *testing.T) {
	rect := NewRect(100, 100)
	pts := []Point{{5, 5}, {95, 95}}
	g := NewGrid(rect, 30, pts)
	got := g.WithinRadius(nil, Point{-50, -50}, 90, -1)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("got %v, want [0]", got)
	}
	if got := g.WithinRadius(nil, Point{500, 500}, 10, -1); len(got) != 0 {
		t.Fatalf("expected empty, got %v", got)
	}
}

func TestGridMoveTo(t *testing.T) {
	rect := NewRect(100, 100)
	pts := []Point{{10, 10}, {90, 90}}
	g := NewGrid(rect, 20, pts)
	if got := g.WithinRadius(nil, Point{90, 90}, 5, -1); len(got) != 1 {
		t.Fatalf("precondition failed: %v", got)
	}
	g.MoveTo(0, Point{88, 88})
	got := g.WithinRadius(nil, Point{90, 90}, 5, -1)
	if len(got) != 2 {
		t.Fatalf("after move got %v, want both points", got)
	}
	if g.At(0).Dist(Point{88, 88}) != 0 {
		t.Fatal("At did not reflect move")
	}
	// Move back out.
	g.MoveTo(0, Point{10, 10})
	if got := g.WithinRadius(nil, Point{90, 90}, 5, -1); len(got) != 1 {
		t.Fatalf("after move-back got %v", got)
	}
}

func TestGridNearest(t *testing.T) {
	rect := NewRect(1000, 1000)
	r := rand.New(rand.NewSource(4))
	pts := UniformPoints(r, rect, 200)
	g := NewGrid(rect, 100, pts)
	for trial := 0; trial < 30; trial++ {
		c := Point{r.Float64() * 1000, r.Float64() * 1000}
		got := g.Nearest(c)
		best, bestD := -1, math.MaxFloat64
		for i, p := range pts {
			if d := p.Dist(c); d < bestD {
				bestD, best = d, i
			}
		}
		if got != best {
			t.Fatalf("Nearest(%v) = %d (d=%v), want %d (d=%v)",
				c, got, pts[got].Dist(c), best, bestD)
		}
	}
}

func TestGridNearestEmpty(t *testing.T) {
	g := NewGrid(NewRect(10, 10), 5, nil)
	if g.Nearest(Point{1, 1}) != -1 {
		t.Fatal("empty grid should return -1")
	}
}

// Property: WithinRadius = brute force on random configurations.
func TestQuickGridEquivalence(t *testing.T) {
	f := func(seed int64, n uint8, radius float64) bool {
		r := rand.New(rand.NewSource(seed))
		rect := NewRect(500, 500)
		pts := UniformPoints(r, rect, int(n)+1)
		rad := math.Mod(math.Abs(radius), 500)
		g := NewGrid(rect, 80, pts)
		c := Point{r.Float64() * 500, r.Float64() * 500}
		got := g.WithinRadius(nil, c, rad, -1)
		want := bruteWithin(pts, c, rad, -1)
		slices.Sort(got)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestGridBadCellPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGrid(NewRect(10, 10), 0, nil)
}
