package fuzz

import (
	"reflect"
	"testing"
)

// TestGenerateDeterministic pins the generator as a pure function of
// its seed — the property the whole reproducible-fuzzing story rests
// on.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		a := Generate(seed, Limits{})
		b := Generate(seed, Limits{})
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two generations differ:\n%+v\n%+v", seed, a, b)
		}
	}
}

// TestGenerateRespectsConstraintMatrix requires every generated
// scenario to validate cleanly: the generator reconciles its draws
// against the constraint matrix by construction, so a generated seed
// reporting invalid-scenario means generator and Validate disagree.
func TestGenerateRespectsConstraintMatrix(t *testing.T) {
	lim := Limits{}.withDefaults()
	for seed := int64(1); seed <= 200; seed++ {
		sc := Generate(seed, Limits{})
		if err := sc.Validate(); err != nil {
			t.Errorf("seed %d generated an invalid scenario: %v\n%+v", seed, err, sc)
		}
		if sc.Seed != seed {
			t.Errorf("seed %d: scenario carries Seed=%d", seed, sc.Seed)
		}
		if sc.N > lim.MaxN || sc.Duration > lim.MaxDuration ||
			len(sc.Flows) > lim.MaxFlows || len(sc.Faults) > lim.MaxFaults {
			t.Errorf("seed %d exceeds limits: %+v", seed, sc)
		}
		if sc.Tiles > 1 && (sc.Fading || sc.Mobility != nil) {
			t.Errorf("seed %d: tiled scenario with fading/mobility: %+v", seed, sc)
		}
	}
}

// TestGenerateCoversFeatures asserts the generator actually reaches
// each region of the scenario space over a modest seed range — a
// generator that never emits tiles or faults would pass every other
// test while fuzzing nothing.
func TestGenerateCoversFeatures(t *testing.T) {
	seenPlacement := map[string]bool{}
	seenProto := map[string]bool{}
	var tiled, faded, mobile, faulted int
	for seed := int64(1); seed <= 300; seed++ {
		sc := Generate(seed, Limits{})
		seenPlacement[sc.Placement] = true
		seenProto[sc.Protocol] = true
		if sc.Tiles > 1 {
			tiled++
		}
		if sc.Fading {
			faded++
		}
		if sc.Mobility != nil {
			mobile++
		}
		if len(sc.Faults) > 0 {
			faulted++
		}
	}
	for _, p := range placements {
		if !seenPlacement[p] {
			t.Errorf("placement %q never generated", p)
		}
	}
	for _, p := range protocols {
		if !seenProto[p] {
			t.Errorf("protocol %q never generated", p)
		}
	}
	if tiled == 0 || faded == 0 || mobile == 0 || faulted == 0 {
		t.Errorf("feature coverage holes: tiled=%d faded=%d mobile=%d faulted=%d",
			tiled, faded, mobile, faulted)
	}
}
