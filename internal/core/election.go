package core

import (
	"routeless/internal/metrics"
	"routeless/internal/packet"
	"routeless/internal/sim"
)

// Message is what electors and arbiters exchange. The engine is written
// against the tiny Medium interface below, so it runs identically over
// the full PHY/MAC stack or an abstract test neighborhood.
type Message struct {
	Kind   packet.Kind   // KindSync, KindAnnounce or KindAck
	Round  uint32        // election round, bumped by arbiter retriggers
	Leader packet.NodeID // announced/acknowledged leader
}

// Medium broadcasts a message from a node to whoever can hear it.
// Delivery (or loss, or collision) is the medium's business.
type Medium interface {
	Broadcast(from packet.NodeID, msg Message)
}

// Outcome is an elector's view of a finished round.
type Outcome struct {
	Round  uint32
	Leader packet.NodeID // packet.None when the node never learned one
	Won    bool          // this node announced itself
}

// Elector is one node's participation in local leader elections. It is
// driven by ObserveSync (the implicit synchronization point) and
// Handle (messages from the medium), and reports via OnOutcome.
type Elector struct {
	id     packet.NodeID
	kernel *sim.Kernel
	medium Medium
	policy BackoffPolicy

	backoff *sim.Timer
	round   uint32
	ctx     Context
	decided bool
	outcome Outcome

	// OnOutcome fires once per round, when the node either announces
	// itself or learns the leader. Optional.
	OnOutcome func(Outcome)

	stats electorCounters
}

// ElectorStats is the plain-uint64 snapshot view of election counters.
type ElectorStats struct {
	Syncs      uint64 // synchronization points observed
	Announces  uint64 // rounds this node claimed leadership
	Cancels    uint64 // backoffs cancelled by someone else's win
	Abstained  uint64 // rounds the policy declined to compete
	AckCancels uint64 // cancellations caused by arbiter ACKs
}

// electorCounters is the live counter storage behind ElectorStats.
type electorCounters struct {
	syncs      metrics.Counter
	announces  metrics.Counter
	cancels    metrics.Counter
	abstained  metrics.Counter
	ackCancels metrics.Counter
}

// NewElector builds an elector for node id using the given policy.
func NewElector(k *sim.Kernel, id packet.NodeID, medium Medium, policy BackoffPolicy) *Elector {
	e := &Elector{id: id, kernel: k, medium: medium, policy: policy}
	e.backoff = sim.NewTimer(k, e.announce)
	return e
}

// ID returns the elector's node id.
func (e *Elector) ID() packet.NodeID { return e.id }

// Stats returns the elector's counters.
func (e *Elector) Stats() ElectorStats {
	return ElectorStats{
		Syncs:      e.stats.syncs.Value(),
		Announces:  e.stats.announces.Value(),
		Cancels:    e.stats.cancels.Value(),
		Abstained:  e.stats.abstained.Value(),
		AckCancels: e.stats.ackCancels.Value(),
	}
}

// RegisterMetrics registers the elector counters; per-node sources sum
// into study-wide election.* series.
func (e *Elector) RegisterMetrics(reg *metrics.Registry) {
	reg.Observe("election.syncs", &e.stats.syncs)
	reg.Observe("election.announces", &e.stats.announces)
	reg.Observe("election.cancels", &e.stats.cancels)
	reg.Observe("election.abstained", &e.stats.abstained)
	reg.Observe("election.ack_cancels", &e.stats.ackCancels)
}

// Round returns the current round number.
func (e *Elector) Round() uint32 { return e.round }

// ObserveSync is called when the node observes the implicit
// synchronization point for a round (e.g. the end of a packet
// transmission, or a SYNC message). ctx supplies the metric inputs.
// Rounds are numbered from 1; observing a round not newer than the
// current one is ignored, so duplicate sync observations are harmless.
func (e *Elector) ObserveSync(round uint32, ctx Context) {
	if round <= e.round {
		return // stale or duplicate round
	}
	e.beginRound(round, ctx)
}

func (e *Elector) beginRound(round uint32, ctx Context) {
	e.round = round
	e.ctx = ctx
	e.ctx.Self = e.id
	if e.ctx.Rand == nil {
		// Rounds started by a SYNC message reuse the previous context,
		// which may be empty; fall back to the kernel's master stream.
		e.ctx.Rand = e.kernel.Rand()
	}
	e.decided = false
	e.outcome = Outcome{Round: round, Leader: packet.None}
	e.stats.syncs.Inc()
	d, ok := e.policy.Backoff(e.ctx)
	if !ok {
		e.stats.abstained.Inc()
		e.backoff.Stop()
		return
	}
	e.backoff.Reset(d)
}

// announce fires when the backoff expires uncancelled: claim leadership.
func (e *Elector) announce() {
	e.decided = true
	e.stats.announces.Inc()
	e.outcome = Outcome{Round: e.round, Leader: e.id, Won: true}
	e.medium.Broadcast(e.id, Message{Kind: packet.KindAnnounce, Round: e.round, Leader: e.id})
	e.report()
}

// Handle processes a message observed on the medium.
func (e *Elector) Handle(from packet.NodeID, msg Message) {
	switch msg.Kind {
	case packet.KindSync:
		// The arbiter (re)triggered a round. The metric context is the
		// same one we had; real deployments would refresh it from the
		// sync packet itself.
		e.ObserveSync(msg.Round, e.ctx)
	case packet.KindAnnounce:
		if msg.Round != e.round || e.decided {
			return
		}
		if e.backoff.Pending() {
			e.backoff.Stop()
			e.stats.cancels.Inc()
		}
		e.decided = true
		e.outcome = Outcome{Round: msg.Round, Leader: msg.Leader}
		e.report()
	case packet.KindAck:
		if msg.Round != e.round {
			return
		}
		if e.backoff.Pending() {
			e.backoff.Stop()
			e.stats.ackCancels.Inc()
		}
		if !e.decided {
			e.decided = true
			e.outcome = Outcome{Round: msg.Round, Leader: msg.Leader}
			e.report()
		}
	}
}

func (e *Elector) report() {
	if e.OnOutcome != nil {
		e.OnOutcome(e.outcome)
	}
}

// Outcome returns the node's view of the current round.
func (e *Elector) Current() Outcome { return e.outcome }

// Arbiter implements §2's reliability extension: a node within range of
// every participant that triggers the synchronization point, broadcasts
// an acknowledgement when it hears an announcement, and re-triggers the
// round when it hears nothing within Timeout. "Eventually there will be
// at least one local leader elected."
type Arbiter struct {
	id     packet.NodeID
	kernel *sim.Kernel
	medium Medium

	// Timeout is how long the arbiter waits for an announcement before
	// re-triggering.
	Timeout sim.Time
	// MaxRetries bounds re-triggers; 0 means unbounded.
	MaxRetries int

	timer      *sim.Timer
	round      uint32
	leader     packet.NodeID
	done       bool
	retries    int
	roundStart sim.Time // when the logical election began (first Trigger, not retriggers)

	// OnElected fires when the arbiter acknowledges a leader.
	OnElected func(leader packet.NodeID, round uint32)
	// OnGaveUp fires when MaxRetries is exhausted.
	OnGaveUp func(round uint32)

	stats arbiterCounters
}

// arbiterCounters is the live counter storage behind ArbiterStats.
type arbiterCounters struct {
	triggers metrics.Counter
	acks     metrics.Counter

	// electLatency spans Trigger → Ack for every completed election;
	// reelectLatency is the subset that needed at least one re-trigger —
	// the recovery metric the fault plane's churn study reads.
	electLatency   metrics.Histogram
	reelectLatency metrics.Histogram
}

// ArbiterStats is the plain-uint64 snapshot view of arbiter counters.
type ArbiterStats struct {
	Triggers uint64 // sync broadcasts (initial + retries)
	Acks     uint64 // acknowledgements broadcast
}

// NewArbiter builds an arbiter for node id.
func NewArbiter(k *sim.Kernel, id packet.NodeID, medium Medium, timeout sim.Time) *Arbiter {
	a := &Arbiter{id: id, kernel: k, medium: medium, Timeout: timeout}
	a.timer = sim.NewTimer(k, a.onTimeout)
	return a
}

// ID returns the arbiter's node id.
func (a *Arbiter) ID() packet.NodeID { return a.id }

// Stats returns the arbiter's counters.
func (a *Arbiter) Stats() ArbiterStats {
	return ArbiterStats{
		Triggers: a.stats.triggers.Value(),
		Acks:     a.stats.acks.Value(),
	}
}

// RegisterMetrics registers the arbiter counters under arbiter.* names.
func (a *Arbiter) RegisterMetrics(reg *metrics.Registry) {
	reg.Observe("arbiter.triggers", &a.stats.triggers)
	reg.Observe("arbiter.acks", &a.stats.acks)
	reg.ObserveHistogram("arbiter.elect_latency_s", &a.stats.electLatency)
	reg.ObserveHistogram("arbiter.reelect_latency_s", &a.stats.reelectLatency)
}

// Leader returns the elected leader, or packet.None.
func (a *Arbiter) Leader() packet.NodeID {
	if !a.done {
		return packet.None
	}
	return a.leader
}

// Trigger starts a new election round by broadcasting the
// synchronization packet.
func (a *Arbiter) Trigger() {
	a.round++
	a.done = false
	a.retries = 0
	a.leader = packet.None
	a.roundStart = a.kernel.Now()
	a.broadcastSync()
}

func (a *Arbiter) broadcastSync() {
	a.stats.triggers.Inc()
	a.medium.Broadcast(a.id, Message{Kind: packet.KindSync, Round: a.round})
	a.timer.Reset(a.Timeout)
}

// Handle processes a message observed by the arbiter.
func (a *Arbiter) Handle(from packet.NodeID, msg Message) {
	if msg.Kind != packet.KindAnnounce || msg.Round != a.round || a.done {
		return
	}
	a.done = true
	a.leader = msg.Leader
	a.timer.Stop()
	a.stats.acks.Inc()
	// Latency is measured from the logical election's first trigger:
	// retriggered rounds keep roundStart, so a re-election's latency
	// includes every timed-out attempt.
	lat := float64(a.kernel.Now() - a.roundStart)
	a.stats.electLatency.Observe(lat)
	if a.retries > 0 {
		a.stats.reelectLatency.Observe(lat)
	}
	a.medium.Broadcast(a.id, Message{Kind: packet.KindAck, Round: a.round, Leader: msg.Leader})
	if a.OnElected != nil {
		a.OnElected(msg.Leader, a.round)
	}
}

func (a *Arbiter) onTimeout() {
	if a.done {
		return
	}
	a.retries++
	if a.MaxRetries > 0 && a.retries > a.MaxRetries {
		if a.OnGaveUp != nil {
			a.OnGaveUp(a.round)
		}
		return
	}
	// Re-trigger as a fresh round so every participant — including
	// nodes that announced into a collision — competes again.
	a.round++
	a.broadcastSync()
}
