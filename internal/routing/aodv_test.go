package routing

import (
	"testing"

	"routeless/internal/geo"
	"routeless/internal/node"
	"routeless/internal/packet"
	"routeless/internal/sim"
)

func buildAODV(t *testing.T, cfg AODVConfig, seed int64, positions []geo.Point) (*node.Network, []*AODV) {
	t.Helper()
	nw := node.New(node.Config{Positions: positions, Seed: seed})
	as := make([]*AODV, len(positions))
	i := 0
	nw.Install(func(n *node.Node) node.Protocol {
		a := NewAODV(cfg)
		as[i] = a
		i++
		return a
	})
	return nw, as
}

func TestAODVDirectNeighbor(t *testing.T) {
	nw, as := buildAODV(t, AODVConfig{}, 1, line(2, 150))
	var got []*packet.Packet
	nw.Nodes[1].OnAppReceive = func(p *packet.Packet) { got = append(got, p.Clone()) }
	as[0].Send(1, 0)
	nw.Run(5)
	if len(got) != 1 {
		t.Fatalf("delivered %d, want 1", len(got))
	}
	if got[0].HopCount != 1 {
		t.Fatalf("hops %d, want 1", got[0].HopCount)
	}
	if h, ok := as[0].RouteTo(1); !ok || h != 1 {
		t.Fatalf("route to 1 = (%d,%v), want (1,true)", h, ok)
	}
}

func TestAODVMultiHop(t *testing.T) {
	nw, as := buildAODV(t, AODVConfig{}, 2, line(5, 200))
	var got []*packet.Packet
	nw.Nodes[4].OnAppReceive = func(p *packet.Packet) { got = append(got, p.Clone()) }
	as[0].Send(4, 0)
	nw.Run(10)
	if len(got) != 1 {
		t.Fatalf("delivered %d, want 1", len(got))
	}
	if got[0].HopCount != 4 {
		t.Fatalf("hops %d, want 4", got[0].HopCount)
	}
	// Intermediate nodes hold forward routes in both directions after
	// RREQ (reverse) + RREP (forward).
	if h, ok := as[2].RouteTo(0); !ok || h != 2 {
		t.Fatalf("mid node route to source = (%d,%v), want (2,true)", h, ok)
	}
	if h, ok := as[2].RouteTo(4); !ok || h != 2 {
		t.Fatalf("mid node route to dest = (%d,%v), want (2,true)", h, ok)
	}
}

func TestAODVRouteReuse(t *testing.T) {
	nw, as := buildAODV(t, AODVConfig{}, 3, line(3, 200))
	count := 0
	nw.Nodes[2].OnAppReceive = func(*packet.Packet) { count++ }
	as[0].Send(2, 0)
	nw.Run(5)
	rreqs := as[0].Stats().RREQSent
	for i := 0; i < 5; i++ {
		as[0].Send(2, 0)
	}
	nw.Run(15)
	if count != 6 {
		t.Fatalf("delivered %d, want 6", count)
	}
	if as[0].Stats().RREQSent != rreqs {
		t.Fatal("established route not reused")
	}
}

func TestAODVLinkBreakTriggersRediscovery(t *testing.T) {
	// Chain 0-1-2-3 with an alternate path 0-4-5-3 (longer). Kill node
	// 1 after the route forms; AODV must detect the break via ARQ and
	// re-discover through the alternate path.
	positions := []geo.Point{
		{X: 0, Y: 0}, {X: 200, Y: 0}, {X: 400, Y: 0}, {X: 600, Y: 0},
		{X: 150, Y: 150}, {X: 380, Y: 150},
	}
	nw, as := buildAODV(t, AODVConfig{}, 4, positions)
	count := 0
	nw.Nodes[3].OnAppReceive = func(*packet.Packet) { count++ }
	as[0].Send(3, 0)
	nw.Run(5)
	if count != 1 {
		t.Fatalf("first packet not delivered (%d)", count)
	}
	nw.Nodes[1].Fail()
	nw.Kernel.RunUntil(6)
	as[0].Send(3, 0)
	nw.Run(30)
	if count != 2 {
		t.Fatalf("second packet lost after link break (delivered=%d)", count)
	}
	st := as[0].Stats()
	if st.LinkBreaks == 0 {
		t.Fatal("link break never detected")
	}
	if st.Rediscoveries == 0 && st.RREQSent < 2 {
		t.Fatal("no re-discovery after link break")
	}
}

func TestAODVHelloMaintainsNeighbors(t *testing.T) {
	nw, as := buildAODV(t, AODVConfig{}, 5, line(2, 150))
	nw.Run(5)
	if as[0].Stats().Hellos == 0 {
		t.Fatal("no hello beacons sent")
	}
	if _, ok := as[0].neighbors[1]; !ok {
		t.Fatal("neighbor not learned from hellos")
	}
	// Silence the neighbor: entry must expire.
	nw.Nodes[1].Fail()
	nw.Run(15)
	if _, ok := as[0].neighbors[1]; ok {
		t.Fatal("dead neighbor never expired")
	}
	if as[0].Stats().LinkBreaks == 0 {
		t.Fatal("hello loss not counted as link break")
	}
}

func TestAODVRERRPropagates(t *testing.T) {
	// 0-1-2-3 route; when 2 dies, 1 invalidates and sends RERR; 0
	// must drop its route to 3.
	nw, as := buildAODV(t, AODVConfig{}, 6, line(4, 200))
	count := 0
	nw.Nodes[3].OnAppReceive = func(*packet.Packet) { count++ }
	as[0].Send(3, 0)
	nw.Run(5)
	if count != 1 {
		t.Fatalf("setup failed: delivered %d", count)
	}
	nw.Nodes[2].Fail()
	nw.Run(20) // hello timeout at node 1 → RERR broadcast
	if _, ok := as[0].RouteTo(3); ok {
		t.Fatal("source still holds a route through the dead node")
	}
	var rerrs uint64
	for _, a := range as {
		rerrs += a.Stats().RERRSent
	}
	if rerrs == 0 {
		t.Fatal("no RERR ever sent")
	}
}

func TestAODVNoRouteGivesUp(t *testing.T) {
	positions := []geo.Point{{X: 0, Y: 0}, {X: 200, Y: 0}, {X: 2500, Y: 0}}
	cfg := AODVConfig{DiscoveryTimeout: 0.2, MaxDiscoveryRetries: 2}
	nw, as := buildAODV(t, cfg, 7, positions)
	as[0].Send(2, 0)
	nw.Run(10)
	if as[0].Stats().DroppedNoRoute != 1 {
		t.Fatalf("DroppedNoRoute = %d, want 1", as[0].Stats().DroppedNoRoute)
	}
}

func TestAODVBidirectional(t *testing.T) {
	nw, as := buildAODV(t, AODVConfig{}, 8, line(4, 200))
	got := map[packet.NodeID]int{}
	nw.Nodes[0].OnAppReceive = func(*packet.Packet) { got[0]++ }
	nw.Nodes[3].OnAppReceive = func(*packet.Packet) { got[3]++ }
	as[0].Send(3, 0)
	as[3].Send(0, 0)
	nw.Run(10)
	if got[0] != 1 || got[3] != 1 {
		t.Fatalf("deliveries %v", got)
	}
}

func TestAODVSendToSelf(t *testing.T) {
	nw, as := buildAODV(t, AODVConfig{}, 9, line(2, 150))
	count := 0
	nw.Nodes[0].OnAppReceive = func(*packet.Packet) { count++ }
	as[0].Send(0, 0)
	nw.Run(1)
	if count != 1 {
		t.Fatalf("self delivery = %d", count)
	}
}

func TestAODVRouteExpiry(t *testing.T) {
	cfg := AODVConfig{RouteLifetime: 2}
	nw, as := buildAODV(t, cfg, 10, line(3, 200))
	count := 0
	nw.Nodes[2].OnAppReceive = func(*packet.Packet) { count++ }
	as[0].Send(2, 0)
	nw.Run(5)
	if _, ok := as[0].RouteTo(2); ok {
		t.Fatal("route should have expired after 2s idle")
	}
	// Traffic still works — it just re-discovers.
	as[0].Send(2, 0)
	nw.Run(15)
	if count != 2 {
		t.Fatalf("delivered %d, want 2", count)
	}
	if as[0].Stats().RREQSent < 2 {
		t.Fatal("expiry did not force a new discovery")
	}
}

func TestAODVHelloOverheadGrowsWithTime(t *testing.T) {
	// The cost AODV pays even when idle (and Routeless does not): MAC
	// frames accumulate linearly from beacons.
	nw, _ := buildAODV(t, AODVConfig{}, 11, line(4, 200))
	nw.Run(10)
	atTen := nw.MACPackets()
	nw.Kernel.SetHorizon(sim.Infinity)
	nw.Run(20)
	atTwenty := nw.MACPackets()
	if atTen == 0 {
		t.Fatal("no hello traffic at all")
	}
	if atTwenty < atTen+uint64(float64(atTen)*0.7) {
		t.Fatalf("hello overhead not roughly linear: %d → %d", atTen, atTwenty)
	}
}

func TestRRIdleHasNoControlTraffic(t *testing.T) {
	// Contrast with the previous test: an idle Routeless network is
	// silent (§4.2 "without incurring any overhead of control packets").
	nw, _ := buildRR(t, RoutelessConfig{}, 12, line(4, 200))
	nw.Run(30)
	if nw.MACPackets() != 0 {
		t.Fatalf("idle Routeless network transmitted %d frames", nw.MACPackets())
	}
}

func TestAODVExpandingRingFindsNearTargetCheaply(t *testing.T) {
	// With a close destination, ring TTL 1 suffices: the RREQ must not
	// flood the whole field.
	nw1 := node.New(node.Config{N: 80, Rect: geo.NewRect(900, 900), Seed: 14, EnsureConnected: true})
	plain := make([]*AODV, 0, 80)
	nw1.Install(func(n *node.Node) node.Protocol {
		a := NewAODV(AODVConfig{NoHello: true})
		plain = append(plain, a)
		return a
	})
	dst1 := nearestNeighborOf(nw1, 0)
	done := false
	nw1.Nodes[dst1].OnAppReceive = func(*packet.Packet) { done = true }
	plain[0].Send(packet.NodeID(dst1), 64)
	nw1.Run(10)
	plainPkts := nw1.MACPackets()
	if !done {
		t.Fatal("plain AODV failed to deliver")
	}

	nw2 := node.New(node.Config{N: 80, Rect: geo.NewRect(900, 900), Seed: 14, EnsureConnected: true})
	ring := make([]*AODV, 0, 80)
	nw2.Install(func(n *node.Node) node.Protocol {
		a := NewAODV(AODVConfig{NoHello: true, ExpandingRing: true})
		ring = append(ring, a)
		return a
	})
	done2 := false
	nw2.Nodes[dst1].OnAppReceive = func(*packet.Packet) { done2 = true }
	ring[0].Send(packet.NodeID(dst1), 64)
	nw2.Run(10)
	if !done2 {
		t.Fatal("expanding-ring AODV failed to deliver")
	}
	if nw2.MACPackets() >= plainPkts {
		t.Fatalf("expanding ring used %d frames, plain %d — no savings for a 1-hop target",
			nw2.MACPackets(), plainPkts)
	}
}

func TestAODVExpandingRingEventuallyReachesFarTarget(t *testing.T) {
	// A distant destination needs ring escalation 1→3→7→full; the
	// discovery must still succeed within the retry budget.
	nw, as := buildAODV(t, AODVConfig{NoHello: true, ExpandingRing: true, DiscoveryTimeout: 0.5}, 15, line(6, 200))
	count := 0
	nw.Nodes[5].OnAppReceive = func(*packet.Packet) { count++ }
	as[0].Send(5, 64)
	nw.Run(20)
	if count != 1 {
		t.Fatalf("delivered %d, want 1 after ring escalation", count)
	}
	if as[0].Stats().RREQSent < 2 {
		t.Fatal("far target should need more than one ring")
	}
}

// nearestNeighborOf returns the index of the node closest to node i.
func nearestNeighborOf(nw *node.Network, i int) int {
	best, bestD := -1, 1e18
	for j, n := range nw.Nodes {
		if j == i {
			continue
		}
		if d := n.Pos.Dist(nw.Nodes[i].Pos); d < bestD {
			best, bestD = j, d
		}
	}
	return best
}
