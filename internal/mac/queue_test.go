package mac

import (
	"cmp"
	"slices"
	"testing"
	"testing/quick"

	"routeless/internal/packet"
)

func TestPrioQueueOrdering(t *testing.T) {
	q := newPrioQueue(16)
	for _, p := range []float64{3, 1, 2, 1, 0} {
		q.push(&packet.Packet{Payload: p}, p)
	}
	var got []float64
	for q.len() > 0 {
		got = append(got, q.pop().priority)
	}
	if !slices.IsSorted(got) {
		t.Fatalf("pop order %v not ascending", got)
	}
}

func TestPrioQueueFIFOWithinPriority(t *testing.T) {
	q := newPrioQueue(16)
	pkts := make([]*packet.Packet, 6)
	for i := range pkts {
		pkts[i] = &packet.Packet{Seq: uint32(i)}
		q.push(pkts[i], 1.0)
	}
	for i := range pkts {
		if e := q.pop(); e.pkt != pkts[i] {
			t.Fatalf("FIFO violated at %d", i)
		}
	}
}

func TestPrioQueueCapacity(t *testing.T) {
	q := newPrioQueue(2)
	if !q.push(&packet.Packet{}, 0) || !q.push(&packet.Packet{}, 0) {
		t.Fatal("pushes under capacity must succeed")
	}
	if q.push(&packet.Packet{}, 0) {
		t.Fatal("push over capacity must fail")
	}
	if q.len() != 2 {
		t.Fatalf("len = %d", q.len())
	}
}

func TestPrioQueueRemove(t *testing.T) {
	q := newPrioQueue(16)
	a := &packet.Packet{Seq: 1}
	b := &packet.Packet{Seq: 2}
	c := &packet.Packet{Seq: 3}
	q.push(a, 1)
	q.push(b, 2)
	q.push(c, 3)
	if !q.remove(b) {
		t.Fatal("remove failed")
	}
	if q.remove(b) {
		t.Fatal("double remove succeeded")
	}
	if q.remove(&packet.Packet{}) {
		t.Fatal("removing foreign packet succeeded")
	}
	if q.pop().pkt != a || q.pop().pkt != c {
		t.Fatal("remove disturbed heap order")
	}
}

func TestPrioQueueEmptyPop(t *testing.T) {
	q := newPrioQueue(4)
	if q.pop() != nil {
		t.Fatal("pop on empty should be nil")
	}
}

// Property: for any priorities and removal pattern, pops come out in
// (priority, insertion) order over the surviving entries.
func TestQuickPrioQueueSemantics(t *testing.T) {
	type op struct {
		Prio   uint8
		Remove bool
	}
	f := func(ops []op) bool {
		q := newPrioQueue(1024)
		type rec struct {
			pkt  *packet.Packet
			prio float64
			seq  int
		}
		var live []rec
		seq := 0
		for _, o := range ops {
			if o.Remove && len(live) > 0 {
				victim := int(o.Prio) % len(live)
				if !q.remove(live[victim].pkt) {
					return false
				}
				live = append(live[:victim], live[victim+1:]...)
				continue
			}
			p := &packet.Packet{}
			prio := float64(o.Prio % 8)
			if !q.push(p, prio) {
				return false
			}
			live = append(live, rec{p, prio, seq})
			seq++
		}
		slices.SortStableFunc(live, func(a, b rec) int {
			if c := cmp.Compare(a.prio, b.prio); c != 0 {
				return c
			}
			return cmp.Compare(a.seq, b.seq)
		})
		for _, want := range live {
			e := q.pop()
			if e == nil || e.pkt != want.pkt {
				return false
			}
		}
		return q.pop() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
