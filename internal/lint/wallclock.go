package lint

import (
	"go/ast"
)

// wallClockFuncs are the time package entry points that read or wait on
// the host clock. Formatting helpers (time.Duration arithmetic,
// time.Unix construction from stored data) are untouched.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// WallClock forbids host-clock reads inside internal/ and cmd/
// (examples and _test.go files are exempt). Simulation time is the
// kernel's virtual clock; a stray time.Now in an event handler couples
// results to host scheduling and destroys seed-reproducibility.
// Commands may measure wall time around — never inside — the event
// loop, and must annotate such measurements with
// //lint:ignore wallclock <reason>.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc:  "forbid time.Now/Sleep/Since etc. in internal/ and cmd/; simulation time comes from the kernel",
	Run:  runWallClock,
}

func runWallClock(p *Pass) {
	if !p.InInternal() && !p.InCmd() {
		return
	}
	for _, f := range p.Files {
		if p.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if p.PkgNameOf(sel) != "time" || !wallClockFuncs[sel.Sel.Name] {
				return true
			}
			p.Reportf(sel.Pos(), "time.%s reads the host clock; use the kernel's virtual clock (Kernel.Now/Schedule)", sel.Sel.Name)
			return true
		})
	}
}
