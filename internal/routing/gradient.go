package routing

import (
	"routeless/internal/core"
	"routeless/internal/node"
	"routeless/internal/packet"
	"routeless/internal/sim"
)

// GradientConfig parameterizes the simplified Gradient Routing
// comparator. Zero fields take the noted defaults.
type GradientConfig struct {
	// Backoff is the forwarding jitter; default 5 ms.
	Backoff sim.Time
	// DiscoveryBackoff is the gradient-setup flood backoff; default 10 ms.
	DiscoveryBackoff sim.Time
	// DiscoveryTimeout and MaxDiscoveryRetries mirror Routeless Routing.
	DiscoveryTimeout    sim.Time
	MaxDiscoveryRetries int
	// TTL bounds packet travel; default 32.
	TTL int
	// DataSize is the payload bytes; default 512.
	DataSize int
}

func (c GradientConfig) withDefaults() GradientConfig {
	if c.Backoff == 0 {
		c.Backoff = 5e-3
	}
	if c.DiscoveryBackoff == 0 {
		c.DiscoveryBackoff = 10e-3
	}
	if c.DiscoveryTimeout == 0 {
		c.DiscoveryTimeout = 2
	}
	if c.MaxDiscoveryRetries == 0 {
		c.MaxDiscoveryRetries = 3
	}
	if c.TTL == 0 {
		c.TTL = 32
	}
	if c.DataSize == 0 {
		c.DataSize = packet.SizeData
	}
	return c
}

// GradientStats counts events at one node.
type GradientStats struct {
	DataSent          uint64
	DataDelivered     uint64
	Forwards          uint64 // gradient-qualified retransmissions
	NotCloserDrops    uint64 // copies dropped for lacking progress
	DiscoveriesSent   uint64
	DiscoveryForwards uint64
	RepliesSent       uint64
	DroppedNoRoute    uint64
	TTLDrops          uint64
}

// Gradient is the §4.4 comparison protocol (after Poor's Gradient
// Routing): "only nodes with a smaller hop count to the destination are
// allowed to forward packets", and "every node with a smaller hop count
// may retransmit the same packet" — no election, no cancellation, so a
// band of redundant copies marches toward the destination. The paper's
// criticism — "it makes the network more congested" — is exactly what
// the ABL4 ablation measures against Routeless Routing.
type Gradient struct {
	cfg GradientConfig
	n   *node.Node

	table       *ActiveTable
	seq         uint32
	floodDedup  *packet.DedupCache
	fwdDedup    *packet.DedupCache
	consumed    *packet.DedupCache
	discovering map[packet.NodeID]*discovery
	discPolicy  core.BackoffPolicy

	stats GradientStats
}

// NewGradient builds an instance; install with Network.Install.
func NewGradient(cfg GradientConfig) *Gradient {
	cfg = cfg.withDefaults()
	return &Gradient{
		cfg:         cfg,
		table:       NewActiveTable(),
		floodDedup:  packet.NewDedupCache(8192),
		fwdDedup:    packet.NewDedupCache(8192),
		consumed:    packet.NewDedupCache(8192),
		discovering: make(map[packet.NodeID]*discovery),
		discPolicy:  core.Uniform{Max: cfg.DiscoveryBackoff},
	}
}

// Start implements node.Protocol.
func (g *Gradient) Start(n *node.Node) { g.n = n }

// Stats returns the node's counters.
func (g *Gradient) Stats() GradientStats { return g.stats }

// Send implements node.Protocol.
func (g *Gradient) Send(target packet.NodeID, size int) {
	if size == 0 {
		size = g.cfg.DataSize
	}
	now := g.n.Kernel.Now()
	g.stats.DataSent++
	if target == g.n.ID {
		g.stats.DataDelivered++
		g.n.Deliver(&packet.Packet{Kind: packet.KindData, Origin: g.n.ID, Target: target, Size: size, CreatedAt: now})
		return
	}
	if h := g.table.Hops(target); h >= 0 {
		g.sendData(target, size, now)
		return
	}
	d, ok := g.discovering[target]
	if !ok {
		d = &discovery{}
		d.timer = sim.NewTimer(g.n.Kernel, func() { g.discoveryTimeout(target) })
		g.discovering[target] = d
		g.floodDiscovery(target)
		d.timer.Reset(g.cfg.DiscoveryTimeout)
	}
	d.queue = append(d.queue, pendingData{size: size, created: now})
}

func (g *Gradient) nextSeq() uint32 { g.seq++; return g.seq }

func (g *Gradient) sendData(target packet.NodeID, size int, created sim.Time) {
	g.n.MAC.Enqueue(&packet.Packet{
		Kind: packet.KindData, To: packet.Broadcast,
		Origin: g.n.ID, Target: target, Seq: g.nextSeq(),
		HopCount: 1, ExpectedHops: g.table.Hops(target),
		TTL: g.cfg.TTL, Size: size, CreatedAt: created,
	}, 0)
}

func (g *Gradient) floodDiscovery(target packet.NodeID) {
	pkt := &packet.Packet{
		Kind: packet.KindDiscovery, To: packet.Broadcast,
		Origin: g.n.ID, Target: target, Seq: g.nextSeq(),
		HopCount: 1, TTL: g.cfg.TTL, Size: packet.SizeControl,
		CreatedAt: g.n.Kernel.Now(),
	}
	g.floodDedup.Seen(pkt.Key())
	g.stats.DiscoveriesSent++
	g.n.MAC.Enqueue(pkt, 0)
}

func (g *Gradient) discoveryTimeout(target packet.NodeID) {
	d, ok := g.discovering[target]
	if !ok {
		return
	}
	d.retries++
	if d.retries > g.cfg.MaxDiscoveryRetries {
		g.stats.DroppedNoRoute += uint64(len(d.queue))
		delete(g.discovering, target)
		return
	}
	g.floodDiscovery(target)
	d.timer.Reset(g.cfg.DiscoveryTimeout)
}

// OnDeliver implements node.Protocol.
func (g *Gradient) OnDeliver(pkt *packet.Packet, rssiDBm float64) {
	now := g.n.Kernel.Now()
	switch pkt.Kind {
	case packet.KindDiscovery:
		g.table.Observe(pkt.Origin, pkt.HopCount, pkt.Seq, now)
		if g.floodDedup.Seen(pkt.Key()) {
			return
		}
		if pkt.Target == g.n.ID {
			// Establish the reverse gradient with a reply that flows
			// back down the just-built gradient.
			g.stats.RepliesSent++
			g.n.MAC.Enqueue(&packet.Packet{
				Kind: packet.KindReply, To: packet.Broadcast,
				Origin: g.n.ID, Target: pkt.Origin, Seq: g.nextSeq(),
				HopCount: 1, ExpectedHops: g.table.Hops(pkt.Origin),
				TTL: g.cfg.TTL, Size: packet.SizeControl, CreatedAt: now,
			}, 0)
			return
		}
		if pkt.TTL <= 1 {
			g.stats.TTLDrops++
			return
		}
		backoff, _ := g.discPolicy.Backoff(core.Context{Rand: g.n.Rng})
		fwd := pkt.Clone()
		fwd.To = packet.Broadcast
		fwd.HopCount++
		fwd.TTL--
		g.n.Kernel.Schedule(backoff, func() {
			g.stats.DiscoveryForwards++
			g.n.MAC.Enqueue(fwd, 0)
		})
	case packet.KindReply, packet.KindData:
		g.table.Observe(pkt.Origin, pkt.HopCount, pkt.Seq, now)
		key := pkt.Key()
		if pkt.Target == g.n.ID {
			if !g.consumed.Seen(key) {
				if pkt.Kind == packet.KindData {
					g.stats.DataDelivered++
					g.n.Deliver(pkt)
				} else if d, ok := g.discovering[pkt.Origin]; ok {
					d.timer.Stop()
					delete(g.discovering, pkt.Origin)
					for _, pd := range d.queue {
						g.sendData(pkt.Origin, pd.size, pd.created)
					}
				}
			}
			return
		}
		if g.fwdDedup.Seen(key) {
			return // each node retransmits a packet at most once
		}
		if pkt.TTL <= 1 {
			g.stats.TTLDrops++
			return
		}
		h := g.table.Hops(pkt.Target)
		if h < 0 || h >= pkt.ExpectedHops {
			g.stats.NotCloserDrops++
			return // only strictly closer nodes forward
		}
		fwd := pkt.Clone()
		fwd.To = packet.Broadcast
		fwd.HopCount++
		fwd.TTL--
		fwd.ExpectedHops = h
		backoff := sim.Time(g.n.Rng.Float64()) * g.cfg.Backoff
		g.n.Kernel.Schedule(backoff, func() {
			g.stats.Forwards++
			g.n.MAC.Enqueue(fwd, float64(backoff))
		})
	}
}

// OnSent implements node.Protocol.
func (g *Gradient) OnSent(pkt *packet.Packet) {}

// OnUnicastFailed implements node.Protocol; Gradient never unicasts.
func (g *Gradient) OnUnicastFailed(pkt *packet.Packet) {}
