package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestWelfordKnownValues(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", w.Mean())
	}
	// Population variance is 4; sample variance = 32/7.
	if math.Abs(w.Var()-32.0/7) > 1e-12 {
		t.Fatalf("Var = %v, want %v", w.Var(), 32.0/7)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("min/max = %v/%v", w.Min(), w.Max())
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.Std() != 0 || w.CI95() != 0 || w.Min() != 0 || w.Max() != 0 {
		t.Fatal("empty accumulator should be all zeros")
	}
}

func TestWelfordSingleSample(t *testing.T) {
	var w Welford
	w.Add(3.5)
	if w.Mean() != 3.5 || w.Var() != 0 || w.Min() != 3.5 || w.Max() != 3.5 {
		t.Fatal("single-sample stats wrong")
	}
}

// Property: Merge(a, b) equals feeding all samples into one accumulator.
func TestQuickMergeEquivalence(t *testing.T) {
	f := func(xs, ys []float64) bool {
		clean := func(in []float64) []float64 {
			var out []float64
			for _, v := range in {
				if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e8 {
					out = append(out, v)
				}
			}
			return out
		}
		xs, ys = clean(xs), clean(ys)
		var a, b, all Welford
		for _, x := range xs {
			a.Add(x)
			all.Add(x)
		}
		for _, y := range ys {
			b.Add(y)
			all.Add(y)
		}
		a.Merge(b)
		if a.N() != all.N() {
			return false
		}
		if a.N() == 0 {
			return true
		}
		tol := 1e-6 * (1 + math.Abs(all.Mean()))
		if math.Abs(a.Mean()-all.Mean()) > tol {
			return false
		}
		tolV := 1e-5 * (1 + all.Var())
		return math.Abs(a.Var()-all.Var()) < tolV &&
			a.Min() == all.Min() && a.Max() == all.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeIntoEmpty(t *testing.T) {
	var a, b Welford
	b.Add(1)
	b.Add(3)
	a.Merge(b)
	if a.N() != 2 || a.Mean() != 2 {
		t.Fatalf("merge into empty: n=%d mean=%v", a.N(), a.Mean())
	}
	var c Welford
	b.Merge(c) // merging empty is a no-op
	if b.N() != 2 {
		t.Fatal("merging empty changed accumulator")
	}
}

func TestCI95Shrinks(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var small, large Welford
	for i := 0; i < 10; i++ {
		small.Add(r.NormFloat64())
	}
	for i := 0; i < 1000; i++ {
		large.Add(r.NormFloat64())
	}
	if large.CI95() >= small.CI95() {
		t.Fatal("CI should shrink with more samples")
	}
}

func TestMeter(t *testing.T) {
	var m Meter
	if m.DeliveryRatio() != 0 {
		t.Fatal("empty meter ratio should be 0")
	}
	for i := 0; i < 10; i++ {
		m.PacketSent()
	}
	m.PacketReceived(0.5, 3)
	m.PacketReceived(1.5, 5)
	if m.DeliveryRatio() != 0.2 {
		t.Fatalf("ratio %v, want 0.2", m.DeliveryRatio())
	}
	if m.Delay.Mean() != 1.0 {
		t.Fatalf("delay mean %v, want 1", m.Delay.Mean())
	}
	if m.Hops.Mean() != 4 {
		t.Fatalf("hops mean %v, want 4", m.Hops.Mean())
	}
}

func TestMeterMerge(t *testing.T) {
	var a, b Meter
	a.PacketSent()
	a.PacketReceived(1, 2)
	b.PacketSent()
	b.PacketSent()
	b.PacketReceived(3, 4)
	a.Merge(b)
	if a.Sent != 3 || a.Received != 2 {
		t.Fatalf("sent=%d received=%d", a.Sent, a.Received)
	}
	if a.Delay.Mean() != 2 {
		t.Fatalf("delay mean %v", a.Delay.Mean())
	}
}

func TestTableFormatting(t *testing.T) {
	tb := NewTable("Figure X", "interval", "delivery", "note")
	tb.AddRow(1.0, 0.987654, "ok")
	tb.AddRow(10, 1.0, "long-note-here")
	s := tb.String()
	if !strings.Contains(s, "Figure X") {
		t.Fatal("missing title")
	}
	if !strings.Contains(s, "interval") || !strings.Contains(s, "0.9877") {
		t.Fatalf("bad render:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, headers, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), s)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	if tb.Row(0)[2] != "ok" {
		t.Fatalf("Row(0) = %v", tb.Row(0))
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(1, 2.5)
	csv := tb.CSV()
	want := "a,b\n1,2.5\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}

// Regression: rows wider than Headers used to panic String() (the width
// slice was sized by Headers but writeRow indexed it by row length) and
// render ragged CSV. The contract is now padding: the table widens to
// its widest row, missing headers/cells become empty fields.
func TestTableRowsWiderThanHeaders(t *testing.T) {
	tb := NewTable("wide", "a", "b")
	tb.AddRow(1, 2, 3, "extra")
	tb.AddRow(4) // narrower than headers, too
	s := tb.String()
	for _, want := range []string{"extra", "a", "b"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() dropped %q:\n%s", want, s)
		}
	}
	csv := tb.CSV()
	want := "a,b,,\n1,2,3,extra\n4,,,\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
	lines := strings.Split(strings.TrimRight(csv, "\n"), "\n")
	for _, ln := range lines {
		if strings.Count(ln, ",") != 3 {
			t.Fatalf("ragged CSV line %q", ln)
		}
	}
}
