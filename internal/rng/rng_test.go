package rng

import (
	"testing"
	"testing/quick"
)

func TestDeriveDeterministic(t *testing.T) {
	a := Derive(42, 1, 2, 3)
	b := Derive(42, 1, 2, 3)
	if a != b {
		t.Fatal("Derive is not deterministic")
	}
}

func TestDeriveDependsOnSeed(t *testing.T) {
	if Derive(1, 5) == Derive(2, 5) {
		t.Fatal("different seeds gave same derived seed")
	}
}

func TestDeriveDependsOnLabels(t *testing.T) {
	if Derive(1, 5) == Derive(1, 6) {
		t.Fatal("different labels gave same derived seed")
	}
	if Derive(1, 5, 6) == Derive(1, 6, 5) {
		t.Fatal("label order should matter")
	}
	if Derive(1, 5) == Derive(1, 5, 0) {
		t.Fatal("label count should matter")
	}
}

func TestSeedZeroUsable(t *testing.T) {
	r := New(0, StreamTopology)
	saw := map[float64]bool{}
	for i := 0; i < 10; i++ {
		saw[r.Float64()] = true
	}
	if len(saw) < 10 {
		t.Fatal("seed 0 stream produced repeats suspiciously fast")
	}
}

func TestForNodeIndependence(t *testing.T) {
	// Streams for different nodes must differ; the same node's stream
	// must be stable.
	r1a := ForNode(7, StreamMAC, 1)
	r1b := ForNode(7, StreamMAC, 1)
	r2 := ForNode(7, StreamMAC, 2)
	v1a, v1b, v2 := r1a.Uint64(), r1b.Uint64(), r2.Uint64()
	if v1a != v1b {
		t.Fatal("same node stream not stable")
	}
	if v1a == v2 {
		t.Fatal("different node streams collided on first draw")
	}
}

func TestLayerSeparation(t *testing.T) {
	a := ForNode(7, StreamMAC, 1).Uint64()
	b := ForNode(7, StreamNet, 1).Uint64()
	if a == b {
		t.Fatal("different layers produced identical first draw")
	}
}

// Property: derived seeds behave like a hash — no systematic collisions
// across label values.
func TestQuickNoTrivialCollisions(t *testing.T) {
	seen := map[int64][2]uint64{}
	f := func(x, y uint64) bool {
		d := Derive(123, x, y)
		if prev, ok := seen[d]; ok {
			return prev == [2]uint64{x, y}
		}
		seen[d] = [2]uint64{x, y}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestUniformityRough(t *testing.T) {
	// Crude sanity check that New streams are roughly uniform: mean of
	// many Float64 draws should be near 0.5.
	r := New(99, StreamChannel)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("mean %v, want ~0.5", mean)
	}
}
