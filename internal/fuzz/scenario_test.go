package fuzz

import (
	"math"
	"strings"
	"testing"
)

// valid returns a small scenario that passes Validate; cases mutate it.
func valid() Scenario {
	return Scenario{
		Seed: 1, N: 10, Width: 500, Height: 500, Range: 250,
		Placement: PlaceUniform, Connected: true,
		Protocol: ProtoCounter1,
		Flows:    []Flow{{Src: 0, Dst: 9}},
		Interval: 0.5, DataSize: 64, Duration: 2,
	}
}

func TestValidateAcceptsBaseline(t *testing.T) {
	if err := valid().Validate(); err != nil {
		t.Fatalf("baseline scenario rejected: %v", err)
	}
}

func TestValidateConstraintMatrix(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Scenario)
		want string // substring of the error
	}{
		{"n too small", func(s *Scenario) { s.N = 1 }, "N must be at least 2"},
		{"width nan", func(s *Scenario) { s.Width = math.NaN() }, "Width"},
		{"height negative", func(s *Scenario) { s.Height = -10 }, "Height"},
		{"range zero", func(s *Scenario) { s.Range = 0 }, "Range"},
		{"unknown placement", func(s *Scenario) { s.Placement = "ring" }, "unknown placement"},
		{"connected non-uniform", func(s *Scenario) { s.Placement = PlaceGrid }, "Connected requires uniform"},
		{"unknown protocol", func(s *Scenario) { s.Protocol = "ospf" }, "unknown protocol"},
		{"lambda negative", func(s *Scenario) { s.Lambda = -1 }, "Lambda"},
		{"interval inf", func(s *Scenario) { s.Interval = math.Inf(1) }, "Interval"},
		{"duration zero", func(s *Scenario) { s.Duration = 0 }, "Duration"},
		{"datasize zero", func(s *Scenario) { s.DataSize = 0 }, "DataSize"},
		{"flow out of range", func(s *Scenario) { s.Flows = []Flow{{Src: 0, Dst: 10}} }, "outside"},
		{"flow self loop", func(s *Scenario) { s.Flows = []Flow{{Src: 3, Dst: 3}} }, "self-loop"},
		{"flow duplicate", func(s *Scenario) {
			s.Flows = []Flow{{Src: 0, Dst: 1}, {Src: 0, Dst: 1}}
		}, "duplicate flow"},
		{"movers zero", func(s *Scenario) { s.Mobility = &Mobility{Movers: 0, MaxSpeed: 1} }, "Movers"},
		{"movers beyond n", func(s *Scenario) { s.Mobility = &Mobility{Movers: 11, MaxSpeed: 1} }, "Movers"},
		{"speeds inverted", func(s *Scenario) {
			s.Mobility = &Mobility{Movers: 1, MinSpeed: 5, MaxSpeed: 1}
		}, "speeds"},
		{"tiles negative", func(s *Scenario) { s.Tiles = -1 }, "Tiles"},
		{"tiled fading", func(s *Scenario) { s.Connected = false; s.Tiles = 4; s.Fading = true }, "fading"},
		{"tiled mobility", func(s *Scenario) {
			s.Connected = false
			s.Tiles = 4
			s.Mobility = &Mobility{Movers: 1, MaxSpeed: 1}
		}, "mobility"},
		{"unknown fault kind", func(s *Scenario) { s.Faults = []FaultSpec{{Kind: "meteor"}} }, "unknown fault kind"},
		{"bad fault numerics", func(s *Scenario) {
			s.Faults = []FaultSpec{{Kind: "drain", CapacityJ: -1}}
		}, "CapacityJ"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := valid()
			tc.mut(&sc)
			err := sc.Validate()
			if err == nil {
				t.Fatalf("scenario accepted, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestValidateAcceptsFullFeatureSet(t *testing.T) {
	sc := valid()
	sc.Connected = false
	sc.Placement = PlaceCluster
	sc.Fading = true
	sc.Mobility = &Mobility{Movers: 3, MinSpeed: 1, MaxSpeed: 5}
	sc.Faults = []FaultSpec{
		{Kind: "crash", OffFraction: 0.1, Cycle: 1},
		{Kind: "jam", TxPowerDBm: 20, Period: 1, Burst: 0.2, SpeedMps: 3},
	}
	if err := sc.Validate(); err != nil {
		t.Fatalf("full-feature scenario rejected: %v", err)
	}
	// Tiled variant of the same scenario, with the incompatible
	// features stripped, is also fine.
	sc.Fading = false
	sc.Mobility = nil
	sc.Tiles = 4
	if err := sc.Validate(); err != nil {
		t.Fatalf("tiled scenario rejected: %v", err)
	}
}

func TestPlanConversion(t *testing.T) {
	sc := valid()
	sc.Faults = []FaultSpec{
		{Kind: "crash", OffFraction: 0.2},
		{Kind: "drain", CapacityJ: 1},
		{Kind: "degrade", OffsetDB: -20},
		{Kind: "jam", TxPowerDBm: 15},
	}
	plan, err := sc.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 4 {
		t.Fatalf("plan has %d specs, want 4", len(plan))
	}
	if err := plan.Validate(); err != nil {
		t.Fatalf("converted plan invalid: %v", err)
	}
}
