package sim

import "testing"

// runCell simulates one sweep cell on the pool: depth concurrently
// pending timers, rearmed rounds times, then full drain — the event
// lifecycle shape of a simulation run.
func runCell(t *testing.T, pool *EventPool, depth, rounds int) {
	t.Helper()
	k := NewKernelPooled(1, pool)
	var fired int
	for r := 0; r < rounds; r++ {
		for i := 0; i < depth; i++ {
			k.At(Time(r)+Time(i)*1e-6, func() { fired++ })
		}
		k.RunUntil(Time(r) + 1)
	}
	if fired != depth*rounds {
		t.Fatalf("fired %d, want %d", fired, depth*rounds)
	}
}

// TestEventPoolShrinksToWatermark is the regression test for the
// sweep-reuse memory leak: before Reset existed, a pooled Runtime that
// served one large cell pinned that cell's free list for every later
// (smaller) cell of the sweep.
func TestEventPoolShrinksToWatermark(t *testing.T) {
	pool := NewEventPool()

	runCell(t, pool, 5000, 3)
	if pool.Peak() < 5000 {
		t.Fatalf("peak %d after a 5000-deep cell", pool.Peak())
	}
	bigFree := pool.FreeLen()
	if bigFree < 1000 {
		t.Fatalf("free list %d did not warm up on the big cell", bigFree)
	}
	pool.Reset()
	if pool.Peak() != 0 {
		t.Fatalf("peak %d after Reset, want 0", pool.Peak())
	}

	// A small cell must shrink the pool to its own watermark on the
	// next Reset, not inherit the big cell's footprint.
	runCell(t, pool, 20, 3)
	pool.Reset()
	if got := pool.FreeLen(); got > 20 {
		t.Fatalf("free list %d after a 20-deep cell's Reset, want <= 20", got)
	}
	if cap := capOf(pool); cap > 2*20+64 {
		t.Fatalf("free list capacity %d still pins the big cell's backing array", cap)
	}

	// The shrunken pool still serves a big cell again (regrowth works).
	runCell(t, pool, 5000, 1)
}

// TestEventPoolResetKeepsWatermark pins the other half of the
// contract: Reset retains (up to) the last workload's peak, so a sweep
// of equal-size cells keeps its steady-state reuse.
func TestEventPoolResetKeepsWatermark(t *testing.T) {
	pool := NewEventPool()
	runCell(t, pool, 400, 2)
	free := pool.FreeLen()
	pool.Reset()
	if got := pool.FreeLen(); got != min(free, 400) {
		t.Fatalf("Reset kept %d spares, want min(free=%d, peak=400)", got, free)
	}
	// Identical follow-up cell allocates (almost) nothing new.
	before := pool.FreeLen()
	runCell(t, pool, 400, 2)
	if before == 0 {
		t.Fatal("no spares retained for the follow-up cell")
	}
}

func capOf(p *EventPool) int { return cap(p.free) }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
