// Package geo provides 2-D geometry for node placement and a uniform
// grid spatial index used by the wireless channel to find potential
// receivers in O(neighbors) instead of O(nodes).
package geo

import (
	"fmt"
	"math"
	"math/rand"
)

// Point is a position in meters on the simulation terrain.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q in meters.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared distance, avoiding the square root when
// only comparisons are needed.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Add returns p translated by (dx, dy).
func (p Point) Add(dx, dy float64) Point { return Point{p.X + dx, p.Y + dy} }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.1f, %.1f)", p.X, p.Y) }

// Rect is an axis-aligned rectangle; Min is inclusive, Max exclusive
// for containment purposes.
type Rect struct {
	Min, Max Point
}

// NewRect returns the rectangle spanning (0,0)–(w,h).
func NewRect(w, h float64) Rect { return Rect{Point{0, 0}, Point{w, h}} }

// Width returns the horizontal extent.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Contains reports whether p lies inside r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X < r.Max.X && p.Y >= r.Min.Y && p.Y < r.Max.Y
}

// Clamp returns p moved to the nearest point inside r.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, r.Min.X), math.Nextafter(r.Max.X, r.Min.X)),
		Y: math.Min(math.Max(p.Y, r.Min.Y), math.Nextafter(r.Max.Y, r.Min.Y)),
	}
}

// UniformPoints places n points uniformly at random inside r using the
// supplied stream. This is the paper's topology for every experiment
// ("nodes distributed randomly in a … terrain").
func UniformPoints(r *rand.Rand, rect Rect, n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{
			X: rect.Min.X + r.Float64()*rect.Width(),
			Y: rect.Min.Y + r.Float64()*rect.Height(),
		}
	}
	return pts
}

// GridPoints places up to n points on a jittered square lattice filling
// rect. Useful for controlled topologies in tests and examples.
func GridPoints(r *rand.Rand, rect Rect, n int, jitter float64) []Point {
	side := int(math.Ceil(math.Sqrt(float64(n))))
	dx := rect.Width() / float64(side)
	dy := rect.Height() / float64(side)
	pts := make([]Point, 0, n)
	for row := 0; row < side && len(pts) < n; row++ {
		for col := 0; col < side && len(pts) < n; col++ {
			p := Point{
				X: rect.Min.X + (float64(col)+0.5)*dx,
				Y: rect.Min.Y + (float64(row)+0.5)*dy,
			}
			if jitter > 0 && r != nil {
				p.X += (r.Float64() - 0.5) * 2 * jitter
				p.Y += (r.Float64() - 0.5) * 2 * jitter
			}
			pts = append(pts, rect.Clamp(p))
		}
	}
	return pts
}
