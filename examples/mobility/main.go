// Mobility demo: Routeless Routing under random-waypoint motion. The
// protocol stores no routes, so there is nothing to break when topology
// drifts — gradients refresh passively from every packet. This program
// sweeps pedestrian-to-vehicle speeds over the same field and prints
// how delivery and hop counts respond.
//
//	go run ./examples/mobility
package main

import (
	"fmt"

	"routeless"
	"routeless/internal/node"
	"routeless/internal/rng"
)

func run(maxSpeed float64) (delivery float64, hops float64) {
	nw := routeless.NewNetwork(routeless.NetworkConfig{
		N: 150, Rect: routeless.NewRect(1100, 1100), Seed: 13, EnsureConnected: true,
	})
	nw.Install(func(n *routeless.Node) routeless.Protocol {
		return routeless.NewRouteless(routeless.RoutelessConfig{})
	})
	var meter routeless.Meter
	for _, n := range nw.Nodes {
		n := n
		n.OnAppReceive = func(p *routeless.Packet) {
			meter.PacketReceived(float64(nw.Kernel.Now()-p.CreatedAt), p.HopCount)
		}
	}
	pairs := routeless.RandomPairs(rng.New(13, rng.StreamTraffic), 150, 5)
	endpoint := map[routeless.NodeID]bool{}
	var flows []*routeless.CBR
	for _, p := range pairs {
		endpoint[p.Src], endpoint[p.Dst] = true, true
		c := routeless.NewCBR(nw.Nodes[p.Src], p.Dst, 1.0, 64)
		c.OnSend = meter.PacketSent
		c.Start()
		flows = append(flows, c)
	}
	if maxSpeed > 0 {
		for i, n := range nw.Nodes {
			if endpoint[n.ID] {
				continue // endpoints stay put so flows stay defined
			}
			w := node.NewWaypoint(nw, n, rng.ForNode(13, rng.StreamTopology, i))
			w.MinSpeed, w.MaxSpeed = maxSpeed/4, maxSpeed
			w.Start()
		}
	}
	nw.Run(40)
	for _, c := range flows {
		c.Stop()
	}
	nw.Run(45)
	return meter.DeliveryRatio(), meter.Hops.Mean()
}

func main() {
	t := routeless.NewTable(
		"Routeless Routing under random-waypoint mobility (150 nodes, 5 CBR flows, 40 s)",
		"max_speed_mps", "delivery", "avg_hops")
	for _, speed := range []float64{0, 2, 5, 10, 20} {
		d, h := run(speed)
		t.AddRow(speed, d, h)
	}
	fmt.Println(t)
	fmt.Println("No route maintenance, no handoff signaling: the hop-count gradient is")
	fmt.Println("re-learned from every overheard packet, so motion only costs delivery")
	fmt.Println("when nodes outrun the traffic that refreshes it.")
}
