package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"slices"
	"strings"
)

// This file builds the module-wide call graph that turns the per-file
// syntactic rules into flow-aware ones. A Program holds every loaded
// unit plus one FuncNode per function body (declared functions,
// methods, and closures), with resolved static call edges between them.
//
// Nodes are keyed by FuncID — a stable string of the form
//
//	<pkgpath>.<Name>            for functions
//	<pkgpath>.(<Recv>).<Name>   for methods
//	closure@<file>:<line>:<col> for function literals
//
// rather than by *types.Func identity, because each unit is
// type-checked independently: the object a caller resolves for an
// imported function is not pointer-identical to the object created when
// the defining unit was checked, but both render the same FuncID.
//
// Known blind spots, by construction (documented in DESIGN.md §6):
// calls through reflection, calls through non-trivial function values
// (a func stored in a struct field or map), and interface dynamic
// dispatch are not resolved to bodies. Interface dispatch is bridged
// for the simulator's handler interfaces by treating every concrete
// method with a known handler name (OnReceive, OnDeliver, OnSent,
// OnUnicastFailed) as an entry point in its own right.

// FuncID identifies one function across all units of a Program.
type FuncID string

// Call is one outgoing edge: a call expression inside a function body.
type Call struct {
	Pos    token.Pos
	Callee FuncID // "" when the callee could not be resolved statically
	Name   string // callee name as written, for heuristics and messages
	// FuncArgs lists function values passed as arguments (closures,
	// method values, named functions): candidates for later invocation
	// by the callee, and — when the callee is a scheduler — event
	// handlers.
	FuncArgs []FuncID
}

// globalRef is one reference to a package-level variable from inside a
// function body.
type globalRef struct {
	Key   string // pkgpath.varname
	Pos   token.Pos
	Write bool
}

// FuncNode is one analyzed function body.
type FuncNode struct {
	ID   FuncID
	Unit *Unit
	Decl *ast.FuncDecl // nil for closures
	Lit  *ast.FuncLit  // nil for declared functions
	Pos  token.Pos

	Calls   []Call
	Globals []globalRef
	// passed lists function values this body hands to other calls or
	// stores; conservatively treated as reachable once this node is.
	passed []FuncID
	// sendsOnChannel records a raw channel send in the body (a packet
	// movement the name heuristics cannot see).
	sendsOnChannel bool
}

// Name renders a short human name for diagnostics.
func (n *FuncNode) Name() string {
	if n.Decl != nil {
		return n.Decl.Name.Name
	}
	return "func literal"
}

// EntryPoint is one place event-handler code enters the call graph: a
// callback handed to the kernel scheduler or a timer, or a concrete
// implementation of a delivery-handler interface method.
type EntryPoint struct {
	Fn   FuncID
	Kind string // "schedule", "timer", or "dispatch"
	Pos  token.Pos
}

// Program is the whole-module view the flow-aware analyzers share.
type Program struct {
	Fset  *token.FileSet
	Units []*Unit
	Funcs map[FuncID]*FuncNode
	IDs   []FuncID // sorted; the deterministic iteration order

	EntryPoints []EntryPoint

	nodeOf map[ast.Node]*FuncNode // FuncDecl/FuncLit → node

	// global variable index: key → positions that write it, and the
	// functions containing any reference.
	globalWriters map[string][]FuncID

	// lazy analysis memos (see taint.go).
	sinkMemo    map[FuncID]sinkSet
	sinkActive  map[FuncID]bool
	randMemo    map[FuncID]provSummary
	randActive  map[FuncID]bool
	seedMemo    map[FuncID]provSummary
	seedActive  map[FuncID]bool
	mapRetMemo  map[FuncID]int8
	mapRetBusy  map[FuncID]bool
	callersMemo map[FuncID][]FuncID

	// lazy shard-safety memos (see sharedstate.go).
	handlerReachMemo map[FuncID]bool
	globalInvMemo    map[string]*globalInfo
}

// schedulerEntryPoints maps call-target ID suffixes to the argument
// index holding the event callback and the entry-point kind.
var schedulerEntryPoints = []struct {
	suffix string
	arg    int
	kind   string
}{
	{"internal/sim.(Kernel).Schedule", 1, "schedule"},
	{"internal/sim.(Kernel).At", 1, "schedule"},
	{"internal/sim.NewTimer", 1, "timer"},
}

// handlerMethodNames are the delivery-interface methods (phy.Listener,
// mac.Handler) whose concrete implementations run inside events even
// though the dispatching call is invisible to static resolution.
var handlerMethodNames = map[string]bool{
	"OnReceive":       true, // phy.Listener
	"OnDeliver":       true, // mac.Handler
	"OnSent":          true,
	"OnUnicastFailed": true,
}

// idHasSuffix reports whether id ends in pattern on a path-segment
// boundary: "routeless/internal/sim.(Kernel).At" matches
// "internal/sim.(Kernel).At" but "myinternal/sim.(Kernel).At" does not.
func idHasSuffix(id FuncID, pattern string) bool {
	s := string(id)
	if !strings.HasSuffix(s, pattern) {
		return false
	}
	if len(s) == len(pattern) {
		return true
	}
	return s[len(s)-len(pattern)-1] == '/'
}

// BuildProgram indexes every function body of units and resolves the
// static call graph between them.
func BuildProgram(units []*Unit) *Program {
	p := &Program{
		Units:         units,
		Funcs:         map[FuncID]*FuncNode{},
		nodeOf:        map[ast.Node]*FuncNode{},
		globalWriters: map[string][]FuncID{},
		sinkMemo:      map[FuncID]sinkSet{},
		sinkActive:    map[FuncID]bool{},
		randMemo:      map[FuncID]provSummary{},
		randActive:    map[FuncID]bool{},
		seedMemo:      map[FuncID]provSummary{},
		seedActive:    map[FuncID]bool{},
		mapRetMemo:    map[FuncID]int8{},
		mapRetBusy:    map[FuncID]bool{},
	}
	if len(units) > 0 {
		p.Fset = units[0].Fset
	}
	for _, u := range units {
		for _, f := range u.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				node := &FuncNode{ID: p.declID(u, fd), Unit: u, Decl: fd, Pos: fd.Pos()}
				p.addNode(node)
				p.scanBody(node, fd.Body)
			}
		}
	}
	for id := range p.Funcs {
		p.IDs = append(p.IDs, id)
	}
	slices.Sort(p.IDs)
	p.findEntryPoints()
	return p
}

func (p *Program) addNode(n *FuncNode) {
	// Duplicate IDs can occur when the in-package test unit re-checks
	// the primary files; first writer wins so positions stay stable.
	if _, ok := p.Funcs[n.ID]; !ok {
		p.Funcs[n.ID] = n
	}
	if n.Decl != nil {
		p.nodeOf[n.Decl] = n
	} else {
		p.nodeOf[n.Lit] = n
	}
}

// NodeFor returns the FuncNode built for a FuncDecl or FuncLit, or nil.
func (p *Program) NodeFor(n ast.Node) *FuncNode {
	if p == nil {
		return nil
	}
	return p.nodeOf[n]
}

// declID derives the FuncID of a declared function.
func (p *Program) declID(u *Unit, fd *ast.FuncDecl) FuncID {
	if u.Info != nil {
		if fn, ok := u.Info.Defs[fd.Name].(*types.Func); ok {
			return funcObjID(fn)
		}
	}
	// Degraded type info: fall back on source text.
	recv := ""
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		recv = "(" + exprText(fd.Recv.List[0].Type) + ")."
	}
	return FuncID(u.Path + "." + recv + fd.Name.Name)
}

// funcObjID renders the stable ID of a resolved function object.
func funcObjID(fn *types.Func) FuncID {
	fn = fn.Origin()
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		name := "?"
		switch tt := t.(type) {
		case *types.Named:
			name = tt.Obj().Name()
		case *types.Alias:
			name = tt.Obj().Name()
		}
		return FuncID(pkg + ".(" + name + ")." + fn.Name())
	}
	return FuncID(pkg + "." + fn.Name())
}

func (p *Program) litID(n *FuncNode, lit *ast.FuncLit) FuncID {
	pos := n.Unit.Fset.Position(lit.Pos())
	return FuncID(fmt.Sprintf("closure@%s:%d:%d", pos.Filename, pos.Line, pos.Column))
}

// exprText renders a receiver type expression for the degraded-info ID.
func exprText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return exprText(e.X)
	case *ast.IndexExpr:
		return exprText(e.X)
	case *ast.IndexListExpr:
		return exprText(e.X)
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return "?"
}

// scanBody walks one function body (stopping at nested function
// literals, which become their own nodes) and records calls, function
// values passed around, channel sends, and package-level variable
// references.
func (p *Program) scanBody(n *FuncNode, body *ast.BlockStmt) {
	u := n.Unit
	var walk func(node ast.Node) bool
	walk = func(node ast.Node) bool {
		switch e := node.(type) {
		case *ast.FuncLit:
			child := &FuncNode{ID: p.litID(n, e), Unit: u, Lit: e, Pos: e.Pos()}
			p.addNode(child)
			p.scanBody(child, e.Body)
			// The closure is invocable once its encloser ran (it may be
			// called inline, deferred, or stored); keep a conservative
			// edge for reachability.
			n.passed = append(n.passed, child.ID)
			return false
		case *ast.SendStmt:
			n.sendsOnChannel = true
		case *ast.CallExpr:
			call := Call{Pos: e.Pos()}
			call.Callee, call.Name = p.resolveCallee(n, u, e.Fun)
			for _, arg := range e.Args {
				if id, ok := p.funcValueID(n, u, arg); ok {
					call.FuncArgs = append(call.FuncArgs, id)
					n.passed = append(n.passed, id)
				}
			}
			n.Calls = append(n.Calls, call)
		case *ast.AssignStmt:
			for _, lhs := range e.Lhs {
				p.recordGlobalWrite(n, u, lhs)
			}
			// Function values stored into variables/fields stay
			// invocable from this node's future.
			for _, rhs := range e.Rhs {
				if id, ok := p.funcValueID(n, u, rhs); ok {
					n.passed = append(n.passed, id)
				}
			}
		case *ast.IncDecStmt:
			p.recordGlobalWrite(n, u, e.X)
		case *ast.Ident:
			p.recordGlobalRead(n, u, e)
		}
		return true
	}
	ast.Inspect(body, walk)
}

// resolveCallee maps a call's Fun expression to a FuncID where
// statically possible. Generic instantiations are unwrapped; calls
// through plain function-typed variables resolve to "" (blind spot).
func (p *Program) resolveCallee(n *FuncNode, u *Unit, fun ast.Expr) (FuncID, string) {
	switch e := fun.(type) {
	case *ast.ParenExpr:
		return p.resolveCallee(n, u, e.X)
	case *ast.IndexExpr:
		return p.resolveCallee(n, u, e.X)
	case *ast.IndexListExpr:
		return p.resolveCallee(n, u, e.X)
	case *ast.FuncLit:
		return p.litID(n, e), "func literal"
	case *ast.Ident:
		if u.Info != nil {
			if fn, ok := u.Info.Uses[e].(*types.Func); ok {
				return funcObjID(fn), e.Name
			}
		}
		return "", e.Name
	case *ast.SelectorExpr:
		if u.Info != nil {
			if fn, ok := u.Info.Uses[e.Sel].(*types.Func); ok {
				return funcObjID(fn), e.Sel.Name
			}
		}
		return "", e.Sel.Name
	}
	return "", ""
}

// funcValueID resolves an expression used as a value to a FuncID when
// it denotes a function: a literal, a named function, or a method
// value.
func (p *Program) funcValueID(n *FuncNode, u *Unit, e ast.Expr) (FuncID, bool) {
	switch e := e.(type) {
	case *ast.FuncLit:
		// Visited (and registered) by scanBody's own walk.
		return p.litID(n, e), true
	case *ast.Ident:
		if u.Info != nil {
			if fn, ok := u.Info.Uses[e].(*types.Func); ok {
				return funcObjID(fn), true
			}
		}
	case *ast.SelectorExpr:
		if u.Info != nil {
			if fn, ok := u.Info.Uses[e.Sel].(*types.Func); ok {
				return funcObjID(fn), true
			}
		}
	}
	return "", false
}

// globalVarKey returns the index key for a package-level variable, or
// "" when obj is not one.
func globalVarKey(obj types.Object) string {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return ""
	}
	return v.Pkg().Path() + "." + v.Name()
}

// rootIdent digs to the base identifier of an assignable expression:
// x, x.f, x[i], *x all root at x.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch t := e.(type) {
		case *ast.Ident:
			return t
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		default:
			return nil
		}
	}
}

// writeTarget digs to the identifier naming the variable an assignable
// expression mutates. Unlike rootIdent it resolves qualified references:
// otherpkg.Var roots at Var, not at the package name.
func writeTarget(u *Unit, e ast.Expr) *ast.Ident {
	for {
		switch t := e.(type) {
		case *ast.Ident:
			return t
		case *ast.SelectorExpr:
			if id, ok := t.X.(*ast.Ident); ok && u.Info != nil {
				if _, isPkg := u.Info.Uses[id].(*types.PkgName); isPkg {
					return t.Sel
				}
			}
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		default:
			return nil
		}
	}
}

func (p *Program) recordGlobalWrite(n *FuncNode, u *Unit, lhs ast.Expr) {
	if u.Info == nil {
		return
	}
	id := writeTarget(u, lhs)
	if id == nil {
		return
	}
	key := globalVarKey(u.Info.Uses[id])
	if key == "" {
		return
	}
	n.Globals = append(n.Globals, globalRef{Key: key, Pos: id.Pos(), Write: true})
	p.globalWriters[key] = append(p.globalWriters[key], n.ID)
}

func (p *Program) recordGlobalRead(n *FuncNode, u *Unit, id *ast.Ident) {
	if u.Info == nil {
		return
	}
	key := globalVarKey(u.Info.Uses[id])
	if key == "" {
		return
	}
	n.Globals = append(n.Globals, globalRef{Key: key, Pos: id.Pos()})
}

// findEntryPoints collects every event-handler root: callbacks handed
// to the kernel scheduler or timers, and concrete handler-interface
// methods.
func (p *Program) findEntryPoints() {
	seen := map[FuncID]bool{}
	add := func(id FuncID, kind string, pos token.Pos) {
		if id == "" || seen[id] {
			return
		}
		seen[id] = true
		p.EntryPoints = append(p.EntryPoints, EntryPoint{Fn: id, Kind: kind, Pos: pos})
	}
	for _, fid := range p.IDs {
		n := p.Funcs[fid]
		for _, c := range n.Calls {
			if c.Callee == "" {
				continue
			}
			for _, sched := range schedulerEntryPoints {
				if !idHasSuffix(c.Callee, sched.suffix) {
					continue
				}
				for _, arg := range c.FuncArgs {
					add(arg, sched.kind, c.Pos)
				}
			}
		}
		if n.Decl != nil && n.Decl.Recv != nil && handlerMethodNames[n.Decl.Name.Name] {
			add(fid, "dispatch", n.Pos)
		}
	}
	slices.SortFunc(p.EntryPoints, func(a, b EntryPoint) int {
		return strings.Compare(string(a.Fn), string(b.Fn))
	})
}

// Reachable computes the closure of nodes reachable from roots over
// resolved call edges and passed function values.
func (p *Program) Reachable(roots []FuncID) map[FuncID]bool {
	out := map[FuncID]bool{}
	var stack []FuncID
	push := func(id FuncID) {
		if id == "" || out[id] {
			return
		}
		if _, ok := p.Funcs[id]; !ok {
			return
		}
		out[id] = true
		stack = append(stack, id)
	}
	for _, r := range roots {
		push(r)
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := p.Funcs[id]
		for _, c := range n.Calls {
			push(c.Callee)
		}
		for _, f := range n.passed {
			push(f)
		}
	}
	return out
}

// HandlerReachable returns the set of nodes reachable from any event
// handler entry point, memoizing nothing: callers cache as needed.
func (p *Program) HandlerReachable() map[FuncID]bool {
	roots := make([]FuncID, 0, len(p.EntryPoints))
	for _, ep := range p.EntryPoints {
		roots = append(roots, ep.Fn)
	}
	return p.Reachable(roots)
}

// Callers returns the IDs of nodes with a resolved call edge to id, in
// sorted order. The reverse index is built lazily once.
func (p *Program) Callers(id FuncID) []FuncID {
	if p.callersMemo == nil {
		p.callersMemo = map[FuncID][]FuncID{}
		for _, fid := range p.IDs {
			n := p.Funcs[fid]
			for _, c := range n.Calls {
				if c.Callee != "" {
					p.callersMemo[c.Callee] = append(p.callersMemo[c.Callee], fid)
				}
			}
		}
		for _, ids := range p.callersMemo {
			slices.Sort(ids)
		}
	}
	return p.callersMemo[id]
}

// EntryPathTo returns one example call chain (entry point → … → id)
// proving id is handler-reachable, as display names, or nil. Used to
// make shard-safety findings self-explanatory.
func (p *Program) EntryPathTo(id FuncID) []string {
	type hop struct {
		id   FuncID
		prev *hop
	}
	visited := map[FuncID]bool{}
	var queue []*hop
	for _, ep := range p.EntryPoints {
		if _, ok := p.Funcs[ep.Fn]; ok && !visited[ep.Fn] {
			visited[ep.Fn] = true
			queue = append(queue, &hop{id: ep.Fn})
		}
	}
	for len(queue) > 0 {
		h := queue[0]
		queue = queue[1:]
		if h.id == id {
			var path []string
			for ; h != nil; h = h.prev {
				path = append(path, shortID(h.id))
			}
			slices.Reverse(path)
			return path
		}
		n := p.Funcs[h.id]
		next := slices.Clone(n.passed)
		for _, c := range n.Calls {
			next = append(next, c.Callee)
		}
		for _, c := range next {
			if c == "" || visited[c] {
				continue
			}
			if _, ok := p.Funcs[c]; !ok {
				continue
			}
			visited[c] = true
			queue = append(queue, &hop{id: c, prev: h})
		}
	}
	return nil
}

// shortID compresses a FuncID for diagnostics: the package path keeps
// only its last segment.
func shortID(id FuncID) string {
	s := string(id)
	if strings.HasPrefix(s, "closure@") {
		if i := strings.LastIndex(s, "/"); i >= 0 {
			return "closure@" + s[i+1:]
		}
		return s
	}
	if slash := strings.LastIndex(s, "/"); slash >= 0 {
		return s[slash+1:]
	}
	return s
}
