package routeless_test

import (
	"testing"

	"routeless"
)

// TestQuickstartFlow exercises the façade end to end the way the README
// shows: build a network, install Routeless Routing, deliver a packet.
func TestQuickstartFlow(t *testing.T) {
	nw := routeless.NewNetwork(routeless.NetworkConfig{
		N: 100, Seed: 42, EnsureConnected: true,
	})
	nw.Install(func(n *routeless.Node) routeless.Protocol {
		return routeless.NewRouteless(routeless.RoutelessConfig{})
	})
	var hops int
	nw.Nodes[7].OnAppReceive = func(p *routeless.Packet) { hops = p.HopCount }
	nw.Nodes[0].Net.Send(7, 256)
	nw.Run(10)
	if hops == 0 {
		t.Fatal("packet never delivered through the public API")
	}
}

// TestElectionAPI runs the §2 election through the façade.
func TestElectionAPI(t *testing.T) {
	k := routeless.NewKernel(1)
	cl := routeless.NewCluster(k, 6, 1e-4, 1e-6, 0, k.Rand())
	cl.ConnectAll()
	es := make([]*routeless.Elector, 5)
	for i := range es {
		es[i] = routeless.NewElector(k, routeless.NodeID(i), cl, routeless.UniformPolicy{Max: 0.01})
		cl.AttachElector(es[i])
	}
	arb := routeless.NewArbiter(k, 5, cl, 0.1)
	cl.AttachArbiter(arb)
	arb.Trigger()
	k.Run()
	if arb.Leader() < 0 {
		t.Fatalf("no leader elected: %v", arb.Leader())
	}
}

// TestFloodingAPI floods through the façade with both §3 variants.
func TestFloodingAPI(t *testing.T) {
	for _, cfg := range []routeless.FloodConfig{
		routeless.Counter1Config(5e-3),
		routeless.SSAFConfig(5e-3, -55.1, -33.2),
	} {
		cfg := cfg
		nw := routeless.NewNetwork(routeless.NetworkConfig{
			N: 40, Rect: routeless.NewRect(700, 700), Seed: 9, EnsureConnected: true,
		})
		nw.Install(func(n *routeless.Node) routeless.Protocol {
			return routeless.NewFlooding(&cfg)
		})
		got := false
		nw.Nodes[20].OnAppReceive = func(*routeless.Packet) { got = true }
		nw.Nodes[0].Net.Send(20, 64)
		nw.Run(3)
		if !got {
			t.Fatalf("flood (%v) did not deliver", cfg.Policy.Name())
		}
	}
}

// TestAODVAPI routes through the baseline protocol via the façade.
func TestAODVAPI(t *testing.T) {
	nw := routeless.NewNetwork(routeless.NetworkConfig{
		N: 60, Rect: routeless.NewRect(900, 900), Seed: 4, EnsureConnected: true,
	})
	nw.Install(func(n *routeless.Node) routeless.Protocol {
		return routeless.NewAODV(routeless.AODVConfig{})
	})
	got := false
	nw.Nodes[30].OnAppReceive = func(*routeless.Packet) { got = true }
	nw.Nodes[0].Net.Send(30, 128)
	nw.Run(10)
	if !got {
		t.Fatal("AODV did not deliver")
	}
}

// TestFailureProcessAPI injects §4.3 duty-cycle failures via the façade
// and checks Routeless keeps delivering.
func TestFailureProcessAPI(t *testing.T) {
	nw := routeless.NewNetwork(routeless.NetworkConfig{
		N: 120, Rect: routeless.NewRect(1000, 1000), Seed: 5, EnsureConnected: true,
	})
	nw.Install(func(n *routeless.Node) routeless.Protocol {
		return routeless.NewRouteless(routeless.RoutelessConfig{})
	})
	src, dst := 0, 100
	var meter routeless.Meter
	nw.Nodes[dst].OnAppReceive = func(p *routeless.Packet) {
		meter.PacketReceived(float64(nw.Kernel.Now()-p.CreatedAt), p.HopCount)
	}
	cbr := routeless.NewCBR(nw.Nodes[src], routeless.NodeID(dst), 0.5, 64)
	cbr.OnSend = meter.PacketSent
	cbr.Start()
	for i, n := range nw.Nodes {
		if i == src || i == dst {
			continue
		}
		fp := routeless.NewFailureProcess(n, nw.Kernel.Rand())
		fp.OffFraction = 0.10
		fp.Start()
	}
	nw.Run(30)
	cbr.Stop()
	nw.Run(35)
	if meter.DeliveryRatio() < 0.85 {
		t.Fatalf("delivery %v under 10%% failures", meter.DeliveryRatio())
	}
}

// TestTrafficAndStatsAPI exercises RandomPairs, CBR, Meter and Table.
func TestTrafficAndStatsAPI(t *testing.T) {
	pairs := routeless.RandomPairs(routeless.NewKernel(3).Rand(), 50, 10)
	if len(pairs) != 10 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	var w routeless.Welford
	w.Add(1)
	w.Add(3)
	if w.Mean() != 2 {
		t.Fatalf("welford mean %v", w.Mean())
	}
	tb := routeless.NewTable("x", "a")
	tb.AddRow(1.5)
	if tb.NumRows() != 1 {
		t.Fatal("table broken")
	}
}

// TestPropagationAPI checks the exported models.
func TestPropagationAPI(t *testing.T) {
	var m routeless.PropagationModel = routeless.NewFreeSpace()
	if m.ReceivedPower(20, 100) <= m.ReceivedPower(20, 200) {
		t.Fatal("free space not monotone through the façade")
	}
	tr := routeless.NewTwoRay()
	if tr.Crossover() <= 0 {
		t.Fatal("two-ray crossover")
	}
}

// TestFunctionalOptions pins the façade redesign: the options form and
// the struct-literal form build identical networks, and WithFaults
// installs the fault plane.
func TestFunctionalOptions(t *testing.T) {
	run := func(nw *routeless.Network) uint64 {
		nw.Install(func(n *routeless.Node) routeless.Protocol {
			return routeless.NewRouteless(routeless.RoutelessConfig{})
		})
		nw.Nodes[0].Net.Send(20, 64)
		nw.Run(5)
		return nw.Kernel.Processed()
	}
	literal := run(routeless.NewNetwork(routeless.NetworkConfig{
		N: 40, Rect: routeless.NewRect(700, 700), Seed: 9, EnsureConnected: true,
	}))
	options := run(routeless.NewNetwork(
		routeless.WithN(40),
		routeless.WithRect(routeless.NewRect(700, 700)),
		routeless.WithSeed(9),
		routeless.WithEnsureConnected(),
	))
	if literal != options {
		t.Fatalf("options form diverged from struct literal: %d vs %d events", literal, options)
	}

	nw := routeless.NewNetwork(
		routeless.WithN(40),
		routeless.WithRect(routeless.NewRect(700, 700)),
		routeless.WithSeed(9),
		routeless.WithEnsureConnected(),
		routeless.WithFaults(routeless.FaultPlan{routeless.Crash(0.3)}),
	)
	run(nw)
	if nw.Metrics.Snapshot().Count("fault.crashes") == 0 {
		t.Fatal("WithFaults never crashed a node")
	}
	if err := nw.CheckInvariants(); err != nil {
		t.Fatalf("invariants violated under WithFaults plan: %v", err)
	}
}
