package experiments

import (
	"routeless/internal/core"
	"routeless/internal/flood"
	"routeless/internal/geo"
	"routeless/internal/node"
	"routeless/internal/packet"
	"routeless/internal/rng"
	"routeless/internal/routing"
	"routeless/internal/sim"
	"routeless/internal/stats"
	"routeless/internal/sweep"
	"routeless/internal/traffic"
)

// --- ABL1: SSAF with and without duplicate cancellation ---------------

// Abl1Row compares SSAF and SSAF-C at one traffic level.
type Abl1Row struct {
	Interval float64
	SSAF     Agg // forwards counted in MACPackets
	SSAFC    Agg
}

// RunAbl1 reuses the Figure 1 rig with the cancellation flag toggled.
func RunAbl1(cfg Fig1Config) []Abl1Row {
	cfg = cfg.withDefaults()
	cells := sweep.Cells("abl1", len(cfg.Intervals)*2, cfg.Seeds)
	results := sweep.Run(cfg.Workers, cells, func(ctx *sweep.Context, i int, c sweep.Cell) RunMetrics {
		pi, cancel := versusPoint(c.Point)
		return runSSAFOnce(ctx, cfg, cfg.Intervals[pi], cancel, c.Seed)
	})
	rows := make([]Abl1Row, len(cfg.Intervals))
	for i, iv := range cfg.Intervals {
		rows[i].Interval = iv
	}
	for i, c := range cells {
		pi, cancel := versusPoint(c.Point)
		if cancel {
			rows[pi].SSAFC.Add(results[i])
		} else {
			rows[pi].SSAF.Add(results[i])
		}
	}
	return rows
}

func runSSAFOnce(ctx *sweep.Context, cfg Fig1Config, interval float64, cancel bool, seed int64) RunMetrics {
	nw := node.New(node.Config{
		N: cfg.Nodes, Rect: geo.NewRect(cfg.Terrain, cfg.Terrain),
		Range: cfg.Range, Seed: seed, EnsureConnected: true,
		Runtime: ctx.Runtime(),
	})
	minDBm, maxDBm := ssafSpan(cfg.Range)
	fcfg := flood.SSAFConfig(cfg.Lambda, minDBm, maxDBm)
	fcfg.Cancel = cancel
	nw.Install(func(n *node.Node) node.Protocol { return flood.New(&fcfg) })
	var meter stats.Meter
	tap := NewAppTap(nw, &meter)
	pairs := traffic.RandomPairs(rng.New(seed, rng.StreamTraffic), cfg.Nodes, cfg.Connections)
	var cbrs []*traffic.CBR
	for _, p := range pairs {
		c := traffic.NewCBR(nw.Nodes[p.Src], p.Dst, sim.Time(interval), packet.SizeData)
		tap.Watch(c)
		c.Start()
		cbrs = append(cbrs, c)
	}
	nw.Run(sim.Time(cfg.Duration))
	for _, c := range cbrs {
		c.Stop()
	}
	nw.Run(sim.Time(cfg.Duration) + drainTime)
	return collect(nw, tap)
}

// Abl1Table renders the comparison.
func Abl1Table(rows []Abl1Row) *stats.Table {
	t := stats.NewTable(
		"ABL1 — SSAF vs SSAF-C (duplicate cancellation)",
		"interval_s",
		"ssaf_mac_pkts", "ssafc_mac_pkts",
		"ssaf_delivery", "ssafc_delivery",
		"ssaf_delay_s", "ssafc_delay_s",
	)
	for _, r := range rows {
		t.AddRow(r.Interval,
			r.SSAF.MACPackets.Mean(), r.SSAFC.MACPackets.Mean(),
			r.SSAF.Delivery.Mean(), r.SSAFC.Delivery.Mean(),
			r.SSAF.Delay.Mean(), r.SSAFC.Delay.Mean(),
		)
	}
	return t
}

// --- ABL2: Routeless λ sweep ------------------------------------------

// Abl2Row captures the λ tradeoff (§4.1: small λ collides, large λ
// delays).
type Abl2Row struct {
	Lambda sim.Time
	RR     Agg
}

// RunAbl2 sweeps λ on the Figure 3 rig at a fixed pair count.
func RunAbl2(cfg Fig34Config, lambdas []sim.Time, pairs int) []Abl2Row {
	cfg = cfg.withDefaults()
	if len(lambdas) == 0 {
		lambdas = []sim.Time{1e-3, 2e-3, 5e-3, 10e-3, 20e-3, 50e-3, 100e-3}
	}
	if pairs == 0 {
		pairs = 5
	}
	cells := sweep.Cells("abl2", len(lambdas), cfg.Seeds)
	results := sweep.Run(cfg.Workers, cells, func(ctx *sweep.Context, i int, c sweep.Cell) RunMetrics {
		run := cfg
		run.Lambda = lambdas[c.Point]
		return runRoutingOnce(ctx, run, ProtoRouteless, pairs, 0, c.Seed).RunMetrics
	})
	rows := make([]Abl2Row, len(lambdas))
	for i, l := range lambdas {
		rows[i].Lambda = l
	}
	for i, c := range cells {
		rows[c.Point].RR.Add(results[i])
	}
	return rows
}

// Abl2Table renders the λ sweep.
func Abl2Table(rows []Abl2Row) *stats.Table {
	t := stats.NewTable(
		"ABL2 — Routeless Routing λ sweep (§4.1 tradeoff)",
		"lambda_ms", "delay_s", "delivery", "mac_pkts",
	)
	for _, r := range rows {
		t.AddRow(r.Lambda.Millis(), r.RR.Delay.Mean(), r.RR.Delivery.Mean(), r.RR.MACPackets.Mean())
	}
	return t
}

// --- ABL3: election outcome probabilities ------------------------------

// Abl3Row measures leader-election outcomes on the abstract medium as
// neighborhood size grows: probability of a clean single leader, of
// collisions (no leader), and mean rounds with an arbiter.
type Abl3Row struct {
	Nodes          int
	SingleLeader   float64 // share of trials electing exactly one leader
	NoLeader       float64 // share where collisions destroyed the round
	MeanRounds     float64 // arbiter rounds until success
	MeanBroadcasts float64 // announcements + acks + syncs per success
}

// abl3Out is one trial's outcome as it crosses the sweep boundary.
type abl3Out struct {
	single, none, rounds, bcasts float64
}

// RunAbl3 measures election behavior over `trials` independent cliques
// per size, one sweep cell per (size, trial).
func RunAbl3(workers int, sizes []int, trials int, lambda sim.Time, seed int64) []Abl3Row {
	if len(sizes) == 0 {
		sizes = []int{2, 5, 10, 20, 50}
	}
	if trials == 0 {
		trials = 200
	}
	// Each trial derives its own streams from (seed, size index, trial),
	// so the cell seed is just the trial index; determinism rides on the
	// derivation, exactly as the serial loop did.
	trialSeeds := make([]int64, trials)
	for i := range trialSeeds {
		trialSeeds[i] = int64(i)
	}
	cells := sweep.Cells("abl3", len(sizes), trialSeeds)
	results := sweep.Run(workers, cells, func(ctx *sweep.Context, i int, c sweep.Cell) abl3Out {
		return runElectionOnce(ctx, sizes[c.Point], c.Point, c.Rep, lambda, seed)
	})
	rows := make([]Abl3Row, len(sizes))
	for si, n := range sizes {
		rows[si].Nodes = n
	}
	for i, c := range cells {
		r := &rows[c.Point]
		r.SingleLeader += results[i].single
		r.NoLeader += results[i].none
		r.MeanRounds += results[i].rounds
		r.MeanBroadcasts += results[i].bcasts
	}
	for si := range rows {
		rows[si].SingleLeader /= float64(trials)
		rows[si].NoLeader /= float64(trials)
		rows[si].MeanRounds /= float64(trials)
		rows[si].MeanBroadcasts /= float64(trials)
	}
	return rows
}

// runElectionOnce runs one clique trial on the abstract medium.
func runElectionOnce(ctx *sweep.Context, n, si, trial int, lambda sim.Time, seed int64) abl3Out {
	k := sim.NewKernelPooled(rng.Derive(seed, uint64(si), uint64(trial)), ctx.Runtime().Events)
	// Message latency comparable to λ/4 makes near-ties collide,
	// like real airtime does.
	cl := core.NewCluster(k, n+1, lambda/4, lambda/20, 0,
		rng.New(seed, rng.StreamElection, uint64(si), uint64(trial)))
	cl.ConnectAll()
	electors := make([]*core.Elector, n)
	for i := 0; i < n; i++ {
		electors[i] = core.NewElector(k, packet.NodeID(i), cl, core.Uniform{Max: lambda})
		cl.AttachElector(electors[i])
	}
	arb := core.NewArbiter(k, packet.NodeID(n), cl, lambda*4)
	arb.MaxRetries = 20
	cl.AttachArbiter(arb)
	arb.Trigger()
	k.Run()
	countEvents(k)
	var out abl3Out
	winners := 0
	for _, e := range electors {
		if o := e.Current(); o.Won && o.Round == 1 {
			winners++
		}
	}
	switch {
	case winners == 1:
		out.single = 1
	case winners == 0 || arb.Leader() == packet.None:
		out.none = 1
	}
	if arb.Leader() != packet.None {
		out.rounds = float64(arb.Stats().Triggers)
	}
	out.bcasts = float64(cl.Stats().Broadcasts)
	return out
}

// Abl3Table renders the election study.
func Abl3Table(rows []Abl3Row) *stats.Table {
	t := stats.NewTable(
		"ABL3 — local leader election outcomes vs neighborhood size (uniform metric, arbiter on)",
		"nodes", "p_single_leader_r1", "p_collision_r1", "mean_rounds", "mean_broadcasts",
	)
	for _, r := range rows {
		t.AddRow(r.Nodes, r.SingleLeader, r.NoLeader, r.MeanRounds, r.MeanBroadcasts)
	}
	return t
}

// --- ABL4: Routeless vs Gradient Routing -------------------------------

// Abl4Row compares the two gradient-followers at one pair count.
type Abl4Row struct {
	Pairs     int
	Routeless Agg
	Gradient  Agg
}

// RunAbl4 reuses the Figure 3 rig with Gradient Routing in AODV's seat.
func RunAbl4(cfg Fig34Config) []Abl4Row {
	cfg = cfg.withDefaults()
	cells := sweep.Cells("abl4", len(cfg.Pairs)*2, cfg.Seeds)
	results := sweep.Run(cfg.Workers, cells, func(ctx *sweep.Context, i int, c sweep.Cell) RunMetrics {
		pi, grad := versusPoint(c.Point)
		proto := ProtoRouteless
		if grad {
			proto = ProtoGradient
		}
		return runRoutingOnce(ctx, cfg, proto, cfg.Pairs[pi], 0, c.Seed).RunMetrics
	})
	rows := make([]Abl4Row, len(cfg.Pairs))
	for i, p := range cfg.Pairs {
		rows[i].Pairs = p
	}
	for i, c := range cells {
		pi, grad := versusPoint(c.Point)
		if grad {
			rows[pi].Gradient.Add(results[i])
		} else {
			rows[pi].Routeless.Add(results[i])
		}
	}
	return rows
}

// Abl4Table renders the §4.4 comparison.
func Abl4Table(rows []Abl4Row) *stats.Table {
	t := stats.NewTable(
		"ABL4 — Routeless Routing vs Gradient Routing (§4.4 congestion claim)",
		"pairs",
		"rr_mac_pkts", "grad_mac_pkts",
		"rr_delivery", "grad_delivery",
		"rr_delay_s", "grad_delay_s",
	)
	for _, r := range rows {
		t.AddRow(r.Pairs,
			r.Routeless.MACPackets.Mean(), r.Gradient.MACPackets.Mean(),
			r.Routeless.Delivery.Mean(), r.Gradient.Delivery.Mean(),
			r.Routeless.Delay.Mean(), r.Gradient.Delay.Mean(),
		)
	}
	return t
}

// --- ABL5: duty-cycled sleeping under Routeless Routing ----------------

// Abl5Row quantifies §4.2's claim that "any node, even if it is on the
// route, can freely switch to a sleep or a standby mode to save
// energy": delivery and per-node energy as the sleep fraction grows.
type Abl5Row struct {
	SleepFraction float64
	RR            Agg
}

// RunAbl5 runs the Figure 3 rig with non-endpoint nodes duty-cycle
// sleeping instead of failing.
func RunAbl5(cfg Fig34Config, fractions []float64, pairs int) []Abl5Row {
	cfg = cfg.withDefaults()
	if len(fractions) == 0 {
		fractions = []float64{0, 0.1, 0.2, 0.3, 0.5}
	}
	if pairs == 0 {
		pairs = 5
	}
	cells := sweep.Cells("abl5", len(fractions), cfg.Seeds)
	results := sweep.Run(cfg.Workers, cells, func(ctx *sweep.Context, i int, c sweep.Cell) RunMetrics {
		return runSleepOnce(ctx, cfg, pairs, fractions[c.Point], c.Seed)
	})
	rows := make([]Abl5Row, len(fractions))
	for i, f := range fractions {
		rows[i].SleepFraction = f
	}
	for i, c := range cells {
		rows[c.Point].RR.Add(results[i])
	}
	return rows
}

func runSleepOnce(ctx *sweep.Context, cfg Fig34Config, pairs int, frac float64, seed int64) RunMetrics {
	nw := node.New(node.Config{
		N: cfg.Nodes, Rect: geo.NewRect(cfg.Terrain, cfg.Terrain),
		Range: cfg.Range, Seed: seed, EnsureConnected: true,
		Runtime: ctx.Runtime(),
	})
	nw.Install(func(n *node.Node) node.Protocol {
		return routing.NewRouteless(routing.RoutelessConfig{Lambda: cfg.Lambda})
	})
	var meter stats.Meter
	tap := NewAppTap(nw, &meter)
	conns := traffic.RandomPairs(rng.New(seed, rng.StreamTraffic), cfg.Nodes, pairs)
	endpoint := map[packet.NodeID]bool{}
	var cbrs []*traffic.CBR
	for _, p := range conns {
		endpoint[p.Src], endpoint[p.Dst] = true, true
		fwd := traffic.NewCBR(nw.Nodes[p.Src], p.Dst, sim.Time(cfg.Interval), cfg.DataSize)
		rev := traffic.NewCBR(nw.Nodes[p.Dst], p.Src, sim.Time(cfg.Interval), cfg.DataSize)
		tap.Watch(fwd)
		tap.Watch(rev)
		fwd.Start()
		rev.Start()
		cbrs = append(cbrs, fwd, rev)
	}
	if frac > 0 {
		for _, n := range nw.Nodes {
			if endpoint[n.ID] {
				continue
			}
			fp := node.NewFailureProcess(n, rng.ForNode(seed, rng.StreamFailure, int(n.ID)))
			fp.OffFraction = frac
			fp.Sleep = true
			fp.Start()
		}
	}
	nw.Run(sim.Time(cfg.Duration))
	for _, c := range cbrs {
		c.Stop()
	}
	nw.Run(sim.Time(cfg.Duration) + drainTime)
	return collect(nw, tap)
}

// Abl5Table renders the sleep study.
func Abl5Table(rows []Abl5Row) *stats.Table {
	t := stats.NewTable(
		"ABL5 — duty-cycled sleeping under Routeless Routing (§4.2 energy claim)",
		"sleep_frac", "delivery", "delay_s", "energy_J", "mac_pkts",
	)
	for _, r := range rows {
		t.AddRow(r.SleepFraction, r.RR.Delivery.Mean(), r.RR.Delay.Mean(),
			r.RR.EnergyJ.Mean(), r.RR.MACPackets.Mean())
	}
	return t
}

// --- ABL6: signal-strength tie-breaking inside Routeless's bands -------

// Abl6Row compares Routeless Routing with the paper's pure §4.1
// equation against the GradientSignal variant (signal-strength
// tie-break inside each gradient band — the metric combination the
// conclusion proposes).
type Abl6Row struct {
	Pairs     int
	Pure      Agg
	SignalTie Agg
}

// RunAbl6 runs both variants on the Figure 3 rig.
func RunAbl6(cfg Fig34Config) []Abl6Row {
	cfg = cfg.withDefaults()
	cells := sweep.Cells("abl6", len(cfg.Pairs)*2, cfg.Seeds)
	results := sweep.Run(cfg.Workers, cells, func(ctx *sweep.Context, i int, c sweep.Cell) RunMetrics {
		pi, signal := versusPoint(c.Point)
		return runSignalTieOnce(ctx, cfg, cfg.Pairs[pi], signal, c.Seed)
	})
	rows := make([]Abl6Row, len(cfg.Pairs))
	for i, p := range cfg.Pairs {
		rows[i].Pairs = p
	}
	for i, c := range cells {
		pi, signal := versusPoint(c.Point)
		if signal {
			rows[pi].SignalTie.Add(results[i])
		} else {
			rows[pi].Pure.Add(results[i])
		}
	}
	return rows
}

func runSignalTieOnce(ctx *sweep.Context, cfg Fig34Config, pairs int, signal bool, seed int64) RunMetrics {
	nw := node.New(node.Config{
		N: cfg.Nodes, Rect: geo.NewRect(cfg.Terrain, cfg.Terrain),
		Range: cfg.Range, Seed: seed, EnsureConnected: true,
		Runtime: ctx.Runtime(),
	})
	rcfg := routing.RoutelessConfig{Lambda: cfg.Lambda, SignalTieBreak: signal}
	nw.Install(func(n *node.Node) node.Protocol { return routing.NewRouteless(rcfg) })
	var meter stats.Meter
	tap := NewAppTap(nw, &meter)
	conns := traffic.RandomPairs(rng.New(seed, rng.StreamTraffic), cfg.Nodes, pairs)
	var cbrs []*traffic.CBR
	for _, p := range conns {
		fwd := traffic.NewCBR(nw.Nodes[p.Src], p.Dst, sim.Time(cfg.Interval), cfg.DataSize)
		rev := traffic.NewCBR(nw.Nodes[p.Dst], p.Src, sim.Time(cfg.Interval), cfg.DataSize)
		tap.Watch(fwd)
		tap.Watch(rev)
		fwd.Start()
		rev.Start()
		cbrs = append(cbrs, fwd, rev)
	}
	nw.Run(sim.Time(cfg.Duration))
	for _, c := range cbrs {
		c.Stop()
	}
	nw.Run(sim.Time(cfg.Duration) + drainTime)
	return collect(nw, tap)
}

// Abl6Table renders the tie-break comparison.
func Abl6Table(rows []Abl6Row) *stats.Table {
	t := stats.NewTable(
		"ABL6 — Routeless backoff tie-break: pure §4.1 equation vs signal-strength (conclusion's metric combination)",
		"pairs",
		"pure_mac_pkts", "sig_mac_pkts",
		"pure_hops", "sig_hops",
		"pure_delivery", "sig_delivery",
	)
	for _, r := range rows {
		t.AddRow(r.Pairs,
			r.Pure.MACPackets.Mean(), r.SignalTie.MACPackets.Mean(),
			r.Pure.Hops.Mean(), r.SignalTie.Hops.Mean(),
			r.Pure.Delivery.Mean(), r.SignalTie.Delivery.Mean(),
		)
	}
	return t
}
