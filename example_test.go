package routeless_test

import (
	"fmt"

	"routeless"
)

// ExampleNewNetwork shows the minimal end-to-end flow: build a field,
// install Routeless Routing, send one packet.
func ExampleNewNetwork() {
	nw := routeless.NewNetwork(routeless.NetworkConfig{
		N: 100, Seed: 42, EnsureConnected: true,
	})
	nw.Install(func(n *routeless.Node) routeless.Protocol {
		return routeless.NewRouteless(routeless.RoutelessConfig{})
	})
	delivered := false
	nw.Nodes[7].OnAppReceive = func(p *routeless.Packet) { delivered = true }
	nw.Nodes[0].Net.Send(7, 256)
	nw.Run(10)
	fmt.Println("delivered:", delivered)
	// Output: delivered: true
}

// ExampleNewElector runs one §2 local leader election on the abstract
// medium: five contenders, one arbiter, uniform backoff metric.
func ExampleNewElector() {
	k := routeless.NewKernel(1)
	cluster := routeless.NewCluster(k, 6, 1e-4, 1e-6, 0, k.Rand())
	cluster.ConnectAll()
	for i := 0; i < 5; i++ {
		e := routeless.NewElector(k, routeless.NodeID(i), cluster,
			routeless.UniformPolicy{Max: 0.01})
		cluster.AttachElector(e)
	}
	arbiter := routeless.NewArbiter(k, 5, cluster, 0.1)
	cluster.AttachArbiter(arbiter)
	arbiter.Trigger()
	k.Run()
	fmt.Println("elected:", arbiter.Leader() != -2 /* packet.None */)
	// Output: elected: true
}

// ExampleHopGradientPolicy demonstrates the §4.1 backoff equation: a
// node inside the expected distance draws below λ, a node two hops
// beyond it draws in the [2λ, 3λ) band.
func ExampleHopGradientPolicy() {
	policy := routeless.HopGradientPolicy{Lambda: 0.010}
	k := routeless.NewKernel(5)
	near, _ := policy.Backoff(routeless.PolicyContext{
		HopsToTarget: 2, ExpectedHops: 3, Rand: k.Rand(),
	})
	far, _ := policy.Backoff(routeless.PolicyContext{
		HopsToTarget: 5, ExpectedHops: 3, Rand: k.Rand(),
	})
	fmt.Println("near below lambda:", near < 0.010)
	fmt.Println("far above 2*lambda:", far >= 0.020)
	// Output:
	// near below lambda: true
	// far above 2*lambda: true
}
