// Package packet defines the in-simulation packet model shared by the
// MAC layer and every network protocol in the repository. Packets are
// plain structs, never serialized: a simulated transmission hands the
// receiver a copy, and airtime is derived from the declared size.
package packet

import (
	"fmt"

	"routeless/internal/sim"
)

// NodeID identifies a node. IDs are dense small integers assigned by
// the network builder.
type NodeID int32

// Broadcast is the MAC destination meaning "all nodes in range".
const Broadcast NodeID = -1

// None marks an unset node field.
const None NodeID = -2

// String implements fmt.Stringer.
func (id NodeID) String() string {
	switch id {
	case Broadcast:
		return "*"
	case None:
		return "-"
	default:
		return fmt.Sprintf("n%d", int32(id))
	}
}

// Kind classifies packets for protocol dispatch and statistics.
type Kind uint8

// Packet kinds used across the protocol suite.
const (
	KindData      Kind = iota // application payload
	KindFlood                 // flooded application payload (§3)
	KindDiscovery             // Routeless path discovery (§4.1)
	KindReply                 // Routeless path reply (§4.1)
	KindAck                   // Routeless/election acknowledgement (§2, §4.1)
	KindAnnounce              // election announcement (§2)
	KindSync                  // election synchronization trigger (§2)
	KindRREQ                  // AODV route request
	KindRREP                  // AODV route reply
	KindRERR                  // AODV route error
	KindHello                 // AODV hello beacon
	KindMACAck                // link-layer acknowledgement for unicast
	KindJam                   // fault-plane jammer burst; interferes, never decodes
	numKinds
)

var kindNames = [numKinds]string{
	"DATA", "FLOOD", "DISC", "REPLY", "ACK", "ANN", "SYNC",
	"RREQ", "RREP", "RERR", "HELLO", "MACK", "JAM",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("KIND(%d)", uint8(k))
}

// NumKinds reports how many packet kinds exist, for stats arrays.
func NumKinds() int { return int(numKinds) }

// Packet carries MAC- and network-layer headers plus an opaque payload.
// Every hop transmits a fresh copy (see Clone); mutating a received
// packet never affects other receivers.
type Packet struct {
	// MAC layer addressing.
	From NodeID // transmitter of this hop
	To   NodeID // Broadcast, or the unicast next hop

	Kind Kind

	// End-to-end addressing.
	Origin NodeID // node that created the packet
	Target NodeID // final destination (None for pure broadcasts)

	// Seq distinguishes packets from the same origin; (Origin, Kind
	// class, Seq) identifies a logical packet network-wide.
	Seq uint32

	// HopCount is the paper's "actual hop count field": hops traveled
	// from Origin to the node that transmitted this copy, inclusive of
	// that transmission.
	HopCount int

	// ExpectedHops is the paper's "expected hop count field" carried by
	// path reply and data packets: the transmitter's estimate of the
	// remaining distance to Target.
	ExpectedHops int

	// TTL bounds forwarding; decremented per hop, dropped at zero.
	TTL int

	// Size is the on-air size in bytes (headers included); it drives
	// transmission duration.
	Size int

	// CreatedAt is when Origin generated the logical packet; end-to-end
	// delay is measured against it.
	CreatedAt sim.Time

	// UID identifies this physical copy for tracing; assigned by the
	// MAC on transmit.
	UID uint64

	// Payload is protocol- or application-specific extra state.
	Payload any
}

// Clone returns a copy of p suitable for retransmission or forwarding.
// Payload is shared (payloads are treated as immutable).
func (p *Packet) Clone() *Packet {
	q := *p
	return &q
}

// FlowKey identifies a logical end-to-end packet, used for duplicate
// suppression and election state.
type FlowKey struct {
	Origin NodeID
	Kind   Kind
	Seq    uint32
}

// Key returns the logical identity of p.
func (p *Packet) Key() FlowKey { return FlowKey{p.Origin, p.Kind, p.Seq} }

// String implements fmt.Stringer for debugging and traces.
func (p *Packet) String() string {
	return fmt.Sprintf("%s %s->%s o=%s t=%s seq=%d h=%d eh=%d",
		p.Kind, p.From, p.To, p.Origin, p.Target, p.Seq, p.HopCount, p.ExpectedHops)
}

// Default on-air sizes in bytes, shared by protocols so comparisons are
// apples-to-apples. Values follow typical MANET simulation setups.
const (
	SizeData    = 512
	SizeControl = 48
	SizeAck     = 24
	SizeHello   = 32
)

// DedupCache remembers recently seen FlowKeys with bounded memory: the
// classic sequence-number list every counter-1 flooding node keeps
// (§3: "every node must also keep a list of sequence numbers of
// received packets"). Eviction is FIFO.
type DedupCache struct {
	seen  map[FlowKey]struct{}
	order []FlowKey
	cap   int
}

// NewDedupCache returns a cache holding at most capacity keys. The
// backing map is allocated on first use: a node no flood ever reaches
// keeps an empty cache, which at mega scale keeps untouched arena
// regions cheap.
func NewDedupCache(capacity int) *DedupCache {
	c := &DedupCache{}
	c.Init(capacity)
	return c
}

// Init initializes c in place with the given capacity — the
// value-embedding alternative to NewDedupCache for owners that hold the
// cache inline (one fewer heap object per node at mega scale).
func (c *DedupCache) Init(capacity int) {
	if capacity <= 0 {
		panic("packet: dedup capacity must be positive")
	}
	*c = DedupCache{cap: capacity}
}

// Seen reports whether k was recorded and records it. The first call
// for a key returns false, later calls true (until evicted).
func (c *DedupCache) Seen(k FlowKey) bool {
	if _, ok := c.seen[k]; ok {
		return true
	}
	if c.seen == nil {
		c.seen = make(map[FlowKey]struct{})
	}
	if len(c.order) >= c.cap {
		old := c.order[0]
		c.order = c.order[1:]
		delete(c.seen, old)
	}
	c.seen[k] = struct{}{}
	c.order = append(c.order, k)
	return false
}

// Contains reports whether k is recorded without recording it.
func (c *DedupCache) Contains(k FlowKey) bool {
	_, ok := c.seen[k]
	return ok
}

// Len returns the number of recorded keys.
func (c *DedupCache) Len() int { return len(c.seen) }
