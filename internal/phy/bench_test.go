package phy

import (
	"testing"

	"routeless/internal/geo"
	"routeless/internal/packet"
	"routeless/internal/propagation"
	"routeless/internal/rng"
	"routeless/internal/sim"
)

// nullListener absorbs PHY indications.
type nullListener struct{}

func (nullListener) OnReceive(*packet.Packet, float64) {}
func (nullListener) OnMediumBusy()                     {}
func (nullListener) OnMediumIdle()                     {}
func (nullListener) OnTxDone()                         {}

// BenchmarkBroadcastField measures one broadcast through the channel on
// a paper-scale field: power computation, fan-out scheduling, and
// delivery at ~24 neighbors.
func BenchmarkBroadcastField(b *testing.B) {
	k := sim.NewKernel(1)
	model := propagation.NewFreeSpace()
	params := DefaultParams(model, 250)
	rect := geo.NewRect(2000, 2000)
	pts := geo.UniformPoints(rng.New(1, rng.StreamTopology), rect, 500)
	ch := NewChannel(k, rect, pts, params, ChannelConfig{Model: model})
	for i := 0; i < 500; i++ {
		ch.Radio(i).SetListener(nullListener{})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.Radio(i % 500).Transmit(&packet.Packet{
			Kind: packet.KindData, To: packet.Broadcast, Size: 64,
		})
		k.Run()
	}
}

// BenchmarkReceivedPower measures the propagation hot path.
func BenchmarkReceivedPower(b *testing.B) {
	m := propagation.NewFreeSpace()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += m.ReceivedPower(24.5, float64(1+i%500))
	}
	_ = sink
}
