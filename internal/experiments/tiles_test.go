package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"routeless/internal/metrics"
)

// The tiled PDES engine's contract is stronger than speedup: a run
// split across N tiles must reproduce the sequential journal byte for
// byte. These tests pin that against the same committed goldens the
// sequential runs are gated on, at the tile counts CI exercises.

func runFig1Tiled(t *testing.T, tiles int) (journal []byte, csv string) {
	t.Helper()
	var buf bytes.Buffer
	cfg := tinyFig1()
	cfg.Tiles = tiles
	cfg.Journal = metrics.NewJournal(&buf)
	rows := RunFig1(cfg)
	if err := cfg.Journal.Err(); err != nil {
		t.Fatalf("journal write failed: %v", err)
	}
	return buf.Bytes(), Fig1Table(rows).CSV()
}

// TestFig1JournalTileCountInvariant is the worker-count invariance test
// one level down: tiles change wall time, never bytes.
func TestFig1JournalTileCountInvariant(t *testing.T) {
	j1, csv1 := runFig1Tiled(t, 1)
	for _, tiles := range []int{4, 16} {
		jt, csvt := runFig1Tiled(t, tiles)
		if !bytes.Equal(j1, jt) {
			t.Fatalf("tiles=%d changed journal bytes:\ntiles=1: %s\ntiles=%d: %s", tiles, j1, tiles, jt)
		}
		if csv1 != csvt {
			t.Fatalf("tiles=%d changed table CSV:\ntiles=1:\n%s\ntiles=%d:\n%s", tiles, csv1, tiles, csvt)
		}
	}
}

// TestFig1JournalTiledMatchesGolden gates the tiled engine against the
// committed sequential golden directly, so a simultaneous drift of the
// sequential and tiled paths cannot hide behind the invariance test.
func TestFig1JournalTiledMatchesGolden(t *testing.T) {
	got, _ := runFig1Tiled(t, 4)
	want, err := os.ReadFile(filepath.Join("testdata", "fig1_tiny.journal.jsonl"))
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("tiled journal drifted from the sequential golden")
	}
}

// TestChurnJournalTileCountInvariant extends the promise to runs with
// the fault plane active: crash/degrade/jam schedules live on the
// global control lane and must not shift a byte when the arena tiles.
func TestChurnJournalTileCountInvariant(t *testing.T) {
	run := func(tiles int) []byte {
		var buf bytes.Buffer
		cfg := tinyChurn()
		cfg.Tiles = tiles
		cfg.Journal = metrics.NewJournal(&buf)
		RunChurn(cfg)
		if err := cfg.Journal.Err(); err != nil {
			t.Fatalf("journal write failed: %v", err)
		}
		return buf.Bytes()
	}
	j1 := run(1)
	for _, tiles := range []int{4, 16} {
		jt := run(tiles)
		if !bytes.Equal(j1, jt) {
			t.Fatalf("tiles=%d changed churn journal bytes", tiles)
		}
	}
}
