package propagation

// rangeKey identifies one RangeFor query. The fields are stored
// verbatim from the caller's arguments and compared as a unit, so the
// struct equality below is a tag check on assigned values, never a
// comparison of recomputed floats.
type rangeKey struct {
	txDBm, thresholdDBm, lo, hi float64
}

type rangeEntry struct {
	key    rangeKey
	rangeM float64
}

// RangeCache memoizes RangeFor for a fixed model. The bisection runs
// ~100 log/pow evaluations per query; topology checks (DecodeRange,
// NeighborCount, Connected) issue the same query once per node, so
// fields where radios share a parameter set pay for exactly one
// bisection instead of N.
//
// The cache is append-only and expected to stay tiny (one entry per
// distinct radio parameter set); lookups are a linear scan, which for
// one or two entries beats any map.
type RangeCache struct {
	model   Model
	entries []rangeEntry
}

// NewRangeCache returns an empty cache bound to m. Results are only
// valid while m's parameters are not mutated — models in this
// repository are configured once at construction.
func NewRangeCache(m Model) *RangeCache {
	return &RangeCache{model: m}
}

// RangeFor returns the memoized equivalent of
// propagation.RangeFor(model, txDBm, thresholdDBm, lo, hi).
func (c *RangeCache) RangeFor(txDBm, thresholdDBm, lo, hi float64) float64 {
	k := rangeKey{txDBm, thresholdDBm, lo, hi}
	for i := range c.entries {
		if c.entries[i].key == k {
			return c.entries[i].rangeM
		}
	}
	r := RangeFor(c.model, txDBm, thresholdDBm, lo, hi)
	c.entries = append(c.entries, rangeEntry{key: k, rangeM: r})
	return r
}

// RangeKeyer is implemented by models whose full parameter set can be
// captured as a comparable value. SharedRangeCache uses the key to
// memoize bisections across model *instances*: two simulation runs
// that each construct their own identically-parameterized model hit
// the same cache line. A model returns ok=false when its parameters
// cannot be captured comparably (e.g. it wraps an unkeyable model);
// such queries are computed directly, which is still deterministic.
type RangeKeyer interface {
	RangeKey() (key any, ok bool)
}

// sharedRangeKey identifies one RangeFor query against one model
// parameter set. model holds the RangeKey value; float arguments are
// stored verbatim from the caller, so equality is a tag check on
// assigned values, never a comparison of recomputed floats.
type sharedRangeKey struct {
	model                       any
	txDBm, thresholdDBm, lo, hi float64
}

// SharedRangeCache memoizes RangeFor across models, keyed on each
// model's RangeKey. Unlike RangeCache it is not bound to a single
// model instance, so one cache can serve every run a sweep worker
// executes — the bisection for a radio parameter set is paid once per
// worker, not once per replication.
//
// The cache only ever grows and is read with point lookups (never
// iterated), so reuse cannot perturb results. It is NOT safe for
// concurrent use: each sweep worker owns exactly one.
type SharedRangeCache struct {
	m map[sharedRangeKey]float64
}

// NewSharedRangeCache returns an empty cross-model cache.
func NewSharedRangeCache() *SharedRangeCache {
	return &SharedRangeCache{m: make(map[sharedRangeKey]float64)}
}

// RangeFor returns the memoized equivalent of
// propagation.RangeFor(m, txDBm, thresholdDBm, lo, hi), computing and
// caching on miss. Models that do not implement RangeKeyer (or whose
// key is not capturable) are computed directly without caching.
func (c *SharedRangeCache) RangeFor(m Model, txDBm, thresholdDBm, lo, hi float64) float64 {
	rk, ok := m.(RangeKeyer)
	if !ok {
		return RangeFor(m, txDBm, thresholdDBm, lo, hi)
	}
	key, ok := rk.RangeKey()
	if !ok {
		return RangeFor(m, txDBm, thresholdDBm, lo, hi)
	}
	k := sharedRangeKey{key, txDBm, thresholdDBm, lo, hi}
	if r, hit := c.m[k]; hit {
		return r
	}
	r := RangeFor(m, txDBm, thresholdDBm, lo, hi)
	c.m[k] = r
	return r
}
