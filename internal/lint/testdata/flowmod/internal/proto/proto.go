// Package proto carries the violating shapes the flow-aware rules must
// catch across function and package boundaries — each one invisible to
// the syntactic predecessors.
package proto

import (
	"math/rand"

	"flowmod/internal/metrics"
	"flowmod/internal/rng"
	"flowmod/internal/sim"
)

// mapKeys collects keys with the sanctioned idiom but never sorts, so
// its return value carries map-iteration order out of the function.
func mapKeys(m map[int]float64) []int {
	var ks []int
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}

// FlushBad leaks map order into the event schedule through mapKeys: the
// range is over a plain slice, which the syntactic rule ignores.
func FlushBad(k *sim.Kernel, m map[int]float64) {
	for _, id := range mapKeys(m) {
		k.At(sim.Time(id), func() {})
	}
}

func write(j *metrics.Journal, name string) { j.Write(metrics.Record{Name: name}) }
func relay(j *metrics.Journal, name string) { write(j, name) }

// JournalBad reaches the journal two calls deep from a map range; the
// name "relay" matches no effect heuristic.
func JournalBad(j *metrics.Journal, m map[string]int) {
	for name := range m {
		relay(j, name)
	}
}

// mkStream forwards its seed argument into a raw constructor, so its
// output is only as derived as what callers feed it.
func mkStream(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// BadJitter supplies a fixed seed through the helper: the stream is not
// a function of the master seed.
func BadJitter() float64 { return mkStream(42).Float64() }

// GoodJitter derives the seed first; the same helper chain is fine.
func GoodJitter(seed int64) float64 { return mkStream(rng.Derive(seed, "jitter")).Float64() }

// hits is package-level mutable state written from handler context.
var hits int

// Listener is a delivery handler (dispatch entry point by method name).
type Listener struct{ G *metrics.Gauge }

// OnReceive runs inside events; the hits++ write is cross-shard state.
func (l *Listener) OnReceive(rssiDBm float64) {
	hits++
	l.G.Set(rssiDBm)
}

// pending is written by a scheduled callback.
var pending int

// Arm schedules a closure that mutates package state.
func Arm(k *sim.Kernel) {
	k.Schedule(1, func() { pending++ })
}

// deliveries is handler-written too, but the write carries a reasoned
// suppression.
var deliveries int

// Meter is a send-report handler.
type Meter struct{}

// OnSent counts completions.
func (Meter) OnSent(ok bool) {
	//lint:ignore sharedstate run-scoped counter, merged single-threaded after the run
	deliveries++
}

// Beacon re-arms itself from handler context, dragging the kernel
// singleton into the handler-reachable set.
type Beacon struct{ K *sim.Kernel }

// OnDeliver schedules the next emission.
func (b *Beacon) OnDeliver(v float64) {
	b.K.Schedule(1, func() { b.emit() })
}

func (b *Beacon) emit() {}

// SpawnBad launches a goroutine outside the sanctioned engines; the
// goroutine rule must flag it even though the identical shape in
// internal/pdes is exempt.
func SpawnBad(done chan struct{}) {
	go func() { close(done) }()
}
