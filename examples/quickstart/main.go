// Quickstart: the façade's functional-options form, end to end. Build
// a 100-node field, install Routeless Routing, run CBR traffic between
// two corners — then do it again with a fault plan (duty-cycle crashes
// plus a roaming jammer) injected through the same options call, and
// compare what survived.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"routeless"
)

// run builds a field from the options, routes 20 packets corner to
// corner, and reports delivery.
func run(label string, opts ...routeless.Option) {
	nw := routeless.NewNetwork(opts...)
	nw.Install(func(n *routeless.Node) routeless.Protocol {
		return routeless.NewRouteless(routeless.RoutelessConfig{})
	})

	src, dst := corner(nw, 0, 0), corner(nw, 1000, 1000)
	delivered := 0
	nw.Nodes[dst].OnAppReceive = func(p *routeless.Packet) { delivered++ }

	cbr := routeless.NewCBR(nw.Nodes[src], dst, 1.0, 256)
	cbr.StartAt(0.5)
	nw.Run(20)
	cbr.Stop()
	nw.Run(25)

	if err := nw.CheckInvariants(); err != nil {
		panic(err)
	}
	fmt.Printf("%-12s n%d → n%d: %d/%d delivered\n", label, src, dst, delivered, cbr.Sent())
}

func main() {
	base := []routeless.Option{
		routeless.WithN(100),
		routeless.WithRect(routeless.NewRect(1000, 1000)),
		routeless.WithSeed(42),
		routeless.WithEnsureConnected(),
	}

	// Clean run: no faults.
	run("clean", base...)

	// Same field, same seed, now under fire: 10% duty-cycle crashes on
	// every node and a roaming jammer. The fault streams derive from the
	// network seed, so this run is exactly reproducible too.
	run("under fire", append(base, routeless.WithFaults(routeless.FaultPlan{
		routeless.Crash(0.10),
		routeless.Jam(24.5),
	}))...)
}

// corner returns the node nearest (x, y).
func corner(nw *routeless.Network, x, y float64) routeless.NodeID {
	best, bestD := 0, 1e18
	for i, n := range nw.Nodes {
		dx, dy := n.Pos.X-x, n.Pos.Y-y
		if d := dx*dx + dy*dy; d < bestD {
			best, bestD = i, d
		}
	}
	return routeless.NodeID(best)
}
