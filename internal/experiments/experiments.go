// Package experiments reproduces every figure of the paper's
// evaluation plus the ablations listed in DESIGN.md. Each figure has a
// Config (defaults reproduce the paper's scale; tests and benches scale
// down), a Run function that sweeps the figure's x-axis across seeds in
// parallel, and a Table formatter that prints the series the paper
// plots.
package experiments

import (
	"routeless/internal/metrics"
	"routeless/internal/node"
	"routeless/internal/packet"
	"routeless/internal/sim"
	"routeless/internal/stats"
)

// RunMetrics is one simulation run's outcome in the paper's units.
type RunMetrics struct {
	Delay      float64 // mean end-to-end delay, seconds
	Hops       float64 // mean hop count of delivered packets
	Delivery   float64 // delivered / sent
	MACPackets float64 // total MAC-layer transmissions
	EnergyJ    float64 // total radio energy, joules
}

// Agg aggregates RunMetrics across seeds.
type Agg struct {
	Delay, Hops, Delivery, MACPackets, EnergyJ stats.Welford
}

// Add folds one run into the aggregate.
func (a *Agg) Add(m RunMetrics) {
	a.Delay.Add(m.Delay)
	a.Hops.Add(m.Hops)
	a.Delivery.Add(m.Delivery)
	a.MACPackets.Add(m.MACPackets)
	a.EnergyJ.Add(m.EnergyJ)
}

// meterAll attaches a delivery meter to every node: any application
// delivery is scored by creation-time delay and traversed hops. The
// meter is also exposed on the network registry as app.* series, so a
// journaled snapshot carries the end-to-end results next to the stack
// counters.
func meterAll(nw *node.Network, m *stats.Meter) {
	for _, n := range nw.Nodes {
		n := n
		n.OnAppReceive = func(p *packet.Packet) {
			m.PacketReceived(float64(nw.Kernel.Now()-p.CreatedAt), p.HopCount)
		}
	}
	nw.Metrics.Func("app.sent", func() uint64 { return m.Sent })
	nw.Metrics.Func("app.received", func() uint64 { return m.Received })
	nw.Metrics.GaugeFunc("app.delay_mean_s", func() float64 { return m.Delay.Mean() })
	nw.Metrics.GaugeFunc("app.hops_mean", func() float64 { return m.Hops.Mean() })
}

// collect converts a finished network + meter into RunMetrics. Every
// experiment run — figures, ablations, and the benchmark configs —
// funnels through here, so the packet conservation laws are asserted on
// each of them; a violation is a simulator bug, not a measurement, and
// panics.
func collect(nw *node.Network, m *stats.Meter) RunMetrics {
	countEvents(nw.Kernel)
	if err := nw.CheckInvariants(); err != nil {
		panic(err)
	}
	return RunMetrics{
		Delay:      m.Delay.Mean(),
		Hops:       m.Hops.Mean(),
		Delivery:   m.DeliveryRatio(),
		MACPackets: float64(nw.MACPackets()),
		EnergyJ:    nw.TotalEnergy(),
	}
}

// runOut is one run's result as it crosses the parallel.Map boundary:
// the paper-unit metrics, plus the final registry snapshot when the
// sweep is journaling (nil otherwise — snapshots are not free).
type runOut struct {
	RunMetrics
	snap *metrics.Snapshot
}

// snapshotIf captures the network's final metric snapshot when want is
// set.
func snapshotIf(nw *node.Network, want bool) *metrics.Snapshot {
	if !want {
		return nil
	}
	return nw.Metrics.Snapshot()
}

// drainTime is how long runs continue after traffic stops so in-flight
// packets can land.
const drainTime sim.Time = 5

// simTime re-exports sim.Time for test ergonomics.
type simTime = sim.Time
