// Package parallel runs independent simulations concurrently: each
// simulation is sequential (determinism), but parameter points × seeds
// are embarrassingly parallel. Results come back in input order, so a
// parallel sweep prints identical tables to a serial one.
package parallel

import (
	"runtime"
	"sync"
)

// Map evaluates fn for every index in [0, n) using at most workers
// goroutines (0 means GOMAXPROCS) and returns the results in index
// order. fn must be safe to call concurrently for different indices —
// simulations satisfy this because each builds its own kernel.
//
// If fn panics in a worker, the remaining indices still run, and Map
// re-raises the first panic on the caller's goroutine after all workers
// finish — the caller sees an ordinary panic it can recover from,
// instead of the process dying on a worker stack.
func Map[T any](workers, n int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	run(workers, n, func(i int) { out[i] = fn(i) })
	return out
}

// ForEach is Map without results: it evaluates fn for every index in
// [0, n) using at most workers goroutines and returns once all indices
// ran. It shares Map's worker clamping and panic contract — a panic in
// any index lets the remaining indices finish, then re-raises on the
// caller's goroutine.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	run(workers, n, fn)
}

// Workers clamps a requested worker count against n work items: 0 (or
// negative) means GOMAXPROCS, and the result never exceeds n nor drops
// below 1. Exported so higher-level engines (internal/sweep) size their
// worker pools with the same rule.
func Workers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// run is the shared execution body behind Map and ForEach; n must be
// positive.
func run(workers, n int, fn func(i int)) {
	workers = Workers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	// The work channel is filled and closed before any worker starts:
	// workers only drain it, so there is no producer goroutine to
	// coordinate and no send that could block forever if workers die.
	next := make(chan int, n)
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		failure any // first recovered worker panic, re-raised below
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if failure == nil {
						failure = r
					}
					mu.Unlock()
				}
			}()
			for i := range next {
				fn(i)
			}
		}()
	}
	wg.Wait()
	if failure != nil {
		panic(failure)
	}
}
