package sweep

import (
	"fmt"
	"sync/atomic"
	"testing"
	"testing/quick"

	"routeless/internal/rng"
)

func TestCellsEnumeration(t *testing.T) {
	seeds := []int64{10, 20, 30}
	cells := Cells("fig1", 2, seeds)
	if len(cells) != 6 {
		t.Fatalf("got %d cells, want 6", len(cells))
	}
	want := []Cell{
		{"fig1", 0, 0, 10}, {"fig1", 0, 1, 20}, {"fig1", 0, 2, 30},
		{"fig1", 1, 0, 10}, {"fig1", 1, 1, 20}, {"fig1", 1, 2, 30},
	}
	for i, c := range cells {
		if c != want[i] {
			t.Fatalf("cells[%d] = %+v, want %+v", i, c, want[i])
		}
	}
}

func TestCellsEmpty(t *testing.T) {
	if got := Cells("x", 0, []int64{1}); len(got) != 0 {
		t.Fatalf("0 points should yield 0 cells, got %d", len(got))
	}
	if got := Cells("x", 3, nil); len(got) != 0 {
		t.Fatalf("no seeds should yield 0 cells, got %d", len(got))
	}
}

func TestRunEmpty(t *testing.T) {
	out := Run(4, nil, func(ctx *Context, i int, c Cell) int { return i })
	if out != nil {
		t.Fatalf("empty cell list should return nil, got %v", out)
	}
}

// Results must land at the cell's index, in cell order, regardless of
// scheduling.
func TestRunOrderPreserved(t *testing.T) {
	cells := Cells("f", 10, []int64{1, 2, 3, 4, 5})
	for _, workers := range []int{1, 2, 3, 8, 64} {
		out := Run(workers, cells, func(ctx *Context, i int, c Cell) string {
			return fmt.Sprintf("%s/%d/%d/%d", c.Figure, c.Point, c.Rep, c.Seed)
		})
		if len(out) != len(cells) {
			t.Fatalf("workers=%d: %d results for %d cells", workers, len(out), len(cells))
		}
		for i, c := range cells {
			want := fmt.Sprintf("%s/%d/%d/%d", c.Figure, c.Point, c.Rep, c.Seed)
			if out[i] != want {
				t.Fatalf("workers=%d: out[%d] = %q, want %q", workers, i, out[i], want)
			}
		}
	}
}

// Every cell must run exactly once even under heavy stealing pressure
// (uneven cell costs force idle workers to raid busy spans).
func TestRunEachCellOnce(t *testing.T) {
	const n = 500
	cells := Cells("f", n, []int64{0})
	var counts [n]int32
	Run(8, cells, func(ctx *Context, i int, c Cell) struct{} {
		// Make early cells expensive so later spans get stolen.
		if i < 8 {
			x := int64(1)
			for j := 0; j < 200000; j++ {
				x = x*6364136223846793005 + 1442695040888963407
			}
			_ = x
		}
		atomic.AddInt32(&counts[i], 1)
		return struct{}{}
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("cell %d ran %d times", i, c)
		}
	}
}

// A cell function that derives everything from its seed must produce
// identical output for any worker count — the engine's core promise.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	cells := Cells("f", 7, []int64{3, 5, 9})
	cellFn := func(ctx *Context, i int, c Cell) uint64 {
		// Mix point and seed through the same derivation experiments use.
		return uint64(rng.Derive(c.Seed, uint64(c.Point)<<8|uint64(c.Rep)))
	}
	base := Run(1, cells, cellFn)
	for _, workers := range []int{2, 4, 8} {
		got := Run(workers, cells, cellFn)
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("workers=%d diverged from serial at cell %d", workers, i)
			}
		}
	}
}

// Each worker's Context must be stable for its whole loop: same worker
// index → same Runtime pointer, and distinct workers never share one.
func TestRunContextOwnership(t *testing.T) {
	const n = 200
	cells := Cells("f", n, []int64{0})
	type seen struct {
		worker int
		rt     string // runtime pointer identity via %p
	}
	results := Run(4, cells, func(ctx *Context, i int, c Cell) seen {
		if ctx.Runtime() == nil {
			t.Error("nil runtime")
		}
		return seen{ctx.Worker(), fmt.Sprintf("%p", ctx.Runtime())}
	})
	byWorker := map[int]string{}
	for _, r := range results {
		if prev, ok := byWorker[r.worker]; ok {
			if prev != r.rt {
				t.Fatalf("worker %d saw two runtimes: %s vs %s", r.worker, prev, r.rt)
			}
		} else {
			byWorker[r.worker] = r.rt
		}
	}
	byRuntime := map[string]int{}
	for w, rt := range byWorker {
		if other, dup := byRuntime[rt]; dup {
			t.Fatalf("workers %d and %d share a runtime", w, other)
		}
		byRuntime[rt] = w
	}
}

// A panicking cell must surface on the caller's goroutine after the
// remaining cells finish (parallel.ForEach's contract, inherited).
func TestRunPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		cells := Cells("f", 40, []int64{0})
		var ran int32
		var recovered any
		func() {
			defer func() { recovered = recover() }()
			Run(workers, cells, func(ctx *Context, i int, c Cell) int {
				if i == 13 {
					panic("cell boom")
				}
				atomic.AddInt32(&ran, 1)
				return i
			})
		}()
		if recovered == nil {
			t.Fatalf("workers=%d: cell panic was swallowed", workers)
		}
		if s, ok := recovered.(string); !ok || s != "cell boom" {
			t.Fatalf("workers=%d: re-raised %v, want \"cell boom\"", workers, recovered)
		}
		if workers > 1 && atomic.LoadInt32(&ran) != 39 {
			t.Fatalf("workers=%d: %d cells ran after panic, want 39", workers, ran)
		}
	}
}

// Directly exercise the steal path: a queue with all the work on one
// span must still hand every index out exactly once.
func TestQueueStealing(t *testing.T) {
	const n, workers = 37, 5
	q := newQueue(n, workers)
	// Exhaust workers 1..4's own spans into worker 0's tally first, to
	// force them onto the steal path. Simpler: drain everything from
	// worker 4 only — every claim after its own span empties must steal.
	seen := make([]int, n)
	for {
		i, ok := q.claim(4)
		if !ok {
			break
		}
		if i < 0 || i >= n {
			t.Fatalf("claimed out-of-range index %d", i)
		}
		seen[i]++
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d claimed %d times", i, c)
		}
	}
}

// rem=1 is the classic infinite-steal trap: stealing "half" of a
// single-cell span must hand over that cell, not loop forever.
func TestQueueStealSingleCell(t *testing.T) {
	q := newQueue(1, 2) // worker 0 owns [0,1), worker 1 owns nothing
	i, ok := q.claim(1)
	if !ok || i != 0 {
		t.Fatalf("claim(1) = (%d, %v), want (0, true)", i, ok)
	}
	if _, ok := q.claim(0); ok {
		t.Fatal("claim(0) succeeded after the only cell was stolen")
	}
	if _, ok := q.claim(1); ok {
		t.Fatal("claim(1) succeeded on an empty queue")
	}
}

// Property: for any (cells, workers) shape, parallel equals serial.
func TestQuickRunEqualsSerial(t *testing.T) {
	f := func(points, seedsN, workers uint8) bool {
		p := int(points % 9)
		s := int(seedsN % 5)
		w := int(workers%12) + 1
		seeds := make([]int64, s)
		for i := range seeds {
			seeds[i] = int64(i + 1)
		}
		cells := Cells("q", p, seeds)
		fn := func(ctx *Context, i int, c Cell) int64 {
			return c.Seed*1000 + int64(c.Point)*10 + int64(c.Rep)
		}
		a := Run(1, cells, fn)
		b := Run(w, cells, fn)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
