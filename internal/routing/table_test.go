package routing

import (
	"testing"
	"testing/quick"

	"routeless/internal/packet"
	"routeless/internal/sim"
)

func TestTableObserveAndHops(t *testing.T) {
	tb := NewActiveTable()
	if tb.Hops(1) != -1 {
		t.Fatal("unknown target should report -1")
	}
	tb.Observe(1, 3, 10, 0)
	if tb.Hops(1) != 3 {
		t.Fatalf("hops = %d, want 3", tb.Hops(1))
	}
	if tb.Len() != 1 {
		t.Fatalf("len = %d", tb.Len())
	}
}

func TestTableMinWithinSequence(t *testing.T) {
	tb := NewActiveTable()
	tb.Observe(1, 5, 10, 0)
	tb.Observe(1, 3, 10, 1) // shorter copy of the same flood
	if tb.Hops(1) != 3 {
		t.Fatalf("hops = %d, want 3 (min within seq)", tb.Hops(1))
	}
	tb.Observe(1, 7, 10, 2) // longer copy must not regress the entry
	if tb.Hops(1) != 3 {
		t.Fatalf("hops = %d, want 3 after longer duplicate", tb.Hops(1))
	}
}

func TestTableInflationDamped(t *testing.T) {
	tb := NewActiveTable()
	tb.Observe(1, 3, 10, 0)
	tb.Observe(1, 6, 11, 1) // longer path, newer seq, shorter still fresh
	if tb.Hops(1) != 3 {
		t.Fatalf("hops = %d, want 3 (inflation damped)", tb.Hops(1))
	}
	tb.Observe(1, 9, 5, 2) // stale sequence ignored
	if tb.Hops(1) != 3 {
		t.Fatalf("hops = %d, want 3 after stale observation", tb.Hops(1))
	}
}

func TestTableInflatesAfterWindow(t *testing.T) {
	tb := NewActiveTable()
	tb.Observe(1, 3, 10, 0)
	// Past the damping window with no confirmation of "3": the longer
	// distance is believed — the short path died (§4.3 failures).
	tb.Observe(1, 6, 11, sim.Time(tb.InflateAfter)+1)
	if tb.Hops(1) != 6 {
		t.Fatalf("hops = %d, want 6 (short path stale)", tb.Hops(1))
	}
}

func TestTableConfirmationRefreshesDamping(t *testing.T) {
	tb := NewActiveTable()
	tb.Observe(1, 3, 10, 0)
	tb.Observe(1, 3, 12, 4) // confirmation at t=4 resets the window
	tb.Observe(1, 6, 13, 7) // only 3s since confirmation: damped
	if tb.Hops(1) != 3 {
		t.Fatalf("hops = %d, want 3 (confirmed recently)", tb.Hops(1))
	}
}

func TestTableSequenceHorizonAdvances(t *testing.T) {
	tb := NewActiveTable()
	tb.Observe(1, 3, 10, 0)
	tb.Observe(1, 6, 20, 1) // damped, but seq horizon moves to 20
	// A copy from the stale seq 15 carries no information — even a
	// shorter one is ignored once the horizon passed it.
	tb.Observe(1, 2, 15, 2)
	if tb.Hops(1) != 3 {
		t.Fatalf("hops = %d, want 3 (stale seq ignored)", tb.Hops(1))
	}
}

func TestTableRejectsNonPositiveHops(t *testing.T) {
	tb := NewActiveTable()
	tb.Observe(1, 0, 10, 0)
	tb.Observe(1, -2, 11, 0)
	if tb.Len() != 0 {
		t.Fatal("non-positive hop counts must be ignored")
	}
}

func TestTableAge(t *testing.T) {
	tb := NewActiveTable()
	if tb.Age(1, 100) != -1 {
		t.Fatal("unknown target age should be -1")
	}
	tb.Observe(1, 3, 10, 40)
	if got := tb.Age(1, 100); got != 60 {
		t.Fatalf("age = %v, want 60", got)
	}
	tb.Observe(1, 3, 10, 90) // same seq+hops still refreshes
	if got := tb.Age(1, 100); got != 10 {
		t.Fatalf("age = %v, want 10 after refresh", got)
	}
}

func TestTableForgetAndSweep(t *testing.T) {
	tb := NewActiveTable()
	tb.Observe(1, 3, 10, 0)
	tb.Observe(2, 4, 10, 50)
	tb.Forget(1)
	if tb.Hops(1) != -1 || tb.Hops(2) != 4 {
		t.Fatal("Forget removed wrong entry")
	}
	tb.Observe(1, 3, 11, 0)
	removed := tb.Sweep(100, 60)
	if removed != 1 || tb.Hops(1) != -1 || tb.Hops(2) != 4 {
		t.Fatalf("Sweep removed %d; hops(1)=%d hops(2)=%d", removed, tb.Hops(1), tb.Hops(2))
	}
}

// Property: with every observation inside the damping window (all at
// t=0), the entry equals the minimum hop count among observations that
// were not sequence-stale on arrival — inflation never happens inside
// the window.
func TestQuickTableSemanticsInWindow(t *testing.T) {
	type obs struct {
		Hops uint8
		Seq  uint8
	}
	f := func(observations []obs) bool {
		tb := NewActiveTable()
		horizon := -1
		want := -1
		for _, o := range observations {
			h := int(o.Hops%20) + 1
			s := int(o.Seq % 8)
			tb.Observe(packet.NodeID(1), h, uint32(s), 0)
			if want == -1 {
				horizon, want = s, h
				continue
			}
			if s < horizon {
				continue // stale on arrival: ignored
			}
			if s > horizon {
				horizon = s
			}
			if h < want {
				want = h
			}
		}
		return tb.Hops(1) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
