// Package phy implements the physical layer of the simulated wireless
// network: half-duplex radios with carrier sensing and an SINR-based
// collision/capture model, the shared broadcast channel that couples
// them through a propagation model, and per-radio energy accounting.
//
// The model follows the usual ns-2/SENSE conventions: a frame locks the
// receiver when it arrives above the receive threshold while the radio
// is idle; overlapping energy corrupts it unless the frame stays above
// the capture ratio; anything above the carrier-sense threshold marks
// the medium busy.
package phy

import (
	"fmt"

	"routeless/internal/metrics"
	"routeless/internal/packet"
	"routeless/internal/propagation"
	"routeless/internal/sim"
)

// State is the transceiver state.
type State uint8

// Radio states. Off models the paper's §4.3 node failures ("the
// transceiver of a node is turned off and not able to transmit or
// receive any packets"); Sleep is the low-power state Routeless Routing
// permits route nodes to enter (§4.2).
const (
	StateIdle State = iota
	StateRx
	StateTx
	StateSleep
	StateOff
)

var stateNames = [...]string{"idle", "rx", "tx", "sleep", "off"}

// String implements fmt.Stringer.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// Params configures a radio. The zero value is not usable; start from
// DefaultParams.
type Params struct {
	TxPowerDBm    float64 // transmit power
	RxThreshDBm   float64 // minimum power to decode a frame
	CSThreshDBm   float64 // minimum power to sense the medium busy
	NoiseFloorDBm float64 // thermal noise for SINR
	CaptureDB     float64 // SINR (dB) a frame needs to survive overlap
	BitRate       float64 // bps; drives frame airtime
}

// DefaultParams returns radio parameters calibrated so that the given
// propagation model yields the requested transmission range, with a
// carrier-sense range about twice that — the classic 250 m / 550 m
// WaveLAN ratio the paper's testbed conventions imply.
func DefaultParams(m propagation.Model, rangeMeters float64) Params {
	const tx = 24.5 // dBm ≈ 280 mW, the ns-2 WaveLAN default
	rxThresh := propagation.ThresholdFor(m, tx, rangeMeters)
	csThresh := propagation.ThresholdFor(m, tx, rangeMeters*2.2)
	return Params{
		TxPowerDBm:    tx,
		RxThreshDBm:   rxThresh,
		CSThreshDBm:   csThresh,
		NoiseFloorDBm: -101,
		CaptureDB:     10,
		BitRate:       1e6,
	}
}

// AirTime returns the on-air duration of a frame of size bytes.
func (p Params) AirTime(bytes int) sim.Time {
	return sim.Time(float64(bytes*8) / p.BitRate)
}

// Listener receives PHY indications; the MAC layer implements it.
type Listener interface {
	// OnReceive delivers a successfully decoded frame with its receive
	// power — the signal strength SSAF derives its backoff from (§3).
	OnReceive(pkt *packet.Packet, rssiDBm float64)
	// OnMediumBusy and OnMediumIdle report carrier-sense transitions.
	OnMediumBusy()
	OnMediumIdle()
	// OnTxDone reports that the frame handed to Transmit left the air.
	OnTxDone()
}

// Stats is the plain-uint64 snapshot view of a radio's counters.
type Stats struct {
	TxFrames     uint64 // frames transmitted
	RxFrames     uint64 // frames delivered to the listener
	Collisions   uint64 // frames corrupted by overlapping energy
	MissedWeak   uint64 // decodable frames lost to in-progress activity
	DroppedOff   uint64 // frames that arrived while sleeping or off
	AbortedByTx  uint64 // receptions aborted by our own transmission
	AbortedByOff uint64 // receptions aborted by turning the radio off
	TxAborted    uint64 // own transmissions truncated by power-down
	Truncated    uint64 // decodable frames lost to the sender's power-down
	SignalStarts uint64 // leading edges that entered in-air tracking
	SignalEnds   uint64 // trailing edges that left in-air tracking
	FlushedByOff uint64 // tracked in-air signals forgotten by power-down
}

// radioCounters is the live counter storage behind Stats. Mutation goes
// through metrics.Counter methods only; the registry sums the per-radio
// counters into network-wide phy.* series.
type radioCounters struct {
	txFrames     metrics.Counter32
	rxFrames     metrics.Counter32
	collisions   metrics.Counter32
	missedWeak   metrics.Counter32
	droppedOff   metrics.Counter32
	abortedByTx  metrics.Counter32
	abortedByOff metrics.Counter32
	txAborted    metrics.Counter32
	truncated    metrics.Counter32
	signalStarts metrics.Counter32
	signalEnds   metrics.Counter32
	flushedByOff metrics.Counter32
}

// signal is one frame in flight at a particular receiver.
type signal struct {
	pkt      *packet.Packet
	powerDBm float64
	powerMW  float64
	end      sim.Time
	tracked  bool
	// aborted marks a signal whose transmitter powered down mid-frame:
	// it keeps interfering (the energy was radiated) but never decodes.
	aborted bool
}

// Radio is a half-duplex transceiver attached to a Channel.
//
// The hottest per-node scalars do not live here: the transceiver phase
// (up/down and rx/tx state), the live transmit power, and the energy
// meter are struct-of-arrays state owned by the Channel — contiguous
// slices indexed by node id, allocated arena-style from the channel's
// Pools (see Pools.radioArena). The Radio holds its id and channel
// pointer and reads/writes those arrays through accessors, so a
// million-radio network touches dense arrays instead of a million
// heap objects.
type Radio struct {
	id packet.NodeID
	// params points at the Channel's single shared copy: every radio on
	// a channel runs the same receive-side configuration, and an inline
	// 48-byte duplicate per node is real arena weight at mega scale.
	// The linear-domain threshold cache lives on the Channel too (see
	// Channel.noiseMW and friends).
	params   *Params
	kernel   *sim.Kernel
	channel  *Channel
	listener Listener

	inAir     []*signal
	rx        *signal
	rxCorrupt bool
	busy      bool // last carrier-sense state reported

	// txLive holds the signals of the transmission currently on the air
	// (one per scheduled receiver), so a mid-TX power-down can mark them
	// aborted. Cleared by txDone and powerDown; every trailing edge fires
	// strictly after txDone (propagation delay > 0), so entries are never
	// recycled while the transmission is live.
	txLive []*signal
	// txEnd is when the current transmission leaves the air; it guards
	// txDone against a stale completion event from a transmission that a
	// power-down already truncated.
	txEnd sim.Time

	stats radioCounters
}

// ID returns the radio's node id.
func (r *Radio) ID() packet.NodeID { return r.id }

// State returns the current transceiver state (a read of the channel's
// struct-of-arrays phase slot).
func (r *Radio) State() State { return r.channel.states[r.id] }

// Params returns the radio's configuration, with the live transmit
// power (which SetTxPower may have changed since construction).
func (r *Radio) Params() Params {
	p := *r.params
	p.TxPowerDBm = r.channel.txPow[r.id]
	return p
}

// Stats returns a snapshot of the radio's counters.
func (r *Radio) Stats() Stats {
	return Stats{
		TxFrames:     r.stats.txFrames.Value(),
		RxFrames:     r.stats.rxFrames.Value(),
		Collisions:   r.stats.collisions.Value(),
		MissedWeak:   r.stats.missedWeak.Value(),
		DroppedOff:   r.stats.droppedOff.Value(),
		AbortedByTx:  r.stats.abortedByTx.Value(),
		AbortedByOff: r.stats.abortedByOff.Value(),
		TxAborted:    r.stats.txAborted.Value(),
		Truncated:    r.stats.truncated.Value(),
		SignalStarts: r.stats.signalStarts.Value(),
		SignalEnds:   r.stats.signalEnds.Value(),
		FlushedByOff: r.stats.flushedByOff.Value(),
	}
}

// RegisterMetrics registers the radio's counters and in-flight signal
// count with the registry; per-radio registrations under the same names
// sum into network-wide phy.* series.
func (r *Radio) RegisterMetrics(reg *metrics.Registry) {
	reg.Observe32("phy.tx_frames", &r.stats.txFrames)
	reg.Observe32("phy.rx_frames", &r.stats.rxFrames)
	reg.Observe32("phy.collisions", &r.stats.collisions)
	reg.Observe32("phy.missed_weak", &r.stats.missedWeak)
	reg.Observe32("phy.dropped_off", &r.stats.droppedOff)
	reg.Observe32("phy.aborted_by_tx", &r.stats.abortedByTx)
	reg.Observe32("phy.aborted_by_off", &r.stats.abortedByOff)
	reg.Observe32("phy.tx_aborted", &r.stats.txAborted)
	reg.Observe32("phy.truncated", &r.stats.truncated)
	reg.Observe32("phy.signal_starts", &r.stats.signalStarts)
	reg.Observe32("phy.signal_ends", &r.stats.signalEnds)
	reg.Observe32("phy.flushed_by_off", &r.stats.flushedByOff)
	reg.Func("phy.in_air", func() uint64 { return uint64(len(r.inAir)) })
}

// Energy returns the radio's energy meter (a view into the channel's
// struct-of-arrays meter slot).
func (r *Radio) Energy() *Energy { return &r.channel.energies[r.id] }

// SetListener installs the MAC; it must be called before any traffic.
func (r *Radio) SetListener(l Listener) { r.listener = l }

// SetTxPower changes this radio's transmit power. Asymmetric powers
// create the unidirectional links whose effect on Routeless Routing §4
// discusses ("may negatively affect the efficiency, but not the
// correctness").
func (r *Radio) SetTxPower(dbm float64) {
	r.channel.txPow[r.id] = dbm
	r.channel.invalidateLinks(int(r.id))
}

// On reports whether the radio can currently send or receive.
func (r *Radio) On() bool {
	s := r.channel.states[r.id]
	return s != StateOff && s != StateSleep
}

// CarrierBusy reports whether the medium is sensed busy: the radio is
// transmitting, locked on a frame, or total in-air power exceeds the
// carrier-sense threshold. The comparison runs in the linear domain
// (milliwatts), which is equivalent to the dB comparison because log10
// is strictly increasing.
func (r *Radio) CarrierBusy() bool {
	if s := r.channel.states[r.id]; s == StateTx || s == StateRx {
		return true
	}
	return r.inAirMW() >= r.channel.csThreshMW
}

func (r *Radio) inAirMW() float64 {
	var sum float64
	for _, s := range r.inAir {
		sum += s.powerMW
	}
	return sum
}

// interferenceMW returns noise plus in-air power, excluding the frame
// under consideration.
func (r *Radio) interferenceMW(frame *signal) float64 {
	sum := r.channel.noiseMW
	for _, s := range r.inAir {
		if s != frame {
			sum += s.powerMW
		}
	}
	return sum
}

// sinrOK checks the capture condition in the linear domain:
// signal/interference >= capture ratio, the monotone image of
// signalDB - interferenceDB >= CaptureDB.
func (r *Radio) sinrOK(frame *signal) bool {
	interf := r.interferenceMW(frame)
	if interf <= 0 {
		return true
	}
	return frame.powerMW >= interf*r.channel.captureRatio
}

// Transmit puts a frame on the air. The caller (MAC) is responsible for
// carrier sensing; transmitting while receiving aborts the reception
// (half-duplex). Transmit panics if the radio is off, asleep, or
// already transmitting — those are MAC bugs, not channel conditions.
func (r *Radio) Transmit(pkt *packet.Packet) {
	switch r.State() {
	case StateOff, StateSleep:
		panic(fmt.Sprintf("phy: %v Transmit while %v", r.id, r.State()))
	case StateTx:
		panic(fmt.Sprintf("phy: %v Transmit while already transmitting", r.id))
	case StateRx:
		r.stats.abortedByTx.Inc()
		r.rx = nil
		r.rxCorrupt = false
	}
	r.setState(StateTx)
	r.updateCarrier() // our own transmission makes the medium busy
	r.stats.txFrames.Inc()
	pkt.From = r.id
	dur := r.params.AirTime(pkt.Size)
	r.txLive = r.txLive[:0]
	r.txEnd = r.kernel.Now() + dur
	r.channel.transmit(r, pkt, dur)
	r.kernel.Schedule(dur, r.txDone)
}

func (r *Radio) txDone() {
	if r.State() != StateTx { // turned off mid-transmission
		return
	}
	if r.kernel.Now() < r.txEnd { // stale event from a truncated transmission
		return
	}
	r.txLive = r.txLive[:0]
	r.setState(StateIdle)
	if r.listener != nil {
		r.listener.OnTxDone()
	}
	r.updateCarrier()
}

// signalStart is called by the channel when a frame's leading edge
// reaches this radio.
func (r *Radio) signalStart(s *signal) {
	if !r.On() {
		r.stats.droppedOff.Inc()
		return
	}
	s.tracked = true
	r.stats.signalStarts.Inc()
	r.inAir = append(r.inAir, s)
	switch r.State() {
	case StateIdle:
		if s.powerDBm >= r.params.RxThreshDBm {
			switch {
			case !r.sinrOK(s):
				r.stats.missedWeak.Inc()
			case s.aborted:
				// Would have locked, but the sender powered down before
				// the leading edge arrived: the truncated frame still
				// interferes but carries nothing decodable.
				r.stats.truncated.Inc()
			default:
				r.rx = s
				r.rxCorrupt = false
				r.setState(StateRx)
			}
		}
	case StateRx:
		if !r.sinrOK(r.rx) {
			if !r.rxCorrupt {
				r.rxCorrupt = true
				r.stats.collisions.Inc()
			}
		}
	case StateTx:
		// Half-duplex: we hear nothing of it.
	}
	r.updateCarrier()
}

// signalEnd is called by the channel when a frame's trailing edge
// passes this radio.
func (r *Radio) signalEnd(s *signal) {
	if !s.tracked {
		return // arrived while off/asleep, or flushed by our power-down
	}
	r.stats.signalEnds.Inc()
	for i, in := range r.inAir {
		if in == s {
			r.inAir[i] = r.inAir[len(r.inAir)-1]
			r.inAir = r.inAir[:len(r.inAir)-1]
			break
		}
	}
	if r.rx == s {
		ok := !r.rxCorrupt && r.State() == StateRx
		r.rx = nil
		r.rxCorrupt = false
		if r.State() == StateRx {
			r.setState(StateIdle)
		}
		if ok {
			if s.aborted {
				// Locked on it, but the sender powered down mid-frame:
				// the tail never made it onto the air.
				r.stats.truncated.Inc()
			} else {
				r.stats.rxFrames.Inc()
				if r.listener != nil {
					r.listener.OnReceive(s.pkt, s.powerDBm)
				}
			}
		}
	}
	r.updateCarrier()
}

func (r *Radio) updateCarrier() {
	busy := r.CarrierBusy()
	if busy == r.busy || r.listener == nil {
		r.busy = busy
		return
	}
	r.busy = busy
	if busy {
		r.listener.OnMediumBusy()
	} else {
		r.listener.OnMediumIdle()
	}
}

// TurnOff models a transceiver failure or a deliberate power-down. Any
// reception in progress is lost, in-flight signals are forgotten, and a
// transmission in progress is truncated mid-air: its signals keep
// interfering at their receivers (the energy already radiated) but are
// marked aborted and never decode. Energy is charged for the pre-off
// interval at the pre-off state's draw (setState transitions the meter
// with the old state).
func (r *Radio) TurnOff() { r.powerDown(StateOff) }

// Sleep enters the low-power listening-off state; semantics match
// TurnOff but energy accounting differs.
func (r *Radio) Sleep() { r.powerDown(StateSleep) }

func (r *Radio) powerDown(s State) {
	cur := r.State()
	if cur == StateOff || cur == StateSleep {
		r.setState(s)
		return
	}
	if r.rx != nil {
		r.stats.abortedByOff.Inc()
		r.rx = nil
		r.rxCorrupt = false
	}
	if cur == StateTx {
		// Truncate the transmission in flight: receivers that would have
		// decoded it count it as truncated instead.
		r.stats.txAborted.Inc()
		for _, out := range r.txLive {
			out.aborted = true
		}
		r.txLive = r.txLive[:0]
	}
	for _, in := range r.inAir {
		in.tracked = false
		r.stats.flushedByOff.Inc()
	}
	r.inAir = r.inAir[:0]
	r.setState(s)
	r.busy = false
}

// TurnOn restores the radio to idle. Frames whose leading edge passed
// while the radio was off are not heard.
func (r *Radio) TurnOn() {
	if r.On() {
		return
	}
	r.setState(StateIdle)
	r.updateCarrier()
}

func (r *Radio) setState(s State) {
	st := &r.channel.states[r.id]
	r.channel.energies[r.id].Transition(r.kernel.Now(), *st, s)
	*st = s
}
