package scenario

import (
	"math"

	"routeless/internal/geo"
	"routeless/internal/rng"
)

// Sub-stream labels under rng.StreamFuzz. The generator (owned by
// internal/fuzz), the placement builders, and per-node mobility each
// own a child stream, so adding a draw to one never perturbs another.
// SubGenerate and SubMobility are exported for the fuzzer and Build
// respectively; the label values are frozen — they are part of every
// committed fixture's meaning.
const (
	SubGenerate uint64 = 1 + iota
	subPlacement
	SubMobility
)

// positions returns explicit node positions for the scenario's
// placement style, or nil for uniform placement (which the network
// builder draws itself from the scenario seed, exactly as experiments
// do). Explicit styles draw from the scenario's placement sub-stream,
// so a Scenario value pins its topology bit-for-bit. Placement is a
// pure function of the document — it runs before the network exists —
// so these draws are not live simulator state and stay untracked.
func positions(sc Scenario) []geo.Point {
	switch sc.Placement {
	case PlaceCluster:
		return clusterPositions(sc)
	case PlaceLine:
		return linePositions(sc)
	case PlaceGrid:
		return gridPositions(sc)
	default:
		return nil
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// clusterPositions drops nodes around a handful of uniform cluster
// centers, with spread half the radio range — dense islands bridged by
// whichever pairs happen to land close, the topology shape where
// flooding redundancy assumptions break first.
func clusterPositions(sc Scenario) []geo.Point {
	r := rng.New(sc.Seed, rng.StreamFuzz, subPlacement)
	k := 2 + sc.N/10
	centers := make([]geo.Point, k)
	for i := range centers {
		centers[i] = geo.Point{X: r.Float64() * sc.Width, Y: r.Float64() * sc.Height}
	}
	spread := sc.Range / 2
	pts := make([]geo.Point, sc.N)
	for i := range pts {
		c := centers[r.Intn(k)]
		pts[i] = geo.Point{
			X: clamp(c.X+(r.Float64()*2-1)*spread, 0, sc.Width),
			Y: clamp(c.Y+(r.Float64()*2-1)*spread, 0, sc.Height),
		}
	}
	return pts
}

// linePositions strings nodes along the terrain diagonal with jitter a
// quarter of the range — long thin chains are the worst case for hop
// metrics and for any protocol leaning on neighborhood redundancy.
func linePositions(sc Scenario) []geo.Point {
	r := rng.New(sc.Seed, rng.StreamFuzz, subPlacement)
	jitter := sc.Range / 4
	pts := make([]geo.Point, sc.N)
	for i := range pts {
		t := float64(i) / float64(sc.N-1)
		pts[i] = geo.Point{
			X: clamp(t*sc.Width+(r.Float64()*2-1)*jitter, 0, sc.Width),
			Y: clamp(t*sc.Height+(r.Float64()*2-1)*jitter, 0, sc.Height),
		}
	}
	return pts
}

// gridPositions lays nodes on a near-regular lattice with small jitter
// — the degenerate geometry where many inter-node distances tie and
// tie-breaking order bugs surface.
func gridPositions(sc Scenario) []geo.Point {
	r := rng.New(sc.Seed, rng.StreamFuzz, subPlacement)
	cols := int(math.Ceil(math.Sqrt(float64(sc.N))))
	rows := (sc.N + cols - 1) / cols
	dx := sc.Width / float64(cols)
	dy := sc.Height / float64(rows)
	jitter := math.Min(dx, dy) / 10
	pts := make([]geo.Point, sc.N)
	for i := range pts {
		cx := (float64(i%cols) + 0.5) * dx
		cy := (float64(i/cols) + 0.5) * dy
		pts[i] = geo.Point{
			X: clamp(cx+(r.Float64()*2-1)*jitter, 0, sc.Width),
			Y: clamp(cy+(r.Float64()*2-1)*jitter, 0, sc.Height),
		}
	}
	return pts
}
