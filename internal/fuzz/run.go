package fuzz

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime/debug"

	"routeless/internal/experiments"
	"routeless/internal/metrics"
	"routeless/internal/node"
	"routeless/internal/scenario"
	"routeless/internal/snapshot"
)

// Verdicts, from least to most alarming. Everything except
// VerdictInvalid past validation is a simulator bug.
const (
	// VerdictPass: the run satisfied every conservation law and
	// reproduced bitwise under its own seed.
	VerdictPass = "pass"
	// VerdictInvalid: the scenario failed validation or construction
	// (e.g. no connected placement exists). Not a bug — generated
	// scenarios with this verdict are skipped, hand-written ones
	// rejected.
	VerdictInvalid = "invalid-scenario"
	// VerdictViolation: a conservation law or invariant failed after
	// the run — packets or signals were created or destroyed off the
	// books.
	VerdictViolation = "invariant-violation"
	// VerdictDivergence: the same scenario produced two different
	// metric snapshots under the same seed — the determinism contract
	// is broken. The snapshot cross-check mode reports restore
	// divergence (a restored run drifting from its uninterrupted twin)
	// under the same verdict: both are the one contract failing.
	VerdictDivergence = "determinism-divergence"
	// VerdictPanic: the simulator crashed instead of reporting an
	// error.
	VerdictPanic = "panic"
)

// Result is one scenario's structured verdict.
type Result struct {
	Verdict string `json:"verdict"`
	// Detail explains non-pass verdicts: the validation error, the
	// first violation, the panic value with stack, or the divergence
	// site.
	Detail string `json:"detail,omitempty"`
	// Violations carries the full structured oracle output on
	// invariant-violation verdicts.
	Violations []metrics.Violation `json:"violations,omitempty"`
	// Metrics carries the run's paper-unit outcome on pass verdicts.
	Metrics *experiments.RunMetrics `json:"metrics,omitempty"`
}

// Failed reports whether the verdict indicates a simulator bug
// (anything but pass and invalid-scenario).
func (r Result) Failed() bool {
	return r.Verdict != VerdictPass && r.Verdict != VerdictInvalid
}

// Runner executes scenarios under the oracle. The zero value is ready
// to use.
type Runner struct {
	// Sabotage, when non-nil, runs after the simulation drains and
	// before the oracle collects, with the run index (0 = first run,
	// 1 = determinism re-run). It exists so tests can plant each
	// failure class — corrupt a counter for a violation, corrupt only
	// run 1 for a divergence, panic for a crash — without needing a
	// real simulator bug on hand.
	Sabotage func(run int, nw *node.Network)
}

// Run executes the scenario under the full oracle: validate, run once
// under CheckInvariants, then re-run under the same seed and compare
// metric snapshots byte for byte.
func (r *Runner) Run(sc Scenario) Result {
	if err := sc.Validate(); err != nil {
		return Result{Verdict: VerdictInvalid, Detail: err.Error()}
	}
	first := r.runOnce(sc, 0)
	if first.panicMsg != "" {
		return Result{Verdict: VerdictPanic, Detail: first.panicMsg}
	}
	if first.buildErr != nil {
		// Construction refused the validated scenario — an impossible
		// placement, typically. The scenario, not the simulator, is at
		// fault, and the structured error path is working as designed.
		return Result{Verdict: VerdictInvalid, Detail: first.buildErr.Error()}
	}
	if len(first.violations) > 0 {
		return Result{
			Verdict:    VerdictViolation,
			Detail:     first.violations[0].String(),
			Violations: first.violations,
		}
	}
	second := r.runOnce(sc, 1)
	switch {
	case second.panicMsg != "":
		return Result{Verdict: VerdictDivergence,
			Detail: "re-run panicked where first run completed: " + second.panicMsg}
	case second.buildErr != nil:
		return Result{Verdict: VerdictDivergence,
			Detail: "re-run failed construction where first run completed: " + second.buildErr.Error()}
	case len(second.violations) > 0:
		return Result{Verdict: VerdictDivergence,
			Detail: "re-run violated invariants where first run was clean: " + second.violations[0].String()}
	case !bytes.Equal(first.snap, second.snap):
		return Result{Verdict: VerdictDivergence,
			Detail: fmt.Sprintf("metric snapshots differ between same-seed runs (%d vs %d bytes)",
				len(first.snap), len(second.snap))}
	}
	m := first.metrics
	return Result{Verdict: VerdictPass, Metrics: &m}
}

// onceOut is one simulation attempt's raw outcome.
type onceOut struct {
	snap       []byte // final metric snapshot, canonical JSON
	metrics    experiments.RunMetrics
	violations []metrics.Violation
	buildErr   error
	panicMsg   string
}

// runOnce builds and runs the scenario once through scenario.Build,
// converting any panic into a value. The build path goes through the
// error-returning TryNew / TryInstall entry points, so only genuine
// simulator bugs can still reach the recover.
func (r *Runner) runOnce(sc Scenario, runIdx int) (out onceOut) {
	defer func() {
		if p := recover(); p != nil {
			out.panicMsg = fmt.Sprintf("%v\n%s", p, debug.Stack())
		}
	}()

	run, err := scenario.Build(sc)
	if err != nil {
		out.buildErr = err
		return
	}
	if err := run.AdvanceTo(run.End()); err != nil {
		out.buildErr = err
		return
	}

	nw := run.Network()
	if r.Sabotage != nil {
		r.Sabotage(runIdx, nw)
	}

	rm, _ := run.Finish()
	out.metrics = rm
	out.violations = nw.Metrics.Violations()
	b, merr := json.Marshal(nw.Metrics.Snapshot())
	if merr != nil {
		panic(merr) // a snapshot that cannot encode is itself a bug
	}
	out.snap = b
	return
}

// RunSnapshot executes the scenario under the checkpoint cross-check
// oracle: run uninterrupted to the end; then run a twin to T (half the
// run), Save, Load (which replays and verifies every state digest), and
// continue the restored run to the end. Any Load failure or any byte of
// difference between the two final metric snapshots is a
// determinism-divergence: the snapshot contract — "run 2T" ≡ "run T,
// snapshot, restore, run T" — is broken.
func (r *Runner) RunSnapshot(sc Scenario) Result {
	if err := sc.Validate(); err != nil {
		return Result{Verdict: VerdictInvalid, Detail: err.Error()}
	}
	full := r.runOnce(sc, 0)
	if full.panicMsg != "" {
		return Result{Verdict: VerdictPanic, Detail: full.panicMsg}
	}
	if full.buildErr != nil {
		return Result{Verdict: VerdictInvalid, Detail: full.buildErr.Error()}
	}
	if len(full.violations) > 0 {
		return Result{
			Verdict:    VerdictViolation,
			Detail:     full.violations[0].String(),
			Violations: full.violations,
		}
	}
	snap, err := r.snapshotOnce(sc)
	if err != nil {
		return Result{Verdict: VerdictDivergence,
			Detail: "snapshot/restore diverged where the uninterrupted run was clean: " + err.Error()}
	}
	if !bytes.Equal(full.snap, snap) {
		return Result{Verdict: VerdictDivergence,
			Detail: fmt.Sprintf("restored run's final metrics differ from the uninterrupted run (%d vs %d bytes)",
				len(full.snap), len(snap))}
	}
	m := full.metrics
	return Result{Verdict: VerdictPass, Metrics: &m}
}

// snapshotOnce runs to the midpoint, checkpoints, restores, finishes
// the restored run, and returns its final metric snapshot bytes.
func (r *Runner) snapshotOnce(sc Scenario) (snapBytes []byte, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("panic during snapshot cross-check: %v\n%s", p, debug.Stack())
		}
	}()

	run, err := scenario.Build(sc)
	if err != nil {
		return nil, err
	}
	mid := run.End() / 2
	if err := run.AdvanceTo(mid); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := snapshot.Save(&buf, run); err != nil {
		return nil, err
	}
	restored, err := snapshot.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return nil, err
	}
	if _, err := restored.Finish(); err != nil {
		return nil, fmt.Errorf("restored run violated invariants: %w", err)
	}
	b, merr := json.Marshal(restored.Network().Metrics.Snapshot())
	if merr != nil {
		panic(merr)
	}
	return b, nil
}
