package fuzz

// The shrinking reducer: given a failing scenario and a predicate that
// re-checks failure, greedily apply size-reducing moves until no move
// keeps the scenario failing. The result is the minimal reproducer that
// goes into the replay fixture — a human debugs N=4 for two simulated
// seconds, not N=60 for eight.
//
// Determinism and termination are both structural. Moves are tried in
// one fixed order; the first accepted move restarts the pass; every
// move strictly decreases an integer cost bounded below by zero, so the
// loop terminates, and with a deterministic predicate the whole
// reduction is a pure function of its input. Cost is integral on
// purpose: float comparisons here would reopen exactly the epsilon
// ambiguity the repo's lint rules exist to keep out.

// cost is the scenario's integer size: the lexicographic-free weighted
// sum the shrinker minimizes. Duration is counted in 0.5 s halves (the
// generator's quantum), so every move below maps to a positive integer
// decrease.
func cost(sc Scenario) int {
	c := sc.N * 1000
	c += int(sc.Duration*2) * 50
	c += len(sc.Flows) * 20
	c += len(sc.Faults) * 20
	if sc.Mobility != nil {
		c += 10 + sc.Mobility.Movers
	}
	if sc.Fading {
		c += 10
	}
	if sc.Tiles > 1 {
		c += 10
	}
	if sc.Connected {
		c += 1
	}
	return c
}

// clampToN drops flows referencing nodes at or beyond n and clamps the
// mobility head-set, so node-count moves always yield valid scenarios.
func clampToN(sc Scenario, n int) Scenario {
	sc.N = n
	var flows []Flow
	for _, f := range sc.Flows {
		if f.Src < n && f.Dst < n {
			flows = append(flows, f)
		}
	}
	sc.Flows = flows
	if sc.Mobility != nil && sc.Mobility.Movers > n {
		m := *sc.Mobility
		m.Movers = n
		sc.Mobility = &m
	}
	return sc
}

// moves returns the candidate reductions of sc, most aggressive first
// within each axis: drop whole fault specs, drop flows, halve then
// decrement duration, halve then decrement N, switch off mobility /
// fading / tiling / the connectivity requirement.
func moves(sc Scenario) []Scenario {
	var out []Scenario

	for i := range sc.Faults {
		c := sc
		c.Faults = append(append([]FaultSpec(nil), sc.Faults[:i]...), sc.Faults[i+1:]...)
		out = append(out, c)
	}
	for i := range sc.Flows {
		c := sc
		c.Flows = append(append([]Flow(nil), sc.Flows[:i]...), sc.Flows[i+1:]...)
		out = append(out, c)
	}

	// Duration moves, quantized to the generator's 0.5 s grid with a
	// 0.5 s floor.
	if h := quantHalves(sc.Duration); h > 1 {
		if half := h / 2; half < h {
			c := sc
			c.Duration = float64(maxInt(half, 1)) * 0.5
			out = append(out, c)
		}
		c := sc
		c.Duration = float64(h-1) * 0.5
		out = append(out, c)
	}

	// Node-count moves keep N >= 2 (the smallest network that can carry
	// a flow).
	if sc.N > 2 {
		if half := sc.N / 2; half >= 2 && half < sc.N {
			out = append(out, clampToN(sc, half))
		}
		out = append(out, clampToN(sc, sc.N-1))
	}

	if sc.Mobility != nil {
		c := sc
		c.Mobility = nil
		out = append(out, c)
	}
	if sc.Fading {
		c := sc
		c.Fading = false
		out = append(out, c)
	}
	if sc.Tiles > 1 {
		c := sc
		c.Tiles = 0
		out = append(out, c)
	}
	if sc.Connected {
		c := sc
		c.Connected = false
		out = append(out, c)
	}
	return out
}

func quantHalves(d float64) int {
	h := int(d * 2)
	if h < 1 {
		h = 1
	}
	return h
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Shrink minimizes a failing scenario. failing must return true for sc
// itself (callers pass the predicate that just flagged it); the result
// is the smallest scenario reachable by the move set on which failing
// still returns true, along with how many candidate evaluations the
// reduction spent. maxEvals bounds predicate calls (each one is a full
// double simulation when driven by a Runner); 0 means 1000.
func Shrink(sc Scenario, failing func(Scenario) bool, maxEvals int) (Scenario, int) {
	if maxEvals <= 0 {
		maxEvals = 1000
	}
	evals := 0
	for {
		improved := false
		for _, cand := range moves(sc) {
			if cost(cand) >= cost(sc) {
				continue
			}
			if evals >= maxEvals {
				return sc, evals
			}
			evals++
			if failing(cand) {
				sc = cand
				improved = true
				break // restart the pass from the smaller scenario
			}
		}
		if !improved {
			return sc, evals
		}
	}
}
