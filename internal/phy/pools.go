package phy

import "routeless/internal/packet"

// Pools holds the channel's recyclable per-delivery objects — the
// signal and delivery free lists the transmit hot path draws from.
// Every channel has one; by default it is private (NewChannel allocates
// it), but a sweep worker can pass one Pools through ChannelConfig so
// consecutive runs on that worker reuse the same memory instead of
// re-growing a fresh free list per replication.
//
// Pooled objects carry no residual state: newSignal and
// scheduleDelivery reinitialize every field (including the delivery's
// channel binding) on reuse, so sharing a pool across consecutive
// channels cannot change simulation results. A Pools must never be
// shared between channels that run concurrently — workers own theirs
// exclusively.
type Pools struct {
	sig []*signal
	del []*delivery

	// Radio arena: the channel's per-node state — the Radio structs and
	// the struct-of-arrays hot scalars (phase, transmit power, energy
	// meter) — lives in these contiguous slices, handed out by
	// radioArena. A sweep worker's consecutive runs reuse the same
	// backing arrays (including each radio's warmed inAir/txLive
	// capacity) instead of allocating N small objects per cell.
	radios   []Radio
	states   []State
	txPow    []float64
	energies []Energy
}

// NewPools returns an empty pool set, ready to hand to ChannelConfig.
func NewPools() *Pools { return &Pools{} }

// maxFreeObjects bounds the signal and delivery free lists; anything
// beyond the cap is left for the garbage collector.
const maxFreeObjects = 1 << 14

// newSignal takes a signal struct from the free list (or allocates) and
// initializes it for one delivery.
func (p *Pools) newSignal(pkt *packet.Packet, dbm, mw float64) *signal {
	var s *signal
	if n := len(p.sig); n > 0 {
		s = p.sig[n-1]
		p.sig = p.sig[:n-1]
	} else {
		s = &signal{}
	}
	*s = signal{pkt: pkt, powerDBm: dbm, powerMW: mw}
	return s
}

// releaseSignal returns a signal to the free list once its end event
// has fired; by then no radio holds a reference (signalEnd removed it
// from the receiver's in-air set, or powerDown already dropped it).
func (p *Pools) releaseSignal(s *signal) {
	s.pkt = nil
	if len(p.sig) < maxFreeObjects {
		p.sig = append(p.sig, s)
	}
}

// newDelivery takes a delivery from the free list (or allocates one
// with its callback pre-bound) and binds it to the arming tile. The
// rebind matters: a pooled delivery may have last served a different
// channel (or tile) on the same worker.
func (p *Pools) newDelivery(t *tileCtx) *delivery {
	var d *delivery
	if n := len(p.del); n > 0 {
		d = p.del[n-1]
		p.del = p.del[:n-1]
	} else {
		d = &delivery{}
		d.fn = d.fire
	}
	d.tile = t
	return d
}

// radioArena returns cleared per-node state slices of length n,
// reusing the pool's backing arrays when they are large enough. Radio
// structs keep their inAir/txLive backing across reuse (warm capacity);
// every other field is zeroed, so a recycled arena is indistinguishable
// from a fresh one.
func (p *Pools) radioArena(n int) ([]Radio, []State, []float64, []Energy) {
	if cap(p.radios) < n {
		p.radios = make([]Radio, n)
		p.states = make([]State, n)
		p.txPow = make([]float64, n)
		p.energies = make([]Energy, n)
	}
	p.radios = p.radios[:n]
	p.states = p.states[:n]
	p.txPow = p.txPow[:n]
	p.energies = p.energies[:n]
	for i := range p.radios {
		r := &p.radios[i]
		inAir, txLive := r.inAir[:0], r.txLive[:0]
		*r = Radio{inAir: inAir, txLive: txLive}
	}
	return p.radios, p.states, p.txPow, p.energies
}

// releaseDelivery returns a finished delivery to the free list.
func (p *Pools) releaseDelivery(d *delivery) {
	d.tile, d.rcv, d.sig = nil, nil, nil
	if len(p.del) < maxFreeObjects {
		p.del = append(p.del, d)
	}
}
