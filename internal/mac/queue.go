package mac

import (
	"container/heap"

	"routeless/internal/packet"
)

// entry is one queued frame with its network-layer priority.
type entry struct {
	pkt      *packet.Packet
	priority float64
	seq      uint64
}

// prioQueue orders frames by ascending priority, FIFO within equal
// priorities. The paper leans on this queue in §3: "A priority queue
// favors those packets with a shorter backoff delay. Therefore, the
// prioritization takes effect not only among packets in different
// nodes, but also among packets in the same node."
type prioQueue struct {
	items []*entry
	seq   uint64
	cap   int
}

func newPrioQueue(capacity int) *prioQueue {
	q := &prioQueue{}
	q.init(capacity)
	return q
}

// init prepares an embedded queue in place (see MAC.queue).
func (q *prioQueue) init(capacity int) {
	if capacity <= 0 {
		panic("mac: queue capacity must be positive")
	}
	*q = prioQueue{cap: capacity}
}

// push enqueues a frame; it reports false (and drops) when full.
func (q *prioQueue) push(pkt *packet.Packet, priority float64) bool {
	if len(q.items) >= q.cap {
		return false
	}
	e := &entry{pkt: pkt, priority: priority, seq: q.seq}
	q.seq++
	heap.Push((*entryHeap)(q), e)
	return true
}

// pop dequeues the highest-priority (lowest value) frame, nil if empty.
func (q *prioQueue) pop() *entry {
	if len(q.items) == 0 {
		return nil
	}
	return heap.Pop((*entryHeap)(q)).(*entry)
}

// len returns the number of queued frames.
func (q *prioQueue) len() int { return len(q.items) }

// remove deletes the entry holding exactly pkt (pointer identity); it
// reports whether anything was removed.
func (q *prioQueue) remove(pkt *packet.Packet) bool {
	for i, e := range q.items {
		if e.pkt == pkt {
			heap.Remove((*entryHeap)(q), i)
			return true
		}
	}
	return false
}

// entryHeap adapts prioQueue to container/heap.
type entryHeap prioQueue

func (h *entryHeap) Len() int { return len(h.items) }

func (h *entryHeap) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	//lint:ignore floateq stored priorities are compared verbatim for tie-breaking, never recomputed
	if a.priority != b.priority {
		return a.priority < b.priority
	}
	return a.seq < b.seq
}

func (h *entryHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }

func (h *entryHeap) Push(x any) { h.items = append(h.items, x.(*entry)) }

func (h *entryHeap) Pop() any {
	old := h.items
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	h.items = old[:n-1]
	return e
}
