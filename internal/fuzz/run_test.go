package fuzz

import (
	"strings"
	"testing"

	"routeless/internal/node"
)

// tiny returns a fast-passing scenario for runner tests.
func tiny() Scenario {
	return Scenario{
		Seed: 7, N: 8, Width: 400, Height: 400, Range: 250,
		Placement: PlaceUniform, Connected: true,
		Protocol: ProtoCounter1,
		Flows:    []Flow{{Src: 0, Dst: 5}},
		Interval: 0.5, DataSize: 64, Duration: 1,
	}
}

func TestRunPass(t *testing.T) {
	var r Runner
	res := r.Run(tiny())
	if res.Verdict != VerdictPass {
		t.Fatalf("verdict = %q (%s), want pass", res.Verdict, res.Detail)
	}
	if res.Metrics == nil || res.Metrics.Delivery <= 0 {
		t.Fatalf("pass verdict without usable metrics: %+v", res.Metrics)
	}
	if res.Failed() {
		t.Fatal("pass classified as failure")
	}
}

func TestRunInvalidScenario(t *testing.T) {
	var r Runner
	sc := tiny()
	sc.Protocol = "ospf"
	res := r.Run(sc)
	if res.Verdict != VerdictInvalid || !strings.Contains(res.Detail, "unknown protocol") {
		t.Fatalf("verdict = %q (%s), want invalid-scenario", res.Verdict, res.Detail)
	}
	if res.Failed() {
		t.Fatal("invalid scenario classified as simulator failure")
	}
}

// TestRunImpossiblePlacementIsInvalid drives the error-returning
// construction path end to end: a validated scenario whose placement
// cannot connect must come back invalid-scenario, not a panic.
func TestRunImpossiblePlacementIsInvalid(t *testing.T) {
	var r Runner
	sc := tiny()
	sc.N = 3
	sc.Width, sc.Height = 100000, 100000
	sc.Range = 30
	sc.Flows = []Flow{{Src: 0, Dst: 1}}
	res := r.Run(sc)
	if res.Verdict != VerdictInvalid || !strings.Contains(res.Detail, "no connected placement") {
		t.Fatalf("verdict = %q (%s), want invalid-scenario from placement", res.Verdict, res.Detail)
	}
}

// TestRunVerdictViolation plants a synthetic conservation-law imbalance
// (an extra mac.enqueued with no matching outcome) and expects the
// structured violation verdict.
func TestRunVerdictViolation(t *testing.T) {
	r := Runner{Sabotage: func(run int, nw *node.Network) {
		nw.Metrics.Counter("mac.enqueued").Inc()
	}}
	res := r.Run(tiny())
	if res.Verdict != VerdictViolation {
		t.Fatalf("verdict = %q (%s), want invariant-violation", res.Verdict, res.Detail)
	}
	if len(res.Violations) == 0 || res.Violations[0].Name != "mac-queue" {
		t.Fatalf("violations = %+v, want the mac-queue law", res.Violations)
	}
	if !res.Failed() {
		t.Fatal("violation not classified as failure")
	}
}

// TestRunVerdictDivergence corrupts only the re-run, so the first run
// is clean and the snapshots disagree.
func TestRunVerdictDivergence(t *testing.T) {
	r := Runner{Sabotage: func(run int, nw *node.Network) {
		if run == 1 {
			nw.Metrics.Gauge("fuzztest.poison").Set(1)
		}
	}}
	res := r.Run(tiny())
	if res.Verdict != VerdictDivergence {
		t.Fatalf("verdict = %q (%s), want determinism-divergence", res.Verdict, res.Detail)
	}
}

// TestRunVerdictPanic converts a crash inside the run into a structured
// verdict carrying the stack.
func TestRunVerdictPanic(t *testing.T) {
	r := Runner{Sabotage: func(run int, nw *node.Network) {
		panic("synthetic simulator crash")
	}}
	res := r.Run(tiny())
	if res.Verdict != VerdictPanic {
		t.Fatalf("verdict = %q, want panic", res.Verdict)
	}
	if !strings.Contains(res.Detail, "synthetic simulator crash") ||
		!strings.Contains(res.Detail, "goroutine") {
		t.Fatalf("panic detail lacks value+stack: %.120s", res.Detail)
	}
}

// TestRunDeterministicVerdicts runs a batch of generated seeds twice
// and requires the identical verdict list — the bounded CI mode's
// contract, checked at the library layer.
func TestRunDeterministicVerdicts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations")
	}
	lim := Limits{MaxN: 16, MaxDuration: 2, MaxFlows: 2, MaxFaults: 2}
	var r Runner
	verdicts := func() []string {
		var out []string
		for seed := int64(1); seed <= 5; seed++ {
			res := r.Run(Generate(seed, lim))
			out = append(out, res.Verdict+"|"+res.Detail)
		}
		return out
	}
	a, b := verdicts(), verdicts()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed %d verdict differs between sweeps:\n%s\n%s", i+1, a[i], b[i])
		}
	}
}

// TestRunGeneratedScenariosUnderOracle is the in-tree miniature of the
// CI fuzz job: a handful of generated seeds must all come back pass (or
// invalid-scenario for unbuildable placements — never a failure class).
func TestRunGeneratedScenariosUnderOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations")
	}
	lim := Limits{MaxN: 16, MaxDuration: 2, MaxFlows: 2, MaxFaults: 2}
	var r Runner
	for seed := int64(1); seed <= 8; seed++ {
		res := r.Run(Generate(seed, lim))
		if res.Failed() {
			t.Errorf("seed %d: %s: %s", seed, res.Verdict, res.Detail)
		}
	}
}
