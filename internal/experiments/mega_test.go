package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"routeless/internal/metrics"
)

// tinyMega shrinks fig_mega to golden scale: same density and flow
// shape as the real study, arenas of 64 and 128 nodes. Tiles stays at
// the AutoTiles default — the invariance tests below pin that explicit
// tile and worker counts reproduce the same bytes.
func tinyMega() MegaConfig {
	return MegaConfig{
		Ns:       []int{64, 128},
		Flows:    2,
		Duration: 6,
		Seeds:    []int64{1},
	}
}

func runTinyMegaJournal(t *testing.T, mutate func(*MegaConfig)) []byte {
	t.Helper()
	var buf bytes.Buffer
	cfg := tinyMega()
	if mutate != nil {
		mutate(&cfg)
	}
	cfg.Journal = metrics.NewJournal(&buf)
	RunMega(cfg)
	if err := cfg.Journal.Err(); err != nil {
		t.Fatalf("journal write failed: %v", err)
	}
	return buf.Bytes()
}

func TestMegaJournalSameSeedBitwiseIdentical(t *testing.T) {
	a := runTinyMegaJournal(t, nil)
	b := runTinyMegaJournal(t, nil)
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed produced different journals:\nrun1: %s\nrun2: %s", a, b)
	}
}

// TestMegaJournalTileCountInvariant pins the study's core claim at
// golden scale: the auto-tiled mega data plane produces the same bytes
// as the sequential kernel and as any explicit tiling.
func TestMegaJournalTileCountInvariant(t *testing.T) {
	j1 := runTinyMegaJournal(t, func(c *MegaConfig) { c.Tiles = 1 })
	for _, tiles := range []int{4, 16} {
		tiles := tiles
		jt := runTinyMegaJournal(t, func(c *MegaConfig) { c.Tiles = tiles })
		if !bytes.Equal(j1, jt) {
			t.Fatalf("tiles=%d changed journal bytes:\ntiles=1: %s\ntiles=%d: %s", tiles, j1, tiles, jt)
		}
	}
}

// TestMegaJournalWorkerCountInvariant covers both worker knobs: the
// sweep's cross-run parallelism and the PDES per-run tile worker pool.
func TestMegaJournalWorkerCountInvariant(t *testing.T) {
	j1 := runTinyMegaJournal(t, func(c *MegaConfig) { c.Workers, c.TileWorkers = 1, 1 })
	j8 := runTinyMegaJournal(t, func(c *MegaConfig) { c.Workers, c.TileWorkers = 8, 8 })
	if !bytes.Equal(j1, j8) {
		t.Fatalf("worker counts changed journal bytes:\nworkers=1: %s\nworkers=8: %s", j1, j8)
	}
}

// TestMegaJournalLinkCacheCapInvariant pins the bounded link cache's
// contract end to end: eviction changes memory and rebuild counts,
// never results. Cap 1 forces a rebuild on nearly every transmission.
func TestMegaJournalLinkCacheCapInvariant(t *testing.T) {
	unbounded := runTinyMegaJournal(t, func(c *MegaConfig) { c.LinkCacheCap = -1 })
	capped := runTinyMegaJournal(t, func(c *MegaConfig) { c.LinkCacheCap = 1 })
	if !bytes.Equal(unbounded, capped) {
		t.Fatalf("link-cache cap changed journal bytes:\nunbounded: %s\ncap=1: %s", unbounded, capped)
	}
}

func TestMegaJournalMatchesGolden(t *testing.T) {
	got := runTinyMegaJournal(t, nil)
	golden := filepath.Join("testdata", "fig_mega_tiny.journal.jsonl")
	if *updateGolden {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update-golden): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("fig_mega journal drifted from golden (rerun with -update-golden if intentional):\ngot:  %s\nwant: %s", got, want)
	}
}
