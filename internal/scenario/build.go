package scenario

import (
	"errors"
	"fmt"

	"routeless/internal/experiments"
	"routeless/internal/fault"
	"routeless/internal/flood"
	"routeless/internal/metrics"
	"routeless/internal/node"
	"routeless/internal/packet"
	"routeless/internal/phy"
	"routeless/internal/propagation"
	"routeless/internal/rng"
	"routeless/internal/routing"
	"routeless/internal/sim"
	"routeless/internal/stats"
	"routeless/internal/traffic"
)

// drainTime mirrors the experiment harness: every run advances this
// many seconds past traffic stop so in-flight packets settle before
// the conservation laws are checked.
const drainTime sim.Time = 5

// ErrBuild marks scenario construction failures: a validated document
// the simulator still cannot realize (typically an impossible connected
// placement). It wraps the underlying TryNew/TryInstall error.
var ErrBuild = errors.New("scenario: build failed")

// BuildOptions tunes Build without touching the document itself —
// nothing here may change simulation results.
type BuildOptions struct {
	// Runtime reuses a sweep worker's arena across builds. Build resets
	// it, so pool watermarks start from zero exactly as with a fresh
	// runtime and only the allocation count differs (the bit-for-bit
	// pooling contract from internal/sim).
	Runtime *node.Runtime
}

// Run is a built, resumable simulation: the network plus everything the
// document attached to it (traffic, mobility, faults), advanced in
// exact chunks by AdvanceTo. The zero value is not usable; construct
// with Build.
type Run struct {
	sc      Scenario
	nw      *node.Network
	tap     *experiments.AppTap
	meter   stats.Meter
	cbrs    []*traffic.CBR
	movers  []*node.Waypoint
	inj     *fault.Injector
	tracker *rng.Tracker

	journal *metrics.Journal
	epochs  int // journal epochs emitted so far
	stopped bool
	done    bool
	rm      experiments.RunMetrics
	ferr    error
}

// Build validates the document and constructs the run at t=0.
func Build(sc Scenario) (*Run, error) { return BuildWith(sc, BuildOptions{}) }

// BuildWith is Build with explicit options.
//
// The construction order is frozen — network, protocol, app tap,
// flows (in document order), movers, fault plan — because stream
// creation order, metric registration order, and kernel sequence
// numbers all derive from it. The experiment harnesses follow the same
// order, which is what lets a scenario document reproduce a harness
// run bit for bit.
func BuildWith(sc Scenario, opts BuildOptions) (*Run, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	tracker := rng.NewTracker()
	cfg := node.Config{
		N:         sc.N,
		Rect:      sc.Rect(),
		Positions: positions(sc),
		Range:     sc.Range,
		Seed:      sc.Seed,
		Tiles:     sc.Tiles,
		RNG:       tracker,
		Runtime:   opts.Runtime,
	}
	if opts.Runtime != nil {
		opts.Runtime.Reset()
	}
	if sc.Placement == PlaceUniform {
		cfg.EnsureConnected = sc.Connected
	}
	if sc.Fading {
		cfg.Fader = propagation.Rayleigh{}
	}
	nw, err := node.TryNew(cfg)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBuild, err)
	}
	r := &Run{sc: sc, nw: nw, tracker: tracker}
	installProtocol(nw, sc)

	r.tap = experiments.NewAppTap(nw, &r.meter)
	r.cbrs = make([]*traffic.CBR, len(sc.Flows))
	for i, f := range sc.Flows {
		r.cbrs[i] = traffic.NewCBR(nw.Nodes[f.Src], packet.NodeID(f.Dst), sim.Time(sc.Interval), sc.DataSize)
		r.tap.Watch(r.cbrs[i])
		r.cbrs[i].Start()
	}

	if m := sc.Mobility; m != nil {
		for i := 0; i < m.Movers; i++ {
			w := node.NewWaypoint(nw, nw.Nodes[i], tracker.New(sc.Seed, rng.StreamFuzz, SubMobility, uint64(i)))
			w.MinSpeed, w.MaxSpeed = m.MinSpeed, m.MaxSpeed
			w.Start()
			r.movers = append(r.movers, w)
		}
	}

	plan, err := sc.Plan()
	if err != nil {
		// Validate accepted the document, so this is unreachable; keep
		// the error path anyway rather than a silent nil plan.
		return nil, fmt.Errorf("%w: %w", ErrBuild, err)
	}
	inj, err := fault.TryInstall(nw, plan)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBuild, err)
	}
	r.inj = inj
	return r, nil
}

// Scenario returns the document the run was built from.
func (r *Run) Scenario() Scenario { return r.sc }

// Network returns the underlying network.
func (r *Run) Network() *node.Network { return r.nw }

// RNG returns the run's stream tracker: every random stream the
// simulation created, in creation order, with live draw counts.
func (r *Run) RNG() *rng.Tracker { return r.tracker }

// Traffic returns the run's CBR sources in flow order.
func (r *Run) Traffic() []*traffic.CBR { return r.cbrs }

// Movers returns the run's waypoint processes in node order.
func (r *Run) Movers() []*node.Waypoint { return r.movers }

// Faults returns the installed fault injector (nil when the document
// has no fault plan).
func (r *Run) Faults() *fault.Injector { return r.inj }

// Now returns the run's current simulation time.
func (r *Run) Now() sim.Time { return r.nw.Kernel.Now() }

// End returns the run's final time: traffic duration plus the drain
// window the conservation-law oracle expects.
func (r *Run) End() sim.Time { return sim.Time(r.sc.Duration) + drainTime }

// Finished reports whether Finish has folded the run. A finished run
// must not be advanced or snapshotted — folding the app tap is a
// one-way door.
func (r *Run) Finished() bool { return r.done }

// SetJournal attaches a journal. At t=0 it writes the run's start
// record (carrying the full document); attached later — a restored
// run — it emits only the records past the restore point, so the
// original prefix plus the resumed suffix equals the uninterrupted
// run's bytes exactly.
func (r *Run) SetJournal(j *metrics.Journal) {
	r.journal = j
	if j != nil && !(r.Now() > 0) {
		j.Write(metrics.Record{
			Experiment: "scenario",
			Label:      "start",
			Seed:       r.sc.Seed,
			Config:     &r.sc,
		})
	}
}

// epochTime returns the k-th journal epoch boundary.
func (r *Run) epochTime(k int) sim.Time {
	return sim.Time(float64(k) * r.sc.JournalEvery)
}

// emitEpoch writes the periodic metrics record at boundary time t.
func (r *Run) emitEpoch(t sim.Time) {
	if r.journal == nil {
		return
	}
	r.journal.Write(metrics.Record{
		Experiment: "scenario",
		Label:      fmt.Sprintf("epoch t=%g", float64(t)),
		Seed:       r.sc.Seed,
		Metrics:    r.nw.Metrics.Snapshot(),
	})
}

// stopTraffic freezes sources and movers at the traffic deadline,
// exactly as the experiment harnesses do before their drain window.
func (r *Run) stopTraffic() {
	for _, c := range r.cbrs {
		c.Stop()
	}
	for _, w := range r.movers {
		w.Stop()
	}
	r.stopped = true
}

// AdvanceTo runs the simulation to exactly t. It is resumable and
// chunk-exact: advancing 0→2T in one call, in two calls, or in a
// restored twin of the run executes the identical event sequence,
// because the kernel's RunUntil is already exact under arbitrary
// intermediate barriers. Internal boundaries — the traffic stop at
// Duration and each JournalEvery epoch — are always honored at their
// exact times regardless of the caller's chunking.
func (r *Run) AdvanceTo(t sim.Time) error {
	if r.done {
		return fmt.Errorf("scenario: run already finished")
	}
	if t < r.Now() {
		return fmt.Errorf("scenario: cannot rewind to t=%v (now %v)", t, r.Now())
	}
	if t > r.End() {
		return fmt.Errorf("scenario: t=%v beyond run end %v", t, r.End())
	}
	durT := sim.Time(r.sc.Duration)
	for r.Now() < t {
		next := t
		atEpoch := false
		if r.sc.JournalEvery > 0 {
			if ev := r.epochTime(r.epochs + 1); ev <= next {
				next = ev
				atEpoch = true
			}
		}
		stopHere := false
		if !r.stopped && durT <= next {
			if durT < next {
				next = durT
				atEpoch = false
			}
			stopHere = true
		}
		r.nw.Run(next)
		if stopHere {
			r.stopTraffic()
		}
		if atEpoch {
			r.emitEpoch(next)
			r.epochs++
		}
	}
	return nil
}

// Finish advances to End, folds the app tap, checks the conservation
// laws, writes the final journal record, and returns the run's
// paper-unit metrics. The returned error is the oracle verdict
// (invariant violations), not a transport failure; the metrics are
// valid either way. Finish is idempotent.
func (r *Run) Finish() (experiments.RunMetrics, error) {
	if r.done {
		return r.rm, r.ferr
	}
	if err := r.AdvanceTo(r.End()); err != nil {
		return experiments.RunMetrics{}, err
	}
	rm, err := experiments.CollectChecked(r.nw, r.tap)
	r.rm, r.ferr, r.done = rm, err, true
	if r.journal != nil {
		r.journal.Write(metrics.Record{
			Experiment: "scenario",
			Label:      "final",
			Seed:       r.sc.Seed,
			Metrics:    r.nw.Metrics.Snapshot(),
		})
	}
	return rm, err
}

// installProtocol attaches the scenario's network layer, mirroring the
// experiment harness's protocol table.
func installProtocol(nw *node.Network, sc Scenario) {
	lambda := sim.Time(sc.Lambda)
	if lambda == 0 {
		lambda = 10e-3
	}
	switch sc.Protocol {
	case ProtoCounter1:
		fcfg := flood.Counter1Config(lambda)
		nw.Install(func(n *node.Node) node.Protocol { return flood.New(&fcfg) })
	case ProtoSSAF:
		minDBm, maxDBm := ssafSpan(sc.Range)
		fcfg := flood.SSAFConfig(lambda, minDBm, maxDBm)
		nw.Install(func(n *node.Node) node.Protocol { return flood.New(&fcfg) })
	case ProtoRouteless:
		rcfg := routing.RoutelessConfig{Lambda: lambda}
		nw.Install(func(n *node.Node) node.Protocol { return routing.NewRouteless(rcfg) })
	case ProtoAODV:
		acfg := routing.AODVConfig{NoHello: true}
		nw.Install(func(n *node.Node) node.Protocol { return routing.NewAODV(acfg) })
	case ProtoGradient:
		nw.Install(func(n *node.Node) node.Protocol { return routing.NewGradient(routing.GradientConfig{}) })
	default:
		// Validate rejects unknown protocols before Build gets here.
		panic("scenario: unknown protocol " + sc.Protocol)
	}
}

// ssafSpan mirrors the experiment harness's SSAF band: decode threshold
// up to the power at one tenth of the transmission range.
func ssafSpan(rangeM float64) (minDBm, maxDBm float64) {
	model := propagation.NewFreeSpace()
	params := phy.DefaultParams(model, rangeM)
	minDBm = params.RxThreshDBm
	maxDBm = propagation.ThresholdFor(model, params.TxPowerDBm, rangeM/10)
	return
}
