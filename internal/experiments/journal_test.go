package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"routeless/internal/metrics"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// The journal is the artifact other people diff: same config + seed
// must reproduce it byte for byte, on any machine, at any worker count.
// The committed golden pins that promise across commits — CI runs this
// test against it, so a change that shifts any counter shows up as a
// golden diff, not as silent drift.

func runTinyFig1Journal(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	cfg := tinyFig1()
	cfg.Journal = metrics.NewJournal(&buf)
	RunFig1(cfg)
	if err := cfg.Journal.Err(); err != nil {
		t.Fatalf("journal write failed: %v", err)
	}
	return buf.Bytes()
}

func TestFig1JournalSameSeedBitwiseIdentical(t *testing.T) {
	a := runTinyFig1Journal(t)
	b := runTinyFig1Journal(t)
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed produced different journals:\nrun1: %s\nrun2: %s", a, b)
	}
}

// TestFig1JournalWorkerCountInvariant pins the sweep engine's core
// promise end to end: journal bytes and the rendered table are
// bitwise-identical whether the sweep ran serially or on eight workers.
func TestFig1JournalWorkerCountInvariant(t *testing.T) {
	run := func(workers int) (journal []byte, csv string) {
		var buf bytes.Buffer
		cfg := tinyFig1()
		cfg.Workers = workers
		cfg.Journal = metrics.NewJournal(&buf)
		rows := RunFig1(cfg)
		if err := cfg.Journal.Err(); err != nil {
			t.Fatalf("journal write failed: %v", err)
		}
		return buf.Bytes(), Fig1Table(rows).CSV()
	}
	j1, csv1 := run(1)
	j8, csv8 := run(8)
	if !bytes.Equal(j1, j8) {
		t.Fatalf("worker count changed journal bytes:\nworkers=1: %s\nworkers=8: %s", j1, j8)
	}
	if csv1 != csv8 {
		t.Fatalf("worker count changed table CSV:\nworkers=1:\n%s\nworkers=8:\n%s", csv1, csv8)
	}
}

func TestFig1JournalMatchesGolden(t *testing.T) {
	got := runTinyFig1Journal(t)
	golden := filepath.Join("testdata", "fig1_tiny.journal.jsonl")
	if *updateGolden {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update-golden): %v", err)
	}
	if bytes.Equal(got, want) {
		return
	}
	gotLines := bytes.Split(got, []byte("\n"))
	wantLines := bytes.Split(want, []byte("\n"))
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		var g, w []byte
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if !bytes.Equal(g, w) {
			t.Fatalf("journal drifted from golden at line %d:\ngot:  %s\nwant: %s\n(rerun with -update-golden if the change is intentional)", i+1, g, w)
		}
	}
	t.Fatal("journal drifted from golden (length mismatch)")
}
