package experiments

import (
	"reflect"
	"testing"
)

// The runtime counterpart of cmd/simlint's static checks: the paper's
// tables are only trustworthy if a seed pins down every election,
// flood, and delay bit-for-bit. Exact float comparison is the point
// here — "almost the same" results mean nondeterminism crept in.

func tinyFig1() Fig1Config {
	return Fig1Config{
		Nodes: 30, Terrain: 565, Connections: 8,
		Intervals: []float64{2},
		Duration:  5, Seeds: []int64{1},
		Workers: 4, // exercise the parallel sweep path, not just serial
	}
}

func TestFig1SameSeedBitwiseIdentical(t *testing.T) {
	cfg := tinyFig1()
	a := RunFig1(cfg)
	b := RunFig1(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\nrun1: %+v\nrun2: %+v", a, b)
	}
}

func TestFig1DifferentSeedDiverges(t *testing.T) {
	cfg := tinyFig1()
	a := RunFig1(cfg)
	cfg.Seeds = []int64{2}
	c := RunFig1(cfg)
	if reflect.DeepEqual(a, c) {
		t.Fatalf("seed 1 and seed 2 produced identical metrics %+v; the seed is not reaching the simulation", a)
	}
}

// Serial and parallel sweeps must print the same table: workers change
// wall time, never results.
func TestFig1WorkerCountInvariant(t *testing.T) {
	serial := tinyFig1()
	serial.Workers = 1
	parallel := tinyFig1()
	parallel.Workers = 8
	a := RunFig1(serial)
	b := RunFig1(parallel)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("worker count changed results:\nserial:   %+v\nparallel: %+v", a, b)
	}
}
