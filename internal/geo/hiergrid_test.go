package geo

import (
	"math/rand"
	"slices"
	"testing"
)

// The hierarchical index promises more than set equivalence: every
// WithinRadius call must return the exact slice — ids AND order — the
// flat Grid returns, because the phy channel treats the two as
// interchangeable and the golden journals pin the downstream bytes.

func hierPair(r *rand.Rand, rect Rect, cell float64, n int) (*Grid, *HierGrid, []Point) {
	pts := UniformPoints(r, rect, n)
	return NewGrid(rect, cell, pts), NewHierGrid(rect, cell, pts), pts
}

func checkSameQuery(t *testing.T, g *Grid, h *HierGrid, center Point, radius float64, exclude int) {
	t.Helper()
	want := g.WithinRadius(nil, center, radius, exclude)
	got := h.WithinRadius(nil, center, radius, exclude)
	if !slices.Equal(want, got) {
		t.Fatalf("WithinRadius(%v, r=%v, excl=%d) diverged:\nflat: %v\nhier: %v",
			center, radius, exclude, want, got)
	}
}

func TestHierGridEquivalenceRandom(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	rect := NewRect(2000, 1500)
	for _, n := range []int{0, 1, 50, 800} {
		for _, cell := range []float64{55, 137, 275, 900} {
			g, h, pts := hierPair(r, rect, cell, n)
			for q := 0; q < 60; q++ {
				center := Point{X: r.Float64()*2400 - 200, Y: r.Float64()*1900 - 200}
				radius := r.Float64() * 700
				exclude := -1
				if n > 0 && q%3 == 0 {
					exclude = r.Intn(n)
				}
				checkSameQuery(t, g, h, center, radius, exclude)
			}
			// Queries centered exactly on indexed points, including radius
			// 0 (self-distance ties) and a radius covering everything.
			for i := 0; i < n && i < 10; i++ {
				checkSameQuery(t, g, h, pts[i], 0, -1)
				checkSameQuery(t, g, h, pts[i], 250, i)
				checkSameQuery(t, g, h, pts[i], 4000, -1)
			}
		}
	}
}

func TestHierGridEquivalenceUnderMoves(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	rect := NewRect(1000, 1000)
	g, h, _ := hierPair(r, rect, 125, 300)
	for step := 0; step < 400; step++ {
		id := r.Intn(300)
		// Include moves outside the rect: both levels must agree on the
		// clamped boundary binning.
		p := Point{X: r.Float64()*1400 - 200, Y: r.Float64()*1400 - 200}
		g.MoveTo(id, p)
		h.MoveTo(id, p)
		if step%10 == 0 {
			center := Point{X: r.Float64() * 1000, Y: r.Float64() * 1000}
			checkSameQuery(t, g, h, center, r.Float64()*500, id)
		}
	}
	for q := 0; q < 50; q++ {
		center := Point{X: r.Float64()*1400 - 200, Y: r.Float64()*1400 - 200}
		checkSameQuery(t, g, h, center, r.Float64()*600, -1)
	}
}

func TestHierGridBoundaryAndClamp(t *testing.T) {
	rect := NewRect(500, 500)
	// Points on edges, corners, outside the rect (clamped into border
	// cells), and stacked on one spot.
	pts := []Point{
		{0, 0}, {500, 500}, {500, 0}, {0, 500},
		{-40, 250}, {540, 250}, {250, -40}, {250, 540},
		{250, 250}, {250, 250}, {250, 250},
		{499.9999, 499.9999}, {0.0001, 0.0001},
	}
	g := NewGrid(rect, 100, pts)
	h := NewHierGrid(rect, 100, pts)
	centers := append([]Point{{0, 0}, {500, 500}, {-40, 250}, {250, 250}, {600, 600}}, pts...)
	for _, c := range centers {
		for _, radius := range []float64{0, 1, 99.99, 100, 150, 710} {
			for _, excl := range []int{-1, 0, 8} {
				checkSameQuery(t, g, h, c, radius, excl)
			}
		}
	}
	// Nearest and At delegate to the fine grid.
	if got, want := h.Nearest(Point{260, 260}), g.Nearest(Point{260, 260}); got != want {
		t.Fatalf("Nearest diverged: hier %d, flat %d", got, want)
	}
	if h.Len() != g.Len() || h.At(3) != g.At(3) {
		t.Fatal("Len/At diverged from the fine grid")
	}
}

// TestHierGridBulkAppendHappens guards the point of the hierarchy: a
// query radius spanning several cells must classify interior cells as
// fully inside (covered indirectly — equivalence holds — but this
// pins that the fast path actually executes on a dense field, so a
// regression to always-scan cannot hide).
func TestHierGridBulkAppendHappens(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	rect := NewRect(1000, 1000)
	_, h, _ := hierPair(r, rect, 50, 2000)
	inside := 0
	for cy := 1; cy < h.fine.rows-1; cy++ {
		for cx := 1; cx < h.fine.cols-1; cx++ {
			if h.cellInside(cx, cy, Point{500, 500}, 300*300) {
				inside++
			}
		}
	}
	if inside == 0 {
		t.Fatal("no interior cell classified inside a 300 m disk over 50 m cells")
	}
}

func TestAutoTiling(t *testing.T) {
	cases := []struct {
		w, h, minSide float64
		cols, rows    int
	}{
		// 1M nodes at Figure-1 density: 100 km arena, 550 m cutoff →
		// min side 1100 m → 90×90 tiles.
		{100_000, 100_000, 1100, 90, 90},
		// 100k nodes: 31.6 km arena.
		{31_623, 31_623, 1100, 28, 28},
		// Paper-scale 1 km arena is smaller than the minimum side in
		// both dimensions: degenerate single tile.
		{1000, 1000, 1100, 1, 1},
		// Elongated arena tiles per dimension independently.
		{10_000, 2500, 1100, 9, 2},
		{5000, 800, 1100, 4, 1},
	}
	for _, c := range cases {
		tl := AutoTiling(NewRect(c.w, c.h), c.minSide)
		if tl.Cols() != c.cols || tl.Rows() != c.rows {
			t.Errorf("AutoTiling(%gx%g, %g) = %dx%d, want %dx%d",
				c.w, c.h, c.minSide, tl.Cols(), tl.Rows(), c.cols, c.rows)
		}
		if tl.Tiles() != c.cols*c.rows {
			t.Errorf("Tiles() = %d, want %d", tl.Tiles(), c.cols*c.rows)
		}
		// Every tile side must be at least minSide (up to the degenerate
		// single-tile case where the arena itself is smaller).
		b := tl.Bounds(0)
		if tl.Cols() > 1 && b.Width() < c.minSide {
			t.Errorf("tile width %g below min side %g", b.Width(), c.minSide)
		}
		if tl.Rows() > 1 && b.Height() < c.minSide {
			t.Errorf("tile height %g below min side %g", b.Height(), c.minSide)
		}
	}
}

func TestNewTilingXY(t *testing.T) {
	tl := NewTilingXY(NewRect(300, 200), 3, 2)
	if tl.Cols() != 3 || tl.Rows() != 2 || tl.Tiles() != 6 {
		t.Fatalf("NewTilingXY: %dx%d", tl.Cols(), tl.Rows())
	}
	if got := tl.TileOf(Point{150, 50}); got != 1 {
		t.Fatalf("TileOf(150,50) = %d, want 1", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewTilingXY(0 cols) should panic")
		}
	}()
	NewTilingXY(NewRect(1, 1), 0, 1)
}
