// Command leaderlab studies the §2 local leader election in isolation,
// on the abstract lossy broadcast medium: outcome probabilities, round
// counts and message costs as functions of neighborhood size, metric,
// link loss and collision window.
//
// Usage:
//
//	leaderlab [-sizes 2,5,10,20,50] [-trials 500] [-lambda-ms 10]
//	          [-loss 0.0] [-metric uniform|gradient] [-seed 7]
//
// The gradient metric assigns node i a distance of i+1 hops with 1
// expected — disjoint priority bands, modeling an ideal prioritized
// election; uniform models the classic random backoff.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"routeless/internal/core"
	"routeless/internal/packet"
	"routeless/internal/rng"
	"routeless/internal/sim"
	"routeless/internal/stats"
)

func main() {
	var (
		sizesArg = flag.String("sizes", "2,5,10,20,50", "comma-separated contender counts")
		trials   = flag.Int("trials", 500, "independent elections per size")
		lambdaMS = flag.Float64("lambda-ms", 10, "backoff scale λ in milliseconds")
		loss     = flag.Float64("loss", 0, "independent per-link loss probability")
		metric   = flag.String("metric", "uniform", "uniform or gradient")
		seed     = flag.Int64("seed", 7, "master seed")
	)
	flag.Parse()

	var sizes []int
	for _, f := range strings.Split(*sizesArg, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "bad size %q\n", f)
			os.Exit(2)
		}
		sizes = append(sizes, n)
	}
	lambda := sim.Time(*lambdaMS / 1e3)

	table := stats.NewTable(
		fmt.Sprintf("local leader election — metric=%s λ=%.1fms loss=%.0f%% trials=%d",
			*metric, *lambdaMS, *loss*100, *trials),
		"nodes", "p_single_r1", "p_collision_r1", "mean_rounds", "mean_msgs", "mean_latency_ms",
	)
	for si, n := range sizes {
		var single, none, rounds, msgs, latency float64
		resolved := 0
		for trial := 0; trial < *trials; trial++ {
			k := sim.NewKernel(rng.Derive(*seed, uint64(si), uint64(trial)))
			cl := core.NewCluster(k, n+1, lambda/4, lambda/20, *loss,
				rng.New(*seed, rng.StreamElection, uint64(si), uint64(trial)))
			cl.ConnectAll()
			electors := make([]*core.Elector, n)
			for i := 0; i < n; i++ {
				var policy core.BackoffPolicy
				switch *metric {
				case "uniform":
					policy = core.Uniform{Max: lambda}
				case "gradient":
					policy = core.HopGradient{Lambda: lambda}
				default:
					fmt.Fprintf(os.Stderr, "unknown metric %q\n", *metric)
					os.Exit(2)
				}
				electors[i] = core.NewElector(k, packet.NodeID(i), cl, policy)
				cl.AttachElector(electors[i])
			}
			arb := core.NewArbiter(k, packet.NodeID(n), cl, lambda*4)
			arb.MaxRetries = 50
			cl.AttachArbiter(arb)
			var electedAt sim.Time = -1
			arb.OnElected = func(packet.NodeID, uint32) { electedAt = k.Now() }
			if *metric == "gradient" {
				// Feed disjoint bands via contexts on the first round;
				// later rounds reuse them.
				ctxs := map[packet.NodeID]core.Context{}
				for i := 0; i < n; i++ {
					ctxs[packet.NodeID(i)] = core.Context{HopsToTarget: i + 1, ExpectedHops: 1}
				}
				cl.TriggerAll(1, ctxs)
			}
			arb.Trigger()
			k.Run()
			winners := 0
			for _, e := range electors {
				if o := e.Current(); o.Won && o.Round == 1 {
					winners++
				}
			}
			if winners == 1 {
				single++
			} else if winners == 0 {
				none++
			}
			if arb.Leader() != packet.None {
				resolved++
				rounds += float64(arb.Stats().Triggers)
				latency += float64(electedAt) * 1e3
			}
			msgs += float64(cl.Stats().Broadcasts)
		}
		t := float64(*trials)
		meanRounds, meanLat := 0.0, 0.0
		if resolved > 0 {
			meanRounds = rounds / float64(resolved)
			meanLat = latency / float64(resolved)
		}
		table.AddRow(n, single/t, none/t, meanRounds, msgs/t, meanLat)
	}
	fmt.Println(table)
}
