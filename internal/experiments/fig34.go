package experiments

import (
	"fmt"

	"routeless/internal/fault"
	"routeless/internal/geo"
	"routeless/internal/metrics"
	"routeless/internal/node"
	"routeless/internal/packet"
	"routeless/internal/rng"
	"routeless/internal/routing"
	"routeless/internal/sim"
	"routeless/internal/stats"
	"routeless/internal/sweep"
	"routeless/internal/traffic"
)

// RoutingProto selects the protocol under test in Figures 3 and 4.
type RoutingProto string

// Protocols the routing experiments can run.
const (
	ProtoRouteless RoutingProto = "routeless"
	ProtoAODV      RoutingProto = "aodv"
	ProtoGradient  RoutingProto = "gradient"
)

// Fig34Config covers both routing figures: Figure 3 sweeps the number
// of communicating pairs with no failures; Figure 4 fixes the pairs and
// sweeps the node-failure percentage. Paper scale: 500 nodes in
// 2000×2000 m, range ≈250 m, bidirectional CBR.
type Fig34Config struct {
	Nodes    int      // default 500
	Terrain  float64  // default 2000
	Range    float64  // default 250
	Interval float64  // CBR interval per direction, default 1 s
	Duration float64  // traffic seconds, default 60
	Seeds    []int64  // default {1,2,3}
	Workers  int      `json:"-"` // default GOMAXPROCS
	Tiles    int      `json:"-"` // PDES tiles per run; default 1 (sequential)
	Lambda   sim.Time // Routeless λ, default 10 ms
	DataSize int      // CBR payload bytes; default 64

	// Pairs is Figure 3's x-axis; default 1..10.
	Pairs []int
	// FailurePcts is Figure 4's x-axis (fractions); default 0..0.10.
	FailurePcts []float64
	// Fig4Pairs is the fixed pair count for Figure 4; default 10.
	Fig4Pairs int

	// Journal, when non-nil, receives one Record per run — config, seed,
	// and the final metric snapshot — written after each sweep in job
	// order, so the journal bytes are deterministic for a fixed config.
	Journal *metrics.Journal `json:"-"`
}

func (c Fig34Config) withDefaults() Fig34Config {
	if c.Nodes == 0 {
		c.Nodes = 500
	}
	if c.Terrain == 0 {
		c.Terrain = 2000
	}
	if c.Range == 0 {
		c.Range = 250
	}
	if c.Interval == 0 {
		c.Interval = 1
	}
	if c.Duration == 0 {
		c.Duration = 60
	}
	if len(c.Seeds) == 0 {
		c.Seeds = []int64{1, 2, 3}
	}
	if c.Lambda == 0 {
		c.Lambda = 10e-3
	}
	if c.DataSize == 0 {
		// Sensor-scale readings, matching the Figure 1 setup; see the
		// DataSize note there.
		c.DataSize = 64
	}
	if len(c.Pairs) == 0 {
		c.Pairs = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	}
	if len(c.FailurePcts) == 0 {
		c.FailurePcts = []float64{0, 0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08, 0.09, 0.10}
	}
	if c.Fig4Pairs == 0 {
		c.Fig4Pairs = 10
	}
	return c
}

// runRoutingOnce builds a network, installs the protocol, starts
// bidirectional CBR over `pairs` connections, injects duty-cycle
// failures on non-endpoint nodes, and measures.
func runRoutingOnce(ctx *sweep.Context, cfg Fig34Config, proto RoutingProto, pairs int, failurePct float64, seed int64) runOut {
	nw := node.New(node.Config{
		N:               cfg.Nodes,
		Rect:            geo.NewRect(cfg.Terrain, cfg.Terrain),
		Range:           cfg.Range,
		Seed:            seed,
		EnsureConnected: true,
		Runtime:         ctx.Runtime(),
		Tiles:           cfg.Tiles,
	})
	switch proto {
	case ProtoRouteless:
		rcfg := routing.RoutelessConfig{Lambda: cfg.Lambda}
		nw.Install(func(n *node.Node) node.Protocol { return routing.NewRouteless(rcfg) })
	case ProtoAODV:
		acfg := routing.AODVConfig{NoHello: true}
		nw.Install(func(n *node.Node) node.Protocol { return routing.NewAODV(acfg) })
	case ProtoGradient:
		nw.Install(func(n *node.Node) node.Protocol { return routing.NewGradient(routing.GradientConfig{}) })
	default:
		panic("experiments: unknown protocol " + string(proto))
	}

	var meter stats.Meter
	tap := NewAppTap(nw, &meter)

	conns := traffic.RandomPairs(rng.New(seed, rng.StreamTraffic), cfg.Nodes, pairs)
	endpoint := make(map[packet.NodeID]bool, 2*pairs)
	var cbrs []*traffic.CBR
	for _, p := range conns {
		endpoint[p.Src] = true
		endpoint[p.Dst] = true
		// "the traffic being bidirectional" (§4.3): both directions.
		fwd := traffic.NewCBR(nw.Nodes[p.Src], p.Dst, sim.Time(cfg.Interval), cfg.DataSize)
		rev := traffic.NewCBR(nw.Nodes[p.Dst], p.Src, sim.Time(cfg.Interval), cfg.DataSize)
		tap.Watch(fwd)
		tap.Watch(rev)
		fwd.Start()
		rev.Start()
		cbrs = append(cbrs, fwd, rev)
	}

	// "node failures are artificially introduced to turn off
	// transceivers in all nodes but those that generate and receive CBR
	// traffic" (§4.3). The crash fault routes through the fault plane,
	// which reuses the per-node StreamFailure streams and installs in
	// node-id order — bitwise identical to the hand-wired loop this
	// replaces, plus fault.* recovery series in the journal snapshots.
	if failurePct > 0 {
		var excl []packet.NodeID
		for _, n := range nw.Nodes {
			if endpoint[n.ID] {
				excl = append(excl, n.ID)
			}
		}
		crash := fault.Crash(failurePct)
		crash.Exclude = excl
		fault.Install(nw, fault.Plan{crash})
	}

	nw.Run(sim.Time(cfg.Duration))
	for _, c := range cbrs {
		c.Stop()
	}
	nw.Run(sim.Time(cfg.Duration) + drainTime)
	return runOut{collect(nw, tap), snapshotIf(nw, cfg.Journal != nil)}
}

// Fig3Row is one x-axis point of the four Figure 3 panels.
type Fig3Row struct {
	Pairs     int
	AODV      Agg
	Routeless Agg
}

// versusPoint decodes the shared two-protocol x-axis flattening used by
// Figures 3 and 4 (and the ablations that reuse their rigs): even
// points are the baseline protocol, odd points the challenger.
func versusPoint(point int) (idx int, challenger bool) { return point / 2, point%2 == 1 }

// RunFig3 sweeps the number of communicating pairs with no failures.
func RunFig3(cfg Fig34Config) []Fig3Row {
	cfg = cfg.withDefaults()
	cells := sweep.Cells("fig3", len(cfg.Pairs)*2, cfg.Seeds)
	results := sweep.Run(cfg.Workers, cells, func(ctx *sweep.Context, i int, c sweep.Cell) runOut {
		pi, rr := versusPoint(c.Point)
		proto := ProtoAODV
		if rr {
			proto = ProtoRouteless
		}
		return runRoutingOnce(ctx, cfg, proto, cfg.Pairs[pi], 0, c.Seed)
	})
	rows := make([]Fig3Row, len(cfg.Pairs))
	for i, p := range cfg.Pairs {
		rows[i].Pairs = p
	}
	for i, c := range cells {
		pi, rr := versusPoint(c.Point)
		if rr {
			rows[pi].Routeless.Add(results[i].RunMetrics)
		} else {
			rows[pi].AODV.Add(results[i].RunMetrics)
		}
	}
	if cfg.Journal != nil {
		for i, c := range cells {
			pi, rr := versusPoint(c.Point)
			proto := ProtoAODV
			if rr {
				proto = ProtoRouteless
			}
			// A write failure sticks on the journal; callers check Err once.
			_ = cfg.Journal.Write(metrics.Record{
				Experiment: "fig3",
				Label:      fmt.Sprintf("%s pairs=%d", proto, cfg.Pairs[pi]),
				Seed:       c.Seed,
				Config:     cfg,
				Metrics:    results[i].snap,
			})
		}
	}
	return rows
}

// Fig3Table renders the four panels as one table.
func Fig3Table(rows []Fig3Row) *stats.Table {
	t := stats.NewTable(
		"Figure 3 — Routeless Routing vs AODV, no failures (bidirectional CBR)",
		"pairs",
		"aodv_delay_s", "rr_delay_s",
		"aodv_delivery", "rr_delivery",
		"aodv_mac_pkts", "rr_mac_pkts",
		"aodv_hops", "rr_hops",
	)
	for _, r := range rows {
		t.AddRow(r.Pairs,
			r.AODV.Delay.Mean(), r.Routeless.Delay.Mean(),
			r.AODV.Delivery.Mean(), r.Routeless.Delivery.Mean(),
			r.AODV.MACPackets.Mean(), r.Routeless.MACPackets.Mean(),
			r.AODV.Hops.Mean(), r.Routeless.Hops.Mean(),
		)
	}
	return t
}

// Fig4Row is one x-axis point of the four Figure 4 panels.
type Fig4Row struct {
	FailurePct float64
	AODV       Agg
	Routeless  Agg
}

// RunFig4 sweeps the node-failure percentage at a fixed pair count.
func RunFig4(cfg Fig34Config) []Fig4Row {
	cfg = cfg.withDefaults()
	cells := sweep.Cells("fig4", len(cfg.FailurePcts)*2, cfg.Seeds)
	results := sweep.Run(cfg.Workers, cells, func(ctx *sweep.Context, i int, c sweep.Cell) runOut {
		pi, rr := versusPoint(c.Point)
		proto := ProtoAODV
		if rr {
			proto = ProtoRouteless
		}
		return runRoutingOnce(ctx, cfg, proto, cfg.Fig4Pairs, cfg.FailurePcts[pi], c.Seed)
	})
	rows := make([]Fig4Row, len(cfg.FailurePcts))
	for i, pct := range cfg.FailurePcts {
		rows[i].FailurePct = pct
	}
	for i, c := range cells {
		pi, rr := versusPoint(c.Point)
		if rr {
			rows[pi].Routeless.Add(results[i].RunMetrics)
		} else {
			rows[pi].AODV.Add(results[i].RunMetrics)
		}
	}
	if cfg.Journal != nil {
		for i, c := range cells {
			pi, rr := versusPoint(c.Point)
			proto := ProtoAODV
			if rr {
				proto = ProtoRouteless
			}
			// A write failure sticks on the journal; callers check Err once.
			_ = cfg.Journal.Write(metrics.Record{
				Experiment: "fig4",
				Label:      fmt.Sprintf("%s failure=%g", proto, cfg.FailurePcts[pi]),
				Seed:       c.Seed,
				Config:     cfg,
				Metrics:    results[i].snap,
			})
		}
	}
	return rows
}

// Fig4Table renders the four panels as one table.
func Fig4Table(rows []Fig4Row) *stats.Table {
	t := stats.NewTable(
		"Figure 4 — Routeless Routing vs AODV under duty-cycle node failures",
		"failure_pct",
		"aodv_delay_s", "rr_delay_s",
		"aodv_delivery", "rr_delivery",
		"aodv_mac_pkts", "rr_mac_pkts",
		"aodv_hops", "rr_hops",
	)
	for _, r := range rows {
		t.AddRow(r.FailurePct,
			r.AODV.Delay.Mean(), r.Routeless.Delay.Mean(),
			r.AODV.Delivery.Mean(), r.Routeless.Delivery.Mean(),
			r.AODV.MACPackets.Mean(), r.Routeless.MACPackets.Mean(),
			r.AODV.Hops.Mean(), r.Routeless.Hops.Mean(),
		)
	}
	return t
}
