// Package stats provides the measurement plumbing for experiments:
// streaming moments (Welford), end-to-end delivery meters matching the
// paper's three headline metrics (delivery ratio, end-to-end delay,
// average hops), and table/CSV formatting for reproducing the figures.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Welford accumulates streaming mean and variance without storing
// samples (Welford's online algorithm), plus min and max.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one sample into the accumulator.
func (w *Welford) Add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Merge folds another accumulator into this one (Chan et al. parallel
// update), so per-run accumulators can be combined across seeds.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := float64(w.n + o.n)
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/n
	w.mean += d * float64(o.n) / n
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
	w.n += o.n
}

// N returns the sample count.
func (w *Welford) N() uint64 { return w.n }

// Mean returns the sample mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance.
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Min returns the smallest sample (0 when empty).
func (w *Welford) Min() float64 {
	if w.n == 0 {
		return 0
	}
	return w.min
}

// Max returns the largest sample (0 when empty).
func (w *Welford) Max() float64 {
	if w.n == 0 {
		return 0
	}
	return w.max
}

// CI95 returns the 95% normal-approximation confidence half-width.
func (w *Welford) CI95() float64 {
	if w.n < 2 {
		return 0
	}
	return 1.96 * w.Std() / math.Sqrt(float64(w.n))
}

// Meter tracks one protocol run's end-to-end performance: the paper's
// delivery ratio ("packets received by all the destinations divided by
// packets sent by all the sources"), end-to-end delay, and hop count.
type Meter struct {
	Sent     uint64
	Received uint64
	Delay    Welford
	Hops     Welford
}

// PacketSent records a source emission.
func (m *Meter) PacketSent() { m.Sent++ }

// PacketReceived records a destination arrival with its measured
// end-to-end delay (seconds) and traversed hop count.
func (m *Meter) PacketReceived(delay float64, hops int) {
	m.Received++
	m.Delay.Add(delay)
	m.Hops.Add(float64(hops))
}

// DeliveryRatio returns received/sent, or 0 when nothing was sent.
func (m *Meter) DeliveryRatio() float64 {
	if m.Sent == 0 {
		return 0
	}
	return float64(m.Received) / float64(m.Sent)
}

// Merge combines another meter into this one.
func (m *Meter) Merge(o Meter) {
	m.Sent += o.Sent
	m.Received += o.Received
	m.Delay.Merge(o.Delay)
	m.Hops.Merge(o.Hops)
}

// Table renders aligned experiment output and CSV, one row per
// parameter point, the way the paper's figures tabulate series.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v, floats with %.4g.
func (t *Table) AddRow(vals ...any) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", x)
		case float32:
			row[i] = fmt.Sprintf("%.4g", x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Row returns row i.
func (t *Table) Row(i int) []string { return t.rows[i] }

// numCols returns the table's true column count: rows may be wider than
// Headers (ad-hoc instrumentation appends extra cells), and both
// renderers pad consistently rather than dropping or misrendering the
// extras.
func (t *Table) numCols() int {
	n := len(t.Headers)
	for _, r := range t.rows {
		if len(r) > n {
			n = len(r)
		}
	}
	return n
}

// cell returns row[i], or "" past the row's end.
func cell(row []string, i int) string {
	if i < len(row) {
		return row[i]
	}
	return ""
}

// String renders an aligned text table. Rows wider than Headers get
// empty-header columns; rows narrower than the widest get empty cells.
func (t *Table) String() string {
	width := make([]int, t.numCols())
	for i, h := range t.Headers {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i := range width {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], cell(cells, i))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for i, w := range width {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (headers included).
// Every line has the same field count: short rows (and a short header
// line) are padded with empty fields to the widest row.
func (t *Table) CSV() string {
	n := t.numCols()
	var b strings.Builder
	writeLine := func(cells []string) {
		for i := 0; i < n; i++ {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(cell(cells, i))
		}
		b.WriteByte('\n')
	}
	writeLine(t.Headers)
	for _, r := range t.rows {
		writeLine(r)
	}
	return b.String()
}
