// Command simbench is the tracked benchmark harness: it runs the same
// reduced-scale experiment configurations as the repository's
// bench_test.go, measures kernel throughput (events/sec), wall time,
// and allocations per figure, and writes the results as JSON
// (BENCH_2.json at the repository root is the committed snapshot).
//
// Usage:
//
//	simbench                      # full figure set, report to stdout
//	simbench -quick               # CI subset (fig1, fig3, abl3)
//	simbench -out BENCH_4.json    # also write the JSON report
//	simbench -workers 4           # sweep worker count for every figure
//	simbench -scaling 1,2,4,8     # per-figure multicore scaling study
//	simbench -scaling 1,4 -min-speedup 1.6   # CI scaling gate
//	simbench -tiles 1,4           # intra-run tiled-PDES scaling study
//	simbench -tiles 1,4 -min-tiled-speedup 1.6 -out BENCH_7.json
//	simbench -mega                # million-node arena cost point (events/sec, bytes/node)
//	simbench -mega -mega-nodes 100000 -max-bytes-node 1024 -baseline BENCH_9.json
//	simbench -baseline BENCH_2.json -max-regress 0.20
//	simbench -journal runs.jsonl  # append a JSONL run journal
//	simbench -cpuprofile cpu.out -memprofile mem.out -trace trace.out
//
// With -baseline, per-figure events/sec is compared against the
// baseline report and the command exits non-zero if any shared figure
// regressed by more than -max-regress (CI's performance gate).
//
// With -scaling, every selected figure is measured once per listed
// worker count; each figure's report entry records the single-worker
// measurement plus a scaling series (events/sec, allocs/event, speedup
// relative to 1 worker). Worker counts above GOMAXPROCS are clamped
// away up front — the report records both the requested and the
// measured list plus a note explaining any clamping, so a small box
// still measures what it can instead of silently skipping the study.
// With -min-speedup, the command exits non-zero if the aggregate
// speedup at the highest measured worker count falls short; when the
// clamped list has no parallel point (a 1-core runner), the gate is
// skipped with the reason recorded in the report.
//
// With -tiles, a single large flood topology is measured once per
// listed intra-run tile count on the tiled PDES engine (-min-tiled-speedup
// gates the speedup at the highest measured tile count the same way).
// Tiled runs are bitwise identical to sequential ones, so this study
// measures pure engine overhead/speedup, not workload drift.
//
// With -mega, a single fig_mega arena (default one million nodes at
// Figure-1 density, auto-tiled) replaces the figure suite. On top of
// events/sec the mode reports the memory constants the O(active) data
// plane promises: the post-GC heap retained by the built arena divided
// by the node count (gated by -max-bytes-node — the per-node state the
// SoA layout controls), plus the run's peak heap footprint
// (runtime.ReadMemStats HeapSys growth, garbage and link caches
// included — recorded, not gated). -baseline compares mega events/sec
// under the usual -max-regress (BENCH_9.json is the committed mega
// snapshot).
//
// With -journal, the fig1/fig3/fig4 sweeps write one record per run
// (config, seed, final metric snapshot) and every measured figure adds
// a summary record stamped with git revision, Go version, and wall
// time. The profiling flags feed `go tool pprof` / `go tool trace` to
// localize hot-path regressions the gate catches.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"slices"
	"strings"
	"time"

	"routeless/internal/experiments"
	"routeless/internal/metrics"
	"routeless/internal/sim"
)

// FigureResult is the measured cost of regenerating one figure.
type FigureResult struct {
	Name         string  `json:"name"`
	Events       uint64  `json:"events"`
	WallSeconds  float64 `json:"wall_seconds"`
	EventsPerSec float64 `json:"events_per_sec"`
	Allocs       uint64  `json:"allocs"`
	AllocBytes   uint64  `json:"alloc_bytes"`
	// Scaling holds the -scaling study: one point per worker count.
	Scaling []ScalingPoint `json:"scaling,omitempty"`
}

// ScalingPoint is one figure's cost at one sweep worker count.
type ScalingPoint struct {
	Workers        int     `json:"workers"`
	WallSeconds    float64 `json:"wall_seconds"`
	EventsPerSec   float64 `json:"events_per_sec"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	// Speedup is events/sec relative to this figure's 1-worker point.
	Speedup float64 `json:"speedup"`
}

// TiledPoint is the tiled-PDES study's cost at one intra-run tile
// count (same topology, same seed, same output bytes — only the tile
// count changes).
type TiledPoint struct {
	Tiles        int     `json:"tiles"`
	Events       uint64  `json:"events"`
	WallSeconds  float64 `json:"wall_seconds"`
	EventsPerSec float64 `json:"events_per_sec"`
	// Speedup is events/sec relative to the 1-tile point.
	Speedup float64 `json:"speedup"`
}

// Report is the schema of the committed benchmark snapshots
// (BENCH_2.json, BENCH_4.json, BENCH_7.json).
type Report struct {
	GoVersion         string         `json:"go_version"`
	GOMAXPROCS        int            `json:"gomaxprocs"`
	Quick             bool           `json:"quick"`
	Workers           int            `json:"workers,omitempty"`
	Figures           []FigureResult `json:"figures"`
	TotalEvents       uint64         `json:"total_events"`
	TotalWallSeconds  float64        `json:"total_wall_seconds"`
	TotalEventsPerSec float64        `json:"total_events_per_sec"`
	// ScalingRequested/ScalingMeasured record the -scaling study's
	// requested worker list and the GOMAXPROCS-clamped list actually
	// measured; ScalingNote explains any difference (never silent).
	ScalingRequested []int  `json:"scaling_requested,omitempty"`
	ScalingMeasured  []int  `json:"scaling_measured,omitempty"`
	ScalingNote      string `json:"scaling_note,omitempty"`
	// Tiled holds the -tiles intra-run study; TiledNote records why a
	// point or the gate was skipped on boxes too small to measure it.
	Tiled        []TiledPoint `json:"tiled,omitempty"`
	TiledSpeedup float64      `json:"tiled_speedup,omitempty"`
	TiledNote    string       `json:"tiled_note,omitempty"`
	// Mega holds the -mega arena cost point (BENCH_9.json).
	Mega *MegaResult `json:"mega,omitempty"`
	// BenchmarkFig1 preserves the hand-recorded `go test -bench`
	// before/after comparison from the baseline report, so regenerating
	// the snapshot does not lose the historical record.
	BenchmarkFig1 json.RawMessage `json:"benchmark_fig1,omitempty"`
}

// MegaResult is the -mega study's cost point: throughput plus the
// memory constants of one auto-tiled fig_mega arena.
type MegaResult struct {
	Nodes        int     `json:"nodes"`
	Events       uint64  `json:"events"`
	WallSeconds  float64 `json:"wall_seconds"`
	EventsPerSec float64 `json:"events_per_sec"`
	// RetainedBytes is the post-GC heap retained by the built arena —
	// node, radio, MAC, and protocol state before any traffic — as
	// measured by the MegaConfig.MemProbe hook with sweep workers
	// pinned to 1. This is the per-node constant the SoA arena layout
	// controls.
	RetainedBytes uint64 `json:"retained_bytes"`
	// BytesPerNode is RetainedBytes divided by the node count — the
	// number the ≤1 KiB/node gate rides on.
	BytesPerNode float64 `json:"bytes_per_node"`
	// PeakHeapBytes is the heap footprint high-water mark of the whole
	// run: HeapSys growth from a post-GC baseline taken before the
	// arena was built. It includes link caches, the event pool, GC
	// headroom, and floating garbage — deliberately, since that is the
	// memory a box must actually have. Recorded, not gated.
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`
}

// The configurations below mirror bench_test.go exactly; simbench and
// `go test -bench` must measure the same workloads or the tracked
// numbers mean nothing.

func fig1Config() experiments.Fig1Config {
	return experiments.Fig1Config{
		Nodes: 60, Terrain: 800, Connections: 15,
		Intervals: []float64{1, 5, 10},
		Duration:  10, Seeds: []int64{1},
	}
}

func fig34Config() experiments.Fig34Config {
	return experiments.Fig34Config{
		Nodes: 150, Terrain: 1100, Duration: 20,
		Pairs: []int{2, 6}, Seeds: []int64{1},
		FailurePcts: []float64{0, 0.10}, Fig4Pairs: 6,
	}
}

// tiledConfig is the -tiles study workload: one large flood topology
// at Figure-1 density (100 nodes per 1000×1000 m → 1200 nodes in
// 3575×3575 m), one interval, one seed, sweep workers pinned to 1 so
// the intra-run tile workers are the only parallelism being measured.
func tiledConfig(tiles int) experiments.Fig1Config {
	return experiments.Fig1Config{
		Nodes: 1200, Terrain: 3575, Connections: 60,
		Intervals: []float64{0.5},
		Duration:  5, Seeds: []int64{1},
		Workers: 1, Tiles: tiles,
	}
}

type figure struct {
	name  string
	quick bool // included in the -quick CI subset
	run   func()
}

// figures returns the tracked workloads at one sweep worker count. The
// journal (nil when off) is threaded only into the figure sweeps that
// emit per-run records; the ablation reruns keep journal-less configs
// so their measured cost matches bench_test.go exactly.
func figures(j *metrics.Journal, workers int) []figure {
	fig1J := func() experiments.Fig1Config {
		c := fig1Config()
		c.Journal, c.Workers = j, workers
		return c
	}
	fig34J := func() experiments.Fig34Config {
		c := fig34Config()
		c.Journal, c.Workers = j, workers
		return c
	}
	fig1W := func() experiments.Fig1Config { c := fig1Config(); c.Workers = workers; return c }
	fig34W := func() experiments.Fig34Config { c := fig34Config(); c.Workers = workers; return c }
	return []figure{
		{"fig1", true, func() { experiments.RunFig1(fig1J()) }},
		{"fig2", false, func() {
			experiments.RunFig2(experiments.Fig2Config{
				Seed: 3, Nodes: 300, Terrain: 1500, Duration: 30, Workers: workers})
		}},
		{"fig3", true, func() { experiments.RunFig3(fig34J()) }},
		{"fig4", false, func() { experiments.RunFig4(fig34J()) }},
		{"abl1", false, func() {
			cfg := fig1W()
			cfg.Intervals = []float64{2}
			experiments.RunAbl1(cfg)
		}},
		{"abl2", false, func() {
			experiments.RunAbl2(fig34W(), []sim.Time{5e-3, 50e-3}, 4)
		}},
		{"abl3", true, func() { experiments.RunAbl3(workers, []int{2, 10, 50}, 100, 10e-3, 7) }},
		{"abl4", false, func() {
			cfg := fig34W()
			cfg.Pairs = []int{4}
			experiments.RunAbl4(cfg)
		}},
		{"abl5", false, func() { experiments.RunAbl5(fig34W(), []float64{0, 0.3}, 4) }},
	}
}

func measure(f figure) FigureResult {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	experiments.ResetEventCount()
	//lint:ignore wallclock wall-time of a whole experiment sweep, measured outside the event loop
	start := time.Now()
	f.run()
	//lint:ignore wallclock closes the timing window opened above, after every kernel has drained
	elapsed := time.Since(start).Seconds()
	events := experiments.EventCount()
	runtime.ReadMemStats(&after)
	return FigureResult{
		Name:         f.name,
		Events:       events,
		WallSeconds:  elapsed,
		EventsPerSec: float64(events) / elapsed,
		Allocs:       after.Mallocs - before.Mallocs,
		AllocBytes:   after.TotalAlloc - before.TotalAlloc,
	}
}

func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// checkRegression compares events/sec per figure against the baseline.
// It returns the names of figures that regressed beyond maxRegress
// (e.g. 0.20 = fail below 80% of baseline throughput).
func checkRegression(base *Report, cur *Report, maxRegress float64) []string {
	baseline := make(map[string]FigureResult, len(base.Figures))
	for _, f := range base.Figures {
		baseline[f.Name] = f
	}
	var failed []string
	for _, f := range cur.Figures {
		b, ok := baseline[f.Name]
		if !ok || b.EventsPerSec <= 0 {
			continue
		}
		ratio := f.EventsPerSec / b.EventsPerSec
		fmt.Printf("  vs baseline %-5s %6.2fx  (%.0f -> %.0f events/sec)\n",
			f.Name, ratio, b.EventsPerSec, f.EventsPerSec)
		if ratio < 1-maxRegress {
			failed = append(failed, f.Name)
		}
	}
	return failed
}

// parseCounts parses a comma-separated positive-integer list flag
// (-scaling worker counts, -tiles tile counts), sorted ascending.
func parseCounts(name, s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		var w int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &w); err != nil || w < 1 {
			return nil, fmt.Errorf("bad %s entry %q (want positive integers)", name, part)
		}
		out = append(out, w)
	}
	slices.Sort(out)
	return slices.Compact(out), nil
}

// clampWorkers caps every requested worker count at GOMAXPROCS and
// deduplicates: a small box measures the points it can express instead
// of skipping the study. The returned note ("" when nothing changed)
// is recorded in the report so clamping is never silent.
func clampWorkers(requested []int, maxProcs int) (measured []int, note string) {
	measured = make([]int, 0, len(requested))
	for _, w := range requested {
		measured = append(measured, min(w, maxProcs))
	}
	slices.Sort(measured)
	measured = slices.Compact(measured)
	if !slices.Equal(measured, requested) {
		note = fmt.Sprintf("worker counts clamped to GOMAXPROCS=%d: requested %v, measured %v", maxProcs, requested, measured)
	}
	return measured, note
}

// aggregateSpeedup computes the whole-suite speedup at the highest
// scaling worker count: total 1-worker wall time over total wall time at
// that count. Figures without both points are skipped. ok is false when
// nothing was measured.
func aggregateSpeedup(figs []FigureResult, maxW int) (speedup float64, ok bool) {
	var wall1, wallN float64
	for _, f := range figs {
		var w1, wN float64
		for _, p := range f.Scaling {
			if p.Workers == 1 {
				w1 = p.WallSeconds
			}
			if p.Workers == maxW {
				wN = p.WallSeconds
			}
		}
		if w1 > 0 && wN > 0 {
			wall1 += w1
			wallN += wN
		}
	}
	if wallN == 0 {
		return 0, false
	}
	return wall1 / wallN, true
}

func writeReport(rep *Report, path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// measureTiled runs the tiled study workload once at one tile count.
func measureTiled(tiles int) TiledPoint {
	runtime.GC()
	experiments.ResetEventCount()
	//lint:ignore wallclock wall-time of a whole experiment run, measured outside the event loop
	start := time.Now()
	experiments.RunFig1(tiledConfig(tiles))
	//lint:ignore wallclock closes the timing window opened above, after every kernel has drained
	elapsed := time.Since(start).Seconds()
	events := experiments.EventCount()
	return TiledPoint{
		Tiles:        tiles,
		Events:       events,
		WallSeconds:  elapsed,
		EventsPerSec: float64(events) / elapsed,
	}
}

// runTiledStudy is the -tiles mode: measure the single large flood
// topology once per tile count, record speedups relative to the 1-tile
// baseline, and apply the -min-tiled-speedup gate. The gate is skipped
// — with the reason recorded in the report, never silently — when
// GOMAXPROCS cannot host one core per tile, since a small box cannot
// measure parallel speedup no matter how good the engine is.
func runTiledStudy(rep *Report, tileCounts []int, minTiled float64, out string) int {
	if tileCounts[0] != 1 {
		// Speedup needs the sequential baseline.
		tileCounts = append([]int{1}, tileCounts...)
	}
	fmt.Printf("tiled intra-run study: %d-node flood, tile counts %v, GOMAXPROCS=%d\n",
		tiledConfig(1).Nodes, tileCounts, rep.GOMAXPROCS)
	var base float64
	for _, tc := range tileCounts {
		p := measureTiled(tc)
		if tc == 1 {
			base = p.EventsPerSec
		}
		if base > 0 {
			p.Speedup = p.EventsPerSec / base
		}
		rep.Tiled = append(rep.Tiled, p)
		fmt.Printf("tiles=%-3d %12d events %8.2fs %12.0f events/sec %6.2fx\n",
			tc, p.Events, p.WallSeconds, p.EventsPerSec, p.Speedup)
	}
	maxT := tileCounts[len(tileCounts)-1]
	last := rep.Tiled[len(rep.Tiled)-1]
	rep.TiledSpeedup = last.Speedup
	gateFailed := false
	if rep.GOMAXPROCS < maxT {
		rep.TiledNote = fmt.Sprintf("tiled speedup not measurable: GOMAXPROCS=%d < %d tiles; gate skipped", rep.GOMAXPROCS, maxT)
		fmt.Println(rep.TiledNote)
	} else if minTiled > 0 {
		fmt.Printf("tiled speedup at %d tiles: %.2fx (gate %.2fx)\n", maxT, rep.TiledSpeedup, minTiled)
		if rep.TiledSpeedup < minTiled {
			fmt.Fprintf(os.Stderr, "simbench: tiled speedup %.2fx at %d tiles below required %.2fx\n",
				rep.TiledSpeedup, maxT, minTiled)
			gateFailed = true
		}
	}
	if out != "" {
		if err := writeReport(rep, out); err != nil {
			fmt.Fprintln(os.Stderr, "simbench:", err)
			return 2
		}
	}
	if gateFailed {
		return 1
	}
	return 0
}

// runMegaStudy is the -mega mode: one fig_mega arena, auto-tiled, sweep
// workers pinned to 1 so the intra-run tile pool is the only
// parallelism. Gates: -max-bytes-node on the retained-arena-per-node
// constant, and the usual -baseline/-max-regress on mega events/sec.
func runMegaStudy(rep *Report, nodes int, maxBytesNode float64, baselinePath string, maxRegress float64, journal *metrics.Journal, out string) int {
	fmt.Printf("mega arena study: %d nodes at Figure-1 density, auto-tiled, GOMAXPROCS=%d\n",
		nodes, rep.GOMAXPROCS)
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	experiments.ResetEventCount()
	//lint:ignore wallclock wall-time of a whole experiment run, measured outside the event loop
	start := time.Now()
	var retained uint64
	experiments.RunMega(experiments.MegaConfig{
		Ns: []int{nodes}, Workers: 1, Journal: journal,
		MemProbe: func(_ int, b uint64) { retained = b },
	})
	//lint:ignore wallclock closes the timing window opened above, after every kernel has drained
	elapsed := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	events := experiments.EventCount()
	m := &MegaResult{
		Nodes:         nodes,
		Events:        events,
		WallSeconds:   elapsed,
		EventsPerSec:  float64(events) / elapsed,
		RetainedBytes: retained,
		PeakHeapBytes: after.HeapSys - before.HeapSys,
	}
	m.BytesPerNode = float64(m.RetainedBytes) / float64(nodes)
	rep.Mega = m
	fmt.Printf("mega n=%-8d %12d events %8.2fs %12.0f events/sec %8.1f B/node retained %12d B peak heap\n",
		m.Nodes, m.Events, m.WallSeconds, m.EventsPerSec, m.BytesPerNode, m.PeakHeapBytes)

	gateFailed := false
	if maxBytesNode > 0 && m.BytesPerNode > maxBytesNode {
		fmt.Fprintf(os.Stderr, "simbench: mega retained arena %.1f bytes/node exceeds the %.0f bytes/node gate\n",
			m.BytesPerNode, maxBytesNode)
		gateFailed = true
	}
	if baselinePath != "" {
		base, err := loadReport(baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simbench:", err)
			return 2
		}
		if base.Mega != nil && base.Mega.EventsPerSec > 0 {
			ratio := m.EventsPerSec / base.Mega.EventsPerSec
			fmt.Printf("  vs baseline mega  %6.2fx  (%.0f -> %.0f events/sec, baseline n=%d)\n",
				ratio, base.Mega.EventsPerSec, m.EventsPerSec, base.Mega.Nodes)
			if ratio < 1-maxRegress {
				fmt.Fprintf(os.Stderr, "simbench: mega events/sec regression beyond %.0f%%\n", maxRegress*100)
				gateFailed = true
			}
		}
	}
	if out != "" {
		if err := writeReport(rep, out); err != nil {
			fmt.Fprintln(os.Stderr, "simbench:", err)
			return 2
		}
	}
	if journal != nil {
		if err := journal.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "simbench: journal:", err)
			return 1
		}
	}
	if gateFailed {
		return 1
	}
	return 0
}

// gitRev stamps journal records with the checkout's short commit hash;
// it returns "" outside a git checkout (the field is then omitted).
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func main() {
	os.Exit(run())
}

// run is main with an exit code instead of os.Exit, so the profile and
// journal defers actually flush on every path.
func run() int {
	var (
		quick      = flag.Bool("quick", false, "run the CI subset (fig1, fig3, abl3)")
		out        = flag.String("out", "", "write the JSON report to this path")
		baseline   = flag.String("baseline", "", "baseline report to compare events/sec against")
		maxRegress = flag.Float64("max-regress", 0.20, "fail if events/sec drops by more than this fraction of baseline")
		workers    = flag.Int("workers", 0, "sweep worker count for every figure (0 = GOMAXPROCS)")
		scaling    = flag.String("scaling", "", "comma-separated worker counts for a per-figure scaling study, e.g. 1,2,4,8")
		minSpeedup = flag.Float64("min-speedup", 0, "fail if aggregate speedup at the highest -scaling worker count is below this (0 = no gate)")
		tilesF     = flag.String("tiles", "", "comma-separated intra-run tile counts for the tiled-PDES study, e.g. 1,4 (replaces the figure suite)")
		minTiled   = flag.Float64("min-tiled-speedup", 0, "fail if tiled speedup at the highest -tiles count is below this (0 = no gate)")
		megaF      = flag.Bool("mega", false, "run the mega arena cost point instead of the figure suite")
		megaNodes  = flag.Int("mega-nodes", 1_000_000, "node count for the -mega arena")
		maxBytesN  = flag.Float64("max-bytes-node", 0, "fail if the -mega peak heap exceeds this many bytes per node (0 = no gate)")
		journalF   = flag.String("journal", "", "append a JSONL run journal to this file")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile to this file at exit")
		traceF     = flag.String("trace", "", "write a runtime execution trace to this file")
	)
	flag.Parse()

	scalingWorkers, err := parseCounts("-scaling", *scaling)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		return 2
	}
	tileCounts, err := parseCounts("-tiles", *tilesF)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		return 2
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simbench:", err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "simbench:", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *traceF != "" {
		f, err := os.Create(*traceF)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simbench:", err)
			return 2
		}
		defer f.Close()
		if err := trace.Start(f); err != nil {
			fmt.Fprintln(os.Stderr, "simbench:", err)
			return 2
		}
		defer trace.Stop()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "simbench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "simbench:", err)
			}
		}()
	}

	var journal *metrics.Journal
	rev := ""
	if *journalF != "" {
		f, err := os.OpenFile(*journalF, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simbench:", err)
			return 2
		}
		defer f.Close()
		journal = metrics.NewJournal(f)
		rev = gitRev()
	}

	rep := Report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      *quick,
		Workers:    *workers,
	}
	if len(scalingWorkers) > 0 {
		rep.ScalingRequested = slices.Clone(scalingWorkers)
		scalingWorkers, rep.ScalingNote = clampWorkers(scalingWorkers, rep.GOMAXPROCS)
		rep.ScalingMeasured = slices.Clone(scalingWorkers)
		if rep.ScalingNote != "" {
			fmt.Println("scaling:", rep.ScalingNote)
		}
	}
	if len(tileCounts) > 0 {
		return runTiledStudy(&rep, tileCounts, *minTiled, *out)
	}
	if *megaF {
		return runMegaStudy(&rep, *megaNodes, *maxBytesN, *baseline, *maxRegress, journal, *out)
	}
	// names pairs base-measurement figures with their scaling reruns:
	// the base pass measures at -workers, then each -scaling count
	// re-measures the same figure with only the worker count changed.
	for fi, f := range figures(journal, *workers) {
		if *quick && !f.quick {
			continue
		}
		r := measure(f)
		fmt.Printf("%-5s %12d events %8.2fs %12.0f events/sec %12d allocs %12d B\n",
			r.Name, r.Events, r.WallSeconds, r.EventsPerSec, r.Allocs, r.AllocBytes)
		for _, w := range scalingWorkers {
			// Journal off for scaling reruns: record cost, not bytes.
			sf := figures(nil, w)[fi]
			sr := measure(sf)
			p := ScalingPoint{
				Workers:      w,
				WallSeconds:  sr.WallSeconds,
				EventsPerSec: sr.EventsPerSec,
			}
			if sr.Events > 0 {
				p.AllocsPerEvent = float64(sr.Allocs) / float64(sr.Events)
			}
			if len(r.Scaling) > 0 && r.Scaling[0].Workers == 1 && r.Scaling[0].EventsPerSec > 0 {
				p.Speedup = p.EventsPerSec / r.Scaling[0].EventsPerSec
			} else if w == 1 {
				p.Speedup = 1
			}
			r.Scaling = append(r.Scaling, p)
			fmt.Printf("      scaling w=%-2d %8.2fs %12.0f events/sec %8.3f allocs/event %6.2fx\n",
				w, p.WallSeconds, p.EventsPerSec, p.AllocsPerEvent, p.Speedup)
		}
		rep.Figures = append(rep.Figures, r)
		rep.TotalEvents += r.Events
		rep.TotalWallSeconds += r.WallSeconds
		if journal != nil {
			// Environment stamps ride on the summary record; the
			// deterministic per-run records came from the Run funcs.
			_ = journal.Write(metrics.Record{
				Experiment:  f.name,
				Label:       "bench-summary",
				GitRev:      rev,
				GoVersion:   runtime.Version(),
				WallSeconds: r.WallSeconds,
			})
		}
	}
	if rep.TotalWallSeconds > 0 {
		rep.TotalEventsPerSec = float64(rep.TotalEvents) / rep.TotalWallSeconds
	}
	fmt.Printf("total %12d events %8.2fs %12.0f events/sec\n",
		rep.TotalEvents, rep.TotalWallSeconds, rep.TotalEventsPerSec)

	gateFailed := false
	if *minSpeedup > 0 && len(scalingWorkers) > 0 {
		maxW := scalingWorkers[len(scalingWorkers)-1]
		reqW := rep.ScalingRequested[len(rep.ScalingRequested)-1]
		if maxW < reqW {
			// The clamped list cannot express the worker count the gate
			// was calibrated for; record the skip, never fail silently.
			note := fmt.Sprintf("scaling gate skipped: requested %d workers, only %d measurable at GOMAXPROCS=%d",
				reqW, maxW, rep.GOMAXPROCS)
			rep.ScalingNote += "; " + note
			fmt.Println(note)
		} else if sp, ok := aggregateSpeedup(rep.Figures, maxW); !ok {
			fmt.Fprintln(os.Stderr, "simbench: -min-speedup set but no figure has both 1-worker and max-worker scaling points")
			gateFailed = true
		} else {
			fmt.Printf("aggregate speedup at %d workers: %.2fx (gate %.2fx)\n", maxW, sp, *minSpeedup)
			if sp < *minSpeedup {
				fmt.Fprintf(os.Stderr, "simbench: speedup %.2fx at %d workers below required %.2fx\n",
					sp, maxW, *minSpeedup)
				gateFailed = true
			}
		}
	}

	var failed []string
	if *baseline != "" {
		base, err := loadReport(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simbench:", err)
			return 2
		}
		rep.BenchmarkFig1 = base.BenchmarkFig1
		failed = checkRegression(base, &rep, *maxRegress)
	}

	if *out != "" {
		if err := writeReport(&rep, *out); err != nil {
			fmt.Fprintln(os.Stderr, "simbench:", err)
			return 2
		}
	}

	if journal != nil {
		if err := journal.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "simbench: journal:", err)
			return 1
		}
	}
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "simbench: events/sec regression beyond %.0f%% in: %v\n",
			*maxRegress*100, failed)
		return 1
	}
	if gateFailed {
		return 1
	}
	return 0
}
