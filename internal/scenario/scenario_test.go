package scenario_test

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"routeless/internal/scenario"
)

func validDoc() scenario.Scenario {
	return scenario.Scenario{
		Seed: 7, N: 12, Width: 400, Height: 300, Range: 150,
		Placement: scenario.PlaceUniform, Protocol: scenario.ProtoSSAF,
		Flows:    []scenario.Flow{{Src: 0, Dst: 11}},
		Interval: 1, DataSize: 256, Duration: 2, JournalEvery: 1,
	}
}

// TestParseRoundTrip: a marshalled valid document parses back to the
// identical value, so the JSON surface is lossless for API clients.
func TestParseRoundTrip(t *testing.T) {
	want := validDoc()
	data, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := scenario.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// TestParseTypedErrors: every malformed or invalid document fails with
// the documented sentinel before any simulator code can panic. These
// are the regression tests for the API error contract: serve and
// wmansim map ErrParse/ErrInvalid to client errors, anything else to
// server errors.
func TestParseTypedErrors(t *testing.T) {
	mutate := func(f func(*scenario.Scenario)) []byte {
		sc := validDoc()
		f(&sc)
		data, err := json.Marshal(sc)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"garbage", []byte("{not json"), scenario.ErrParse},
		{"empty", []byte(""), scenario.ErrParse},
		{"unknown-field", []byte(`{"seed":1,"bogus":true}`), scenario.ErrParse},
		{"trailing-data", []byte(`{"seed":1} {"seed":2}`), scenario.ErrParse},
		{"wrong-type", []byte(`{"n":"twelve"}`), scenario.ErrParse},
		{"n-too-small", mutate(func(sc *scenario.Scenario) { sc.N = 1 }), scenario.ErrInvalid},
		{"future-version", mutate(func(sc *scenario.Scenario) { sc.Ver = 99 }), scenario.ErrInvalid},
		{"negative-journal", mutate(func(sc *scenario.Scenario) { sc.JournalEvery = -1 }), scenario.ErrInvalid},
		{"bad-protocol", mutate(func(sc *scenario.Scenario) { sc.Protocol = "ospf" }), scenario.ErrInvalid},
		{"self-loop-flow", mutate(func(sc *scenario.Scenario) { sc.Flows = []scenario.Flow{{Src: 3, Dst: 3}} }), scenario.ErrInvalid},
		{"flow-out-of-range", mutate(func(sc *scenario.Scenario) { sc.Flows = []scenario.Flow{{Src: 0, Dst: 12}} }), scenario.ErrInvalid},
		{"tiled-fading", mutate(func(sc *scenario.Scenario) { sc.Tiles = 4; sc.Fading = true }), scenario.ErrInvalid},
		{"exclude-out-of-range", mutate(func(sc *scenario.Scenario) {
			sc.Faults = []scenario.FaultSpec{{Kind: "crash", OffFraction: 0.1, Exclude: []int{99}}}
		}), scenario.ErrInvalid},
		{"exclude-wrong-kind", mutate(func(sc *scenario.Scenario) {
			sc.Faults = []scenario.FaultSpec{{Kind: "jam", Exclude: []int{0}}}
		}), scenario.ErrInvalid},
	}
	for _, tc := range cases {
		_, err := scenario.Parse(tc.data)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want errors.Is(%v)", tc.name, err, tc.want)
		}
	}
}

// TestBuildTypedError: a document that validates but cannot be built
// (here: a connectivity requirement the geometry cannot satisfy)
// surfaces as ErrBuild, never a panic.
func TestBuildTypedError(t *testing.T) {
	sc := validDoc()
	sc.N = 2
	sc.Width, sc.Height = 400, 300
	sc.Range = 1 // two nodes within 1m of each other in a 400x300 arena: no seeded draw connects
	sc.Connected = true
	sc.Flows = []scenario.Flow{{Src: 0, Dst: 1}}
	if err := sc.Validate(); err != nil {
		t.Fatalf("document should validate: %v", err)
	}
	_, err := scenario.Build(sc)
	if !errors.Is(err, scenario.ErrBuild) {
		t.Fatalf("got %v, want errors.Is(ErrBuild)", err)
	}
}
